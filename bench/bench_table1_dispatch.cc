// Table 1: "The overhead of event dispatching."
//
// Paper setup: "Guards compare a global variable to a constant and return
// true, and handlers return without performing any work." Rows: number of
// arguments {0, 1, 5}; columns: plain procedure call (the intrinsic case)
// and {1, 5, 10, 50} handlers, each measured with guards/handlers executing
// out of line ("no inline") and inlined into the generated dispatch
// routine ("inline").
//
// Paper numbers (133 MHz Alpha, in us):
//   args  proc-call   1:no-inl 1:inl   5:no-inl 5:inl  10:no-inl 10:inl  50:no-inl 50:inl
//   0     0.10        0.37     0.23    1.18     0.41   2.15      0.63    11.69     2.48
//   1     0.13        0.39     0.24    1.25     0.45   2.32      0.72    11.51     2.87
//   5     0.14        0.97     0.42    1.61     1.55   2.88      1.32    14.45     5.65
//
// The shape to reproduce: dispatch cost grows linearly with handler count;
// inlining wins by 2-5x; the intrinsic case is an ordinary procedure call.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/dispatcher.h"

namespace spin {
namespace {

uint64_t g_state = 1;       // the global the guards compare
uint64_t g_sink = 0;

void Intrinsic0() { benchmark::DoNotOptimize(g_sink += 1); }
void Intrinsic1(int64_t a) { benchmark::DoNotOptimize(g_sink += a); }
void Intrinsic5(int64_t a, int64_t b, int64_t c, int64_t d, int64_t e) {
  benchmark::DoNotOptimize(g_sink += a + b + c + d + e);
}

template <typename EventT>
void InstallBenchBindings(Dispatcher& dispatcher, EventT& event,
                          const Module& module, int handlers,
                          int event_args) {
  for (int i = 0; i < handlers; ++i) {
    auto binding = dispatcher.InstallMicroHandler(
        event, micro::ReturnConst(event_args, 0, /*functional=*/false),
        {.module = &module});
    dispatcher.AddMicroGuard(binding, micro::GuardGlobalEq(&g_state, 1));
  }
}

struct Cell {
  double no_inline_us;
  double inline_us;
};

template <typename Sig>
struct Runner;

template <typename... A>
struct Runner<void(A...)> {
  static double MeasureRaise(Event<void(A...)>& event) {
    [[maybe_unused]] int64_t v = 1;
    return bench::NsPerOp([&] { event.Raise(static_cast<A>(v)...); },
                          /*iters=*/100000) /
           1e3;
  }

  static bench::LatencyStats MeasureRaiseStats(Event<void(A...)>& event) {
    [[maybe_unused]] int64_t v = 1;
    return bench::NsPerOpStats([&] { event.Raise(static_cast<A>(v)...); });
  }
};

template <typename Sig>
Cell MeasureHandlers(const Module& module, int handlers, int event_args) {
  Cell cell{};
  for (bool inline_micro : {false, true}) {
    Dispatcher::Config config;
    config.inline_micro = inline_micro;
    Dispatcher dispatcher(config);
    Event<Sig> event("Bench.Event", &module, nullptr, &dispatcher);
    InstallBenchBindings(dispatcher, event, module, handlers, event_args);
    double us = Runner<Sig>::MeasureRaise(event);
    (inline_micro ? cell.inline_us : cell.no_inline_us) = us;
  }
  return cell;
}

template <typename Sig, typename IntrinsicFn>
double MeasureIntrinsic(const Module& module, IntrinsicFn intrinsic) {
  Dispatcher dispatcher;
  Event<Sig> event("Bench.Intrinsic", &module, intrinsic, &dispatcher);
  return Runner<Sig>::MeasureRaise(event);
}

template <typename Sig>
bench::LatencyStats HandlerStats(const Module& module, int handlers,
                                 int event_args, bool inline_micro) {
  Dispatcher::Config config;
  config.inline_micro = inline_micro;
  Dispatcher dispatcher(config);
  Event<Sig> event("Bench.Event", &module, nullptr, &dispatcher);
  InstallBenchBindings(dispatcher, event, module, handlers, event_args);
  return Runner<Sig>::MeasureRaiseStats(event);
}

template <typename Sig, typename IntrinsicFn>
bench::LatencyStats IntrinsicStats(const Module& module,
                                   IntrinsicFn intrinsic) {
  Dispatcher dispatcher;
  Event<Sig> event("Bench.Intrinsic", &module, intrinsic, &dispatcher);
  return Runner<Sig>::MeasureRaiseStats(event);
}

}  // namespace
}  // namespace spin

int main() {
  using spin::bench::NsPerOp;
  using spin::bench::Rule;

  spin::Module module("Table1");
  const int kHandlerCounts[] = {1, 5, 10, 50};

  std::printf("Table 1: overhead of event dispatching (all times in us)\n");
  std::printf("guards compare a global to a constant and return true; "
              "handlers do no work\n");
  Rule('=');
  std::printf("%-6s %-10s", "args", "proc-call");
  for (int n : kHandlerCounts) {
    char head[32];
    std::snprintf(head, sizeof(head), "%d:no-inl", n);
    std::printf(" %-9s", head);
    std::snprintf(head, sizeof(head), "%d:inl", n);
    std::printf(" %-8s", head);
  }
  std::printf("\n");
  Rule();

  // Plain procedure call baselines through a volatile pointer (what a
  // Modula-3 procedure call compiles to: one indirect call).
  void (*volatile call0)() = &spin::Intrinsic0;
  void (*volatile call1)(int64_t) = &spin::Intrinsic1;
  void (*volatile call5)(int64_t, int64_t, int64_t, int64_t, int64_t) =
      &spin::Intrinsic5;

  for (int args : {0, 1, 5}) {
    double proc_us = 0;
    switch (args) {
      case 0:
        proc_us = NsPerOp([&] { call0(); }) / 1e3;
        break;
      case 1:
        proc_us = NsPerOp([&] { call1(1); }) / 1e3;
        break;
      default:
        proc_us = NsPerOp([&] { call5(1, 2, 3, 4, 5); }) / 1e3;
        break;
    }
    std::printf("%-6d %-10.4f", args, proc_us);
    for (int n : kHandlerCounts) {
      spin::Cell cell{};
      switch (args) {
        case 0:
          cell = spin::MeasureHandlers<void()>(module, n, 0);
          break;
        case 1:
          cell = spin::MeasureHandlers<void(int64_t)>(module, n, 1);
          break;
        default:
          cell = spin::MeasureHandlers<void(int64_t, int64_t, int64_t,
                                            int64_t, int64_t)>(module, n, 5);
          break;
      }
      std::printf(" %-9.4f %-8.4f", cell.no_inline_us, cell.inline_us);
    }
    std::printf("\n");
  }
  Rule();

  // The intrinsic column of the paper's table: an event with only its
  // intrinsic handler is dispatched as a procedure call.
  std::printf("intrinsic-only event raise (should track proc-call):\n");
  std::printf("  0 args: %.4f us\n",
              spin::MeasureIntrinsic<void()>(module, &spin::Intrinsic0));
  std::printf("  1 arg : %.4f us\n",
              spin::MeasureIntrinsic<void(int64_t)>(module,
                                                    &spin::Intrinsic1));
  std::printf("  5 args: %.4f us\n",
              spin::MeasureIntrinsic<void(int64_t, int64_t, int64_t, int64_t,
                                          int64_t)>(module,
                                                    &spin::Intrinsic5));
  Rule('=');
  std::printf("expected shape: linear growth in handlers; inline < no-inline;"
              " intrinsic ~ proc call\n");

  // Machine-readable latency distributions for representative cells.
  std::printf("\nlatency distributions (JSON, 1 row per case):\n");
  spin::bench::JsonRow(
      "table1", "args1_proc_call",
      spin::bench::NsPerOpStats([&] { call1(1); }));
  spin::bench::JsonRow(
      "table1", "args1_intrinsic",
      spin::IntrinsicStats<void(int64_t)>(module, &spin::Intrinsic1));
  spin::bench::JsonRow("table1", "args1_h10_no_inline",
                       spin::HandlerStats<void(int64_t)>(
                           module, 10, 1, /*inline_micro=*/false));
  spin::bench::JsonRow("table1", "args1_h10_inline",
                       spin::HandlerStats<void(int64_t)>(
                           module, 10, 1, /*inline_micro=*/true));
  return 0;
}
