// Table 1: "The overhead of event dispatching."
//
// Paper setup: "Guards compare a global variable to a constant and return
// true, and handlers return without performing any work." Rows: number of
// arguments {0, 1, 5}; columns: plain procedure call (the intrinsic case)
// and {1, 5, 10, 50} handlers, each measured with guards/handlers executing
// out of line ("no inline") and inlined into the generated dispatch
// routine ("inline").
//
// Paper numbers (133 MHz Alpha, in us):
//   args  proc-call   1:no-inl 1:inl   5:no-inl 5:inl  10:no-inl 10:inl  50:no-inl 50:inl
//   0     0.10        0.37     0.23    1.18     0.41   2.15      0.63    11.69     2.48
//   1     0.13        0.39     0.24    1.25     0.45   2.32      0.72    11.51     2.87
//   5     0.14        0.97     0.42    1.61     1.55   2.88      1.32    14.45     5.65
//
// The shape to reproduce: dispatch cost grows linearly with handler count;
// inlining wins by 2-5x; the intrinsic case is an ordinary procedure call.
// Beyond Table 1, this binary measures the sharded dispatcher ("RSS for
// events"): a threads x handlers matrix of aggregate raise throughput,
// sync and async, at shards=1 (the historical single-replica layout) and
// sharded. `bench_table1_dispatch [--matrix-only] [out.json]` writes the
// matrix as BENCH_dispatch.json for trend tracking in CI.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/dispatcher.h"
#include "src/core/shard.h"

namespace spin {
namespace {

uint64_t g_state = 1;       // the global the guards compare
uint64_t g_sink = 0;

void Intrinsic0() { benchmark::DoNotOptimize(g_sink += 1); }
void Intrinsic1(int64_t a) { benchmark::DoNotOptimize(g_sink += a); }
void Intrinsic5(int64_t a, int64_t b, int64_t c, int64_t d, int64_t e) {
  benchmark::DoNotOptimize(g_sink += a + b + c + d + e);
}

template <typename EventT>
void InstallBenchBindings(Dispatcher& dispatcher, EventT& event,
                          const Module& module, int handlers,
                          int event_args) {
  for (int i = 0; i < handlers; ++i) {
    auto binding = dispatcher.InstallMicroHandler(
        event, micro::ReturnConst(event_args, 0, /*functional=*/false),
        {.module = &module});
    dispatcher.AddMicroGuard(binding, micro::GuardGlobalEq(&g_state, 1));
  }
}

struct Cell {
  double no_inline_us;
  double inline_us;
};

template <typename Sig>
struct Runner;

template <typename... A>
struct Runner<void(A...)> {
  static double MeasureRaise(Event<void(A...)>& event) {
    [[maybe_unused]] int64_t v = 1;
    return bench::NsPerOp([&] { event.Raise(static_cast<A>(v)...); },
                          /*iters=*/100000) /
           1e3;
  }

  static bench::LatencyStats MeasureRaiseStats(Event<void(A...)>& event) {
    [[maybe_unused]] int64_t v = 1;
    return bench::NsPerOpStats([&] { event.Raise(static_cast<A>(v)...); });
  }
};

template <typename Sig>
Cell MeasureHandlers(const Module& module, int handlers, int event_args) {
  Cell cell{};
  for (bool inline_micro : {false, true}) {
    Dispatcher::Config config;
    config.inline_micro = inline_micro;
    Dispatcher dispatcher(config);
    Event<Sig> event("Bench.Event", &module, nullptr, &dispatcher);
    InstallBenchBindings(dispatcher, event, module, handlers, event_args);
    double us = Runner<Sig>::MeasureRaise(event);
    (inline_micro ? cell.inline_us : cell.no_inline_us) = us;
  }
  return cell;
}

template <typename Sig, typename IntrinsicFn>
double MeasureIntrinsic(const Module& module, IntrinsicFn intrinsic) {
  Dispatcher dispatcher;
  Event<Sig> event("Bench.Intrinsic", &module, intrinsic, &dispatcher);
  return Runner<Sig>::MeasureRaise(event);
}

template <typename Sig>
bench::LatencyStats HandlerStats(const Module& module, int handlers,
                                 int event_args, bool inline_micro) {
  Dispatcher::Config config;
  config.inline_micro = inline_micro;
  Dispatcher dispatcher(config);
  Event<Sig> event("Bench.Event", &module, nullptr, &dispatcher);
  InstallBenchBindings(dispatcher, event, module, handlers, event_args);
  return Runner<Sig>::MeasureRaiseStats(event);
}

template <typename Sig, typename IntrinsicFn>
bench::LatencyStats IntrinsicStats(const Module& module,
                                   IntrinsicFn intrinsic) {
  Dispatcher dispatcher;
  Event<Sig> event("Bench.Intrinsic", &module, intrinsic, &dispatcher);
  return Runner<Sig>::MeasureRaiseStats(event);
}

// --- Shard-scaling matrix -------------------------------------------------
//
// threads x handlers aggregate throughput, sync and async, shards=1 vs
// sharded. Each raiser thread pins a distinct strand identity so the source
// hash routes it to a stable shard (replica + outbox + stub copy).

constexpr uint32_t kMatrixShards = 16;

void MatrixSink(int64_t a) { benchmark::DoNotOptimize(g_sink += a); }

struct MatrixRow {
  const char* mode;  // "sync" | "async"
  uint32_t shards;
  int threads;
  int handlers;
  double raises_per_sec;
  double ns_per_raise;
};

// Runs `threads` raisers, each pinned to its own strand source, against a
// fresh dispatcher; returns aggregate throughput over the timed region.
template <typename RaiseBody>
MatrixRow MeasureMatrixCell(const char* mode, uint32_t shards, int threads,
                            int handlers, size_t iters,
                            Event<void(int64_t)>& event, RaiseBody body) {
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> raisers;
  raisers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    raisers.emplace_back([&, t] {
      RaiseSourceScope source(
          MakeRaiseSource(SourceKind::kStrand, static_cast<uint64_t>(t)));
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      for (size_t i = 0; i < iters; ++i) {
        event.Raise(static_cast<int64_t>(i));
      }
    });
  }
  while (ready.load() < threads) {
    std::this_thread::yield();
  }
  auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread& t : raisers) {
    t.join();
  }
  body();  // mode-specific settle step (e.g. drain the async outboxes)
  double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  double total = static_cast<double>(iters) * threads;
  return {mode,         shards,
          threads,      handlers,
          total / secs, secs * 1e9 / total};
}

MatrixRow SyncMatrixCell(const Module& module, int threads, int handlers,
                         uint32_t shards) {
  Dispatcher::Config config;
  config.shards = shards;
  config.allow_direct = false;  // measure the table path, not the bypass
  Dispatcher dispatcher(config);
  Event<void(int64_t)> event("Bench.Matrix", &module, nullptr, &dispatcher);
  for (int i = 0; i < handlers; ++i) {
    dispatcher.InstallMicroHandler(event,
                                   micro::ReturnConst(1, 0, /*functional=*/false),
                                   {.module = &module});
  }
  size_t iters = std::max<size_t>(20000, 200000 / static_cast<size_t>(handlers));
  return MeasureMatrixCell("sync", shards, threads, handlers, iters, event,
                           [] {});
}

MatrixRow AsyncMatrixCell(const Module& module, int threads, int handlers,
                          uint32_t shards) {
  // A dedicated pool with one worker per shard: sharded dispatch spreads
  // submissions across all the queues, shards=1 funnels them into queue 0
  // (thieves still drain it, but every submit contends on one lock).
  ThreadPool pool(kMatrixShards);
  Dispatcher::Config config;
  config.shards = shards;
  config.allow_direct = false;
  config.pool = &pool;
  Dispatcher dispatcher(config);
  Event<void(int64_t)> event("Bench.Matrix", &module, nullptr, &dispatcher);
  for (int i = 0; i < handlers; ++i) {
    dispatcher.InstallHandler(event, &MatrixSink,
                              {.async = true, .module = &module});
  }
  size_t iters = std::max<size_t>(200, 10000 / static_cast<size_t>(handlers));
  return MeasureMatrixCell("async", shards, threads, handlers, iters, event,
                           [&] { pool.Drain(); });
}

void WriteMatrixJson(const char* path, const std::vector<MatrixRow>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"dispatch_matrix\",\n"
               "  \"hardware_threads\": %u,\n  \"rows\": [\n",
               std::thread::hardware_concurrency());
  for (size_t i = 0; i < rows.size(); ++i) {
    const MatrixRow& r = rows[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"shards\": %u, \"threads\": %d, "
                 "\"handlers\": %d, \"raises_per_sec\": %.0f, "
                 "\"ns_per_raise\": %.1f}%s\n",
                 r.mode, r.shards, r.threads, r.handlers, r.raises_per_sec,
                 r.ns_per_raise, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

void RunShardMatrix(const Module& module, const char* out_path) {
  const int kThreadCounts[] = {1, 2, 4, 8, 16};
  const int kHandlerCounts[] = {1, 10, 100};
  std::vector<MatrixRow> rows;

  std::printf("\nShard-scaling matrix (aggregate Mraises/s; %u hw threads)\n",
              std::thread::hardware_concurrency());
  bench::Rule('=');
  std::printf("%-6s %-9s %-9s | %-12s %-12s | %-12s %-12s\n", "thr", "handlers",
              "", "sync s=1", "sync sharded", "async s=1", "async sharded");
  bench::Rule();
  for (int threads : kThreadCounts) {
    for (int handlers : kHandlerCounts) {
      MatrixRow s1 = SyncMatrixCell(module, threads, handlers, 1);
      MatrixRow sN = SyncMatrixCell(module, threads, handlers, kMatrixShards);
      MatrixRow a1 = AsyncMatrixCell(module, threads, handlers, 1);
      MatrixRow aN = AsyncMatrixCell(module, threads, handlers, kMatrixShards);
      rows.push_back(s1);
      rows.push_back(sN);
      rows.push_back(a1);
      rows.push_back(aN);
      std::printf("%-6d %-9d %-9s | %-12.3f %-12.3f | %-12.3f %-12.3f\n",
                  threads, handlers, "", s1.raises_per_sec / 1e6,
                  sN.raises_per_sec / 1e6, a1.raises_per_sec / 1e6,
                  aN.raises_per_sec / 1e6);
    }
  }
  bench::Rule('=');
  WriteMatrixJson(out_path, rows);
  std::printf("matrix written to %s\n", out_path);
}

}  // namespace
}  // namespace spin

int main(int argc, char** argv) {
  using spin::bench::NsPerOp;
  using spin::bench::Rule;

  // bench_table1_dispatch [--matrix-only] [out.json]
  bool matrix_only = false;
  const char* matrix_path = "BENCH_dispatch.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--matrix-only") == 0) {
      matrix_only = true;
    } else {
      matrix_path = argv[i];
    }
  }

  spin::Module module("Table1");
  if (matrix_only) {
    spin::RunShardMatrix(module, matrix_path);
    return 0;
  }
  const int kHandlerCounts[] = {1, 5, 10, 50};

  std::printf("Table 1: overhead of event dispatching (all times in us)\n");
  std::printf("guards compare a global to a constant and return true; "
              "handlers do no work\n");
  Rule('=');
  std::printf("%-6s %-10s", "args", "proc-call");
  for (int n : kHandlerCounts) {
    char head[32];
    std::snprintf(head, sizeof(head), "%d:no-inl", n);
    std::printf(" %-9s", head);
    std::snprintf(head, sizeof(head), "%d:inl", n);
    std::printf(" %-8s", head);
  }
  std::printf("\n");
  Rule();

  // Plain procedure call baselines through a volatile pointer (what a
  // Modula-3 procedure call compiles to: one indirect call).
  void (*volatile call0)() = &spin::Intrinsic0;
  void (*volatile call1)(int64_t) = &spin::Intrinsic1;
  void (*volatile call5)(int64_t, int64_t, int64_t, int64_t, int64_t) =
      &spin::Intrinsic5;

  for (int args : {0, 1, 5}) {
    double proc_us = 0;
    switch (args) {
      case 0:
        proc_us = NsPerOp([&] { call0(); }) / 1e3;
        break;
      case 1:
        proc_us = NsPerOp([&] { call1(1); }) / 1e3;
        break;
      default:
        proc_us = NsPerOp([&] { call5(1, 2, 3, 4, 5); }) / 1e3;
        break;
    }
    std::printf("%-6d %-10.4f", args, proc_us);
    for (int n : kHandlerCounts) {
      spin::Cell cell{};
      switch (args) {
        case 0:
          cell = spin::MeasureHandlers<void()>(module, n, 0);
          break;
        case 1:
          cell = spin::MeasureHandlers<void(int64_t)>(module, n, 1);
          break;
        default:
          cell = spin::MeasureHandlers<void(int64_t, int64_t, int64_t,
                                            int64_t, int64_t)>(module, n, 5);
          break;
      }
      std::printf(" %-9.4f %-8.4f", cell.no_inline_us, cell.inline_us);
    }
    std::printf("\n");
  }
  Rule();

  // The intrinsic column of the paper's table: an event with only its
  // intrinsic handler is dispatched as a procedure call.
  std::printf("intrinsic-only event raise (should track proc-call):\n");
  std::printf("  0 args: %.4f us\n",
              spin::MeasureIntrinsic<void()>(module, &spin::Intrinsic0));
  std::printf("  1 arg : %.4f us\n",
              spin::MeasureIntrinsic<void(int64_t)>(module,
                                                    &spin::Intrinsic1));
  std::printf("  5 args: %.4f us\n",
              spin::MeasureIntrinsic<void(int64_t, int64_t, int64_t, int64_t,
                                          int64_t)>(module,
                                                    &spin::Intrinsic5));
  Rule('=');
  std::printf("expected shape: linear growth in handlers; inline < no-inline;"
              " intrinsic ~ proc call\n");

  // Machine-readable latency distributions for representative cells.
  std::printf("\nlatency distributions (JSON, 1 row per case):\n");
  spin::bench::JsonRow(
      "table1", "args1_proc_call",
      spin::bench::NsPerOpStats([&] { call1(1); }));
  spin::bench::JsonRow(
      "table1", "args1_intrinsic",
      spin::IntrinsicStats<void(int64_t)>(module, &spin::Intrinsic1));
  spin::bench::JsonRow("table1", "args1_h10_no_inline",
                       spin::HandlerStats<void(int64_t)>(
                           module, 10, 1, /*inline_micro=*/false));
  spin::bench::JsonRow("table1", "args1_h10_inline",
                       spin::HandlerStats<void(int64_t)>(
                           module, 10, 1, /*inline_micro=*/true));

  spin::RunShardMatrix(module, matrix_path);
  return 0;
}
