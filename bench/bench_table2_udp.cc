// Table 2: "Network UDP roundtrip time as a function of the number of
// guards installed on a packet event. Only one guard evaluates to true."
//
// Paper numbers (two AXP 3000/400s, 10 Mb/s Ethernet, 8-byte UDP):
//   1 guard: 475us   5: 481us   10: 487us   50: 530us
//   => ~1.1 us added per inactive guard on a 133 MHz Alpha.
//
// Our substitution: the wire and second machine are simulated (virtual
// time); the protocol stacks and their guard evaluation are real code
// measured with the real clock.
//
// Part 1 measures the per-packet receive-path cost directly (the quantity
// whose growth Table 2 exposes), in three configurations:
//   - out-of-line guards: each guard is a compiled procedure called from
//     the dispatch routine — the paper's configuration ("we presently do
//     not reorder guard evaluation ... do not optimize the guard decision
//     tree"), so this column reproduces Table 2's linear growth;
//   - inlined guards: SPIN's inlining optimization applied to the port
//     compares;
//   - decision tree: the optimization the paper sketches as future work.
// Part 2 reports the end-to-end roundtrip: modeled wire time + measured
// host processing.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/net/host.h"
#include "src/sim/simulator.h"

namespace {

constexpr uint16_t kActivePort = 1000;
constexpr uint16_t kEchoPort = 2000;
constexpr int kRoundtrips = 2000;

enum class Mode { kOutOfLine, kInline, kTree };

spin::Dispatcher::Config ConfigFor(Mode mode) {
  spin::Dispatcher::Config config;
  switch (mode) {
    case Mode::kOutOfLine:
      config.inline_micro = false;
      break;
    case Mode::kInline:
      break;
    case Mode::kTree:
      config.guard_tree = true;
      break;
  }
  return config;
}

// Direct measurement: cost of one packet traversing the receive path
// (Ether -> Ip -> Udp -> port guards) with `guards` endpoints installed,
// one of which matches.
double ReceivePathNs(int guards, Mode mode) {
  spin::Dispatcher dispatcher(ConfigFor(mode));
  spin::net::Host beta("beta", 0x0a000002, &dispatcher);
  std::vector<std::unique_ptr<spin::net::UdpSocket>> inactive;
  for (int i = 0; i < guards - 1; ++i) {
    inactive.push_back(std::make_unique<spin::net::UdpSocket>(
        beta, static_cast<uint16_t>(5000 + i), nullptr));
  }
  spin::net::UdpSocket active(beta, kActivePort, nullptr);
  spin::net::Packet packet = spin::net::MakeUdpPacket(
      0x0a000001, beta.ip(), kEchoPort, kActivePort, "12345678");
  return spin::bench::NsPerOp([&] { beta.Receive(packet); },
                              /*iters=*/50000);
}

struct Result {
  double wire_us;
  double host_us;
};

// Latency distribution of the receive path (same setup as ReceivePathNs).
spin::bench::LatencyStats ReceivePathStats(int guards, Mode mode) {
  spin::Dispatcher dispatcher(ConfigFor(mode));
  spin::net::Host beta("beta", 0x0a000002, &dispatcher);
  std::vector<std::unique_ptr<spin::net::UdpSocket>> inactive;
  for (int i = 0; i < guards - 1; ++i) {
    inactive.push_back(std::make_unique<spin::net::UdpSocket>(
        beta, static_cast<uint16_t>(5000 + i), nullptr));
  }
  spin::net::UdpSocket active(beta, kActivePort, nullptr);
  spin::net::Packet packet = spin::net::MakeUdpPacket(
      0x0a000001, beta.ip(), kEchoPort, kActivePort, "12345678");
  return spin::bench::NsPerOpStats([&] { beta.Receive(packet); },
                                   /*samples=*/10000);
}

Result RunPingPong(int guards) {
  spin::Dispatcher::Config config;
  config.inline_micro = false;  // the paper's configuration
  spin::Dispatcher dispatcher(config);
  spin::sim::Simulator sim;
  spin::net::Wire wire(&sim, spin::sim::LinkModel{});
  spin::net::Host alpha("alpha", 0x0a000001, &dispatcher);
  spin::net::Host beta("beta", 0x0a000002, &dispatcher);
  wire.Attach(alpha, beta);

  std::vector<std::unique_ptr<spin::net::UdpSocket>> inactive;
  for (int i = 0; i < guards - 1; ++i) {
    inactive.push_back(std::make_unique<spin::net::UdpSocket>(
        beta, static_cast<uint16_t>(5000 + i), nullptr));
  }

  int pongs = 0;
  spin::net::UdpSocket echo(beta, kActivePort,
                            [&](const spin::net::Packet& packet) {
                              echo.SendTo(packet.ip_src(),
                                          packet.src_port(), "12345678");
                            });
  spin::net::UdpSocket ping(alpha, kEchoPort,
                            [&](const spin::net::Packet&) {
                              if (++pongs < kRoundtrips) {
                                ping.SendTo(beta.ip(), kActivePort,
                                            "12345678");
                              }
                            });

  uint64_t wall_start = spin::NowNs();
  ping.SendTo(beta.ip(), kActivePort, "12345678");
  sim.Run();
  uint64_t wall_ns = spin::NowNs() - wall_start;

  Result result{};
  result.wire_us = static_cast<double>(sim.now_ns()) / 1e3 / kRoundtrips;
  result.host_us = static_cast<double>(wall_ns) / 1e3 / kRoundtrips;
  return result;
}

}  // namespace

int main() {
  using spin::bench::Rule;
  std::printf("Table 2: UDP roundtrip vs. guards on Udp.PacketArrived "
              "(8-byte payload, 10 Mb/s wire)\n");
  std::printf("paper: 1 guard: 475us  5: 481us  10: 487us  50: 530us "
              "(~1.1us per inactive guard)\n");
  Rule('=');

  std::printf("part 1: per-packet receive-path cost (ns)\n");
  std::printf("%-8s %-22s %-18s %-18s\n", "guards",
              "out-of-line (paper)", "inlined", "decision tree");
  Rule();
  double base = 0;
  double last = 0;
  for (int guards : {1, 5, 10, 50}) {
    double out_of_line = ReceivePathNs(guards, Mode::kOutOfLine);
    double inlined = ReceivePathNs(guards, Mode::kInline);
    double tree = ReceivePathNs(guards, Mode::kTree);
    std::printf("%-8d %-22.1f %-18.1f %-18.1f\n", guards, out_of_line,
                inlined, tree);
    if (guards == 1) {
      base = out_of_line;
    }
    last = out_of_line;
  }
  double slope = (last - base) / 49.0;
  std::printf("per-inactive-guard cost (out-of-line): %.1f ns "
              "(paper: ~1100 ns on a 133 MHz Alpha)\n",
              slope);
  Rule();

  std::printf("part 2: end-to-end roundtrip (paper configuration)\n");
  std::printf("%-8s %-14s %-16s %-16s\n", "guards", "wire (us)",
              "host proc (us)", "roundtrip (us)");
  Rule();
  for (int guards : {1, 5, 10, 50}) {
    std::vector<Result> runs;
    for (int i = 0; i < 5; ++i) {
      runs.push_back(RunPingPong(guards));
    }
    std::sort(runs.begin(), runs.end(),
              [](const Result& a, const Result& b) {
                return a.host_us < b.host_us;
              });
    Result r = runs[runs.size() / 2];
    std::printf("%-8d %-14.1f %-16.3f %-16.3f\n", guards, r.wire_us,
                r.host_us, r.wire_us + r.host_us);
  }
  Rule();
  std::printf("expected shape: wire-dominated base; receive path grows "
              "linearly in guards out-of-line,\nstays near-flat inlined or "
              "with the decision tree\n");

  std::printf("\nlatency distributions (JSON, 1 row per case):\n");
  for (int guards : {1, 50}) {
    char name[48];
    std::snprintf(name, sizeof(name), "recv_g%d_out_of_line", guards);
    spin::bench::JsonRow("table2", name,
                         ReceivePathStats(guards, Mode::kOutOfLine));
    std::snprintf(name, sizeof(name), "recv_g%d_inline", guards);
    spin::bench::JsonRow("table2", name,
                         ReceivePathStats(guards, Mode::kInline));
  }
  return 0;
}
