// Standard google-benchmark microbenchmarks of the dispatch paths, for use
// with the library's tooling (--benchmark_format=json, compare.py, etc.).
// The paper-table reproductions live in the bench_table* binaries; this one
// exists for profiling and regression tracking of the library itself.
#include <benchmark/benchmark.h>

#include "src/core/dispatcher.h"
#include "src/net/host.h"

namespace {

uint64_t g_sink = 0;
uint64_t g_state = 1;

void SinkHandler(int64_t v) { benchmark::DoNotOptimize(g_sink += v); }
bool TrueGuard(int64_t) { return true; }

// One-time fixtures: events are static so each benchmark measures steady
// state, not setup.
struct Fixtures {
  spin::Module module{"GBench"};
  spin::Dispatcher jit;
  spin::Dispatcher interp;
  spin::Dispatcher tree;

  spin::Event<void(int64_t)> direct{"G.Direct", &module, &SinkHandler, &jit};
  spin::Event<void(int64_t)> guarded{"G.Guarded", &module, nullptr, &jit};
  spin::Event<void(int64_t)> guarded_interp{"G.GuardedI", &module, nullptr,
                                            &interp};
  spin::Event<void(int64_t)> ten{"G.Ten", &module, nullptr, &jit};
  struct Pkt {
    uint8_t data[16];
  };
  spin::Event<void(Pkt*)> demux{"G.Demux", &module, nullptr, &tree};
  Pkt pkt{};

  Fixtures()
      : interp(InterpConfig()), tree(TreeConfig()) {
    jit.InstallHandler(guarded, &TrueGuard, &SinkHandler,
                       {.module = &module});
    interp.InstallHandler(guarded_interp, &TrueGuard, &SinkHandler,
                          {.module = &module});
    for (int i = 0; i < 10; ++i) {
      auto binding = jit.InstallMicroHandler(
          ten, spin::micro::ReturnConst(1, 0, false), {.module = &module});
      jit.AddMicroGuard(binding, spin::micro::GuardGlobalEq(&g_state, 1));
    }
    for (int i = 0; i < 32; ++i) {
      auto binding = tree.InstallMicroHandler(
          demux, spin::micro::ReturnConst(1, 0, false), {.module = &module});
      tree.AddMicroGuard(binding,
                         spin::micro::GuardArgFieldEq(
                             1, 0, 4, 2, ~0ull,
                             static_cast<uint64_t>(1000 + i)));
    }
    pkt.data[4] = static_cast<uint8_t>((1000 + 31) & 0xff);
    pkt.data[5] = static_cast<uint8_t>((1000 + 31) >> 8);
  }

  static spin::Dispatcher::Config InterpConfig() {
    spin::Dispatcher::Config config;
    config.enable_jit = false;
    return config;
  }
  static spin::Dispatcher::Config TreeConfig() {
    spin::Dispatcher::Config config;
    config.guard_tree = true;
    return config;
  }
};

Fixtures& F() {
  static Fixtures* fixtures = new Fixtures();
  return *fixtures;
}

void BM_RaiseIntrinsic(benchmark::State& state) {
  auto& event = F().direct;
  for (auto _ : state) {
    event.Raise(1);
  }
}
BENCHMARK(BM_RaiseIntrinsic);

void BM_RaiseGuardedJit(benchmark::State& state) {
  auto& event = F().guarded;
  for (auto _ : state) {
    event.Raise(1);
  }
}
BENCHMARK(BM_RaiseGuardedJit);

void BM_RaiseGuardedInterp(benchmark::State& state) {
  auto& event = F().guarded_interp;
  for (auto _ : state) {
    event.Raise(1);
  }
}
BENCHMARK(BM_RaiseGuardedInterp);

void BM_RaiseTenHandlers(benchmark::State& state) {
  auto& event = F().ten;
  for (auto _ : state) {
    event.Raise(1);
  }
}
BENCHMARK(BM_RaiseTenHandlers);

void BM_RaiseTreeDemux32(benchmark::State& state) {
  auto& fixtures = F();
  for (auto _ : state) {
    fixtures.demux.Raise(&fixtures.pkt);
  }
}
BENCHMARK(BM_RaiseTreeDemux32);

void BM_InstallUninstall(benchmark::State& state) {
  auto& fixtures = F();
  for (auto _ : state) {
    auto binding = fixtures.jit.InstallHandler(fixtures.guarded,
                                               &SinkHandler,
                                               {.module = &fixtures.module});
    fixtures.jit.Uninstall(binding, &fixtures.module);
  }
}
BENCHMARK(BM_InstallUninstall);

void BM_PacketReceivePath(benchmark::State& state) {
  static spin::Dispatcher dispatcher;
  static spin::net::Host host("bench", 0x0a000001, &dispatcher);
  static spin::net::UdpSocket socket(host, 1000, nullptr);
  static spin::net::Packet packet = spin::net::MakeUdpPacket(
      0x0a000002, host.ip(), 2000, 1000, "12345678");
  for (auto _ : state) {
    host.Receive(packet);
  }
}
BENCHMARK(BM_PacketReceivePath);

}  // namespace

BENCHMARK_MAIN();
