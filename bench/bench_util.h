// Shared measurement helpers for the paper-reproduction benchmarks.
//
// Every bench binary prints the corresponding paper table's rows directly
// (plus our measured values), so `for b in build/bench/*; do $b; done`
// regenerates the whole evaluation section.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <vector>

#include <benchmark/benchmark.h>

#include "src/rt/clock.h"

namespace spin {
namespace bench {

// Median-of-repeats nanoseconds per operation.
template <typename F>
double NsPerOp(F&& fn, size_t iters = 200000, int repeats = 7) {
  std::vector<double> samples;
  samples.reserve(repeats);
  // Warmup.
  for (size_t i = 0; i < iters / 10 + 1; ++i) {
    fn();
  }
  for (int r = 0; r < repeats; ++r) {
    uint64_t start = NowNs();
    for (size_t i = 0; i < iters; ++i) {
      fn();
    }
    uint64_t elapsed = NowNs() - start;
    samples.push_back(static_cast<double>(elapsed) /
                      static_cast<double>(iters));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

inline void Rule(char c = '-', int width = 78) {
  for (int i = 0; i < width; ++i) {
    std::putchar(c);
  }
  std::putchar('\n');
}

}  // namespace bench
}  // namespace spin

#endif  // BENCH_BENCH_UTIL_H_
