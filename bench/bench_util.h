// Shared measurement helpers for the paper-reproduction benchmarks.
//
// Every bench binary prints the corresponding paper table's rows directly
// (plus our measured values), so `for b in build/bench/*; do $b; done`
// regenerates the whole evaluation section.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <vector>

#include <benchmark/benchmark.h>

#include "src/rt/clock.h"

namespace spin {
namespace bench {

// Median-of-repeats nanoseconds per operation.
template <typename F>
double NsPerOp(F&& fn, size_t iters = 200000, int repeats = 7) {
  std::vector<double> samples;
  samples.reserve(repeats);
  // Warmup.
  for (size_t i = 0; i < iters / 10 + 1; ++i) {
    fn();
  }
  for (int r = 0; r < repeats; ++r) {
    uint64_t start = NowNs();
    for (size_t i = 0; i < iters; ++i) {
      fn();
    }
    uint64_t elapsed = NowNs() - start;
    samples.push_back(static_cast<double>(elapsed) /
                      static_cast<double>(iters));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

inline void Rule(char c = '-', int width = 78) {
  for (int i = 0; i < width; ++i) {
    std::putchar(c);
  }
  std::putchar('\n');
}

// Per-op latency distribution. Unlike NsPerOp (a median of large-batch
// averages), this times small batches so tail percentiles survive; exact
// sample percentiles, not histogram buckets. `batch` amortizes the clock
// reads — per-op resolution is clock cost / batch.
struct LatencyStats {
  double mean_ns = 0;
  uint64_t p50_ns = 0;
  uint64_t p90_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t max_ns = 0;
};

template <typename F>
LatencyStats NsPerOpStats(F&& fn, size_t samples = 20000, size_t batch = 8) {
  for (size_t i = 0; i < samples / 10 + 1; ++i) {
    fn();  // warmup
  }
  std::vector<uint64_t> lat(samples);
  uint64_t total = 0;
  for (size_t s = 0; s < samples; ++s) {
    uint64_t start = NowNs();
    for (size_t b = 0; b < batch; ++b) {
      fn();
    }
    uint64_t elapsed = NowNs() - start;
    lat[s] = elapsed / batch;
    total += elapsed;
  }
  std::sort(lat.begin(), lat.end());
  LatencyStats stats;
  stats.mean_ns = static_cast<double>(total) /
                  static_cast<double>(samples * batch);
  auto pct = [&](double q) {
    return lat[static_cast<size_t>(static_cast<double>(samples - 1) * q)];
  };
  stats.p50_ns = pct(0.50);
  stats.p90_ns = pct(0.90);
  stats.p99_ns = pct(0.99);
  stats.max_ns = lat.back();
  return stats;
}

// One machine-readable result row per line, for scripts that trend the
// benchmarks across commits.
inline void JsonRow(const char* bench, const char* name,
                    const LatencyStats& s) {
  std::printf(
      "{\"bench\":\"%s\",\"case\":\"%s\",\"mean_ns\":%.2f,\"p50_ns\":%llu,"
      "\"p90_ns\":%llu,\"p99_ns\":%llu,\"max_ns\":%llu}\n",
      bench, name, s.mean_ns, static_cast<unsigned long long>(s.p50_ns),
      static_cast<unsigned long long>(s.p90_ns),
      static_cast<unsigned long long>(s.p99_ns),
      static_cast<unsigned long long>(s.max_ns));
}

}  // namespace bench
}  // namespace spin

#endif  // BENCH_BENCH_UTIL_H_
