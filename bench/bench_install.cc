// Installation overhead (§3.1 "Installation overhead").
//
// "Each time a new handler is installed for an event, the dispatcher
// regenerates the data structures and code associated with that event.
// Consequently, the overhead to install n handlers is O(n^2) ... The time
// to install a single handler is about 150us, whereas to install 100
// handlers on the same event takes about 30 milliseconds."
//
// We reproduce the protocol exactly: every install triggers a full table
// regeneration and stub recompilation; the cumulative cost over n installs
// is quadratic. Absolute numbers reflect 2026 hardware.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/dispatcher.h"

namespace {

uint64_t g_state = 1;

double InstallNCumulativeUs(int n, int repeats, bool lazy = false) {
  spin::Module module("InstallBench");
  std::vector<double> samples;
  for (int r = 0; r < repeats; ++r) {
    spin::Dispatcher::Config config;
    config.lazy_compile = lazy;
    spin::Dispatcher dispatcher(config);
    spin::Event<void(int64_t)> event("Bench.Install", &module, nullptr,
                                     &dispatcher);
    uint64_t start = spin::NowNs();
    for (int i = 0; i < n; ++i) {
      auto binding = dispatcher.InstallMicroHandler(
          event, spin::micro::ReturnConst(1, 0, false), {.module = &module});
      dispatcher.AddMicroGuard(binding,
                               spin::micro::GuardGlobalEq(&g_state, 1));
    }
    samples.push_back(static_cast<double>(spin::NowNs() - start) / 1e3);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

// Steady-state cost of one install+uninstall pair with `population`
// handlers already resident (each operation regenerates the event's
// dispatch structures, so the pair's cost grows with the population).
spin::bench::LatencyStats InstallPairStats(int population) {
  spin::Module module("InstallBench");
  spin::Dispatcher dispatcher;
  spin::Event<void(int64_t)> event("Bench.Install", &module, nullptr,
                                   &dispatcher);
  std::vector<spin::BindingHandle> resident;
  for (int i = 0; i < population; ++i) {
    resident.push_back(dispatcher.InstallMicroHandler(
        event, spin::micro::ReturnConst(1, 0, false), {.module = &module}));
  }
  return spin::bench::NsPerOpStats(
      [&] {
        auto binding = dispatcher.InstallMicroHandler(
            event, spin::micro::ReturnConst(1, 0, false),
            {.module = &module});
        dispatcher.Uninstall(binding, &module);
      },
      /*samples=*/2000, /*batch=*/1);
}

}  // namespace

int main() {
  using spin::bench::Rule;
  std::printf("Installation overhead (paper: ~150us for 1 handler, ~30ms "
              "for 100; O(n^2) total)\n");
  Rule('=');
  std::printf("%-10s %-18s %-20s\n", "handlers", "cumulative (us)",
              "per-install avg (us)");
  Rule();
  double t1 = 0;
  double t100 = 0;
  for (int n : {1, 5, 10, 25, 50, 100}) {
    double us = InstallNCumulativeUs(n, 5);
    std::printf("%-10d %-18.1f %-20.2f\n", n, us, us / n);
    if (n == 1) {
      t1 = us;
    }
    if (n == 100) {
      t100 = us;
    }
  }
  Rule();
  std::printf("cumulative(100)/cumulative(1) = %.0fx  "
              "(a linear regeneration would give 100x; the paper's "
              "quadratic regime gives ~200x: 150us -> 30ms)\n",
              t100 / t1);
  std::printf("expected shape: per-install cost grows with installed "
              "handlers (quadratic cumulative)\n\n");

  // The "more incremental (and economical) approach to installation" the
  // paper anticipates (§3.1): defer code generation until the event is
  // raised enough to prove hot.
  std::printf("with incremental (lazy) installation — the paper's "
              "anticipated approach, implemented:\n");
  std::printf("%-10s %-20s %-20s\n", "handlers", "eager (us)", "lazy (us)");
  for (int n : {10, 50, 100}) {
    std::printf("%-10d %-20.1f %-20.1f\n", n, InstallNCumulativeUs(n, 5),
                InstallNCumulativeUs(n, 5, /*lazy=*/true));
  }
  std::printf("expected shape: lazy installs stay near-linear; the "
              "compilation cost is paid once at promotion\n");

  std::printf("\nlatency distributions (JSON, 1 row per case):\n");
  spin::bench::JsonRow("install", "install_pair_pop0", InstallPairStats(0));
  spin::bench::JsonRow("install", "install_pair_pop10", InstallPairStats(10));
  spin::bench::JsonRow("install", "install_pair_pop50", InstallPairStats(50));
  return 0;
}
