// Table 3: "Major events raised while previewing a document."
//
// The paper's workload: Digital's X11 server running on SPIN displays a
// Postscript paper rendered by ghostview on another machine; page images
// arrive over TCP; the kernel's UNIX emulator serves the server's system
// calls; Strand.Run fires on every scheduling operation; Events.EventNotify
// is raised by the select implementation.
//
// Paper counts:   Ether.PacketArrived 2536, Ip 2529, Udp 24, Tcp 2505,
//                 OsfNet.Del/AddTcpPortHandler 3/3, MachineTrap.Syscall
//                 3976, Strand.Run 7936, Events.EventNotify 595.
// Paper times:    23.5s total; 0.12s raising/dispatching events (~0.5% of
//                 total, ~1.7% of kernel time).
//
// We replay the same event mix through the real substrates: a ghostview
// host streams 25 page images (2500 TCP segments) to the X-server host; an
// X-server strand issues ~4000 syscalls (reads/writes via the VFS plus 595
// selects); a second strand provides the background scheduling load.
#include <cstdio>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "src/emul/osf.h"
#include "src/net/tcp.h"
#include "src/profile/profile.h"
#include "src/sim/simulator.h"

namespace {

constexpr int kPages = 25;
constexpr int kSegmentsPerPage = 100;
constexpr size_t kSegmentBytes = 1448;
constexpr int kTargetSelects = 595;
constexpr int kTargetSyscalls = 3976;
constexpr int kUdpControlPackets = 24;

}  // namespace

int main() {
  using spin::bench::Rule;

  spin::Dispatcher dispatcher;
  spin::Kernel kernel(&dispatcher);
  spin::fs::Vfs vfs(&dispatcher);
  spin::emul::OsfEmulator osf(kernel, vfs);
  spin::emul::OsfNet osfnet(&dispatcher);
  spin::sim::Simulator sim;
  spin::net::Wire wire(&sim, spin::sim::LinkModel{});
  spin::net::Host spinbox("spinbox", 0x0a000001, &dispatcher);
  spin::net::Host ghost("ghostview", 0x0a000002, &dispatcher);
  wire.Attach(spinbox, ghost);

  spin::profile::Profiler profiler(dispatcher);
  profiler.Reset();
  uint64_t wall_start = spin::NowNs();

  // --- Connection setup: the ports the X session binds (3 add / 3 del). --
  for (int32_t port : {6000, 6001, 6010}) {
    osfnet.RegisterPort(port);
  }

  // Name-service chatter: 24 UDP control packets.
  int udp_got = 0;
  spin::net::UdpSocket ns_socket(spinbox, 111,
                                 [&](const spin::net::Packet&) {
                                   ++udp_got;
                                 });
  spin::net::UdpSocket ns_client(ghost, 30000, nullptr);

  // --- TCP: ghostview streams page images to the X server. ---------------
  std::string framebuffer;
  spin::net::TcpEndpoint xserver(spinbox, 6000);
  xserver.Listen([&](const std::string& data) { framebuffer += data; });
  spin::net::TcpEndpoint gv(ghost, 7001);
  gv.Connect(spinbox.ip(), 6000, nullptr);
  sim.Run();

  // --- The X server strand: syscalls against the emulator. ---------------
  spin::AddressSpace& xspace = kernel.CreateAddressSpace();
  osf.AdoptTask(xspace);
  int64_t fb_fd = -1;
  int syscalls_issued = 0;
  int selects_issued = 0;
  spin::Strand& xstrand = kernel.CreateStrand(
      "Xserver",
      [&](spin::Strand& strand) {
        spin::SavedState& ms = strand.saved_state();
        if (fb_fd < 0) {
          ms = spin::SavedState{};
          ms.v0 = spin::emul::kOsfOpen;
          ms.a[0] = reinterpret_cast<int64_t>("/dev/fb0");
          ms.a[1] = spin::fs::kOpenCreate;
          kernel.Syscall(strand);
          fb_fd = ms.v0;
          ++syscalls_issued;
          return true;
        }
        ms = spin::SavedState{};
        // 595 of the 3976 syscalls are selects (one per ~6.7 operations);
        // the rest write rendered page data into the framebuffer file.
        if (selects_issued * kTargetSyscalls <=
                syscalls_issued * kTargetSelects &&
            selects_issued < kTargetSelects) {
          ms.v0 = spin::emul::kOsfSelect;
          kernel.Syscall(strand);
          ++selects_issued;
        } else {
          static const char kPixels[128] = {1};
          ms.v0 = spin::emul::kOsfWrite;
          ms.a[0] = fb_fd;
          ms.a[1] = reinterpret_cast<int64_t>(kPixels);
          ms.a[2] = sizeof(kPixels);
          kernel.Syscall(strand);
        }
        ++syscalls_issued;
        return syscalls_issued < kTargetSyscalls;
      },
      &xspace);
  (void)xstrand;

  // A background strand (window manager etc.) supplies the other half of
  // the scheduling load without issuing syscalls.
  int background_quanta = 0;
  kernel.CreateStrand("background", [&](spin::Strand&) {
    return ++background_quanta < kTargetSyscalls;
  });

  // --- Drive the workload: stream pages, deliver packets, run strands. ---
  std::string segment(kSegmentBytes, 'P');
  int control_sent = 0;
  for (int page = 0; page < kPages; ++page) {
    for (int chunk = 0; chunk < kSegmentsPerPage; ++chunk) {
      gv.Send(segment);
    }
    if (control_sent < kUdpControlPackets) {
      ns_client.SendTo(spinbox.ip(), 111, "whoami");
      ++control_sent;
    }
    sim.Run();
    kernel.RunUntilIdle((kTargetSyscalls * 2) / kPages);
  }
  // Pad the UDP count to the paper's 24 and drain everything.
  while (control_sent < kUdpControlPackets) {
    ns_client.SendTo(spinbox.ip(), 111, "whoami");
    ++control_sent;
  }
  sim.Run();
  kernel.RunUntilIdle();
  for (int32_t port : {6000, 6001, 6010}) {
    osfnet.UnregisterPort(port);
  }

  uint64_t wall_ns = spin::NowNs() - wall_start;

  // --- Report: the Table 3 rows. ------------------------------------------
  std::printf("Table 3: major events raised while previewing a document\n");
  std::printf("(25 pages, %zu bytes of page images streamed over TCP)\n\n",
              framebuffer.size());
  std::vector<const spin::EventBase*> rows = {
      &spinbox.EtherPacketArrived, &spinbox.IpPacketArrived,
      &spinbox.UdpPacketArrived,   &spinbox.TcpPacketArrived,
      &osfnet.DelTcpPortHandler,   &osfnet.AddTcpPortHandler,
      &kernel.MachineTrapSyscall,  &kernel.StrandRun,
      &osf.EventNotify,
  };
  spin::profile::Profiler::PrintTable(std::cout, profiler.SnapshotOf(rows));

  std::printf("\npaper's counts for the same rows: 2536, 2529, 24, 2505, "
              "3, 3, 3976, 7936, 595\n");
  Rule();

  // --- The §3.2 time breakdown. --------------------------------------------
  double total_s = static_cast<double>(wall_ns) / 1e9;
  uint64_t raises = 0;
  for (const auto& profile : profiler.Snapshot()) {
    raises += profile.raised;
  }
  // Top-level event handling time (nested raises would double-count:
  // Ether's time already contains Ip's, which contains Udp/Tcp's; the
  // syscall time contains the VFS events').
  double top_s = 0;
  for (const spin::EventBase* event :
       std::initializer_list<const spin::EventBase*>{
           &spinbox.EtherPacketArrived, &kernel.MachineTrapSyscall,
           &kernel.StrandRun, &osfnet.AddTcpPortHandler,
           &osfnet.DelTcpPortHandler}) {
    top_s += static_cast<double>(event->raise_ns()) / 1e9;
  }
  // Pure dispatch overhead estimate: the Table 1 single-guarded-handler
  // dispatch cost times the number of raises.
  const double kDispatchNs = 30.0;
  double dispatch_s = static_cast<double>(raises) * kDispatchNs / 1e9;
  std::printf("workload wall time:                %8.3f s "
              "(paper: 23.5 s, mostly idle + X11 rendering)\n",
              total_s);
  std::printf("top-level event handling time:     %8.3f s (%.1f%% of wall)\n",
              top_s, top_s / total_s * 100.0);
  std::printf("events raised:                     %8llu\n",
              static_cast<unsigned long long>(raises));
  std::printf("est. pure dispatch overhead:       %8.4f s (%.1f%% of wall; "
              "paper: 0.12 s = 0.5%% of total, 1.7%% of kernel time)\n",
              dispatch_s, dispatch_s / total_s * 100.0);
  return 0;
}
