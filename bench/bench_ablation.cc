// Ablation of the dispatcher's design decisions (DESIGN.md D1-D4):
//   D1 intrinsic bypass, D3 runtime code generation (+ inlining, +
//   peephole), D4 guard reordering.
//
// Workload: the Table 1 midpoint — an event with one int64 argument and 10
// handlers, each gated by a global-compare guard — plus an intrinsic-only
// event for D1 and a mixed native/micro guard set for D4.
#include <cstdio>
#include <string_view>

#include "bench/bench_util.h"
#include "src/core/dispatcher.h"
#include "src/obs/trace.h"

namespace {

uint64_t g_state = 1;
uint64_t g_sink = 0;

void IntrinsicHandler(int64_t v) { benchmark::DoNotOptimize(g_sink += v); }

bool ExpensiveNativeGuard(int64_t) {
  // An out-of-line guard with a non-trivial body (a short hash loop).
  uint64_t h = g_state;
  for (int i = 0; i < 16; ++i) {
    h = h * 1099511628211ull + 0x9e3779b97f4a7c15ull;
  }
  benchmark::DoNotOptimize(h);
  return h != 0 || g_state < 2;  // always true, opaque to the compiler
}

// Shared setup for the Table 1 midpoint workload (10 guarded handlers),
// measured either as a median (table) or a distribution (JSON row).
template <typename Measure>
auto WithTenHandlers(const spin::Dispatcher::Config& config,
                     Measure measure) {
  spin::Module module("Ablation");
  spin::Dispatcher dispatcher(config);
  spin::Event<void(int64_t)> event("Ablate.Event", &module, nullptr,
                                   &dispatcher);
  for (int i = 0; i < 10; ++i) {
    auto binding = dispatcher.InstallMicroHandler(
        event, spin::micro::ReturnConst(1, 0, false), {.module = &module});
    dispatcher.AddMicroGuard(binding,
                             spin::micro::GuardGlobalEq(&g_state, 1));
  }
  return measure(event);
}

double MeasureTenHandlers(const spin::Dispatcher::Config& config) {
  return WithTenHandlers(config, [](auto& event) {
    return spin::bench::NsPerOp([&] { event.Raise(7); }, 100000);
  });
}

spin::bench::LatencyStats StatsTenHandlers(
    const spin::Dispatcher::Config& config, size_t samples) {
  return WithTenHandlers(config, [samples](auto& event) {
    return spin::bench::NsPerOpStats([&] { event.Raise(7); }, samples);
  });
}

// The same workload with the flight recorder + span propagation live:
// every raise opens a span and writes begin/end + per-handler records
// plus the kPhase self-time segments PhaseScope stamps.
spin::bench::LatencyStats StatsTenHandlersTraced(
    const spin::Dispatcher::Config& config, size_t samples) {
  spin::obs::FlightRecorder::Global().Reset();
  return WithTenHandlers(config, [samples](auto& event) {
    event.owner().EnableTracing(true);
    auto stats = spin::bench::NsPerOpStats([&] { event.Raise(7); },
                                           samples);
    event.owner().EnableTracing(false);
    return stats;
  });
}

// Sampled tracing at 1-in-rate: production tables stay installed and the
// sampled-out raises pay only the decision (a thread-local countdown).
spin::bench::LatencyStats StatsTenHandlersSampled(
    const spin::Dispatcher::Config& config, uint32_t rate, size_t samples) {
  spin::obs::FlightRecorder::Global().Reset();
  return WithTenHandlers(config, [rate, samples](auto& event) {
    event.owner().SetTracing({spin::obs::TraceMode::kSampled, rate});
    auto stats = spin::bench::NsPerOpStats([&] { event.Raise(7); },
                                           samples);
    event.owner().SetTracing({spin::obs::TraceMode::kOff, 1});
    return stats;
  });
}

double MeasureIntrinsic(bool allow_direct) {
  spin::Module module("Ablation");
  spin::Dispatcher::Config config;
  config.allow_direct = allow_direct;
  spin::Dispatcher dispatcher(config);
  spin::Event<void(int64_t)> event("Ablate.Intrinsic", &module,
                                   &IntrinsicHandler, &dispatcher);
  return spin::bench::NsPerOp([&] { event.Raise(7); });
}

// A Table 2-like shape for the decision tree: 32 bindings, each guarded by
// a distinct port constant; every raise matches exactly one.
double MeasurePortDemux(bool guard_tree) {
  spin::Module module("Ablation");
  spin::Dispatcher::Config config;
  config.guard_tree = guard_tree;
  spin::Dispatcher dispatcher(config);
  struct Pkt {
    uint8_t data[16];
  };
  spin::Event<void(Pkt*)> event("Ablate.Demux", &module, nullptr,
                                &dispatcher);
  for (int i = 0; i < 32; ++i) {
    auto binding = dispatcher.InstallMicroHandler(
        event, spin::micro::ReturnConst(1, 0, false), {.module = &module});
    dispatcher.AddMicroGuard(
        binding, spin::micro::GuardArgFieldEq(
                     1, 0, 4, 2, ~0ull, static_cast<uint64_t>(1000 + i)));
  }
  Pkt pkt{};
  pkt.data[4] = static_cast<uint8_t>((1000 + 31) & 0xff);
  pkt.data[5] = static_cast<uint8_t>((1000 + 31) >> 8);
  return spin::bench::NsPerOp([&] { event.Raise(&pkt); }, 100000);
}

double MeasureGuardReorder(bool reorder) {
  // One binding, two guards: an expensive out-of-line native guard that
  // always passes and a cheap inlinable micro guard that always fails.
  // FUNCTIONAL guards are order-free, so the dispatcher may evaluate the
  // cheap one first and short-circuit the expensive call (§2.3).
  spin::Module module("Ablation");
  spin::Dispatcher::Config config;
  config.reorder_guards = reorder;
  spin::Dispatcher dispatcher(config);
  spin::Event<void(int64_t)> event("Ablate.Guards", &module, nullptr,
                                   &dispatcher);
  // Default handler so raises with zero fired handlers do not throw.
  dispatcher.InstallDefaultHandler(event, +[](int64_t) {},
                                   {.module = &module});
  auto binding = dispatcher.InstallMicroHandler(
      event, spin::micro::ReturnConst(1, 0, false), {.module = &module});
  dispatcher.AddGuard(event, binding, &ExpensiveNativeGuard);
  dispatcher.AddMicroGuard(binding,
                           spin::micro::ReturnConst(1, 0, true));  // false
  return spin::bench::NsPerOp([&] { event.Raise(7); }, 100000);
}

}  // namespace

// Machine-independent ratio row: both sides measured on this machine in
// this process, so the quotient survives hardware changes and can gate
// tightly in CI where absolute nanoseconds cannot.
void RatioRow(const char* name, uint64_t num, uint64_t den) {
  std::printf("{\"bench\":\"ablation\",\"case\":\"%s\",\"p50_ratio\":%.3f}\n",
              name,
              den == 0 ? 0.0
                       : static_cast<double>(num) / static_cast<double>(den));
}

int main(int argc, char** argv) {
  using spin::bench::Rule;
  // --smoke: JSON rows only, at reduced sample counts — the CI bench
  // gate's input. The human-readable tables (large-batch medians) are
  // the slow part and say nothing bench_diff.py consumes.
  const bool smoke = argc > 1 && std::string_view(argv[1]) == "--smoke";
  const size_t samples = smoke ? 2000 : 10000;

  spin::Dispatcher::Config full;
  spin::Dispatcher::Config no_inline = full;
  no_inline.inline_micro = false;
  spin::Dispatcher::Config interp = full;
  interp.enable_jit = false;

  if (!smoke) {
    std::printf("Ablation of dispatcher design decisions (ns per raise)\n");
    Rule('=');

    std::printf("D1 intrinsic bypass (1 intrinsic handler):\n");
    std::printf("  %-40s %8.1f ns\n", "direct-call bypass on",
                MeasureIntrinsic(true));
    std::printf("  %-40s %8.1f ns\n", "bypass off (full dispatch path)",
                MeasureIntrinsic(false));

    std::printf("D3 runtime code generation (10 guarded handlers):\n");
    std::printf("  %-40s %8.1f ns\n", "JIT + inline + peephole",
                MeasureTenHandlers(full));
    spin::Dispatcher::Config no_opt = full;
    no_opt.optimize = false;
    std::printf("  %-40s %8.1f ns\n", "JIT + inline, no peephole",
                MeasureTenHandlers(no_opt));
    std::printf("  %-40s %8.1f ns\n", "JIT, out-of-line guards/handlers",
                MeasureTenHandlers(no_inline));
    std::printf("  %-40s %8.1f ns\n", "interpreter (no codegen)",
                MeasureTenHandlers(interp));

    std::printf("guard decision tree (32-way port demultiplex, worst-case "
                "port):\n");
    std::printf("  %-40s %8.1f ns\n", "linear guard chain",
                MeasurePortDemux(false));
    std::printf("  %-40s %8.1f ns\n", "binary-search decision tree",
                MeasurePortDemux(true));

    std::printf("D4 guard reordering (cheap failing guard + expensive "
                "passing guard):\n");
    std::printf("  %-40s %8.1f ns\n", "reorder on (cheap guard first)",
                MeasureGuardReorder(true));
    std::printf("  %-40s %8.1f ns\n", "reorder off (install order)",
                MeasureGuardReorder(false));

    Rule();
    std::printf("expected shape: each mechanism removes measurable cost; "
                "interpreter is the slowest arm\n");
  }

  spin::bench::LatencyStats stats_full = StatsTenHandlers(full, samples);
  spin::bench::LatencyStats stats_no_inline =
      StatsTenHandlers(no_inline, samples);
  spin::bench::LatencyStats stats_interp = StatsTenHandlers(interp, samples);
  spin::bench::LatencyStats tracing_off = StatsTenHandlers(full, samples);
  spin::bench::LatencyStats tracing_on =
      StatsTenHandlersTraced(full, samples);
  spin::bench::LatencyStats sampled_128 =
      StatsTenHandlersSampled(full, 128, samples);
  spin::bench::LatencyStats sampled_8 =
      StatsTenHandlersSampled(full, 8, samples);

  if (!smoke) {
    std::printf("\ncausal tracing (flight recorder + span propagation, same "
                "10-handler workload):\n");
    std::printf("  %-40s %8llu ns p50\n", "tracing off",
                static_cast<unsigned long long>(tracing_off.p50_ns));
    std::printf("  %-40s %8llu ns p50\n", "sampled 1-in-128",
                static_cast<unsigned long long>(sampled_128.p50_ns));
    std::printf("  %-40s %8llu ns p50\n", "sampled 1-in-8",
                static_cast<unsigned long long>(sampled_8.p50_ns));
    std::printf("  %-40s %8llu ns p50\n", "tracing on (full)",
                static_cast<unsigned long long>(tracing_on.p50_ns));
    std::printf("  sampled-128 / off p50 ratio: %.2fx (budget 2.0x)\n",
                tracing_off.p50_ns == 0
                    ? 0.0
                    : static_cast<double>(sampled_128.p50_ns) /
                          static_cast<double>(tracing_off.p50_ns));
    std::printf("\nlatency distributions (JSON, 1 row per case):\n");
  }

  spin::bench::JsonRow("ablation", "ten_handlers_full", stats_full);
  spin::bench::JsonRow("ablation", "ten_handlers_no_inline",
                       stats_no_inline);
  spin::bench::JsonRow("ablation", "ten_handlers_interp", stats_interp);
  spin::bench::JsonRow("ablation", "ten_handlers_tracing_off", tracing_off);
  spin::bench::JsonRow("ablation", "ten_handlers_sampled_128", sampled_128);
  spin::bench::JsonRow("ablation", "ten_handlers_sampled_8", sampled_8);
  spin::bench::JsonRow("ablation", "ten_handlers_tracing_on", tracing_on);
  RatioRow("sampled_128_over_off", sampled_128.p50_ns, tracing_off.p50_ns);
  RatioRow("tracing_on_over_off", tracing_on.p50_ns, tracing_off.p50_ns);
  RatioRow("interp_over_full", stats_interp.p50_ns, stats_full.p50_ns);
  return 0;
}
