// Remote event dispatch: sync roundtrips, async throughput, and the retry
// path under injected loss.
//
// The paper's dispatcher is local; src/remote extends it across the
// simulated 10 Mb/s wire (the Table 2 link model: 800 ns/byte + 25 us
// propagation per hop). The numbers of interest:
//   - a sync remote raise is wire-time dominated: the virtual-time
//     roundtrip is ~150 us while the measured host processing (marshal +
//     dispatch + unmarshal, real clock) is orders of magnitude smaller;
//   - payload grows the roundtrip at the serialization rate, 9 request
//     bytes (tag + value) per argument;
//   - under injected loss the median stays at the clean roundtrip while
//     the tail absorbs the 2 ms retry timeouts.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/errors.h"
#include "src/net/host.h"
#include "src/obs/context.h"
#include "src/obs/critical_path.h"
#include "src/obs/query.h"
#include "src/obs/trace.h"
#include "src/remote/exporter.h"
#include "src/remote/proxy.h"
#include "src/sim/simulator.h"

namespace {

using spin::bench::LatencyStats;

// Client + server attached to one wire; mirrors the remote_test fixture.
struct Rig {
  spin::Dispatcher dispatcher;
  spin::sim::Simulator sim;
  spin::net::Wire wire{&sim, spin::sim::LinkModel{}};
  spin::net::Host client{"client", 0x0a000001, &dispatcher};
  spin::net::Host server{"server", 0x0a000002, &dispatcher};
  spin::remote::Exporter exporter{server};

  Rig() { wire.Attach(client, server); }

  spin::remote::ProxyOptions Opts(uint16_t local_port) {
    spin::remote::ProxyOptions opts;
    opts.remote_ip = server.ip();
    opts.local_port = local_port;
    return opts;
  }
};

LatencyStats StatsFromSamples(std::vector<uint64_t> lat) {
  LatencyStats stats;
  if (lat.empty()) {
    return stats;
  }
  uint64_t total = 0;
  for (uint64_t v : lat) {
    total += v;
  }
  std::sort(lat.begin(), lat.end());
  stats.mean_ns =
      static_cast<double>(total) / static_cast<double>(lat.size());
  auto pct = [&](double q) {
    return lat[static_cast<size_t>(static_cast<double>(lat.size() - 1) * q)];
  };
  stats.p50_ns = pct(0.50);
  stats.p90_ns = pct(0.90);
  stats.p99_ns = pct(0.99);
  stats.max_ns = lat.back();
  return stats;
}

uint64_t Sum0() { return 1; }
uint64_t Sum2(uint64_t a, uint64_t b) { return a + b; }
uint64_t Sum4(uint64_t a, uint64_t b, uint64_t c, uint64_t d) {
  return a + b + c + d;
}
uint64_t Sum8(uint64_t a, uint64_t b, uint64_t c, uint64_t d, uint64_t e,
              uint64_t f, uint64_t g, uint64_t h) {
  return a + b + c + d + e + f + g + h;
}

struct SyncResult {
  LatencyStats wire;    // virtual-time roundtrip (what the raiser waits)
  LatencyStats host;    // real-clock processing per raise
  size_t request_bytes; // encoded request payload
};

// One proxy, `rounds` sync raises; virtual-time and wall-time per raise.
template <typename... Args>
SyncResult SyncRoundtrip(int rounds, uint64_t (*handler)(Args...),
                         Args... args) {
  Rig rig;
  spin::Event<uint64_t(Args...)> server_ev("Bench.Remote", nullptr, nullptr,
                                           &rig.dispatcher);
  rig.dispatcher.InstallHandler(server_ev, handler);
  rig.exporter.Export(server_ev);
  spin::Event<uint64_t(Args...)> client_ev("Bench.Remote", nullptr, nullptr,
                                           &rig.dispatcher);
  spin::remote::EventProxy proxy(rig.client, &rig.sim, client_ev,
                                 rig.Opts(9100));

  client_ev.Raise(args...);  // warmup (exporter map, socket path)
  std::vector<uint64_t> wire_ns(rounds);
  std::vector<uint64_t> host_ns(rounds);
  for (int i = 0; i < rounds; ++i) {
    uint64_t v0 = rig.sim.now_ns();
    uint64_t w0 = spin::NowNs();
    client_ev.Raise(args...);
    host_ns[i] = spin::NowNs() - w0;
    wire_ns[i] = rig.sim.now_ns() - v0;
  }

  spin::remote::RequestMsg probe;
  probe.event_name = "Bench.Remote";
  probe.params.assign(sizeof...(Args),
                      spin::remote::WireParam{
                          static_cast<uint8_t>(spin::TypeClass::kUInt64),
                          false});
  probe.args.assign(sizeof...(Args), 0);
  return SyncResult{StatsFromSamples(std::move(wire_ns)),
                    StatsFromSamples(std::move(host_ns)),
                    spin::remote::EncodeRequest(probe).size()};
}

// The cost of causal tracing on the sync remote path: the same 2-arg
// roundtrip with the flight recorder + span propagation on vs off. The
// span trailer adds 12 request bytes (~9.6 us of virtual wire time at
// 800 ns/byte); the host-side delta is the span bookkeeping itself
// (context save/restore, trailer encode/decode, trace records).
SyncResult SyncRoundtripTraced(int rounds, bool tracing) {
  Rig rig;
  spin::Event<uint64_t(uint64_t, uint64_t)> server_ev(
      "Bench.Remote", nullptr, nullptr, &rig.dispatcher);
  rig.dispatcher.InstallHandler(server_ev, &Sum2);
  rig.exporter.Export(server_ev);
  spin::Event<uint64_t(uint64_t, uint64_t)> client_ev(
      "Bench.Remote", nullptr, nullptr, &rig.dispatcher);
  spin::remote::EventProxy proxy(rig.client, &rig.sim, client_ev,
                                 rig.Opts(9104));

  client_ev.Raise(1, 2);  // warmup (exporter map, socket path)
  if (tracing) {
    spin::obs::FlightRecorder::Global().Reset();
    rig.dispatcher.EnableTracing(true);
  }
  std::vector<uint64_t> wire_ns(rounds);
  std::vector<uint64_t> host_ns(rounds);
  {
    spin::obs::HostScope on_client(rig.client.trace_host_id());
    for (int i = 0; i < rounds; ++i) {
      uint64_t v0 = rig.sim.now_ns();
      uint64_t w0 = spin::NowNs();
      client_ev.Raise(i, i);
      host_ns[i] = spin::NowNs() - w0;
      wire_ns[i] = rig.sim.now_ns() - v0;
    }
  }
  if (tracing) {
    rig.dispatcher.EnableTracing(false);
  }

  spin::remote::RequestMsg probe;
  probe.event_name = "Bench.Remote";
  probe.params.assign(2, spin::remote::WireParam{
                             static_cast<uint8_t>(spin::TypeClass::kUInt64),
                             false});
  probe.args.assign(2, 0);
  if (tracing) {
    probe.span_id = 1;
    probe.origin_host = 1;
  }
  return SyncResult{StatsFromSamples(std::move(wire_ns)),
                    StatsFromSamples(std::move(host_ns)),
                    spin::remote::EncodeRequest(probe).size()};
}

// An imposed always-true guard matching the event's arity (passed via the
// authorizer ctx), so the same authorizer serves the 2- and 8-arg phase
// attribution cells.
bool PassingArityAuthorizer(spin::AuthRequest& request, void* ctx) {
  if (request.op == spin::AuthOp::kInstall) {
    request.ImposeGuard(spin::MakeImposedMicroGuard(spin::micro::ReturnConst(
        static_cast<int>(reinterpret_cast<intptr_t>(ctx)), /*value=*/1,
        /*functional=*/true)));
  }
  return true;
}

// Where does a remote roundtrip spend its time? Trace a batch of sync
// raises, then fold the kPhase records with obs::CriticalPath into one
// attribution row: real-clock self-time per phase (marshal, wire,
// dispatch, unmarshal, guard_eval, handler_body, ...) summed over every
// raise's span tree, plus the virtual-clock wire transit and the
// explicit untracked residual. `coverage` is tracked real time over the
// summed span walls — critical_path_test holds it above 0.95 on this
// exact path. Payload scales by argument count (9 request bytes each);
// the scalar wire format has no bulk-payload parameter, so "big" is
// args8 (72 B encoded), not 4 KB.
template <typename... Args>
void PhaseAttributionRow(const char* name, bool with_guard, int rounds,
                         uint64_t (*handler)(Args...), Args... args) {
  Rig rig;
  spin::Module authority{"Bench.PhaseAuthority"};
  spin::Event<uint64_t(Args...)> server_ev(
      "Bench.Phases", with_guard ? &authority : nullptr, nullptr,
      &rig.dispatcher);
  rig.dispatcher.InstallHandler(server_ev, handler);
  if (with_guard) {
    // An imposed always-true guard: adds a guard_eval phase on the
    // exporter-side dispatch without rejecting anything.
    rig.dispatcher.InstallAuthorizer(
        server_ev, &PassingArityAuthorizer,
        reinterpret_cast<void*>(static_cast<intptr_t>(sizeof...(Args))),
        authority);
  }
  rig.exporter.Export(server_ev);
  spin::Event<uint64_t(Args...)> client_ev("Bench.Phases", nullptr, nullptr,
                                           &rig.dispatcher);
  spin::remote::EventProxy proxy(rig.client, &rig.sim, client_ev,
                                 rig.Opts(9105));

  client_ev.Raise(args...);  // warmup (exporter map, socket path)
  spin::obs::FlightRecorder::Global().Reset();
  rig.dispatcher.EnableTracing(true);
  {
    spin::obs::HostScope on_client(rig.client.trace_host_id());
    for (int i = 0; i < rounds; ++i) {
      client_ev.Raise(args...);
    }
  }
  rig.dispatcher.EnableTracing(false);

  spin::obs::TraceQuery query(spin::obs::FlightRecorder::Global().Snapshot());
  spin::obs::CriticalPath paths(query);
  uint64_t wall = 0;
  uint64_t tracked = 0;
  uint64_t self[spin::obs::kNumPhases] = {};
  uint64_t virt[spin::obs::kNumPhases] = {};
  for (uint64_t root : paths.Roots()) {
    spin::obs::CriticalPath::PhaseBreakdown b = paths.Attribute(root);
    wall += b.wall_ns;
    tracked += b.tracked_ns;
    for (size_t p = 0; p < spin::obs::kNumPhases; ++p) {
      self[p] += b.self_ns[p];
      virt[p] += b.virtual_ns[p];
    }
  }
  std::printf("{\"bench\":\"remote_phases\",\"case\":\"%s\","
              "\"roundtrips\":%d,\"wall_ns\":%llu,\"tracked_ns\":%llu,"
              "\"residual_ns\":%llu,\"coverage\":%.4f",
              name, rounds, static_cast<unsigned long long>(wall),
              static_cast<unsigned long long>(tracked),
              static_cast<unsigned long long>(wall > tracked ? wall - tracked
                                                             : 0),
              wall == 0 ? 0.0
                        : static_cast<double>(tracked) /
                              static_cast<double>(wall));
  for (size_t p = 0; p < spin::obs::kNumPhases; ++p) {
    if (self[p] != 0) {
      std::printf(",\"%s_ns\":%llu",
                  spin::obs::PhaseName(static_cast<spin::obs::Phase>(p)),
                  static_cast<unsigned long long>(self[p]));
    }
  }
  for (size_t p = 0; p < spin::obs::kNumPhases; ++p) {
    if (virt[p] != 0) {
      std::printf(",\"%s_virtual_ns\":%llu",
                  spin::obs::PhaseName(static_cast<spin::obs::Phase>(p)),
                  static_cast<unsigned long long>(virt[p]));
    }
  }
  std::printf("}\n");
}

// Sync raises against a wire with seeded random loss: the median stays at
// the clean roundtrip, the tail pays the retry timeouts.
LatencyStats RetryPathStats(int rounds, double loss, uint64_t seed,
                            int* timed_out) {
  Rig rig;
  rig.wire.SetRandomLoss(loss, seed);
  spin::Event<uint64_t(uint64_t, uint64_t)> server_ev(
      "Bench.Remote", nullptr, nullptr, &rig.dispatcher);
  rig.dispatcher.InstallHandler(server_ev, &Sum2);
  rig.exporter.Export(server_ev);
  spin::Event<uint64_t(uint64_t, uint64_t)> client_ev(
      "Bench.Remote", nullptr, nullptr, &rig.dispatcher);
  spin::remote::ProxyOptions opts = rig.Opts(9101);
  opts.max_attempts = 10;
  spin::remote::EventProxy proxy(rig.client, &rig.sim, client_ev, opts);

  std::vector<uint64_t> wire_ns;
  wire_ns.reserve(rounds);
  *timed_out = 0;
  for (int i = 0; i < rounds; ++i) {
    uint64_t v0 = rig.sim.now_ns();
    try {
      client_ev.Raise(i, i);
      wire_ns.push_back(rig.sim.now_ns() - v0);
    } catch (const spin::RemoteError&) {
      ++*timed_out;  // deterministic outcome of the seed; not a sample
    }
  }
  return StatsFromSamples(std::move(wire_ns));
}

// Install-time authorization (§2.5 across the wire): every proxy pays one
// BindRequest/BindReply handshake before its first raise. When the event
// carries an authorizer the exporter also runs the auth callback and
// serializes any imposed guards into the reply.
bool BenchAuthorizer(spin::AuthRequest& request, void*) {
  if (request.op == spin::AuthOp::kInstall) {
    request.ImposeGuard(spin::MakeImposedMicroGuard(
        spin::micro::ReturnConst(/*num_args=*/2, /*value=*/1,
                                 /*functional=*/true)));
  }
  return true;
}

// A wireable imposed guard that REJECTS the bench payload: admit only
// raises whose first argument equals a magic value the bench never sends.
// FUNCTIONAL and address-free, so it survives the wire admission verifier
// and compiles through the guard JIT on the receiving side.
spin::micro::Program RejectingGuard() {
  return std::move(
             spin::micro::ProgramBuilder(/*num_args=*/2, /*functional=*/true)
                 .LoadArg(0, 0)
                 .LoadImm(1, 0x5eedfeedull)
                 .CmpEq(2, 0, 1)
                 .Ret(2))
      .Build();
}

bool RejectingAuthorizer(spin::AuthRequest& request, void*) {
  if (request.op == spin::AuthOp::kInstall) {
    request.ImposeGuard(spin::MakeImposedMicroGuard(RejectingGuard()));
  }
  return true;
}

struct GuardRejectResult {
  LatencyStats raise_host;  // real-clock cost of one rejected raise
  uint64_t wire_ns;         // virtual time consumed by the raise loop
};

// Per-raise cost of a REJECTING guard on a plain local binding: the
// dispatcher evaluates the guard, skips the guarded handler, and the
// event's default implementation (§2.3) answers instead. With kJit the
// guard runs through the verified-JIT fast path; with kInterpret it
// takes the portable interpreter (the nojit oracle).
GuardRejectResult GuardRejectLocal(int rounds,
                                   spin::Dispatcher::GuardCompileMode mode) {
  spin::Dispatcher dispatcher;
  spin::Event<uint64_t(uint64_t, uint64_t)> ev("Bench.GuardLocal", nullptr,
                                               nullptr, &dispatcher);
  dispatcher.InstallDefaultHandler(ev, &Sum2);
  spin::BindingHandle guarded = dispatcher.InstallHandler(ev, &Sum2);
  dispatcher.AddMicroGuard(guarded, RejectingGuard(), mode);

  ev.Raise(1, 2);  // warmup (dispatch plan, guard body)
  std::vector<uint64_t> host_ns(rounds);
  for (int i = 0; i < rounds; ++i) {
    uint64_t w0 = spin::NowNs();
    ev.Raise(static_cast<uint64_t>(i), static_cast<uint64_t>(i));
    host_ns[i] = spin::NowNs() - w0;
  }
  return GuardRejectResult{StatsFromSamples(std::move(host_ns)), 0};
}

// The same rejecting guard imposed ACROSS THE WIRE: the exporter's
// authorizer ships it in the BindReply, the proxy's admission verifier
// re-checks it, and (with jit_guards on) installs the compiled body on
// the proxy binding. A rejected raise is then settled entirely on the
// raising host — the guard fires before EventProxy::Invoke, so no
// datagram leaves and wire_ns stays zero.
GuardRejectResult GuardRejectRemote(int rounds, bool jit_guards) {
  Rig rig;
  spin::Module authority{"Bench.GuardAuthority"};
  spin::Event<uint64_t(uint64_t, uint64_t)> server_ev(
      "Bench.Guard", &authority, nullptr, &rig.dispatcher);
  rig.dispatcher.InstallHandler(server_ev, &Sum2);
  rig.dispatcher.InstallAuthorizer(server_ev, &RejectingAuthorizer, nullptr,
                                   authority);
  rig.exporter.Export(server_ev);
  // The client event carries a default implementation so a guard-rejected
  // raise still produces a result instead of a no-handler throw — the
  // same fallback the local case uses, so the rows differ only in how
  // the guarded binding was installed.
  spin::Event<uint64_t(uint64_t, uint64_t)> client_ev(
      "Bench.Guard", nullptr, nullptr, &rig.dispatcher);
  rig.dispatcher.InstallDefaultHandler(client_ev, &Sum2);
  spin::remote::ProxyOptions opts = rig.Opts(9104);
  opts.jit_guards = jit_guards;
  spin::remote::EventProxy proxy(rig.client, &rig.sim, client_ev, opts);

  client_ev.Raise(1, 2);  // warmup; already rejected locally
  uint64_t v0 = rig.sim.now_ns();
  std::vector<uint64_t> host_ns(rounds);
  for (int i = 0; i < rounds; ++i) {
    uint64_t w0 = spin::NowNs();
    client_ev.Raise(static_cast<uint64_t>(i), static_cast<uint64_t>(i));
    host_ns[i] = spin::NowNs() - w0;
  }
  return GuardRejectResult{StatsFromSamples(std::move(host_ns)),
                           rig.sim.now_ns() - v0};
}

struct BindResult {
  LatencyStats bind_wire;   // virtual-time cost of the bind handshake
  LatencyStats raise_wire;  // virtual-time cost of one sync raise after it
};

BindResult BindHandshakeOverhead(int rounds, bool with_authorizer) {
  Rig rig;
  spin::Module authority{"Bench.Authority"};
  spin::Event<uint64_t(uint64_t, uint64_t)> server_ev(
      "Bench.Bind", &authority, nullptr, &rig.dispatcher);
  rig.dispatcher.InstallHandler(server_ev, &Sum2);
  if (with_authorizer) {
    rig.dispatcher.InstallAuthorizer(server_ev, &BenchAuthorizer, nullptr,
                                     authority);
  }
  rig.exporter.Export(server_ev);
  spin::Event<uint64_t(uint64_t, uint64_t)> client_ev(
      "Bench.Bind", nullptr, nullptr, &rig.dispatcher);

  std::vector<uint64_t> bind_ns(rounds);
  std::vector<uint64_t> raise_ns(rounds);
  for (int i = 0; i < rounds; ++i) {
    uint64_t v0 = rig.sim.now_ns();
    spin::remote::EventProxy proxy(rig.client, &rig.sim, client_ev,
                                   rig.Opts(9103));
    bind_ns[i] = rig.sim.now_ns() - v0;
    v0 = rig.sim.now_ns();
    client_ev.Raise(i, i);
    raise_ns[i] = rig.sim.now_ns() - v0;
  }
  return BindResult{StatsFromSamples(std::move(bind_ns)),
                    StatsFromSamples(std::move(raise_ns))};
}

struct AsyncResult {
  double raises_per_sec;  // wall-clock enqueue+drain+flush pipeline rate
  LatencyStats enqueue;   // real-clock cost of one fire-and-forget raise
  uint64_t delivered;
};

AsyncResult AsyncThroughput(int batches, int batch_size) {
  Rig rig;
  std::atomic<uint64_t> delivered{0};
  spin::Event<void(uint64_t)> server_ev("Bench.Async", nullptr, nullptr,
                                        &rig.dispatcher);
  rig.dispatcher.InstallLambda(server_ev, [&delivered](uint64_t) {
    delivered.fetch_add(1, std::memory_order_relaxed);
  });
  rig.exporter.Export(server_ev);
  spin::Event<void(uint64_t)> client_ev("Bench.Async", nullptr, nullptr,
                                        &rig.dispatcher);
  spin::remote::ProxyOptions opts = rig.Opts(9102);
  opts.kind = spin::remote::RaiseKind::kAsync;
  spin::remote::EventProxy proxy(rig.client, &rig.sim, client_ev, opts);

  std::vector<uint64_t> enqueue_ns;
  enqueue_ns.reserve(static_cast<size_t>(batches) * batch_size);
  uint64_t wall_start = spin::NowNs();
  for (int b = 0; b < batches; ++b) {
    for (int i = 0; i < batch_size; ++i) {
      uint64_t t0 = spin::NowNs();
      client_ev.Raise(static_cast<uint64_t>(i));
      enqueue_ns.push_back(spin::NowNs() - t0);
    }
    rig.dispatcher.pool().Drain();  // marshals run on pool threads
    proxy.Flush();                  // sim thread hands datagrams to the wire
    rig.sim.Run();
  }
  uint64_t wall_ns = spin::NowNs() - wall_start;
  AsyncResult result;
  result.raises_per_sec = static_cast<double>(batches) * batch_size * 1e9 /
                          static_cast<double>(wall_ns);
  result.enqueue = StatsFromSamples(std::move(enqueue_ns));
  result.delivered = delivered.load();
  return result;
}

}  // namespace

int main() {
  using spin::bench::JsonRow;
  using spin::bench::Rule;
  std::printf("Remote event dispatch (10 Mb/s wire, 25 us propagation per "
              "hop; roundtrip in VIRTUAL ns,\nhost processing in real ns)\n");
  Rule('=');

  std::printf("sync roundtrip vs payload size:\n");
  std::printf("%-8s %-10s %-16s %-18s %-16s\n", "args", "req bytes",
              "wire p50 (us)", "host proc p50 (ns)", "wire share");
  Rule();
  const int kRounds = 400;
  struct NamedSync {
    const char* name;
    SyncResult r;
  };
  std::vector<NamedSync> sync_rows;
  sync_rows.push_back({"sync_rt_args0", SyncRoundtrip(kRounds, &Sum0)});
  sync_rows.push_back({"sync_rt_args2",
                       SyncRoundtrip<uint64_t, uint64_t>(kRounds, &Sum2, 1,
                                                         2)});
  sync_rows.push_back(
      {"sync_rt_args4",
       SyncRoundtrip<uint64_t, uint64_t, uint64_t, uint64_t>(kRounds, &Sum4,
                                                             1, 2, 3, 4)});
  sync_rows.push_back(
      {"sync_rt_args8",
       SyncRoundtrip<uint64_t, uint64_t, uint64_t, uint64_t, uint64_t,
                     uint64_t, uint64_t, uint64_t>(kRounds, &Sum8, 1, 2, 3,
                                                   4, 5, 6, 7, 8)});
  for (size_t i = 0; i < sync_rows.size(); ++i) {
    const SyncResult& r = sync_rows[i].r;
    // Wire and host times live on different clocks (virtual vs. real);
    // the ratio still shows which one the raiser actually waits on.
    double share = static_cast<double>(r.wire.p50_ns) /
                   static_cast<double>(r.wire.p50_ns + r.host.p50_ns);
    std::printf("%-8d %-10zu %-16.1f %-18llu %.4f\n",
                static_cast<int>(i == 0 ? 0 : 1u << i), r.request_bytes,
                static_cast<double>(r.wire.p50_ns) / 1e3,
                static_cast<unsigned long long>(r.host.p50_ns), share);
  }
  Rule();
  std::printf("expected shape: roundtrip is wire-dominated (~150 us) and "
              "grows ~7.2 us per extra\nargument (9 request bytes — tag + "
              "value — at 800 ns/byte); host processing is noise\nbeside "
              "it\n\n");

  const double kLoss = 0.2;
  int timed_out = 0;
  LatencyStats retry = RetryPathStats(kRounds, kLoss, /*seed=*/42,
                                      &timed_out);
  std::printf("retry path (%.0f%% seeded random loss, 10 attempts, 2 ms "
              "first timeout):\n", kLoss * 100);
  std::printf("  p50 %.1f us   p90 %.1f us   p99 %.1f us   max %.1f us   "
              "timed out %d/%d\n",
              static_cast<double>(retry.p50_ns) / 1e3,
              static_cast<double>(retry.p90_ns) / 1e3,
              static_cast<double>(retry.p99_ns) / 1e3,
              static_cast<double>(retry.max_ns) / 1e3, timed_out, kRounds);
  std::printf("expected shape: p50 stays at the clean roundtrip; the tail "
              "absorbs 2/6/14 ms of\nbacked-off retries\n\n");

  BindResult bind_open = BindHandshakeOverhead(/*rounds=*/100,
                                               /*with_authorizer=*/false);
  BindResult bind_auth = BindHandshakeOverhead(/*rounds=*/100,
                                               /*with_authorizer=*/true);
  std::printf("auth handshake (bind before first raise, amortized over the "
              "proxy's lifetime):\n");
  std::printf("%-24s %-16s %-16s %-10s\n", "case", "bind p50 (us)",
              "raise p50 (us)", "bind/raise");
  Rule();
  struct NamedBind {
    const char* label;
    const char* json;
    const BindResult* r;
  };
  const NamedBind bind_rows[] = {
      {"open (no authorizer)", "bind_open", &bind_open},
      {"authorized + guard", "bind_authorized", &bind_auth},
  };
  for (const NamedBind& row : bind_rows) {
    std::printf("%-24s %-16.1f %-16.1f %.2f\n", row.label,
                static_cast<double>(row.r->bind_wire.p50_ns) / 1e3,
                static_cast<double>(row.r->raise_wire.p50_ns) / 1e3,
                static_cast<double>(row.r->bind_wire.p50_ns) /
                    static_cast<double>(row.r->raise_wire.p50_ns));
  }
  Rule();
  std::printf("expected shape: a bind costs about one raise roundtrip (same "
              "wire, small frames);\nthe authorizer adds bytes for the "
              "imposed guard, not a second roundtrip — a one-time\ncost "
              "against the proxy's whole raise stream\n\n");

  const int kGuardRounds = 2000;
  GuardRejectResult g_local = GuardRejectLocal(
      kGuardRounds, spin::Dispatcher::GuardCompileMode::kJit);
  GuardRejectResult g_local_interp = GuardRejectLocal(
      kGuardRounds, spin::Dispatcher::GuardCompileMode::kInterpret);
  GuardRejectResult g_remote_jit =
      GuardRejectRemote(kGuardRounds, /*jit_guards=*/true);
  GuardRejectResult g_remote_interp =
      GuardRejectRemote(kGuardRounds, /*jit_guards=*/false);
  std::printf("verified guard on the raise path (imposed guard REJECTS "
              "every raise; real ns per raise):\n");
  std::printf("%-28s %-12s %-12s %-12s %-14s\n", "case", "p50 (ns)",
              "p90 (ns)", "p99 (ns)", "wire time (ns)");
  Rule();
  struct NamedGuard {
    const char* label;
    const char* json;
    const GuardRejectResult* r;
  };
  const NamedGuard guard_rows[] = {
      {"local guard (JIT)", "guard_reject_local", &g_local},
      {"local guard (interp)", "guard_reject_local_interp",
       &g_local_interp},
      {"remote imposed (JIT)", "guard_reject_remote_jit", &g_remote_jit},
      {"remote imposed (interp)", "guard_reject_remote_interp",
       &g_remote_interp},
  };
  for (const NamedGuard& row : guard_rows) {
    std::printf("%-28s %-12llu %-12llu %-12llu %-14llu\n", row.label,
                static_cast<unsigned long long>(row.r->raise_host.p50_ns),
                static_cast<unsigned long long>(row.r->raise_host.p90_ns),
                static_cast<unsigned long long>(row.r->raise_host.p99_ns),
                static_cast<unsigned long long>(row.r->wire_ns));
  }
  Rule();
  std::printf("expected shape: a wire-received guard that passed admission "
              "costs the same as a\nlocal guard (target <=1.1x p50) — the "
              "verifier runs once at bind, the JIT'd body\nruns per raise, "
              "and a rejected raise sends zero datagrams (wire time 0)\n\n");

  SyncResult tr_off = SyncRoundtripTraced(kRounds, /*tracing=*/false);
  SyncResult tr_on = SyncRoundtripTraced(kRounds, /*tracing=*/true);
  std::printf("causal tracing on the sync path (2-arg roundtrip; span "
              "trailer = +%zu req bytes):\n",
              tr_on.request_bytes - tr_off.request_bytes);
  std::printf("  %-16s wire p50 %8.1f us   host proc p50 %6llu ns\n",
              "tracing off",
              static_cast<double>(tr_off.wire.p50_ns) / 1e3,
              static_cast<unsigned long long>(tr_off.host.p50_ns));
  std::printf("  %-16s wire p50 %8.1f us   host proc p50 %6llu ns\n",
              "tracing on",
              static_cast<double>(tr_on.wire.p50_ns) / 1e3,
              static_cast<unsigned long long>(tr_on.host.p50_ns));
  std::printf("expected shape: the wire p50 grows by the trailer's "
              "serialization time (~9.6 us);\nthe host-side span "
              "bookkeeping adds ~2 us of real time against a ~180 us\n"
              "virtual-time roundtrip\n\n");

  AsyncResult async = AsyncThroughput(/*batches=*/50, /*batch_size=*/64);
  std::printf("async fire-and-forget (batches of 64 through the pool "
              "outbox):\n");
  std::printf("  pipeline rate %.0f raises/s, enqueue p50 %llu ns, "
              "delivered %llu/3200\n",
              async.raises_per_sec,
              static_cast<unsigned long long>(async.enqueue.p50_ns),
              static_cast<unsigned long long>(async.delivered));
  std::printf("expected shape: the raiser pays only the enqueue; wire time "
              "overlaps across the batch\n");

  std::printf("\nlatency distributions (JSON, 1 row per case; sync/retry "
              "rows are virtual-time ns):\n");
  for (const NamedSync& row : sync_rows) {
    JsonRow("remote", row.name, row.r.wire);
  }
  {
    char name[48];
    std::snprintf(name, sizeof(name), "sync_rt_loss%d",
                  static_cast<int>(kLoss * 100));
    JsonRow("remote", name, retry);
  }
  for (const NamedBind& row : bind_rows) {
    JsonRow("remote", row.json, row.r->bind_wire);
  }
  for (const NamedGuard& row : guard_rows) {
    JsonRow("remote", row.json, row.r->raise_host);
  }
  JsonRow("remote", "sync_rt_tracing_off", tr_off.wire);
  JsonRow("remote", "sync_rt_tracing_on", tr_on.wire);
  JsonRow("remote", "sync_rt_tracing_off_host", tr_off.host);
  JsonRow("remote", "sync_rt_tracing_on_host", tr_on.host);
  JsonRow("remote", "async_enqueue", async.enqueue);

  std::printf("\nphase attribution (traced sync roundtrips folded by "
              "obs::CriticalPath; EXPERIMENTS.md table):\n");
  const int kPhaseRounds = 64;
  PhaseAttributionRow<uint64_t, uint64_t>("args2_guard_off", false,
                                          kPhaseRounds, &Sum2, 1, 2);
  PhaseAttributionRow<uint64_t, uint64_t>("args2_guard_on", true,
                                          kPhaseRounds, &Sum2, 1, 2);
  PhaseAttributionRow<uint64_t, uint64_t, uint64_t, uint64_t, uint64_t,
                      uint64_t, uint64_t, uint64_t>(
      "args8_guard_off", false, kPhaseRounds, &Sum8, 1, 2, 3, 4, 5, 6, 7, 8);
  PhaseAttributionRow<uint64_t, uint64_t, uint64_t, uint64_t, uint64_t,
                      uint64_t, uint64_t, uint64_t>(
      "args8_guard_on", true, kPhaseRounds, &Sum8, 1, 2, 3, 4, 5, 6, 7, 8);
  return 0;
}
