// Macro-workload fleet bench: per-stack throughput and latency under loss.
//
// Runs the src/fleet driver over a grid of (stack, loss rate): 100 host
// pairs (200 hosts), 20 connections each (2000 concurrent connections),
// one virtual second of open-loop request/response traffic per cell. Each
// run gets a fresh sharded dispatcher so the fleet's per-connection raise
// sources actually spread.
//
// The headline contrast is at 5% loss: stop_and_wait pays a full RTO
// (50 ms here) for every lost segment, while reno and rack_lite recover
// mid-stream losses from dup-ACK feedback in about one round-trip, so
// both deliver more responses per virtual second.
//
// Usage: bench_fleet [out.json]  — rows go to stdout; with an argument the
// full JSON document is also written to the file (CI uploads it as
// BENCH_fleet.json).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/dispatcher.h"
#include "src/fleet/fleet.h"

namespace {

std::string RunCell(const std::string& stack, double loss) {
  spin::Dispatcher::Config config;
  config.shards = 8;
  spin::Dispatcher dispatcher(config);

  spin::fleet::FleetOptions options;
  options.pairs = 100;
  options.conns_per_pair = 20;  // 200 hosts, 2000 connections
  options.stack = stack;
  options.loss = loss;
  options.seed = 42;
  options.duration_ns = 1'000'000'000;

  spin::fleet::Fleet fleet(&dispatcher, options);
  spin::fleet::FleetReport report = fleet.Run();
  return spin::fleet::ReportJson(options, report);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string stacks[] = {"stop_and_wait", "reno", "rack_lite"};
  const double losses[] = {0.0, 0.01, 0.05};

  std::vector<std::string> rows;
  for (const std::string& stack : stacks) {
    for (double loss : losses) {
      std::string row = RunCell(stack, loss);
      std::cout << row << "\n" << std::flush;
      rows.push_back(row);
    }
  }

  std::string doc = "{\n  \"bench\": \"fleet\",\n  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    doc += "    " + rows[i] + (i + 1 < rows.size() ? "," : "") + "\n";
  }
  doc += "  ]\n}\n";

  if (argc > 1) {
    std::ofstream out(argv[1]);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    out << doc;
  }
  return 0;
}
