// Macro-workload fleet bench: per-stack throughput and latency under loss.
//
// Runs the src/fleet driver over a grid of (stack, loss rate): 100 host
// pairs (200 hosts), 20 connections each (2000 concurrent connections),
// one virtual second of open-loop request/response traffic per cell. Each
// run gets a fresh sharded dispatcher so the fleet's per-connection raise
// sources actually spread.
//
// The headline contrast is at 5% loss: stop_and_wait pays a full RTO
// (50 ms here) for every lost segment, while reno and rack_lite recover
// mid-stream losses from dup-ACK feedback in about one round-trip, so
// both deliver more responses per virtual second.
//
// Usage: bench_fleet [--smoke] [out.json]  — rows go to stdout; with a
// file argument the full JSON document is also written there (CI uploads
// it as BENCH_fleet.json).
//
// --smoke shrinks the grid to 4 deterministic virtual-time cells (8
// hosts, 16 connections, 200 ms) for the CI regression gate: every
// number in a smoke row derives from the simulator clock and a seeded
// loss stream, so tools/bench_diff.py can hold them to a near-exact
// threshold against bench/BENCH_fleet_smoke.json on any machine.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/dispatcher.h"
#include "src/fleet/fleet.h"

namespace {

std::string RunCell(const std::string& stack, double loss, bool smoke,
                    uint32_t trace_sample_rate = 0) {
  spin::Dispatcher::Config config;
  config.shards = 8;
  spin::Dispatcher dispatcher(config);

  spin::fleet::FleetOptions options;
  options.pairs = smoke ? 4 : 100;
  options.conns_per_pair = smoke ? 4 : 20;
  options.stack = stack;
  options.loss = loss;
  options.seed = 42;
  options.duration_ns = smoke ? 200'000'000 : 1'000'000'000;
  options.trace_sample_rate = trace_sample_rate;

  spin::fleet::Fleet fleet(&dispatcher, options);
  spin::fleet::FleetReport report = fleet.Run();
  return spin::fleet::ReportJson(options, report);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  const std::vector<std::string> stacks =
      smoke ? std::vector<std::string>{"stop_and_wait", "reno"}
            : std::vector<std::string>{"stop_and_wait", "reno", "rack_lite"};
  const std::vector<double> losses =
      smoke ? std::vector<double>{0.0, 0.05}
            : std::vector<double>{0.0, 0.01, 0.05};

  std::vector<std::string> rows;
  for (const std::string& stack : stacks) {
    for (double loss : losses) {
      std::string row = RunCell(stack, loss, smoke);
      std::cout << row << "\n" << std::flush;
      rows.push_back(row);
    }
  }
  if (!smoke) {
    // One traced cell for the full run: sampled tracing at 1-in-64 with
    // the phase self-time totals appended (phase_self_ns). Not part of
    // the smoke gate — the totals are host-clock, machine-dependent.
    std::string row = RunCell("reno", 0.0, /*smoke=*/false,
                              /*trace_sample_rate=*/64);
    std::cout << row << "\n" << std::flush;
    rows.push_back(row);
  }

  std::string doc = "{\n  \"bench\": \"fleet\",\n  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    doc += "    " + rows[i] + (i + 1 < rows.size() ? "," : "") + "\n";
  }
  doc += "  ]\n}\n";

  if (out_path != nullptr) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", out_path);
      return 1;
    }
    out << doc;
  }
  return 0;
}
