// Asynchronous event latency (§3.1):
//
// "Asynchronous events, which have not been optimized, introduce an
// additional latency of between 38 and 90 usecs per event raised. The
// additional time is spent creating the asynchronous thread."
//
// We measure raise-to-handler-start latency for a synchronous raise, an
// asynchronous raise on the worker pool (our optimization), and an
// asynchronous raise with a freshly spawned thread per event (the paper's
// discipline — the 38-90us is thread creation, which we reproduce in
// kind: spawn mode pays thread-creation latency, pool mode mostly queue
// handoff).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/dispatcher.h"

namespace {

std::atomic<uint64_t> g_handler_start_ns{0};

void StampHandler(int64_t) {
  g_handler_start_ns.store(spin::NowNs(), std::memory_order_release);
}

// Raise-to-handler-start latency distribution, one sample per round.
spin::bench::LatencyStats MeasureLatency(spin::AsyncMode mode, bool async,
                                         int rounds) {
  spin::Module module("AsyncBench");
  spin::Dispatcher::Config config;
  config.async_mode = mode;
  spin::ThreadPool pool(2);
  config.pool = &pool;
  spin::Dispatcher dispatcher(config);
  spin::Event<void(int64_t)> event("Bench.Async", &module, nullptr,
                                   &dispatcher);
  dispatcher.InstallHandler(event, &StampHandler, {.module = &module});

  std::vector<uint64_t> lat(rounds);
  uint64_t total = 0;
  for (int i = 0; i < rounds; ++i) {
    g_handler_start_ns.store(0, std::memory_order_release);
    uint64_t raise_ns = spin::NowNs();
    if (async) {
      event.RaiseAsync(i);
      while (g_handler_start_ns.load(std::memory_order_acquire) == 0) {
        // Yield, don't spin: on a single-CPU host a hard spin starves the
        // detached thread and measures the preemption quantum instead.
        std::this_thread::yield();
      }
    } else {
      event.Raise(i);
    }
    lat[i] = g_handler_start_ns.load(std::memory_order_acquire) - raise_ns;
    total += lat[i];
    dispatcher.pool().Drain();
  }
  std::sort(lat.begin(), lat.end());
  spin::bench::LatencyStats stats;
  stats.mean_ns = static_cast<double>(total) / rounds;
  auto pct = [&](double q) {
    return lat[static_cast<size_t>(static_cast<double>(rounds - 1) * q)];
  };
  stats.p50_ns = pct(0.50);
  stats.p90_ns = pct(0.90);
  stats.p99_ns = pct(0.99);
  stats.max_ns = lat.back();
  return stats;
}

}  // namespace

int main() {
  using spin::bench::Rule;
  std::printf("Asynchronous event latency (paper: +38-90us per async raise, "
              "spent creating the thread)\n");
  Rule('=');
  const int kRounds = 300;
  spin::bench::LatencyStats sync_stats =
      MeasureLatency(spin::AsyncMode::kPooled, false, kRounds);
  spin::bench::LatencyStats pooled_stats =
      MeasureLatency(spin::AsyncMode::kPooled, true, kRounds);
  spin::bench::LatencyStats spawn_stats =
      MeasureLatency(spin::AsyncMode::kSpawn, true, kRounds);
  double sync_us = sync_stats.mean_ns / 1e3;
  double pooled_us = pooled_stats.mean_ns / 1e3;
  double spawn_us = spawn_stats.mean_ns / 1e3;
  // Context: what a bare thread create->start costs on this host.
  double raw_thread_us = 0;
  for (int i = 0; i < 50; ++i) {
    std::atomic<bool> started{false};
    uint64_t t0 = spin::NowNs();
    std::thread t([&] { started.store(true, std::memory_order_release); });
    while (!started.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    raw_thread_us += static_cast<double>(spin::NowNs() - t0) / 1e3;
    t.join();
  }
  raw_thread_us /= 50;
  std::printf("%-34s %10.2f us\n", "synchronous raise -> handler", sync_us);
  std::printf("%-34s %10.2f us  (+%.2f)\n",
              "async raise, worker pool", pooled_us, pooled_us - sync_us);
  std::printf("%-34s %10.2f us  (+%.2f)\n",
              "async raise, thread-per-event", spawn_us, spawn_us - sync_us);
  std::printf("%-34s %10.2f us  (host baseline)\n",
              "bare std::thread create->start", raw_thread_us);
  Rule();
  std::printf("expected shape: thread-per-event pays thread-creation cost "
              "(the paper's 38-90us on Alpha); pooling removes most of it\n");

  std::printf("\nlatency distributions (JSON, 1 row per case):\n");
  spin::bench::JsonRow("async", "sync_raise", sync_stats);
  spin::bench::JsonRow("async", "async_raise_pooled", pooled_stats);
  spin::bench::JsonRow("async", "async_raise_spawn", spawn_stats);
  return 0;
}
