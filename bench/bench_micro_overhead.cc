// System-service microbenchmark overhead (§3.1):
//
// "In terms of its impact on basic system services (microbenchmarks), we
// have measured event processing overhead to be on the order of 10-15% for
// operations such as system call and thread management."
//
// We measure two kernel operations end to end:
//   - a null system call (trap entry + MachineTrap.Syscall dispatch with
//     the emulator's guard + handler),
//   - a scheduler quantum (run-queue manipulation + Strand.Run dispatch),
// against baselines where the same work is invoked as a direct procedure
// call, and report the event-dispatch share.
#include <sys/syscall.h>
#include <unistd.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "src/kernel/kernel.h"

namespace {

uint64_t g_sink = 0;

struct EmuState {
  uint64_t handled = 0;
};

bool TaskGuard(EmuState*, spin::Strand* strand, spin::SavedState&) {
  return strand->space() != nullptr;
}

void NullSyscall(EmuState* state, spin::Strand*, spin::SavedState& ms) {
  ++state->handled;
  ms.v0 = 0;
}

void SchedHook(spin::Strand*) { benchmark::DoNotOptimize(g_sink += 1); }

}  // namespace

int main() {
  using spin::bench::NsPerOp;
  using spin::bench::Rule;

  std::printf("Microbenchmark overhead of event dispatch "
              "(paper: 10-15%% for syscall and thread management)\n");
  Rule('=');

  // --- System call ---------------------------------------------------------
  {
    spin::Dispatcher dispatcher;
    spin::Kernel kernel(&dispatcher);
    EmuState emu;
    auto binding = dispatcher.InstallHandler(
        kernel.MachineTrapSyscall, &NullSyscall, &emu,
        {.module = &kernel.machine_trap_module()});
    dispatcher.AddGuard(kernel.MachineTrapSyscall, binding, &TaskGuard,
                        &emu);
    spin::AddressSpace& space = kernel.CreateAddressSpace();
    spin::Strand& strand = kernel.CreateStrand(
        "app", [](spin::Strand&) { return false; }, &space);

    double event_ns = NsPerOp([&] { kernel.Syscall(strand); });
    // Baseline: the same trap (a real user/kernel round trip models the
    // machine-dependent entry path) with the handler called directly.
    double direct_ns = NsPerOp([&] {
      ::syscall(SYS_getpid);  // trap entry / state save
      bool admit = TaskGuard(&emu, &strand, strand.saved_state());
      if (admit) {
        NullSyscall(&emu, &strand, strand.saved_state());
      }
      benchmark::DoNotOptimize(admit);
    });
    double overhead = (event_ns - direct_ns) / event_ns * 100.0;
    std::printf("null system call:   direct %7.1f ns   via events %7.1f ns"
                "   dispatch share %.0f%%\n",
                direct_ns, event_ns, overhead);
  }

  // --- Thread management (scheduler quantum) -------------------------------
  {
    spin::Dispatcher dispatcher;
    spin::Kernel kernel(&dispatcher);
    dispatcher.InstallHandler(kernel.StrandRun, &SchedHook,
                              {.module = &kernel.strand_module()});
    // A strand that never finishes: each RunUntilIdle(1) is one context
    // switch + Strand.Run dispatch + quantum.
    kernel.CreateStrand("spinner", [](spin::Strand&) { return true; });
    double event_ns = NsPerOp([&] { kernel.RunUntilIdle(1); },
                              /*iters=*/100000);

    spin::Dispatcher bare_dispatcher;
    spin::Kernel bare_kernel(&bare_dispatcher);
    bare_kernel.CreateStrand("spinner", [](spin::Strand&) { return true; });
    // Baseline kernel: Strand.Run has only its intrinsic no-op handler, so
    // it dispatches as a plain procedure call.
    double direct_ns = NsPerOp([&] { bare_kernel.RunUntilIdle(1); },
                               /*iters=*/100000);
    double overhead = (event_ns - direct_ns) / event_ns * 100.0;
    std::printf("scheduler quantum:  bare   %7.1f ns   with handler %6.1f ns"
                "   dispatch share %.0f%%\n",
                direct_ns, event_ns, overhead);
  }

  Rule();
  std::printf("expected shape: event dispatch is a modest fraction of the "
              "operation (paper: 10-15%%)\n");
  return 0;
}
