// Figures 2 and 3, end to end.
//
// The kernel exports MachineTrap.Syscall. The MachineTrap module (authority)
// installs an authorizer that imposes a per-address-space guard on every
// handler installation — a handler only ever sees system calls from the
// address space that was current when it installed. The Mach emulator then
// installs its guarded Syscall handler and serves vm_allocate.
//
// Build & run:  ./build/examples/mach_emulator
#include <cstdio>
#include <memory>
#include <vector>

#include "src/emul/mach.h"
#include "src/kernel/kernel.h"

namespace {

// --- Figure 3: the authority imposes space-scoped guards -------------------

struct SpaceScope {
  spin::AddressSpace* valid_space;
};

bool ImposedSyscallGuard(SpaceScope* scope, spin::Strand* strand,
                         spin::SavedState& state) {
  (void)state;
  return strand->space() == scope->valid_space;
}

// "GetCurrentAddressSpace()" at installation time. Each installation gets
// its own scope snapshot — the closure passed to the imposed guard.
SpaceScope g_install_scope;
std::vector<std::unique_ptr<SpaceScope>> g_scopes;

bool AuthorizeSyscall(spin::AuthRequest& request, void* ctx) {
  (void)ctx;
  if (request.op != spin::AuthOp::kInstall) {
    return true;
  }
  std::printf("  [authorizer] imposing guard: handler only sees space %llu\n",
              static_cast<unsigned long long>(
                  g_install_scope.valid_space->id()));
  g_scopes.push_back(std::make_unique<SpaceScope>(g_install_scope));
  request.ImposeGuard(
      spin::MakeImposedGuard(&ImposedSyscallGuard, g_scopes.back().get()));
  return true;
}

int g_snooped = 0;
void SnoopingHandler(spin::Strand*, spin::SavedState&) { ++g_snooped; }

spin::Module g_snooper_module("Snooper");

}  // namespace

int main() {
  spin::Dispatcher dispatcher;
  spin::Kernel kernel(&dispatcher);

  spin::AddressSpace& mach_space = kernel.CreateAddressSpace();
  spin::AddressSpace& victim_space = kernel.CreateAddressSpace();

  // The MachineTrap module demonstrates authority (THIS_MODULE) and
  // installs the authorizer of Figure 3.
  dispatcher.InstallAuthorizer(kernel.MachineTrapSyscall, &AuthorizeSyscall,
                               nullptr, kernel.machine_trap_module());

  // A would-be snooper installs a handler while `victim_space` is current:
  // the imposed guard pins it to that space forever.
  g_install_scope.valid_space = &victim_space;
  dispatcher.InstallHandler(kernel.MachineTrapSyscall, &SnoopingHandler,
                            {.module = &g_snooper_module});

  // Figure 2: the Mach emulator installs its guarded handler while the
  // Mach task's space is current.
  g_install_scope.valid_space = &mach_space;
  spin::emul::MachEmulator mach(kernel);
  mach.AdoptTask(mach_space);

  spin::Strand& task = kernel.CreateStrand(
      "mach-task",
      [&](spin::Strand& strand) {
        spin::SavedState& ms = strand.saved_state();
        ms.v0 = spin::emul::kMachVmAllocate;  // Figure 2's -65
        ms.a[0] = 4 * spin::kPageSize;
        kernel.Syscall(strand);
        std::printf("  [task] vm_allocate -> base 0x%llx\n",
                    static_cast<unsigned long long>(ms.v0));
        return false;
      },
      &mach_space);
  (void)task;

  std::printf("running the Mach task:\n");
  kernel.RunUntilIdle();

  std::printf("results:\n");
  std::printf("  mach emulator handled %llu syscalls\n",
              static_cast<unsigned long long>(mach.handled()));
  std::printf("  snooper (pinned to another space) saw %d syscalls\n",
              g_snooped);
  std::printf("  VM served %llu page faults (%llu by the default pager)\n",
              static_cast<unsigned long long>(kernel.vm.fault_count()),
              static_cast<unsigned long long>(
                  kernel.vm.default_pager_count()));
  std::printf("  pages resident in the Mach task: %zu\n",
              mach_space.resident_pages());
  return g_snooped == 0 ? 0 : 1;
}
