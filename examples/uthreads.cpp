// User-space threads over EPHEMERAL scheduler hooks (§2.6):
//
//   "extensions that manage user-space threads rely on EPHEMERAL handlers
//    to save and restore thread state during context switches. Premature
//    termination results in the termination of the user-space thread,
//    which is followed by a termination of the user-space task itself."
//
// A thread-package extension installs an EPHEMERAL handler on Strand.Run.
// On every scheduling operation it saves the outgoing user thread's state
// and picks the next runnable user thread for the strand. A deliberately
// runaway save/restore hook is terminated by the dispatcher, and the
// package responds by killing the user task — exactly the containment
// story of the paper.
//
// Build & run:  ./build/examples/uthreads
#include <cstdio>
#include <string>
#include <vector>

#include "src/kernel/kernel.h"

namespace {

struct UserThread {
  std::string name;
  int progress = 0;
  bool done = false;
};

class ThreadPackage {
 public:
  ThreadPackage(spin::Kernel& kernel, spin::Strand& strand, bool runaway)
      : module_("UThreads"), kernel_(kernel), strand_(strand),
        runaway_(runaway) {
    kernel_.dispatcher().RequireEphemeralHandlers(
        kernel_.StrandRun, /*budget_ns=*/2'000'000,
        &kernel_.strand_module());
    binding_ = kernel_.dispatcher().InstallLambda(
        kernel_.StrandRun,
        [this](spin::Strand* strand) { SwitchHook(strand); },
        {.ephemeral = true, .module = &module_});
  }

  void AddThread(const std::string& name) {
    threads_.push_back(UserThread{name});
  }

  UserThread* current() {
    return threads_.empty() ? nullptr : &threads_[current_index_];
  }

  bool task_killed() const { return task_killed_; }
  int switches() const { return switches_; }
  const std::vector<UserThread>& threads() const { return threads_; }

 private:
  void SwitchHook(spin::Strand* strand) {
    if (strand != &strand_ || threads_.empty()) {
      return;
    }
    // The save/restore window is EPHEMERAL: it must finish within the
    // budget or be terminated. Polling CheckTermination() models the
    // compiler-inserted checks of the paper's EPHEMERAL code.
    spin::CheckTermination();
    if (runaway_) {
      std::printf("  [uthreads] save/restore hook wedged; awaiting "
                  "termination...\n");
      while (true) {
        spin::CheckTermination();
      }
    }
    ++switches_;
    current_index_ = (current_index_ + 1) % threads_.size();
  }

 public:
  // Called by the kernel glue when the dispatcher reports our hook was
  // terminated (aborted handlers on the last raise).
  void OnTerminated() {
    task_killed_ = true;
    kernel_.Kill(strand_);
  }

 private:
  spin::Module module_;
  spin::Kernel& kernel_;
  spin::Strand& strand_;
  bool runaway_;
  spin::BindingHandle binding_;
  std::vector<UserThread> threads_;
  size_t current_index_ = 0;
  int switches_ = 0;
  bool task_killed_ = false;
};

void RunScenario(bool runaway) {
  spin::Dispatcher dispatcher;
  spin::Kernel kernel(&dispatcher);

  ThreadPackage* package = nullptr;
  spin::Strand& strand = kernel.CreateStrand("user-task", [&](spin::Strand&) {
    UserThread* thread = package->current();
    if (thread == nullptr) {
      return false;
    }
    ++thread->progress;
    if (thread->progress >= 3) {
      thread->done = true;
    }
    bool all_done = true;
    for (const UserThread& t : package->threads()) {
      all_done = all_done && t.done;
    }
    return !all_done;
  });

  ThreadPackage threads(kernel, strand, runaway);
  package = &threads;
  threads.AddThread("ut-alpha");
  threads.AddThread("ut-beta");
  threads.AddThread("ut-gamma");

  if (!runaway) {
    uint64_t quanta = kernel.RunUntilIdle(100);
    std::printf("  ran %llu quanta, %d user context switches\n",
                static_cast<unsigned long long>(quanta),
                threads.switches());
    for (const UserThread& t : threads.threads()) {
      std::printf("  %s: progress %d %s\n", t.name.c_str(), t.progress,
                  t.done ? "(done)" : "");
    }
    return;
  }

  // Runaway arm: one quantum is enough — the hook wedges, the dispatcher
  // terminates it, and the package kills the user task.
  kernel.RunUntilIdle(1);
  std::printf("  hook terminated by the dispatcher; killing the task\n");
  threads.OnTerminated();
  uint64_t more = kernel.RunUntilIdle(100);
  std::printf("  task killed: %s (further quanta: %llu)\n",
              threads.task_killed() ? "yes" : "no",
              static_cast<unsigned long long>(more));
}

}  // namespace

int main() {
  std::printf("1. cooperative user threads over EPHEMERAL Strand.Run "
              "hooks:\n");
  RunScenario(/*runaway=*/false);
  std::printf("2. a wedged save/restore hook is terminated; the user task "
              "dies with it:\n");
  RunScenario(/*runaway=*/true);
  std::printf("uthreads done.\n");
  return 0;
}
