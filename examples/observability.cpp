// The flight recorder and metric exporter on a web-server-shaped workload.
//
// A tiny "server" serves files from the Vfs: an access-log handler and a
// path-normalizing filter interpose on Open, and a Web.RequestDone event
// with an asynchronous error-log handler finishes each request on the
// thread pool. With tracing enabled every raise, guard rejection, handler
// fire, filter mutation and pool hop lands in the flight recorder; the
// capture is written as Chrome trace-event JSON (load it at
// ui.perfetto.dev or chrome://tracing), and the histogram layer is dumped
// in Prometheus text form plus the human-readable Describe output.
//
// Build & run:  ./build/examples/observability [trace.json]
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <set>

#include "src/fs/vfs.h"
#include "src/obs/export.h"
#include "src/obs/trace.h"

namespace {

spin::Module g_web_module("WebServer");

std::atomic<int> g_requests_logged{0};
std::atomic<int> g_errors_logged{0};

// Guard: only GET-style opens (no create/trunc flags) are access-logged.
bool IsReadOnlyOpen(const char* path, int32_t flags) {
  (void)path;
  return flags == 0;
}

int64_t AccessLog(const char* path, int32_t flags) {
  (void)path;
  (void)flags;
  g_requests_logged.fetch_add(1, std::memory_order_relaxed);
  return 0;
}

// Filter: requests name documents relative to the site root; handlers
// behind the filter see the absolute path.
char g_rewrite_buffer[512];
int64_t NormalizePath(const char*& path, int32_t flags) {
  (void)flags;
  if (path[0] == '/') {
    return 0;
  }
  std::snprintf(g_rewrite_buffer, sizeof(g_rewrite_buffer), "/site/%s",
                path);
  path = g_rewrite_buffer;
  return 0;
}

// Async error logger: guard admits only failed requests.
bool IsError(int64_t status) { return status >= 400; }

void ErrorLog(int64_t status) {
  (void)status;
  g_errors_logged.fetch_add(1, std::memory_order_relaxed);
}

// Default handler: successful requests need no logging, but without a
// default a raise where every guard rejects would throw NoHandlerError.
void RequestDoneDefault(int64_t status) { (void)status; }

}  // namespace

int main(int argc, char** argv) {
  const char* trace_path =
      argc > 1 ? argv[1] : "observability_trace.json";

  spin::Dispatcher dispatcher;
  spin::fs::Vfs vfs(&dispatcher);
  spin::Event<void(int64_t)> request_done("Web.RequestDone", &g_web_module,
                                          nullptr, &dispatcher);

  // Interpose on Open: the access log runs before the UFS handler (so the
  // fd result stays last), the path filter runs in front of everything.
  dispatcher.InstallHandler(vfs.Open, &IsReadOnlyOpen, &AccessLog,
                            {.order = {spin::OrderKind::kFirst},
                             .module = &g_web_module});
  dispatcher.InstallFilter(vfs.Open, &NormalizePath,
                           {.order = {spin::OrderKind::kFirst},
                            .module = &g_web_module});
  dispatcher.InstallHandler(request_done, &IsError, &ErrorLog,
                            {.async = true, .module = &g_web_module});
  dispatcher.InstallDefaultHandler(request_done, &RequestDoneDefault,
                                   {.module = &g_web_module});

  // Publish some documents.
  for (const char* doc : {"/site/index.html", "/site/logo.png"}) {
    int64_t fd = vfs.Open.Raise(doc, spin::fs::kOpenCreate);
    vfs.Write.Raise(fd, "<html>hello</html>", 18);
    vfs.CloseFd.Raise(fd);
  }

  // Capture window: full-fidelity dispatch, every record kind exercised.
  dispatcher.EnableTracing(true);
  const char* requests[] = {"index.html", "logo.png", "missing.html",
                            "index.html", "logo.png", "index.html"};
  for (const char* request : requests) {
    int64_t fd = vfs.Open.Raise(request, 0);
    int64_t status;
    if (fd >= 0) {
      char buffer[64];
      vfs.Read.Raise(fd, buffer, sizeof(buffer));
      vfs.CloseFd.Raise(fd);
      status = 200;
    } else {
      status = 404;
    }
    request_done.Raise(status);
  }
  dispatcher.pool().Drain();  // let async error logs finish inside the window
  auto records = spin::obs::FlightRecorder::Global().Snapshot();
  dispatcher.EnableTracing(false);

  std::ofstream trace(trace_path);
  spin::obs::WriteChromeTrace(trace, records);
  trace.close();
  std::printf("wrote %zu trace records to %s\n", records.size(),
              trace_path);

  std::printf("\n--- Prometheus exposition ---\n");
  spin::obs::ExportMetrics(std::cout);
  std::printf("\n--- Dispatcher describe ---\n");
  dispatcher.DescribeAll(std::cout);

  // Self-check: the capture must span both the raising thread and the
  // pool, and contain every record kind the workload exercised.
  std::set<uint32_t> tids;
  std::set<spin::obs::TraceKind> kinds;
  for (const auto& m : records) {
    tids.insert(m.tid);
    kinds.insert(m.rec.kind);
  }
  bool ok = tids.size() >= 2 &&
            kinds.count(spin::obs::TraceKind::kRaiseBegin) != 0 &&
            kinds.count(spin::obs::TraceKind::kRaiseEnd) != 0 &&
            kinds.count(spin::obs::TraceKind::kHandlerFire) != 0 &&
            kinds.count(spin::obs::TraceKind::kGuardReject) != 0 &&
            kinds.count(spin::obs::TraceKind::kFilterMutate) != 0 &&
            kinds.count(spin::obs::TraceKind::kAsyncEnqueue) != 0 &&
            kinds.count(spin::obs::TraceKind::kAsyncExecute) != 0 &&
            g_requests_logged.load() == 6 && g_errors_logged.load() == 1;
  std::printf("\n%zu threads, %zu record kinds, %d access-log entries, "
              "%d error-log entries -> %s\n",
              tids.size(), kinds.size(), g_requests_logged.load(),
              g_errors_logged.load(), ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
