// The always-on observability stack on a web-server-shaped workload.
//
// A tiny "server" serves files from the Vfs: an access-log handler and a
// path-normalizing filter interpose on Open, and a Web.RequestDone event
// with an asynchronous error-log handler finishes each request on the
// thread pool. Three windows run back to back:
//   1. Full-fidelity capture: every raise, guard rejection, handler fire,
//      filter mutation and pool hop lands in the flight recorder; the
//      capture is written as Chrome trace-event JSON (load it at
//      ui.perfetto.dev or chrome://tracing).
//   2. Sampled production window: kSampled 1-in-4 keeps the compiled
//      dispatch tables installed and traces every 4th causal tree whole.
//   3. Watchdog incident: a deliberately slow handler blows its deadline
//      and the armed watchdog reports a slow_handler anomaly.
// The run writes the Prometheus exposition to a .prom file (lint it with
// tools/validate_metrics.py) and a stats JSON-lines file — two cumulative
// captures plus their delta — for tools/spin_top.py.
//
// Build & run:
//   ./build/examples/observability [trace.json [metrics.prom [stats.jsonl]]]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <set>
#include <thread>

#include "src/fs/vfs.h"
#include "src/obs/export.h"
#include "src/obs/trace.h"
#include "src/obs/watchdog.h"

namespace {

spin::Module g_web_module("WebServer");

std::atomic<int> g_requests_logged{0};
std::atomic<int> g_errors_logged{0};

// Guard: only GET-style opens (no create/trunc flags) are access-logged.
bool IsReadOnlyOpen(const char* path, int32_t flags) {
  (void)path;
  return flags == 0;
}

int64_t AccessLog(const char* path, int32_t flags) {
  (void)path;
  (void)flags;
  g_requests_logged.fetch_add(1, std::memory_order_relaxed);
  return 0;
}

// Filter: requests name documents relative to the site root; handlers
// behind the filter see the absolute path.
char g_rewrite_buffer[512];
int64_t NormalizePath(const char*& path, int32_t flags) {
  (void)flags;
  if (path[0] == '/') {
    return 0;
  }
  std::snprintf(g_rewrite_buffer, sizeof(g_rewrite_buffer), "/site/%s",
                path);
  path = g_rewrite_buffer;
  return 0;
}

// Async error logger: guard admits only failed requests.
bool IsError(int64_t status) { return status >= 400; }

void ErrorLog(int64_t status) {
  (void)status;
  g_errors_logged.fetch_add(1, std::memory_order_relaxed);
}

// Default handler: successful requests need no logging, but without a
// default a raise where every guard rejects would throw NoHandlerError.
void RequestDoneDefault(int64_t status) { (void)status; }

// Deliberately misses its deadline so the watchdog window has an incident.
// The handler takes a context so the event is not eligible for the
// intrinsic direct-call bypass — that path is a plain procedure call with
// zero instrumentation, so direct-bypass events are never deadline-checked.
struct ScanState {};
void SlowScan(ScanState*, int64_t) {
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
}

}  // namespace

int main(int argc, char** argv) {
  const char* trace_path =
      argc > 1 ? argv[1] : "observability_trace.json";
  const char* metrics_path =
      argc > 2 ? argv[2] : "observability_metrics.prom";
  const char* stats_path = argc > 3 ? argv[3] : "observability_stats.jsonl";

  spin::Dispatcher dispatcher;
  spin::fs::Vfs vfs(&dispatcher);
  spin::Event<void(int64_t)> request_done("Web.RequestDone", &g_web_module,
                                          nullptr, &dispatcher);

  // Interpose on Open: the access log runs before the UFS handler (so the
  // fd result stays last), the path filter runs in front of everything.
  dispatcher.InstallHandler(vfs.Open, &IsReadOnlyOpen, &AccessLog,
                            {.order = {spin::OrderKind::kFirst},
                             .module = &g_web_module});
  dispatcher.InstallFilter(vfs.Open, &NormalizePath,
                           {.order = {spin::OrderKind::kFirst},
                            .module = &g_web_module});
  dispatcher.InstallHandler(request_done, &IsError, &ErrorLog,
                            {.async = true, .module = &g_web_module});
  dispatcher.InstallDefaultHandler(request_done, &RequestDoneDefault,
                                   {.module = &g_web_module});

  // Publish some documents.
  for (const char* doc : {"/site/index.html", "/site/logo.png"}) {
    int64_t fd = vfs.Open.Raise(doc, spin::fs::kOpenCreate);
    vfs.Write.Raise(fd, "<html>hello</html>", 18);
    vfs.CloseFd.Raise(fd);
  }

  auto serve = [&](const char* request) {
    int64_t fd = vfs.Open.Raise(request, 0);
    int64_t status;
    if (fd >= 0) {
      char buffer[64];
      vfs.Read.Raise(fd, buffer, sizeof(buffer));
      vfs.CloseFd.Raise(fd);
      status = 200;
    } else {
      status = 404;
    }
    request_done.Raise(status);
  };

  // Window 1 — full-fidelity capture: every record kind exercised.
  dispatcher.EnableTracing(true);
  const char* requests[] = {"index.html", "logo.png", "missing.html",
                            "index.html", "logo.png", "index.html"};
  for (const char* request : requests) {
    serve(request);
  }
  dispatcher.pool().Drain();  // let async error logs finish inside the window
  auto records = spin::obs::FlightRecorder::Global().Snapshot();
  dispatcher.EnableTracing(false);

  std::ofstream trace(trace_path);
  spin::obs::WriteChromeTrace(trace, records);
  trace.close();
  std::printf("wrote %zu trace records to %s\n", records.size(),
              trace_path);

  // Window 2 — sampled production mode. The compiled tables stay
  // installed; one raise in four opens a span and its whole causal tree
  // (async error-log hop included) is captured with it. The armed
  // watchdog makes every raise timed, so the latency histograms fill even
  // though most raises trace nothing.
  spin::obs::WatchdogConfig watch;
  watch.period_ms = 0;                 // we drive Poll() deterministically
  watch.slow_handler_ns = 2'000'000;   // 2 ms absolute deadline
  spin::obs::Watchdog::Global().Arm(watch);
  spin::obs::FlightRecorder::Global().Reset();
  dispatcher.SetTracing({spin::obs::TraceMode::kSampled, 4});

  spin::obs::StatsSnapshot before = spin::obs::CaptureStats();
  for (int round = 0; round < 8; ++round) {
    for (const char* request : requests) {
      serve(request);
    }
  }
  dispatcher.pool().Drain();
  spin::obs::Watchdog::Global().Poll();  // stall rules + p99 deadlines
  spin::obs::StatsSnapshot after = spin::obs::CaptureStats();

  auto sampled = spin::obs::FlightRecorder::Global().Snapshot();
  size_t sampled_roots = 0;
  for (const auto& m : sampled) {
    if (m.rec.kind == spin::obs::TraceKind::kRaiseBegin &&
        m.rec.parent == 0) {
      ++sampled_roots;
    }
  }
  std::printf("sampled 1-in-4 window: %zu records, %zu sampled root "
              "spans (48 requests served)\n",
              sampled.size(), sampled_roots);

  // Window 3 — incident: a 5 ms handler against a 2 ms deadline. The
  // inline check fires even though the raise itself is sampled out.
  spin::Event<void(int64_t)> slow_scan("Web.SlowScan", &g_web_module,
                                       nullptr, &dispatcher);
  ScanState scan_state;
  dispatcher.InstallHandler(slow_scan, &SlowScan, &scan_state,
                            {.module = &g_web_module});
  slow_scan.Raise(0);
  uint64_t slow_anomalies = spin::obs::Watchdog::Global().Count(
      spin::obs::AnomalyKind::kSlowHandler);
  std::printf("watchdog: %llu slow_handler anomaly(ies), last measured "
              "%llu ns\n",
              static_cast<unsigned long long>(slow_anomalies),
              static_cast<unsigned long long>(
                  spin::obs::Watchdog::Global().last_value()));

  dispatcher.SetTracing({spin::obs::TraceMode::kOff, 1});
  spin::obs::Watchdog::Global().Disarm();

  // Artifacts: the exposition for validate_metrics.py, and a stats
  // JSON-lines file for spin_top.py — both cumulative captures plus the
  // delta over the sampled window.
  std::ofstream prom(metrics_path);
  spin::obs::ExportMetrics(prom);
  prom.close();
  std::ofstream stats(stats_path);
  spin::obs::WriteJsonStats(stats, before);
  stats << "\n";
  spin::obs::WriteJsonStats(stats, after);
  stats << "\n";
  spin::obs::WriteJsonStats(stats, spin::obs::Delta(before, after));
  stats << "\n";
  stats.close();
  std::printf("wrote %s and %s\n", metrics_path, stats_path);

  std::printf("\n--- Prometheus exposition ---\n");
  spin::obs::ExportMetrics(std::cout);
  std::printf("\n--- Dispatcher describe ---\n");
  dispatcher.DescribeAll(std::cout);

  // Self-check: the capture must span both the raising thread and the
  // pool, and contain every record kind the workload exercised.
  std::set<uint32_t> tids;
  std::set<spin::obs::TraceKind> kinds;
  for (const auto& m : records) {
    tids.insert(m.tid);
    kinds.insert(m.rec.kind);
  }
  bool ok = tids.size() >= 2 &&
            kinds.count(spin::obs::TraceKind::kRaiseBegin) != 0 &&
            kinds.count(spin::obs::TraceKind::kRaiseEnd) != 0 &&
            kinds.count(spin::obs::TraceKind::kHandlerFire) != 0 &&
            kinds.count(spin::obs::TraceKind::kGuardReject) != 0 &&
            kinds.count(spin::obs::TraceKind::kFilterMutate) != 0 &&
            kinds.count(spin::obs::TraceKind::kAsyncEnqueue) != 0 &&
            kinds.count(spin::obs::TraceKind::kAsyncExecute) != 0 &&
            g_requests_logged.load() == 54 && g_errors_logged.load() == 9 &&
            sampled_roots > 0 && sampled.size() < records.size() * 8 &&
            slow_anomalies >= 1;
  std::printf("\n%zu threads, %zu record kinds, %d access-log entries, "
              "%d error-log entries -> %s\n",
              tids.size(), kinds.size(), g_requests_logged.load(),
              g_errors_logged.load(), ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
