// Application-specific networking (§3.2): two simulated hosts, UDP
// endpoints whose port guards are micro-programs inlined into the generated
// dispatch routine, and the imposed-guard policy from the paper's
// networking code: "a guard that restricts an application's extension to
// receive packets only when the packets' destination is for a port that had
// been previously assigned to the application."
//
// Build & run:  ./build/examples/packet_filter
#include <cstdio>
#include <memory>
#include <vector>

#include "src/net/host.h"
#include "src/sim/simulator.h"

namespace {

struct PortGrant {
  uint16_t granted_port;
};

// Imposed by the network module's authorizer on every handler installation.
bool GrantedPortGuard(PortGrant* grant, spin::net::Packet* packet) {
  return packet->dst_port() == grant->granted_port;
}

PortGrant g_current_grant;
int g_denied_installs = 0;
// Each installation gets its own grant snapshot (the closure the
// dispatcher passes to the imposed guard); it must outlive the binding.
std::vector<std::unique_ptr<PortGrant>> g_grants;

bool NetworkAuthorizer(spin::AuthRequest& request, void* ctx) {
  (void)ctx;
  if (request.op != spin::AuthOp::kInstall) {
    return true;
  }
  if (g_current_grant.granted_port == 0) {
    ++g_denied_installs;
    return false;  // no port assigned: no packet taps at all
  }
  g_grants.push_back(std::make_unique<PortGrant>(g_current_grant));
  request.ImposeGuard(
      spin::MakeImposedGuard(&GrantedPortGuard, g_grants.back().get()));
  return true;
}

bool GreedyTap(spin::net::Packet*) { return true; }

spin::Module g_app_module("PacketApp");

}  // namespace

int main() {
  spin::Dispatcher dispatcher;
  spin::sim::Simulator sim;
  spin::net::Wire wire(&sim, spin::sim::LinkModel{});
  spin::net::Host alpha("alpha", 0x0a000001, &dispatcher);
  spin::net::Host beta("beta", 0x0a000002, &dispatcher);
  wire.Attach(alpha, beta);

  // The network module guards its packet event with an authorizer.
  dispatcher.InstallAuthorizer(beta.UdpPacketArrived, &NetworkAuthorizer,
                               nullptr, beta.module());

  std::printf("1. an application without a port grant cannot tap packets:\n");
  g_current_grant.granted_port = 0;
  try {
    dispatcher.InstallHandler(beta.UdpPacketArrived, &GreedyTap,
                              {.module = &g_app_module});
  } catch (const spin::InstallError& e) {
    std::printf("  install denied: %s\n", e.what());
  }

  std::printf("2. sockets install under their granted ports:\n");
  g_current_grant.granted_port = 7777;
  int app_packets = 0;
  spin::net::UdpSocket app_socket(beta, 7777,
                                  [&](const spin::net::Packet& packet) {
                                    ++app_packets;
                                    std::printf("  [app] got \"%s\"\n",
                                                packet.UdpPayload().c_str());
                                  });

  g_current_grant.granted_port = 9999;
  int other_packets = 0;
  spin::net::UdpSocket other_socket(
      beta, 9999, [&](const spin::net::Packet&) { ++other_packets; });

  spin::net::UdpSocket sender(alpha, 1234, nullptr);
  sender.SendTo(beta.ip(), 7777, "for the app");
  sender.SendTo(beta.ip(), 9999, "for the other");
  sender.SendTo(beta.ip(), 5555, "for nobody");
  sim.Run();

  std::printf("3. results:\n");
  std::printf("  app received %d, other received %d, dropped %llu\n",
              app_packets, other_packets,
              static_cast<unsigned long long>(beta.dropped_packets()));
  std::printf("  Udp.PacketArrived now has %zu handlers / %zu guards\n",
              beta.UdpPacketArrived.handler_count(),
              beta.UdpPacketArrived.guard_count());
  spin::Dispatcher::Stats stats = dispatcher.stats();
  std::printf("  dispatcher generated %llu specialized dispatch routines\n",
              static_cast<unsigned long long>(stats.stub_compiles));
  std::printf("  wire carried %llu bytes in %llu virtual us\n",
              static_cast<unsigned long long>(wire.bytes_carried()),
              static_cast<unsigned long long>(sim.now_ns() / 1000));
  return app_packets == 1 && other_packets == 1 ? 0 : 1;
}
