// The SPIN web server (§3 mentions one among the system's integrated
// applications), as a dynamically linked extension.
//
// Phase 1 (§2): the system exports its interfaces — the VFS events — as a
// linker domain; the web-server extension declares typed imports and
// resolves them. Phase 2: it installs its service (a TCP listener whose
// request handler drives the resolved events). A client on the simulated
// peer machine fetches a page end to end.
//
// Build & run:  ./build/examples/web_server
#include <cstdio>
#include <string>

#include "src/fs/vfs.h"
#include "src/linker/domain.h"
#include "src/net/tcp.h"
#include "src/sim/simulator.h"

namespace {

spin::Module g_ext_module("WebServerExt");

class WebServer {
 public:
  WebServer(spin::Domain& system, spin::net::Host& host, uint16_t port)
      : open_(system.GetEvent<int64_t(const char*, int32_t)>("Fs.Open")),
        read_(system.GetEvent<int64_t(int64_t, char*, int64_t)>("Fs.Read")),
        close_(system.GetEvent<int64_t(int64_t)>("Fs.Close")),
        endpoint_(host, port) {
    endpoint_.Listen([this](const std::string& request) {
      std::printf("  [server] %s\n", request.c_str());
      Handle(request);
    });
  }

 private:
  void Handle(const std::string& request) {
    if (request.rfind("GET ", 0) != 0) {
      endpoint_.Send("400 bad request");
      return;
    }
    std::string path = request.substr(4);
    int64_t fd = open_->Raise(path.c_str(), 0);
    if (fd < 0) {
      endpoint_.Send("404 not found");
      return;
    }
    std::string body;
    char buffer[512];
    int64_t n = 0;
    while ((n = read_->Raise(fd, buffer, sizeof(buffer))) > 0) {
      body.append(buffer, static_cast<size_t>(n));
    }
    close_->Raise(fd);
    endpoint_.Send("200 " + body);
  }

  spin::Event<int64_t(const char*, int32_t)>* open_;
  spin::Event<int64_t(int64_t, char*, int64_t)>* read_;
  spin::Event<int64_t(int64_t)>* close_;
  spin::net::TcpEndpoint endpoint_;
};

}  // namespace

int main() {
  spin::Dispatcher dispatcher;
  spin::fs::Vfs vfs(&dispatcher);
  spin::sim::Simulator sim;
  spin::net::Wire wire(&sim, spin::sim::LinkModel{});
  spin::net::Host server_host("spinbox", 0x0a000001, &dispatcher);
  spin::net::Host client_host("client", 0x0a000002, &dispatcher);
  wire.Attach(server_host, client_host);

  // Seed the filesystem.
  int64_t fd = vfs.Open.Raise("/htdocs/index.html", spin::fs::kOpenCreate);
  const char page[] = "<html>served by a SPIN extension</html>";
  vfs.Write.Raise(fd, page, sizeof(page) - 1);
  vfs.CloseFd.Raise(fd);

  // Phase 1: export the system interfaces; link the extension against them.
  spin::Linker linker;
  spin::Domain& system = linker.CreateDomain("system", &vfs.module());
  system.ExportEvent(vfs.Open);
  system.ExportEvent(vfs.Read);
  system.ExportEvent(vfs.CloseFd);

  spin::Domain& extension = linker.CreateDomain("webserver", &g_ext_module);
  extension.ImportEvent<int64_t(const char*, int32_t)>("Fs.Open");
  extension.ImportEvent<int64_t(int64_t, char*, int64_t)>("Fs.Read");
  extension.ImportEvent<int64_t(int64_t)>("Fs.Close");
  linker.LinkAgainstAll(extension);
  std::printf("extension linked: %zu symbols resolved\n",
              extension.exports().size() + 3);

  // Phase 2: the extension installs its service and a client fetches.
  WebServer server(extension, server_host, 80);
  std::string response;
  spin::net::TcpEndpoint client(client_host, 40000);
  client.Connect(server_host.ip(), 80,
                 [&](const std::string& data) { response += data; });
  sim.Run();
  client.Send("GET /htdocs/index.html");
  sim.Run();

  std::printf("client received: %s\n", response.c_str());
  std::printf("wire carried %llu bytes in %llu virtual us\n",
              static_cast<unsigned long long>(wire.bytes_carried()),
              static_cast<unsigned long long>(sim.now_ns() / 1000));
  return response.rfind("200 ", 0) == 0 ? 0 : 1;
}
