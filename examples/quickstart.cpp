// Quickstart: the event model in one file.
//
//   - declare a typed event with an intrinsic handler (a procedure call),
//   - install extra handlers with guards, closures, and ordering,
//   - fold results, fall back to a default handler,
//   - uninstall and watch the system revert.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/core/dispatcher.h"

namespace {

spin::Module g_console_module("Console");

// The intrinsic handler: the procedure that shares the event's name. An
// event with only its intrinsic handler *is* a procedure call (Figure 1).
int64_t WriteLine(const char* text, int64_t level) {
  std::printf("  [console] (%lld) %s\n", static_cast<long long>(level), text);
  return 1;
}

// A syslog-style extension: only interested in important messages.
bool ImportantOnly(const char* text, int64_t level) {
  (void)text;
  return level >= 2;
}

int64_t Syslog(const char* text, int64_t level) {
  std::printf("  [syslog]  (%lld) %s\n", static_cast<long long>(level), text);
  return 1;
}

// A rate-limiter closure demonstrating per-installation state.
struct Budget {
  int64_t remaining;
};

int64_t Count(Budget* budget, const char* text, int64_t level) {
  (void)text;
  (void)level;
  --budget->remaining;
  std::printf("  [counter] budget now %lld\n",
              static_cast<long long>(budget->remaining));
  return 1;
}

}  // namespace

int main() {
  spin::Dispatcher& dispatcher = spin::Dispatcher::Global();

  // Every procedure is implicitly an event; declaring one takes its name,
  // its authority (the defining module), and the intrinsic handler.
  spin::Event<int64_t(const char*, int64_t)> write_line(
      "Console.WriteLine", &g_console_module, &WriteLine);

  std::printf("1. intrinsic only — dispatched as a direct procedure call "
              "(direct_fn=%p):\n",
              write_line.direct_fn());
  write_line.Raise("hello, SPIN", 1);

  std::printf("2. install a guarded extension handler:\n");
  auto syslog = dispatcher.InstallHandler(write_line, &ImportantOnly,
                                          &Syslog,
                                          {.module = &g_console_module});
  write_line.Raise("routine message", 1);   // guard filters syslog out
  write_line.Raise("disk on fire", 3);      // both handlers run

  std::printf("3. closures carry per-installation state:\n");
  Budget budget{5};
  auto counter = dispatcher.InstallHandler(
      write_line, &Count, &budget,
      {.order = {spin::OrderKind::kFirst}, .module = &g_console_module});
  write_line.Raise("counted message", 2);

  std::printf("4. results fold across handlers (sum policy):\n");
  dispatcher.SetResultPolicy(write_line, spin::ResultPolicy::kSum,
                             &g_console_module);
  int64_t fired = write_line.Raise("how many handlers ran?", 3);
  std::printf("  -> %lld handlers contributed\n",
              static_cast<long long>(fired));

  std::printf("5. uninstall restores the original binding:\n");
  dispatcher.Uninstall(syslog, &g_console_module);
  dispatcher.Uninstall(counter, &g_console_module);
  dispatcher.SetResultPolicy(write_line, spin::ResultPolicy::kLast,
                             &g_console_module);
  write_line.Raise("back to normal", 1);
  std::printf("  direct bypass restored: %s\n",
              write_line.direct_fn() != nullptr ? "yes" : "no");

  std::printf("6. events with no willing handler throw; defaults catch:\n");
  spin::Event<int64_t(const char*, int64_t)> audit("Console.Audit",
                                                   &g_console_module);
  try {
    audit.Raise("nobody listens", 1);
  } catch (const spin::NoHandlerError& e) {
    std::printf("  caught: %s\n", e.what());
  }
  dispatcher.InstallDefaultHandler(
      audit, +[](const char* text, int64_t) -> int64_t {
        std::printf("  [default] %s\n", text);
        return 0;
      },
      {.module = &g_console_module});
  audit.Raise("default handler speaking", 1);

  std::printf("quickstart done.\n");
  return 0;
}
