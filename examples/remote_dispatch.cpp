// Remote event dispatch: two simulated hosts, one dispatcher namespace.
//
// Host beta exports a guarded sensor event and a VAR-parameter calibration
// event; host alpha installs EventProxy bindings for both, so a plain
// local Raise on alpha marshals the arguments, crosses the 10 Mb/s wire,
// runs the full guarded dispatch on beta, and carries back the result (or
// the final VAR values). The failure model is then exercised on purpose:
//   - a drop hook eats the first reply, so the proxy retransmits the same
//     request id and beta's at-most-once window answers from its replay
//     cache (the handler does NOT run twice);
//   - a 5 ms partition window forces backed-off retries until the wire
//     heals;
//   - an async fire-and-forget proxy streams telemetry samples through
//     the thread-pool outbox.
// Everything is observable: the flight recorder captures the
// marshal/send/retry/reply records and the Prometheus exposition shows
// the retry/dedup counters moving.
//
// Build & run:  ./build/examples/remote_dispatch
#include <atomic>
#include <cstdio>
#include <iostream>

#include "src/net/host.h"
#include "src/obs/export.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"
#include "src/remote/exporter.h"
#include "src/remote/proxy.h"
#include "src/sim/simulator.h"

namespace {

std::atomic<int> g_sensor_reads{0};
std::atomic<uint64_t> g_telemetry_sum{0};

// Guarded handlers on the exporting host: the remote raise goes through
// the ordinary dispatch path there, guards included.
bool IsCabinSensor(int64_t id) { return id < 100; }
int64_t ReadCabinSensor(int64_t id) {
  g_sensor_reads.fetch_add(1, std::memory_order_relaxed);
  return 200 + id;  // cabin sensors report around 20.0 C
}
bool IsEngineSensor(int64_t id) { return id >= 100; }
int64_t ReadEngineSensor(int64_t id) {
  g_sensor_reads.fetch_add(1, std::memory_order_relaxed);
  return 900 + id;  // engine sensors run hot
}

// VAR parameter: the caller's value crosses the wire, is updated remotely,
// and the final value is copied back in the reply.
void Recalibrate(double& scale) { scale *= 1.25; }

void RecordTelemetry(uint64_t sample) {
  g_telemetry_sum.fetch_add(sample, std::memory_order_relaxed);
}

}  // namespace

int main() {
  spin::Dispatcher dispatcher;
  spin::sim::Simulator sim;
  spin::net::Wire wire(&sim, spin::sim::LinkModel{});
  spin::net::Host alpha("alpha", 0x0a000001, &dispatcher);
  spin::net::Host beta("beta", 0x0a000002, &dispatcher);
  wire.Attach(alpha, beta);

  // --- beta: the exporting host --------------------------------------
  spin::remote::Exporter exporter(beta);
  spin::Event<int64_t(int64_t)> sensor_read("Sensor.Read", nullptr, nullptr,
                                            &dispatcher);
  dispatcher.InstallHandler(sensor_read, &IsCabinSensor, &ReadCabinSensor);
  dispatcher.InstallHandler(sensor_read, &IsEngineSensor, &ReadEngineSensor);
  exporter.Export(sensor_read);

  spin::Event<void(double&)> recalibrate("Sensor.Recalibrate", nullptr,
                                         nullptr, &dispatcher);
  dispatcher.InstallHandler(recalibrate, &Recalibrate);
  exporter.Export(recalibrate);

  spin::Event<void(uint64_t)> telemetry("Sensor.Telemetry", nullptr, nullptr,
                                        &dispatcher);
  dispatcher.InstallHandler(telemetry, &RecordTelemetry);
  exporter.Export(telemetry);

  // --- alpha: proxies make the remote events look local ---------------
  spin::remote::ProxyOptions opts;
  opts.remote_ip = beta.ip();

  spin::Event<int64_t(int64_t)> sensor_read_p("Sensor.Read", nullptr,
                                              nullptr, &dispatcher);
  opts.local_port = 9001;
  spin::remote::EventProxy sensor_proxy(alpha, &sim, sensor_read_p, opts);

  spin::Event<void(double&)> recalibrate_p("Sensor.Recalibrate", nullptr,
                                           nullptr, &dispatcher);
  opts.local_port = 9002;
  spin::remote::EventProxy recal_proxy(alpha, &sim, recalibrate_p, opts);

  spin::Event<void(uint64_t)> telemetry_p("Sensor.Telemetry", nullptr,
                                          nullptr, &dispatcher);
  opts.local_port = 9003;
  opts.kind = spin::remote::RaiseKind::kAsync;
  spin::remote::EventProxy telemetry_proxy(alpha, &sim, telemetry_p, opts);

  spin::obs::EnableScope tracing;  // flight recorder on for the whole run

  // --- clean raises: guards route by argument on the remote host ------
  int64_t cabin = sensor_read_p.Raise(7);
  int64_t engine = sensor_read_p.Raise(140);
  std::printf("sensor 7 (cabin guard)   -> %lld\n",
              static_cast<long long>(cabin));
  std::printf("sensor 140 (engine guard) -> %lld\n",
              static_cast<long long>(engine));

  double scale = 2.0;
  recalibrate_p.Raise(scale);
  std::printf("recalibrate VAR copy-out -> scale = %.2f\n", scale);

  // --- lost reply: retry + at-most-once dedup -------------------------
  // The hook eats the first reply frame (source port = the exporter's).
  // The proxy times out, resends the SAME request id, and beta answers
  // from its replay cache; the handler runs once.
  int replies_to_drop = 1;
  wire.SetDropHook([&](const spin::net::Packet& p, uint64_t, uint64_t) {
    if (p.src_port() == spin::remote::kDefaultRemotePort &&
        replies_to_drop > 0) {
      --replies_to_drop;
      return true;
    }
    return false;
  });
  int reads_before = g_sensor_reads.load();
  int64_t again = sensor_read_p.Raise(7);
  wire.SetDropHook(nullptr);
  int dedup_handler_runs = g_sensor_reads.load() - reads_before;
  std::printf("\nafter dropping 1 reply: result %lld, handler ran %d time, "
              "retries %llu, dedup hits %llu\n",
              static_cast<long long>(again), dedup_handler_runs,
              static_cast<unsigned long long>(sensor_proxy.retries()),
              static_cast<unsigned long long>(exporter.dedup_hits()));

  // --- partition window: backed-off retries until the wire heals ------
  uint64_t t0 = sim.now_ns();
  wire.SetPartition(t0, t0 + 5'000'000);  // 5 ms outage starting now
  uint64_t retries_before = sensor_proxy.retries();
  int64_t healed = sensor_read_p.Raise(7);
  std::printf("through a 5 ms partition: result %lld after %llu retries, "
              "%.1f ms of virtual time\n",
              static_cast<long long>(healed),
              static_cast<unsigned long long>(sensor_proxy.retries() -
                                              retries_before),
              static_cast<double>(sim.now_ns() - t0) / 1e6);
  wire.SetPartition(0, 0);

  // --- async telemetry: fire-and-forget through the pool outbox -------
  for (uint64_t s = 1; s <= 10; ++s) {
    telemetry_p.Raise(s);
  }
  dispatcher.pool().Drain();      // marshals run on pool threads
  size_t flushed = telemetry_proxy.Flush();
  sim.Run();
  std::printf("async telemetry: flushed %zu datagrams, remote sum %llu\n",
              flushed,
              static_cast<unsigned long long>(g_telemetry_sum.load()));

  // --- what the run looked like from the outside ----------------------
  auto records = spin::obs::FlightRecorder::Global().Snapshot();
  int sends = 0;
  int retries = 0;
  int dedups = 0;
  for (const auto& m : records) {
    switch (m.rec.kind) {
      case spin::obs::TraceKind::kRemoteSend: ++sends; break;
      case spin::obs::TraceKind::kRemoteRetry: ++retries; break;
      case spin::obs::TraceKind::kRemoteDedup: ++dedups; break;
      default: break;
    }
  }
  std::printf("\nflight recorder: %d remote sends, %d retries, %d dedup "
              "replays across %zu records\n",
              sends, retries, dedups, records.size());

  std::printf("\n--- Prometheus exposition (spin_remote_* and spin_net_*) "
              "---\n");
  spin::obs::ExportMetrics(std::cout);

  // Self-check so the example doubles as a smoke test.
  bool ok = cabin == 207 && engine == 1040 && again == 207 &&
            healed == 207 && scale == 2.5 && dedup_handler_runs == 1 &&
            sensor_proxy.retries() > 0 && exporter.dedup_hits() > 0 &&
            retries > 0 && dedups > 0 && flushed == 10 &&
            g_telemetry_sum.load() == 55;
  std::printf("\n%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
