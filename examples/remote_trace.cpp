// Causal cross-host tracing: one raise, one span tree, two hosts.
//
// Host atlas raises Pipeline.Stage with three bindings installed: a local
// synchronous handler, a local asynchronous handler (runs on the thread
// pool), and an EventProxy to host borealis. With tracing on, the raise
// allocates a root span; the async handoff pre-allocates a child span that
// both the enqueue and the pool-thread execution record; and the proxy
// ships a wire span in the request trailer, so borealis's dedup/dispatch
// records — and the whole remote dispatch — join the same tree. The
// program writes remote_trace.trace.json (Chrome trace-event JSON): load
// it at ui.perfetto.dev to see one process row per host, the per-thread
// timelines, and flow arrows stitching the handoffs by span id.
//
// Exits nonzero unless the captured tree really spans two hosts and shows
// flow linkage, so it doubles as a smoke test.
//
// Build & run:  ./build/examples/remote_trace [trace.json]
#include <atomic>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>

#include "src/net/host.h"
#include "src/obs/context.h"
#include "src/obs/obs.h"
#include "src/obs/query.h"
#include "src/obs/trace.h"
#include "src/remote/exporter.h"
#include "src/remote/proxy.h"
#include "src/sim/simulator.h"

namespace {

std::atomic<int> g_local_sync{0};
std::atomic<int> g_local_async{0};
std::atomic<int> g_remote{0};

void LocalStage(int64_t) { g_local_sync.fetch_add(1); }
void AsyncStage(int64_t) { g_local_async.fetch_add(1); }
void RemoteStage(int64_t) { g_remote.fetch_add(1); }

}  // namespace

int main(int argc, char** argv) {
  using namespace spin;
  const char* trace_path =
      argc > 1 ? argv[1] : "remote_trace.trace.json";

  Dispatcher dispatcher;
  sim::Simulator sim;
  net::Wire wire{&sim, sim::LinkModel{}};
  net::Host atlas{"atlas", 0x0a000001, &dispatcher};
  net::Host borealis{"borealis", 0x0a000002, &dispatcher};
  wire.Attach(atlas, borealis);
  remote::Exporter exporter{borealis};

  Event<void(int64_t)> remote_ev("Pipeline.Stage", nullptr, nullptr,
                                 &dispatcher);
  dispatcher.InstallHandler(remote_ev, &RemoteStage);
  exporter.Export(remote_ev);

  Event<void(int64_t)> stage("Pipeline.Stage", nullptr, nullptr,
                             &dispatcher);
  dispatcher.InstallHandler(stage, &LocalStage);
  dispatcher.InstallHandler(stage, &AsyncStage, {.async = true});
  remote::ProxyOptions opts;
  opts.remote_ip = borealis.ip();
  opts.local_port = 9050;
  remote::EventProxy proxy(atlas, &sim, stage, opts);

  // Capture window: everything between EnableTracing(true/false).
  obs::FlightRecorder::Global().Reset();
  dispatcher.EnableTracing(true);
  {
    obs::HostScope on_atlas(atlas.trace_host_id());
    stage.Raise(42);
  }
  dispatcher.pool().Drain();
  dispatcher.EnableTracing(false);

  auto records = obs::FlightRecorder::Global().Snapshot();
  obs::TraceQuery query(records);

  // Find the root span (the top-level raise on atlas) and its tree.
  uint64_t root = 0;
  for (const obs::MergedRecord& m : records) {
    if (m.rec.kind == obs::TraceKind::kRaiseBegin && m.rec.parent == 0 &&
        std::string(m.rec.name) == "Pipeline.Stage") {
      root = m.rec.span;
      break;
    }
  }
  auto tree = query.SpanTree(root);
  std::set<uint32_t> hosts;
  std::set<uint32_t> tids;
  for (const obs::MergedRecord& m : tree) {
    if (m.rec.host != 0) {
      hosts.insert(m.rec.host);
    }
    tids.insert(m.tid);
  }
  std::cout << "span tree: root=" << root << " records=" << tree.size()
            << " spans=" << query.Spans().size() << " hosts=" << hosts.size()
            << " threads=" << tids.size() << "\n";
  for (const obs::MergedRecord& m : tree) {
    std::printf("  %-14s %-18s span=%llu parent=%llu host=%s tid=%u\n",
                obs::TraceKindName(m.rec.kind), m.rec.name,
                static_cast<unsigned long long>(m.rec.span),
                static_cast<unsigned long long>(m.rec.parent),
                obs::TraceHostName(m.rec.host), m.tid);
  }

  std::ofstream trace(trace_path);
  obs::WriteChromeTrace(trace, records);
  trace.close();
  std::cout << "wrote " << trace_path << " — open in ui.perfetto.dev\n";

  // Smoke-test contract: handlers all fired, the tree crosses the wire,
  // and the JSON contains flow linkage.
  if (g_local_sync.load() != 1 || g_local_async.load() != 1 ||
      g_remote.load() != 1) {
    std::cerr << "FAIL: handlers did not all fire\n";
    return 1;
  }
  if (root == 0 || hosts.size() < 2 || tids.size() < 2) {
    std::cerr << "FAIL: span tree does not cross hosts/threads\n";
    return 1;
  }
  std::ostringstream os;
  obs::WriteChromeTrace(os, records);
  const std::string json = os.str();
  if (json.find("\"ph\":\"s\"") == std::string::npos ||
      json.find("\"ph\":\"f\"") == std::string::npos) {
    std::cerr << "FAIL: no flow events in the exported trace\n";
    return 1;
  }
  return 0;
}
