// Transparent interposition with filters (§2.3): the MS-DOS name space
// provided over a UNIX file system. The filter takes the path parameter
// by reference (the dispatcher hands it the address of its argument copy),
// rewrites DOS names, and every handler ordered after it — the UFS
// implementation — sees the converted name. The raiser's own string is
// never touched.
//
// Build & run:  ./build/examples/fs_filter
#include <cctype>
#include <cstdio>
#include <cstring>

#include "src/fs/vfs.h"

namespace {

spin::Module g_dosfs_module("DosFs");

struct DosArena {
  char buffer[512];
  int conversions = 0;
};
DosArena g_arena;

bool LooksLikeDosPath(const char* path) {
  return path[0] != '\0' && path[1] == ':';
}

int64_t DosOpenFilter(const char*& path, int32_t flags) {
  (void)flags;
  if (!LooksLikeDosPath(path)) {
    return 0;
  }
  ++g_arena.conversions;
  size_t out = 0;
  for (const char* p = path + 2;
       *p != '\0' && out + 1 < sizeof(g_arena.buffer); ++p) {
    g_arena.buffer[out++] =
        *p == '\\' ? '/' : static_cast<char>(std::tolower(*p));
  }
  g_arena.buffer[out] = '\0';
  std::printf("  [dosfs] \"%s\" -> \"%s\"\n", path, g_arena.buffer);
  path = g_arena.buffer;
  return 0;
}

int64_t DosRemoveFilter(const char*& path) {
  int32_t flags = 0;
  return DosOpenFilter(path, flags);
}

}  // namespace

int main() {
  spin::Dispatcher dispatcher;
  spin::fs::Vfs vfs(&dispatcher);

  // Install the DOS name filters in front of the UFS handlers.
  dispatcher.InstallFilter(vfs.Open, &DosOpenFilter,
                           {.order = {spin::OrderKind::kFirst},
                            .module = &g_dosfs_module});
  dispatcher.InstallFilter(vfs.Remove, &DosRemoveFilter,
                           {.order = {spin::OrderKind::kFirst},
                            .module = &g_dosfs_module});

  std::printf("1. a DOS application creates a file:\n");
  int64_t fd = vfs.Open.Raise("C:\\DOCS\\REPORT.TXT",
                              spin::fs::kOpenCreate);
  vfs.Write.Raise(fd, "quarterly numbers", 17);
  vfs.CloseFd.Raise(fd);

  std::printf("2. a UNIX application reads the same file:\n");
  fd = vfs.Open.Raise("/docs/report.txt", 0);
  char buffer[64] = {};
  int64_t n = vfs.Read.Raise(fd, buffer, sizeof(buffer));
  vfs.CloseFd.Raise(fd);
  std::printf("  read %lld bytes: \"%s\"\n", static_cast<long long>(n),
              buffer);

  std::printf("3. the DOS application deletes it by DOS name:\n");
  int64_t rc = vfs.Remove.Raise("C:\\DOCS\\REPORT.TXT");
  std::printf("  remove -> %lld, file exists: %s\n",
              static_cast<long long>(rc),
              vfs.Exists("/docs/report.txt") ? "yes" : "no");

  std::printf("4. %d conversions happened; UNIX names passed untouched\n",
              g_arena.conversions);
  return rc == 0 && !vfs.Exists("/docs/report.txt") ? 0 : 1;
}
