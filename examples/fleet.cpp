// A miniature fleet run: pluggable TCP stacks under loss, with an
// authorizer-gated mid-run hot-swap.
//
// Eight host pairs (one lossy wire each) carry 32 concurrent connections
// of open-loop request/response traffic on the reno stack. A §2.5
// authorizer on every host's Tcp.* stack events allows only
// {reno, rack_lite}: halfway through the run every connection hot-swaps
// to rack_lite (granted — the byte streams must survive the handover
// intact), then attempts stop_and_wait (denied — each endpoint keeps its
// incumbent stack and the denial is tallied, never dropping a byte).
//
// The run writes the Prometheus exposition — including the spin_fleet_*
// series — to a .prom file (lint it with tools/validate_metrics.py) and
// two cumulative stats captures plus their delta as JSON lines for
// tools/spin_top.py.
//
// Build & run:
//   ./build/examples/fleet [metrics.prom [stats.jsonl]]
#include <cstdio>
#include <fstream>
#include <iostream>

#include "src/core/dispatcher.h"
#include "src/fleet/fleet.h"
#include "src/obs/export.h"

int main(int argc, char** argv) {
  const char* prom_path = argc > 1 ? argv[1] : "fleet_metrics.prom";
  const char* stats_path = argc > 2 ? argv[2] : "fleet_stats.jsonl";

  spin::Dispatcher::Config config;
  config.shards = 4;
  spin::Dispatcher dispatcher(config);

  spin::fleet::FleetOptions options;
  options.pairs = 8;
  options.conns_per_pair = 4;
  options.stack = "reno";
  options.loss = 0.01;
  options.seed = 7;
  options.duration_ns = 1'000'000'000;
  options.allowed_stacks = {"reno", "rack_lite"};

  spin::fleet::Fleet fleet(&dispatcher, options);
  spin::obs::StatsSnapshot before = spin::obs::CaptureStats();

  // Halfway: swap everyone to rack_lite (allowed), then try to sneak in
  // stop_and_wait (not on the allow-list: denied, incumbent stays).
  fleet.ScheduleSwap(options.duration_ns / 2, "rack_lite");
  fleet.ScheduleSwap(options.duration_ns / 2 + 1, "stop_and_wait");

  spin::fleet::FleetReport report = fleet.Run();
  std::cout << spin::fleet::ReportJson(options, report) << "\n";

  {
    std::ofstream prom(prom_path);
    spin::obs::ExportMetrics(prom);
  }
  {
    spin::obs::StatsSnapshot after = spin::obs::CaptureStats();
    std::ofstream stats(stats_path);
    spin::obs::WriteJsonStats(stats, before);
    stats << "\n";
    spin::obs::WriteJsonStats(stats, after);
    stats << "\n";
    spin::obs::WriteJsonStats(stats, spin::obs::Delta(before, after));
    stats << "\n";
  }
  std::printf("wrote %s and %s\n", prom_path, stats_path);

  bool ok = report.established == report.connections &&
            report.responses_delivered > 0 && report.dead == 0 &&
            report.swaps_granted == 2 * report.connections &&
            report.swaps_denied == 2 * report.connections &&
            report.streams_intact;
  if (!ok) {
    std::fprintf(stderr, "FLEET SMOKE FAILED\n");
    return 1;
  }
  std::printf("fleet smoke ok: %llu responses, swap granted %zu denied %zu\n",
              static_cast<unsigned long long>(report.responses_delivered),
              report.swaps_granted, report.swaps_denied);
  return 0;
}
