// Adversarial admission corpus for the micro-program verifier.
//
// Verify() is the trust boundary for programs that arrive as data — above
// all imposed guards received in a BindReply. These tests feed it the
// attacks it exists to refuse: out-of-bounds register/payload access,
// backward jumps (loop attempts), budget-exhausting control flow, store
// smuggling inside "functional" programs, unknown opcodes, and mutated
// wire encodings — and assert each is rejected with the precise
// VerifyStatus, not a crash and not a generic failure.
//
// The flip side is the termination property: for every ACCEPTED program,
// the interpreter must finish within the budget the verifier proved
// (VerifyResult::budget), measured by the interpreter's own step counter.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/micro/interp.h"
#include "src/micro/program.h"
#include "src/micro/verify.h"
#include "src/remote/wire_format.h"

namespace spin {
namespace micro {
namespace {

Program Raw(std::vector<Insn> code, int num_args = 2,
            bool functional = true) {
  return Program(std::move(code), num_args, functional);
}

Insn I(Op op, uint8_t dst = 0, uint8_t a = 0, uint8_t b = 0,
       uint64_t imm = 0) {
  return Insn{op, dst, a, b, imm};
}

// --- Precise refusal per attack class ---------------------------------------

TEST(MicroVerify, EmptyProgram) {
  VerifyResult r = Verify(Raw({}));
  EXPECT_EQ(r.status, VerifyStatus::kEmpty);
}

TEST(MicroVerify, TooLong) {
  std::vector<Insn> code(300, I(Op::kLoadImm, 0, 0, 0, 1));
  code.push_back(I(Op::kRetImm));
  VerifyResult r = Verify(Raw(std::move(code)));
  EXPECT_EQ(r.status, VerifyStatus::kTooLong);
}

TEST(MicroVerify, UnknownOpcode) {
  // The wire decoder preserves out-of-range opcode bytes; admission is
  // the verifier's job.
  Insn bad = I(Op::kRetImm);
  bad.op = static_cast<Op>(0xEE);
  VerifyResult r = Verify(Raw({I(Op::kLoadImm, 0), bad}));
  EXPECT_EQ(r.status, VerifyStatus::kBadOpcode);
  EXPECT_EQ(r.fault_pc, 1u);
}

TEST(MicroVerify, RegisterOutOfBounds) {
  // dst, a, and b are each checked.
  EXPECT_EQ(Verify(Raw({I(Op::kLoadImm, 8), I(Op::kRetImm)})).status,
            VerifyStatus::kBadRegister);
  EXPECT_EQ(Verify(Raw({I(Op::kMov, 0, 9), I(Op::kRetImm)})).status,
            VerifyStatus::kBadRegister);
  EXPECT_EQ(Verify(Raw({I(Op::kAdd, 0, 1, 200), I(Op::kRetImm)})).status,
            VerifyStatus::kBadRegister);
}

TEST(MicroVerify, PayloadReadOutOfBounds) {
  // kLoadArg beyond the declared arity reads other stack slots in a naive
  // evaluator — the classic OOB payload read.
  VerifyResult r =
      Verify(Raw({I(Op::kLoadArg, 0, 0, 0, /*imm=*/5), I(Op::kRet, 0, 0)},
                 /*num_args=*/2));
  EXPECT_EQ(r.status, VerifyStatus::kBadArgIndex);
  EXPECT_EQ(r.fault_pc, 0u);
}

TEST(MicroVerify, StoreSmuggling) {
  // Stores are refused for wire guards no matter how they are spelled.
  EXPECT_EQ(Verify(Raw({I(Op::kStoreGlobal, 0, 0, 3, 0x1000),
                        I(Op::kRetImm)}))
                .status,
            VerifyStatus::kStore);
  EXPECT_EQ(
      Verify(Raw({I(Op::kStoreField, 3, 0, 1, 8), I(Op::kRetImm)})).status,
      VerifyStatus::kStore);
  // Even with allow_stores, a FUNCTIONAL program may not store (the §2.3
  // compiler-checked property).
  VerifyLimits lax;
  lax.allow_stores = true;
  lax.allow_memory_reads = true;
  EXPECT_EQ(Verify(Raw({I(Op::kStoreGlobal, 0, 0, 3, 0x1000),
                        I(Op::kRetImm)}),
                   lax)
                .status,
            VerifyStatus::kStore);
}

TEST(MicroVerify, AddressFormingLoads) {
  // Wire policy: no memory reads at all — an exporter address is
  // meaningless (and hostile) in the proxy's address space.
  EXPECT_EQ(Verify(Raw({I(Op::kLoadGlobal, 0, 0, 3, 0xdead),
                        I(Op::kRet, 0, 0)}),
                   WireGuardLimits())
                .status,
            VerifyStatus::kAddressOp);
  EXPECT_EQ(Verify(Raw({I(Op::kLoadField, 0, 0, 3, 8), I(Op::kRet, 0, 0)},
                       /*num_args=*/1),
                   WireGuardLimits())
                .status,
            VerifyStatus::kAddressOp);
  // The same program is admissible under the local policy.
  VerifyLimits local;
  local.allow_memory_reads = true;
  EXPECT_TRUE(Verify(Raw({I(Op::kLoadField, 0, 0, 3, 8), I(Op::kRet, 0, 0)},
                         /*num_args=*/1),
                     local)
                  .ok());
}

TEST(MicroVerify, BadWidthExponent) {
  // Width exponent rides in b for loads, dst for kStoreField.
  EXPECT_EQ(Verify(Raw({I(Op::kLoadField, 0, 0, /*b=*/4, 0),
                        I(Op::kRet, 0, 0)},
                       /*num_args=*/1),
                   VerifyLimits{256, 256, true, false})
                .status,
            VerifyStatus::kBadWidth);
}

TEST(MicroVerify, BadShift) {
  VerifyResult r = Verify(
      Raw({I(Op::kLoadImm, 0), I(Op::kShlImm, 0, 0, 0, 64), I(Op::kRet)}));
  EXPECT_EQ(r.status, VerifyStatus::kBadShift);
  EXPECT_EQ(r.fault_pc, 1u);
}

TEST(MicroVerify, BackwardJumpIsLoopAttempt) {
  // The budget-exhausting attack: jump back and spin. Refused as a
  // backward jump — the verifier never needs to simulate it.
  VerifyResult r = Verify(Raw({I(Op::kLoadImm, 0, 0, 0, 1),
                               I(Op::kJmp, 0, 0, 0, /*imm=*/0),
                               I(Op::kRetImm)}));
  EXPECT_EQ(r.status, VerifyStatus::kBackwardJump);
  EXPECT_EQ(r.fault_pc, 1u);
  // Self-jump is equally a loop.
  EXPECT_EQ(
      Verify(Raw({I(Op::kJmp, 0, 0, 0, 0), I(Op::kRetImm)})).status,
      VerifyStatus::kBackwardJump);
}

TEST(MicroVerify, JumpOutOfRange) {
  VerifyResult r =
      Verify(Raw({I(Op::kJz, 0, 0, 0, /*imm=*/7), I(Op::kRetImm)}));
  EXPECT_EQ(r.status, VerifyStatus::kJumpOutOfRange);
}

TEST(MicroVerify, MissingTerminator) {
  VerifyResult r = Verify(Raw({I(Op::kLoadImm, 0, 0, 0, 1)}));
  EXPECT_EQ(r.status, VerifyStatus::kMissingTerminator);
}

TEST(MicroVerify, BudgetExceededUnderCustomLimit) {
  // Jumps are forward-only, so the longest path is bounded by the length
  // and kBudgetExceeded only fires under limits tighter than max_insns —
  // the knob an embedder uses to price admission below program size.
  std::vector<Insn> code(31, I(Op::kLoadImm, 0, 0, 0, 1));
  code.push_back(I(Op::kRetImm));
  VerifyLimits tight;
  tight.max_budget = 16;
  VerifyResult r = Verify(Raw(std::move(code)), tight);
  EXPECT_EQ(r.status, VerifyStatus::kBudgetExceeded);
}

TEST(MicroVerify, StatusNamesExhaustive) {
  for (size_t i = 0; i < kNumVerifyStatuses; ++i) {
    const char* name = VerifyStatusName(static_cast<VerifyStatus>(i));
    EXPECT_STRNE(name, "<bad>") << "status " << i;
  }
}

// --- Termination property over accepted programs ----------------------------

struct Rng {
  uint64_t state;
  uint64_t Next() {
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  uint64_t Below(uint64_t n) { return n == 0 ? 0 : Next() % n; }
};

// Random pure program: straight-line ALU ops with forward jumps sprinkled
// in, always terminated. Constructed to pass Verify by construction.
Program RandomPure(Rng& rng, int num_args) {
  size_t body = 1 + rng.Below(40);
  std::vector<Insn> code;
  for (size_t i = 0; i < body; ++i) {
    switch (rng.Below(6)) {
      case 0:
        code.push_back(I(Op::kLoadArg, rng.Below(kNumRegs), 0, 0,
                         rng.Below(num_args)));
        break;
      case 1:
        code.push_back(I(Op::kLoadImm, rng.Below(kNumRegs), 0, 0,
                         rng.Next()));
        break;
      case 2:
        code.push_back(I(Op::kAdd, rng.Below(kNumRegs),
                         rng.Below(kNumRegs), rng.Below(kNumRegs)));
        break;
      case 3:
        code.push_back(I(Op::kCmpLtU, rng.Below(kNumRegs),
                         rng.Below(kNumRegs), rng.Below(kNumRegs)));
        break;
      case 4:
        code.push_back(I(Op::kShrImm, rng.Below(kNumRegs),
                         rng.Below(kNumRegs), 0, rng.Below(64)));
        break;
      default: {
        // Forward jump to a strictly later index; the tail below
        // guarantees any target <= body is in range and reaches a
        // terminator.
        size_t pc = code.size();
        uint64_t target = pc + 1 + rng.Below(body - i);
        code.push_back(I(rng.Below(2) ? Op::kJz : Op::kJmp,
                         0, rng.Below(kNumRegs), 0, target));
        break;
      }
    }
  }
  code.push_back(I(Op::kRet, 0, rng.Below(kNumRegs)));
  return Program(std::move(code), num_args, /*functional=*/true);
}

TEST(MicroVerify, AcceptedProgramsTerminateWithinBudget) {
  Rng rng{0x5eedULL};
  int checked = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    int num_args = 1 + static_cast<int>(rng.Below(6));
    Program prog = RandomPure(rng, num_args);
    VerifyResult v = Verify(prog, WireGuardLimits());
    ASSERT_TRUE(v.ok()) << "iter " << iter << ": "
                        << VerifyStatusName(v.status) << " at pc "
                        << v.fault_pc << "\n"
                        << prog.ToString();
    ASSERT_LE(v.budget, prog.code().size());
    uint64_t args[kMaxArgs] = {};
    for (int i = 0; i < num_args; ++i) {
      args[i] = rng.Next();
    }
    uint64_t steps = 0;
    (void)::spin::micro::Run(prog, args, num_args, &steps);
    ASSERT_LE(steps, v.budget) << "iter " << iter
                               << ": interpreter exceeded the proved "
                                  "budget\n"
                               << prog.ToString();
    ++checked;
  }
  EXPECT_EQ(checked, 2000);
}

// --- Wire-level admission (mutated encodings) --------------------------------

// A bind reply carrying one well-formed guard.
remote::BindReplyMsg OkReply() {
  remote::BindReplyMsg reply;
  reply.status = remote::WireStatus::kOk;
  reply.bind_id = 7;
  reply.token = 0xfeed;
  reply.guards.push_back(std::move(ProgramBuilder(2, /*functional=*/true)
                                       .LoadArg(0, 0)
                                       .LoadImm(1, 42)
                                       .CmpEq(2, 0, 1)
                                       .Ret(2))
                             .Build());
  return reply;
}

// Offset of the first guard instruction's opcode byte in the encoded
// reply: header(4) + status(1) + bind_id(8) + token(8) + nguards(1) +
// num_args(1) + ninsn(2).
constexpr size_t kFirstOpcodeOffset = 4 + 1 + 8 + 8 + 1 + 1 + 2;

TEST(MicroVerifyWire, SemanticRefusalIsTypedNotDropped) {
  std::string wire = remote::EncodeBindReply(OkReply());
  // Mutate the first opcode byte into garbage: still a well-framed reply,
  // so the decode SUCCEEDS with the refusal recorded — the proxy turns it
  // into RemoteError(kBadGuard) instead of a timeout.
  wire[kFirstOpcodeOffset] = static_cast<char>(0xEE);
  remote::BindReplyMsg out;
  ASSERT_TRUE(remote::DecodeBindReply(wire, &out));
  EXPECT_EQ(out.guard_verify, VerifyStatus::kBadOpcode);
  EXPECT_EQ(out.guard_verify_index, 0);
  EXPECT_TRUE(out.guards.empty()) << "refused guards must not escape";
}

TEST(MicroVerifyWire, RefusalReportsPreciseStatus) {
  struct Case {
    size_t offset;  // within the first instruction
    uint8_t value;
    VerifyStatus expect;
  };
  // First instruction is kLoadArg dst=0 a=0 b=0 imm=0 at
  // kFirstOpcodeOffset: op(1) dst(1) a(1) b(1) imm(8).
  const Case kCases[] = {
      {0, 0xEE, VerifyStatus::kBadOpcode},
      {1, 200, VerifyStatus::kBadRegister},           // dst out of range
      {11, 6, VerifyStatus::kBadArgIndex},            // imm low byte: arg 6 of 2
      {0, static_cast<uint8_t>(Op::kStoreGlobal), VerifyStatus::kStore},
      {0, static_cast<uint8_t>(Op::kLoadGlobal), VerifyStatus::kAddressOp},
      {0, static_cast<uint8_t>(Op::kJmp), VerifyStatus::kBackwardJump},
  };
  for (const Case& c : kCases) {
    std::string wire = remote::EncodeBindReply(OkReply());
    wire[kFirstOpcodeOffset + c.offset] = static_cast<char>(c.value);
    remote::BindReplyMsg out;
    ASSERT_TRUE(remote::DecodeBindReply(wire, &out))
        << "offset " << c.offset;
    EXPECT_EQ(out.guard_verify, c.expect) << "offset " << c.offset;
    EXPECT_TRUE(out.guards.empty());
  }
}

TEST(MicroVerifyWire, TruncationIsStillStructuralFailure) {
  // Framing damage stays a decode failure: a truncated reply is noise,
  // not a refusable program.
  std::string wire = remote::EncodeBindReply(OkReply());
  for (size_t len = 0; len < wire.size(); ++len) {
    remote::BindReplyMsg out;
    EXPECT_FALSE(remote::DecodeBindReply(wire.substr(0, len), &out))
        << "truncated to " << len;
  }
}

TEST(MicroVerifyWire, MutationSweepNeverCrashes) {
  // Deterministic single-byte mutation sweep over the whole frame: every
  // outcome is acceptable (decode failure or typed refusal or a different
  // valid reply) except a crash — run under ASan/UBSan/TSan in CI.
  std::string base = remote::EncodeBindReply(OkReply());
  for (size_t pos = 0; pos < base.size(); ++pos) {
    for (uint8_t delta : {0x01, 0x80, 0xFF}) {
      std::string wire = base;
      wire[pos] = static_cast<char>(wire[pos] ^ delta);
      remote::BindReplyMsg out;
      if (remote::DecodeBindReply(wire, &out) &&
          out.guard_verify == VerifyStatus::kOk) {
        // Whatever decoded cleanly must re-verify cleanly: admitted
        // guards are always safe to execute.
        for (const Program& g : out.guards) {
          EXPECT_TRUE(Verify(g, WireGuardLimits()).ok());
        }
      }
    }
  }
}

TEST(MicroVerifyWire, WireableGuardMatchesReceiverAdmission) {
  // The sender-side predicate and the receiver-side admission are the
  // same function: anything WireableGuard accepts round-trips and is
  // admitted; anything it rejects would be refused on arrival.
  Program pure =
      std::move(ProgramBuilder(1, true).LoadArg(0, 0).Ret(0)).Build();
  EXPECT_TRUE(remote::WireableGuard(pure));
  EXPECT_TRUE(Verify(pure, WireGuardLimits()).ok());

  Program memory = std::move(ProgramBuilder(1, true)
                                 .LoadField(0, 0, 0, 8)
                                 .Ret(0))
                       .Build();
  EXPECT_FALSE(remote::WireableGuard(memory));
  EXPECT_FALSE(Verify(memory, WireGuardLimits()).ok());

  Program impure =
      std::move(ProgramBuilder(1, false).LoadArg(0, 0).Ret(0)).Build();
  EXPECT_FALSE(remote::WireableGuard(impure)) << "non-FUNCTIONAL";
}

}  // namespace
}  // namespace micro
}  // namespace spin
