// VFS tests, including the §2.3 filter example: an MS-DOS name space
// provided over the UNIX file system by a path-rewriting filter.
#include <cctype>
#include <cstring>

#include <gtest/gtest.h>

#include "src/fs/vfs.h"

namespace spin {
namespace fs {
namespace {

class FsTest : public ::testing::Test {
 protected:
  Dispatcher dispatcher_;
  Vfs vfs_{&dispatcher_};
};

TEST_F(FsTest, CreateWriteReadRoundTrip) {
  int64_t fd = vfs_.Open.Raise("/etc/motd", kOpenCreate);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(vfs_.Write.Raise(fd, "hello spin", 10), 10);
  EXPECT_EQ(vfs_.CloseFd.Raise(fd), 0);

  fd = vfs_.Open.Raise("/etc/motd", 0);
  ASSERT_GE(fd, 0);
  char buf[32] = {};
  EXPECT_EQ(vfs_.Read.Raise(fd, buf, 32), 10);
  EXPECT_STREQ(buf, "hello spin");
  EXPECT_EQ(vfs_.CloseFd.Raise(fd), 0);
}

TEST_F(FsTest, OpenMissingWithoutCreateFails) {
  EXPECT_EQ(vfs_.Open.Raise("/nope", 0), kErrNoEnt);
}

TEST_F(FsTest, TruncateOnOpen) {
  int64_t fd = vfs_.Open.Raise("/f", kOpenCreate);
  vfs_.Write.Raise(fd, "0123456789", 10);
  vfs_.CloseFd.Raise(fd);
  fd = vfs_.Open.Raise("/f", kOpenTrunc);
  char buf[8];
  EXPECT_EQ(vfs_.Read.Raise(fd, buf, 8), 0);
  vfs_.CloseFd.Raise(fd);
}

TEST_F(FsTest, BadFdRejected) {
  char buf[4];
  EXPECT_EQ(vfs_.Read.Raise(99, buf, 4), kErrBadFd);
  EXPECT_EQ(vfs_.Write.Raise(99, buf, 4), kErrBadFd);
  EXPECT_EQ(vfs_.CloseFd.Raise(99), kErrBadFd);
}

TEST_F(FsTest, RemoveFile) {
  int64_t fd = vfs_.Open.Raise("/gone", kOpenCreate);
  vfs_.CloseFd.Raise(fd);
  EXPECT_TRUE(vfs_.Exists("/gone"));
  EXPECT_EQ(vfs_.Remove.Raise("/gone"), 0);
  EXPECT_FALSE(vfs_.Exists("/gone"));
  EXPECT_EQ(vfs_.Remove.Raise("/gone"), kErrNoEnt);
}

TEST_F(FsTest, FdsAreRecycled) {
  int64_t fd1 = vfs_.Open.Raise("/a", kOpenCreate);
  vfs_.CloseFd.Raise(fd1);
  int64_t fd2 = vfs_.Open.Raise("/b", kOpenCreate);
  EXPECT_EQ(fd1, fd2);
  vfs_.CloseFd.Raise(fd2);
}

// --- The MS-DOS name filter ---------------------------------------------------

// Translates "C:\DIR\FILE.TXT" to "/dir/file.txt". The converted string
// must outlive the dispatch; a static arena mirrors the kernel-resident
// buffer a SPIN extension would own.
struct DosState {
  char converted[256];
  int conversions = 0;
};
DosState g_dos;

int64_t DosOpenFilter(const char*& path, int32_t flags) {
  (void)flags;
  if (path[0] != '\0' && path[1] == ':') {  // looks like a DOS path
    ++g_dos.conversions;
    size_t out = 0;
    for (const char* p = path + 2; *p != '\0' && out + 1 < sizeof(g_dos.converted); ++p) {
      g_dos.converted[out++] =
          *p == '\\' ? '/' : static_cast<char>(std::tolower(*p));
    }
    g_dos.converted[out] = '\0';
    path = g_dos.converted;
  }
  return 0;  // a filter's own result is superseded by the real handler
}

TEST_F(FsTest, DosNameFilterTranslatesTransparently) {
  g_dos = DosState{};
  dispatcher_.InstallFilter(vfs_.Open, &DosOpenFilter,
                            {.order = {OrderKind::kFirst},
                             .module = &vfs_.module()});
  int64_t fd = vfs_.Open.Raise("C:\\ETC\\MOTD.TXT", kOpenCreate);
  ASSERT_GE(fd, 0);
  vfs_.Write.Raise(fd, "dos!", 4);
  vfs_.CloseFd.Raise(fd);
  EXPECT_EQ(g_dos.conversions, 1);
  EXPECT_TRUE(vfs_.Exists("/etc/motd.txt"))
      << "the UNIX layer must see the translated name";
  EXPECT_FALSE(vfs_.Exists("C:\\ETC\\MOTD.TXT"));

  // UNIX names pass through untouched.
  int64_t fd2 = vfs_.Open.Raise("/etc/motd.txt", 0);
  EXPECT_GE(fd2, 0);
  vfs_.CloseFd.Raise(fd2);
  EXPECT_EQ(g_dos.conversions, 1);
}

TEST_F(FsTest, FilterResultDoesNotMaskRealHandler) {
  dispatcher_.InstallFilter(vfs_.Open, &DosOpenFilter,
                            {.order = {OrderKind::kFirst},
                             .module = &vfs_.module()});
  // Default result policy is kLast: the UFS handler's fd wins over the
  // filter's 0.
  int64_t fd = vfs_.Open.Raise("/x", kOpenCreate);
  int64_t fd2 = vfs_.Open.Raise("/y", kOpenCreate);
  EXPECT_NE(fd, fd2);
}

}  // namespace
}  // namespace fs
}  // namespace spin
