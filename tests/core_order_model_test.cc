// Model-based property test for ordering constraints (§2.3): a random
// sequence of installs (First/Last/Before/After/Unordered), uninstalls,
// and SetOrder operations is applied both to the dispatcher and to a
// trivial reference model; the observed dispatch order must match the
// model's list after every operation.
#include <deque>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/dispatcher.h"

namespace spin {
namespace {

std::vector<int> g_fired;

void Record(int* id, int64_t) { g_fired.push_back(*id); }

class OrderModelTest : public ::testing::TestWithParam<int> {};

TEST_P(OrderModelTest, DispatchOrderMatchesModel) {
  std::mt19937_64 rng(GetParam());
  Module module("OrderModel");
  Dispatcher dispatcher;
  Event<void(int64_t)> event("Order.Model", &module, nullptr, &dispatcher);

  struct Entry {
    int id;
    BindingHandle binding;
    std::unique_ptr<int> closure;
  };
  std::vector<Entry> model;  // model order == expected dispatch order
  int next_id = 0;

  auto find_in_model = [&](const BindingHandle& b) {
    for (size_t i = 0; i < model.size(); ++i) {
      if (model[i].binding == b) {
        return i;
      }
    }
    return model.size();
  };

  auto place_in_model = [&](Entry entry, const Order& order) {
    switch (order.kind) {
      case OrderKind::kFirst:
        model.insert(model.begin(), std::move(entry));
        break;
      case OrderKind::kBefore: {
        size_t at = find_in_model(order.ref);
        model.insert(model.begin() + static_cast<ptrdiff_t>(at),
                     std::move(entry));
        break;
      }
      case OrderKind::kAfter: {
        size_t at = find_in_model(order.ref);
        model.insert(model.begin() + static_cast<ptrdiff_t>(at) + 1,
                     std::move(entry));
        break;
      }
      case OrderKind::kUnordered:
      case OrderKind::kLast:
        model.push_back(std::move(entry));
        break;
    }
  };

  for (int step = 0; step < 120; ++step) {
    int op = static_cast<int>(rng() % 4);
    if (op == 0 || model.size() < 2) {
      // Install with a random constraint.
      Order order;
      switch (rng() % 5) {
        case 0:
          order.kind = OrderKind::kFirst;
          break;
        case 1:
          order.kind = OrderKind::kLast;
          break;
        case 2:
          if (!model.empty()) {
            order.kind = OrderKind::kBefore;
            order.ref = model[rng() % model.size()].binding;
          }
          break;
        case 3:
          if (!model.empty()) {
            order.kind = OrderKind::kAfter;
            order.ref = model[rng() % model.size()].binding;
          }
          break;
        default:
          break;
      }
      Entry entry;
      entry.id = next_id++;
      entry.closure = std::make_unique<int>(entry.id);
      entry.binding = dispatcher.InstallHandler(
          event, &Record, entry.closure.get(),
          {.order = order, .module = &module});
      place_in_model(std::move(entry), order);
    } else if (op == 1) {
      // Uninstall a random binding.
      size_t at = rng() % model.size();
      dispatcher.Uninstall(model[at].binding, &module);
      model.erase(model.begin() + static_cast<ptrdiff_t>(at));
    } else if (op == 2) {
      // Re-place a random binding with SetOrder.
      size_t at = rng() % model.size();
      Entry entry = std::move(model[at]);
      model.erase(model.begin() + static_cast<ptrdiff_t>(at));
      Order order;
      order.kind = rng() % 2 == 0 ? OrderKind::kFirst : OrderKind::kLast;
      if (!model.empty() && rng() % 2 == 0) {
        order.kind = rng() % 2 == 0 ? OrderKind::kBefore : OrderKind::kAfter;
        order.ref = model[rng() % model.size()].binding;
      }
      dispatcher.SetOrder(entry.binding, order);
      place_in_model(std::move(entry), order);
    }

    // Verify: raise and compare the fired sequence against the model.
    g_fired.clear();
    if (model.empty()) {
      EXPECT_THROW(event.Raise(step), NoHandlerError);
      continue;
    }
    event.Raise(step);
    std::vector<int> expected;
    expected.reserve(model.size());
    for (const Entry& entry : model) {
      expected.push_back(entry.id);
    }
    ASSERT_EQ(g_fired, expected) << "seed " << GetParam() << " step "
                                 << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderModelTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace spin
