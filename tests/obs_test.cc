// Tests for the observability layer: histogram buckets and percentile
// semantics, the flight-recorder ring (wraparound, cross-thread merge),
// Chrome trace JSON well-formedness, and the Prometheus exposition.
#include "src/obs/obs.h"

#include <cctype>
#include <cstring>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/dispatcher.h"
#include "src/obs/export.h"
#include "src/obs/trace.h"

namespace spin {
namespace {

// --- Minimal JSON well-formedness checker --------------------------------
// Recursive descent over the value grammar; enough to prove the trace
// export is parseable without pulling in a JSON library.
class JsonChecker {
 public:
  static bool Valid(const std::string& text) {
    JsonChecker checker(text);
    checker.SkipWs();
    return checker.Value() && (checker.SkipWs(), checker.AtEnd());
  }

 private:
  explicit JsonChecker(const std::string& text) : p_(text.c_str()) {}

  bool AtEnd() const { return *p_ == '\0'; }
  void SkipWs() {
    while (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r') {
      ++p_;
    }
  }
  bool Literal(const char* lit) {
    size_t n = std::strlen(lit);
    if (std::strncmp(p_, lit, n) != 0) {
      return false;
    }
    p_ += n;
    return true;
  }
  bool String() {
    if (*p_ != '"') {
      return false;
    }
    ++p_;
    while (*p_ != '"') {
      if (*p_ == '\0') {
        return false;
      }
      if (*p_ == '\\') {
        ++p_;
        if (std::strchr("\"\\/bfnrtu", *p_) == nullptr) {
          return false;
        }
      }
      ++p_;
    }
    ++p_;
    return true;
  }
  bool Number() {
    const char* start = p_;
    if (*p_ == '-') {
      ++p_;
    }
    while (std::isdigit(static_cast<unsigned char>(*p_))) {
      ++p_;
    }
    if (*p_ == '.') {
      ++p_;
      while (std::isdigit(static_cast<unsigned char>(*p_))) {
        ++p_;
      }
    }
    return p_ != start;
  }
  bool Value() {
    SkipWs();
    switch (*p_) {
      case '{': {
        ++p_;
        SkipWs();
        if (*p_ == '}') {
          ++p_;
          return true;
        }
        while (true) {
          SkipWs();
          if (!String()) {
            return false;
          }
          SkipWs();
          if (*p_ != ':') {
            return false;
          }
          ++p_;
          if (!Value()) {
            return false;
          }
          SkipWs();
          if (*p_ == ',') {
            ++p_;
            continue;
          }
          if (*p_ == '}') {
            ++p_;
            return true;
          }
          return false;
        }
      }
      case '[': {
        ++p_;
        SkipWs();
        if (*p_ == ']') {
          ++p_;
          return true;
        }
        while (true) {
          if (!Value()) {
            return false;
          }
          SkipWs();
          if (*p_ == ',') {
            ++p_;
            continue;
          }
          if (*p_ == ']') {
            ++p_;
            return true;
          }
          return false;
        }
      }
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  const char* p_;
};

TEST(JsonCheckerTest, SanityOnKnownInputs) {
  EXPECT_TRUE(JsonChecker::Valid("{}"));
  EXPECT_TRUE(JsonChecker::Valid("{\"a\":[1,2.5,-3],\"b\":\"x\\\"y\"}"));
  EXPECT_FALSE(JsonChecker::Valid("{\"a\":}"));
  EXPECT_FALSE(JsonChecker::Valid("[1,2"));
  EXPECT_FALSE(JsonChecker::Valid("{} trailing"));
}

// --- Histogram -----------------------------------------------------------

TEST(HistogramTest, BucketBoundaries) {
  EXPECT_EQ(obs::BucketFor(0), 0u);
  EXPECT_EQ(obs::BucketFor(1), 1u);
  EXPECT_EQ(obs::BucketFor(2), 2u);
  EXPECT_EQ(obs::BucketFor(3), 2u);
  EXPECT_EQ(obs::BucketFor(4), 3u);
  EXPECT_EQ(obs::BucketFor(~0ull), 64u);
  EXPECT_EQ(obs::BucketLowerBound(0), 0u);
  EXPECT_EQ(obs::BucketUpperBound(0), 0u);
  EXPECT_EQ(obs::BucketLowerBound(1), 1u);
  EXPECT_EQ(obs::BucketUpperBound(1), 1u);
  EXPECT_EQ(obs::BucketLowerBound(7), 64u);
  EXPECT_EQ(obs::BucketUpperBound(7), 127u);
  EXPECT_EQ(obs::BucketUpperBound(64), ~0ull);
}

TEST(HistogramTest, PercentileSemantics) {
  // 50 samples of 1ns and 50 of 100ns. The ceil(q*count)-th smallest
  // sample's bucket upper bound is the defined percentile.
  obs::Histogram hist;
  for (int i = 0; i < 50; ++i) {
    hist.Record(1);
    hist.Record(100);
  }
  obs::HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.sum, 50u * 1 + 50u * 100);
  EXPECT_EQ(snap.max, 100u);
  EXPECT_EQ(snap.Percentile(0.50), 1u);    // 50th smallest is a 1
  EXPECT_EQ(snap.Percentile(0.51), 127u);  // 51st is a 100: bucket [64,127]
  EXPECT_EQ(snap.Percentile(0.99), 127u);
  EXPECT_EQ(snap.Percentile(1.0), 127u);
}

TEST(HistogramTest, EmptyPercentileIsZero) {
  obs::Histogram hist;
  EXPECT_EQ(hist.Snapshot().Percentile(0.5), 0u);
}

TEST(HistogramTest, CrossThreadCountsMerge) {
  obs::Histogram hist;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Record(8);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(hist.Count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hist.SumNs(), static_cast<uint64_t>(kThreads) * kPerThread * 8);
  hist.Reset();
  EXPECT_EQ(hist.Count(), 0u);
  EXPECT_EQ(hist.Snapshot().max, 0u);
}

TEST(EventMetricsTest, PerKindAndMerged) {
  obs::EventMetrics metrics("Test.Event");
  metrics.Record(obs::DispatchKind::kDirect, 4);
  metrics.Record(obs::DispatchKind::kInterp, 1000);
  EXPECT_EQ(metrics.hist(obs::DispatchKind::kDirect).Count(), 1u);
  EXPECT_EQ(metrics.hist(obs::DispatchKind::kStub).Count(), 0u);
  EXPECT_EQ(metrics.TotalCount(), 2u);
  EXPECT_EQ(metrics.TotalSumNs(), 1004u);
  EXPECT_EQ(metrics.Merged().max, 1000u);
  metrics.Reset();
  EXPECT_EQ(metrics.TotalCount(), 0u);
}

// --- Flight recorder -----------------------------------------------------

TEST(FlightRecorderTest, DisabledEmitsNothing) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  recorder.Reset();
  ASSERT_FALSE(obs::Enabled());
  recorder.Emit(obs::TraceKind::kInstall, "x");
  EXPECT_TRUE(recorder.Snapshot().empty());
}

TEST(FlightRecorderTest, WraparoundKeepsNewest) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  recorder.Reset(16);
  EXPECT_EQ(recorder.capacity(), 16u);
  {
    obs::EnableScope enable;
    for (uint64_t i = 0; i < 100; ++i) {
      recorder.EmitAt(obs::TraceKind::kHandlerFire, "wrap", /*ts_ns=*/i, i);
    }
  }
  std::vector<obs::MergedRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 16u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].rec.ts_ns, 84 + i);  // newest 16 of 0..99
    EXPECT_EQ(records[i].rec.arg, 84 + i);
  }
  recorder.Reset(obs::FlightRecorder::kDefaultCapacity);
}

TEST(FlightRecorderTest, CrossThreadMergeOrdersByTimestamp) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  recorder.Reset();
  {
    obs::EnableScope enable;
    std::thread a([&] {
      for (uint64_t ts : {10, 30, 50}) {
        recorder.EmitAt(obs::TraceKind::kHandlerFire, "a", ts);
      }
    });
    a.join();
    std::thread b([&] {
      for (uint64_t ts : {20, 40, 60}) {
        recorder.EmitAt(obs::TraceKind::kGuardReject, "b", ts);
      }
    });
    b.join();
  }
  std::vector<obs::MergedRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 6u);
  uint64_t expect_ts[] = {10, 20, 30, 40, 50, 60};
  const char* expect_name[] = {"a", "b", "a", "b", "a", "b"};
  std::set<uint32_t> tids;
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(records[i].rec.ts_ns, expect_ts[i]);
    EXPECT_STREQ(records[i].rec.name, expect_name[i]);
    tids.insert(records[i].tid);
  }
  EXPECT_EQ(tids.size(), 2u);  // distinct rings survived the merge
}

TEST(FlightRecorderTest, ChromeTraceIsValidJson) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  recorder.Reset();
  {
    obs::EnableScope enable;
    recorder.EmitAt(obs::TraceKind::kRaiseBegin, "Ev\"ent\\1", 1000);
    recorder.EmitAt(obs::TraceKind::kHandlerFire, "Ev\"ent\\1", 1500, 3);
    recorder.EmitAt(obs::TraceKind::kRaiseEnd, "Ev\"ent\\1", 2000);
  }
  std::ostringstream out;
  obs::WriteChromeTrace(out, recorder.Snapshot());
  std::string json = out.str();
  EXPECT_TRUE(JsonChecker::Valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  recorder.Reset();
}

// --- Tracing through the dispatcher --------------------------------------

int64_t Return7(int64_t) { return 7; }
bool RejectAll(int64_t) { return false; }

TEST(TracingTest, CaptureContainsDispatchRecords) {
  obs::FlightRecorder::Global().Reset();
  Dispatcher dispatcher;
  Module module("TracingTest");
  Event<int64_t(int64_t)> event("Tracing.Event", &module, nullptr,
                                &dispatcher);
  dispatcher.InstallHandler(event, &Return7, {.module = &module});
  auto rejected = dispatcher.InstallHandler(event, &RejectAll, &Return7,
                                            {.module = &module});
  (void)rejected;

  dispatcher.EnableTracing(true);
  EXPECT_TRUE(dispatcher.tracing());
  EXPECT_EQ(event.Raise(1), 7);
  dispatcher.EnableTracing(false);

  std::set<obs::TraceKind> kinds;
  for (const auto& m : obs::FlightRecorder::Global().Snapshot()) {
    kinds.insert(m.rec.kind);
  }
  EXPECT_EQ(kinds.count(obs::TraceKind::kRaiseBegin), 1u);
  EXPECT_EQ(kinds.count(obs::TraceKind::kRaiseEnd), 1u);
  EXPECT_EQ(kinds.count(obs::TraceKind::kHandlerFire), 1u);
  EXPECT_EQ(kinds.count(obs::TraceKind::kGuardReject), 1u);
  obs::FlightRecorder::Global().Reset();
}

TEST(TracingTest, DirectBypassSuppressedAndRestored) {
  Dispatcher dispatcher;
  Module module("TracingTest");
  Event<int64_t(int64_t)> event("Tracing.Direct", &module, &Return7,
                                &dispatcher);
  ASSERT_NE(event.direct_fn(), nullptr);
  dispatcher.EnableTracing(true);
  EXPECT_EQ(event.direct_fn(), nullptr);
  EXPECT_EQ(event.Raise(1), 7);
  dispatcher.EnableTracing(false);
  EXPECT_NE(event.direct_fn(), nullptr);
  // The suppressed raise was still accounted under the production kind.
  EXPECT_GE(event.metrics().hist(obs::DispatchKind::kDirect).Count(), 1u);
}

// --- Prometheus exposition -----------------------------------------------

TEST(ExportTest, WellFormedExposition) {
  Dispatcher dispatcher;
  Module module("ExportTest");
  Event<int64_t(int64_t)> event("Export.Event", &module, &Return7,
                                &dispatcher);
  dispatcher.EnableProfiling(true);
  for (int i = 0; i < 10; ++i) {
    event.Raise(i);
  }
  dispatcher.EnableProfiling(false);

  std::ostringstream out;
  obs::ExportMetrics(out);
  std::string text = out.str();

  EXPECT_NE(text.find("# TYPE spin_event_raise_ns summary"),
            std::string::npos);
  EXPECT_NE(text.find("spin_event_raise_ns{event=\"Export.Event\","
                      "kind=\"direct\",quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(text.find("spin_event_raise_ns_count{event=\"Export.Event\","
                      "kind=\"all\"} 10"),
            std::string::npos);
  EXPECT_NE(text.find("spin_dispatcher_installs_total{instance="),
            std::string::npos);
  EXPECT_NE(text.find("spin_pool_executed_total{instance="),
            std::string::npos);
  EXPECT_NE(text.find("spin_epoch_reclaimed_total{instance="),
            std::string::npos);
  EXPECT_NE(text.find("spin_quota_used_bytes{instance="),
            std::string::npos);
  EXPECT_NE(text.find("module=\"ExportTest\"}"), std::string::npos);

  // Every line is either a comment or "name{labels} value".
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    EXPECT_EQ(line.compare(0, 5, "spin_"), 0) << line;
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NE(line.find('{'), std::string::npos) << line;
    EXPECT_EQ(line[space - 1], '}') << line;
    for (size_t i = space + 1; i < line.size(); ++i) {
      EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(line[i])) ||
                  line[i] == '.' || line[i] == '-')
          << line;
    }
  }
}

TEST(DescribeTest, IncludesLatencySummary) {
  Dispatcher dispatcher;
  Module module("DescribeTest");
  Event<int64_t(int64_t)> event("Describe.Event", &module, &Return7,
                                &dispatcher);
  dispatcher.EnableProfiling(true);
  for (int i = 0; i < 5; ++i) {
    event.Raise(i);
  }
  dispatcher.EnableProfiling(false);

  std::string description = dispatcher.Describe(event);
  EXPECT_NE(description.find("latency[direct]: n=5"), std::string::npos)
      << description;
  EXPECT_NE(description.find("p99="), std::string::npos);

  std::ostringstream all;
  dispatcher.DescribeAll(all);
  EXPECT_NE(all.str().find("Describe.Event"), std::string::npos);
}

}  // namespace
}  // namespace spin
