// Concurrency: raises proceed lock-free while handlers are installed and
// removed; the atomic table swap plus EBR must never expose a torn or freed
// table (§3: "handler lists are updated atomically with respect to event
// dispatch").
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/dispatcher.h"
#include "src/core/shard.h"

namespace spin {
namespace {

std::atomic<uint64_t> g_sum{0};

int64_t CountingHandler(int64_t a, int64_t) {
  g_sum.fetch_add(static_cast<uint64_t>(a), std::memory_order_relaxed);
  return a;
}
int64_t AnchorHandler(int64_t a, int64_t) { return a; }
bool TrueGuard(int64_t, int64_t) { return true; }

TEST(ConcurrencyTest, RaisesDuringInstallUninstallChurn) {
  Module module("Churn");
  Dispatcher dispatcher;
  Event<int64_t(int64_t, int64_t)> event("Churn.Event", &module, nullptr,
                                         &dispatcher);
  // An anchor handler guarantees raises never see an empty table.
  dispatcher.InstallHandler(event, &AnchorHandler, {.module = &module});

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> raises{0};
  g_sum = 0;

  std::vector<std::thread> raisers;
  for (int t = 0; t < 4; ++t) {
    raisers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        int64_t r = event.Raise(1, 2);
        ASSERT_EQ(r, 1);
        raises.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::thread churner([&] {
    for (int i = 0; i < 2000; ++i) {
      auto binding = dispatcher.InstallHandler(event, &TrueGuard,
                                               &CountingHandler,
                                               {.module = &module});
      dispatcher.Uninstall(binding, &module);
    }
  });

  churner.join();
  stop.store(true);
  for (std::thread& t : raisers) {
    t.join();
  }
  EXPECT_GT(raises.load(), 0u);
  dispatcher.epoch().Synchronize();
}

TEST(ConcurrencyTest, GuardImpositionDuringRaises) {
  Module module("GuardChurn");
  Dispatcher dispatcher;
  Event<int64_t(int64_t, int64_t)> event("Churn.Guarded", &module, nullptr,
                                         &dispatcher);
  dispatcher.InstallHandler(event, &AnchorHandler, {.module = &module});
  auto target = dispatcher.InstallHandler(event, &CountingHandler,
                                          {.module = &module});

  std::atomic<bool> stop{false};
  std::vector<std::thread> raisers;
  for (int t = 0; t < 4; ++t) {
    raisers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        (void)event.Raise(1, 2);
      }
    });
  }
  for (int i = 0; i < 500; ++i) {
    dispatcher.AddGuard(event, target, &TrueGuard);
    // Rebuild a fresh guard list each round (dropping to one guard).
    dispatcher.AddMicroGuard(target, micro::ReturnConst(2, 1, true));
  }
  stop.store(true);
  for (std::thread& t : raisers) {
    t.join();
  }
  dispatcher.epoch().Synchronize();
}

TEST(ConcurrencyTest, ConcurrentRaisesOnManyEvents) {
  Module module("Many");
  Dispatcher dispatcher;
  constexpr int kEvents = 16;
  std::vector<std::unique_ptr<Event<int64_t(int64_t, int64_t)>>> events;
  for (int i = 0; i < kEvents; ++i) {
    events.push_back(std::make_unique<Event<int64_t(int64_t, int64_t)>>(
        "Many.E" + std::to_string(i), &module, &AnchorHandler, &dispatcher));
  }
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 20000; ++i) {
        int64_t r = events[(t + i) % kEvents]->Raise(i, 0);
        if (r != i) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrencyTest, RaiseInsideHandlerNests) {
  // Handlers may raise events themselves; epoch guards must nest.
  Module module("Nest");
  Dispatcher dispatcher;
  Event<int64_t(int64_t, int64_t)> inner("Nest.Inner", &module,
                                         &AnchorHandler, &dispatcher);
  Event<int64_t(int64_t, int64_t)> outer("Nest.Outer", &module, nullptr,
                                         &dispatcher);
  static Event<int64_t(int64_t, int64_t)>* inner_ptr = nullptr;
  inner_ptr = &inner;
  dispatcher.InstallLambda(
      outer, [](int64_t a, int64_t b) { return inner_ptr->Raise(a, b) + 1; },
      {.module = &module});
  EXPECT_EQ(outer.Raise(41, 0), 42);
}

TEST(ConcurrencyTest, InstallWhileRaisingAcrossShards) {
  // The sharded variant of the churn test: raisers pinned to different
  // shards read different table replicas while installs republish all of
  // them. No raise may ever see a torn replica, a missing anchor, or a
  // freed table on any shard.
  Module module("ShardChurn");
  Dispatcher::Config config;
  config.shards = 4;
  config.allow_direct = false;  // keep raises on the replica path
  Dispatcher dispatcher(config);
  Event<int64_t(int64_t, int64_t)> event("ShardChurn.Event", &module,
                                         nullptr, &dispatcher);
  dispatcher.InstallHandler(event, &AnchorHandler, {.module = &module});

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> raises{0};
  std::vector<std::thread> raisers;
  for (int t = 0; t < 4; ++t) {
    raisers.emplace_back([&, t] {
      // Distinct strand identities: the raisers spread across replicas
      // (with 4 shards and splitmix64 these ids cover several shards).
      RaiseSourceScope source(
          MakeRaiseSource(SourceKind::kStrand, static_cast<uint64_t>(t)));
      while (!stop.load(std::memory_order_relaxed)) {
        int64_t r = event.Raise(1, 2);
        ASSERT_EQ(r, 1);
        raises.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread churner([&] {
    for (int i = 0; i < 1000; ++i) {
      auto binding = dispatcher.InstallHandler(
          event, &TrueGuard, &CountingHandler, {.module = &module});
      dispatcher.Uninstall(binding, &module);
    }
  });
  churner.join();
  stop.store(true);
  for (std::thread& t : raisers) {
    t.join();
  }
  EXPECT_GT(raises.load(), 0u);
  // Every raise was routed somewhere, and only through real shards.
  uint64_t routed = 0;
  for (uint32_t s = 0; s < dispatcher.shard_count(); ++s) {
    routed += dispatcher.shard_raises(s);
  }
  EXPECT_EQ(routed, raises.load());
  dispatcher.SynchronizeAllShards();
}

TEST(ConcurrencyTest, LazyPromotionRacesRaisesOnOtherShards) {
  // lazy_compile defers stub generation until an event proves hot; the
  // promotion rebuild republishes every shard's replica while raises on
  // *other* shards keep reading theirs. Exactly one promotion may win, and
  // no raise may misdispatch across the interpreted->compiled flip.
  if (!codegen::CodegenAvailable()) {
    GTEST_SKIP() << "lazy promotion needs the JIT";
  }
  Module module("ShardLazy");
  Dispatcher::Config config;
  config.shards = 4;
  config.allow_direct = false;
  config.lazy_compile = true;
  config.lazy_promote_raises = 64;
  Dispatcher dispatcher(config);
  Event<int64_t(int64_t, int64_t)> event("ShardLazy.Event", &module,
                                         nullptr, &dispatcher);
  dispatcher.InstallHandler(event, &AnchorHandler, {.module = &module});

  std::vector<std::thread> raisers;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    raisers.emplace_back([&, t] {
      RaiseSourceScope source(
          MakeRaiseSource(SourceKind::kStrand, static_cast<uint64_t>(t)));
      for (int i = 0; i < 5000; ++i) {
        if (event.Raise(i, 0) != i) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : raisers) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  // 20000 raises against a threshold of 64: promotion certainly fired, and
  // the first-promotion-wins rule kept it to one.
  EXPECT_EQ(dispatcher.stats().lazy_promotions, 1u);
  dispatcher.SynchronizeAllShards();
}

}  // namespace
}  // namespace spin
