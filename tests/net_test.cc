// Network substrate tests: the guard-demultiplexed protocol stack of §3.2.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "src/net/host.h"
#include "src/net/tcp.h"
#include "src/obs/export.h"
#include "src/sim/simulator.h"

namespace spin {
namespace net {
namespace {

class NetTest : public ::testing::Test {
 protected:
  NetTest() {
    wire_.Attach(a_, b_);
  }

  Dispatcher dispatcher_;
  sim::Simulator sim_;
  net::Wire wire_{&sim_, sim::LinkModel{}};
  Host a_{"hostA", 0x0a000001, &dispatcher_};
  Host b_{"hostB", 0x0a000002, &dispatcher_};
};

TEST_F(NetTest, PacketCodecRoundTrip) {
  Packet p = MakeUdpPacket(0x0a000001, 0x0a000002, 1111, 2222, "hello");
  EXPECT_EQ(p.ether_type(), kEtherTypeIp);
  EXPECT_EQ(p.ip_proto(), kIpProtoUdp);
  EXPECT_EQ(p.ip_src(), 0x0a000001u);
  EXPECT_EQ(p.ip_dst(), 0x0a000002u);
  EXPECT_EQ(p.src_port(), 1111);
  EXPECT_EQ(p.dst_port(), 2222);
  EXPECT_EQ(p.UdpPayload(), "hello");
}

TEST_F(NetTest, UdpDeliveryThroughEventChain) {
  std::string got;
  UdpSocket receiver(b_, 2222, [&](const Packet& p) {
    got = p.UdpPayload();
  });
  UdpSocket sender(a_, 1111, nullptr);
  sender.SendTo(b_.ip(), 2222, "ping");
  sim_.Run();
  EXPECT_EQ(got, "ping");
  EXPECT_EQ(b_.rx_packets(), 1u);
  EXPECT_EQ(b_.dropped_packets(), 0u);
}

TEST_F(NetTest, PortGuardsDiscriminate) {
  // Three sockets; only the matching port's handler fires (Table 2's
  // one-active-endpoint setup).
  int hits_1 = 0;
  int hits_2 = 0;
  int hits_3 = 0;
  UdpSocket s1(b_, 1000, [&](const Packet&) { ++hits_1; });
  UdpSocket s2(b_, 2000, [&](const Packet&) { ++hits_2; });
  UdpSocket s3(b_, 3000, [&](const Packet&) { ++hits_3; });
  UdpSocket sender(a_, 99, nullptr);
  sender.SendTo(b_.ip(), 2000, "x");
  sender.SendTo(b_.ip(), 2000, "y");
  sender.SendTo(b_.ip(), 3000, "z");
  sim_.Run();
  EXPECT_EQ(hits_1, 0);
  EXPECT_EQ(hits_2, 2);
  EXPECT_EQ(hits_3, 1);
}

TEST_F(NetTest, UnclaimedPortIsDropped) {
  UdpSocket sender(a_, 99, nullptr);
  sender.SendTo(b_.ip(), 4444, "nobody home");
  sim_.Run();
  EXPECT_EQ(b_.dropped_packets(), 1u);
}

TEST_F(NetTest, SocketDestructorUninstallsGuard) {
  int hits = 0;
  {
    UdpSocket receiver(b_, 2222, [&](const Packet&) { ++hits; });
    UdpSocket sender(a_, 1, nullptr);
    sender.SendTo(b_.ip(), 2222, "one");
    sim_.Run();
  }
  UdpSocket sender(a_, 1, nullptr);
  sender.SendTo(b_.ip(), 2222, "two");
  sim_.Run();
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(b_.dropped_packets(), 1u);
}

TEST_F(NetTest, WireTimingModel) {
  sim::LinkModel model;  // 10 Mb/s
  // An 8-byte-payload UDP frame is 50 bytes: 40 us serialization at
  // 10 Mb/s plus propagation.
  Packet p = MakeUdpPacket(1, 2, 1, 2, "12345678");
  EXPECT_EQ(p.len, 50u);
  EXPECT_EQ(model.SerializationNs(p.len), 40'000u);
  UdpSocket receiver(b_, 2, nullptr);
  UdpSocket sender(a_, 1, nullptr);
  uint64_t before = sim_.now_ns();
  sender.SendTo(b_.ip(), 2, "12345678");
  sim_.Run();
  EXPECT_EQ(sim_.now_ns() - before, model.TransferNs(50));
}

TEST_F(NetTest, GuardsAreInlinedIntoGeneratedDispatch) {
  if (!codegen::CodegenAvailable()) {
    GTEST_SKIP();
  }
  // The port guards are micro-programs; with several sockets installed the
  // dispatcher must still use a generated stub (not fall back to the
  // interpreter).
  UdpSocket s1(b_, 1000, nullptr);
  UdpSocket s2(b_, 2000, nullptr);
  Dispatcher::Stats stats = dispatcher_.stats();
  EXPECT_GT(stats.stub_compiles, 0u);
}

// --- TCP -------------------------------------------------------------------

TEST_F(NetTest, TcpHandshakeAndData) {
  std::string received;
  TcpEndpoint server(b_, 80);
  server.Listen([&](const std::string& data) { received += data; });
  TcpEndpoint client(a_, 5555);
  client.Connect(b_.ip(), 80, nullptr);
  sim_.Run();
  ASSERT_TRUE(client.established());
  ASSERT_TRUE(server.established());

  client.Send("GET /paper.ps");
  sim_.Run();
  EXPECT_EQ(received, "GET /paper.ps");
  EXPECT_EQ(server.bytes_received(), 13u);
}

TEST_F(NetTest, TcpSegmentsLargeStream) {
  std::string received;
  TcpEndpoint server(b_, 80);
  server.Listen([&](const std::string& data) { received += data; });
  TcpEndpoint client(a_, 5555);
  client.Connect(b_.ip(), 80, nullptr);
  sim_.Run();

  std::string page(100 * 1024, 'P');  // a "page image"
  client.Send(page);
  sim_.Run();
  EXPECT_EQ(received.size(), page.size());
  EXPECT_EQ(received, page);
  // Each data segment triggers a pure ACK back.
  size_t segments = (page.size() + kTcpMss - 1) / kTcpMss;
  EXPECT_GE(client.segments_received(), segments);
}

TEST_F(NetTest, TcpClose) {
  TcpEndpoint server(b_, 80);
  server.Listen(nullptr);
  TcpEndpoint client(a_, 5555);
  client.Connect(b_.ip(), 80, nullptr);
  sim_.Run();
  client.Close();
  sim_.Run();
  EXPECT_EQ(server.state(), TcpEndpoint::State::kCloseWait);
}

TEST_F(NetTest, BidirectionalTcp) {
  std::string at_server;
  std::string at_client;
  TcpEndpoint server(b_, 80);
  server.Listen([&](const std::string& d) { at_server += d; });
  TcpEndpoint client(a_, 5555);
  client.Connect(b_.ip(), 80, [&](const std::string& d) { at_client += d; });
  sim_.Run();
  client.Send("request");
  sim_.Run();
  server.Send("response");
  sim_.Run();
  EXPECT_EQ(at_server, "request");
  EXPECT_EQ(at_client, "response");
}


TEST_F(NetTest, IpChecksumStampedAndVerified) {
  Packet p = MakeUdpPacket(0x0a000001, 0x0a000002, 1, 2, "x");
  EXPECT_TRUE(VerifyIpChecksum(p));
  // Header mutation without restamping must be detectable.
  p.data[kIpProtoOff] = 99;
  EXPECT_FALSE(VerifyIpChecksum(p));
  StampIpChecksum(p);
  EXPECT_TRUE(VerifyIpChecksum(p));
}

TEST_F(NetTest, CorruptedHeaderDroppedByIpInput) {
  int hits = 0;
  UdpSocket receiver(b_, 2222, [&](const Packet&) { ++hits; });
  Packet p = MakeUdpPacket(a_.ip(), b_.ip(), 1111, 2222, "payload");
  p.data[kIpSrcOff] ^= 0xff;  // corrupt after checksum stamping
  b_.Receive(p);
  EXPECT_EQ(hits, 0);
  EXPECT_EQ(b_.checksum_drops(), 1u);
  // An intact packet still flows.
  b_.Receive(MakeUdpPacket(a_.ip(), b_.ip(), 1111, 2222, "payload"));
  EXPECT_EQ(hits, 1);
}


// --- Loss and retransmission (failure injection) ----------------------------

TEST_F(NetTest, LossyWireDropsFrames) {
  wire_.SetLossPattern(3);  // every 3rd frame vanishes
  UdpSocket receiver(b_, 2222, nullptr);
  UdpSocket sender(a_, 1111, nullptr);
  for (int i = 0; i < 9; ++i) {
    sender.SendTo(b_.ip(), 2222, "x");
  }
  sim_.Run();
  EXPECT_EQ(wire_.frames_lost(), 3u);
  EXPECT_EQ(b_.rx_packets(), 6u);
}

TEST_F(NetTest, TcpRetransmitsThroughLoss) {
  std::string received;
  TcpEndpoint server(b_, 80);
  server.Listen([&](const std::string& data) { received += data; });
  TcpEndpoint client(a_, 5555);
  client.Connect(b_.ip(), 80, nullptr);
  sim_.Run();
  ASSERT_TRUE(client.established());

  client.EnableRetransmit(&sim_, /*timeout_ns=*/50'000'000);
  wire_.SetLossPattern(7);  // drop every 7th frame (data and ACKs alike)
  std::string page(64 * 1024, 'R');
  client.Send(page);
  sim_.Run();

  EXPECT_EQ(received.size(), page.size())
      << "go-back-N must deliver the full stream despite loss";
  EXPECT_EQ(received, page);
  EXPECT_GT(client.retransmissions(), 0u);
  EXPECT_GT(wire_.frames_lost(), 0u);
}

TEST_F(NetTest, UdpChecksumStampedAndVerified) {
  Packet p = MakeUdpPacket(0x0a000001, 0x0a000002, 1, 2, "payload");
  EXPECT_TRUE(VerifyUdpChecksum(p));
  // Payload corruption the IP header checksum cannot see.
  p.data[kUdpPayloadOff] ^= 0xff;
  EXPECT_FALSE(VerifyUdpChecksum(p));
  StampUdpChecksum(p);
  EXPECT_TRUE(VerifyUdpChecksum(p));
  // A zero checksum field means "no checksum supplied" (RFC 768).
  p.Put16(kUdpChecksumOff, 0);
  EXPECT_TRUE(VerifyUdpChecksum(p));
}

TEST_F(NetTest, CorruptedPayloadDroppedByUdpInput) {
  int hits = 0;
  UdpSocket receiver(b_, 2222, [&](const Packet&) { ++hits; });
  Packet p = MakeUdpPacket(a_.ip(), b_.ip(), 1111, 2222, "payload");
  p.data[p.len - 1] ^= 0xff;  // flip a payload byte; IP header still valid
  b_.Receive(p);
  EXPECT_EQ(hits, 0);
  EXPECT_EQ(b_.udp_checksum_drops(), 1u);
  EXPECT_EQ(b_.checksum_drops(), 0u);  // the IP layer saw nothing wrong
  b_.Receive(MakeUdpPacket(a_.ip(), b_.ip(), 1111, 2222, "payload"));
  EXPECT_EQ(hits, 1);

  // The drop is visible as a metric, not just a counter.
  std::ostringstream os;
  obs::ExportMetrics(os);
  EXPECT_NE(os.str().find("spin_net_udp_checksum_drops_total{host=\"hostB\""
                          "} 1"),
            std::string::npos);
}

TEST_F(NetTest, SeededRandomLossIsDeterministic) {
  auto run = [this](uint64_t seed) {
    sim::Simulator sim;
    Wire wire(&sim, sim::LinkModel{});
    Host a("lossA", 0x0a000011, &dispatcher_);
    Host b("lossB", 0x0a000012, &dispatcher_);
    wire.Attach(a, b);
    wire.SetRandomLoss(0.3, seed);
    UdpSocket receiver(b, 2222, nullptr);
    UdpSocket sender(a, 1111, nullptr);
    // Per-frame delivery pattern, not just the totals.
    std::vector<bool> delivered;
    uint64_t seen = 0;
    for (int i = 0; i < 64; ++i) {
      sender.SendTo(b.ip(), 2222, "x");
      sim.Run();
      delivered.push_back(b.rx_packets() > seen);
      seen = b.rx_packets();
    }
    return delivered;
  };
  std::vector<bool> first = run(42);
  EXPECT_EQ(first, run(42)) << "same seed must replay the same drops";
  EXPECT_NE(first, run(43));
  size_t drops = std::count(first.begin(), first.end(), false);
  EXPECT_GT(drops, 0u);
  EXPECT_LT(drops, 64u);
}

TEST_F(NetTest, PartitionWindowDropsEverything) {
  UdpSocket receiver(b_, 2222, nullptr);
  UdpSocket sender(a_, 1111, nullptr);
  sender.SendTo(b_.ip(), 2222, "before");
  sim_.Run();
  EXPECT_EQ(b_.rx_packets(), 1u);

  wire_.SetPartition(sim_.now_ns(), sim_.now_ns() + 1'000'000);
  sender.SendTo(b_.ip(), 2222, "during");
  sim_.Run();
  EXPECT_EQ(b_.rx_packets(), 1u);
  EXPECT_EQ(wire_.frames_lost(), 1u);

  wire_.SetPartition(0, 0);  // heal
  sender.SendTo(b_.ip(), 2222, "after");
  sim_.Run();
  EXPECT_EQ(b_.rx_packets(), 2u);
}

TEST_F(NetTest, DropHookSelectsFrames) {
  std::string got;
  UdpSocket receiver(b_, 2222, [&](const Packet& p) {
    got += p.UdpPayload();
  });
  UdpSocket sender(a_, 1111, nullptr);
  wire_.SetDropHook([](const Packet& p, uint64_t, uint64_t) {
    return p.ip_proto() == kIpProtoUdp && p.UdpPayload() == "drop";
  });
  sender.SendTo(b_.ip(), 2222, "keep1");
  sender.SendTo(b_.ip(), 2222, "drop");
  sender.SendTo(b_.ip(), 2222, "keep2");
  sim_.Run();
  EXPECT_EQ(got, "keep1keep2");
  EXPECT_EQ(wire_.frames_lost(), 1u);
}

TEST_F(NetTest, TcpRetransmitsThroughSeededRandomLoss) {
  std::string received;
  TcpEndpoint server(b_, 80);
  server.Listen([&](const std::string& data) { received += data; });
  TcpEndpoint client(a_, 5555);
  client.Connect(b_.ip(), 80, nullptr);
  sim_.Run();
  ASSERT_TRUE(client.established());

  client.EnableRetransmit(&sim_, /*timeout_ns=*/50'000'000);
  wire_.SetRandomLoss(0.05, /*seed=*/99);
  std::string page(64 * 1024, 'S');
  client.Send(page);
  sim_.Run();

  EXPECT_EQ(received, page)
      << "go-back-N must deliver the stream through random loss";
  EXPECT_GT(client.retransmissions(), 0u);
  EXPECT_GT(wire_.frames_lost(), 0u);
}

TEST_F(NetTest, NoRetransmissionsOnCleanWire) {
  std::string received;
  TcpEndpoint server(b_, 80);
  server.Listen([&](const std::string& data) { received += data; });
  TcpEndpoint client(a_, 5555);
  client.Connect(b_.ip(), 80, nullptr);
  sim_.Run();
  client.EnableRetransmit(&sim_, 50'000'000);
  client.Send(std::string(10 * 1024, 'C'));
  sim_.Run();
  EXPECT_EQ(received.size(), 10u * 1024);
  EXPECT_EQ(client.retransmissions(), 0u);
}

// --- Input-path hardening (forged and mis-sequenced segments) --------------

TEST_F(NetTest, StraySynAckOutsideSynSentIgnored) {
  std::string received;
  TcpEndpoint server(b_, 80);
  server.Listen([&](const std::string& data) { received += data; });
  TcpEndpoint client(a_, 5555);
  client.Connect(b_.ip(), 80, nullptr);
  sim_.Run();
  ASSERT_TRUE(server.established());

  // A SYN+ACK at a bogus sequence arriving on an established connection
  // must not reset rcv_next or bounce the state machine.
  b_.Receive(MakeTcpPacket(a_.ip(), b_.ip(), 5555, 80, /*seq=*/99999,
                           /*ack=*/0, kTcpSyn | kTcpAckFlag, ""));
  EXPECT_TRUE(server.established());

  client.Send("still works");
  sim_.Run();
  EXPECT_EQ(received, "still works")
      << "sequencing must be untouched by the stray SYN+ACK";
}

TEST_F(NetTest, StraySynOutsideListenIgnored) {
  TcpEndpoint server(b_, 80);
  server.Listen(nullptr);
  TcpEndpoint client(a_, 5555);
  client.Connect(b_.ip(), 80, nullptr);
  sim_.Run();
  ASSERT_TRUE(client.established());

  // A forged SYN against the established *client* must not restart a
  // passive open on it.
  a_.Receive(MakeTcpPacket(b_.ip(), a_.ip(), 80, 5555, /*seq=*/777,
                           /*ack=*/0, kTcpSyn, ""));
  EXPECT_TRUE(client.established());

  std::string received;
  server.Listen([&](const std::string& data) { received += data; });
  client.Send("after stray syn");
  sim_.Run();
  EXPECT_EQ(received, "after stray syn");
}

TEST_F(NetTest, ReorderedFinDoesNotSkipUndeliveredData) {
  std::string received;
  TcpEndpoint server(b_, 80);
  server.Listen([&](const std::string& data) { received += data; });
  TcpEndpoint client(a_, 5555);
  client.Connect(b_.ip(), 80, nullptr);
  sim_.Run();
  ASSERT_TRUE(server.established());

  // A FIN sequenced past data still outstanding (as if the data frames
  // were lost or reordered behind it) must not advance rcv_next.
  uint32_t premature_seq = 1001 + 500;  // client ISS+1 plus skipped bytes
  b_.Receive(MakeTcpPacket(a_.ip(), b_.ip(), 5555, 80, premature_seq,
                           /*ack=*/0, kTcpFin | kTcpAckFlag, ""));
  EXPECT_TRUE(server.established())
      << "a mis-sequenced FIN must not close the connection";

  client.Send("the real bytes");
  sim_.Run();
  EXPECT_EQ(received, "the real bytes");
  client.Close();
  sim_.Run();
  EXPECT_EQ(server.state(), TcpEndpoint::State::kCloseWait)
      << "the in-order FIN still closes normally";
}

TEST_F(NetTest, SimultaneousClose) {
  TcpEndpoint server(b_, 80);
  server.Listen(nullptr);
  TcpEndpoint client(a_, 5555);
  client.Connect(b_.ip(), 80, nullptr);
  sim_.Run();
  ASSERT_TRUE(client.established());
  ASSERT_TRUE(server.established());

  // Both sides close before either FIN has crossed the wire: the FINs
  // pass each other, each lands in kFinWait, and both sides finish.
  client.Close();
  server.Close();
  sim_.Run();
  EXPECT_EQ(client.state(), TcpEndpoint::State::kClosed);
  EXPECT_EQ(server.state(), TcpEndpoint::State::kClosed);
}

TEST_F(NetTest, DataArrivingInSynReceivedCompletesHandshake) {
  std::string received;
  TcpEndpoint server(b_, 80);
  server.Listen([&](const std::string& data) { received += data; });
  TcpEndpoint client(a_, 5555);

  // Drop the client's bare handshake ACK (frame 3): the server stays in
  // kSynReceived until the first data segment (which also carries ACK)
  // arrives and completes the handshake.
  int frames = 0;
  wire_.SetDropHook([&frames](const Packet&, uint64_t, uint64_t) {
    return ++frames == 3;
  });
  client.Connect(b_.ip(), 80, nullptr);
  sim_.Run();
  ASSERT_TRUE(client.established());
  ASSERT_EQ(server.state(), TcpEndpoint::State::kSynReceived);

  client.Send("data as ack");
  sim_.Run();
  EXPECT_TRUE(server.established());
  EXPECT_EQ(received, "data as ack");
}

TEST_F(NetTest, DuplicateSynReanswersWithSynAck) {
  TcpEndpoint server(b_, 80);
  server.Listen(nullptr);
  TcpEndpoint client(a_, 5555);
  client.UseStack(&sim_, "stop_and_wait", /*rto_ns=*/10'000'000);

  // Drop the server's first SYN+ACK (frame 2): the client's handshake
  // timer retransmits its SYN, and the server — already in kSynReceived —
  // must answer the duplicate with a fresh SYN+ACK, not a new ISS.
  int frames = 0;
  wire_.SetDropHook([&frames](const Packet&, uint64_t, uint64_t) {
    return ++frames == 2;
  });
  client.Connect(b_.ip(), 80, nullptr);
  sim_.Run();
  EXPECT_TRUE(client.established());
  EXPECT_TRUE(server.established());
  EXPECT_GT(client.retransmissions() + server.retransmissions(), 0u);
}

TEST_F(NetTest, DeliveryOrderPreservedUnderSeededLoss) {
  std::string received;
  TcpEndpoint server(b_, 80);
  server.Listen([&](const std::string& data) { received += data; });
  TcpEndpoint client(a_, 5555);
  client.UseStack(&sim_, "reno", /*rto_ns=*/50'000'000);
  client.Connect(b_.ip(), 80, nullptr);
  sim_.Run();
  ASSERT_TRUE(client.established());

  wire_.SetRandomLoss(0.05, /*seed=*/4242);
  // Position-derived bytes: any drop, duplicate, or reorder in the
  // delivered stream breaks the exact-match below.
  std::string page(128 * 1024, '\0');
  for (size_t i = 0; i < page.size(); ++i) {
    page[i] = static_cast<char>('0' + i % 71);
  }
  client.Send(page);
  sim_.Run();
  ASSERT_EQ(received.size(), page.size());
  EXPECT_EQ(received, page);
  EXPECT_GT(wire_.frames_lost(), 0u);
}

}  // namespace
}  // namespace net
}  // namespace spin
