// Credential-based authorization (§2.5): "optionally, an opaque reference
// passed in by the requestor that can be used to bootstrap a richer
// authorization protocol such as one based on passwords."
#include <cstring>

#include <gtest/gtest.h>

#include "src/core/dispatcher.h"

namespace spin {
namespace {

struct PasswordVault {
  const char* expected;
  int attempts = 0;
  int rejections = 0;
};

bool PasswordAuthorizer(AuthRequest& request, void* ctx) {
  auto* vault = static_cast<PasswordVault*>(ctx);
  if (request.op != AuthOp::kInstall) {
    return true;
  }
  ++vault->attempts;
  const char* presented = static_cast<const char*>(request.credentials);
  if (presented == nullptr ||
      std::strcmp(presented, vault->expected) != 0) {
    ++vault->rejections;
    return false;
  }
  return true;
}

void Handler(int64_t) {}

TEST(CredentialsTest, PasswordGatesInstallation) {
  Module authority("Vault");
  Module extension("Extension");
  Dispatcher dispatcher;
  Event<void(int64_t)> event("Vault.Event", &authority, nullptr,
                             &dispatcher);
  PasswordVault vault{"xyzzy"};
  dispatcher.InstallAuthorizer(event, &PasswordAuthorizer, &vault,
                               authority);

  // No credentials.
  EXPECT_THROW(
      dispatcher.InstallHandler(event, &Handler, {.module = &extension}),
      InstallError);
  // Wrong password.
  char wrong[] = "plugh";
  EXPECT_THROW(dispatcher.InstallHandler(
                   event, &Handler,
                   {.module = &extension, .credentials = wrong}),
               InstallError);
  // Right password.
  char right[] = "xyzzy";
  EXPECT_NO_THROW(dispatcher.InstallHandler(
      event, &Handler, {.module = &extension, .credentials = right}));
  EXPECT_EQ(vault.attempts, 3);
  EXPECT_EQ(vault.rejections, 2);
  EXPECT_EQ(event.handler_count(), 1u);
}

TEST(CredentialsTest, UninstallCanDemandCredentialsToo) {
  struct State {
    bool allow_uninstall = false;
  } state;
  Module authority("Vault");
  Module extension("Extension");
  Dispatcher dispatcher;
  Event<void(int64_t)> event("Vault.Event", &authority, nullptr,
                             &dispatcher);
  AuthorizerFn authorizer = [](AuthRequest& request, void* ctx) {
    auto* s = static_cast<State*>(ctx);
    if (request.op == AuthOp::kUninstall) {
      return s->allow_uninstall;
    }
    return true;
  };
  dispatcher.InstallAuthorizer(event, authorizer, &state, authority);
  auto binding = dispatcher.InstallHandler(event, &Handler,
                                           {.module = &extension});
  EXPECT_THROW(dispatcher.Uninstall(binding, &extension), InstallError);
  state.allow_uninstall = true;
  EXPECT_NO_THROW(dispatcher.Uninstall(binding, &extension));
}

}  // namespace
}  // namespace spin
