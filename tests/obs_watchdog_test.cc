// Anomaly watchdog: inline slow-handler deadlines (absolute and p99-
// derived), the probe rules (queue backlog/stall, epoch stall, retry
// storm), the one-shot trace burst, and the anomaly counter export. All
// deterministic: period_ms = 0 keeps the monitor thread off and tests
// drive detection with Poll().
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/dispatcher.h"
#include "src/core/errors.h"
#include "src/net/host.h"
#include "src/obs/context.h"
#include "src/obs/export.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"
#include "src/obs/watchdog.h"
#include "src/remote/exporter.h"
#include "src/remote/proxy.h"
#include "src/sim/simulator.h"

namespace spin {
namespace {

// Resets the thread-local sampling countdown to a known state so tests
// are independent of how many top-level decisions earlier tests made on
// this thread: at rate 1 the very next decision fires and zeroes it.
void ResetSampleCountdown() {
  obs::TraceConfig config{obs::TraceMode::kSampled, 1};
  obs::SetTraceConfig(config);
  (void)obs::DecideTopLevel();
  config.mode = obs::TraceMode::kOff;
  obs::SetTraceConfig(config);
}

struct SleepCtx {
  uint64_t slow_ms = 0;  // sleep this long when the argument is nonzero
};

void MaybeSleepHandler(SleepCtx* ctx, int64_t arg) {
  if (arg != 0 && ctx->slow_ms != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(ctx->slow_ms));
  }
}

// A probe whose samples the test scripts directly.
struct FakeProbe {
  std::vector<obs::WatchSample> samples;
  static void Fn(void* ctx, std::vector<obs::WatchSample>& out) {
    auto* self = static_cast<FakeProbe*>(ctx);
    out.insert(out.end(), self->samples.begin(), self->samples.end());
  }
};

TEST(WatchdogTest, InlineDeadlineFlagsSlowHandlerAndOverridesSampling) {
  obs::Watchdog& dog = obs::Watchdog::Global();
  const uint64_t base = dog.Count(obs::AnomalyKind::kSlowHandler);

  Dispatcher dispatcher;
  Module module("WatchdogTest");
  Event<void(int64_t)> event("Watch.Slow", &module, nullptr, &dispatcher);
  SleepCtx ctx{50};
  dispatcher.InstallHandler(event, &MaybeSleepHandler, &ctx,
                            {.module = &module});

  obs::WatchdogConfig config;
  config.period_ms = 0;  // no monitor thread; the inline check suffices
  config.slow_handler_ns = 10'000'000;
  dog.Arm(config);

  // Sampled mode with an astronomically large rate: the raise itself is
  // sampled out, but the anomaly record must land anyway.
  ResetSampleCountdown();
  obs::FlightRecorder::Global().Reset();
  dispatcher.SetTracing({obs::TraceMode::kSampled, 1u << 30});

  event.Raise(1);  // sleeps 50 ms >= the 10 ms absolute deadline

  dispatcher.SetTracing({obs::TraceMode::kOff});
  dog.Disarm();

  EXPECT_GE(dog.Count(obs::AnomalyKind::kSlowHandler), base + 1);
  EXPECT_GE(dog.last_value(), 10'000'000u);

  bool saw_anomaly = false;
  bool saw_raise = false;
  for (const obs::MergedRecord& m :
       obs::FlightRecorder::Global().Snapshot()) {
    if (m.rec.kind == obs::TraceKind::kAnomaly &&
        std::string(m.rec.name) == "Watch.Slow") {
      saw_anomaly = true;
      EXPECT_EQ(m.rec.arg >> 32,
                static_cast<uint64_t>(obs::AnomalyKind::kSlowHandler));
      EXPECT_EQ(m.rec.arg & 0xffffffffu, 0u) << "shard 0";
    }
    if (m.rec.kind == obs::TraceKind::kRaiseBegin) {
      saw_raise = true;
    }
  }
  EXPECT_TRUE(saw_anomaly)
      << "anomaly records override the per-tree sampling decision";
  EXPECT_FALSE(saw_raise) << "the raise itself stayed sampled out";
  obs::FlightRecorder::Global().Reset();
}

TEST(WatchdogTest, DerivedDeadlineTracksEventP99) {
  obs::Watchdog& dog = obs::Watchdog::Global();
  const uint64_t base = dog.Count(obs::AnomalyKind::kSlowHandler);

  Dispatcher dispatcher;
  Module module("WatchdogTest");
  Event<void(int64_t)> event("Watch.P99", &module, nullptr, &dispatcher);
  SleepCtx ctx{5};
  dispatcher.InstallHandler(event, &MaybeSleepHandler, &ctx,
                            {.module = &module});

  obs::WatchdogConfig config;
  config.period_ms = 0;
  config.slow_handler_ns = 1'000'000'000;  // 1 s: absolute never trips here
  config.p99_factor = 4.0;
  config.slow_handler_floor_ns = 100'000;  // 100 us
  config.min_samples = 32;
  dog.Arm(config);

  // Feed the histogram: armed means timed, so each fast raise records.
  for (int i = 0; i < 100; ++i) {
    event.Raise(0);
  }
  EXPECT_EQ(event.metrics().slow_ns(), 0u) << "no deadline before a poll";
  dog.Poll();
  const uint64_t derived = event.metrics().slow_ns();
  ASSERT_NE(derived, 0u);
  EXPECT_GE(derived, config.slow_handler_floor_ns);
  EXPECT_LT(derived, config.slow_handler_ns)
      << "a fast event's deadline sits far below the absolute cap";

  event.Raise(1);  // 5 ms: slow for THIS event, harmless absolutely
  EXPECT_GE(dog.Count(obs::AnomalyKind::kSlowHandler), base + 1);

  dog.Disarm();
  EXPECT_EQ(event.metrics().slow_ns(), 0u)
      << "disarm clears derived deadlines";
}

TEST(WatchdogTest, QueueBacklogAndStallRules) {
  obs::Watchdog& dog = obs::Watchdog::Global();
  const uint64_t backlog_base = dog.Count(obs::AnomalyKind::kOutboxBacklog);
  const uint64_t stall_base = dog.Count(obs::AnomalyKind::kQueueStall);

  obs::WatchdogConfig config;
  config.period_ms = 0;
  config.outbox_backlog = 100;
  dog.Arm(config);

  FakeProbe probe;
  dog.RegisterProbe(&probe, &FakeProbe::Fn);
  const char* name = obs::Intern("fake/queue");

  // Backlog above the limit flags immediately, no history needed.
  probe.samples = {{obs::AnomalyKind::kQueueStall, name, 2, 500, 10}};
  dog.Poll();
  EXPECT_EQ(dog.Count(obs::AnomalyKind::kOutboxBacklog), backlog_base + 1);
  EXPECT_EQ(dog.Count(obs::AnomalyKind::kOutboxBacklog, 2), 1u);
  EXPECT_EQ(dog.Count(obs::AnomalyKind::kQueueStall), stall_base)
      << "first observation cannot be a stall";

  // Depth present, progress advancing: draining, not stalled.
  probe.samples = {{obs::AnomalyKind::kQueueStall, name, 2, 50, 20}};
  dog.Poll();
  EXPECT_EQ(dog.Count(obs::AnomalyKind::kQueueStall), stall_base);

  // Depth present across a full period with zero progress: stalled.
  probe.samples = {{obs::AnomalyKind::kQueueStall, name, 2, 50, 20}};
  dog.Poll();
  EXPECT_EQ(dog.Count(obs::AnomalyKind::kQueueStall), stall_base + 1);

  dog.UnregisterProbe(&probe);
  dog.Disarm();
}

TEST(WatchdogTest, EpochStallRule) {
  obs::Watchdog& dog = obs::Watchdog::Global();
  const uint64_t base = dog.Count(obs::AnomalyKind::kEpochStall);

  obs::WatchdogConfig config;
  config.period_ms = 0;
  dog.Arm(config);

  FakeProbe probe;
  dog.RegisterProbe(&probe, &FakeProbe::Fn);
  const char* name = obs::Intern("fake/epoch");

  // Retired objects with reclamation advancing: healthy.
  probe.samples = {{obs::AnomalyKind::kEpochStall, name, 0, 8, 100}};
  dog.Poll();
  probe.samples = {{obs::AnomalyKind::kEpochStall, name, 0, 8, 108}};
  dog.Poll();
  EXPECT_EQ(dog.Count(obs::AnomalyKind::kEpochStall), base);

  // A retired table or two parked between rebuilds is the steady state,
  // not a stall, even with reclamation idle.
  probe.samples = {{obs::AnomalyKind::kEpochStall, name, 1, 2, 50}};
  dog.Poll();
  probe.samples = {{obs::AnomalyKind::kEpochStall, name, 1, 2, 50}};
  dog.Poll();
  EXPECT_EQ(dog.Count(obs::AnomalyKind::kEpochStall), base);

  // A real backlog with reclamation frozen across a full period: stalled.
  probe.samples = {{obs::AnomalyKind::kEpochStall, name, 0, 8, 108}};
  dog.Poll();
  EXPECT_EQ(dog.Count(obs::AnomalyKind::kEpochStall), base + 1);

  dog.UnregisterProbe(&probe);
  dog.Disarm();
}

TEST(WatchdogTest, RealDispatcherProbesStayQuietWhenHealthy) {
  obs::Watchdog& dog = obs::Watchdog::Global();
  const uint64_t stall_base = dog.Count(obs::AnomalyKind::kQueueStall);
  const uint64_t epoch_base = dog.Count(obs::AnomalyKind::kEpochStall);

  Dispatcher dispatcher;  // registers its pool/epoch probe on construction
  Module module("WatchdogTest");
  Event<void(int64_t)> event("Watch.Healthy", &module, nullptr, &dispatcher);
  SleepCtx ctx{0};
  dispatcher.InstallHandler(event, &MaybeSleepHandler, &ctx,
                            {.module = &module});

  obs::WatchdogConfig config;
  config.period_ms = 0;
  dog.Arm(config);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      event.Raise(0);
    }
    dispatcher.pool().Drain();
    dog.Poll();
  }
  dog.Disarm();

  EXPECT_EQ(dog.Count(obs::AnomalyKind::kQueueStall), stall_base);
  EXPECT_EQ(dog.Count(obs::AnomalyKind::kEpochStall), epoch_base);
}

void NeverCalled(SleepCtx*, uint64_t) {}

TEST(WatchdogTest, RetryStormDetectedUnderPartition) {
  obs::Watchdog& dog = obs::Watchdog::Global();
  const uint64_t base = dog.Count(obs::AnomalyKind::kRetryStorm);

  Dispatcher dispatcher;
  sim::Simulator sim;
  net::Wire wire{&sim, sim::LinkModel{}};
  net::Host client_host{"storm-client", 0x0a000301, &dispatcher};
  net::Host server_host{"storm-server", 0x0a000302, &dispatcher};
  wire.Attach(client_host, server_host);
  remote::Exporter exporter{server_host};

  SleepCtx ctx;
  Event<void(uint64_t)> server_ev("Storm.Op", nullptr, nullptr, &dispatcher);
  dispatcher.InstallHandler(server_ev, &NeverCalled, &ctx);
  exporter.Export(server_ev);

  Event<void(uint64_t)> client_ev("Storm.Op", nullptr, nullptr, &dispatcher);
  remote::ProxyOptions opts;
  opts.remote_ip = server_host.ip();
  opts.local_port = 9050;
  remote::EventProxy proxy(client_host, &sim, client_ev, opts);

  obs::WatchdogConfig config;
  config.period_ms = 0;
  config.retry_storm = 8;
  dog.Arm(config);
  dog.Poll();  // baseline observation of the proxy's retry counter

  // Partition the wire for the rest of virtual time: every attempt of
  // every raise is lost, so each raise burns its full retry budget
  // (max_attempts - 1 = 4 retries) before throwing kTimeout.
  wire.SetPartition(sim.now_ns(), ~0ull);
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW(client_ev.Raise(i), RemoteError);
  }
  EXPECT_EQ(proxy.retries(), 12u);

  dog.Poll();  // 12 retries in one period >= the limit of 8
  dog.Disarm();
  EXPECT_EQ(dog.Count(obs::AnomalyKind::kRetryStorm), base + 1);
  EXPECT_EQ(dog.last_value(), 12u);

  std::ostringstream os;
  obs::ExportMetrics(os);
  EXPECT_NE(os.str().find("spin_anomalies_total{kind=\"retry_storm\","
                          "shard=\"0\",event=\"\"}"),
            std::string::npos)
      << "monitor rules export with an empty event label:\n" << os.str();
}

TEST(WatchdogTest, SlowHandlerAnomaliesExportWithEventLabel) {
  obs::Watchdog& dog = obs::Watchdog::Global();

  Dispatcher dispatcher;
  Module module("WatchdogTest");
  Event<void(int64_t)> event("Watch.Labeled", &module, nullptr, &dispatcher);
  SleepCtx ctx{20};
  dispatcher.InstallHandler(event, &MaybeSleepHandler, &ctx,
                            {.module = &module});

  obs::WatchdogConfig config;
  config.period_ms = 0;
  config.slow_handler_ns = 5'000'000;
  dog.Arm(config);
  event.Raise(1);  // 20 ms >= 5 ms: trips the inline deadline
  dog.Disarm();

  // The deadline check knows which event blew its budget, so its counter
  // series carries the event name.
  std::ostringstream os;
  obs::ExportMetrics(os);
  EXPECT_NE(os.str().find("spin_anomalies_total{kind=\"slow_handler\","
                          "shard=\"0\",event=\"Watch.Labeled\"}"),
            std::string::npos)
      << os.str();
}

TEST(WatchdogTest, TraceRingPressureRule) {
  obs::Watchdog& dog = obs::Watchdog::Global();
  const uint64_t base = dog.Count(obs::AnomalyKind::kTraceDrops);

  obs::FlightRecorder& rec = obs::FlightRecorder::Global();
  rec.Reset(16);  // tiny rings so a short burst wraps
  obs::SetTraceConfig({obs::TraceMode::kFull});

  obs::WatchdogConfig config;
  config.period_ms = 0;
  config.trace_drop_ratio = 0.25;
  dog.Arm(config);
  dog.Poll();  // baseline observation of every ring's counters

  // 128 emits through a 16-slot ring overwrite ~112 records — a drop
  // ratio far past 0.25, so the next poll must flag this thread's ring.
  const char* name = obs::Intern("ring/pressure");
  for (int i = 0; i < 128; ++i) {
    rec.Emit(obs::TraceKind::kRaiseBegin, name, 0);
  }
  dog.Poll();
  EXPECT_GE(dog.Count(obs::AnomalyKind::kTraceDrops), base + 1);
  EXPECT_GE(dog.last_value(), 96u) << "value is the overwrite delta";

  // A quiet period (no emits anywhere) must not re-fire.
  const uint64_t after = dog.Count(obs::AnomalyKind::kTraceDrops);
  dog.Poll();
  EXPECT_EQ(dog.Count(obs::AnomalyKind::kTraceDrops), after);

  // Reset shrinks the counters below the stored baseline; the rule
  // re-baselines instead of firing on the bogus negative delta.
  rec.Reset();
  dog.Poll();
  EXPECT_EQ(dog.Count(obs::AnomalyKind::kTraceDrops), after);

  dog.Disarm();
  obs::SetTraceConfig({obs::TraceMode::kOff});
  rec.Reset();

  std::ostringstream os;
  obs::ExportMetrics(os);
  EXPECT_NE(os.str().find("spin_anomalies_total{kind=\"trace_drops\""),
            std::string::npos)
      << os.str();
}

// A probe whose callback parks until the test releases it, so the test
// can hold a Poll() pass in flight at a known point.
struct ParkedProbe {
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  std::atomic<bool> finished{false};
  static void Fn(void* ctx, std::vector<obs::WatchSample>&) {
    auto* self = static_cast<ParkedProbe*>(ctx);
    self->entered.store(true);
    while (!self->release.load()) {
      std::this_thread::yield();
    }
    self->finished.store(true);
  }
};

TEST(WatchdogTest, UnregisterProbeWaitsOutAnInFlightPoll) {
  obs::Watchdog& dog = obs::Watchdog::Global();

  obs::WatchdogConfig config;
  config.period_ms = 0;  // the test drives Poll() on its own thread
  dog.Arm(config);

  auto* probe = new ParkedProbe();
  dog.RegisterProbe(probe, &ParkedProbe::Fn);

  std::thread poller([&dog] { dog.Poll(); });
  while (!probe->entered.load()) {
    std::this_thread::yield();
  }

  // The probe callback is in flight; unregistering from another thread
  // (the destructor path) must block until the poll pass is over, so
  // freeing the probe afterwards is safe. TSan guards the
  // use-after-free half of this claim.
  std::atomic<bool> unregistered{false};
  std::thread destroyer([&] {
    dog.UnregisterProbe(probe);
    EXPECT_TRUE(probe->finished.load())
        << "UnregisterProbe returned while the probe callback was running";
    unregistered.store(true);
    delete probe;
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(unregistered.load())
      << "UnregisterProbe returned with a Poll() still in flight";

  probe->release.store(true);
  poller.join();
  destroyer.join();
  dog.Disarm();
}

TEST(WatchdogTest, TraceBurstLatchesOnceAndRetires) {
  obs::Watchdog& dog = obs::Watchdog::Global();

  obs::TraceConfig sampled{obs::TraceMode::kSampled, 64};
  obs::SetTraceConfig(sampled);

  obs::WatchdogConfig config;
  config.period_ms = 0;
  config.outbox_backlog = 10;
  config.trace_burst = true;
  config.burst_periods = 1;
  dog.Arm(config);

  FakeProbe probe;
  dog.RegisterProbe(&probe, &FakeProbe::Fn);
  const char* name = obs::Intern("fake/burst");

  probe.samples = {{obs::AnomalyKind::kQueueStall, name, 0, 50, 1}};
  dog.Poll();  // backlog anomaly latches the burst
  EXPECT_TRUE(dog.burst_active());
  EXPECT_EQ(obs::GetTraceConfig().mode, obs::TraceMode::kFull)
      << "the incident switches the recorder to full fidelity";

  probe.samples.clear();
  dog.Poll();  // one burst period elapsed: restore the sampled config
  EXPECT_FALSE(dog.burst_active());
  EXPECT_EQ(obs::GetTraceConfig().mode, obs::TraceMode::kSampled);
  EXPECT_EQ(obs::GetTraceConfig().sample_rate, 64u);

  // One-shot: a second anomaly does not re-latch until RearmBurst.
  probe.samples = {{obs::AnomalyKind::kQueueStall, name, 0, 60, 1}};
  dog.Poll();
  EXPECT_FALSE(dog.burst_active());
  EXPECT_EQ(obs::GetTraceConfig().mode, obs::TraceMode::kSampled);
  dog.RearmBurst();
  dog.Poll();
  EXPECT_TRUE(dog.burst_active());

  dog.UnregisterProbe(&probe);
  dog.Disarm();  // also restores the pre-burst trace config
  EXPECT_EQ(obs::GetTraceConfig().mode, obs::TraceMode::kSampled);
  obs::SetTraceConfig({obs::TraceMode::kOff});
}

}  // namespace
}  // namespace spin
