// Replaceable paging policy (§1: applications may "replace an existing
// paging policy"): the VM's victim-selection event ships with a FIFO
// handler; an extension swaps in LRU by uninstalling it and installing its
// own — the deregister/register model of §2.1.
#include <gtest/gtest.h>

#include "src/kernel/kernel.h"

namespace spin {
namespace {

class PolicyTest : public ::testing::Test {
 protected:
  Dispatcher dispatcher_;
  Kernel kernel_{&dispatcher_};
};

int64_t LruPolicy(AddressSpace* space) {
  return static_cast<int64_t>(space->LruVictim());
}

TEST_F(PolicyTest, FifoEvictsOldestMapping) {
  kernel_.vm.SetResidentLimit(3);
  AddressSpace& space = kernel_.CreateAddressSpace();
  uint8_t value = 0;
  // Touch pages 0, 1, 2 (in that order), then re-touch 0 heavily.
  for (uint64_t page : {0, 1, 2}) {
    kernel_.vm.Read(space, page * kPageSize, &value);
  }
  kernel_.vm.Read(space, 0, &value);
  kernel_.vm.Read(space, 0, &value);
  // Page 3 faults: FIFO evicts page 0 (mapped first) despite its recency.
  kernel_.vm.Read(space, 3 * kPageSize, &value);
  EXPECT_EQ(kernel_.vm.eviction_count(), 1u);
  EXPECT_FALSE(space.IsMapped(0, kAccessRead));
  EXPECT_TRUE(space.IsMapped(1 * kPageSize, kAccessRead));
}

TEST_F(PolicyTest, ExtensionReplacesFifoWithLru) {
  kernel_.vm.SetResidentLimit(3);
  // The §2.1 replacement model: deregister the existing implementation,
  // register the alternate.
  dispatcher_.Uninstall(kernel_.vm.fifo_policy_binding(),
                        &kernel_.vm.module());
  dispatcher_.InstallHandler(kernel_.vm.SelectVictim, &LruPolicy,
                             {.module = &kernel_.vm.module()});

  AddressSpace& space = kernel_.CreateAddressSpace();
  uint8_t value = 0;
  for (uint64_t page : {0, 1, 2}) {
    kernel_.vm.Read(space, page * kPageSize, &value);
  }
  // Re-touch page 0: under LRU, page 1 is now the coldest.
  kernel_.vm.Read(space, 0, &value);
  kernel_.vm.Read(space, 3 * kPageSize, &value);
  EXPECT_EQ(kernel_.vm.eviction_count(), 1u);
  EXPECT_TRUE(space.IsMapped(0, kAccessRead)) << "LRU keeps the hot page";
  EXPECT_FALSE(space.IsMapped(1 * kPageSize, kAccessRead));
}

TEST_F(PolicyTest, NoPolicyRefusesEvictionGracefully) {
  kernel_.vm.SetResidentLimit(2);
  dispatcher_.Uninstall(kernel_.vm.fifo_policy_binding(),
                        &kernel_.vm.module());
  AddressSpace& space = kernel_.CreateAddressSpace();
  uint8_t value = 0;
  for (uint64_t page = 0; page < 5; ++page) {
    EXPECT_TRUE(kernel_.vm.Read(space, page * kPageSize, &value));
  }
  // The default "no victim" handler refused every eviction: the space
  // exceeds its limit but the system stays alive.
  EXPECT_EQ(kernel_.vm.eviction_count(), 0u);
  EXPECT_EQ(space.resident_pages(), 5u);
}

TEST_F(PolicyTest, UnlimitedByDefault) {
  AddressSpace& space = kernel_.CreateAddressSpace();
  uint8_t value = 0;
  for (uint64_t page = 0; page < 64; ++page) {
    kernel_.vm.Read(space, page * kPageSize, &value);
  }
  EXPECT_EQ(kernel_.vm.eviction_count(), 0u);
  EXPECT_EQ(space.resident_pages(), 64u);
}

TEST_F(PolicyTest, EvictionChurnUnderPressure) {
  kernel_.vm.SetResidentLimit(4);
  AddressSpace& space = kernel_.CreateAddressSpace();
  uint8_t value = 0;
  // A sequential scan of 32 pages with a 4-page window evicts on nearly
  // every new page.
  for (uint64_t page = 0; page < 32; ++page) {
    EXPECT_TRUE(kernel_.vm.Read(space, page * kPageSize, &value));
  }
  EXPECT_GE(kernel_.vm.eviction_count(), 28u);
  EXPECT_LE(space.resident_pages(), 4u);
}

}  // namespace
}  // namespace spin
