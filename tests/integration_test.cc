// Full-system integration: the paper's two-phase extension model end to
// end. A web-server extension (SPIN shipped one, §3) is dynamically linked
// against the system's exported interfaces — it discovers the VFS events
// through the linker, not through compile-time coupling — then serves a
// file over the TCP stack to a client on the simulated peer machine.
#include <string>

#include <gtest/gtest.h>

#include "src/emul/osf.h"
#include "src/fs/vfs.h"
#include "src/kernel/kernel.h"
#include "src/linker/domain.h"
#include "src/net/tcp.h"
#include "src/profile/profile.h"
#include "src/sim/simulator.h"

namespace spin {
namespace {

// The web-server extension. Its only ties to the system are the symbols it
// resolves at link time and the handlers it installs afterwards.
class WebServer {
 public:
  WebServer(Domain& system, Dispatcher& dispatcher, net::Host& host,
            uint16_t port)
      : module_("WebServer"),
        open_(system.GetEvent<int64_t(const char*, int32_t)>("Fs.Open")),
        read_(system.GetEvent<int64_t(int64_t, char*, int64_t)>("Fs.Read")),
        close_(system.GetEvent<int64_t(int64_t)>("Fs.Close")),
        endpoint_(host, port) {
    (void)dispatcher;
    endpoint_.Listen([this](const std::string& request) {
      HandleRequest(request);
    });
  }

  int requests_served() const { return served_; }
  int errors() const { return errors_; }

 private:
  void HandleRequest(const std::string& request) {
    // "GET <path>" -> file contents, else "404".
    if (request.rfind("GET ", 0) != 0) {
      endpoint_.Send("400 bad request");
      ++errors_;
      return;
    }
    std::string path = request.substr(4);
    int64_t fd = open_->Raise(path.c_str(), 0);
    if (fd < 0) {
      endpoint_.Send("404 not found");
      ++errors_;
      return;
    }
    std::string body;
    char buffer[1024];
    int64_t n = 0;
    while ((n = read_->Raise(fd, buffer, sizeof(buffer))) > 0) {
      body.append(buffer, static_cast<size_t>(n));
    }
    close_->Raise(fd);
    endpoint_.Send("200 " + body);
    ++served_;
  }

  Module module_;
  Event<int64_t(const char*, int32_t)>* open_;
  Event<int64_t(int64_t, char*, int64_t)>* read_;
  Event<int64_t(int64_t)>* close_;
  net::TcpEndpoint endpoint_;
  int served_ = 0;
  int errors_ = 0;
};

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() {
    wire_.Attach(server_host_, client_host_);
    // Phase 1 of §2: the system exports its interfaces as a domain; the
    // extension links against them.
    Domain& system = linker_.CreateDomain("system", &vfs_.module());
    system.ExportEvent(vfs_.Open);
    system.ExportEvent(vfs_.Read);
    system.ExportEvent(vfs_.CloseFd);
    system.ExportEvent(kernel_.MachineTrapSyscall);

    Domain& extension = linker_.CreateDomain("webserver", &ext_module_);
    extension.ImportEvent<int64_t(const char*, int32_t)>("Fs.Open");
    extension.ImportEvent<int64_t(int64_t, char*, int64_t)>("Fs.Read");
    extension.ImportEvent<int64_t(int64_t)>("Fs.Close");
    linker_.LinkAgainstAll(extension);
    system_domain_ = &extension;
  }

  void SeedFile(const std::string& path, const std::string& content) {
    int64_t fd = vfs_.Open.Raise(path.c_str(), fs::kOpenCreate);
    ASSERT_GE(fd, 0);
    vfs_.Write.Raise(fd, content.data(),
                     static_cast<int64_t>(content.size()));
    vfs_.CloseFd.Raise(fd);
  }

  std::string Fetch(const std::string& request) {
    std::string response;
    net::TcpEndpoint client(client_host_, next_client_port_++);
    client.Connect(server_host_.ip(), 80,
                   [&](const std::string& data) { response += data; });
    sim_.Run();
    client.Send(request);
    sim_.Run();
    return response;
  }

  Module ext_module_{"WebServerExt"};
  Dispatcher dispatcher_;
  Kernel kernel_{&dispatcher_};
  fs::Vfs vfs_{&dispatcher_};
  Linker linker_;
  Domain* system_domain_ = nullptr;
  sim::Simulator sim_;
  net::Wire wire_{&sim_, sim::LinkModel{}};
  net::Host server_host_{"server", 0x0a000001, &dispatcher_};
  net::Host client_host_{"client", 0x0a000002, &dispatcher_};
  uint16_t next_client_port_ = 40000;
};

TEST_F(IntegrationTest, LinkedExtensionServesFiles) {
  SeedFile("/htdocs/index.html", "<html>SPIN lives</html>");
  WebServer server(*system_domain_, dispatcher_, server_host_, 80);

  std::string response = Fetch("GET /htdocs/index.html");
  EXPECT_EQ(response, "200 <html>SPIN lives</html>");
  EXPECT_EQ(server.requests_served(), 1);
  EXPECT_EQ(server.errors(), 0);
}

TEST_F(IntegrationTest, MissingFileIs404) {
  WebServer server(*system_domain_, dispatcher_, server_host_, 80);
  EXPECT_EQ(Fetch("GET /nope"), "404 not found");
  EXPECT_EQ(server.errors(), 1);
}

TEST_F(IntegrationTest, LargeFileStreamsAcrossSegments) {
  std::string big(20000, 'W');
  SeedFile("/htdocs/big", big);
  WebServer server(*system_domain_, dispatcher_, server_host_, 80);
  std::string response = Fetch("GET /htdocs/big");
  EXPECT_EQ(response.size(), 4 + big.size());
  EXPECT_EQ(response.substr(0, 4), "200 ");
  EXPECT_EQ(response.substr(4), big);
}

TEST_F(IntegrationTest, ProfilerObservesTheWholeStack) {
  SeedFile("/htdocs/index.html", "hello");
  WebServer server(*system_domain_, dispatcher_, server_host_, 80);
  profile::Profiler profiler(dispatcher_);
  profiler.Reset();
  Fetch("GET /htdocs/index.html");
  bool saw_tcp = false;
  bool saw_fs = false;
  for (const auto& row : profiler.Snapshot()) {
    if (row.name == "Tcp.PacketArrived" && row.raised > 0) {
      saw_tcp = true;
    }
    if (row.name == "Fs.Open" && row.raised > 0) {
      saw_fs = true;
    }
  }
  EXPECT_TRUE(saw_tcp);
  EXPECT_TRUE(saw_fs);
}

TEST_F(IntegrationTest, UnlinkedSymbolIsInaccessible) {
  // An extension that failed to import a symbol cannot reach it.
  Domain& rogue = linker_.CreateDomain("rogue", &ext_module_);
  EXPECT_THROW(
      (rogue.GetEvent<int64_t(const char*, int32_t)>("Fs.Open")),
      LinkError);
}

}  // namespace
}  // namespace spin
