// Tests for outbound interposition and the transparent compression
// extension (§1's "add compression to network protocols").
#include <gtest/gtest.h>

#include "src/net/compress.h"
#include "src/net/host.h"
#include "src/net/tcp.h"
#include "src/sim/simulator.h"

namespace spin {
namespace net {
namespace {

class CompressTest : public ::testing::Test {
 protected:
  CompressTest() { wire_.Attach(a_, b_); }

  Dispatcher dispatcher_;
  sim::Simulator sim_;
  Wire wire_{&sim_, sim::LinkModel{}};
  Host a_{"a", 0x0a000001, &dispatcher_};
  Host b_{"b", 0x0a000002, &dispatcher_};
};

TEST(RleTest, RoundTrips) {
  const std::string cases[] = {
      "aaaaaaaaaaaaaaaabbbbbbbbcc",
      std::string(1000, 'x'),
      "ab",
      std::string(255, 'r') + std::string(300, 's'),
  };
  for (const std::string& input : cases) {
    uint8_t compressed[2048];
    uint8_t restored[2048];
    size_t c = RleCompress(reinterpret_cast<const uint8_t*>(input.data()),
                           input.size(), compressed, sizeof(compressed));
    if (c == 0) {
      continue;  // incompressible input: pass-through case
    }
    size_t r = RleDecompress(compressed, c, restored, sizeof(restored));
    ASSERT_EQ(r, input.size());
    EXPECT_EQ(std::string(reinterpret_cast<char*>(restored), r), input);
  }
}

TEST(RleTest, IncompressibleReturnsZero) {
  std::string random;
  for (int i = 0; i < 100; ++i) {
    random.push_back(static_cast<char>(i * 37 + 11));
  }
  uint8_t out[2048];
  EXPECT_EQ(RleCompress(reinterpret_cast<const uint8_t*>(random.data()),
                        random.size(), out, sizeof(out)),
            0u);
}

TEST(RleTest, MalformedDecompressRejected) {
  uint8_t bad_odd[3] = {2, 'a', 1};
  uint8_t out[64];
  EXPECT_EQ(RleDecompress(bad_odd, 3, out, sizeof(out)), 0u);
  uint8_t bad_zero_run[2] = {0, 'a'};
  EXPECT_EQ(RleDecompress(bad_zero_run, 2, out, sizeof(out)), 0u);
  uint8_t overflow[2] = {255, 'a'};
  EXPECT_EQ(RleDecompress(overflow, 2, out, 10), 0u);
}

TEST_F(CompressTest, TransparentEndToEnd) {
  CompressionExtension compression(a_, b_);
  std::string received;
  UdpSocket receiver(b_, 2222, [&](const Packet& packet) {
    received = packet.UdpPayload();
  });
  UdpSocket sender(a_, 1111, nullptr);

  std::string page(900, 'Q');  // highly compressible
  sender.SendTo(b_.ip(), 2222, page);
  sim_.Run();
  EXPECT_EQ(received, page) << "sockets must be unaware of the compression";
  EXPECT_EQ(compression.compressed(), 1u);
  EXPECT_EQ(compression.decompressed(), 1u);
  EXPECT_GT(compression.bytes_saved(), 800u);
  // The wire must have carried the short form.
  EXPECT_LT(wire_.bytes_carried(), 200u);
}

TEST_F(CompressTest, IncompressibleTrafficPassesThrough) {
  CompressionExtension compression(a_, b_);
  std::string payload;
  for (int i = 0; i < 200; ++i) {
    payload.push_back(static_cast<char>(i * 131 + 7));
  }
  std::string received;
  UdpSocket receiver(b_, 2222, [&](const Packet& packet) {
    received = packet.UdpPayload();
  });
  UdpSocket sender(a_, 1111, nullptr);
  sender.SendTo(b_.ip(), 2222, payload);
  sim_.Run();
  EXPECT_EQ(received, payload);
  EXPECT_EQ(compression.compressed(), 0u);
  EXPECT_EQ(compression.decompressed(), 0u);
}

TEST_F(CompressTest, UninstallRestoresPlainTraffic) {
  {
    CompressionExtension compression(a_, b_);
  }
  std::string received;
  UdpSocket receiver(b_, 2222, [&](const Packet& packet) {
    received = packet.UdpPayload();
  });
  UdpSocket sender(a_, 1111, nullptr);
  std::string page(500, 'Z');
  sender.SendTo(b_.ip(), 2222, page);
  sim_.Run();
  EXPECT_EQ(received, page);
  EXPECT_GT(wire_.bytes_carried(), 500u) << "no compression after removal";
}

TEST_F(CompressTest, TcpStreamCompressedTransparently) {
  CompressionExtension compression(a_, b_);
  TcpEndpoint server(b_, 80);
  std::string delivered;
  server.Listen([&](const std::string& chunk) { delivered += chunk; });
  TcpEndpoint client(a_, 5555);
  client.Connect(b_.ip(), 80, nullptr);
  sim_.Run();
  ASSERT_TRUE(client.established());
  // A run-heavy payload shrinks on the wire but arrives byte-identical:
  // the extension transforms below the endpoint, so sequence numbers and
  // ACKs never see the compressed form.
  std::string page(4000, 'G');
  client.Send(page);
  sim_.Run();
  EXPECT_EQ(delivered, page);
  EXPECT_GT(compression.compressed(), 0u);
  EXPECT_EQ(compression.decompressed(), compression.compressed());
}

// --- Outbound policy via imposed guards -----------------------------------

struct PortPolicy {
  uint16_t blocked_port;
};

bool OutboundFirewall(PortPolicy* policy, Packet* packet) {
  return packet->dst_port() != policy->blocked_port;
}

TEST_F(CompressTest, ImposedGuardFirewallsOutboundTraffic) {
  PortPolicy policy{4444};
  dispatcher_.ImposeGuard(a_.EtherPacketSend, a_.transmit_binding(),
                          &OutboundFirewall, &policy);
  int delivered = 0;
  UdpSocket open_receiver(b_, 2222, [&](const Packet&) { ++delivered; });
  UdpSocket blocked_receiver(b_, 4444, [&](const Packet&) { ++delivered; });
  UdpSocket sender(a_, 1111, nullptr);
  sender.SendTo(b_.ip(), 2222, "ok");
  sender.SendTo(b_.ip(), 4444, "blocked");
  sim_.Run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(a_.tx_dropped_packets(), 1u);
  EXPECT_EQ(b_.rx_packets(), 1u);
}

}  // namespace
}  // namespace net
}  // namespace spin
