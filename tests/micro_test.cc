// Tests for the micro-program IR: builder, validator (including the
// FUNCTIONAL purity rule of §2.3), and interpreter.
#include <gtest/gtest.h>

#include "src/micro/interp.h"
#include "src/micro/program.h"

namespace spin {
namespace micro {
namespace {

TEST(MicroValidateTest, EmptyProgramRejected) {
  Program p;
  EXPECT_EQ(p.Validate(), ValidateStatus::kEmpty);
}

TEST(MicroValidateTest, MissingTerminator) {
  Program p({{Op::kLoadImm, 0, 0, 0, 1}}, 0, false);
  EXPECT_EQ(p.Validate(), ValidateStatus::kMissingTerminator);
}

TEST(MicroValidateTest, BadRegisterRejected) {
  Program p({{Op::kLoadImm, 9, 0, 0, 1}, {Op::kRet, 0, 0, 0, 0}}, 0, false);
  EXPECT_EQ(p.Validate(), ValidateStatus::kBadRegister);
}

TEST(MicroValidateTest, BadArgIndexRejected) {
  Program p({{Op::kLoadArg, 0, 0, 0, 2}, {Op::kRet, 0, 0, 0, 0}}, 2, false);
  EXPECT_EQ(p.Validate(), ValidateStatus::kBadArgIndex);
}

TEST(MicroValidateTest, BackwardJumpRejected) {
  Program p({{Op::kLoadImm, 0, 0, 0, 1},
             {Op::kJmp, 0, 0, 0, 0},
             {Op::kRetImm, 0, 0, 0, 0}},
            0, false);
  EXPECT_EQ(p.Validate(), ValidateStatus::kBackwardJump);
}

TEST(MicroValidateTest, JumpOutOfRangeRejected) {
  Program p({{Op::kJmp, 0, 0, 0, 5}, {Op::kRetImm, 0, 0, 0, 0}}, 0, false);
  EXPECT_EQ(p.Validate(), ValidateStatus::kJumpOutOfRange);
}

TEST(MicroValidateTest, FunctionalProgramsMayNotStore) {
  // The §2.3 property: guards are FUNCTIONAL, verified mechanically.
  uint64_t g = 0;
  Program impure = IncrementGlobal(&g, 0);
  EXPECT_EQ(impure.Validate(), ValidateStatus::kOk);
  Program as_functional(impure.code(), impure.num_args(), /*functional=*/true);
  EXPECT_EQ(as_functional.Validate(), ValidateStatus::kImpureFunctional);
}

TEST(MicroValidateTest, ShiftAmountBounded) {
  Program p({{Op::kLoadImm, 0, 0, 0, 1},
             {Op::kShlImm, 0, 0, 0, 64},
             {Op::kRet, 0, 0, 0, 0}},
            0, false);
  EXPECT_EQ(p.Validate(), ValidateStatus::kBadShift);
}

TEST(MicroInterpTest, GuardGlobalEq) {
  uint64_t global = 42;
  Program guard = GuardGlobalEq(&global, 42);
  ASSERT_EQ(guard.Validate(), ValidateStatus::kOk);
  EXPECT_TRUE(guard.functional());
  EXPECT_EQ(::spin::micro::Run(guard, nullptr, 0), 1u);
  global = 41;
  EXPECT_EQ(::spin::micro::Run(guard, nullptr, 0), 0u);
}

TEST(MicroInterpTest, GuardArgFieldEq) {
  struct Header {
    uint32_t src;
    uint16_t port;
  } header{7, 0x1234};
  // Guard: args[0]->port == 0x1234 (16-bit field).
  Program guard = GuardArgFieldEq(1, 0, offsetof(Header, port), 2, ~0ull,
                                  0x1234);
  ASSERT_EQ(guard.Validate(), ValidateStatus::kOk);
  uint64_t args[1] = {reinterpret_cast<uintptr_t>(&header)};
  EXPECT_EQ(::spin::micro::Run(guard, args, 1), 1u);
  header.port = 0x9999;
  EXPECT_EQ(::spin::micro::Run(guard, args, 1), 0u);
}

TEST(MicroInterpTest, IncrementGlobal) {
  uint64_t global = 10;
  Program handler = IncrementGlobal(&global, 0);
  ASSERT_EQ(handler.Validate(), ValidateStatus::kOk);
  ::spin::micro::Run(handler, nullptr, 0);
  ::spin::micro::Run(handler, nullptr, 0);
  EXPECT_EQ(global, 12u);
}

TEST(MicroInterpTest, ArithmeticAndCompare) {
  // f(a, b) = (a + b) * ... exercise add/sub/xor/shl and signed compare.
  Program p = std::move(ProgramBuilder(2, true)
                            .LoadArg(0, 0)
                            .LoadArg(1, 1)
                            .Add(2, 0, 1)       // r2 = a + b
                            .ShlImm(3, 2, 4)    // r3 = (a+b) << 4
                            .Sub(4, 3, 1)       // r4 = r3 - b
                            .Ret(4))
                   .Build();
  ASSERT_EQ(p.Validate(), ValidateStatus::kOk);
  uint64_t args[2] = {3, 5};
  EXPECT_EQ(::spin::micro::Run(p, args, 2), ((3ull + 5) << 4) - 5);
}

TEST(MicroInterpTest, SignedCompare) {
  Program p = std::move(ProgramBuilder(2, true)
                            .LoadArg(0, 0)
                            .LoadArg(1, 1)
                            .CmpLtS(2, 0, 1)
                            .Ret(2))
                   .Build();
  uint64_t neg_one = static_cast<uint64_t>(-1);
  uint64_t args1[2] = {neg_one, 1};
  EXPECT_EQ(::spin::micro::Run(p, args1, 2), 1u) << "-1 < 1 signed";
  uint64_t args2[2] = {neg_one, 1};
  Program pu = std::move(ProgramBuilder(2, true)
                             .LoadArg(0, 0)
                             .LoadArg(1, 1)
                             .CmpLtU(2, 0, 1)
                             .Ret(2))
                    .Build();
  EXPECT_EQ(::spin::micro::Run(pu, args2, 2), 0u) << "0xffff... > 1 unsigned";
}

TEST(MicroInterpTest, ConditionalJump) {
  // if (a == 0) return 100; else return 200;
  ProgramBuilder b(1, true);
  b.LoadArg(0, 0);
  b.Not(1, 0);  // r1 = (a == 0)
  size_t jz = b.Jz(1);
  b.RetImm(100);
  b.PatchJumpTarget(jz);
  b.RetImm(200);
  Program p = std::move(b).Build();
  ASSERT_EQ(p.Validate(), ValidateStatus::kOk);
  uint64_t zero[1] = {0};
  uint64_t one[1] = {1};
  EXPECT_EQ(::spin::micro::Run(p, zero, 1), 100u);
  EXPECT_EQ(::spin::micro::Run(p, one, 1), 200u);
}

TEST(MicroInterpTest, NarrowLoadsZeroExtend) {
  uint64_t cell = 0xffeeddccbbaa9988ull;
  for (int width : {1, 2, 4, 8}) {
    Program p = std::move(ProgramBuilder(0, true)
                              .LoadGlobal(0, &cell, width)
                              .Ret(0))
                     .Build();
    uint64_t mask = width == 8 ? ~0ull : ((1ull << (8 * width)) - 1);
    EXPECT_EQ(::spin::micro::Run(p, nullptr, 0), cell & mask) << "width " << width;
  }
}

TEST(MicroInterpTest, NarrowStores) {
  uint64_t cell = 0;
  Program p = std::move(ProgramBuilder(0, false)
                            .LoadImm(0, 0x1122334455667788ull)
                            .StoreGlobal(&cell, 0, 2)
                            .RetImm(0))
                   .Build();
  ASSERT_EQ(p.Validate(), ValidateStatus::kOk);
  ::spin::micro::Run(p, nullptr, 0);
  EXPECT_EQ(cell, 0x7788u);
}

TEST(MicroInterpTest, StoreFieldThroughPointerArg) {
  uint64_t record[2] = {0, 0};
  Program p = std::move(ProgramBuilder(1, false)
                            .LoadArg(0, 0)
                            .LoadImm(1, 99)
                            .StoreField(0, 8, 1, 8)
                            .Ret(1))
                   .Build();
  ASSERT_EQ(p.Validate(), ValidateStatus::kOk);
  uint64_t args[1] = {reinterpret_cast<uintptr_t>(record)};
  EXPECT_EQ(::spin::micro::Run(p, args, 1), 99u);
  EXPECT_EQ(record[1], 99u);
  EXPECT_EQ(record[0], 0u);
}

TEST(MicroProgramTest, ToStringListsInstructions) {
  uint64_t g = 0;
  Program p = GuardGlobalEq(&g, 1);
  std::string s = p.ToString();
  EXPECT_NE(s.find("load_global"), std::string::npos);
  EXPECT_NE(s.find("cmp_eq"), std::string::npos);
}

TEST(MicroProgramTest, CostIsInstructionCount) {
  uint64_t g = 0;
  EXPECT_EQ(GuardGlobalEq(&g, 1).Cost(), 4u);
  EXPECT_EQ(ReturnConst(0, 0, true).Cost(), 1u);
}

}  // namespace
}  // namespace micro
}  // namespace spin
