// Disassembler-checked golden corpus for every stub shape the runtime code
// generator emits: dispatch stubs (single/multi binding, native and inlined
// micro callables, closures, by-ref widening, result policies, guard
// decision trees linear and binary-search, peephole on/off) and standalone
// compiled micro-programs (the out-of-line guard bodies the verify-then-JIT
// admission path installs).
//
// Every case is compiled with sentinel callee/closure/global addresses so
// the emitted bytes are fully deterministic, then disassembled by the small
// length-decoding x86-64 decoder in tests/x86_disasm.h — which recognizes
// exactly the encoder inventory of src/codegen/lir.cc and refuses anything
// else — and compared line-for-line against tests/golden/stubs.golden.
//
// On intentional codegen changes, regenerate with:
//   python3 tools/update_golden.py           (or --check to verify)
// CI runs the --check form, so un-regenerated drift fails the build.
//
// Not a gtest binary: it needs a --dump mode for the regenerate script, so
// it carries its own main and reports pass/fail via the exit code.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/codegen/stub_compiler.h"
#include "src/micro/program.h"
#include "x86_disasm.h"

namespace {

using spin::codegen::BindingSpec;
using spin::codegen::CallableSpec;
using spin::codegen::CompiledMicro;
using spin::codegen::CompiledStub;
using spin::codegen::CompileMicro;
using spin::codegen::CompileStub;
using spin::codegen::ResultPolicy;
using spin::codegen::StubSpec;
using spin::codegen::StubTree;
using spin::codegen::TreeCase;
using spin::micro::Program;
using spin::micro::ProgramBuilder;

// Sentinel addresses: never dereferenced (the stubs are only disassembled,
// not run), chosen to exercise both imm64 materialization (high bits set)
// and the shorter zero-extending imm32 form (high bits clear).
constexpr uint64_t kHandlerAddr = 0x1122334455667788ull;
constexpr uint64_t kGuardAddr = 0x99aabbccddeeff00ull;
constexpr uint64_t kClosureAddr = 0x41424344ull;
constexpr uint64_t kGlobalAddr = 0x5566778899aabbccull;

struct GoldenCase {
  std::string name;
  std::vector<uint8_t> bytes;
};

int g_failures = 0;

void Fail(const std::string& what) {
  std::fprintf(stderr, "FAIL: %s\n", what.c_str());
  ++g_failures;
}

void AddStub(std::vector<GoldenCase>& cases, const std::string& name,
             const StubSpec& spec) {
  std::string why;
  if (!spin::codegen::StubEligible(spec, &why)) {
    Fail(name + ": spec ineligible: " + why);
    return;
  }
  std::unique_ptr<CompiledStub> stub = CompileStub(spec);
  if (stub == nullptr) {
    Fail(name + ": CompileStub returned nullptr");
    return;
  }
  const auto* code = reinterpret_cast<const uint8_t*>(
      reinterpret_cast<const void*>(stub->entry()));
  std::vector<uint8_t> bytes(code, code + stub->code_size());

  // Clones must be byte-identical: the sharded dispatcher relies on the
  // emitted code being position-independent.
  std::unique_ptr<CompiledStub> clone = stub->Clone();
  if (clone == nullptr) {
    Fail(name + ": Clone returned nullptr");
  } else {
    const auto* ccode = reinterpret_cast<const uint8_t*>(
        reinterpret_cast<const void*>(clone->entry()));
    if (clone->code_size() != bytes.size() ||
        std::memcmp(ccode, bytes.data(), bytes.size()) != 0) {
      Fail(name + ": clone bytes differ from original");
    }
  }
  cases.push_back({name, std::move(bytes)});
}

void AddMicro(std::vector<GoldenCase>& cases, const std::string& name,
              const Program& prog, bool optimize = true) {
  std::unique_ptr<CompiledMicro> m = CompileMicro(prog, optimize);
  if (m == nullptr) {
    Fail(name + ": CompileMicro returned nullptr");
    return;
  }
  const auto* code = static_cast<const uint8_t*>(m->entry());
  cases.push_back({name, std::vector<uint8_t>(code, code + m->code_size())});
}

CallableSpec Native(uint64_t addr) {
  CallableSpec c;
  c.fn = reinterpret_cast<void*>(addr);
  return c;
}

// Pure register compare: args[0] == 7.
Program ArgEqGuard() {
  return std::move(ProgramBuilder(2, /*functional=*/true)
                       .LoadArg(0, 0)
                       .LoadImm(1, 7)
                       .CmpEq(2, 0, 1)
                       .Ret(2))
      .Build();
}

// args[0] + args[1].
Program AddHandler() {
  return std::move(ProgramBuilder(2, /*functional=*/false)
                       .LoadArg(0, 0)
                       .LoadArg(1, 1)
                       .Add(2, 0, 1)
                       .Ret(2))
      .Build();
}

// Forward control flow: args[0] != 0 ? args[1] : 0x2a.
Program SelectProgram() {
  ProgramBuilder b(2, /*functional=*/true);
  b.LoadArg(0, 0);
  size_t jz = b.Jz(0);
  b.LoadArg(1, 1);
  b.Ret(1);
  b.PatchJumpTarget(jz);
  b.RetImm(0x2a);
  return std::move(b).Build();
}

std::vector<GoldenCase> BuildCorpus() {
  std::vector<GoldenCase> cases;

  // --- dispatch stubs -----------------------------------------------------
  {
    StubSpec spec;
    spec.num_args = 2;
    BindingSpec b;
    b.handler = Native(kHandlerAddr);
    spec.bindings.push_back(b);
    AddStub(cases, "stub_single_native", spec);
    spec.optimize = false;
    AddStub(cases, "stub_single_native_noopt", spec);
  }
  {
    StubSpec spec;
    spec.num_args = 2;
    BindingSpec b;
    b.guards.push_back(Native(kGuardAddr));
    b.handler = Native(kHandlerAddr);
    spec.bindings.push_back(b);
    AddStub(cases, "stub_native_guard", spec);
  }
  {
    StubSpec spec;
    spec.num_args = 2;
    BindingSpec b;
    CallableSpec guard;
    Program prog = ArgEqGuard();
    guard.prog = &prog;
    b.guards.push_back(guard);
    b.handler = Native(kHandlerAddr);
    spec.bindings.push_back(b);
    AddStub(cases, "stub_inline_micro_guard", spec);
  }
  {
    StubSpec spec;
    spec.num_args = 2;
    spec.policy = ResultPolicy::kLast;
    BindingSpec b;
    CallableSpec handler;
    Program prog = AddHandler();
    handler.prog = &prog;
    b.handler = handler;
    spec.bindings.push_back(b);
    AddStub(cases, "stub_inline_micro_handler", spec);
  }
  {
    StubSpec spec;
    spec.num_args = 2;
    BindingSpec b;
    CallableSpec guard = Native(kGuardAddr);
    guard.closure = reinterpret_cast<void*>(kClosureAddr);
    guard.closure_form = true;
    b.guards.push_back(guard);
    b.handler = Native(kHandlerAddr);
    spec.bindings.push_back(b);
    AddStub(cases, "stub_closure_guard", spec);
  }
  {
    StubSpec spec;
    spec.num_args = 2;
    BindingSpec b;
    b.handler = Native(kHandlerAddr);
    b.byref_params.push_back(1);
    spec.bindings.push_back(b);
    AddStub(cases, "stub_byref_param", spec);
  }
  {
    StubSpec spec;
    spec.num_args = 1;
    spec.policy = ResultPolicy::kOr;
    spec.result_is_bool = true;
    BindingSpec b1;
    b1.handler = Native(kHandlerAddr);
    BindingSpec b2;
    b2.handler = Native(kGuardAddr);
    spec.bindings.push_back(b1);
    spec.bindings.push_back(b2);
    AddStub(cases, "stub_policy_or_bool", spec);
  }
  {
    StubSpec spec;
    spec.num_args = 1;
    spec.policy = ResultPolicy::kSum;
    BindingSpec b1;
    b1.handler = Native(kHandlerAddr);
    BindingSpec b2;
    b2.handler = Native(kGuardAddr);
    spec.bindings.push_back(b1);
    spec.bindings.push_back(b2);
    AddStub(cases, "stub_policy_sum", spec);
  }
  {
    // Guard decision tree, 3 cases: EmitTreeSearch stays linear.
    StubSpec spec;
    spec.num_args = 1;
    for (int i = 0; i < 3; ++i) {
      BindingSpec b;
      b.handler = Native(kHandlerAddr + static_cast<uint64_t>(i) * 0x100);
      spec.bindings.push_back(b);
    }
    StubTree tree;
    tree.arg = 0;
    tree.offset = 4;
    tree.width = 2;
    tree.mask = 0x0fff;  // narrower than the width: exercises the and
    tree.cases = {TreeCase{0x10, 2}, TreeCase{0x20, 0}, TreeCase{0x30, 1}};
    spec.tree = tree;
    AddStub(cases, "stub_tree_linear", spec);
  }
  {
    // 5 cases: binary search with a pivot compare, plus one value too wide
    // for a sign-extended imm32 (r11 temp form).
    StubSpec spec;
    spec.num_args = 1;
    for (int i = 0; i < 5; ++i) {
      BindingSpec b;
      b.handler = Native(kHandlerAddr + static_cast<uint64_t>(i) * 0x100);
      spec.bindings.push_back(b);
    }
    StubTree tree;
    tree.arg = 0;
    tree.offset = 0;
    tree.width = 8;
    tree.mask = ~0ull;
    tree.cases = {TreeCase{0x10, 4}, TreeCase{0x20, 3}, TreeCase{0x30, 2},
                  TreeCase{0x40, 1}, TreeCase{0x8877665544332211ull, 0}};
    spec.tree = tree;
    AddStub(cases, "stub_tree_binary", spec);
  }

  // --- standalone compiled micro-programs (guard JIT bodies) --------------
  AddMicro(cases, "micro_arg_eq", ArgEqGuard());
  AddMicro(cases, "micro_arg_eq_noopt", ArgEqGuard(), /*optimize=*/false);
  AddMicro(cases, "micro_select", SelectProgram());
  AddMicro(cases, "micro_field_mask",
           spin::micro::GuardArgFieldEq(/*num_args=*/2, /*arg=*/0,
                                        /*offset=*/8, /*width=*/4,
                                        /*mask=*/0xff, /*value=*/0x2a));
  AddMicro(cases, "micro_global_load",
           std::move(ProgramBuilder(0, /*functional=*/true)
                         .LoadGlobal(
                             0, reinterpret_cast<const void*>(kGlobalAddr), 8)
                         .LoadImm(1, 0x2a)
                         .CmpEq(2, 0, 1)
                         .Ret(2))
               .Build());
  return cases;
}

std::string Render(const std::vector<GoldenCase>& cases) {
  std::string out;
  for (const GoldenCase& c : cases) {
    out += "== " + c.name + " ==\n";
    std::string listing;
    if (!spin::testdisasm::Disassemble(c.bytes.data(), c.bytes.size(),
                                       &listing)) {
      Fail(c.name + ": emitted bytes the test disassembler cannot decode "
                    "(new encoder output needs a case in tests/x86_disasm.h)");
    }
    out += listing;
    out += "\n";
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool dump = argc > 1 && std::strcmp(argv[1], "--dump") == 0;
  if (!spin::codegen::CodegenAvailable()) {
    std::fprintf(stderr,
                 "codegen unavailable on this host/build; golden corpus "
                 "skipped\n");
    return 0;
  }
  std::vector<GoldenCase> cases = BuildCorpus();
  std::string actual = Render(cases);
  if (dump) {
    std::fwrite(actual.data(), 1, actual.size(), stdout);
    return g_failures == 0 ? 0 : 1;
  }

  std::string path = std::string(SPIN_GOLDEN_DIR) + "/stubs.golden";
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    Fail("cannot open golden file " + path +
         " (generate with: python3 tools/update_golden.py)");
    return 1;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  std::string expected = ss.str();

  if (expected != actual) {
    // Report the first diverging line with context.
    std::istringstream ea(expected), aa(actual);
    std::string el, al;
    size_t line = 0;
    while (true) {
      bool eok = static_cast<bool>(std::getline(ea, el));
      bool aok = static_cast<bool>(std::getline(aa, al));
      ++line;
      if (!eok && !aok) {
        break;
      }
      if (!eok || !aok || el != al) {
        std::fprintf(stderr,
                     "golden mismatch at line %zu:\n  golden: %s\n  "
                     "actual: %s\n",
                     line, eok ? el.c_str() : "<eof>",
                     aok ? al.c_str() : "<eof>");
        break;
      }
    }
    Fail(
        "emitted code drifted from tests/golden/stubs.golden; if the "
        "change is intentional, regenerate with tools/update_golden.py "
        "and review the diff");
  }
  if (g_failures == 0) {
    std::printf("golden corpus: %zu cases OK\n", cases.size());
    return 0;
  }
  return 1;
}
