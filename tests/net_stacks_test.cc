// Pluggable TCP stacks: registry, per-stack policy units over a mock
// driver, authorizer-gated selection, and hot-swap stream integrity.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/net/compress.h"
#include "src/net/host.h"
#include "src/net/stacks/tcp_stack.h"
#include "src/net/tcp.h"
#include "src/sim/simulator.h"

namespace spin {
namespace net {
namespace {

constexpr uint64_t kRto = 50'000'000;  // 50 ms

// Records every mechanical action a stack requests, no network attached.
class MockDriver : public TcpStackDriver {
 public:
  void SendNewSegment(TcpConn& conn, const std::string& payload) override {
    conn.flight.push_back(TcpSegment{
        next_seq_, payload, conn.sim != nullptr ? conn.sim->now_ns() : 0,
        1});
    conn.flight_bytes += payload.size();
    next_seq_ += static_cast<uint32_t>(payload.size());
    ++sent;
  }
  void Retransmit(TcpConn& conn, TcpSegment& segment) override {
    segment.sent_at_ns = conn.sim != nullptr ? conn.sim->now_ns() : 0;
    ++segment.transmissions;
    retransmitted.push_back(segment.seq);
  }
  void Abort(TcpConn&) override { aborted = true; }

  int sent = 0;
  std::vector<uint32_t> retransmitted;
  bool aborted = false;

 private:
  uint32_t next_seq_ = 0;
};

class StackUnitTest : public ::testing::Test {
 protected:
  StackUnitTest() {
    RegisterBuiltinTcpStacks();
    conn_.driver = &driver_;
    conn_.sim = &sim_;
    conn_.rto_ns = kRto;
  }

  std::unique_ptr<TcpStack> Bind(const std::string& name) {
    auto stack = TcpStackRegistry::Global().Create(name);
    EXPECT_NE(stack, nullptr);
    stack->OnBind(conn_);
    return stack;
  }

  // Appends `bytes` of application data and lets the stack pump it.
  void Offer(TcpStack& stack, size_t bytes) {
    conn_.pending.append(std::string(bytes, 'x'));
    stack.OnSendReady(conn_);
  }

  // Moves the virtual clock to `ns` (Run alone does not advance past the
  // last queued event).
  void AdvanceTo(uint64_t ns) {
    sim_.At(ns, [] {});
    sim_.Run();
  }

  sim::Simulator sim_;
  MockDriver driver_;
  TcpConn conn_;
};

TEST(StackRegistryTest, BuiltinsAreRegistered) {
  RegisterBuiltinTcpStacks();
  std::vector<std::string> names = TcpStackRegistry::Global().Names();
  for (const char* expected : {"stop_and_wait", "reno", "rack_lite"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  auto stack = TcpStackRegistry::Global().Create("reno");
  ASSERT_NE(stack, nullptr);
  EXPECT_STREQ(stack->name(), "reno");
  EXPECT_EQ(TcpStackRegistry::Global().Create("cubic"), nullptr);
}

TEST_F(StackUnitTest, StopAndWaitSendsUnlimitedAndRetransmitsWholeFlight) {
  auto stack = Bind("stop_and_wait");
  Offer(*stack, 10 * kTcpMss);
  EXPECT_EQ(driver_.sent, 10) << "no congestion window: all segments go";
  stack->OnTimer(conn_, sim_.now_ns());
  EXPECT_EQ(driver_.retransmitted.size(), 10u) << "go-back-N on RTO";
  EXPECT_EQ(conn_.backoff, 1u);
}

TEST_F(StackUnitTest, StopAndWaitBacksOffExponentiallyThenAborts) {
  auto stack = Bind("stop_and_wait");
  conn_.max_retries = 3;
  Offer(*stack, 100);
  uint64_t previous_gap = 0;
  for (uint32_t round = 1; round <= 3; ++round) {
    stack->OnTimer(conn_, sim_.now_ns());
    ASSERT_FALSE(driver_.aborted);
    uint64_t gap = conn_.timer_deadline_ns - sim_.now_ns();
    EXPECT_GT(gap, previous_gap) << "deadline must back off each round";
    previous_gap = gap;
  }
  stack->OnTimer(conn_, sim_.now_ns());
  EXPECT_TRUE(driver_.aborted) << "retry budget exhausted";
}

TEST_F(StackUnitTest, AckResetsBackoffAndClearsFlight) {
  auto stack = Bind("stop_and_wait");
  Offer(*stack, 2 * kTcpMss);
  stack->OnTimer(conn_, sim_.now_ns());
  EXPECT_EQ(conn_.backoff, 1u);
  stack->OnAck(conn_, static_cast<uint32_t>(2 * kTcpMss));
  EXPECT_EQ(conn_.backoff, 0u);
  EXPECT_TRUE(conn_.flight.empty());
  EXPECT_EQ(conn_.timer_deadline_ns, 0u) << "nothing in flight: timer idle";
}

TEST_F(StackUnitTest, RenoRespectsInitialWindow) {
  auto stack = Bind("reno");
  EXPECT_EQ(conn_.cwnd_bytes, 10 * kTcpMss);
  Offer(*stack, 40 * kTcpMss);
  EXPECT_EQ(driver_.sent, 10) << "initial window caps the first flight";
}

TEST_F(StackUnitTest, RenoSlowStartThenCongestionAvoidance) {
  auto stack = Bind("reno");
  Offer(*stack, 40 * kTcpMss);
  size_t before = conn_.cwnd_bytes;
  stack->OnAck(conn_, static_cast<uint32_t>(4 * kTcpMss));
  EXPECT_EQ(conn_.cwnd_bytes, before + 4 * kTcpMss)
      << "slow start grows cwnd by bytes acked";
  // Force congestion avoidance: ssthresh below cwnd.
  conn_.ssthresh_bytes = conn_.cwnd_bytes / 2;
  before = conn_.cwnd_bytes;
  stack->OnAck(conn_, static_cast<uint32_t>(8 * kTcpMss));
  EXPECT_LE(conn_.cwnd_bytes - before, kTcpMss)
      << "congestion avoidance grows at most ~MSS per ACK";
}

TEST_F(StackUnitTest, RenoFastRetransmitOnThirdDupAck) {
  auto stack = Bind("reno");
  Offer(*stack, 8 * kTcpMss);
  ASSERT_EQ(driver_.sent, 8);
  size_t window_before = conn_.cwnd_bytes;
  stack->OnAck(conn_, 0);
  stack->OnAck(conn_, 0);
  EXPECT_TRUE(driver_.retransmitted.empty()) << "two dup-ACKs: hold fire";
  stack->OnAck(conn_, 0);
  EXPECT_EQ(driver_.retransmitted.size(), 8u)
      << "third dup-ACK resends the flight (go-back-N, no SACK)";
  EXPECT_TRUE(conn_.in_recovery);
  EXPECT_LT(conn_.cwnd_bytes, window_before) << "window halves on loss";
  size_t resent_before = driver_.retransmitted.size();
  stack->OnAck(conn_, 0);
  stack->OnAck(conn_, 0);
  stack->OnAck(conn_, 0);
  EXPECT_EQ(driver_.retransmitted.size(), resent_before)
      << "one retransmission burst per recovery episode";
}

TEST_F(StackUnitTest, RenoRtoCollapsesWindowAndResendsFlight) {
  auto stack = Bind("reno");
  Offer(*stack, 6 * kTcpMss);
  stack->OnTimer(conn_, sim_.now_ns());
  EXPECT_EQ(conn_.cwnd_bytes, kTcpMss) << "RTO restarts slow start";
  EXPECT_EQ(driver_.retransmitted.size(), 6u)
      << "receiver holds no out-of-order data: the whole flight goes again";
}

TEST_F(StackUnitTest, RackToleratesReorderingWithinWindow) {
  auto stack = Bind("rack_lite");
  Offer(*stack, 4 * kTcpMss);
  // Dup-ACKs arrive immediately — before reo_wnd (rto/8) has elapsed
  // since the front segment's transmission. RACK must hold fire where
  // reno would already have retransmitted.
  stack->OnAck(conn_, 0);
  stack->OnAck(conn_, 0);
  stack->OnAck(conn_, 0);
  EXPECT_TRUE(driver_.retransmitted.empty())
      << "reordering tolerance: no retransmit inside reo_wnd";
  // Past the reordering window the same dup-ACK evidence means loss.
  AdvanceTo(kRto / 8 + 1);
  stack->OnAck(conn_, 0);
  stack->OnAck(conn_, 0);
  EXPECT_EQ(driver_.retransmitted.size(), 4u)
      << "dup-ACKs beyond reo_wnd repair the flight";
}

TEST_F(StackUnitTest, RackDetectsLossByDeliveryTimeOrder) {
  auto stack = Bind("rack_lite");
  Offer(*stack, 2 * kTcpMss);  // s1 and s2, both sent at t=0
  // s1 is repaired by a later retransmission while s2's original remains
  // outstanding: restamp s1 well past reo_wnd, as the RTO path would.
  AdvanceTo(kRto);
  driver_.Retransmit(conn_, conn_.flight.front());
  driver_.retransmitted.clear();
  // The ACK for the repaired s1 carries a send timestamp newer than
  // s2's by a full RTO — time order, not dup-ACK count, convicts s2.
  stack->OnAck(conn_, static_cast<uint32_t>(kTcpMss));
  ASSERT_FALSE(driver_.retransmitted.empty());
  EXPECT_EQ(driver_.retransmitted.back(), kTcpMss)
      << "the stale in-flight segment is resent";
  EXPECT_TRUE(conn_.in_recovery);
}

TEST_F(StackUnitTest, RackRtoCollapsesWindowAndResendsFlight) {
  auto stack = Bind("rack_lite");
  Offer(*stack, 5 * kTcpMss);
  stack->OnTimer(conn_, sim_.now_ns());
  EXPECT_EQ(conn_.cwnd_bytes, kTcpMss);
  EXPECT_EQ(driver_.retransmitted.size(), 5u);
}

TEST_F(StackUnitTest, HotSwapAdoptsWindowState) {
  auto reno = Bind("reno");
  Offer(*reno, 20 * kTcpMss);
  reno->OnAck(conn_, static_cast<uint32_t>(10 * kTcpMss));  // slow start
  size_t window = conn_.cwnd_bytes;
  ASSERT_GT(window, 10 * kTcpMss) << "precondition: window grew";
  auto rack = Bind("rack_lite");
  EXPECT_EQ(conn_.cwnd_bytes, window)
      << "a hot-swap adopts the incumbent's window, no restart";
}

// --- Endpoints over a wire: selection policy and swap integrity ------------

// Deterministic position-derived pattern: catches reordering, duplication,
// and holes anywhere in a delivered stream.
std::string Pattern(size_t offset, size_t n) {
  std::string s(n, '\0');
  for (size_t i = 0; i < n; ++i) {
    s[i] = static_cast<char>('A' + (offset + i) % 31);
  }
  return s;
}

class StackWireTest : public ::testing::Test {
 protected:
  StackWireTest() { wire_.Attach(a_, b_); }

  Dispatcher dispatcher_;
  sim::Simulator sim_;
  Wire wire_{&sim_, sim::LinkModel{}};
  Host a_{"hostA", 0x0a000001, &dispatcher_};
  Host b_{"hostB", 0x0a000002, &dispatcher_};
};

TEST_F(StackWireTest, EnableRetransmitBindsStopAndWait) {
  TcpEndpoint client(a_, 5555);
  client.EnableRetransmit(&sim_, kRto);
  EXPECT_EQ(client.stack_name(), "stop_and_wait");
}

TEST_F(StackWireTest, AuthorizerDeniesInstallOffTheAllowList) {
  StackAuthorizer authorizer({"reno", "rack_lite"});
  authorizer.Attach(a_);
  TcpEndpoint client(a_, 5555);
  EXPECT_FALSE(client.UseStack(&sim_, "stop_and_wait", kRto));
  EXPECT_EQ(client.stack_name(), "");
  EXPECT_EQ(authorizer.denied(), 1u)
      << "one denial: the first install attempt is rejected outright";
  EXPECT_TRUE(client.UseStack(&sim_, "reno", kRto));
  EXPECT_EQ(client.stack_name(), "reno");
  EXPECT_GE(authorizer.granted(), 1u);
}

TEST_F(StackWireTest, UnknownStackNameRejectedWithoutSideEffects) {
  TcpEndpoint client(a_, 5555);
  ASSERT_TRUE(client.UseStack(&sim_, "reno", kRto));
  EXPECT_FALSE(client.UseStack(&sim_, "no_such_stack", kRto));
  EXPECT_EQ(client.stack_name(), "reno") << "incumbent keeps serving";
}

// The PR's acceptance gate: a mid-run authorized hot-swap plus one denied
// swap, under loss, without dropping or reordering a single delivered
// byte on the connection.
TEST_F(StackWireTest, HotSwapUnderLossPreservesByteStream) {
  StackAuthorizer authorizer({"reno", "rack_lite"});
  authorizer.Attach(a_);
  authorizer.Attach(b_);

  std::string delivered;
  TcpEndpoint server(b_, 80);
  server.Listen([&](const std::string& chunk) { delivered += chunk; });
  TcpEndpoint client(a_, 5555);
  ASSERT_TRUE(client.UseStack(&sim_, "reno", kRto));
  client.Connect(b_.ip(), 80, nullptr);
  sim_.Run();
  ASSERT_TRUE(client.established());

  wire_.SetRandomLoss(0.05, /*seed=*/1234);
  std::string page = Pattern(0, 256 * 1024);
  client.Send(page);

  // While the transfer is in flight: one granted swap, one denied swap.
  bool swapped = false;
  bool denied = false;
  sim_.After(5'000'000, [&] {
    swapped = client.UseStack(&sim_, "rack_lite", kRto);
  });
  sim_.After(10'000'000, [&] {
    denied = !client.UseStack(&sim_, "stop_and_wait", kRto);
  });
  sim_.Run();

  EXPECT_TRUE(swapped) << "rack_lite is on the allow list";
  EXPECT_TRUE(denied) << "stop_and_wait is not";
  EXPECT_EQ(client.stack_name(), "rack_lite")
      << "denied swap leaves the incumbent bound";
  ASSERT_EQ(delivered.size(), page.size());
  EXPECT_EQ(delivered, page)
      << "no byte dropped, duplicated, or reordered across the swaps";
  EXPECT_GT(wire_.frames_lost(), 0u) << "the wire really was lossy";
}

TEST_F(StackWireTest, CompressionComposesWithEveryStack) {
  RegisterBuiltinTcpStacks();
  for (const std::string& name : TcpStackRegistry::Global().Names()) {
    Dispatcher dispatcher;
    sim::Simulator sim;
    Wire wire(&sim, sim::LinkModel{});
    Host a("a-" + name, 0x0a000001, &dispatcher);
    Host b("b-" + name, 0x0a000002, &dispatcher);
    wire.Attach(a, b);
    CompressionExtension compression(a, b);

    std::string delivered;
    TcpEndpoint server(b, 80);
    server.Listen([&](const std::string& chunk) { delivered += chunk; });
    TcpEndpoint client(a, 5555);
    ASSERT_TRUE(client.UseStack(&sim, name, kRto));
    client.Connect(b.ip(), 80, nullptr);
    sim.Run();
    ASSERT_TRUE(client.established()) << name;

    wire.SetLossPattern(13);
    std::string page(40 * 1024, 'Z');  // run-heavy: compresses hard
    client.Send(page);
    sim.Run();
    EXPECT_EQ(delivered, page) << name;
    EXPECT_GT(compression.compressed(), 0u) << name;
    // Frames dropped by the wire are compressed but never decompressed,
    // so under loss the counters need not match exactly.
    EXPECT_GT(compression.decompressed(), 0u) << name;
    EXPECT_LE(compression.decompressed(), compression.compressed()) << name;
  }
}

TEST_F(StackWireTest, RetryExhaustionAbortsToDeadState) {
  TcpEndpoint server(b_, 80);
  server.Listen(nullptr);
  TcpEndpoint client(a_, 5555);
  ASSERT_TRUE(client.UseStack(&sim_, "reno", /*rto_ns=*/1'000'000));
  client.SetMaxRetries(3);
  client.Connect(b_.ip(), 80, nullptr);
  sim_.Run();
  ASSERT_TRUE(client.established());

  // Black-hole the wire for far longer than the full backoff schedule.
  wire_.SetPartition(sim_.now_ns(), sim_.now_ns() + 3'600'000'000'000ull);
  client.Send("doomed");
  sim_.Run();
  EXPECT_TRUE(client.dead()) << "retry budget exhausted surfaces as kDead";
  EXPECT_EQ(client.state(), TcpEndpoint::State::kDead);
}

}  // namespace
}  // namespace net
}  // namespace spin
