// Remote event dispatch tests: proxies, the exporter, marshaling, and the
// failure model (retries, at-most-once, timeouts, dead proxies).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <tuple>

#include "src/net/host.h"
#include "src/obs/export.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"
#include "src/remote/exporter.h"
#include "src/remote/proxy.h"
#include "src/sim/simulator.h"

namespace spin {
namespace remote {
namespace {

class RemoteTest : public ::testing::Test {
 protected:
  RemoteTest() { wire_.Attach(client_host_, server_host_); }

  ProxyOptions Opts(uint16_t local_port) {
    ProxyOptions opts;
    opts.remote_ip = server_host_.ip();
    opts.local_port = local_port;
    return opts;
  }

  Dispatcher dispatcher_;
  sim::Simulator sim_;
  net::Wire wire_{&sim_, sim::LinkModel{}};
  net::Host client_host_{"client", 0x0a000001, &dispatcher_};
  net::Host server_host_{"server", 0x0a000002, &dispatcher_};
  Exporter exporter_{server_host_};
};

// --- Marshaling --------------------------------------------------------------

TEST(RemoteWireFormat, RequestRoundTrip) {
  RequestMsg msg;
  msg.kind = RaiseKind::kSync;
  msg.request_id = 0x0123456789abcdefull;
  msg.token = 0xfeedfacecafebeefull;
  msg.event_name = "Fs.Read";
  msg.params = {WireParam{static_cast<uint8_t>(TypeClass::kInt32), false},
                WireParam{static_cast<uint8_t>(TypeClass::kUInt64), true}};
  msg.args = {static_cast<uint64_t>(-7), 0xdeadbeefcafef00dull};

  RequestMsg decoded;
  ASSERT_TRUE(DecodeRequest(EncodeRequest(msg), &decoded));
  EXPECT_EQ(decoded.kind, msg.kind);
  EXPECT_EQ(decoded.request_id, msg.request_id);
  EXPECT_EQ(decoded.token, msg.token);
  EXPECT_EQ(decoded.event_name, msg.event_name);
  EXPECT_EQ(decoded.params, msg.params);
  EXPECT_EQ(decoded.args, msg.args);
}

TEST(RemoteWireFormat, BindMessagesRoundTrip) {
  BindRequestMsg req;
  req.bind_id = 77;
  req.event_name = "Vault.Op";
  req.module_name = "Remote.Proxy.Vault.Op";
  req.credential = "open sesame";
  req.params = {WireParam{static_cast<uint8_t>(TypeClass::kUInt64), false}};
  BindRequestMsg req_out;
  ASSERT_TRUE(DecodeBindRequest(EncodeBindRequest(req), &req_out));
  EXPECT_EQ(req_out.bind_id, req.bind_id);
  EXPECT_EQ(req_out.event_name, req.event_name);
  EXPECT_EQ(req_out.module_name, req.module_name);
  EXPECT_EQ(req_out.credential, req.credential);
  EXPECT_EQ(req_out.params, req.params);

  BindReplyMsg rep;
  rep.status = WireStatus::kOk;
  rep.bind_id = 77;
  rep.token = 0x1122334455667788ull;
  rep.guards.push_back(std::move(micro::ProgramBuilder(1, /*functional=*/true)
                                     .LoadArg(0, 0)
                                     .LoadImm(1, 100)
                                     .CmpLtU(2, 0, 1)
                                     .Ret(2))
                           .Build());
  BindReplyMsg rep_out;
  ASSERT_TRUE(DecodeBindReply(EncodeBindReply(rep), &rep_out));
  EXPECT_EQ(rep_out.status, rep.status);
  EXPECT_EQ(rep_out.bind_id, rep.bind_id);
  EXPECT_EQ(rep_out.token, rep.token);
  ASSERT_EQ(rep_out.guards.size(), 1u);
  EXPECT_EQ(rep_out.guards[0].num_args(), 1);
  EXPECT_TRUE(rep_out.guards[0].functional());
  ASSERT_EQ(rep_out.guards[0].code().size(), rep.guards[0].code().size());
  for (size_t i = 0; i < rep.guards[0].code().size(); ++i) {
    const micro::Insn& a = rep.guards[0].code()[i];
    const micro::Insn& b = rep_out.guards[0].code()[i];
    EXPECT_EQ(a.op, b.op);
    EXPECT_EQ(a.dst, b.dst);
    EXPECT_EQ(a.a, b.a);
    EXPECT_EQ(a.b, b.b);
    EXPECT_EQ(a.imm, b.imm);
  }

  RevokeMsg rev;
  rev.token = 0xdeadbeefull;
  rev.event_name = "Vault.Op";
  RevokeMsg rev_out;
  ASSERT_TRUE(DecodeRevoke(EncodeRevoke(rev), &rev_out));
  EXPECT_EQ(rev_out.token, rev.token);
  EXPECT_EQ(rev_out.event_name, rev.event_name);
}

TEST(RemoteWireFormat, AddressedGuardsDoNotCrossTheWire) {
  // A guard that dereferences exporter memory is meaningless in the
  // proxy's address space: WireableGuard refuses it, and the bind-reply
  // decoder's admission verifier is the matching trust boundary on the
  // receiving side. The reply is well-framed, so the decode itself
  // succeeds and the refusal is typed — the program never reaches an
  // evaluator (guards cleared) and the proxy can report kBadGuard
  // instead of timing out on a silently dropped datagram.
  static uint64_t global = 7;
  micro::Program addressed = micro::GuardGlobalEq(&global, 7);
  EXPECT_FALSE(WireableGuard(addressed));
  EXPECT_TRUE(WireableGuard(micro::ReturnConst(1, 1, /*functional=*/true)));

  BindReplyMsg rep;
  rep.status = WireStatus::kOk;
  rep.token = 1;
  rep.guards.push_back(addressed);
  BindReplyMsg out;
  ASSERT_TRUE(DecodeBindReply(EncodeBindReply(rep), &out));
  EXPECT_EQ(out.guard_verify, micro::VerifyStatus::kAddressOp);
  EXPECT_EQ(out.guard_verify_index, 0);
  EXPECT_TRUE(out.guards.empty());
}

TEST(RemoteWireFormat, ReplyRoundTrip) {
  ReplyMsg msg;
  msg.status = WireStatus::kException;
  msg.request_id = 42;
  msg.result = 99;
  msg.byref = {1, 2, 3};
  msg.error = "handler threw";

  ReplyMsg decoded;
  ASSERT_TRUE(DecodeReply(EncodeReply(msg), &decoded));
  EXPECT_EQ(decoded.status, msg.status);
  EXPECT_EQ(decoded.request_id, msg.request_id);
  EXPECT_EQ(decoded.result, msg.result);
  EXPECT_EQ(decoded.byref, msg.byref);
  EXPECT_EQ(decoded.error, msg.error);
}

TEST(RemoteWireFormat, MalformedDatagramsRejected) {
  RequestMsg req;
  req.event_name = "X";
  std::string wire = EncodeRequest(req);
  RequestMsg out;
  EXPECT_TRUE(DecodeRequest(wire, &out));
  // Truncations at every length are rejected, never mis-read.
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_FALSE(DecodeRequest(wire.substr(0, cut), &out));
  }
  // Trailing garbage is rejected too.
  EXPECT_FALSE(DecodeRequest(wire + "z", &out));
  std::string bad_magic = wire;
  bad_magic[0] = 'X';
  EXPECT_FALSE(DecodeRequest(bad_magic, &out));
  ReplyMsg reply_out;
  EXPECT_FALSE(DecodeReply(wire, &reply_out));  // wrong message type
}

static int64_t MixHandler(int32_t a, uint32_t b, int64_t c, uint64_t d,
                          bool e, double f) {
  return static_cast<int64_t>(a) + b + c + static_cast<int64_t>(d & 0xff) +
         (e ? 1000 : 0) + static_cast<int64_t>(f);
}

TEST_F(RemoteTest, SyncRaiseCarriesAllScalarShapes) {
  Event<int64_t(int32_t, uint32_t, int64_t, uint64_t, bool, double)>
      server_ev("Math.Mix", nullptr, nullptr, &dispatcher_);
  dispatcher_.InstallHandler(server_ev, &MixHandler);
  exporter_.Export(server_ev);

  Event<int64_t(int32_t, uint32_t, int64_t, uint64_t, bool, double)>
      client_ev("Math.Mix", nullptr, nullptr, &dispatcher_);
  EventProxy proxy(client_host_, &sim_, client_ev, Opts(9001));

  int64_t got = client_ev.Raise(-5, 7u, -1'000'000'000'000ll,
                                0xffffffffffffff42ull, true, 2.5);
  EXPECT_EQ(got, MixHandler(-5, 7u, -1'000'000'000'000ll,
                            0xffffffffffffff42ull, true, 2.5));
  EXPECT_EQ(proxy.retries(), 0u);
  EXPECT_GT(proxy.roundtrip_hist().Count(), 0u);
}

static void DoubleVarHandler(uint64_t& v) { v = v * 2 + 1; }
static bool ScaleVarHandler(int32_t n, double& x) {
  x *= n;
  return x > 10.0;
}

TEST_F(RemoteTest, VarParametersCopyInAndOut) {
  Event<void(uint64_t&)> server_ev("Var.Bump", nullptr, nullptr,
                                   &dispatcher_);
  dispatcher_.InstallHandler(server_ev, &DoubleVarHandler);
  exporter_.Export(server_ev);

  Event<void(uint64_t&)> client_ev("Var.Bump", nullptr, nullptr,
                                   &dispatcher_);
  EventProxy proxy(client_host_, &sim_, client_ev, Opts(9002));

  uint64_t v = 20;
  client_ev.Raise(v);
  EXPECT_EQ(v, 41u);  // mutated on the server, copied back out

  Event<bool(int32_t, double&)> server_scale("Var.Scale", nullptr, nullptr,
                                             &dispatcher_);
  dispatcher_.InstallHandler(server_scale, &ScaleVarHandler);
  exporter_.Export(server_scale);
  Event<bool(int32_t, double&)> client_scale("Var.Scale", nullptr, nullptr,
                                             &dispatcher_);
  EventProxy scale_proxy(client_host_, &sim_, client_scale, Opts(9003));

  double x = 3.25;
  EXPECT_TRUE(client_scale.Raise(4, x));
  EXPECT_DOUBLE_EQ(x, 13.0);
}

TEST_F(RemoteTest, UnmarshalableSignaturesRejectedAtInstall) {
  // Pointer parameter: no address space crosses the wire.
  Event<bool(net::Packet*)> ptr_ev("Bad.Pointer", nullptr, nullptr,
                                   &dispatcher_);
  EXPECT_THROW(
      { EventProxy p(client_host_, &sim_, ptr_ev, Opts(9004)); },
      RemoteError);
  EXPECT_THROW(exporter_.Export(ptr_ev), RemoteError);

  // VAR parameter whose pointee is not a wire scalar.
  Event<void(net::Packet&)> ref_ev("Bad.Ref", nullptr, nullptr,
                                   &dispatcher_);
  try {
    EventProxy p(client_host_, &sim_, ref_ev, Opts(9004));
    FAIL() << "struct VAR parameter must not marshal";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.status(), RemoteStatus::kUnmarshalable);
  }

  // Fire-and-forget cannot return results or take VAR parameters.
  Event<int32_t(int32_t)> result_ev("Bad.AsyncResult", nullptr, nullptr,
                                    &dispatcher_);
  ProxyOptions async_opts = Opts(9004);
  async_opts.kind = RaiseKind::kAsync;
  EXPECT_THROW(
      { EventProxy p(client_host_, &sim_, result_ev, async_opts); },
      RemoteError);
  Event<void(uint64_t&)> var_ev("Bad.AsyncVar", nullptr, nullptr,
                                &dispatcher_);
  EXPECT_THROW(
      { EventProxy p(client_host_, &sim_, var_ev, async_opts); },
      RemoteError);

  // A rejected install leaves no binding behind.
  EXPECT_EQ(ptr_ev.handler_count(), 0u);
  EXPECT_EQ(ref_ev.handler_count(), 0u);
}

// --- Failure model -----------------------------------------------------------

struct ThrowCtx {
  int calls = 0;
};
static int32_t ThrowingHandler(ThrowCtx* ctx, int32_t v) {
  ++ctx->calls;
  if (v < 0) {
    throw std::runtime_error("negative input");
  }
  return v * 2;
}

TEST_F(RemoteTest, RemoteExceptionsPropagateToTheRaiser) {
  Event<int32_t(int32_t)> server_ev("Throwing.Op", nullptr, nullptr,
                                    &dispatcher_);
  ThrowCtx ctx;
  dispatcher_.InstallHandler(server_ev, &ThrowingHandler, &ctx,
                             {.may_throw = true});
  exporter_.Export(server_ev);
  Event<int32_t(int32_t)> client_ev("Throwing.Op", nullptr, nullptr,
                                    &dispatcher_);
  EventProxy proxy(client_host_, &sim_, client_ev, Opts(9005));

  EXPECT_EQ(client_ev.Raise(21), 42);
  try {
    client_ev.Raise(-1);
    FAIL() << "remote exception must propagate";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.status(), RemoteStatus::kRemoteException);
    EXPECT_NE(std::string(e.what()).find("negative input"),
              std::string::npos);
  }
  EXPECT_EQ(ctx.calls, 2);
  EXPECT_EQ(exporter_.exceptions(), 1u);
}

struct CountCtx {
  int calls = 0;
};
static uint64_t CountingHandler(CountCtx* ctx, uint64_t v) {
  ++ctx->calls;
  return v + 1;
}

TEST_F(RemoteTest, AtMostOnceUnderDuplicatedDelivery) {
  Event<uint64_t(uint64_t)> server_ev("Once.Op", nullptr, nullptr,
                                      &dispatcher_);
  CountCtx ctx;
  dispatcher_.InstallHandler(server_ev, &CountingHandler, &ctx);
  exporter_.Export(server_ev);
  Event<uint64_t(uint64_t)> client_ev("Once.Op", nullptr, nullptr,
                                      &dispatcher_);
  EventProxy proxy(client_host_, &sim_, client_ev, Opts(9006));

  // Drop the first two replies (frames whose UDP source port is the
  // exporter's). The request arrives each time; only retransmissions of it
  // are duplicates, and the cached reply must serve them.
  int replies_seen = 0;
  wire_.SetDropHook([&](const net::Packet& p, uint64_t, uint64_t) {
    if (p.ip_proto() == net::kIpProtoUdp &&
        p.src_port() == kDefaultRemotePort) {
      return ++replies_seen <= 2;
    }
    return false;
  });

  EXPECT_EQ(client_ev.Raise(10), 11u);
  EXPECT_EQ(ctx.calls, 1) << "at-most-once: the handler ran exactly once";
  EXPECT_EQ(proxy.retries(), 2u);
  EXPECT_EQ(exporter_.dedup_hits(), 2u);
  EXPECT_EQ(exporter_.requests(), 3u);
}

TEST_F(RemoteTest, RetriesRecoverFromSeededRandomLoss) {
  Event<uint64_t(uint64_t)> server_ev("Lossy.Op", nullptr, nullptr,
                                      &dispatcher_);
  CountCtx ctx;
  dispatcher_.InstallHandler(server_ev, &CountingHandler, &ctx);
  exporter_.Export(server_ev);
  Event<uint64_t(uint64_t)> client_ev("Lossy.Op", nullptr, nullptr,
                                      &dispatcher_);
  ProxyOptions opts = Opts(9007);
  opts.max_attempts = 10;
  EventProxy proxy(client_host_, &sim_, client_ev, opts);

  wire_.SetRandomLoss(0.3, /*seed=*/1234);
  for (uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(client_ev.Raise(i), i + 1);
  }
  EXPECT_GT(proxy.retries(), 0u) << "30% loss must force retransmissions";
  EXPECT_GT(wire_.frames_lost(), 0u);
  EXPECT_EQ(proxy.timeouts(), 0u);
}

TEST_F(RemoteTest, TimeoutThrowsTypedErrorInsteadOfHanging) {
  Event<uint64_t(uint64_t)> server_ev("Gone.Op", nullptr, nullptr,
                                      &dispatcher_);
  CountCtx ctx;
  dispatcher_.InstallHandler(server_ev, &CountingHandler, &ctx);
  exporter_.Export(server_ev);
  Event<uint64_t(uint64_t)> client_ev("Gone.Op", nullptr, nullptr,
                                      &dispatcher_);
  ProxyOptions opts = Opts(9008);
  opts.max_attempts = 3;
  opts.timeout_ns = 1'000'000;
  EventProxy proxy(client_host_, &sim_, client_ev, opts);

  wire_.SetPartition(0, ~0ull);  // nothing crosses, ever
  uint64_t before_ns = sim_.now_ns();
  try {
    client_ev.Raise(1);
    FAIL() << "a partitioned raise must time out";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.status(), RemoteStatus::kTimeout);
  }
  // Backoff doubled per attempt: 1ms + 2ms + 4ms of virtual time.
  EXPECT_GE(sim_.now_ns() - before_ns, 7'000'000u);
  EXPECT_EQ(proxy.timeouts(), 1u);
  EXPECT_EQ(ctx.calls, 0);

  // The partition heals; the same proxy serves again.
  wire_.SetPartition(0, 0);
  EXPECT_EQ(client_ev.Raise(5), 6u);
}

TEST_F(RemoteTest, DeadProxyFailsFastAfterRemoteUninstall) {
  Event<uint64_t(uint64_t)> server_ev("Mortal.Op", nullptr, nullptr,
                                      &dispatcher_);
  CountCtx ctx;
  dispatcher_.InstallHandler(server_ev, &CountingHandler, &ctx);
  exporter_.Export(server_ev);
  Event<uint64_t(uint64_t)> client_ev("Mortal.Op", nullptr, nullptr,
                                      &dispatcher_);
  EventProxy proxy(client_host_, &sim_, client_ev, Opts(9009));

  EXPECT_EQ(client_ev.Raise(1), 2u);
  exporter_.Unexport(server_ev);
  EXPECT_EQ(exporter_.revoked_tokens(), 1u);
  EXPECT_EQ(exporter_.bound_clients(), 0u);

  // Unexport revoked the proxy's capability and pushed a notice; the next
  // raise pumps the simulator, the notice lands, and the raise fails with
  // the typed kRevoked error — not a hang or a retry storm.
  try {
    client_ev.Raise(2);
    FAIL() << "raising through a revoked proxy must throw";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.status(), RemoteStatus::kRevoked);
  }
  EXPECT_TRUE(proxy.dead());
  EXPECT_TRUE(proxy.revoked());
  EXPECT_EQ(proxy.retries(), 0u);
  EXPECT_EQ(proxy.revoke_notices(), 1u);

  // Subsequent raises fail fast without generating traffic.
  uint64_t frames_before = wire_.frames_offered();
  try {
    client_ev.Raise(3);
    FAIL() << "revoked proxies must stay revoked";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.status(), RemoteStatus::kRevoked);
  }
  EXPECT_EQ(wire_.frames_offered(), frames_before);
  EXPECT_EQ(proxy.dead_raises(), 2u);
  EXPECT_EQ(ctx.calls, 1);
}

// --- Asynchronous raises -----------------------------------------------------

struct SumCtx {
  std::atomic<uint64_t> sum{0};
  std::atomic<int> calls{0};
};
static void SumHandler(SumCtx* ctx, uint64_t v) {
  ctx->sum += v;
  ++ctx->calls;
}

TEST_F(RemoteTest, AsyncRaisesAreFireAndForget) {
  Event<void(uint64_t)> server_ev("Async.Op", nullptr, nullptr,
                                  &dispatcher_);
  SumCtx ctx;
  dispatcher_.InstallHandler(server_ev, &SumHandler, &ctx);
  exporter_.Export(server_ev);
  Event<void(uint64_t)> client_ev("Async.Op", nullptr, nullptr,
                                  &dispatcher_);
  ProxyOptions opts = Opts(9010);
  opts.kind = RaiseKind::kAsync;
  EventProxy proxy(client_host_, &sim_, client_ev, opts);
  // The handshake's BindReply is the only packet the client ever receives.
  const uint64_t rx_after_bind = client_host_.rx_packets();

  for (uint64_t i = 1; i <= 10; ++i) {
    client_ev.Raise(i);  // marshal runs detached on the pool
  }
  dispatcher_.pool().Drain();
  EXPECT_EQ(proxy.Flush(), 10u);
  sim_.Run();

  EXPECT_EQ(ctx.calls.load(), 10);
  EXPECT_EQ(ctx.sum.load(), 55u);
  EXPECT_EQ(exporter_.requests(), 10u);
  EXPECT_EQ(exporter_.binds(), 1u);
  // Fire-and-forget: the exporter never replied to a raise.
  EXPECT_EQ(client_host_.rx_packets(), rx_after_bind);
}

// --- Ordering across local handlers and the proxy (§2.3) ---------------------

struct OrderLog {
  std::vector<std::string> entries;
};
static void LogA(OrderLog* log, uint64_t) { log->entries.push_back("a"); }
static void LogB(OrderLog* log, uint64_t) { log->entries.push_back("b"); }
static void LogRemote(OrderLog* log, uint64_t) {
  log->entries.push_back("remote");
}

TEST_F(RemoteTest, ProxyHonorsAfterConstraintAmongLocalHandlers) {
  Event<void(uint64_t)> server_ev("Order.Op", nullptr, nullptr,
                                  &dispatcher_);
  OrderLog log;
  dispatcher_.InstallHandler(server_ev, &LogRemote, &log);
  exporter_.Export(server_ev);

  Event<void(uint64_t)> client_ev("Order.Op", nullptr, nullptr,
                                  &dispatcher_);
  BindingHandle a = dispatcher_.InstallHandler(client_ev, &LogA, &log);
  dispatcher_.InstallHandler(client_ev, &LogB, &log);
  ProxyOptions opts = Opts(9030);
  opts.order = Order{OrderKind::kAfter, a};
  EventProxy proxy(client_host_, &sim_, client_ev, opts);

  // The proxy is an ordinary binding in the event's order list: placed
  // after `a`, its (synchronous) remote dispatch runs between the locals.
  client_ev.Raise(1);
  EXPECT_EQ(log.entries,
            (std::vector<std::string>{"a", "remote", "b"}));
}

TEST_F(RemoteTest, ProxyOrderedFirstRunsBeforeLocalHandlers) {
  Event<void(uint64_t)> server_ev("Order.First.Op", nullptr, nullptr,
                                  &dispatcher_);
  OrderLog log;
  dispatcher_.InstallHandler(server_ev, &LogRemote, &log);
  exporter_.Export(server_ev);

  Event<void(uint64_t)> client_ev("Order.First.Op", nullptr, nullptr,
                                  &dispatcher_);
  dispatcher_.InstallHandler(client_ev, &LogA, &log);
  dispatcher_.InstallHandler(client_ev, &LogB, &log);
  ProxyOptions opts = Opts(9031);
  opts.order = Order{OrderKind::kFirst};
  EventProxy proxy(client_host_, &sim_, client_ev, opts);

  client_ev.Raise(1);
  EXPECT_EQ(log.entries,
            (std::vector<std::string>{"remote", "a", "b"}));
}

// --- Install-time authorization over the wire (§2.5) -------------------------

// Exporter-side authorizer: checks the wire credential, records the caller
// identity, and optionally imposes a wireable guard on the grant.
struct RemoteAuthState {
  std::string expect_credential;
  bool impose = false;
  micro::Program guard;
  int install_requests = 0;
  std::string last_module;
};

bool RemoteAuthorizer(AuthRequest& request, void* ctx) {
  auto* state = static_cast<RemoteAuthState*>(ctx);
  if (request.op != AuthOp::kInstall) {
    return true;
  }
  ++state->install_requests;
  auto* info = static_cast<const RemoteBindInfo*>(request.credentials);
  if (info == nullptr) {
    return false;
  }
  state->last_module = info->module_name;
  if (info->credential != state->expect_credential) {
    return false;
  }
  if (state->impose) {
    request.ImposeGuard(MakeImposedMicroGuard(state->guard));
  }
  return true;
}

// Guard over one by-value argument: arg0 < 100.
micro::Program ArgBelow100() {
  return std::move(micro::ProgramBuilder(/*num_args=*/1, /*functional=*/true)
                       .LoadArg(0, 0)
                       .LoadImm(1, 100)
                       .CmpLtU(2, 0, 1)
                       .Ret(2))
      .Build();
}

TEST_F(RemoteTest, DeniedBindSurfacesTypedErrorAtProxy) {
  Module authority{"Vault"};
  Event<uint64_t(uint64_t)> server_ev("Vault.Op", &authority, nullptr,
                                      &dispatcher_);
  CountCtx ctx;
  dispatcher_.InstallHandler(server_ev, &CountingHandler, &ctx);
  RemoteAuthState auth;
  auth.expect_credential = "sesame";
  dispatcher_.InstallAuthorizer(server_ev, &RemoteAuthorizer, &auth,
                                authority);
  exporter_.Export(server_ev);

  Event<uint64_t(uint64_t)> client_ev("Vault.Op", nullptr, nullptr,
                                      &dispatcher_);
  ProxyOptions bad = Opts(9101);
  bad.credential = "wrong";
  try {
    EventProxy proxy(client_host_, &sim_, client_ev, bad);
    FAIL() << "a bind the authorizer refuses must throw at the proxy";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.status(), RemoteStatus::kDenied);
  }
  // A denied install leaves nothing behind on either side.
  EXPECT_EQ(client_ev.handler_count(), 0u);
  EXPECT_EQ(exporter_.auth_denied(), 1u);
  EXPECT_EQ(exporter_.bound_clients(), 0u);
  EXPECT_EQ(ctx.calls, 0);

  // The host's default credential is picked up when the options leave it
  // empty, and the grant carries a nonzero capability token.
  client_host_.SetCredential("sesame");
  EventProxy proxy(client_host_, &sim_, client_ev, Opts(9102));
  EXPECT_NE(proxy.token(), 0u);
  EXPECT_EQ(client_ev.Raise(1), 2u);
  EXPECT_EQ(auth.install_requests, 2);
  EXPECT_EQ(auth.last_module, "Remote.Proxy.Vault.Op");
  EXPECT_EQ(exporter_.binds(), 1u);
  EXPECT_EQ(exporter_.bound_clients(), 1u);
}

TEST_F(RemoteTest, ImposedGuardIsEvaluatedProxySide) {
  Module authority{"Guarded"};
  Event<uint64_t(uint64_t)> server_ev("Guarded.Op", &authority, nullptr,
                                      &dispatcher_);
  CountCtx ctx;
  dispatcher_.InstallHandler(server_ev, &CountingHandler, &ctx);
  RemoteAuthState auth;
  auth.impose = true;
  auth.guard = ArgBelow100();
  dispatcher_.InstallAuthorizer(server_ev, &RemoteAuthorizer, &auth,
                                authority);
  exporter_.Export(server_ev);

  Event<uint64_t(uint64_t)> client_ev("Guarded.Op", nullptr, nullptr,
                                      &dispatcher_);
  EventProxy proxy(client_host_, &sim_, client_ev, Opts(9103));
  // The imposed guard traveled back in the BindReply and sits on the
  // proxy's local binding.
  EXPECT_EQ(dispatcher_.GuardCount(proxy.binding()), 1u);

  EXPECT_EQ(client_ev.Raise(5), 6u);  // passes the guard

  // A raise the imposed guard rejects is skipped before marshaling: same
  // observable outcome as a guarded local binding, and zero wire traffic.
  const uint64_t frames_before = wire_.frames_offered();
  EXPECT_THROW(client_ev.Raise(500), NoHandlerError);
  EXPECT_EQ(wire_.frames_offered(), frames_before)
      << "guard rejection must not cost a roundtrip";
  EXPECT_EQ(ctx.calls, 1);
  EXPECT_EQ(exporter_.guard_rejected(), 0u);
}

TEST_F(RemoteTest, ExporterEnforcesImposedGuardsOnRawWireTraffic) {
  Module authority{"Guarded"};
  Event<uint64_t(uint64_t)> server_ev("Guarded.Op", &authority, nullptr,
                                      &dispatcher_);
  CountCtx ctx;
  dispatcher_.InstallHandler(server_ev, &CountingHandler, &ctx);
  RemoteAuthState auth;
  auth.impose = true;
  auth.guard = ArgBelow100();
  dispatcher_.InstallAuthorizer(server_ev, &RemoteAuthorizer, &auth,
                                authority);
  exporter_.Export(server_ev);

  Event<uint64_t(uint64_t)> client_ev("Guarded.Op", nullptr, nullptr,
                                      &dispatcher_);
  EventProxy proxy(client_host_, &sim_, client_ev, Opts(9104));

  // A caller speaking the wire protocol directly (skipping the proxy and
  // its local guard copy) still cannot get past the authorizer's guard:
  // the exporter re-evaluates it on every raise.
  std::string reply_wire;
  net::UdpSocket raw(client_host_, 9105,
                     [&](const net::Packet& p) { reply_wire = p.UdpPayload(); });
  RequestMsg req;
  req.kind = RaiseKind::kSync;
  req.request_id = 0x4242;
  req.token = proxy.token();
  req.event_name = "Guarded.Op";
  req.params = {WireParam{static_cast<uint8_t>(TypeClass::kUInt64), false}};
  req.args = {500};  // the guard says no
  raw.SendTo(server_host_.ip(), kDefaultRemotePort, EncodeRequest(req));
  sim_.Run();

  ReplyMsg reply;
  ASSERT_TRUE(DecodeReply(reply_wire, &reply));
  EXPECT_EQ(reply.status, WireStatus::kGuardRejected);
  EXPECT_EQ(exporter_.guard_rejected(), 1u);
  EXPECT_EQ(ctx.calls, 0);
}

TEST_F(RemoteTest, RevokedTokenFailsFastWithTypedError) {
  Module authority{"Mortal"};
  Event<uint64_t(uint64_t)> server_ev("Mortal.Op", &authority, nullptr,
                                      &dispatcher_);
  CountCtx ctx;
  dispatcher_.InstallHandler(server_ev, &CountingHandler, &ctx);
  exporter_.Export(server_ev);
  Event<uint64_t(uint64_t)> client_ev("Mortal.Op", nullptr, nullptr,
                                      &dispatcher_);
  auto proxy = std::make_unique<EventProxy>(client_host_, &sim_, client_ev,
                                            Opts(9106));
  EXPECT_EQ(client_ev.Raise(1), 2u);
  const uint64_t token = proxy->token();

  // Drop the revocation notice: the proxy keeps believing it is bound, so
  // the stale token must be caught exporter-side.
  wire_.SetDropHook([](const net::Packet& p, uint64_t, uint64_t) {
    return p.ip_proto() == net::kIpProtoUdp &&
           p.src_port() == kDefaultRemotePort;
  });
  EXPECT_TRUE(exporter_.Revoke(token));
  EXPECT_FALSE(exporter_.Revoke(token)) << "a token revokes once";
  sim_.Run();
  EXPECT_FALSE(proxy->revoked()) << "the notice was lost";
  wire_.SetDropHook(nullptr);

  try {
    client_ev.Raise(2);
    FAIL() << "a raise bearing a revoked token must throw";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.status(), RemoteStatus::kRevoked);
  }
  EXPECT_TRUE(proxy->revoked());
  EXPECT_EQ(exporter_.revoked_raises(), 1u);
  EXPECT_EQ(ctx.calls, 1);

  // Fail-fast from now on: no traffic for raises through the dead proxy.
  const uint64_t frames_before = wire_.frames_offered();
  EXPECT_THROW(client_ev.Raise(3), RemoteError);
  EXPECT_EQ(wire_.frames_offered(), frames_before);

  // Re-binding mints a fresh capability and serves again.
  proxy.reset();
  EventProxy fresh(client_host_, &sim_, client_ev, Opts(9107));
  EXPECT_NE(fresh.token(), 0u);
  EXPECT_NE(fresh.token(), token);
  EXPECT_EQ(client_ev.Raise(10), 11u);
  EXPECT_EQ(ctx.calls, 2);
}

TEST_F(RemoteTest, RevokedAsyncProxyDropsQueuedDatagrams) {
  Event<void(uint64_t)> server_ev("Async.Mortal", nullptr, nullptr,
                                  &dispatcher_);
  SumCtx ctx;
  dispatcher_.InstallHandler(server_ev, &SumHandler, &ctx);
  exporter_.Export(server_ev);
  Event<void(uint64_t)> client_ev("Async.Mortal", nullptr, nullptr,
                                  &dispatcher_);
  ProxyOptions opts = Opts(9108);
  opts.kind = RaiseKind::kAsync;
  EventProxy proxy(client_host_, &sim_, client_ev, opts);

  for (uint64_t i = 1; i <= 3; ++i) {
    client_ev.Raise(i);
  }
  dispatcher_.pool().Drain();
  EXPECT_TRUE(exporter_.Revoke(proxy.token()));
  sim_.Run();  // the revocation notice lands before anything is flushed
  EXPECT_TRUE(proxy.revoked());
  EXPECT_EQ(proxy.Flush(), 0u) << "a revoked proxy generates no traffic";
  sim_.Run();
  EXPECT_EQ(ctx.calls.load(), 0);
}

// --- Determinism and observability -------------------------------------------

TEST(RemoteDeterminism, SeededLossReplaysExactly) {
  auto run = [](uint64_t seed) {
    Dispatcher dispatcher;
    sim::Simulator sim;
    net::Wire wire(&sim, sim::LinkModel{});
    net::Host client("client", 0x0a000001, &dispatcher);
    net::Host server("server", 0x0a000002, &dispatcher);
    wire.Attach(client, server);
    Exporter exporter(server);

    Event<uint64_t(uint64_t)> server_ev("Det.Op", nullptr, nullptr,
                                        &dispatcher);
    auto ctx = std::make_unique<CountCtx>();
    dispatcher.InstallHandler(server_ev, &CountingHandler, ctx.get());
    exporter.Export(server_ev);
    Event<uint64_t(uint64_t)> client_ev("Det.Op", nullptr, nullptr,
                                        &dispatcher);
    ProxyOptions opts;
    opts.remote_ip = server.ip();
    opts.local_port = 9011;
    opts.max_attempts = 10;
    EventProxy proxy(client, &sim, client_ev, opts);

    wire.SetRandomLoss(0.3, seed);
    uint64_t ok = 0;
    uint64_t timed_out = 0;
    for (uint64_t i = 0; i < 10; ++i) {
      try {
        client_ev.Raise(i);
        ++ok;
      } catch (const RemoteError&) {
        ++timed_out;  // a deterministic outcome too: it must replay
      }
    }
    return std::tuple{ok, timed_out, proxy.retries(), wire.frames_lost(),
                      sim.now_ns()};
  };
  EXPECT_EQ(run(7), run(7)) << "same seed, same schedule, same outcome";
  EXPECT_NE(run(7), run(8)) << "the seed must actually steer the pattern";
}

TEST_F(RemoteTest, FlightRecorderAndMetricsObserveTheRetryPath) {
  Event<uint64_t(uint64_t)> server_ev("Traced.Op", nullptr, nullptr,
                                      &dispatcher_);
  CountCtx ctx;
  dispatcher_.InstallHandler(server_ev, &CountingHandler, &ctx);
  exporter_.Export(server_ev);
  Event<uint64_t(uint64_t)> client_ev("Traced.Op", nullptr, nullptr,
                                      &dispatcher_);
  EventProxy proxy(client_host_, &sim_, client_ev, Opts(9012));

  int replies_seen = 0;
  wire_.SetDropHook([&](const net::Packet& p, uint64_t, uint64_t) {
    return p.ip_proto() == net::kIpProtoUdp &&
           p.src_port() == kDefaultRemotePort && ++replies_seen <= 1;
  });

  obs::EnableScope scope;
  obs::FlightRecorder::Global().Reset();
  EXPECT_EQ(client_ev.Raise(10), 11u);

  bool saw_marshal = false, saw_send = false, saw_retry = false,
       saw_reply = false, saw_dedup = false;
  for (const obs::MergedRecord& m : obs::FlightRecorder::Global().Snapshot()) {
    switch (m.rec.kind) {
      case obs::TraceKind::kRemoteMarshal: saw_marshal = true; break;
      case obs::TraceKind::kRemoteSend: saw_send = true; break;
      case obs::TraceKind::kRemoteRetry: saw_retry = true; break;
      case obs::TraceKind::kRemoteReply: saw_reply = true; break;
      case obs::TraceKind::kRemoteDedup: saw_dedup = true; break;
      default: break;
    }
  }
  EXPECT_TRUE(saw_marshal);
  EXPECT_TRUE(saw_send);
  EXPECT_TRUE(saw_retry);
  EXPECT_TRUE(saw_reply);
  EXPECT_TRUE(saw_dedup);

  std::ostringstream os;
  obs::ExportMetrics(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("spin_remote_client_retries_total{host=\"client\","
                      "event=\"Traced.Op\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("spin_remote_server_dedup_hits_total{host=\"server\"}"
                      " 1"),
            std::string::npos);
  EXPECT_NE(text.find("spin_remote_roundtrip_ns"), std::string::npos);
}

}  // namespace
}  // namespace remote
}  // namespace spin
