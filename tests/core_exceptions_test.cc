// Handler exceptions and dispatcher introspection.
//
// C++ exceptions cannot unwind through runtime-generated frames, so a
// handler that may throw must declare it ({.may_throw = true}), pinning its
// event to the interpreter where propagation is well-defined.
#include <stdexcept>

#include <gtest/gtest.h>

#include "src/core/dispatcher.h"

namespace spin {
namespace {

struct AppError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

void ThrowingHandler(int64_t v) {
  if (v < 0) {
    throw AppError("negative input");
  }
}
void QuietHandler(int64_t) {}
bool TrueGuard(int64_t) { return true; }

TEST(ExceptionTest, MayThrowHandlerPropagatesToRaiser) {
  Module module("Throwing");
  Dispatcher dispatcher;
  Event<void(int64_t)> event("Throw.Event", &module, nullptr, &dispatcher);
  dispatcher.InstallHandler(event, &TrueGuard, &ThrowingHandler,
                            {.may_throw = true, .module = &module});
  dispatcher.InstallHandler(event, &QuietHandler, {.module = &module});
  EXPECT_NO_THROW(event.Raise(1));
  EXPECT_THROW(event.Raise(-1), AppError);
}

TEST(ExceptionTest, MayThrowForcesInterpretedDispatch) {
  if (!codegen::CodegenAvailable()) {
    GTEST_SKIP();
  }
  Module module("Throwing");
  Dispatcher dispatcher;
  Event<void(int64_t)> event("Throw.Event", &module, nullptr, &dispatcher);
  dispatcher.InstallHandler(event, &QuietHandler, {.module = &module});
  dispatcher.InstallHandler(event, &QuietHandler, {.module = &module});
  uint64_t before = dispatcher.stats().stub_compiles;
  dispatcher.InstallHandler(event, &ThrowingHandler,
                            {.may_throw = true, .module = &module});
  // The rebuild after the may_throw install must not have compiled a stub.
  std::string description = dispatcher.Describe(event);
  EXPECT_NE(description.find("interpreted"), std::string::npos)
      << description;
  (void)before;
}

TEST(ExceptionTest, ExceptionLeavesDispatcherConsistent) {
  Module module("Throwing");
  Dispatcher dispatcher;
  Event<void(int64_t)> event("Throw.Event", &module, nullptr, &dispatcher);
  dispatcher.InstallHandler(event, &ThrowingHandler,
                            {.may_throw = true, .module = &module});
  for (int i = 0; i < 10; ++i) {
    EXPECT_THROW(event.Raise(-1), AppError);
  }
  // The epoch guard unwound correctly each time: reconfiguration (which
  // synchronizes with raises) must not deadlock or crash.
  dispatcher.InstallHandler(event, &QuietHandler, {.module = &module});
  EXPECT_NO_THROW(event.Raise(1));
  dispatcher.epoch().Synchronize();
}

// --- Describe --------------------------------------------------------------

TEST(DescribeTest, ReportsDispatchKinds) {
  Module module("Desc");
  Dispatcher dispatcher;
  Event<void(int64_t)> event("Desc.Event", &module, &QuietHandler,
                             &dispatcher);
  EXPECT_NE(dispatcher.Describe(event).find("direct call"),
            std::string::npos);

  dispatcher.InstallHandler(event, &TrueGuard, &QuietHandler,
                            {.module = &module});
  std::string description = dispatcher.Describe(event);
  if (codegen::CodegenAvailable()) {
    EXPECT_NE(description.find("generated stub"), std::string::npos);
    EXPECT_NE(description.find("generated code:"), std::string::npos);
  }
  EXPECT_NE(description.find("handlers: 2 sync"), std::string::npos);
  EXPECT_NE(description.find("guards: 1"), std::string::npos);
  EXPECT_NE(description.find("Desc.Event"), std::string::npos);
}

TEST(DescribeTest, ReportsLazyPending) {
  if (!codegen::CodegenAvailable()) {
    GTEST_SKIP();
  }
  Module module("Desc");
  Dispatcher::Config config;
  config.lazy_compile = true;
  Dispatcher dispatcher(config);
  Event<void(int64_t)> event("Desc.Lazy", &module, nullptr, &dispatcher);
  dispatcher.InstallHandler(event, &TrueGuard, &QuietHandler,
                            {.module = &module});
  EXPECT_NE(dispatcher.Describe(event).find("lazy"), std::string::npos);
}

}  // namespace
}  // namespace spin
