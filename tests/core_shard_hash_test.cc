// Shard-hash distribution ("RSS for events"): ShardFor must spread every
// realistic source population near-uniformly, or one shard becomes the
// single hot replica the refactor exists to avoid. The chi-squared bounds
// are deterministic — the source populations are synthetic and seeded — so
// a skewed mixer fails loudly, not flakily.
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/shard.h"

namespace spin {
namespace {

// Pearson's chi-squared statistic against the uniform expectation.
double ChiSquared(const std::vector<uint64_t>& counts, uint64_t total) {
  double expected = static_cast<double>(total) / counts.size();
  double chi2 = 0.0;
  for (uint64_t c : counts) {
    double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  return chi2;
}

// 16 shards => 15 degrees of freedom; the p=0.001 critical value is 37.7.
// 60 leaves comfortable slack while still catching any structural skew
// (a broken mixer lands in the thousands).
constexpr uint32_t kShards = 16;
constexpr double kChi2Bound = 60.0;
constexpr uint64_t kSamples = 64 * 1024;

TEST(ShardHashTest, SequentialStrandIdsSpreadUniformly) {
  std::vector<uint64_t> counts(kShards, 0);
  for (uint64_t id = 0; id < kSamples; ++id) {
    ++counts[ShardFor(MakeRaiseSource(SourceKind::kStrand, id), kShards)];
  }
  EXPECT_LT(ChiSquared(counts, kSamples), kChi2Bound);
}

TEST(ShardHashTest, StridedSourcesSpreadUniformly) {
  // Dense id spaces rarely stay dense: connection tokens arrive in strides
  // (per-port, per-host allocation patterns). Power-of-two strides are the
  // classic killer of weak mixers.
  for (uint64_t stride : {2ull, 8ull, 64ull, 4096ull, 1ull << 20}) {
    std::vector<uint64_t> counts(kShards, 0);
    for (uint64_t i = 0; i < kSamples; ++i) {
      ++counts[ShardFor(
          MakeRaiseSource(SourceKind::kConnection, i * stride), kShards)];
    }
    EXPECT_LT(ChiSquared(counts, kSamples), kChi2Bound)
        << "stride " << stride;
  }
}

TEST(ShardHashTest, SeededSplitmixSourcesSpreadUniformly) {
  // A synthetic 64k-source population drawn from a seeded splitmix64
  // stream, standing in for "arbitrary" identities (host addresses mixed
  // with tokens). Seed fixed: the test is reproducible bit-for-bit.
  uint64_t state = 0x5350494e16ull;  // seed
  std::vector<uint64_t> counts(kShards, 0);
  for (uint64_t i = 0; i < kSamples; ++i) {
    state += 0x9e3779b97f4a7c15ull;
    ++counts[ShardFor(state, kShards)];
  }
  EXPECT_LT(ChiSquared(counts, kSamples), kChi2Bound);
}

TEST(ShardHashTest, KindTagSeparatesIdSpaces) {
  // The same numeric id under different kinds must be a different source —
  // strand 7 and connection 7 should not be pinned to the same shard by
  // construction (they usually differ; what must hold is the value differs).
  EXPECT_NE(MakeRaiseSource(SourceKind::kStrand, 7),
            MakeRaiseSource(SourceKind::kConnection, 7));
  EXPECT_NE(MakeRaiseSource(SourceKind::kThread, 1),
            MakeRaiseSource(SourceKind::kHost, 1));
}

TEST(ShardHashTest, ShardForStaysInRange) {
  for (uint32_t shards : {1u, 2u, 3u, 5u, 16u, 64u}) {
    for (uint64_t id = 0; id < 4096; ++id) {
      uint32_t s = ShardFor(MakeRaiseSource(SourceKind::kHost, id), shards);
      ASSERT_LT(s, shards);
    }
    // Every shard is reachable.
    std::vector<bool> hit(shards, false);
    for (uint64_t id = 0; id < 64 * shards; ++id) {
      hit[ShardFor(MakeRaiseSource(SourceKind::kHost, id), shards)] = true;
    }
    for (uint32_t s = 0; s < shards; ++s) {
      EXPECT_TRUE(hit[s]) << "shard " << s << " of " << shards;
    }
  }
}

TEST(ShardHashTest, RaiseSourceScopeNestsAndRestores) {
  uint64_t fallback = CurrentRaiseSource();
  EXPECT_NE(fallback, 0u);  // thread fallback is always a real source
  EXPECT_EQ(CurrentRaiseSource(), fallback);  // and stable
  {
    RaiseSourceScope outer(MakeRaiseSource(SourceKind::kStrand, 1));
    EXPECT_EQ(CurrentRaiseSource(),
              MakeRaiseSource(SourceKind::kStrand, 1));
    {
      RaiseSourceScope inner(MakeRaiseSource(SourceKind::kConnection, 9));
      EXPECT_EQ(CurrentRaiseSource(),
                MakeRaiseSource(SourceKind::kConnection, 9));
    }
    EXPECT_EQ(CurrentRaiseSource(),
              MakeRaiseSource(SourceKind::kStrand, 1));
    {
      RaiseSourceScope cleared(0);  // explicit reset to the fallback
      EXPECT_EQ(CurrentRaiseSource(), fallback);
    }
  }
  EXPECT_EQ(CurrentRaiseSource(), fallback);
}

TEST(ShardHashTest, ThreadFallbackDiffersAcrossThreads) {
  uint64_t here = CurrentRaiseSource();
  uint64_t there = 0;
  std::thread t([&] { there = CurrentRaiseSource(); });
  t.join();
  EXPECT_NE(here, there);
}

}  // namespace
}  // namespace spin
