// Asynchronous events and handlers (§2.6).
#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "src/core/dispatcher.h"

namespace spin {
namespace {

std::atomic<int> g_sync_calls{0};
std::atomic<int> g_async_calls{0};
std::atomic<std::thread::id> g_async_thread{};

void SyncHandler(int64_t, int64_t) { g_sync_calls.fetch_add(1); }
void AsyncHandler(int64_t, int64_t) {
  g_async_thread.store(std::this_thread::get_id());
  g_async_calls.fetch_add(1);
}
bool GuardFalse(int64_t, int64_t) { return false; }
int64_t DefaultZero(int64_t, int64_t) { return 0; }

class AsyncTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_sync_calls = 0;
    g_async_calls = 0;
  }
  Module module_{"AsyncTest"};
  Dispatcher dispatcher_;
};

TEST_F(AsyncTest, AsyncHandlerRunsDetached) {
  Event<void(int64_t, int64_t)> event("Test.Async", &module_, nullptr,
                                      &dispatcher_);
  dispatcher_.InstallHandler(event, &SyncHandler, {.module = &module_});
  dispatcher_.InstallHandler(event, &AsyncHandler,
                             {.async = true, .module = &module_});
  event.Raise(1, 2);
  EXPECT_EQ(g_sync_calls.load(), 1);
  dispatcher_.pool().Drain();
  EXPECT_EQ(g_async_calls.load(), 1);
  EXPECT_NE(g_async_thread.load(), std::this_thread::get_id())
      << "asynchronous handlers execute on a separate thread of control";
}

TEST_F(AsyncTest, AsyncHandlerGuardEvaluatedSynchronously) {
  Event<void(int64_t, int64_t)> event("Test.Async", &module_, nullptr,
                                      &dispatcher_);
  dispatcher_.InstallHandler(event, &SyncHandler, {.module = &module_});
  dispatcher_.InstallHandler(event, &GuardFalse, &AsyncHandler,
                             {.async = true, .module = &module_});
  event.Raise(1, 2);
  dispatcher_.pool().Drain();
  EXPECT_EQ(g_async_calls.load(), 0) << "failed guard blocks scheduling";
}

TEST_F(AsyncTest, AsyncEventDetachesWholeDispatch) {
  Event<void(int64_t, int64_t)> event("Test.AsyncEvent", &module_, nullptr,
                                      &dispatcher_);
  dispatcher_.InstallHandler(event, &AsyncHandler, {.module = &module_});
  dispatcher_.SetEventAsync(event, true, &module_);
  event.Raise(1, 2);  // returns immediately
  dispatcher_.pool().Drain();
  EXPECT_EQ(g_async_calls.load(), 1);
}

TEST_F(AsyncTest, RaiseAsyncExplicit) {
  Event<void(int64_t, int64_t)> event("Test.RaiseAsync", &module_, nullptr,
                                      &dispatcher_);
  dispatcher_.InstallHandler(event, &AsyncHandler, {.module = &module_});
  for (int i = 0; i < 10; ++i) {
    event.RaiseAsync(i, i);
  }
  dispatcher_.pool().Drain();
  EXPECT_EQ(g_async_calls.load(), 10);
}

TEST_F(AsyncTest, AsyncResultEventRequiresDefaultHandler) {
  // §2.6: "an attempt to raise an event asynchronously that returns a
  // result will raise an exception unless a default handler is installed."
  Event<int64_t(int64_t, int64_t)> event("Test.AsyncResult", &module_,
                                         nullptr, &dispatcher_);
  dispatcher_.InstallLambda(event, [](int64_t a, int64_t b) { return a + b; },
                            {.module = &module_});
  EXPECT_THROW(event.RaiseAsync(1, 2), AsyncError);
  dispatcher_.InstallDefaultHandler(event, &DefaultZero,
                                    {.module = &module_});
  EXPECT_NO_THROW(event.RaiseAsync(1, 2));
  dispatcher_.pool().Drain();
}

TEST_F(AsyncTest, ByRefEventCannotBeAsync) {
  // "it is illegal to define as asynchronous an event that takes an
  // argument by reference, or to install an asynchronous handler on such
  // an event."
  Event<void(int64_t, int64_t&)> event("Test.ByRef", &module_, nullptr,
                                       &dispatcher_);
  try {
    dispatcher_.SetEventAsync(event, true, &module_);
    FAIL() << "expected InstallError";
  } catch (const InstallError& e) {
    EXPECT_EQ(e.status(), InstallStatus::kAsyncByRef);
  }
  void (*handler)(int64_t, int64_t&) = +[](int64_t, int64_t&) {};
  try {
    dispatcher_.InstallHandler(event, handler,
                               {.async = true, .module = &module_});
    FAIL() << "expected InstallError";
  } catch (const InstallError& e) {
    EXPECT_EQ(e.status(), InstallStatus::kAsyncByRef);
  }
}

TEST_F(AsyncTest, AsyncNoHandlerIsAbsorbed) {
  Event<void(int64_t, int64_t)> event("Test.AsyncEmpty", &module_, nullptr,
                                      &dispatcher_);
  EXPECT_NO_THROW(event.RaiseAsync(1, 2));
  dispatcher_.pool().Drain();  // the detached NoHandlerError is swallowed
}

TEST_F(AsyncTest, SpawnModeAlsoWorks) {
  Dispatcher::Config config;
  config.async_mode = AsyncMode::kSpawn;  // the paper's thread-per-raise
  Dispatcher dispatcher(config);
  Event<void(int64_t, int64_t)> event("Test.Spawn", &module_, nullptr,
                                      &dispatcher);
  dispatcher.InstallHandler(event, &AsyncHandler,
                            {.async = true, .module = &module_});
  event.Raise(0, 0);
  dispatcher.pool().Drain();
  EXPECT_EQ(g_async_calls.load(), 1);
}

TEST_F(AsyncTest, ManyConcurrentAsyncRaises) {
  Event<void(int64_t, int64_t)> event("Test.Flood", &module_, nullptr,
                                      &dispatcher_);
  dispatcher_.InstallHandler(event, &AsyncHandler, {.module = &module_});
  constexpr int kRaises = 500;
  for (int i = 0; i < kRaises; ++i) {
    event.RaiseAsync(i, i);
  }
  dispatcher_.pool().Drain();
  EXPECT_EQ(g_async_calls.load(), kRaises);
}

}  // namespace
}  // namespace spin
