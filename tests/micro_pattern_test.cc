// Tests for the canonical-guard pattern matcher behind the decision-tree
// optimization.
#include <gtest/gtest.h>

#include "src/micro/pattern.h"

namespace spin {
namespace micro {
namespace {

TEST(PatternTest, MatchesUnmaskedFieldEq) {
  Program guard = GuardArgFieldEq(1, 0, 36, 2, ~0ull, 0x1234);
  FieldEqPattern pattern;
  ASSERT_TRUE(MatchFieldEq(guard, &pattern));
  EXPECT_EQ(pattern.arg, 0);
  EXPECT_EQ(pattern.offset, 36u);
  EXPECT_EQ(pattern.width, 2);
  EXPECT_EQ(pattern.mask, ~0ull);
  EXPECT_EQ(pattern.value, 0x1234u);
}

TEST(PatternTest, MatchesMaskedFieldEq) {
  Program guard = GuardArgFieldEq(2, 1, 8, 4, 0x00ff00ff, 0x00120034);
  FieldEqPattern pattern;
  ASSERT_TRUE(MatchFieldEq(guard, &pattern));
  EXPECT_EQ(pattern.arg, 1);
  EXPECT_EQ(pattern.offset, 8u);
  EXPECT_EQ(pattern.width, 4);
  EXPECT_EQ(pattern.mask, 0x00ff00ffu);
  EXPECT_EQ(pattern.value, 0x00120034u);
}

TEST(PatternTest, SameFieldGroupsOnEverythingButValue) {
  FieldEqPattern a;
  FieldEqPattern b;
  a.arg = b.arg = 0;
  a.offset = b.offset = 36;
  a.width = b.width = 2;
  a.mask = b.mask = ~0ull;
  a.value = 1;
  b.value = 2;
  EXPECT_TRUE(a.SameField(b));
  b.offset = 34;
  EXPECT_FALSE(a.SameField(b));
}

TEST(PatternTest, RejectsOtherShapes) {
  uint64_t cell = 0;
  EXPECT_FALSE(MatchFieldEq(GuardGlobalEq(&cell, 1), nullptr));
  EXPECT_FALSE(MatchFieldEq(ReturnConst(1, 1, true), nullptr));
  EXPECT_FALSE(MatchFieldEq(IncrementGlobal(&cell, 1), nullptr));
  // A not-equal comparison is not the field-eq shape.
  Program ne = std::move(ProgramBuilder(1, true)
                             .LoadArg(0, 0)
                             .LoadField(1, 0, 4, 8)
                             .LoadImm(2, 7)
                             .CmpNe(3, 1, 2)
                             .Ret(3))
                   .Build();
  EXPECT_FALSE(MatchFieldEq(ne, nullptr));
}

TEST(PatternTest, RejectsBrokenDataflow) {
  // Comparison against the wrong register (not the loaded field).
  Program wrong = std::move(ProgramBuilder(1, true)
                                .LoadArg(0, 0)
                                .LoadField(1, 0, 4, 8)
                                .LoadImm(2, 7)
                                .CmpEq(3, 0, 2)  // compares the pointer!
                                .Ret(3))
                      .Build();
  EXPECT_FALSE(MatchFieldEq(wrong, nullptr));

  // Return of a register other than the comparison result.
  Program wrong_ret = std::move(ProgramBuilder(1, true)
                                    .LoadArg(0, 0)
                                    .LoadField(1, 0, 4, 8)
                                    .LoadImm(2, 7)
                                    .CmpEq(3, 1, 2)
                                    .Ret(1))
                          .Build();
  EXPECT_FALSE(MatchFieldEq(wrong_ret, nullptr));
}

TEST(PatternTest, AcceptsSwappedCompareOperands) {
  Program swapped = std::move(ProgramBuilder(1, true)
                                  .LoadArg(0, 0)
                                  .LoadField(1, 0, 4, 8)
                                  .LoadImm(2, 7)
                                  .CmpEq(3, 2, 1)  // imm on the left
                                  .Ret(3))
                        .Build();
  FieldEqPattern pattern;
  EXPECT_TRUE(MatchFieldEq(swapped, &pattern));
  EXPECT_EQ(pattern.value, 7u);
}

}  // namespace
}  // namespace micro
}  // namespace spin
