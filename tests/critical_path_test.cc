// CriticalPath (DESIGN.md §15): deterministic attribution arithmetic over a
// hand-built span tree, and the acceptance scenario — a traced two-host
// remote roundtrip must attribute at least 95% of the root span's wall time
// to named phases, with the wire's simulator-clock transit reported as a
// virtual duration alongside.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "src/net/host.h"
#include "src/obs/context.h"
#include "src/obs/critical_path.h"
#include "src/obs/obs.h"
#include "src/obs/query.h"
#include "src/obs/trace.h"
#include "src/remote/exporter.h"
#include "src/remote/proxy.h"
#include "src/sim/simulator.h"

namespace spin {
namespace remote {
namespace {

size_t PhaseIdx(obs::Phase phase) { return static_cast<size_t>(phase); }

obs::MergedRecord Rec(obs::TraceKind kind, const char* name, uint64_t ts,
                      uint64_t span, uint64_t parent, uint64_t arg = 0,
                      uint64_t end = 0) {
  obs::MergedRecord m;
  m.rec.kind = kind;
  m.rec.name = name;
  m.rec.ts_ns = ts;
  m.rec.span = span;
  m.rec.parent = parent;
  m.rec.arg = arg;
  m.rec.end_ns = end;
  return m;
}

// A two-level synthetic tree with known numbers:
//   span 1 "CP.Root"  [1000, 2000]   interp self 600
//   span 2 "CP.Child" [1200, 1400]   handler_body 150, wire_virtual 5000
//   span 3 "CP.Side"  [1100, 1150]   (no phases)
std::vector<obs::MergedRecord> SyntheticTree() {
  const char* root_name = obs::Intern("CP.Root");
  const char* child_name = obs::Intern("CP.Child");
  const char* side_name = obs::Intern("CP.Side");
  std::vector<obs::MergedRecord> records;
  records.push_back(Rec(obs::TraceKind::kRaiseBegin, root_name, 1000, 1, 0));
  records.push_back(
      Rec(obs::TraceKind::kPhase, root_name, 1000, 1, 0,
          obs::PackPhaseArg(obs::Phase::kInterp, 600), /*end=*/1900));
  records.push_back(Rec(obs::TraceKind::kRaiseBegin, side_name, 1100, 3, 1));
  records.push_back(Rec(obs::TraceKind::kRaiseEnd, side_name, 1150, 3, 1));
  records.push_back(Rec(obs::TraceKind::kRaiseBegin, child_name, 1200, 2, 1));
  records.push_back(
      Rec(obs::TraceKind::kPhase, child_name, 1200, 2, 1,
          obs::PackPhaseArg(obs::Phase::kHandlerBody, 150), /*end=*/1400));
  records.push_back(
      Rec(obs::TraceKind::kPhase, child_name, 1300, 2, 1,
          obs::PackPhaseArg(obs::Phase::kWireVirtual, 5000), /*end=*/0));
  records.push_back(Rec(obs::TraceKind::kRaiseEnd, root_name, 2000, 1, 0));
  return records;
}

TEST(CriticalPathTest, AttributeSumsSelfTimesAndExposesResidual) {
  obs::TraceQuery query(SyntheticTree());
  obs::CriticalPath cp(query);

  std::vector<uint64_t> roots = cp.Roots();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0], 1u);

  obs::CriticalPath::PhaseBreakdown attr = cp.Attribute(1);
  EXPECT_EQ(attr.wall_ns, 1000u);
  EXPECT_EQ(attr.tracked_ns, 750u);  // 600 interp + 150 handler_body
  EXPECT_EQ(attr.residual_ns, 250u);
  EXPECT_DOUBLE_EQ(attr.coverage, 0.75);
  EXPECT_EQ(attr.self_ns[PhaseIdx(obs::Phase::kInterp)], 600u);
  EXPECT_EQ(attr.self_ns[PhaseIdx(obs::Phase::kHandlerBody)], 150u);
  // The virtual wire transit is reported alongside, never added to tracked.
  EXPECT_EQ(attr.virtual_ns[PhaseIdx(obs::Phase::kWireVirtual)], 5000u);
  EXPECT_EQ(attr.self_ns[PhaseIdx(obs::Phase::kWireVirtual)], 0u);

  // An unknown root is all zeros, not a crash or a partial answer.
  obs::CriticalPath::PhaseBreakdown missing = cp.Attribute(99);
  EXPECT_EQ(missing.wall_ns, 0u);
  EXPECT_EQ(missing.tracked_ns, 0u);
  EXPECT_DOUBLE_EQ(missing.coverage, 0.0);
}

TEST(CriticalPathTest, LongestPathDescendsIntoTheWidestChild) {
  obs::TraceQuery query(SyntheticTree());
  obs::CriticalPath cp(query);

  std::vector<obs::CriticalPath::CriticalStep> path = cp.LongestPath(1);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0].span, 1u);
  EXPECT_EQ(std::string(path[0].name), "CP.Root");
  EXPECT_EQ(path[0].wall_ns, 1000u);
  // Root self = wall minus both children's extents (200 + 50).
  EXPECT_EQ(path[0].self_ns, 750u);
  EXPECT_EQ(path[0].dominant, obs::Phase::kInterp);
  EXPECT_EQ(path[0].dominant_ns, 600u);

  // span 2 (wall 200) beats span 3 (wall 50).
  EXPECT_EQ(path[1].span, 2u);
  EXPECT_EQ(path[1].wall_ns, 200u);
  EXPECT_EQ(path[1].dominant, obs::Phase::kHandlerBody);
  EXPECT_EQ(path[1].dominant_ns, 150u);
}

TEST(CriticalPathTest, FoldedStacksCarryPhaseAndUntrackedLeaves) {
  obs::TraceQuery query(SyntheticTree());
  obs::CriticalPath cp(query);

  std::ostringstream os;
  cp.WriteFolded(os);
  const std::string folded = os.str();
  EXPECT_NE(folded.find("CP.Root;interp 600"), std::string::npos);
  EXPECT_NE(folded.find("CP.Root;CP.Child;handler_body 150"),
            std::string::npos);
  // Root: 1000 wall - 600 own - 250 children wall = 150 untracked.
  EXPECT_NE(folded.find("CP.Root;(untracked) 150"), std::string::npos);
  EXPECT_NE(folded.find("CP.Root;CP.Child;(untracked) 50"),
            std::string::npos);
  // Virtual durations stay off the host-clock flamegraph.
  EXPECT_EQ(folded.find("wire_virtual"), std::string::npos);

  std::vector<obs::CriticalPath::EventPhases> by_event = cp.AggregateByEvent();
  ASSERT_GE(by_event.size(), 2u);
  bool saw_child = false;
  for (const obs::CriticalPath::EventPhases& e : by_event) {
    if (std::string(e.event) == "CP.Child") {
      saw_child = true;
      EXPECT_EQ(e.self_ns[PhaseIdx(obs::Phase::kHandlerBody)], 150u);
      EXPECT_EQ(e.virtual_ns[PhaseIdx(obs::Phase::kWireVirtual)], 5000u);
    }
  }
  EXPECT_TRUE(saw_child);
}

struct RoundtripCtx {
  int local = 0;
  int server = 0;
};
void LocalHandler(RoundtripCtx* ctx, uint64_t) { ++ctx->local; }
void ServerHandler(RoundtripCtx* ctx, uint64_t) { ++ctx->server; }

// Shared acceptance fixture: one traced raise that crosses the simulated
// wire to an exporting host and joins the reply, then a CriticalPath over
// the snapshot. Returns the attribution of the raise's root span.
obs::CriticalPath::PhaseBreakdown TraceOneRoundtrip(uint16_t port,
                                                    bool sampled,
                                                    std::string* folded_out) {
  obs::FlightRecorder::Global().Reset();

  Dispatcher dispatcher;
  sim::Simulator sim;
  net::Wire wire{&sim, sim::LinkModel{}};
  net::Host client_host{"cp-client", 0x0a000301, &dispatcher};
  net::Host server_host{"cp-server", 0x0a000302, &dispatcher};
  wire.Attach(client_host, server_host);
  Exporter exporter{server_host};

  RoundtripCtx ctx;
  Event<void(uint64_t)> server_ev("CP.Op", nullptr, nullptr, &dispatcher);
  dispatcher.InstallHandler(server_ev, &ServerHandler, &ctx);
  exporter.Export(server_ev);

  Event<void(uint64_t)> client_ev("CP.Op", nullptr, nullptr, &dispatcher);
  dispatcher.InstallHandler(client_ev, &LocalHandler, &ctx);
  ProxyOptions opts;
  opts.remote_ip = server_host.ip();
  opts.local_port = port;
  EventProxy proxy(client_host, &sim, client_ev, opts);

  obs::FlightRecorder::Global().Reset();  // drop the handshake records
  if (sampled) {
    // Zero the thread-local countdown so rate 1 samples the next raise.
    obs::SetTraceConfig({obs::TraceMode::kSampled, 1});
    (void)obs::DecideTopLevel();
    dispatcher.SetTracing({obs::TraceMode::kSampled, 1});
  } else {
    dispatcher.EnableTracing(true);
  }
  {
    obs::HostScope on_client(client_host.trace_host_id());
    client_ev.Raise(7);
  }
  dispatcher.SetTracing({obs::TraceMode::kOff, 1});

  EXPECT_EQ(ctx.local, 1);
  EXPECT_EQ(ctx.server, 1);

  auto records = obs::FlightRecorder::Global().Snapshot();
  obs::TraceQuery query(records);
  obs::CriticalPath cp(query);

  uint64_t root = 0;
  uint64_t wire_span = 0;
  for (const obs::MergedRecord& m : records) {
    if (m.rec.kind == obs::TraceKind::kRaiseBegin && m.rec.parent == 0 &&
        std::string(m.rec.name) == "CP.Op") {
      root = m.rec.span;
    }
    if (m.rec.kind == obs::TraceKind::kRemoteSend) {
      wire_span = m.rec.span;
    }
  }
  EXPECT_NE(root, 0u);
  EXPECT_NE(wire_span, 0u);
  std::vector<uint64_t> roots = cp.Roots();
  EXPECT_TRUE(std::find(roots.begin(), roots.end(), root) != roots.end());

  // The latency-bounding chain starts at the raise and reaches the wire
  // span (the roundtrip dominates a single local handler).
  std::vector<obs::CriticalPath::CriticalStep> path = cp.LongestPath(root);
  EXPECT_FALSE(path.empty());
  if (!path.empty()) {
    EXPECT_EQ(path.front().span, root);
  }
  bool path_hits_wire = false;
  for (const obs::CriticalPath::CriticalStep& step : path) {
    if (step.span == wire_span) {
      path_hits_wire = true;
    }
  }
  EXPECT_TRUE(path_hits_wire);

  if (folded_out != nullptr) {
    std::ostringstream os;
    cp.WriteFolded(os);
    *folded_out = os.str();
  }
  obs::CriticalPath::PhaseBreakdown attr = cp.Attribute(root);
  obs::FlightRecorder::Global().Reset();
  return attr;
}

// Acceptance: a fully-traced remote roundtrip attributes >= 95% of the
// root span's wall time to named phases, the marshal/wire/dispatch/
// unmarshal stages all show up, and the simulator-clock wire transit is
// reported as a virtual duration.
TEST(CriticalPathTest, TracedRoundtripAttributesNinetyFivePercent) {
  std::string folded;
  obs::CriticalPath::PhaseBreakdown attr =
      TraceOneRoundtrip(9050, /*sampled=*/false, &folded);

  EXPECT_GT(attr.wall_ns, 0u);
  EXPECT_LE(attr.tracked_ns, attr.wall_ns)
      << "real-time self-times partition the wall; they cannot exceed it";
  EXPECT_EQ(attr.residual_ns, attr.wall_ns - attr.tracked_ns);
  EXPECT_GE(attr.coverage, 0.95);

  EXPECT_GT(attr.self_ns[PhaseIdx(obs::Phase::kMarshal)], 0u);
  EXPECT_GT(attr.self_ns[PhaseIdx(obs::Phase::kWire)], 0u);
  EXPECT_GT(attr.self_ns[PhaseIdx(obs::Phase::kDispatch)], 0u);
  EXPECT_GT(attr.self_ns[PhaseIdx(obs::Phase::kUnmarshal)], 0u);
  EXPECT_GT(attr.virtual_ns[PhaseIdx(obs::Phase::kWireVirtual)], 0u)
      << "wire transit is simulator time, reported in the virtual column";

  EXPECT_NE(folded.find("CP.Op"), std::string::npos);
  EXPECT_NE(folded.find(";wire "), std::string::npos);
  EXPECT_NE(folded.find("(untracked)"), std::string::npos);
}

// The same bar holds on the sampled path, where the client keeps its
// production dispatch table (stub when the JIT is available).
TEST(CriticalPathTest, SampledRoundtripAttributesNinetyFivePercent) {
  obs::CriticalPath::PhaseBreakdown attr =
      TraceOneRoundtrip(9051, /*sampled=*/true, nullptr);
  EXPECT_GT(attr.wall_ns, 0u);
  EXPECT_GE(attr.coverage, 0.95);
  EXPECT_GT(attr.self_ns[PhaseIdx(obs::Phase::kWire)], 0u);
  EXPECT_GT(attr.virtual_ns[PhaseIdx(obs::Phase::kWireVirtual)], 0u);
}

}  // namespace
}  // namespace remote
}  // namespace spin
