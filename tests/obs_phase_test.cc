// Phase attribution (DESIGN.md §15): PhaseScope's nesting arithmetic, the
// kPhase record format, the dispatcher's phase stamping on the sync, async,
// and sampled paths, and the spin_phase_ns exposition.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/dispatcher.h"
#include "src/obs/context.h"
#include "src/obs/export.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"

namespace spin {
namespace {

// Spins for at least `ns` of host-clock time (steady_clock, same family as
// the recorder's monotonic stamps).
void BusyWait(uint64_t ns) {
  auto start = std::chrono::steady_clock::now();
  volatile uint64_t h = 0;
  while (static_cast<uint64_t>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now() - start)
                 .count()) < ns) {
    h = h * 31 + 1;
  }
}

bool JitDisabled() { return std::getenv("SPIN_DISABLE_JIT") != nullptr; }

std::vector<obs::MergedRecord> PhaseRecords(const char* name) {
  std::vector<obs::MergedRecord> out;
  for (const obs::MergedRecord& m : obs::FlightRecorder::Global().Snapshot()) {
    if (m.rec.kind == obs::TraceKind::kPhase &&
        std::string(m.rec.name) == name) {
      out.push_back(m);
    }
  }
  return out;
}

TEST(ObsPhaseTest, PackPhaseArgRoundTripsAndSaturates) {
  uint64_t arg = obs::PackPhaseArg(obs::Phase::kMarshal, 123456789);
  EXPECT_EQ(obs::PhaseOfArg(arg), obs::Phase::kMarshal);
  EXPECT_EQ(obs::PhaseSelfNs(arg), 123456789u);

  // Self-time saturates at 56 bits instead of corrupting the phase byte.
  uint64_t big = obs::PackPhaseArg(obs::Phase::kBackoff, ~0ull);
  EXPECT_EQ(obs::PhaseOfArg(big), obs::Phase::kBackoff);
  EXPECT_EQ(obs::PhaseSelfNs(big), (1ull << 56) - 1);

  EXPECT_EQ(obs::PhaseOfArg(obs::PackPhaseArg(obs::Phase::kGuardEval, 0)),
            obs::Phase::kGuardEval);
}

TEST(ObsPhaseTest, EveryPhaseHasADistinctName) {
  std::set<std::string> names;
  for (size_t i = 0; i < obs::kNumPhases; ++i) {
    names.insert(obs::PhaseName(static_cast<obs::Phase>(i)));
  }
  EXPECT_EQ(names.size(), obs::kNumPhases);
  EXPECT_TRUE(names.count("wire_virtual"));
  EXPECT_TRUE(names.count("queue_wait"));
}

// The partition invariant: a nested scope's wall time is charged to exactly
// one self-time. The outer scope's self equals its wall minus the inner
// scope's wall — exact integer arithmetic on the recorded timestamps, not a
// tolerance check.
TEST(ObsPhaseTest, NestedScopesPartitionWallTime) {
  obs::FlightRecorder::Global().Reset();
  obs::ResetPhaseStats();
  obs::SetTraceConfig({obs::TraceMode::kFull, 1});
  const char* name = obs::Intern("Phase.Nested");
  {
    obs::SpanScope span;
    obs::PhaseScope outer(obs::Phase::kInterp, name);
    BusyWait(20000);
    {
      obs::PhaseScope inner(obs::Phase::kHandlerBody, name);
      BusyWait(20000);
    }
    BusyWait(20000);
  }
  obs::SetTraceConfig({obs::TraceMode::kOff, 1});

  std::vector<obs::MergedRecord> phases = PhaseRecords(name);
  ASSERT_EQ(phases.size(), 2u);
  const obs::TraceRecord* outer_rec = nullptr;
  const obs::TraceRecord* inner_rec = nullptr;
  for (const obs::MergedRecord& m : phases) {
    if (obs::PhaseOfArg(m.rec.arg) == obs::Phase::kInterp) {
      outer_rec = &m.rec;
    } else if (obs::PhaseOfArg(m.rec.arg) == obs::Phase::kHandlerBody) {
      inner_rec = &m.rec;
    }
  }
  ASSERT_NE(outer_rec, nullptr);
  ASSERT_NE(inner_rec, nullptr);

  // The inner scope nests inside the outer extent, and a leaf's self-time
  // is its whole duration.
  EXPECT_LE(outer_rec->ts_ns, inner_rec->ts_ns);
  EXPECT_LE(inner_rec->end_ns, outer_rec->end_ns);
  uint64_t inner_wall = inner_rec->end_ns - inner_rec->ts_ns;
  EXPECT_EQ(obs::PhaseSelfNs(inner_rec->arg), inner_wall);

  uint64_t outer_wall = outer_rec->end_ns - outer_rec->ts_ns;
  EXPECT_EQ(obs::PhaseSelfNs(outer_rec->arg), outer_wall - inner_wall);
  // Two >=20us busy stretches sit outside the inner scope.
  EXPECT_GE(obs::PhaseSelfNs(outer_rec->arg), 40000u);

  // Both segments fed the spin_phase_ns registry under the same event.
  bool found = false;
  for (const obs::PhaseStats& stats : obs::SnapshotPhaseStats()) {
    if (std::string(stats.event) == "Phase.Nested") {
      found = true;
      EXPECT_EQ(
          stats.phases[static_cast<size_t>(obs::Phase::kInterp)].count, 1u);
      EXPECT_EQ(
          stats.phases[static_cast<size_t>(obs::Phase::kHandlerBody)].count,
          1u);
    }
  }
  EXPECT_TRUE(found);
  obs::FlightRecorder::Global().Reset();
}

// The zero-cost side: a sampled-out tree, tracing off, and an explicit
// active=false gate all emit no records and feed no histograms.
TEST(ObsPhaseTest, SampledOutScopesEmitNothing) {
  obs::FlightRecorder::Global().Reset();
  obs::ResetPhaseStats();
  const char* name = obs::Intern("Phase.Skipped");

  obs::SetTraceConfig({obs::TraceMode::kFull, 1});
  {
    obs::SampleScope skip(obs::SampleDecision::kSkip);
    obs::PhaseScope scope(obs::Phase::kHandlerBody, name);
    BusyWait(1000);
  }
  {
    obs::PhaseScope scope(obs::Phase::kHandlerBody, name, /*active=*/false);
    BusyWait(1000);
  }
  obs::SetTraceConfig({obs::TraceMode::kOff, 1});
  {
    obs::PhaseScope scope(obs::Phase::kHandlerBody, name);
    BusyWait(1000);
  }

  EXPECT_TRUE(PhaseRecords(name).empty());
  for (const obs::PhaseStats& stats : obs::SnapshotPhaseStats()) {
    EXPECT_NE(std::string(stats.event), "Phase.Skipped");
  }
}

// Virtual-clock phases carry their simulator duration in self_ns and an
// empty host-clock extent (end_ns == 0).
TEST(ObsPhaseTest, VirtualPhaseRecordHasNoHostClockExtent) {
  obs::FlightRecorder::Global().Reset();
  obs::SetTraceConfig({obs::TraceMode::kFull, 1});
  const char* name = obs::Intern("Phase.Virtual");
  {
    obs::SpanScope span;
    obs::EmitVirtualPhase(obs::Phase::kWireVirtual, name, 5000000);
  }
  obs::SetTraceConfig({obs::TraceMode::kOff, 1});

  std::vector<obs::MergedRecord> phases = PhaseRecords(name);
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].rec.end_ns, 0u);
  EXPECT_EQ(obs::PhaseOfArg(phases[0].rec.arg), obs::Phase::kWireVirtual);
  EXPECT_EQ(obs::PhaseSelfNs(phases[0].rec.arg), 5000000u);
  obs::FlightRecorder::Global().Reset();
}

struct CountCtx {
  int calls = 0;
};
void CountingHandler(CountCtx* ctx, int64_t) {
  ++ctx->calls;
  BusyWait(2000);
}
bool PassingGuard(int64_t) { return true; }

// Full tracing interprets the dispatch, so a sync raise decomposes into
// interp self-time around per-binding guard_eval and handler_body segments,
// all inside the raise's span.
TEST(ObsPhaseTest, TracedSyncDispatchStampsInterpGuardAndBodyPhases) {
  obs::FlightRecorder::Global().Reset();
  obs::ResetPhaseStats();
  Dispatcher dispatcher;
  CountCtx ctx;
  Event<void(int64_t)> event("Phase.Sync", nullptr, nullptr, &dispatcher);
  auto binding = dispatcher.InstallHandler(event, &CountingHandler, &ctx);
  dispatcher.AddGuard(event, binding, &PassingGuard);

  dispatcher.EnableTracing(true);
  event.Raise(7);
  dispatcher.EnableTracing(false);
  EXPECT_EQ(ctx.calls, 1);

  std::set<obs::Phase> seen;
  uint64_t span = 0;
  for (const obs::MergedRecord& m : PhaseRecords("Phase.Sync")) {
    seen.insert(obs::PhaseOfArg(m.rec.arg));
    EXPECT_NE(m.rec.span, 0u) << "phase segments belong to the raise's span";
    if (span == 0) {
      span = m.rec.span;
    }
    EXPECT_EQ(m.rec.span, span) << "one raise, one span";
  }
  EXPECT_TRUE(seen.count(obs::Phase::kInterp));
  EXPECT_TRUE(seen.count(obs::Phase::kGuardEval));
  EXPECT_TRUE(seen.count(obs::Phase::kHandlerBody));
  EXPECT_FALSE(seen.count(obs::Phase::kStub))
      << "full tracing dispatches through the interpreter";
  obs::FlightRecorder::Global().Reset();
}

// Sampled tracing keeps the production table installed, so a sampled-in
// raise attributes to the compiled stub as one fused phase (interp on a
// no-JIT host).
TEST(ObsPhaseTest, SampledDispatchAttributesToTheStub) {
  obs::FlightRecorder::Global().Reset();
  obs::ResetPhaseStats();
  Dispatcher dispatcher;
  CountCtx ctx;
  Event<void(int64_t)> event("Phase.Stub", nullptr, nullptr, &dispatcher);
  dispatcher.InstallHandler(event, &CountingHandler, &ctx);

  // Zero the thread-local sampling countdown so rate 1 samples every raise.
  obs::SetTraceConfig({obs::TraceMode::kSampled, 1});
  (void)obs::DecideTopLevel();

  dispatcher.SetTracing({obs::TraceMode::kSampled, 1});
  event.Raise(7);
  dispatcher.SetTracing({obs::TraceMode::kOff, 1});
  EXPECT_EQ(ctx.calls, 1);

  std::set<obs::Phase> seen;
  for (const obs::MergedRecord& m : PhaseRecords("Phase.Stub")) {
    seen.insert(obs::PhaseOfArg(m.rec.arg));
  }
  if (JitDisabled()) {
    EXPECT_TRUE(seen.count(obs::Phase::kInterp));
  } else {
    EXPECT_TRUE(seen.count(obs::Phase::kStub));
    EXPECT_FALSE(seen.count(obs::Phase::kInterp));
  }
  obs::FlightRecorder::Global().Reset();
}

void AsyncHandler(CountCtx* ctx, int64_t) { ++ctx->calls; }

// An async handoff stamps the queue_wait segment: enqueue timestamp on the
// raising thread, execution start on the pool thread, self-time their
// difference.
TEST(ObsPhaseTest, AsyncHandoffStampsQueueWait) {
  obs::FlightRecorder::Global().Reset();
  obs::ResetPhaseStats();
  Dispatcher dispatcher;
  CountCtx ctx;
  Event<void(int64_t)> event("Phase.Async", nullptr, nullptr, &dispatcher);
  dispatcher.InstallHandler(event, &AsyncHandler, &ctx, {.async = true});

  dispatcher.EnableTracing(true);
  event.Raise(7);
  dispatcher.pool().Drain();
  dispatcher.EnableTracing(false);
  EXPECT_EQ(ctx.calls, 1);

  bool queue_wait = false;
  bool body = false;
  for (const obs::MergedRecord& m : PhaseRecords("Phase.Async")) {
    obs::Phase phase = obs::PhaseOfArg(m.rec.arg);
    if (phase == obs::Phase::kQueueWait) {
      queue_wait = true;
      EXPECT_GE(m.rec.end_ns, m.rec.ts_ns);
      EXPECT_EQ(obs::PhaseSelfNs(m.rec.arg), m.rec.end_ns - m.rec.ts_ns);
    }
    if (phase == obs::Phase::kHandlerBody) {
      body = true;
    }
  }
  EXPECT_TRUE(queue_wait);
  EXPECT_TRUE(body) << "the pool body is a handler_body segment";
  obs::FlightRecorder::Global().Reset();
}

// The registry reaches the text exposition: spin_phase_ns{event,phase}
// quantiles, _count/_sum, and the companion _max gauge.
TEST(ObsPhaseTest, PhaseHistogramsAreExported) {
  obs::FlightRecorder::Global().Reset();
  obs::ResetPhaseStats();
  obs::SetTraceConfig({obs::TraceMode::kFull, 1});
  const char* name = obs::Intern("Phase.Exported");
  {
    obs::SpanScope span;
    obs::PhaseScope scope(obs::Phase::kMarshal, name);
    BusyWait(2000);
  }
  obs::SetTraceConfig({obs::TraceMode::kOff, 1});

  std::ostringstream os;
  obs::ExportMetrics(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE spin_phase_ns summary"), std::string::npos);
  EXPECT_NE(
      text.find(
          "spin_phase_ns_count{event=\"Phase.Exported\",phase=\"marshal\"}"),
      std::string::npos);
  EXPECT_NE(
      text.find(
          "spin_phase_ns_max{event=\"Phase.Exported\",phase=\"marshal\"}"),
      std::string::npos);
  obs::FlightRecorder::Global().Reset();
}

}  // namespace
}  // namespace spin
