// Causal tracing across the wire: a single raise on host A whose handler
// set spans local sync handlers, a local async handler, and an EventProxy
// to host B must produce ONE span tree covering both hosts and at least
// three threads, with flow-event linkage in the exported Chrome trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/net/host.h"
#include "src/obs/context.h"
#include "src/obs/obs.h"
#include "src/obs/query.h"
#include "src/obs/trace.h"
#include "src/remote/exporter.h"
#include "src/remote/proxy.h"
#include "src/sim/simulator.h"

namespace spin {
namespace remote {
namespace {

struct TraceCtx {
  std::atomic<int> local_sync{0};
  std::atomic<int> local_async{0};
  std::atomic<int> server_sync{0};
  std::atomic<int> server_async{0};
};

void LocalSync(TraceCtx* ctx, uint64_t) { ++ctx->local_sync; }
void LocalAsync(TraceCtx* ctx, uint64_t) { ++ctx->local_async; }
void ServerSync(TraceCtx* ctx, uint64_t) { ++ctx->server_sync; }
void ServerAsync(TraceCtx* ctx, uint64_t) { ++ctx->server_async; }

TEST(RemoteTraceTest, OneRaiseYieldsOneSpanTreeAcrossHostsAndThreads) {
  obs::FlightRecorder::Global().Reset();

  // kSpawn gives every async handler a fresh OS thread, so the raising
  // thread, the client-side async handler, and the server-side async
  // handler are guaranteed three distinct recorder tids.
  Dispatcher::Config config;
  config.async_mode = AsyncMode::kSpawn;
  Dispatcher dispatcher(config);
  sim::Simulator sim;
  net::Wire wire{&sim, sim::LinkModel{}};
  net::Host client_host{"trace-client", 0x0a000101, &dispatcher};
  net::Host server_host{"trace-server", 0x0a000102, &dispatcher};
  wire.Attach(client_host, server_host);
  Exporter exporter{server_host};

  TraceCtx ctx;
  Event<void(uint64_t)> server_ev("Trace.Op", nullptr, nullptr, &dispatcher);
  dispatcher.InstallHandler(server_ev, &ServerSync, &ctx);
  dispatcher.InstallHandler(server_ev, &ServerAsync, &ctx, {.async = true});
  exporter.Export(server_ev);

  Event<void(uint64_t)> client_ev("Trace.Op", nullptr, nullptr, &dispatcher);
  dispatcher.InstallHandler(client_ev, &LocalSync, &ctx);
  dispatcher.InstallHandler(client_ev, &LocalAsync, &ctx, {.async = true});
  ProxyOptions opts;
  opts.remote_ip = server_host.ip();
  opts.local_port = 9040;
  EventProxy proxy(client_host, &sim, client_ev, opts);

  obs::FlightRecorder::Global().Reset();  // drop the handshake records
  dispatcher.EnableTracing(true);
  {
    obs::HostScope on_client(client_host.trace_host_id());
    client_ev.Raise(7);
  }
  dispatcher.pool().Drain();
  dispatcher.EnableTracing(false);

  EXPECT_EQ(ctx.local_sync.load(), 1);
  EXPECT_EQ(ctx.local_async.load(), 1);
  EXPECT_EQ(ctx.server_sync.load(), 1);
  EXPECT_EQ(ctx.server_async.load(), 1);

  auto records = obs::FlightRecorder::Global().Snapshot();
  obs::TraceQuery query(records);

  // The top-level raise on the client is the root of everything.
  uint64_t root = 0;
  for (const obs::MergedRecord& m : records) {
    if (m.rec.kind == obs::TraceKind::kRaiseBegin &&
        std::string(m.rec.name) == "Trace.Op" && m.rec.parent == 0) {
      root = m.rec.span;
      break;
    }
  }
  ASSERT_NE(root, 0u);

  std::vector<obs::MergedRecord> tree = query.SpanTree(root);
  ASSERT_FALSE(tree.empty());

  std::set<obs::TraceKind> kinds;
  std::set<uint32_t> hosts;
  std::set<uint32_t> tids;
  for (const obs::MergedRecord& m : tree) {
    kinds.insert(m.rec.kind);
    if (m.rec.host != 0) {
      hosts.insert(m.rec.host);
    }
    tids.insert(m.tid);
  }

  // Local sync handlers, both async handoff ends, and the whole wire
  // crossing all hang off the one root span.
  EXPECT_TRUE(kinds.count(obs::TraceKind::kHandlerFire));
  EXPECT_TRUE(kinds.count(obs::TraceKind::kAsyncEnqueue));
  EXPECT_TRUE(kinds.count(obs::TraceKind::kAsyncExecute));
  EXPECT_TRUE(kinds.count(obs::TraceKind::kRemoteMarshal));
  EXPECT_TRUE(kinds.count(obs::TraceKind::kRemoteSend));
  EXPECT_TRUE(kinds.count(obs::TraceKind::kRemoteDispatch));
  EXPECT_TRUE(kinds.count(obs::TraceKind::kRemoteReply));

  EXPECT_TRUE(hosts.count(client_host.trace_host_id()));
  EXPECT_TRUE(hosts.count(server_host.trace_host_id()));
  EXPECT_GE(hosts.size(), 2u) << "the tree spans both simulated hosts";
  EXPECT_GE(tids.size(), 3u) << "the tree spans at least three threads";

  // The wire span itself has records on both sides of the wire.
  uint64_t wire_span = 0;
  for (const obs::MergedRecord& m : tree) {
    if (m.rec.kind == obs::TraceKind::kRemoteSend) {
      wire_span = m.rec.span;
    }
  }
  ASSERT_NE(wire_span, 0u);
  EXPECT_EQ(query.ParentOf(wire_span), root);
  std::set<uint32_t> wire_hosts;
  for (const obs::MergedRecord& m : tree) {
    if (m.rec.span == wire_span && m.rec.host != 0) {
      wire_hosts.insert(m.rec.host);
    }
  }
  EXPECT_TRUE(wire_hosts.count(client_host.trace_host_id()));
  EXPECT_TRUE(wire_hosts.count(server_host.trace_host_id()));

  // Cross-host accounting: the exporter saw a span minted on another host.
  EXPECT_GE(obs::GetSpanStats().cross_host, 1u);

  // Chrome-trace export: one process row per host, and the wire span is
  // stitched with flow events — a start at the send, a step at the
  // exporter dispatch, a finish at the reply join.
  std::ostringstream os;
  obs::WriteChromeTrace(os, records);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"trace-client\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"trace-server\""), std::string::npos);
  const std::string id = "\"id\":" + std::to_string(wire_span);
  EXPECT_NE(json.find("\"ph\":\"s\"," + id), std::string::npos)
      << "flow start missing for the wire span";
  EXPECT_NE(json.find("\"ph\":\"t\"," + id), std::string::npos)
      << "flow step missing for the wire span";
  EXPECT_NE(json.find("\"ph\":\"f\",\"bp\":\"e\"," + id), std::string::npos)
      << "flow finish missing for the wire span";

  obs::FlightRecorder::Global().Reset();
}

// Sampled tracing across the wire: the trailer doubles as the sampled
// bit, so a sampled tree is captured whole on both hosts and an unsampled
// raise leaves zero records anywhere — while every raise still executes.
TEST(RemoteTraceTest, SampledTreesCrossTheWireWholeOrNotAtAll) {
  obs::FlightRecorder::Global().Reset();

  Dispatcher dispatcher;
  sim::Simulator sim;
  net::Wire wire{&sim, sim::LinkModel{}};
  net::Host client_host{"sample-client", 0x0a000201, &dispatcher};
  net::Host server_host{"sample-server", 0x0a000202, &dispatcher};
  wire.Attach(client_host, server_host);
  Exporter exporter{server_host};

  TraceCtx ctx;
  Event<void(uint64_t)> server_ev("Sample.Op", nullptr, nullptr,
                                  &dispatcher);
  dispatcher.InstallHandler(server_ev, &ServerSync, &ctx);
  exporter.Export(server_ev);

  Event<void(uint64_t)> client_ev("Sample.Op", nullptr, nullptr,
                                  &dispatcher);
  dispatcher.InstallHandler(client_ev, &LocalSync, &ctx);
  ProxyOptions opts;
  opts.remote_ip = server_host.ip();
  opts.local_port = 9045;
  EventProxy proxy(client_host, &sim, client_ev, opts);

  // Reset the thread-local sampling countdown so the capture pattern
  // below is independent of earlier tests: at rate 1 the next decision
  // fires and zeroes it.
  obs::SetTraceConfig({obs::TraceMode::kSampled, 1});
  (void)obs::DecideTopLevel();

  obs::FlightRecorder::Global().Reset();  // drop the handshake records
  dispatcher.SetTracing({obs::TraceMode::kSampled, 3});
  for (uint64_t i = 0; i < 9; ++i) {
    obs::HostScope on_client(client_host.trace_host_id());
    client_ev.Raise(i);
  }
  dispatcher.SetTracing({obs::TraceMode::kOff});

  EXPECT_EQ(ctx.local_sync.load(), 9) << "sampling never drops dispatches";
  EXPECT_EQ(ctx.server_sync.load(), 9);

  auto records = obs::FlightRecorder::Global().Snapshot();
  obs::TraceQuery query(records);

  // Control-plane records (rebuilds, stub compiles — SetTracing itself
  // rebuilds every table) legitimately carry no span; everything on the
  // raise and wire paths must sit inside a sampled tree.
  const std::set<obs::TraceKind> raise_kinds = {
      obs::TraceKind::kRaiseBegin,    obs::TraceKind::kRaiseEnd,
      obs::TraceKind::kHandlerFire,   obs::TraceKind::kGuardReject,
      obs::TraceKind::kAsyncEnqueue,  obs::TraceKind::kAsyncExecute,
      obs::TraceKind::kRemoteMarshal, obs::TraceKind::kRemoteSend,
      obs::TraceKind::kRemoteDispatch, obs::TraceKind::kRemoteReply,
      obs::TraceKind::kRemoteRetry,   obs::TraceKind::kRemoteTimeout,
  };
  std::vector<uint64_t> roots;
  size_t dispatches = 0;
  size_t replies = 0;
  for (const obs::MergedRecord& m : records) {
    if (m.rec.kind == obs::TraceKind::kRaiseBegin && m.rec.parent == 0 &&
        std::string(m.rec.name) == "Sample.Op") {
      roots.push_back(m.rec.span);
    }
    if (m.rec.kind == obs::TraceKind::kRemoteDispatch) {
      ++dispatches;
    }
    if (m.rec.kind == obs::TraceKind::kRemoteReply) {
      ++replies;
    }
    if (raise_kinds.count(m.rec.kind)) {
      EXPECT_NE(m.rec.span, 0u) << obs::TraceKindName(m.rec.kind)
                                << " escaped the sampled trees";
    }
  }
  EXPECT_EQ(roots.size(), 3u) << "9 raises at 1-in-3";
  EXPECT_EQ(dispatches, 3u)
      << "the exporter must capture exactly the sampled raises";
  EXPECT_EQ(replies, 3u);

  // Each sampled tree holds the whole roundtrip: both hosts, the wire
  // span, and the server-side dispatch.
  for (uint64_t root : roots) {
    std::set<obs::TraceKind> kinds;
    std::set<uint32_t> hosts;
    for (const obs::MergedRecord& m : query.SpanTree(root)) {
      kinds.insert(m.rec.kind);
      if (m.rec.host != 0) {
        hosts.insert(m.rec.host);
      }
    }
    EXPECT_TRUE(kinds.count(obs::TraceKind::kRemoteMarshal)) << root;
    EXPECT_TRUE(kinds.count(obs::TraceKind::kRemoteSend)) << root;
    EXPECT_TRUE(kinds.count(obs::TraceKind::kRemoteDispatch)) << root;
    EXPECT_TRUE(kinds.count(obs::TraceKind::kRemoteReply)) << root;
    EXPECT_TRUE(hosts.count(client_host.trace_host_id()));
    EXPECT_TRUE(hosts.count(server_host.trace_host_id()));
  }
  obs::FlightRecorder::Global().Reset();
}

// An untraced raise still crosses the wire (the trailer is simply absent),
// and old-format frames without the trailer decode fine.
TEST(RemoteTraceTest, TracingOffFramesCarryNoTrailer) {
  RequestMsg msg;
  msg.kind = RaiseKind::kSync;
  msg.request_id = 3;
  msg.token = 9;
  msg.event_name = "Plain.Op";
  std::string encoded = EncodeRequest(msg);

  RequestMsg decoded;
  ASSERT_TRUE(DecodeRequest(encoded, &decoded));
  EXPECT_EQ(decoded.span_id, 0u);
  EXPECT_EQ(decoded.origin_host, 0u);

  msg.span_id = 0xabcdef12345678ull;
  msg.origin_host = 4;
  std::string traced = EncodeRequest(msg);
  EXPECT_EQ(traced.size(), encoded.size() + 12)
      << "the trailer costs 12 bytes and only when tracing is on";
  ASSERT_TRUE(DecodeRequest(traced, &decoded));
  EXPECT_EQ(decoded.span_id, msg.span_id);
  EXPECT_EQ(decoded.origin_host, msg.origin_host);

  // A present trailer with a zero span id is malformed, not "untraced".
  std::string zeroed = traced;
  for (size_t i = encoded.size(); i < encoded.size() + 8; ++i) {
    zeroed[i] = '\0';
  }
  EXPECT_FALSE(DecodeRequest(zeroed, &decoded));
}

}  // namespace
}  // namespace remote
}  // namespace spin
