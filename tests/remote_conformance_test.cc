// Local/remote conformance: a raise through an EventProxy must be
// observationally identical to the same raise against a local binding.
//
// One table of scenarios runs twice — once against a plain local event,
// once across the simulated wire (proxy -> exporter -> dispatcher) — and
// the observable outcomes are compared field by field: the folded result,
// the final VAR copy-out values, which handlers fired and in what order,
// thrown exceptions (a remote handler exception arrives as
// RemoteError(kRemoteException) carrying the original what()), guard
// rejections (NoHandlerError both sides — the imposed guard travels to the
// proxy and is evaluated before marshaling), and install-time denials
// (InstallError(kNotAuthorized) locally, RemoteError(kDenied) at the
// proxy: the same §2.5 authorizer produced both).
//
// The ctest registration runs this suite twice, the second time with
// SPIN_DISABLE_JIT=1, so conformance also holds on the interpreter-only
// dispatch path.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/core/dispatcher.h"
#include "src/net/host.h"
#include "src/remote/exporter.h"
#include "src/remote/proxy.h"
#include "src/sim/simulator.h"

namespace spin {
namespace remote {
namespace {

// --- The scenario table ------------------------------------------------------

struct Scenario {
  const char* name;
  int handlers;        // 1 or 2 handlers installed, in id order
  uint64_t throw_on;   // handler 1 throws when the raise arg equals this
  bool impose_guard;   // authorizer imposes "arg0 < 100" on every install
  bool untrusted;      // the install/bind comes from an untrusted module
  uint64_t arg;
  uint64_t var_in;
};

constexpr Scenario kScenarios[] = {
    {"single-handler", 1, 0, false, false, 7, 5},
    {"two-handlers-ordered", 2, 0, false, false, 3, 1},
    {"handler-throws", 1, 9, false, false, 9, 2},
    {"imposed-guard-passes", 1, 0, true, false, 42, 4},
    {"imposed-guard-rejects", 1, 0, true, false, 500, 4},
    {"untrusted-denied", 1, 0, false, true, 1, 1},
};

// --- Everything observable about one run -------------------------------------

struct Observed {
  std::string error;        // canonical tag; empty = the raise succeeded
  bool error_has_detail = false;  // the message carried the handler's what()
  uint64_t result = 0;
  uint64_t var_out = 0;
  std::vector<int> fired;   // handler ids in dispatch order

  friend bool operator==(const Observed&, const Observed&) = default;
};

struct ConfCtx {
  int id;
  uint64_t throw_on;
  std::vector<int>* fired;
};

uint64_t ConfHandler(ConfCtx* ctx, uint64_t a, uint64_t& v) {
  if (ctx->id == 1 && ctx->throw_on != 0 && a == ctx->throw_on) {
    throw std::runtime_error("conformance boom");
  }
  ctx->fired->push_back(ctx->id);
  v = v * 2 + static_cast<uint64_t>(ctx->id);
  return a + 10 * static_cast<uint64_t>(ctx->id);
}

struct ConfAuth {
  bool impose = false;
  micro::Program guard;
};

bool ConfAuthorizer(AuthRequest& request, void* ctx) {
  auto* auth = static_cast<ConfAuth*>(ctx);
  if (request.op != AuthOp::kInstall) {
    return true;
  }
  if (request.requestor != nullptr &&
      request.requestor->name().find("Untrusted") != std::string::npos) {
    return false;
  }
  if (auth->impose) {
    request.ImposeGuard(MakeImposedMicroGuard(auth->guard));
  }
  return true;
}

// "arg0 < 100" over the event's two parameter slots (the VAR slot is never
// inspected: its slot holds an address, meaningless across hosts).
micro::Program ArgBelow100() {
  return std::move(micro::ProgramBuilder(/*num_args=*/2, /*functional=*/true)
                       .LoadArg(0, 0)
                       .LoadImm(1, 100)
                       .CmpLtU(2, 0, 1)
                       .Ret(2))
      .Build();
}

using ConfEvent = Event<uint64_t(uint64_t, uint64_t&)>;

// Installs the scenario's authorizer and handlers on `event`. Returns false
// when the (untrusted) install was denied — recorded, nothing installed.
bool SetUpEvent(Dispatcher& dispatcher, ConfEvent& event,
                const Module& authority, const Module& installer,
                ConfAuth& auth, std::vector<ConfCtx>& ctxs,
                const Scenario& s, Observed& obs) {
  auth.impose = s.impose_guard;
  if (s.impose_guard) {
    auth.guard = ArgBelow100();
  }
  dispatcher.InstallAuthorizer(event, &ConfAuthorizer, &auth, authority);
  for (int id = 1; id <= s.handlers; ++id) {
    InstallOptions opts;
    opts.module = &installer;
    opts.may_throw = true;
    try {
      dispatcher.InstallHandler(event, &ConfHandler, &ctxs[id - 1], opts);
    } catch (const InstallError& e) {
      EXPECT_EQ(e.status(), InstallStatus::kNotAuthorized);
      obs.error = "install-denied";
      return false;
    }
  }
  return true;
}

// Raises `event` and records everything observable.
void RaiseAndObserve(ConfEvent& event, const Scenario& s, Observed& obs) {
  uint64_t var = s.var_in;
  try {
    obs.result = event.Raise(s.arg, var);
    obs.var_out = var;
  } catch (const NoHandlerError&) {
    obs.error = "no-handler";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.status(), RemoteStatus::kRemoteException) << s.name;
    obs.error = "handler-exception";
    obs.error_has_detail =
        std::string(e.what()).find("conformance boom") != std::string::npos;
  } catch (const std::runtime_error& e) {
    obs.error = "handler-exception";
    obs.error_has_detail =
        std::string(e.what()).find("conformance boom") != std::string::npos;
  }
}

Observed RunLocal(const Scenario& s) {
  Observed obs;
  Dispatcher dispatcher;
  Module authority{"Conf.Authority"};
  Module installer{s.untrusted ? "Untrusted.Local" : "Conf.Ext"};
  ConfEvent event("Conf.Op", &authority, nullptr, &dispatcher);
  ConfAuth auth;
  std::vector<ConfCtx> ctxs;
  for (int id = 1; id <= s.handlers; ++id) {
    ctxs.push_back(ConfCtx{id, s.throw_on, &obs.fired});
  }
  if (!SetUpEvent(dispatcher, event, authority, installer, auth, ctxs, s,
                  obs)) {
    return obs;
  }
  RaiseAndObserve(event, s, obs);
  return obs;
}

Observed RunRemote(const Scenario& s) {
  Observed obs;
  Dispatcher dispatcher;
  sim::Simulator sim;
  net::Wire wire(&sim, sim::LinkModel{});
  net::Host client("client", 0x0a000001, &dispatcher);
  net::Host server("server", 0x0a000002, &dispatcher);
  wire.Attach(client, server);
  Exporter exporter(server);

  Module authority{"Conf.Authority"};
  Module installer{"Conf.Ext"};  // server-side handlers are always trusted
  ConfEvent server_ev("Conf.Op", &authority, nullptr, &dispatcher);
  ConfAuth auth;
  std::vector<ConfCtx> ctxs;
  for (int id = 1; id <= s.handlers; ++id) {
    ctxs.push_back(ConfCtx{id, s.throw_on, &obs.fired});
  }
  // The local counterpart of a remote bind denial is a handler-install
  // denial, so the untrusted identity moves to the proxy here.
  if (!SetUpEvent(dispatcher, server_ev, authority, installer, auth, ctxs, s,
                  obs)) {
    ADD_FAILURE() << s.name << ": server-side installs are trusted";
    return obs;
  }
  exporter.Export(server_ev);

  ConfEvent client_ev("Conf.Op", nullptr, nullptr, &dispatcher);
  ProxyOptions opts;
  opts.remote_ip = server.ip();
  opts.local_port = 9201;
  if (s.untrusted) {
    opts.module_name = "Untrusted.Remote";
  }
  std::unique_ptr<EventProxy> proxy;
  try {
    proxy = std::make_unique<EventProxy>(client, &sim, client_ev, opts);
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.status(), RemoteStatus::kDenied) << s.name;
    obs.error = "install-denied";
    return obs;
  }
  RaiseAndObserve(client_ev, s, obs);
  return obs;
}

// --- The matrix --------------------------------------------------------------

class RemoteConformance : public ::testing::TestWithParam<Scenario> {};

TEST_P(RemoteConformance, LocalAndRemoteRaisesAgree) {
  const Scenario& s = GetParam();
  Observed local = RunLocal(s);
  Observed remote = RunRemote(s);

  EXPECT_EQ(local.error, remote.error) << s.name;
  EXPECT_EQ(local.error_has_detail, remote.error_has_detail) << s.name;
  EXPECT_EQ(local.result, remote.result) << s.name;
  EXPECT_EQ(local.var_out, remote.var_out) << s.name;
  EXPECT_EQ(local.fired, remote.fired)
      << s.name << ": handler ordering must survive the wire";
}

INSTANTIATE_TEST_SUITE_P(Matrix, RemoteConformance,
                         ::testing::ValuesIn(kScenarios),
                         [](const ::testing::TestParamInfo<Scenario>& info) {
                           std::string n = info.param.name;
                           for (char& c : n) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return n;
                         });

// Spot-check the equivalences the matrix relies on, so a future behavior
// drift fails here with a readable message rather than as a diff of two
// Observed structs.
TEST(RemoteConformanceInvariants, GuardRejectionIsSilentLocally) {
  Scenario s = {"guard-reject", 1, 0, true, false, 500, 4};
  Observed local = RunLocal(s);
  EXPECT_EQ(local.error, "no-handler");
  EXPECT_TRUE(local.fired.empty());
}

TEST(RemoteConformanceInvariants, VarMutationsComposeAcrossHandlers) {
  Scenario s = {"two-handlers", 2, 0, false, false, 3, 1};
  Observed local = RunLocal(s);
  ASSERT_EQ(local.error, "");
  // v = ((1*2+1)*2+2) = 8: both handlers saw the running value, in order.
  EXPECT_EQ(local.var_out, 8u);
  EXPECT_EQ(local.fired, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace remote
}  // namespace spin
