// Tests for runtime type information and the §2.4 typechecking rules.
#include <gtest/gtest.h>

#include "src/types/module.h"
#include "src/types/signature.h"
#include "src/types/type_registry.h"
#include "src/types/typecheck.h"

namespace spin {
namespace {

struct Base {};
struct Derived : Base {};
struct Other {};

TEST(TypeRegistryTest, InternIsStable) {
  EXPECT_EQ(TypeOf<Base>(), TypeOf<Base>());
  EXPECT_NE(TypeOf<Base>(), TypeOf<Derived>());
}

TEST(TypeRegistryTest, SubtypeChain) {
  DeclareSubtype<Derived, Base>();
  auto& reg = TypeRegistry::Global();
  EXPECT_TRUE(reg.IsSubtype(TypeOf<Derived>(), TypeOf<Base>()));
  EXPECT_FALSE(reg.IsSubtype(TypeOf<Base>(), TypeOf<Derived>()));
  EXPECT_FALSE(reg.IsSubtype(TypeOf<Other>(), TypeOf<Base>()));
  // Everything is a subtype of REFANY (the untyped reference).
  EXPECT_TRUE(reg.IsSubtype(TypeOf<Other>(), kUntypedId));
  // Reflexivity.
  EXPECT_TRUE(reg.IsSubtype(TypeOf<Base>(), TypeOf<Base>()));
}

TEST(SignatureTest, IntegralClasses) {
  ProcSig sig = MakeProcSig<void(int32_t, uint32_t, int64_t, uint64_t, bool)>();
  ASSERT_EQ(sig.params.size(), 5u);
  EXPECT_EQ(sig.params[0].cls, TypeClass::kInt32);
  EXPECT_EQ(sig.params[1].cls, TypeClass::kUInt32);
  EXPECT_EQ(sig.params[2].cls, TypeClass::kInt64);
  EXPECT_EQ(sig.params[3].cls, TypeClass::kUInt64);
  EXPECT_EQ(sig.params[4].cls, TypeClass::kBool);
  EXPECT_EQ(sig.result.cls, TypeClass::kVoid);
}

TEST(SignatureTest, PointerAndReferenceParams) {
  ProcSig sig = MakeProcSig<bool(Base*, Derived&)>();
  ASSERT_EQ(sig.params.size(), 2u);
  EXPECT_EQ(sig.params[0].cls, TypeClass::kPointer);
  EXPECT_FALSE(sig.params[0].by_ref);
  EXPECT_EQ(sig.params[0].ref_type, TypeOf<Base>());
  EXPECT_EQ(sig.params[1].cls, TypeClass::kPointer);
  EXPECT_TRUE(sig.params[1].by_ref);
  EXPECT_EQ(sig.params[1].ref_type, TypeOf<Derived>());
  EXPECT_EQ(sig.result.cls, TypeClass::kBool);
}

TEST(SignatureTest, SlotCodecRoundTrips) {
  EXPECT_EQ(SlotCodec<int32_t>::Unpack(SlotCodec<int32_t>::Pack(-7)), -7);
  EXPECT_EQ(SlotCodec<uint64_t>::Unpack(SlotCodec<uint64_t>::Pack(~0ull)),
            ~0ull);
  EXPECT_EQ(SlotCodec<bool>::Unpack(SlotCodec<bool>::Pack(true)), true);
  EXPECT_EQ(SlotCodec<double>::Unpack(SlotCodec<double>::Pack(2.5)), 2.5);
  Base obj;
  EXPECT_EQ(SlotCodec<Base*>::Unpack(SlotCodec<Base*>::Pack(&obj)), &obj);
  uint64_t slot = SlotCodec<Base&>::Pack(obj);
  EXPECT_EQ(&SlotCodec<Base&>::Unpack(slot), &obj);
}

TEST(SignatureTest, NegativeInt32SignExtendsInSlot) {
  // The JIT passes slots in 64-bit registers; the SysV ABI expects
  // sign-extension for signed 32-bit values.
  uint64_t slot = SlotCodec<int32_t>::Pack(-1);
  EXPECT_EQ(slot, ~0ull);
}

TEST(SignatureTest, ToStringMentionsAttributesAndVar) {
  ProcSig sig = MakeProcSig<bool(int32_t, Base&)>();
  sig.functional = true;
  std::string s = sig.ToString();
  EXPECT_NE(s.find("FUNCTIONAL"), std::string::npos);
  EXPECT_NE(s.find("VAR"), std::string::npos);
}

// --- Typechecking ----------------------------------------------------------

class TypecheckTest : public ::testing::Test {
 protected:
  ProcSig event_ = MakeProcSig<bool(int32_t, Base*)>();
};

TEST_F(TypecheckTest, ExactMatchOk) {
  ProcSig handler = MakeProcSig<bool(int32_t, Base*)>();
  EXPECT_EQ(CheckHandler(event_, handler, {}), TypecheckStatus::kOk);
}

TEST_F(TypecheckTest, ArityMismatch) {
  ProcSig handler = MakeProcSig<bool(int32_t)>();
  EXPECT_EQ(CheckHandler(event_, handler, {}),
            TypecheckStatus::kArityMismatch);
}

TEST_F(TypecheckTest, ParamMismatch) {
  ProcSig handler = MakeProcSig<bool(int64_t, Base*)>();
  EXPECT_EQ(CheckHandler(event_, handler, {}),
            TypecheckStatus::kParamMismatch);
}

TEST_F(TypecheckTest, PointeeTypeMismatch) {
  ProcSig handler = MakeProcSig<bool(int32_t, Other*)>();
  EXPECT_EQ(CheckHandler(event_, handler, {}),
            TypecheckStatus::kParamMismatch);
}

TEST_F(TypecheckTest, ResultMismatch) {
  ProcSig handler = MakeProcSig<void(int32_t, Base*)>();
  EXPECT_EQ(CheckHandler(event_, handler, {}),
            TypecheckStatus::kResultMismatch);
}

TEST_F(TypecheckTest, ClosureFormChecksSubtype) {
  DeclareSubtype<Derived, Base>();
  ProcSig handler = MakeProcSig<bool(Base*, int32_t, Base*)>();
  TypecheckOptions opts;
  opts.has_closure = true;
  opts.closure_type = TypeOf<Derived>();
  EXPECT_EQ(CheckHandler(event_, handler, opts), TypecheckStatus::kOk);

  opts.closure_type = TypeOf<Other>();
  EXPECT_EQ(CheckHandler(event_, handler, opts),
            TypecheckStatus::kClosureNotSubtype);
}

TEST_F(TypecheckTest, ClosureParamMustBeReference) {
  ProcSig handler = MakeProcSig<bool(int32_t, int32_t, Base*)>();
  TypecheckOptions opts;
  opts.has_closure = true;
  opts.closure_type = TypeOf<Derived>();
  EXPECT_EQ(CheckHandler(event_, handler, opts),
            TypecheckStatus::kMissingClosureParam);
}

TEST_F(TypecheckTest, FilterMayTakeByValueParamByRef) {
  ProcSig filter = MakeProcSig<bool(int32_t, Base*&)>();
  TypecheckOptions opts;
  EXPECT_EQ(CheckHandler(event_, filter, opts),
            TypecheckStatus::kByRefNotAllowed)
      << "by-ref widening requires filter installation";
  opts.as_filter = true;
  EXPECT_EQ(CheckHandler(event_, filter, opts), TypecheckStatus::kOk);
}

TEST_F(TypecheckTest, GuardMustBeFunctionalAndBoolean) {
  ProcSig guard = MakeProcSig<bool(int32_t, Base*)>();
  EXPECT_EQ(CheckGuard(event_, guard, {}),
            TypecheckStatus::kGuardNotFunctional);
  guard.functional = true;
  EXPECT_EQ(CheckGuard(event_, guard, {}), TypecheckStatus::kOk);

  ProcSig non_bool = MakeProcSig<int32_t(int32_t, Base*)>();
  non_bool.functional = true;
  EXPECT_EQ(CheckGuard(event_, non_bool, {}),
            TypecheckStatus::kGuardNotBoolean);
}

TEST(AsyncEligibleTest, ByRefParamsForbidAsync) {
  // "it is illegal to define as asynchronous an event that takes an
  // argument by reference" (§2.6).
  EXPECT_TRUE(AsyncEligible(MakeProcSig<void(int32_t, Base*)>()));
  EXPECT_FALSE(AsyncEligible(MakeProcSig<void(int32_t, Base&)>()));
}

TEST(ModuleTest, IdentityAndEquality) {
  Module a("ModuleA");
  Module b("ModuleB");
  EXPECT_NE(a.id(), b.id());
  EXPECT_TRUE(a == a);
  EXPECT_FALSE(a == b);
  EXPECT_EQ(a.name(), "ModuleA");
}

}  // namespace
}  // namespace spin
