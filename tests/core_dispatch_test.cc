// Dispatch semantics tests, parameterized over the execution engine
// (generated code, generated code without micro-inlining, interpreter).
// Every behaviour must be identical across engines — the paper's stub is a
// specialization of the interpreter's semantics.
#include <atomic>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/dispatcher.h"

namespace spin {
namespace {

enum class Engine { kJit, kJitNoInline, kInterp };

std::string EngineName(const ::testing::TestParamInfo<Engine>& info) {
  switch (info.param) {
    case Engine::kJit:
      return "Jit";
    case Engine::kJitNoInline:
      return "JitNoInline";
    case Engine::kInterp:
      return "Interp";
  }
  return "Bad";
}

class DispatchTest : public ::testing::TestWithParam<Engine> {
 protected:
  DispatchTest() : dispatcher_(MakeConfig()) {}

  static Dispatcher::Config MakeConfig() {
    Dispatcher::Config config;
    switch (GetParam()) {
      case Engine::kJit:
        break;
      case Engine::kJitNoInline:
        config.inline_micro = false;
        break;
      case Engine::kInterp:
        config.enable_jit = false;
        break;
    }
    return config;
  }

  Module module_{"TestModule"};
  Dispatcher dispatcher_;
};

// --- Shared handler state ---------------------------------------------------

struct Log {
  std::vector<int> order;
  int calls = 0;
  int64_t last_a = 0;
  int64_t last_b = 0;
};
Log g_log;

void Reset() { g_log = Log{}; }

int64_t Add(int64_t a, int64_t b) {
  ++g_log.calls;
  g_log.last_a = a;
  g_log.last_b = b;
  return a + b;
}
int64_t Mul(int64_t a, int64_t b) {
  ++g_log.calls;
  return a * b;
}
bool GuardAlwaysTrue(int64_t, int64_t) { return true; }
bool GuardAlwaysFalse(int64_t, int64_t) { return false; }
bool GuardAPositive(int64_t a, int64_t) { return a > 0; }

void H1(int64_t, int64_t) { g_log.order.push_back(1); }
void H2(int64_t, int64_t) { g_log.order.push_back(2); }
void H3(int64_t, int64_t) { g_log.order.push_back(3); }

// --- Figure 1: procedure call vs event --------------------------------------

TEST_P(DispatchTest, IntrinsicOnlyEventIsAProcedureCall) {
  Reset();
  Event<int64_t(int64_t, int64_t)> event("Test.Add", &module_, &Add,
                                         &dispatcher_);
  // Single intrinsic handler, no guards: the direct-call bypass applies.
  EXPECT_NE(event.direct_fn(), nullptr);
  EXPECT_EQ(event.Raise(2, 3), 5);
  EXPECT_EQ(g_log.calls, 1);
}

TEST_P(DispatchTest, ReplacingTheIntrinsicHandler) {
  // §2.1: "deregister the intrinsic handler and then register an alternate
  // one" is the model for replacing a procedure's implementation.
  Reset();
  Event<int64_t(int64_t, int64_t)> event("Test.Add", &module_, &Add,
                                         &dispatcher_);
  EXPECT_EQ(event.Raise(2, 3), 5);
  dispatcher_.DeregisterIntrinsic(event, &module_);
  auto replacement = dispatcher_.InstallHandler(event, &Mul,
                                                {.module = &module_});
  EXPECT_EQ(event.Raise(2, 3), 6);
  (void)replacement;
}

TEST_P(DispatchTest, NoHandlerThrows) {
  Event<void(int64_t, int64_t)> event("Test.Empty", &module_, nullptr,
                                      &dispatcher_);
  EXPECT_THROW(event.Raise(1, 2), NoHandlerError);
}

TEST_P(DispatchTest, DeregisteredIntrinsicWithNoOtherHandlerThrows) {
  Event<int64_t(int64_t, int64_t)> event("Test.Add", &module_, &Add,
                                         &dispatcher_);
  dispatcher_.DeregisterIntrinsic(event, &module_);
  EXPECT_THROW(event.Raise(1, 2), NoHandlerError);
}

// --- Guards ------------------------------------------------------------------

TEST_P(DispatchTest, GuardGatesHandler) {
  Reset();
  Event<void(int64_t, int64_t)> event("Test.Guarded", &module_, nullptr,
                                      &dispatcher_);
  dispatcher_.InstallHandler(event, &GuardAPositive, &H1,
                             {.module = &module_});
  dispatcher_.InstallHandler(event, &GuardAlwaysTrue, &H2,
                             {.module = &module_});
  event.Raise(5, 0);
  EXPECT_EQ(g_log.order, (std::vector<int>{1, 2}));
  g_log.order.clear();
  event.Raise(-5, 0);
  EXPECT_EQ(g_log.order, (std::vector<int>{2}));
}

TEST_P(DispatchTest, AllGuardsFalseMeansNoHandler) {
  Event<void(int64_t, int64_t)> event("Test.Guarded", &module_, nullptr,
                                      &dispatcher_);
  dispatcher_.InstallHandler(event, &GuardAlwaysFalse, &H1,
                             {.module = &module_});
  EXPECT_THROW(event.Raise(1, 2), NoHandlerError);
}

TEST_P(DispatchTest, MicroGuardAndMicroHandler) {
  // The Table 1 shape: a micro guard comparing a global against a constant
  // and a micro handler.
  static uint64_t gate = 1;
  static uint64_t counter = 0;
  gate = 1;
  counter = 0;
  Event<void(int64_t, int64_t)> event("Test.Micro", &module_, nullptr,
                                      &dispatcher_);
  auto binding = dispatcher_.InstallMicroHandler(
      event, micro::IncrementGlobal(&counter, 2), {.module = &module_});
  dispatcher_.AddMicroGuard(binding, micro::GuardGlobalEq(&gate, 1));
  event.Raise(0, 0);
  EXPECT_EQ(counter, 1u);
  gate = 0;
  EXPECT_THROW(event.Raise(0, 0), NoHandlerError);
  EXPECT_EQ(counter, 1u);
}

TEST_P(DispatchTest, AddGuardAfterInstallRestrictsFurther) {
  // §2.1: "additional guards can be added to further restrict when the
  // handler can run."
  Reset();
  Event<void(int64_t, int64_t)> event("Test.AddGuard", &module_, nullptr,
                                      &dispatcher_);
  auto binding = dispatcher_.InstallHandler(event, &H1,
                                            {.module = &module_});
  dispatcher_.InstallHandler(event, &H2, {.module = &module_});
  event.Raise(-1, 0);
  EXPECT_EQ(g_log.order, (std::vector<int>{1, 2}));
  g_log.order.clear();
  dispatcher_.AddGuard(event, binding, &GuardAPositive);
  event.Raise(-1, 0);
  EXPECT_EQ(g_log.order, (std::vector<int>{2}));
}

// --- Closures ----------------------------------------------------------------

struct Closure {
  int64_t bias;
};

int64_t AddWithBias(Closure* closure, int64_t a, int64_t b) {
  return a + b + closure->bias;
}

TEST_P(DispatchTest, ClosurePassedAsFirstArgument) {
  Event<int64_t(int64_t, int64_t)> event("Test.Closure", &module_, nullptr,
                                         &dispatcher_);
  Closure closure{100};
  dispatcher_.InstallHandler(event, &AddWithBias, &closure,
                             {.module = &module_});
  EXPECT_EQ(event.Raise(2, 3), 105);
}

TEST_P(DispatchTest, SameHandlerManyInstallsDistinctClosures) {
  // §2.1: "The same handler can be installed many times on many events, and
  // is invoked independently for each of the installations."
  Event<int64_t(int64_t, int64_t)> event("Test.Multi", &module_, nullptr,
                                         &dispatcher_);
  dispatcher_.SetResultPolicy(event, ResultPolicy::kSum);
  Closure c1{10};
  Closure c2{20};
  dispatcher_.InstallHandler(event, &AddWithBias, &c1, {.module = &module_});
  dispatcher_.InstallHandler(event, &AddWithBias, &c2, {.module = &module_});
  EXPECT_EQ(event.Raise(1, 1), (1 + 1 + 10) + (1 + 1 + 20));
}

TEST_P(DispatchTest, LambdaHandler) {
  Event<int64_t(int64_t, int64_t)> event("Test.Lambda", &module_, nullptr,
                                         &dispatcher_);
  int64_t captured = 7;
  dispatcher_.InstallLambda(
      event, [captured](int64_t a, int64_t b) { return a * b + captured; },
      {.module = &module_});
  EXPECT_EQ(event.Raise(3, 4), 19);
}

// --- Results (§2.3 "Handling results") ---------------------------------------

bool BoolHandlerTrue(int64_t, int64_t) { return true; }
bool BoolHandlerFalse(int64_t, int64_t) { return false; }

TEST_P(DispatchTest, SingleHandlerResultPassedThrough) {
  Event<int64_t(int64_t, int64_t)> event("Test.Result", &module_, &Add,
                                         &dispatcher_);
  EXPECT_EQ(event.Raise(40, 2), 42);
}

TEST_P(DispatchTest, LogicalOrPolicy) {
  // The VM.PageFault shape: boolean result, logical-or fold.
  Event<bool(int64_t, int64_t)> event("Test.Or", &module_, nullptr,
                                      &dispatcher_);
  dispatcher_.SetResultPolicy(event, ResultPolicy::kOr);
  dispatcher_.InstallHandler(event, &BoolHandlerFalse, {.module = &module_});
  dispatcher_.InstallHandler(event, &BoolHandlerTrue, {.module = &module_});
  dispatcher_.InstallHandler(event, &BoolHandlerFalse, {.module = &module_});
  EXPECT_TRUE(event.Raise(0, 0));
}

TEST_P(DispatchTest, AndPolicy) {
  Event<bool(int64_t, int64_t)> event("Test.And", &module_, nullptr,
                                      &dispatcher_);
  dispatcher_.SetResultPolicy(event, ResultPolicy::kAnd);
  dispatcher_.InstallHandler(event, &BoolHandlerTrue, {.module = &module_});
  dispatcher_.InstallHandler(event, &BoolHandlerTrue, {.module = &module_});
  EXPECT_TRUE(event.Raise(0, 0));
  dispatcher_.InstallHandler(event, &BoolHandlerFalse, {.module = &module_});
  EXPECT_FALSE(event.Raise(0, 0));
}

TEST_P(DispatchTest, SumPolicyAndLastPolicy) {
  Event<int64_t(int64_t, int64_t)> event("Test.Sum", &module_, nullptr,
                                         &dispatcher_);
  dispatcher_.InstallHandler(event, &Add, {.module = &module_});
  dispatcher_.InstallHandler(event, &Mul, {.module = &module_});
  // Default policy is kLast.
  EXPECT_EQ(event.Raise(3, 4), 12);
  dispatcher_.SetResultPolicy(event, ResultPolicy::kSum);
  EXPECT_EQ(event.Raise(3, 4), 7 + 12);
}

int64_t MaxFold(int64_t result, int64_t current, uint32_t index) {
  if (index == 0) {
    return result;
  }
  return result > current ? result : current;
}

TEST_P(DispatchTest, CustomResultHandler) {
  Event<int64_t(int64_t, int64_t)> event("Test.Max", &module_, nullptr,
                                         &dispatcher_);
  dispatcher_.InstallHandler(event, &Add, {.module = &module_});  // 3+4=7
  dispatcher_.InstallHandler(event, &Mul, {.module = &module_});  // 12
  dispatcher_.SetResultHandler(event, &MaxFold);
  EXPECT_EQ(event.Raise(3, 4), 12);
  EXPECT_EQ(event.Raise(-3, -4), -3 + -4 > 12 ? -7 : 12);
}

int64_t DefaultFortyTwo(int64_t, int64_t) { return 42; }

TEST_P(DispatchTest, DefaultHandlerRunsWhenNothingFires) {
  Reset();
  Event<int64_t(int64_t, int64_t)> event("Test.Default", &module_, nullptr,
                                         &dispatcher_);
  dispatcher_.InstallDefaultHandler(event, &DefaultFortyTwo,
                                    {.module = &module_});
  EXPECT_EQ(event.Raise(1, 2), 42);
  // Once a real handler exists, the default no longer runs.
  dispatcher_.InstallHandler(event, &Add, {.module = &module_});
  EXPECT_EQ(event.Raise(1, 2), 3);
}

// --- Ordering (§2.3 "Ordering handlers") --------------------------------------

TEST_P(DispatchTest, FirstAndLastConstraints) {
  Reset();
  Event<void(int64_t, int64_t)> event("Test.Order", &module_, nullptr,
                                      &dispatcher_);
  dispatcher_.InstallHandler(event, &H2, {.module = &module_});
  dispatcher_.InstallHandler(event, &H1,
                             {.order = {OrderKind::kFirst}, .module = &module_});
  dispatcher_.InstallHandler(event, &H3,
                             {.order = {OrderKind::kLast}, .module = &module_});
  event.Raise(0, 0);
  EXPECT_EQ(g_log.order, (std::vector<int>{1, 2, 3}));
}

TEST_P(DispatchTest, BeforeAndAfterConstraints) {
  Reset();
  Event<void(int64_t, int64_t)> event("Test.Order", &module_, nullptr,
                                      &dispatcher_);
  auto b2 = dispatcher_.InstallHandler(event, &H2, {.module = &module_});
  dispatcher_.InstallHandler(
      event, &H1, {.order = {OrderKind::kBefore, b2}, .module = &module_});
  dispatcher_.InstallHandler(
      event, &H3, {.order = {OrderKind::kAfter, b2}, .module = &module_});
  event.Raise(0, 0);
  EXPECT_EQ(g_log.order, (std::vector<int>{1, 2, 3}));
}

TEST_P(DispatchTest, OrderingConstraintsAreQueryableAndChangeable) {
  Reset();
  Event<void(int64_t, int64_t)> event("Test.Order", &module_, nullptr,
                                      &dispatcher_);
  auto b1 = dispatcher_.InstallHandler(event, &H1, {.module = &module_});
  dispatcher_.InstallHandler(event, &H2, {.module = &module_});
  EXPECT_EQ(dispatcher_.GetOrder(b1).kind, OrderKind::kUnordered);
  dispatcher_.SetOrder(b1, {OrderKind::kLast});
  EXPECT_EQ(dispatcher_.GetOrder(b1).kind, OrderKind::kLast);
  event.Raise(0, 0);
  EXPECT_EQ(g_log.order, (std::vector<int>{2, 1}));
}

TEST_P(DispatchTest, BadOrderingReferenceRejected) {
  Event<void(int64_t, int64_t)> event_a("Test.A", &module_, nullptr,
                                        &dispatcher_);
  Event<void(int64_t, int64_t)> event_b("Test.B", &module_, nullptr,
                                        &dispatcher_);
  auto on_a = dispatcher_.InstallHandler(event_a, &H1, {.module = &module_});
  try {
    dispatcher_.InstallHandler(
        event_b, &H2, {.order = {OrderKind::kBefore, on_a},
                       .module = &module_});
    FAIL() << "expected InstallError";
  } catch (const InstallError& e) {
    EXPECT_EQ(e.status(), InstallStatus::kBadOrderingReference);
  }
}

// --- Filters (§2.3 "Passing arguments") ---------------------------------------

void DoubleFirstArg(int64_t& a, int64_t) { a *= 2; }

TEST_P(DispatchTest, FilterMutatesDownstreamNotRaiser) {
  Reset();
  Event<void(int64_t, int64_t)> event("Test.Filter", &module_, nullptr,
                                      &dispatcher_);
  dispatcher_.InstallFilter(event, &DoubleFirstArg, {.module = &module_});
  dispatcher_.InstallHandler(event, &GuardAlwaysTrue,
                             +[](int64_t a, int64_t b) {
                               ++g_log.calls;
                               g_log.last_a = a;
                               g_log.last_b = b;
                             },
                             {.module = &module_});
  int64_t a = 21;
  event.Raise(a, 5);
  EXPECT_EQ(g_log.last_a, 42) << "downstream handler sees the filtered value";
  EXPECT_EQ(a, 21) << "the raiser's argument is preserved (copy semantics)";
}

TEST_P(DispatchTest, FiltersStack) {
  Reset();
  Event<void(int64_t, int64_t)> event("Test.Filter2", &module_, nullptr,
                                      &dispatcher_);
  dispatcher_.InstallFilter(event, &DoubleFirstArg, {.module = &module_});
  dispatcher_.InstallFilter(event, &DoubleFirstArg, {.module = &module_});
  dispatcher_.InstallHandler(event, +[](int64_t a, int64_t) {
                               g_log.last_a = a;
                             },
                             {.module = &module_});
  event.Raise(10, 0);
  EXPECT_EQ(g_log.last_a, 40);
}

// --- VAR (event-level by-ref) parameters --------------------------------------

struct SavedState {
  int64_t v0;
  int64_t result;
};

void SyscallHandler(int64_t strand, SavedState& state) {
  (void)strand;
  state.result = state.v0 * 10;
}

TEST_P(DispatchTest, ByRefParameterSharedWithHandlers) {
  Event<void(int64_t, SavedState&)> event("Test.Syscall", &module_, nullptr,
                                          &dispatcher_);
  dispatcher_.InstallHandler(event, &SyscallHandler, {.module = &module_});
  SavedState state{7, 0};
  event.Raise(1, state);
  EXPECT_EQ(state.result, 70) << "VAR parameters mutate the raiser's object";
}

// --- Uninstall -----------------------------------------------------------------

TEST_P(DispatchTest, UninstallRemovesHandler) {
  Reset();
  Event<void(int64_t, int64_t)> event("Test.Uninstall", &module_, nullptr,
                                      &dispatcher_);
  auto b1 = dispatcher_.InstallHandler(event, &H1, {.module = &module_});
  dispatcher_.InstallHandler(event, &H2, {.module = &module_});
  event.Raise(0, 0);
  dispatcher_.Uninstall(b1, &module_);
  event.Raise(0, 0);
  EXPECT_EQ(g_log.order, (std::vector<int>{1, 2, 2}));
}

TEST_P(DispatchTest, DoubleUninstallRejected) {
  Event<void(int64_t, int64_t)> event("Test.Uninstall2", &module_, nullptr,
                                      &dispatcher_);
  auto binding = dispatcher_.InstallHandler(event, &H1, {.module = &module_});
  dispatcher_.Uninstall(binding, &module_);
  EXPECT_THROW(dispatcher_.Uninstall(binding, &module_), InstallError);
}

// --- Typechecking (§2.4) --------------------------------------------------------

TEST_P(DispatchTest, ClosureSubtypeEnforced) {
  struct BaseClosure {};
  struct Unrelated {};
  Event<int64_t(int64_t, int64_t)> event("Test.Sub", &module_, nullptr,
                                         &dispatcher_);
  int64_t (*handler)(BaseClosure*, int64_t, int64_t) =
      +[](BaseClosure*, int64_t a, int64_t b) { return a + b; };
  // Installing with an unrelated closure type must fail the subtype check.
  int64_t (*bad)(Unrelated*, int64_t, int64_t) =
      +[](Unrelated*, int64_t a, int64_t b) { return a + b; };
  (void)bad;
  BaseClosure base;
  EXPECT_NO_THROW(
      dispatcher_.InstallHandler(event, handler, &base, {.module = &module_}));
  // A mismatched closure pointer type would not compile against `handler`;
  // the runtime check matters for the subtype lattice, covered in
  // types_test. Here we check that the fast path still dispatches.
  EXPECT_EQ(event.Raise(1, 2), 3);
}

// --- Handler counts / stats -----------------------------------------------------

TEST_P(DispatchTest, HandlerAndGuardCounts) {
  Event<void(int64_t, int64_t)> event("Test.Counts", &module_, nullptr,
                                      &dispatcher_);
  dispatcher_.InstallHandler(event, &GuardAlwaysTrue, &H1,
                             {.module = &module_});
  dispatcher_.InstallHandler(event, &H2, {.module = &module_});
  EXPECT_EQ(event.handler_count(), 2u);
  EXPECT_EQ(event.guard_count(), 1u);
}

TEST_P(DispatchTest, StatsTrackTableKinds) {
  Dispatcher::Stats before = dispatcher_.stats();
  Event<int64_t(int64_t, int64_t)> event("Test.Stats", &module_, &Add,
                                         &dispatcher_);
  dispatcher_.InstallHandler(event, &GuardAlwaysTrue, &Mul,
                             {.module = &module_});
  Dispatcher::Stats after = dispatcher_.stats();
  EXPECT_GT(after.rebuilds, before.rebuilds);
  if (GetParam() != Engine::kInterp && codegen::CodegenAvailable()) {
    EXPECT_GT(after.stub_compiles, before.stub_compiles);
  }
}

// --- 50 handlers (Table 1 scale) -------------------------------------------------

TEST_P(DispatchTest, FiftyHandlersAllFireInOrder) {
  Reset();
  Event<int64_t(int64_t, int64_t)> event("Test.Fifty", &module_, nullptr,
                                         &dispatcher_);
  dispatcher_.SetResultPolicy(event, ResultPolicy::kSum);
  for (int i = 0; i < 50; ++i) {
    dispatcher_.InstallHandler(event, &Add, {.module = &module_});
  }
  EXPECT_EQ(event.handler_count(), 50u);
  EXPECT_EQ(event.Raise(1, 1), 100);
}


// --- Wide signatures (JIT register-argument limits) ---------------------------

int64_t Sum6(int64_t a, int64_t b, int64_t c, int64_t d, int64_t e,
             int64_t f) {
  return a + b + c + d + e + f;
}

struct Bias {
  int64_t bias;
};

int64_t Sum5WithClosure(Bias* bias, int64_t a, int64_t b, int64_t c,
                        int64_t d, int64_t e) {
  return bias->bias + a + b + c + d + e;
}

TEST_P(DispatchTest, SixArgEventDispatches) {
  // Six integer args: the JIT's register limit without closures.
  Event<int64_t(int64_t, int64_t, int64_t, int64_t, int64_t, int64_t)>
      event("Test.Six", &module_, nullptr, &dispatcher_);
  dispatcher_.InstallHandler(event, &Sum6, {.module = &module_});
  dispatcher_.InstallHandler(event, &Sum6, {.module = &module_});
  dispatcher_.SetResultPolicy(event, ResultPolicy::kSum);
  EXPECT_EQ(event.Raise(1, 2, 3, 4, 5, 6), 2 * 21);
}

TEST_P(DispatchTest, FiveArgsPlusClosureShiftsCorrectly) {
  // Five args + closure: every SysV argument register in use.
  Event<int64_t(int64_t, int64_t, int64_t, int64_t, int64_t)> event(
      "Test.FivePlus", &module_, nullptr, &dispatcher_);
  Bias bias{1000};
  dispatcher_.InstallHandler(event, &Sum5WithClosure, &bias,
                             {.module = &module_});
  EXPECT_EQ(event.Raise(1, 2, 3, 4, 5), 1015);
}

TEST_P(DispatchTest, SixArgsPlusClosureFallsBackToInterpreter) {
  // Seven register args would be needed: the planner must decline the JIT
  // and dispatch through the interpreter with identical semantics.
  Event<int64_t(int64_t, int64_t, int64_t, int64_t, int64_t, int64_t)>
      event("Test.SixPlus", &module_, nullptr, &dispatcher_);
  Bias bias{1};
  int64_t (*handler)(Bias*, int64_t, int64_t, int64_t, int64_t, int64_t,
                     int64_t) =
      +[](Bias* b, int64_t a1, int64_t a2, int64_t a3, int64_t a4,
          int64_t a5, int64_t a6) {
        return b->bias + a1 + a2 + a3 + a4 + a5 + a6;
      };
  dispatcher_.InstallHandler(event, handler, &bias, {.module = &module_});
  EXPECT_EQ(event.Raise(1, 2, 3, 4, 5, 6), 22);
}

TEST_P(DispatchTest, DoubleParametersDispatchViaInterpreter) {
  // kFloat64 parameters are JIT-ineligible (SSE registers); semantics must
  // be preserved through the fallback.
  Event<double(double, double)> event("Test.Doubles", &module_, nullptr,
                                      &dispatcher_);
  dispatcher_.InstallLambda(event, [](double a, double b) { return a * b; },
                            {.module = &module_});
  EXPECT_DOUBLE_EQ(event.Raise(2.5, 4.0), 10.0);
}

INSTANTIATE_TEST_SUITE_P(Engines, DispatchTest,
                         ::testing::Values(Engine::kJit, Engine::kJitNoInline,
                                           Engine::kInterp),
                         EngineName);

}  // namespace
}  // namespace spin
