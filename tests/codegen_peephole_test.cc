// Unit tests for the LIR peephole pass: each rewrite, plus conservatism
// checks (facts must die across calls, stores, and labels).
#include <gtest/gtest.h>

#include "src/codegen/peephole.h"

namespace spin {
namespace codegen {
namespace {

TEST(PeepholeTest, CmpZeroBecomesTest) {
  std::vector<LInsn> code = {
      {.op = LOp::kCmpRegImm32, .dst = Reg::kRax, .imm = 0},
      {.op = LOp::kRet},
  };
  EXPECT_GE(Peephole(code), 1u);
  ASSERT_EQ(code.size(), 2u);
  EXPECT_EQ(code[0].op, LOp::kTestRegReg);
  EXPECT_EQ(code[0].dst, Reg::kRax);
  EXPECT_EQ(code[0].src, Reg::kRax);
}

TEST(PeepholeTest, CmpNonZeroUntouched) {
  std::vector<LInsn> code = {
      {.op = LOp::kCmpRegImm32, .dst = Reg::kRax, .imm = 7},
      {.op = LOp::kRet},
  };
  Peephole(code);
  EXPECT_EQ(code[0].op, LOp::kCmpRegImm32);
}

TEST(PeepholeTest, JumpToNextDropped) {
  std::vector<LInsn> code = {
      {.op = LOp::kJmp, .label = 3},
      {.op = LOp::kBind, .label = 3},
      {.op = LOp::kRet},
  };
  EXPECT_GE(Peephole(code), 1u);
  EXPECT_EQ(code[0].op, LOp::kBind);
}

TEST(PeepholeTest, JumpElsewhereKept) {
  std::vector<LInsn> code = {
      {.op = LOp::kJmp, .label = 3},
      {.op = LOp::kMovRegImm, .dst = Reg::kRax, .imm = 1},
      {.op = LOp::kBind, .label = 3},
      {.op = LOp::kRet},
  };
  Peephole(code);
  EXPECT_EQ(code[0].op, LOp::kJmp);
}

TEST(PeepholeTest, SelfMoveDropped) {
  std::vector<LInsn> code = {
      {.op = LOp::kMovRegReg, .dst = Reg::kRax, .src = Reg::kRax},
      {.op = LOp::kRet},
  };
  EXPECT_GE(Peephole(code), 1u);
  EXPECT_EQ(code[0].op, LOp::kRet);
}

TEST(PeepholeTest, RedundantReloadDropped) {
  std::vector<LInsn> code = {
      {.op = LOp::kLoadRegMem, .dst = Reg::kRdi, .base = Reg::kRbx,
       .width = 8, .disp = 0},
      {.op = LOp::kLoadRegMem, .dst = Reg::kRdi, .base = Reg::kRbx,
       .width = 8, .disp = 0},
      {.op = LOp::kRet},
  };
  EXPECT_GE(Peephole(code), 1u);
  ASSERT_EQ(code.size(), 2u);
}

TEST(PeepholeTest, ReloadSurvivesDifferentSlot) {
  std::vector<LInsn> code = {
      {.op = LOp::kLoadRegMem, .dst = Reg::kRdi, .base = Reg::kRbx,
       .width = 8, .disp = 0},
      {.op = LOp::kLoadRegMem, .dst = Reg::kRdi, .base = Reg::kRbx,
       .width = 8, .disp = 8},
      {.op = LOp::kRet},
  };
  Peephole(code);
  EXPECT_EQ(code.size(), 3u);
}

TEST(PeepholeTest, CallKillsLoadFacts) {
  // A handler may mutate the frame through a filter pointer: reloads after
  // a call must stay.
  std::vector<LInsn> code = {
      {.op = LOp::kLoadRegMem, .dst = Reg::kRdi, .base = Reg::kRbx,
       .width = 8, .disp = 0},
      {.op = LOp::kCall, .dst = Reg::kRax},
      {.op = LOp::kLoadRegMem, .dst = Reg::kRdi, .base = Reg::kRbx,
       .width = 8, .disp = 0},
      {.op = LOp::kRet},
  };
  Peephole(code);
  EXPECT_EQ(code.size(), 4u);
}

TEST(PeepholeTest, OverlappingStoreKillsLoadFacts) {
  std::vector<LInsn> code = {
      {.op = LOp::kLoadRegMem, .dst = Reg::kRdi, .base = Reg::kRbx,
       .width = 8, .disp = 0},
      {.op = LOp::kStoreMemReg, .src = Reg::kRcx, .base = Reg::kRbx,
       .width = 8, .disp = 0},
      {.op = LOp::kLoadRegMem, .dst = Reg::kRdi, .base = Reg::kRbx,
       .width = 8, .disp = 0},
      {.op = LOp::kRet},
  };
  Peephole(code);
  EXPECT_EQ(code.size(), 4u);
}

TEST(PeepholeTest, DisjointSameBaseStoreKeepsFacts) {
  // The stub's fired-count increment at [rbx+72] must not force argument
  // slot reloads from [rbx+0].
  std::vector<LInsn> code = {
      {.op = LOp::kLoadRegMem, .dst = Reg::kRdi, .base = Reg::kRbx,
       .width = 8, .disp = 0},
      {.op = LOp::kIncMem32, .base = Reg::kRbx, .disp = 72},
      {.op = LOp::kLoadRegMem, .dst = Reg::kRdi, .base = Reg::kRbx,
       .width = 8, .disp = 0},
      {.op = LOp::kRet},
  };
  EXPECT_GE(Peephole(code), 1u);
  EXPECT_EQ(code.size(), 3u);
}

TEST(PeepholeTest, DifferentBaseStoreKillsFacts) {
  // A store through another register could alias anything.
  std::vector<LInsn> code = {
      {.op = LOp::kLoadRegMem, .dst = Reg::kRdi, .base = Reg::kRbx,
       .width = 8, .disp = 0},
      {.op = LOp::kStoreMemReg, .src = Reg::kRcx, .base = Reg::kR11,
       .width = 8, .disp = 128},
      {.op = LOp::kLoadRegMem, .dst = Reg::kRdi, .base = Reg::kRbx,
       .width = 8, .disp = 0},
      {.op = LOp::kRet},
  };
  Peephole(code);
  EXPECT_EQ(code.size(), 4u);
}

TEST(PeepholeTest, UnbranchedLabelKeepsFacts) {
  // Forward-only control flow: a label nobody jumps to is a plain point.
  std::vector<LInsn> code = {
      {.op = LOp::kLoadRegMem, .dst = Reg::kRdi, .base = Reg::kRbx,
       .width = 8, .disp = 0},
      {.op = LOp::kBind, .label = 1},
      {.op = LOp::kLoadRegMem, .dst = Reg::kRdi, .base = Reg::kRbx,
       .width = 8, .disp = 0},
      {.op = LOp::kRet},
  };
  EXPECT_GE(Peephole(code), 1u);
  EXPECT_EQ(code.size(), 3u);
}

TEST(PeepholeTest, JoinDropsFactMissingOnOneEdge) {
  // The branch into L1 happens before the load; the fact only holds on the
  // fall-through edge, so the reload after L1 must stay.
  std::vector<LInsn> code = {
      {.op = LOp::kTestRegReg, .dst = Reg::kRax, .src = Reg::kRax},
      {.op = LOp::kJcc, .cc = Cond::kE, .label = 1},
      {.op = LOp::kLoadRegMem, .dst = Reg::kRdi, .base = Reg::kRbx,
       .width = 8, .disp = 0},
      {.op = LOp::kBind, .label = 1},
      {.op = LOp::kLoadRegMem, .dst = Reg::kRdi, .base = Reg::kRbx,
       .width = 8, .disp = 0},
      {.op = LOp::kRet},
  };
  Peephole(code);
  EXPECT_EQ(code.size(), 6u);
}

TEST(PeepholeTest, JoinKeepsFactCommonToAllEdges) {
  // The fact is established before the branch, so both edges carry it and
  // the reload after the join is redundant.
  std::vector<LInsn> code = {
      {.op = LOp::kLoadRegMem, .dst = Reg::kRdi, .base = Reg::kRbx,
       .width = 8, .disp = 0},
      {.op = LOp::kTestRegReg, .dst = Reg::kRax, .src = Reg::kRax},
      {.op = LOp::kJcc, .cc = Cond::kE, .label = 1},
      {.op = LOp::kMovRegImm, .dst = Reg::kRcx, .imm = 1},
      {.op = LOp::kBind, .label = 1},
      {.op = LOp::kLoadRegMem, .dst = Reg::kRdi, .base = Reg::kRbx,
       .width = 8, .disp = 0},
      {.op = LOp::kRet},
  };
  EXPECT_GE(Peephole(code), 1u);
  EXPECT_EQ(code.size(), 6u);
}

TEST(PeepholeTest, BackwardBranchDisablesJoinOptimization) {
  // A backward branch (never produced by the stub compiler) must degrade
  // gracefully: facts die at labels, nothing is miscompiled.
  std::vector<LInsn> code = {
      {.op = LOp::kLoadRegMem, .dst = Reg::kRdi, .base = Reg::kRbx,
       .width = 8, .disp = 0},
      {.op = LOp::kBind, .label = 1},
      {.op = LOp::kLoadRegMem, .dst = Reg::kRdi, .base = Reg::kRbx,
       .width = 8, .disp = 0},
      {.op = LOp::kTestRegReg, .dst = Reg::kRax, .src = Reg::kRax},
      {.op = LOp::kJcc, .cc = Cond::kNe, .label = 1},
      {.op = LOp::kRet},
  };
  Peephole(code);
  EXPECT_EQ(code.size(), 6u) << "reload inside the loop must survive";
}

TEST(PeepholeTest, WriteToRegKillsItsFact) {
  std::vector<LInsn> code = {
      {.op = LOp::kLoadRegMem, .dst = Reg::kRdi, .base = Reg::kRbx,
       .width = 8, .disp = 0},
      {.op = LOp::kMovRegImm, .dst = Reg::kRdi, .imm = 5},
      {.op = LOp::kLoadRegMem, .dst = Reg::kRdi, .base = Reg::kRbx,
       .width = 8, .disp = 0},
      {.op = LOp::kRet},
  };
  Peephole(code);
  EXPECT_EQ(code.size(), 4u);
}

TEST(PeepholeTest, WriteToBaseKillsDependentFacts) {
  std::vector<LInsn> code = {
      {.op = LOp::kLoadRegMem, .dst = Reg::kRdi, .base = Reg::kRcx,
       .width = 8, .disp = 0},
      {.op = LOp::kMovRegImm, .dst = Reg::kRcx, .imm = 5},
      {.op = LOp::kLoadRegMem, .dst = Reg::kRdi, .base = Reg::kRcx,
       .width = 8, .disp = 0},
      {.op = LOp::kRet},
  };
  Peephole(code);
  EXPECT_EQ(code.size(), 4u);
}

TEST(PeepholeTest, WidthMismatchIsNotRedundant) {
  std::vector<LInsn> code = {
      {.op = LOp::kLoadRegMem, .dst = Reg::kRdi, .base = Reg::kRbx,
       .width = 8, .disp = 0},
      {.op = LOp::kLoadRegMem, .dst = Reg::kRdi, .base = Reg::kRbx,
       .width = 4, .disp = 0},
      {.op = LOp::kRet},
  };
  Peephole(code);
  EXPECT_EQ(code.size(), 3u);
}

TEST(PeepholeTest, CascadingRewritesReachFixpoint) {
  // Dropping a jump makes a reload adjacent; both must eventually go.
  std::vector<LInsn> code = {
      {.op = LOp::kLoadRegMem, .dst = Reg::kRdi, .base = Reg::kRbx,
       .width = 8, .disp = 0},
      {.op = LOp::kMovRegReg, .dst = Reg::kRax, .src = Reg::kRax},
      {.op = LOp::kLoadRegMem, .dst = Reg::kRdi, .base = Reg::kRbx,
       .width = 8, .disp = 0},
      {.op = LOp::kRet},
  };
  Peephole(code);
  EXPECT_EQ(code.size(), 2u);
}

}  // namespace
}  // namespace codegen
}  // namespace spin
