// Discrete-event simulator tests.
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/simulator.h"

namespace spin {
namespace sim {
namespace {

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(300, [&] { order.push_back(3); });
  sim.At(100, [&] { order.push_back(1); });
  sim.At(200, [&] { order.push_back(2); });
  EXPECT_EQ(sim.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now_ns(), 300u);
}

TEST(SimulatorTest, SimultaneousEventsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.At(100, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, EventsMayScheduleEvents) {
  Simulator sim;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 5) {
      sim.After(10, step);
    }
  };
  sim.After(10, step);
  sim.Run();
  EXPECT_EQ(chain, 5);
  EXPECT_EQ(sim.now_ns(), 50u);
}

TEST(SimulatorTest, RunUntilBoundsVirtualTime) {
  Simulator sim;
  int ran = 0;
  sim.At(100, [&] { ++ran; });
  sim.At(1000, [&] { ++ran; });
  EXPECT_EQ(sim.Run(500), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.pending(), 1u);
  sim.Run();
  EXPECT_EQ(ran, 2);
}

TEST(SimulatorTest, PastSchedulesClampToNow) {
  Simulator sim;
  sim.At(100, [] {});
  sim.Run();
  int ran = 0;
  sim.At(50, [&] { ++ran; });  // in the past: runs "now"
  sim.Run();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now_ns(), 100u);
}

TEST(LinkModelTest, TenMegabitMath) {
  LinkModel model;  // defaults: 10 Mb/s, 25 us propagation
  EXPECT_EQ(model.SerializationNs(1), 800u);         // 8 bits at 10 Mb/s
  EXPECT_EQ(model.SerializationNs(1250), 1'000'000u);  // 10 kb -> 1 ms
  EXPECT_EQ(model.TransferNs(50), 40'000u + 25'000u);
}

TEST(LinkModelTest, CustomBandwidth) {
  LinkModel gigabit{1'000'000'000, 1'000};
  EXPECT_EQ(gigabit.SerializationNs(1250), 10'000u);
  EXPECT_EQ(gigabit.TransferNs(1250), 11'000u);
}

}  // namespace
}  // namespace sim
}  // namespace spin
