#!/usr/bin/env python3
"""Deterministic self-test for tools/bench_diff.py.

The CI bench gate is only trustworthy if it provably fails on a real
regression and passes on identical inputs, so this test drives the tool
through both paths (plus the allowlist, missing-row, and improvement
cases) with synthetic fixtures — no benchmark noise involved. Registered
in tests/CMakeLists.txt so `ctest` runs it locally and under CI.

Usage: bench_diff_selftest.py /path/to/bench_diff.py
"""

import json
import os
import subprocess
import sys
import tempfile

DISPATCH_DOC = {
    "bench": "dispatch_matrix",
    "rows": [
        {"mode": "sync", "shards": 1, "threads": 1, "handlers": 10,
         "raises_per_sec": 28000000, "ns_per_raise": 35.7},
        {"mode": "async", "shards": 16, "threads": 4, "handlers": 10,
         "raises_per_sec": 1200000, "ns_per_raise": 833.0},
    ],
}

ABLATION_LINES = """\
Ablation of dispatcher design decisions (ns per raise)
  this human-readable line is ignored by the parser
{"bench":"ablation","case":"ten_handlers_full","mean_ns":40.1,"p50_ns":39,"p90_ns":44,"p99_ns":60,"max_ns":1200}
{"bench":"ablation","case":"sampled_128_over_off","p50_ratio":1.12}
"""


def write(tmp, name, content):
    path = os.path.join(tmp, name)
    with open(path, "w", encoding="utf-8") as f:
        if isinstance(content, str):
            f.write(content)
        else:
            json.dump(content, f)
    return path


def run(tool, *argv):
    proc = subprocess.run(
        [sys.executable, tool, *argv],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    return proc.returncode, proc.stdout


def expect(label, got, want, output):
    if got != want:
        print(f"FAIL {label}: exit {got}, want {want}\n{output}")
        return False
    print(f"ok   {label}")
    return True


def main():
    if len(sys.argv) != 2:
        print("usage: bench_diff_selftest.py /path/to/bench_diff.py")
        return 2
    tool = sys.argv[1]
    ok = True
    with tempfile.TemporaryDirectory() as tmp:
        base = write(tmp, "base.json", DISPATCH_DOC)

        # Identical input: the gate must pass on a baseline-vs-baseline
        # diff, the invariant CI checks on every run.
        code, out = run(tool, base, base)
        ok &= expect("identical inputs pass", code, 0, out)

        # A 2x latency regression in one cell must fail the gate.
        slow = json.loads(json.dumps(DISPATCH_DOC))
        slow["rows"][0]["ns_per_raise"] = 71.4
        slow["rows"][0]["raises_per_sec"] = 14000000
        slow_path = write(tmp, "slow.json", slow)
        code, out = run(tool, base, slow_path)
        ok &= expect("2x regression fails", code, 1, out)
        if "ns_per_raise" not in out or "raises_per_sec" not in out:
            print(f"FAIL regression report names the metrics:\n{out}")
            ok = False

        # The same regression passes when the series is allowlisted.
        code, out = run(tool, base, slow_path,
                        "--allow", "sync/1/1/10/*")
        ok &= expect("allowlisted regression passes", code, 0, out)

        # A per-series threshold override can also absorb it.
        code, out = run(tool, base, slow_path,
                        "--per", "sync/1/1/10/ns_per_raise=2.5",
                        "--per", "sync/1/1/10/raises_per_sec=2.5")
        ok &= expect("--per override passes", code, 0, out)

        # Getting faster is not a regression.
        fast = json.loads(json.dumps(DISPATCH_DOC))
        fast["rows"][0]["ns_per_raise"] = 20.0
        fast["rows"][0]["raises_per_sec"] = 50000000
        code, out = run(tool, base, write(tmp, "fast.json", fast))
        ok &= expect("improvement passes", code, 0, out)

        # Dropping a case from the run must fail: a silently skipped
        # bench is indistinguishable from a hidden regression.
        short = {"bench": "dispatch_matrix", "rows": DISPATCH_DOC["rows"][:1]}
        code, out = run(tool, base, write(tmp, "short.json", short))
        ok &= expect("missing row fails", code, 1, out)

        # A new case in the fresh run is informational, not gating.
        grown = json.loads(json.dumps(DISPATCH_DOC))
        grown["rows"].append({"mode": "sync", "shards": 64, "threads": 1,
                              "handlers": 10, "ns_per_raise": 50.0})
        code, out = run(tool, base, write(tmp, "grown.json", grown))
        ok &= expect("extra row passes", code, 0, out)

        # JSON-lines input (bench_ablation stdout shape), including a
        # machine-independent *_ratio metric gating in the higher-is-
        # worse direction.
        lines = write(tmp, "ablation.txt", ABLATION_LINES)
        code, out = run(tool, lines, lines)
        ok &= expect("jsonl self-diff passes", code, 0, out)
        worse = ABLATION_LINES.replace('"p50_ratio":1.12',
                                       '"p50_ratio":2.4')
        code, out = run(tool, lines, write(tmp, "worse.txt", worse))
        ok &= expect("ratio regression fails", code, 1, out)

        # An empty baseline is a usage error, not a silent pass.
        code, out = run(tool, write(tmp, "empty.txt", "no rows here\n"),
                        base)
        ok &= expect("empty baseline errors", code, 2, out)

    print("PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
