// Access control (§2.5), denial of service (§2.6), and quota tests.
#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "src/core/dispatcher.h"
#include "src/rt/clock.h"

namespace spin {
namespace {

struct SyscallState {
  int64_t space;  // the address space id the call came from
  int64_t handled_by = 0;
};

void Handler(int64_t /*strand*/, SyscallState& state) {
  state.handled_by = 1;
}
void OtherHandler(int64_t /*strand*/, SyscallState& state) {
  state.handled_by = 2;
}

// Imposed guard in Figure 3's shape: only system calls from the installing
// thread's address space are visible to the handler.
struct SpaceClosure {
  int64_t valid_space;
};

bool ImposedSpaceGuard(SpaceClosure* closure, int64_t /*strand*/,
                       SyscallState& state) {
  return state.space == closure->valid_space;
}

// Authorizer: approves installs but imposes the space guard; denies
// everything from a module named "Evil".
struct AuthState {
  SpaceClosure closure{7};
  int install_requests = 0;
  int uninstall_requests = 0;
};

bool SyscallAuthorizer(AuthRequest& request, void* ctx) {
  auto* state = static_cast<AuthState*>(ctx);
  if (request.requestor != nullptr && request.requestor->name() == "Evil") {
    return false;
  }
  switch (request.op) {
    case AuthOp::kInstall:
      ++state->install_requests;
      request.ImposeGuard(
          MakeImposedGuard(&ImposedSpaceGuard, &state->closure));
      return true;
    case AuthOp::kUninstall:
      ++state->uninstall_requests;
      return true;
    default:
      return true;
  }
}

class AccessTest : public ::testing::Test {
 protected:
  Module machine_trap_{"MachineTrap"};
  Module extension_{"MachEmulator"};
  Module evil_{"Evil"};
  Dispatcher dispatcher_;
};

TEST_F(AccessTest, AuthorityProofRequiredForAuthorizer) {
  Event<void(int64_t, SyscallState&)> event("MachineTrap.Syscall",
                                            &machine_trap_, nullptr,
                                            &dispatcher_);
  AuthState auth;
  // A module other than the authority cannot install an authorizer.
  try {
    dispatcher_.InstallAuthorizer(event, &SyscallAuthorizer, &auth,
                                  extension_);
    FAIL() << "expected InstallError";
  } catch (const InstallError& e) {
    EXPECT_EQ(e.status(), InstallStatus::kNotAuthority);
  }
  // The authority can (THIS_MODULE-style proof).
  EXPECT_NO_THROW(dispatcher_.InstallAuthorizer(event, &SyscallAuthorizer,
                                                &auth, machine_trap_));
}

TEST_F(AccessTest, AuthorizerImposesGuardOnInstall) {
  Event<void(int64_t, SyscallState&)> event("MachineTrap.Syscall",
                                            &machine_trap_, nullptr,
                                            &dispatcher_);
  AuthState auth;
  dispatcher_.InstallAuthorizer(event, &SyscallAuthorizer, &auth,
                                machine_trap_);
  dispatcher_.InstallHandler(event, &Handler, {.module = &extension_});
  EXPECT_EQ(auth.install_requests, 1);

  SyscallState from_my_space{7, 0};
  event.Raise(1, from_my_space);
  EXPECT_EQ(from_my_space.handled_by, 1) << "own address space is visible";

  SyscallState from_other_space{8, 0};
  EXPECT_THROW(event.Raise(1, from_other_space), NoHandlerError);
  EXPECT_EQ(from_other_space.handled_by, 0)
      << "foreign address space must be filtered by the imposed guard";
}

TEST_F(AccessTest, AuthorizerDeniesUntrustedModule) {
  Event<void(int64_t, SyscallState&)> event("MachineTrap.Syscall",
                                            &machine_trap_, nullptr,
                                            &dispatcher_);
  AuthState auth;
  dispatcher_.InstallAuthorizer(event, &SyscallAuthorizer, &auth,
                                machine_trap_);
  try {
    dispatcher_.InstallHandler(event, &OtherHandler, {.module = &evil_});
    FAIL() << "expected InstallError";
  } catch (const InstallError& e) {
    EXPECT_EQ(e.status(), InstallStatus::kNotAuthorized);
  }
  EXPECT_EQ(event.handler_count(), 0u);
}

TEST_F(AccessTest, AuthorizerConsultedOnUninstall) {
  Event<void(int64_t, SyscallState&)> event("MachineTrap.Syscall",
                                            &machine_trap_, nullptr,
                                            &dispatcher_);
  AuthState auth;
  dispatcher_.InstallAuthorizer(event, &SyscallAuthorizer, &auth,
                                machine_trap_);
  auto binding = dispatcher_.InstallHandler(event, &Handler,
                                            {.module = &extension_});
  dispatcher_.Uninstall(binding, &extension_);
  EXPECT_EQ(auth.uninstall_requests, 1);
}

TEST_F(AccessTest, ImposedGuardAddedDynamically) {
  // §2.5: "Any number of guards can be imposed on a handler, and they can
  // be added and removed dynamically."
  Event<void(int64_t, SyscallState&)> event("MachineTrap.Syscall",
                                            &machine_trap_, nullptr,
                                            &dispatcher_);
  auto binding = dispatcher_.InstallHandler(event, &Handler,
                                            {.module = &extension_});
  SyscallState state{7, 0};
  event.Raise(1, state);
  EXPECT_EQ(state.handled_by, 1);

  SpaceClosure closure{9};
  dispatcher_.ImposeGuard(event, binding, &ImposedSpaceGuard, &closure);
  SyscallState blocked{7, 0};
  EXPECT_THROW(event.Raise(1, blocked), NoHandlerError);
  SyscallState allowed{9, 0};
  event.Raise(1, allowed);
  EXPECT_EQ(allowed.handled_by, 1);
}

// --- Quotas (§2.6 "Too many handlers") ----------------------------------------

void Noop(int64_t, int64_t) {}

TEST_F(AccessTest, QuotaDeniesExcessiveInstalls) {
  Dispatcher::Config config;
  config.quota_bytes_per_module = 4096;  // tiny budget
  Dispatcher dispatcher(config);
  Event<void(int64_t, int64_t)> event("Test.Quota", &machine_trap_, nullptr,
                                      &dispatcher);
  bool denied = false;
  int installed = 0;
  for (int i = 0; i < 1000; ++i) {
    try {
      dispatcher.InstallHandler(event, &Noop, {.module = &extension_});
      ++installed;
    } catch (const InstallError& e) {
      EXPECT_EQ(e.status(), InstallStatus::kQuotaExceeded);
      denied = true;
      break;
    }
  }
  EXPECT_TRUE(denied) << "a 4 KiB budget cannot hold 1000 bindings";
  EXPECT_GT(installed, 0);
  EXPECT_GT(dispatcher.quota().Usage(&extension_), 0u);
}

TEST_F(AccessTest, UninstallReleasesQuota) {
  Dispatcher::Config config;
  config.quota_bytes_per_module = 4096;
  Dispatcher dispatcher(config);
  Event<void(int64_t, int64_t)> event("Test.Quota", &machine_trap_, nullptr,
                                      &dispatcher);
  auto binding = dispatcher.InstallHandler(event, &Noop,
                                           {.module = &extension_});
  size_t used = dispatcher.quota().Usage(&extension_);
  EXPECT_GT(used, 0u);
  dispatcher.Uninstall(binding, &extension_);
  EXPECT_EQ(dispatcher.quota().Usage(&extension_), 0u);
}


TEST_F(AccessTest, GuardAdditionsCountAgainstQuota) {
  // §2.6: guard storage is charged to the installing module; piling guards
  // onto one binding cannot bypass the budget.
  Dispatcher::Config config;
  config.quota_bytes_per_module = 8192;
  Dispatcher dispatcher(config);
  Event<void(int64_t, int64_t)> event("Test.GuardQuota", &machine_trap_,
                                      nullptr, &dispatcher);
  auto binding = dispatcher.InstallHandler(event, &Noop,
                                           {.module = &extension_});
  static uint64_t cell = 1;
  bool denied = false;
  for (int i = 0; i < 1000; ++i) {
    try {
      dispatcher.AddMicroGuard(binding, micro::GuardGlobalEq(&cell, 1));
    } catch (const InstallError& e) {
      EXPECT_EQ(e.status(), InstallStatus::kQuotaExceeded);
      denied = true;
      break;
    }
  }
  EXPECT_TRUE(denied) << "an 8 KiB budget cannot hold 1000 guards";
  // Removing guards releases the charge and unblocks further additions.
  size_t usage_before = dispatcher.quota().Usage(&extension_);
  dispatcher.RemoveGuard(binding, 0, &extension_);
  EXPECT_LT(dispatcher.quota().Usage(&extension_), usage_before);
  EXPECT_NO_THROW(
      dispatcher.AddMicroGuard(binding, micro::GuardGlobalEq(&cell, 1)));
}

// --- EPHEMERAL handlers (§2.6 "Runaway handlers") -------------------------------

void WellBehavedEphemeral(int64_t, int64_t) { CheckTermination(); }

void RunawayEphemeral(int64_t, int64_t) {
  // Spins until terminated; polls as compiler-inserted checks would.
  while (true) {
    CheckTermination();
  }
}

std::atomic<int> g_after_count{0};
void AfterHandler(int64_t, int64_t) { g_after_count.fetch_add(1); }

TEST_F(AccessTest, EphemeralRequiredEnforced) {
  Event<void(int64_t, int64_t)> event("Net.PacketArrived", &machine_trap_,
                                      nullptr, &dispatcher_);
  dispatcher_.RequireEphemeralHandlers(event, 1000000, &machine_trap_);
  try {
    dispatcher_.InstallHandler(event, &Noop, {.module = &extension_});
    FAIL() << "expected InstallError";
  } catch (const InstallError& e) {
    EXPECT_EQ(e.status(), InstallStatus::kEphemeralRequired);
  }
  EXPECT_NO_THROW(dispatcher_.InstallHandler(
      event, &WellBehavedEphemeral,
      {.ephemeral = true, .module = &extension_}));
  event.Raise(0, 0);
}

TEST_F(AccessTest, RunawayEphemeralHandlerTerminated) {
  Event<void(int64_t, int64_t)> event("Net.PacketArrived", &machine_trap_,
                                      nullptr, &dispatcher_);
  dispatcher_.RequireEphemeralHandlers(event, /*budget_ns=*/2000000,
                                       &machine_trap_);
  g_after_count = 0;
  dispatcher_.InstallHandler(event, &RunawayEphemeral,
                             {.ephemeral = true, .module = &extension_});
  dispatcher_.InstallHandler(event, &AfterHandler,
                             {.ephemeral = true, .module = &extension_});
  uint64_t start = NowNs();
  event.Raise(0, 0);  // must return despite the runaway handler
  uint64_t elapsed = NowNs() - start;
  EXPECT_LT(elapsed, 1000000000ull) << "termination must bound the runaway";
  EXPECT_EQ(g_after_count.load(), 1)
      << "termination is localized: later handlers still run";
}

TEST_F(AccessTest, TerminationDoesNotLeakOutsideEphemeralScope) {
  EXPECT_FALSE(InEphemeralScope());
  EXPECT_NO_THROW(CheckTermination());
}

}  // namespace
}  // namespace spin
