// Kernel substrate tests: scheduler + Strand.Run, the trap layer, and the
// VM.PageFault event machinery (§2.2, §2.3).
#include <gtest/gtest.h>

#include "src/kernel/kernel.h"

namespace spin {
namespace {

class KernelTest : public ::testing::Test {
 protected:
  Dispatcher dispatcher_;
  Kernel kernel_{&dispatcher_};
};

TEST_F(KernelTest, StrandsRunRoundRobin) {
  std::vector<int> order;
  kernel_.CreateStrand("a", [&](Strand&) {
    order.push_back(1);
    return order.size() < 5;
  });
  kernel_.CreateStrand("b", [&](Strand&) {
    order.push_back(2);
    return order.size() < 5;
  });
  uint64_t quanta = kernel_.RunUntilIdle();
  EXPECT_GE(quanta, 5u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 1);
}

TEST_F(KernelTest, StrandRunRaisedPerSchedulingOperation) {
  std::vector<uint64_t> scheduled;
  dispatcher_.InstallLambda(
      kernel_.StrandRun, [&](Strand* s) { scheduled.push_back(s->id()); },
      {.module = &kernel_.strand_module()});
  Strand& a = kernel_.CreateStrand("a", [](Strand&) { return false; });
  Strand& b = kernel_.CreateStrand("b", [](Strand&) { return false; });
  kernel_.RunUntilIdle();
  // The intrinsic scheduler hook plus our extension both ran; our log has
  // one entry per quantum.
  EXPECT_EQ(scheduled, (std::vector<uint64_t>{a.id(), b.id()}));
  EXPECT_EQ(kernel_.context_switches(), 2u);
}

TEST_F(KernelTest, UnknownSyscallGetsDefaultHandler) {
  Strand& strand = kernel_.CreateStrand("app", [](Strand&) { return false; });
  strand.saved_state().v0 = 9999;
  kernel_.Syscall(strand);
  EXPECT_EQ(strand.saved_state().error, 78);
  EXPECT_EQ(kernel_.syscall_count(), 1u);
}

TEST_F(KernelTest, BlockAndWake) {
  int runs = 0;
  Strand& sleeper = kernel_.CreateStrand("sleeper", [&](Strand&) {
    ++runs;
    return false;
  });
  kernel_.Block(sleeper);
  EXPECT_EQ(kernel_.RunUntilIdle(), 0u) << "blocked strand must not run";
  kernel_.Wake(sleeper);
  EXPECT_EQ(kernel_.RunUntilIdle(), 1u);
  EXPECT_EQ(runs, 1);
}

TEST_F(KernelTest, KilledStrandStopsRunning) {
  int runs = 0;
  Strand& strand = kernel_.CreateStrand("victim", [&](Strand& s) {
    ++runs;
    if (runs == 2) {
      s.set_state(StrandState::kDone);
    }
    return true;
  });
  (void)strand;
  kernel_.RunUntilIdle();
  EXPECT_EQ(runs, 2);
}

// --- VM -------------------------------------------------------------------

TEST_F(KernelTest, DefaultPagerMapsZeroPages) {
  AddressSpace& space = kernel_.CreateAddressSpace();
  EXPECT_FALSE(space.IsMapped(0x5000, kAccessRead));
  uint8_t value = 0xff;
  EXPECT_TRUE(kernel_.vm.Read(space, 0x5000, &value));
  EXPECT_EQ(value, 0) << "demand-zero page";
  EXPECT_EQ(kernel_.vm.fault_count(), 1u);
  EXPECT_EQ(kernel_.vm.default_pager_count(), 1u);
  // Second access: no fault.
  EXPECT_TRUE(kernel_.vm.Read(space, 0x5001, &value));
  EXPECT_EQ(kernel_.vm.fault_count(), 1u);
}

TEST_F(KernelTest, WriteThenReadThroughVm) {
  AddressSpace& space = kernel_.CreateAddressSpace();
  EXPECT_TRUE(kernel_.vm.Write(space, 0x7abc, 0x42));
  uint8_t value = 0;
  EXPECT_TRUE(kernel_.vm.Read(space, 0x7abc, &value));
  EXPECT_EQ(value, 0x42);
}

struct SegmentPager {
  uint64_t base;
  uint64_t limit;
  int faults = 0;
};

// An extension pager interested only in its own segment — the guard shape
// of §2.1: "an extension that is interested in handling page fault events
// for its data segment can define a guard that checks whether the faulting
// address is in that segment."
bool SegmentGuard(SegmentPager* pager, AddressSpace*, uint64_t addr,
                  int32_t) {
  return addr >= pager->base && addr < pager->limit;
}

bool SegmentFault(SegmentPager* pager, AddressSpace* space, uint64_t addr,
                  int32_t) {
  ++pager->faults;
  space->MapZeroPage(addr, kAccessRead | kAccessWrite);
  uint8_t* frame = space->FrameFor(addr);
  frame[addr % kPageSize] = 0xab;  // "paged in" recognizable content
  return true;
}

TEST_F(KernelTest, GuardedExtensionPagerHandlesItsSegment) {
  SegmentPager pager{0x100000, 0x200000};
  auto binding = dispatcher_.InstallHandler(
      kernel_.vm.PageFault, &SegmentFault, &pager,
      {.module = &kernel_.vm.module()});
  dispatcher_.AddGuard(kernel_.vm.PageFault, binding, &SegmentGuard, &pager);

  AddressSpace& space = kernel_.CreateAddressSpace();
  uint8_t value = 0;
  // Inside the segment: the extension pager serves the fault, the default
  // pager does not run (it is a default handler).
  EXPECT_TRUE(kernel_.vm.Read(space, 0x100400, &value));
  EXPECT_EQ(value, 0xab);
  EXPECT_EQ(pager.faults, 1);
  EXPECT_EQ(kernel_.vm.default_pager_count(), 0u);
  // Outside: trusted default pager.
  EXPECT_TRUE(kernel_.vm.Read(space, 0x300000, &value));
  EXPECT_EQ(value, 0);
  EXPECT_EQ(pager.faults, 1);
  EXPECT_EQ(kernel_.vm.default_pager_count(), 1u);
}

bool RefusingPager(AddressSpace*, uint64_t, int32_t) { return false; }

TEST_F(KernelTest, InaccessiblePageCrashesAccess) {
  // Replace the default pager story: install a handler that refuses; the
  // logical-or of results is false -> access fails (the "VM system crashes
  // the application" case).
  dispatcher_.InstallHandler(kernel_.vm.PageFault, &RefusingPager,
                             {.module = &kernel_.vm.module()});
  AddressSpace& space = kernel_.CreateAddressSpace();
  uint8_t value = 0;
  EXPECT_FALSE(kernel_.vm.Read(space, 0x9000, &value));
}

TEST_F(KernelTest, ProtectionEnforced) {
  AddressSpace& space = kernel_.CreateAddressSpace();
  space.MapZeroPage(0x4000, kAccessRead);  // read-only mapping
  EXPECT_TRUE(space.IsMapped(0x4000, kAccessRead));
  EXPECT_FALSE(space.IsMapped(0x4000, kAccessWrite));
  // A write access faults; the default pager remaps read-write.
  EXPECT_TRUE(kernel_.vm.Write(space, 0x4000, 1));
  EXPECT_EQ(kernel_.vm.fault_count(), 1u);
}

// --- Syscall dispatch through strands ------------------------------------

TEST_F(KernelTest, SyscallFromStrandBody) {
  dispatcher_.InstallLambda(
      kernel_.MachineTrapSyscall,
      [](Strand*, SavedState& state) {
        if (state.v0 == 42) {
          state.v0 = 1234;
          state.error = 0;
        }
      },
      {.module = &kernel_.machine_trap_module()});
  Strand& strand = kernel_.CreateStrand(
      "app",
      [&](Strand& s) {
        s.saved_state().v0 = 42;
        kernel_.Syscall(s);
        return false;
      },
      &kernel_.CreateAddressSpace());
  kernel_.RunUntilIdle();
  EXPECT_EQ(strand.saved_state().v0, 1234);
}

}  // namespace
}  // namespace spin
