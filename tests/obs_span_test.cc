// Span propagation and flight-recorder health: TraceKind exhaustiveness,
// snapshot-under-load integrity, ring-overwrite accounting, parent/child
// span links through nested and async dispatch, and TraceQuery.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/dispatcher.h"
#include "src/obs/context.h"
#include "src/obs/export.h"
#include "src/obs/obs.h"
#include "src/obs/query.h"
#include "src/obs/trace.h"

namespace spin {
namespace {

TEST(TraceKindTest, EveryKindHasAName) {
  for (size_t k = 0; k < obs::kNumTraceKinds; ++k) {
    EXPECT_STRNE(obs::TraceKindName(static_cast<obs::TraceKind>(k)),
                 "unknown")
        << "TraceKind " << k << " is missing from TraceKindName";
  }
}

TEST(TraceKindTest, SnapshotUnderLiveEmittersIsNeverTorn) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  recorder.Reset(1024);
  obs::EnableScope enable;

  const char* name = obs::Intern("Span.Torn");
  std::atomic<bool> stop{false};
  std::vector<std::thread> emitters;
  for (int t = 0; t < 4; ++t) {
    emitters.emplace_back([&stop, name] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto kind = static_cast<obs::TraceKind>(i % obs::kNumTraceKinds);
        obs::FlightRecorder::Global().EmitAt(kind, name, i, i);
        ++i;
      }
    });
  }

  for (int round = 0; round < 200; ++round) {
    for (const obs::MergedRecord& m : recorder.Snapshot()) {
      ASSERT_LT(static_cast<size_t>(m.rec.kind), obs::kNumTraceKinds);
      ASSERT_STRNE(obs::TraceKindName(m.rec.kind), "unknown");
      ASSERT_NE(m.rec.name, nullptr);
    }
  }

  stop.store(true);
  for (std::thread& t : emitters) {
    t.join();
  }
  recorder.Reset(obs::FlightRecorder::kDefaultCapacity);
}

TEST(OverwriteTest, WrappedRecordsAreCounted) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  recorder.Reset(16);
  {
    obs::EnableScope enable;
    const char* name = obs::Intern("Span.Wrap");
    for (uint64_t i = 0; i < 100; ++i) {
      recorder.EmitAt(obs::TraceKind::kHandlerFire, name, i, i);
    }
  }
  EXPECT_EQ(recorder.TotalOverwrites(), 84u);  // 100 emits into 16 slots

  std::ostringstream os;
  obs::ExportMetrics(os);
  EXPECT_NE(os.str().find("spin_trace_overwrites_total{recorder=\"global\"}"
                          " 84"),
            std::string::npos)
      << os.str();
  recorder.Reset(obs::FlightRecorder::kDefaultCapacity);
  EXPECT_EQ(recorder.TotalOverwrites(), 0u);
}

// --- Span propagation through the dispatcher ------------------------------

struct NestCtx {
  Event<void(int64_t)>* inner = nullptr;
};

void InnerHandler(NestCtx*, int64_t) {}

void OuterHandler(NestCtx* ctx, int64_t v) { ctx->inner->Raise(v); }

// Finds the kRaiseBegin record for `name`; fails the test when absent.
const obs::MergedRecord* FindRaiseBegin(
    const std::vector<obs::MergedRecord>& records, const std::string& name) {
  for (const obs::MergedRecord& m : records) {
    if (m.rec.kind == obs::TraceKind::kRaiseBegin && m.rec.name == name) {
      return &m;
    }
  }
  return nullptr;
}

TEST(SpanTest, NestedRaiseOpensChildSpan) {
  obs::FlightRecorder::Global().Reset();
  Dispatcher dispatcher;
  Module module("SpanTest");
  Event<void(int64_t)> outer("Span.Outer", &module, nullptr, &dispatcher);
  Event<void(int64_t)> inner("Span.Inner", &module, nullptr, &dispatcher);
  NestCtx ctx{&inner};
  dispatcher.InstallHandler(outer, &OuterHandler, &ctx, {.module = &module});
  dispatcher.InstallHandler(inner, &InnerHandler, &ctx, {.module = &module});

  dispatcher.EnableTracing(true);
  outer.Raise(1);
  dispatcher.EnableTracing(false);

  auto records = obs::FlightRecorder::Global().Snapshot();
  const obs::MergedRecord* ob = FindRaiseBegin(records, "Span.Outer");
  const obs::MergedRecord* ib = FindRaiseBegin(records, "Span.Inner");
  ASSERT_NE(ob, nullptr);
  ASSERT_NE(ib, nullptr);
  EXPECT_NE(ob->rec.span, 0u);
  EXPECT_EQ(ob->rec.parent, 0u) << "top-level raise is a root span";
  EXPECT_NE(ib->rec.span, ob->rec.span);
  EXPECT_EQ(ib->rec.parent, ob->rec.span)
      << "a raise from inside a handler is a child of the raising span";

  obs::TraceQuery query(records);
  EXPECT_EQ(query.ParentOf(ib->rec.span), ob->rec.span);
  std::vector<uint64_t> children = query.Children(ob->rec.span);
  EXPECT_NE(std::find(children.begin(), children.end(), ib->rec.span),
            children.end());
  // The outer tree contains the inner raise's records.
  bool inner_in_tree = false;
  for (const obs::MergedRecord& m : query.SpanTree(ob->rec.span)) {
    if (m.rec.span == ib->rec.span) {
      inner_in_tree = true;
    }
  }
  EXPECT_TRUE(inner_in_tree);
  obs::FlightRecorder::Global().Reset();
}

void AsyncHandler(NestCtx*, int64_t) {}

TEST(SpanTest, AsyncHandoffCarriesSpanAcrossThreads) {
  obs::FlightRecorder::Global().Reset();
  Dispatcher dispatcher;
  Module module("SpanTest");
  Event<void(int64_t)> event("Span.Async", &module, nullptr, &dispatcher);
  NestCtx ctx;
  dispatcher.InstallHandler(event, &AsyncHandler, &ctx,
                            {.async = true, .module = &module});

  dispatcher.EnableTracing(true);
  event.Raise(1);
  dispatcher.pool().Drain();
  dispatcher.EnableTracing(false);

  auto records = obs::FlightRecorder::Global().Snapshot();
  const obs::MergedRecord* begin = FindRaiseBegin(records, "Span.Async");
  const obs::MergedRecord* enqueue = nullptr;
  const obs::MergedRecord* execute = nullptr;
  for (const obs::MergedRecord& m : records) {
    if (m.rec.kind == obs::TraceKind::kAsyncEnqueue) {
      enqueue = &m;
    }
    if (m.rec.kind == obs::TraceKind::kAsyncExecute) {
      execute = &m;
    }
  }
  ASSERT_NE(begin, nullptr);
  ASSERT_NE(enqueue, nullptr);
  ASSERT_NE(execute, nullptr);
  EXPECT_NE(enqueue->rec.span, 0u);
  EXPECT_EQ(enqueue->rec.span, execute->rec.span)
      << "both handoff ends carry the pre-allocated child span";
  EXPECT_EQ(enqueue->rec.parent, begin->rec.span);
  EXPECT_NE(enqueue->tid, execute->tid)
      << "the execute end ran on a pool thread";
  obs::FlightRecorder::Global().Reset();
}

TEST(SpanTest, SpanStatsAccumulateAndExport) {
  obs::ResetSpanStats();
  obs::FlightRecorder::Global().Reset();
  Dispatcher dispatcher;
  Module module("SpanTest");
  Event<void(int64_t)> event("Span.Stats", &module, nullptr, &dispatcher);
  NestCtx ctx;
  dispatcher.InstallHandler(event, &InnerHandler, &ctx, {.module = &module});

  dispatcher.EnableTracing(true);
  for (int i = 0; i < 5; ++i) {
    event.Raise(i);
  }
  dispatcher.EnableTracing(false);

  obs::SpanStats stats = obs::GetSpanStats();
  EXPECT_GE(stats.started, 5u);
  EXPECT_GE(stats.completed, 5u);
  EXPECT_GE(stats.started, stats.completed);

  std::ostringstream os;
  obs::ExportMetrics(os);
  const std::string text = os.str();
  for (const char* metric :
       {"spin_trace_spans_started_total", "spin_trace_spans_completed_total",
        "spin_trace_cross_host_spans_total",
        "spin_trace_orphan_records_total"}) {
    EXPECT_NE(text.find(metric), std::string::npos) << metric;
  }
  obs::FlightRecorder::Global().Reset();
}

// --- Sampled tracing ------------------------------------------------------

// Resets the thread-local sampling countdown: at rate 1 the next decision
// always fires and zeroes it, making every test below independent of how
// many top-level decisions earlier tests made on this thread.
void ResetSampleCountdown() {
  obs::TraceConfig config{obs::TraceMode::kSampled, 1};
  obs::SetTraceConfig(config);
  (void)obs::DecideTopLevel();
  config.mode = obs::TraceMode::kOff;
  obs::SetTraceConfig(config);
}

constexpr obs::TraceKind kRaiseKinds[] = {
    obs::TraceKind::kRaiseBegin,   obs::TraceKind::kRaiseEnd,
    obs::TraceKind::kHandlerFire,  obs::TraceKind::kGuardReject,
    obs::TraceKind::kAsyncEnqueue, obs::TraceKind::kAsyncExecute,
};

bool IsRaiseKind(obs::TraceKind kind) {
  for (obs::TraceKind k : kRaiseKinds) {
    if (k == kind) {
      return true;
    }
  }
  return false;
}

// A dispatcher wired so one top-level raise produces a three-limb causal
// tree: a sync handler that raises a nested event, and an async handler.
struct SampleFixture {
  Dispatcher dispatcher;
  Module module{"SampleTest"};
  Event<void(int64_t)> outer;
  Event<void(int64_t)> inner;
  NestCtx ctx;

  SampleFixture()
      : outer("Sample.Outer", &module, nullptr, &dispatcher),
        inner("Sample.Inner", &module, nullptr, &dispatcher) {
    ctx.inner = &inner;
    dispatcher.InstallHandler(outer, &OuterHandler, &ctx,
                              {.module = &module});
    dispatcher.InstallHandler(outer, &AsyncHandler, &ctx,
                              {.async = true, .module = &module});
    dispatcher.InstallHandler(inner, &InnerHandler, &ctx,
                              {.module = &module});
  }

  void RaiseAndDrain(int64_t v) {
    outer.Raise(v);
    dispatcher.pool().Drain();
  }
};

TEST(SampleTest, SampledModeCapturesEveryNthTreeWhole) {
  obs::FlightRecorder::Global().Reset();
  SampleFixture fx;
  ResetSampleCountdown();

  fx.dispatcher.SetTracing({obs::TraceMode::kSampled, 4});
  for (int i = 0; i < 16; ++i) {
    fx.RaiseAndDrain(i);
  }
  fx.dispatcher.SetTracing({obs::TraceMode::kOff});

  auto records = obs::FlightRecorder::Global().Snapshot();

  // Exactly every 4th top-level raise was captured (the per-thread
  // countdown is deterministic), and nested raises never re-decide.
  size_t outer_roots = 0;
  std::vector<uint64_t> roots;
  for (const obs::MergedRecord& m : records) {
    if (m.rec.kind == obs::TraceKind::kRaiseBegin &&
        std::string(m.rec.name) == "Sample.Outer") {
      ++outer_roots;
      EXPECT_EQ(m.rec.parent, 0u);
      roots.push_back(m.rec.span);
    }
  }
  EXPECT_EQ(outer_roots, 4u) << "16 raises at 1-in-4";

  // Completeness: no raise-path record escapes a span (zero orphans), and
  // every captured tree carries all three limbs.
  for (const obs::MergedRecord& m : records) {
    if (IsRaiseKind(m.rec.kind)) {
      EXPECT_NE(m.rec.span, 0u)
          << obs::TraceKindName(m.rec.kind) << " record outside any span";
    }
  }
  obs::TraceQuery query(records);
  for (uint64_t root : roots) {
    std::set<obs::TraceKind> kinds;
    std::set<std::string> names;
    for (const obs::MergedRecord& m : query.SpanTree(root)) {
      kinds.insert(m.rec.kind);
      names.insert(m.rec.name);
    }
    EXPECT_TRUE(kinds.count(obs::TraceKind::kAsyncEnqueue)) << root;
    EXPECT_TRUE(kinds.count(obs::TraceKind::kAsyncExecute))
        << "sampled decision must survive the pool handoff";
    EXPECT_TRUE(names.count("Sample.Inner"))
        << "the nested raise inherits the sampled decision";
  }
  obs::FlightRecorder::Global().Reset();
}

TEST(SampleTest, UnsampledRaisesEmitNothing) {
  SampleFixture fx;
  ResetSampleCountdown();
  obs::FlightRecorder::Global().Reset();

  fx.dispatcher.SetTracing({obs::TraceMode::kSampled, 1u << 30});
  for (int i = 0; i < 100; ++i) {
    fx.RaiseAndDrain(i);
  }
  fx.dispatcher.SetTracing({obs::TraceMode::kOff});

  auto records = obs::FlightRecorder::Global().Snapshot();
  for (const obs::MergedRecord& m : records) {
    EXPECT_FALSE(IsRaiseKind(m.rec.kind))
        << obs::TraceKindName(m.rec.kind)
        << " leaked from a sampled-out raise";
  }
}

TEST(SampleTest, RateOneSamplingCapturesEveryRaise) {
  SampleFixture fx;
  ResetSampleCountdown();
  obs::FlightRecorder::Global().Reset();

  fx.dispatcher.SetTracing({obs::TraceMode::kSampled, 1});
  for (int i = 0; i < 5; ++i) {
    fx.RaiseAndDrain(i);
  }
  fx.dispatcher.SetTracing({obs::TraceMode::kOff});

  size_t outer_roots = 0;
  for (const obs::MergedRecord& m :
       obs::FlightRecorder::Global().Snapshot()) {
    if (m.rec.kind == obs::TraceKind::kRaiseBegin &&
        std::string(m.rec.name) == "Sample.Outer") {
      ++outer_roots;
    }
  }
  EXPECT_EQ(outer_roots, 5u);
  obs::FlightRecorder::Global().Reset();
}

TEST(SampleTest, FullModeIgnoresSampleRate) {
  SampleFixture fx;
  ResetSampleCountdown();
  obs::FlightRecorder::Global().Reset();

  fx.dispatcher.SetTracing({obs::TraceMode::kFull, 1u << 30});
  for (int i = 0; i < 5; ++i) {
    fx.RaiseAndDrain(i);
  }
  fx.dispatcher.SetTracing({obs::TraceMode::kOff});

  size_t outer_roots = 0;
  for (const obs::MergedRecord& m :
       obs::FlightRecorder::Global().Snapshot()) {
    if (m.rec.kind == obs::TraceKind::kRaiseBegin &&
        std::string(m.rec.name) == "Sample.Outer") {
      ++outer_roots;
    }
  }
  EXPECT_EQ(outer_roots, 5u);
  obs::FlightRecorder::Global().Reset();
}

TEST(SampleTest, SampledModeKeepsProductionTables) {
  SampleFixture fx;
  fx.dispatcher.SetTracing({obs::TraceMode::kSampled, 128});
  EXPECT_FALSE(fx.dispatcher.tracing())
      << "sampled mode must not suppress stubs and the direct bypass";
  fx.dispatcher.SetTracing({obs::TraceMode::kFull, 128});
  EXPECT_TRUE(fx.dispatcher.tracing());
  fx.dispatcher.SetTracing({obs::TraceMode::kOff});
  EXPECT_FALSE(fx.dispatcher.tracing());
}

TEST(SampleTest, PerRingEmitAndOverwriteExport) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  recorder.Reset(16);
  {
    obs::EnableScope enable;
    const char* name = obs::Intern("Sample.Ring");
    for (uint64_t i = 0; i < 40; ++i) {
      recorder.EmitAt(obs::TraceKind::kHandlerFire, name, i, i);
    }
  }
  EXPECT_EQ(recorder.TotalEmits(), 40u);
  EXPECT_EQ(recorder.TotalOverwrites(), 24u);
  auto rings = recorder.PerRingStats();
  ASSERT_FALSE(rings.empty());
  uint64_t emits = 0;
  for (const auto& ring : rings) {
    emits += ring.emits;
  }
  EXPECT_EQ(emits, 40u);

  std::ostringstream os;
  obs::ExportMetrics(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("spin_trace_emits_total{recorder=\"global\"} 40"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("spin_trace_overwrites_total{thread=\""),
            std::string::npos)
      << "per-ring overwrite series missing";
  EXPECT_NE(text.find("spin_trace_emits_total{thread=\""),
            std::string::npos)
      << "per-ring emit series missing";
  recorder.Reset(obs::FlightRecorder::kDefaultCapacity);
}

// --- TraceQuery over a synthetic timeline ---------------------------------

obs::MergedRecord Synth(uint64_t ts, uint64_t span, uint64_t parent,
                        uint32_t tid) {
  obs::MergedRecord m;
  m.rec.ts_ns = ts;
  m.rec.name = "synth";
  m.rec.span = span;
  m.rec.parent = parent;
  m.tid = tid;
  return m;
}

TEST(TraceQueryTest, SpanTreeWalksDescendants) {
  // span 1 -> {2, 3}, 2 -> {4}; span 9 is a root whose parent record was
  // never captured; one orphan record.
  std::vector<obs::MergedRecord> records = {
      Synth(10, 1, 0, 1), Synth(20, 2, 1, 1), Synth(30, 3, 1, 2),
      Synth(40, 4, 2, 2), Synth(50, 9, 7, 3), Synth(60, 0, 0, 3),
  };
  obs::TraceQuery query(records);

  EXPECT_EQ(query.Spans(), (std::vector<uint64_t>{1, 2, 3, 4, 9}));
  EXPECT_EQ(query.Roots(), (std::vector<uint64_t>{1, 9}));
  EXPECT_EQ(query.Children(1), (std::vector<uint64_t>{2, 3}));
  EXPECT_EQ(query.ParentOf(4), 2u);
  EXPECT_EQ(query.ParentOf(1), 0u);
  EXPECT_EQ(query.orphan_records(), 1u);

  std::vector<obs::MergedRecord> tree = query.SpanTree(1);
  ASSERT_EQ(tree.size(), 4u);
  // Timestamp-ordered, spans 1..4 only.
  for (size_t i = 1; i < tree.size(); ++i) {
    EXPECT_LE(tree[i - 1].rec.ts_ns, tree[i].rec.ts_ns);
  }
  for (const obs::MergedRecord& m : tree) {
    EXPECT_NE(m.rec.span, 9u);
    EXPECT_NE(m.rec.span, 0u);
  }
  EXPECT_TRUE(query.SpanTree(42).empty());
}

}  // namespace
}  // namespace spin
