// Deterministic chaos: remote dispatch under seeded loss, partition
// windows, and install/uninstall/revoke churn interleaved with raises.
//
// The driver walks a seeded schedule of hostile actions — random wire
// loss, virtual-time partition windows, capability revocation, server-side
// handler uninstall/reinstall — while raising through a proxy the whole
// time. Three properties must hold no matter the seed:
//
//   * At-most-once: every raise value executes the server handler at most
//     once, even when replies are lost and requests retransmitted; a raise
//     that returned success executed exactly once.
//   * No stuck raisers: every raise returns or throws a typed RemoteError
//     within its retry budget — the loop completing (and virtual time
//     staying bounded) is the proof.
//   * Determinism: the same seed replays the identical outcome tally,
//     virtual-time trajectory and loss pattern; a different seed diverges.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "src/net/host.h"
#include "src/remote/exporter.h"
#include "src/remote/proxy.h"
#include "src/sim/simulator.h"

namespace spin {
namespace remote {
namespace {

struct Rng {
  uint64_t state;

  uint64_t Next() {
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  uint64_t Below(uint64_t n) { return n == 0 ? 0 : Next() % n; }
};

struct ExecCtx {
  std::map<uint64_t, int> counts;  // raise value -> handler executions
};

uint64_t ChaosHandler(ExecCtx* ctx, uint64_t v) {
  ++ctx->counts[v];
  return v + 1;
}

struct Outcome {
  uint64_t ok = 0;
  uint64_t timeouts = 0;
  uint64_t revoked = 0;
  uint64_t dead = 0;
  uint64_t remote_exceptions = 0;
  uint64_t bind_failures = 0;
  uint64_t skipped = 0;   // rounds with no live proxy to raise through
  uint64_t executed = 0;  // total handler executions
  uint64_t frames_lost = 0;
  uint64_t final_time_ns = 0;

  friend bool operator==(const Outcome&, const Outcome&) = default;
};

Outcome RunChaos(uint64_t seed, int rounds) {
  Rng rng{seed};
  Outcome out;

  Dispatcher dispatcher;
  sim::Simulator sim;
  net::Wire wire(&sim, sim::LinkModel{});
  net::Host client("client", 0x0a000001, &dispatcher);
  net::Host server("server", 0x0a000002, &dispatcher);
  wire.Attach(client, server);
  Exporter exporter(server);

  Event<uint64_t(uint64_t)> server_ev("Chaos.Op", nullptr, nullptr,
                                      &dispatcher);
  ExecCtx exec;
  BindingHandle server_binding =
      dispatcher.InstallHandler(server_ev, &ChaosHandler, &exec);
  bool handler_installed = true;
  exporter.Export(server_ev);

  Event<uint64_t(uint64_t)> client_ev("Chaos.Op", nullptr, nullptr,
                                      &dispatcher);
  auto make_opts = [&] {
    ProxyOptions opts;
    opts.remote_ip = server.ip();
    opts.local_port = 9301;
    opts.max_attempts = 4;
    opts.timeout_ns = 1'000'000;
    return opts;
  };
  auto proxy = std::make_unique<EventProxy>(client, &sim, client_ev,
                                            make_opts());

  std::vector<uint64_t> ok_values;
  for (int round = 0; round < rounds; ++round) {
    // One hostile action per round, then (usually) a raise.
    switch (rng.Below(10)) {
      case 0:
        wire.SetRandomLoss(0.25, rng.Next());
        break;
      case 1:
        wire.SetRandomLoss(0, 0);  // the weather clears
        break;
      case 2: {
        uint64_t now = sim.now_ns();
        wire.SetPartition(now, now + 1 + rng.Below(3'000'000));
        break;
      }
      case 3:
        if (proxy != nullptr) {
          exporter.Revoke(proxy->token());
        }
        break;
      case 4:
        if (handler_installed) {
          dispatcher.Uninstall(server_binding);
        } else {
          server_binding =
              dispatcher.InstallHandler(server_ev, &ChaosHandler, &exec);
        }
        handler_installed = !handler_installed;
        break;
      default:
        break;  // raise-only round
    }

    if (proxy == nullptr) {
      try {
        proxy = std::make_unique<EventProxy>(client, &sim, client_ev,
                                             make_opts());
      } catch (const RemoteError&) {
        ++out.bind_failures;  // loss/partition ate the handshake; retry later
      }
    }
    if (proxy == nullptr) {
      ++out.skipped;
      continue;
    }

    const uint64_t value = static_cast<uint64_t>(round);
    try {
      uint64_t result = client_ev.Raise(value);
      EXPECT_EQ(result, value + 1);
      ++out.ok;
      ok_values.push_back(value);
    } catch (const RemoteError& e) {
      switch (e.status()) {
        case RemoteStatus::kTimeout:
          ++out.timeouts;
          break;
        case RemoteStatus::kRevoked:
          ++out.revoked;
          proxy.reset();  // re-bind on a later round
          break;
        case RemoteStatus::kDead:
          ++out.dead;
          proxy.reset();
          break;
        case RemoteStatus::kRemoteException:
          ++out.remote_exceptions;  // raised into an uninstalled handler
          break;
        default:
          ADD_FAILURE() << "unexpected RemoteError: " << e.what();
          break;
      }
    }
  }

  // Quiesce: heal the wire and drain in-flight datagrams.
  wire.SetRandomLoss(0, 0);
  wire.SetPartition(0, 0);
  sim.Run();

  // --- At-most-once, checked per raise value ---
  for (const auto& [value, count] : exec.counts) {
    EXPECT_LE(count, 1) << "value " << value
                        << " executed twice: at-most-once violated";
    out.executed += static_cast<uint64_t>(count);
  }
  for (uint64_t value : ok_values) {
    EXPECT_EQ(exec.counts[value], 1)
        << "a successful raise of " << value
        << " must have executed exactly once";
  }

  out.frames_lost = wire.frames_lost();
  out.final_time_ns = sim.now_ns();
  return out;
}

TEST(RemoteChaos, AtMostOnceSurvivesLossPartitionsAndRevocation) {
  Outcome out = RunChaos(/*seed=*/0xc4a05'1ull, /*rounds=*/80);
  // The schedule must actually have exercised the interesting paths.
  EXPECT_GT(out.ok, 0u);
  EXPECT_GT(out.revoked, 0u) << "revocation churn never fired";
  EXPECT_GT(out.frames_lost, 0u) << "the wire never dropped anything";
  // No stuck raisers: 80 rounds of budgeted retries fit comfortably in
  // bounded virtual time (4 attempts x <=32ms backoff each, plus slack).
  EXPECT_LT(out.final_time_ns, 60'000'000'000ull);
}

TEST(RemoteChaos, HandlerChurnYieldsTypedErrorsNotHangs) {
  // A seed chosen so the uninstall/reinstall action fires repeatedly: the
  // raises that land in the uninstalled window surface the remote
  // NoHandlerError as RemoteError(kRemoteException).
  Outcome out = RunChaos(/*seed=*/0xdeadull, /*rounds=*/120);
  EXPECT_GT(out.remote_exceptions + out.ok, 0u);
  EXPECT_EQ(out.ok + out.timeouts + out.revoked + out.dead +
                out.remote_exceptions + out.skipped,
            120u)
      << "every round must account for its raise, one way or another";
}

TEST(RemoteChaos, SameSeedReplaysExactly) {
  EXPECT_EQ(RunChaos(7, 60), RunChaos(7, 60))
      << "chaos must be a pure function of the seed";
  EXPECT_NE(RunChaos(7, 60), RunChaos(8, 60))
      << "the seed must actually steer the schedule";
}

}  // namespace
}  // namespace remote
}  // namespace spin
