#include "src/rt/thread_pool.h"

#include <atomic>

#include <gtest/gtest.h>

namespace spin {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { count.fetch_add(1); });
  }
  pool.Drain();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SpawnModeRunsDetached) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&] { count.fetch_add(1); }, AsyncMode::kSpawn);
  }
  pool.Drain();
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPoolTest, DrainWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Drain();
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPoolTest, TasksMaySubmitTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&] {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&] { count.fetch_add(1); });
    }
  });
  pool.Drain();
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, DestructorDrains) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, SubmitToAccountsAgainstThatQueue) {
  ThreadPool pool(4);
  ASSERT_EQ(pool.queues(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 64; ++i) {
    pool.SubmitTo(2, [&] { count.fetch_add(1); });
  }
  pool.Drain();
  EXPECT_EQ(count.load(), 64);
  // Wherever the tasks ran (pinned worker or thieves), they are accounted
  // against the queue they were submitted to.
  EXPECT_EQ(pool.executed(2), 64u);
  EXPECT_EQ(pool.queue_depth(2), 0u);
}

TEST(ThreadPoolTest, SubmitToWrapsQueueIndex) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.SubmitTo(7, [&] { count.fetch_add(1); });  // 7 % 2 == queue 1
  }
  pool.Drain();
  EXPECT_EQ(count.load(), 10);
  EXPECT_EQ(pool.executed(1), 10u);
}

TEST(ThreadPoolTest, AllQueuesDrainWhenWorkIsPinnedToOne) {
  // Everything lands on queue 0; the other workers must steal from its
  // tail rather than idle, and every task still executes exactly once.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 200; ++i) {
    pool.SubmitTo(0, [&] {
      int now = concurrent.fetch_add(1) + 1;
      int seen = peak.load();
      while (now > seen && !peak.compare_exchange_weak(seen, now)) {
      }
      count.fetch_add(1);
      concurrent.fetch_sub(1);
    });
  }
  pool.Drain();
  EXPECT_EQ(count.load(), 200);
  EXPECT_EQ(pool.executed(0), 200u);
  uint64_t per_queue = 0;
  for (size_t q = 0; q < pool.queues(); ++q) {
    per_queue += pool.executed(q);
  }
  EXPECT_EQ(per_queue, pool.executed());
  // steals() is timing-dependent (worker 0 may drain everything on a
  // loaded machine), but it can never exceed what queue 0 held.
  EXPECT_LE(pool.steals(), 200u);
  EXPECT_EQ(pool.steals(), pool.steals(0));
}

TEST(ThreadPoolTest, RoundRobinSubmitSpreadsAcrossQueues) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 400; ++i) {
    pool.Submit([&] { count.fetch_add(1); });
  }
  pool.Drain();
  EXPECT_EQ(count.load(), 400);
  // Round-robin distributes submissions evenly across the four queues.
  for (size_t q = 0; q < pool.queues(); ++q) {
    EXPECT_EQ(pool.executed(q), 100u) << "queue " << q;
  }
}

}  // namespace
}  // namespace spin
