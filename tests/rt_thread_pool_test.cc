#include "src/rt/thread_pool.h"

#include <atomic>

#include <gtest/gtest.h>

namespace spin {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { count.fetch_add(1); });
  }
  pool.Drain();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SpawnModeRunsDetached) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&] { count.fetch_add(1); }, AsyncMode::kSpawn);
  }
  pool.Drain();
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPoolTest, DrainWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Drain();
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPoolTest, TasksMaySubmitTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&] {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&] { count.fetch_add(1); });
    }
  });
  pool.Drain();
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, DestructorDrains) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

}  // namespace
}  // namespace spin
