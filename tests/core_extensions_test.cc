// Tests for the implemented future-work features and the remaining §2.5
// machinery: guard decision trees, incremental (lazy) installation, dynamic
// guard removal, and authorizer-applied ordering constraints.
#include <cstring>
#include <random>

#include <gtest/gtest.h>

#include "src/core/dispatcher.h"

namespace spin {
namespace {

struct FakePacket {
  uint8_t data[64] = {};
};

// --- Guard decision tree -----------------------------------------------------

class TreeTest : public ::testing::Test {
 protected:
  static Dispatcher::Config TreeConfig() {
    Dispatcher::Config config;
    config.guard_tree = true;
    return config;
  }

  // Installs `n` port-style bindings (field at offset 4, width 2) with
  // values 100, 200, ..., each counting into g_counts[i].
  template <typename EventT>
  void InstallPortBindings(Dispatcher& dispatcher, EventT& event, int n) {
    for (int i = 0; i < n; ++i) {
      auto binding = dispatcher.InstallMicroHandler(
          event, micro::IncrementGlobal(&g_counts[i], 1),
          {.module = &module_});
      dispatcher.AddMicroGuard(
          binding, micro::GuardArgFieldEq(1, 0, 4, 2, ~0ull,
                                          static_cast<uint64_t>(100 * (i + 1))));
    }
  }

  uint64_t g_counts[64] = {};
  Module module_{"Tree"};
};

TEST_F(TreeTest, TreeDispatchMatchesLinearSemantics) {
  for (bool tree : {false, true}) {
    Dispatcher::Config config;
    config.guard_tree = tree;
    Dispatcher dispatcher(config);
    Event<void(FakePacket*)> event("Tree.Packet", &module_, nullptr,
                                   &dispatcher);
    std::memset(g_counts, 0, sizeof(g_counts));
    InstallPortBindings(dispatcher, event, 16);
    if (tree && codegen::CodegenAvailable()) {
      EXPECT_GT(dispatcher.stats().tree_tables, 0u)
          << "16 same-field guards must trigger the tree";
    }
    FakePacket packet;
    for (int port = 50; port <= 1700; port += 50) {
      packet.data[4] = static_cast<uint8_t>(port & 0xff);
      packet.data[5] = static_cast<uint8_t>(port >> 8);
      if (port % 100 == 0 && port / 100 <= 16) {
        event.Raise(&packet);
      } else {
        EXPECT_THROW(event.Raise(&packet), NoHandlerError)
            << "tree=" << tree << " port=" << port;
      }
    }
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(g_counts[i], 1u) << "tree=" << tree << " binding " << i;
    }
  }
}

TEST_F(TreeTest, RemainingGuardsStillEvaluatedAfterTreeMatch) {
  Dispatcher dispatcher(TreeConfig());
  Event<void(FakePacket*)> event("Tree.Guarded", &module_, nullptr,
                                 &dispatcher);
  std::memset(g_counts, 0, sizeof(g_counts));
  static uint64_t gate = 0;
  gate = 0;
  for (int i = 0; i < 8; ++i) {
    auto binding = dispatcher.InstallMicroHandler(
        event, micro::IncrementGlobal(&g_counts[i], 1),
        {.module = &module_});
    dispatcher.AddMicroGuard(
        binding, micro::GuardArgFieldEq(1, 0, 4, 2, ~0ull,
                                        static_cast<uint64_t>(100 * (i + 1))));
    if (i == 2) {
      // Binding 2 carries an extra gate guard.
      dispatcher.AddMicroGuard(binding, micro::GuardGlobalEq(&gate, 1));
    }
  }
  FakePacket packet;
  packet.data[4] = 0x2c;  // 300 little-endian
  packet.data[5] = 0x01;
  EXPECT_THROW(event.Raise(&packet), NoHandlerError)
      << "the gate guard must still reject after the tree match";
  gate = 1;
  event.Raise(&packet);
  EXPECT_EQ(g_counts[2], 1u);
}

TEST_F(TreeTest, MixedFieldsFallBackToLinear) {
  Dispatcher dispatcher(TreeConfig());
  Event<void(FakePacket*)> event("Tree.Mixed", &module_, nullptr,
                                 &dispatcher);
  for (int i = 0; i < 8; ++i) {
    auto binding = dispatcher.InstallMicroHandler(
        event, micro::ReturnConst(1, 0, false), {.module = &module_});
    // Alternate between two different offsets: no common key.
    dispatcher.AddMicroGuard(
        binding, micro::GuardArgFieldEq(1, 0, i % 2 == 0 ? 4 : 8, 2, ~0ull,
                                        static_cast<uint64_t>(i + 1)));
  }
  EXPECT_EQ(dispatcher.stats().tree_tables, 0u);
}

TEST_F(TreeTest, DuplicateValuesFallBackToLinear) {
  Dispatcher dispatcher(TreeConfig());
  Event<void(FakePacket*)> event("Tree.Dup", &module_, nullptr, &dispatcher);
  std::memset(g_counts, 0, sizeof(g_counts));
  for (int i = 0; i < 6; ++i) {
    auto binding = dispatcher.InstallMicroHandler(
        event, micro::IncrementGlobal(&g_counts[i], 1),
        {.module = &module_});
    dispatcher.AddMicroGuard(
        binding, micro::GuardArgFieldEq(1, 0, 4, 2, ~0ull, 500));
  }
  EXPECT_EQ(dispatcher.stats().tree_tables, 0u);
  // All six share the value: all six must fire (linear semantics).
  FakePacket packet;
  packet.data[4] = 0xf4;  // 500 little-endian
  packet.data[5] = 0x01;
  event.Raise(&packet);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(g_counts[i], 1u);
  }
}

TEST_F(TreeTest, RandomizedTreeVsInterpreterDifferential) {
  std::mt19937_64 rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    int n = 4 + static_cast<int>(rng() % 29);
    std::vector<uint16_t> values;
    for (int i = 0; i < n; ++i) {
      values.push_back(static_cast<uint16_t>(rng() % 60000 + 1));
    }
    uint64_t raise_seed = rng();
    // Run the same installs+raises under tree-JIT and interpreter.
    uint64_t counts[2][40] = {};
    for (int engine = 0; engine < 2; ++engine) {
      Dispatcher::Config config;
      config.guard_tree = engine == 0;
      config.enable_jit = engine == 0;
      Dispatcher dispatcher(config);
      Event<void(FakePacket*)> event("Tree.Fuzz", &module_, nullptr,
                                     &dispatcher);
      for (int i = 0; i < n; ++i) {
        auto binding = dispatcher.InstallMicroHandler(
            event,
            micro::IncrementGlobal(&counts[engine][i], 1),
            {.module = &module_});
        dispatcher.AddMicroGuard(
            binding,
            micro::GuardArgFieldEq(1, 0, 4, 2, ~0ull, values[i]));
      }
      std::mt19937_64 raise_rng(raise_seed);  // identical per engine
      for (int raise = 0; raise < 200; ++raise) {
        uint16_t port =
            raise % 3 == 0
                ? values[raise_rng() % values.size()]
                : static_cast<uint16_t>(raise_rng() % 60000 + 1);
        FakePacket packet;
        packet.data[4] = static_cast<uint8_t>(port & 0xff);
        packet.data[5] = static_cast<uint8_t>(port >> 8);
        try {
          event.Raise(&packet);
        } catch (const NoHandlerError&) {
        }
      }
    }
    for (int i = 0; i < n; ++i) {
      ASSERT_EQ(counts[0][i], counts[1][i]) << "trial " << trial
                                            << " binding " << i;
    }
  }
}

// --- Incremental (lazy) installation ----------------------------------------

void NoopHandler(int64_t) {}
bool TrueGuard(int64_t) { return true; }

TEST(LazyCompileTest, PromotesAfterThreshold) {
  if (!codegen::CodegenAvailable()) {
    GTEST_SKIP();
  }
  Module module("Lazy");
  Dispatcher::Config config;
  config.lazy_compile = true;
  config.lazy_promote_raises = 16;
  Dispatcher dispatcher(config);
  Event<void(int64_t)> event("Lazy.Event", &module, nullptr, &dispatcher);
  dispatcher.InstallHandler(event, &TrueGuard, &NoopHandler,
                            {.module = &module});
  dispatcher.InstallHandler(event, &NoopHandler, {.module = &module});

  EXPECT_EQ(dispatcher.stats().stub_compiles, 0u)
      << "lazy mode must not compile at install time";
  for (int i = 0; i < 15; ++i) {
    event.Raise(i);
  }
  EXPECT_EQ(dispatcher.stats().lazy_promotions, 0u);
  event.Raise(15);  // crosses the threshold
  EXPECT_EQ(dispatcher.stats().lazy_promotions, 1u);
  EXPECT_GT(dispatcher.stats().stub_compiles, 0u);
  event.Raise(16);  // dispatches through the compiled stub now

  // Further installs on a hot event compile eagerly again.
  uint64_t compiles = dispatcher.stats().stub_compiles;
  dispatcher.InstallHandler(event, &NoopHandler, {.module = &module});
  EXPECT_GT(dispatcher.stats().stub_compiles, compiles);
}

TEST(LazyCompileTest, ColdEventsNeverPayCompilation) {
  Module module("Lazy");
  Dispatcher::Config config;
  config.lazy_compile = true;
  Dispatcher dispatcher(config);
  Event<void(int64_t)> event("Lazy.Cold", &module, nullptr, &dispatcher);
  for (int i = 0; i < 20; ++i) {
    dispatcher.InstallHandler(event, &NoopHandler, {.module = &module});
  }
  EXPECT_EQ(dispatcher.stats().stub_compiles, 0u);
  event.Raise(1);  // works fine interpreted
}

// --- Dynamic guard removal ----------------------------------------------------

int g_guarded_calls = 0;
void CountingHandler(int64_t) { ++g_guarded_calls; }
bool FalseGuard(int64_t) { return false; }

TEST(GuardRemovalTest, RemoveRestoresDelivery) {
  Module module("Remove");
  Dispatcher dispatcher;
  Event<void(int64_t)> event("Remove.Event", &module, nullptr, &dispatcher);
  g_guarded_calls = 0;
  auto binding = dispatcher.InstallHandler(event, &FalseGuard,
                                           &CountingHandler,
                                           {.module = &module});
  EXPECT_THROW(event.Raise(1), NoHandlerError);
  EXPECT_EQ(dispatcher.GuardCount(binding), 1u);
  dispatcher.RemoveGuard(binding, 0, &module);
  EXPECT_EQ(dispatcher.GuardCount(binding), 0u);
  event.Raise(1);
  EXPECT_EQ(g_guarded_calls, 1);
}

struct DenyRemovalState {
  int imposed_guard_ops = 0;
};

bool DenyImposedRemoval(AuthRequest& request, void* ctx) {
  auto* state = static_cast<DenyRemovalState*>(ctx);
  if (request.op == AuthOp::kImposeGuard) {
    ++state->imposed_guard_ops;
    return false;
  }
  return true;
}

bool AlwaysFalseImposed(void* /*closure*/, int64_t) { return false; }

TEST(GuardRemovalTest, RemovingImposedGuardRequiresAuthorization) {
  Module authority("Authority");
  Module extension("Extension");
  Dispatcher dispatcher;
  Event<void(int64_t)> event("Remove.Imposed", &authority, nullptr,
                             &dispatcher);
  g_guarded_calls = 0;
  auto binding = dispatcher.InstallHandler(event, &CountingHandler,
                                           {.module = &extension});
  dispatcher.ImposeGuard(event, binding,
                         static_cast<bool (*)(void*, int64_t)>(
                             &AlwaysFalseImposed),
                         static_cast<void*>(nullptr));
  DenyRemovalState state;
  dispatcher.InstallAuthorizer(event, &DenyImposedRemoval, &state,
                               authority);
  try {
    dispatcher.RemoveGuard(binding, 0, &extension);
    FAIL() << "expected InstallError";
  } catch (const InstallError& e) {
    EXPECT_EQ(e.status(), InstallStatus::kNotAuthorized);
  }
  EXPECT_EQ(state.imposed_guard_ops, 1);
  EXPECT_EQ(dispatcher.GuardCount(binding), 1u);
}

// --- Authorizer-applied ordering (§2.5) ---------------------------------------

std::vector<int> g_order_log;
void OrderFirst(int64_t) { g_order_log.push_back(1); }
void OrderSecond(int64_t) { g_order_log.push_back(2); }

bool ForceLastAuthorizer(AuthRequest& request, void*) {
  if (request.op == AuthOp::kInstall) {
    // "apply some execution property, such as ordering constraints, onto
    // the handler so that previously installed handlers continue to
    // operate as expected."
    request.SetOrder(Order{OrderKind::kLast, nullptr});
  }
  return true;
}

TEST(AuthOrderTest, AuthorizerForcesOrdering) {
  Module authority("Authority");
  Module extension("Extension");
  Dispatcher dispatcher;
  Event<void(int64_t)> event("Order.Event", &authority, nullptr,
                             &dispatcher);
  dispatcher.InstallAuthorizer(event, &ForceLastAuthorizer, nullptr,
                               authority);
  g_order_log.clear();
  // The extension *asks* for First; the authorizer overrides to Last.
  auto second = dispatcher.InstallHandler(
      event, &OrderSecond, {.order = {OrderKind::kFirst},
                            .module = &extension});
  auto first = dispatcher.InstallHandler(
      event, &OrderFirst, {.order = {OrderKind::kFirst},
                           .module = &extension});
  (void)second;
  (void)first;
  event.Raise(0);
  EXPECT_EQ(g_order_log, (std::vector<int>{2, 1}))
      << "install order preserved: both forced to Last";
}

}  // namespace
}  // namespace spin
