// Profiler tests: the Table 3 instrumentation.
#include <sstream>

#include <gtest/gtest.h>

#include "src/profile/profile.h"

namespace spin {
namespace profile {
namespace {

void Noop(int64_t) {}

TEST(ProfileTest, CountsRaisesAndTime) {
  Module module("Prof");
  Dispatcher dispatcher;
  Event<void(int64_t)> event("Prof.Tick", &module, &Noop, &dispatcher);

  Profiler profiler(dispatcher);
  for (int i = 0; i < 100; ++i) {
    event.Raise(i);
  }
  std::vector<EventProfile> snapshot = profiler.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].name, "Prof.Tick");
  EXPECT_EQ(snapshot[0].raised, 100u);
  EXPECT_EQ(snapshot[0].handlers, 1u);
  EXPECT_EQ(snapshot[0].guards, 0u);
  EXPECT_GE(snapshot[0].time_s, 0.0);
}

TEST(ProfileTest, ProfilingDisablesDirectBypass) {
  Module module("Prof");
  Dispatcher dispatcher;
  Event<void(int64_t)> event("Prof.Tick", &module, &Noop, &dispatcher);
  EXPECT_NE(event.direct_fn(), nullptr);
  {
    Profiler profiler(dispatcher);
    EXPECT_EQ(event.direct_fn(), nullptr)
        << "profiled events must flow through the counting path";
    event.Raise(1);
    EXPECT_EQ(event.raise_count(), 1u);
  }
  EXPECT_NE(event.direct_fn(), nullptr) << "bypass restored after profiling";
}

TEST(ProfileTest, ResetClearsCounters) {
  Module module("Prof");
  Dispatcher dispatcher;
  Event<void(int64_t)> event("Prof.Tick", &module, &Noop, &dispatcher);
  Profiler profiler(dispatcher);
  event.Raise(1);
  profiler.Reset();
  EXPECT_EQ(event.raise_count(), 0u);
  EXPECT_TRUE(profiler.Snapshot().empty());
}

TEST(ProfileTest, PrintTableLayout) {
  std::vector<EventProfile> profiles = {
      {"Ether.PacketArrived", 2536, 0.03, 4, 3},
      {"MachineTrap.Syscall", 3976, 0.03, 3, 2},
  };
  std::ostringstream os;
  Profiler::PrintTable(os, profiles);
  std::string out = os.str();
  EXPECT_NE(out.find("Ether.PacketArrived"), std::string::npos);
  EXPECT_NE(out.find("2536"), std::string::npos);
  EXPECT_NE(out.find("handlers"), std::string::npos);
}

TEST(ProfileTest, SnapshotOfSelectedEvents) {
  Module module("Prof");
  Dispatcher dispatcher;
  Event<void(int64_t)> a("Prof.A", &module, &Noop, &dispatcher);
  Event<void(int64_t)> b("Prof.B", &module, &Noop, &dispatcher);
  Profiler profiler(dispatcher);
  a.Raise(1);
  b.Raise(1);
  b.Raise(2);
  std::vector<EventProfile> selected = profiler.SnapshotOf({&b});
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0].name, "Prof.B");
  EXPECT_EQ(selected[0].raised, 2u);
}

}  // namespace
}  // namespace profile
}  // namespace spin
