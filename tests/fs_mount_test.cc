// Multi-filesystem composition: LogFs mounted beside the base UFS on the
// same events, demultiplexed purely by guards (§1: "provide a new
// in-kernel file system"; §1.2's composition argument).
#include <cctype>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "src/fs/logfs.h"
#include "src/fs/vfs.h"

namespace spin {
namespace fs {
namespace {

class MountTest : public ::testing::Test {
 protected:
  std::string ReadAll(int64_t fd) {
    std::string out;
    char buf[64];
    int64_t n;
    while ((n = vfs_.Read.Raise(fd, buf, sizeof(buf))) > 0) {
      out.append(buf, static_cast<size_t>(n));
    }
    return out;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    int64_t fd = vfs_.Open.Raise(path.c_str(), kOpenCreate);
    ASSERT_GE(fd, 0);
    vfs_.Write.Raise(fd, content.data(),
                     static_cast<int64_t>(content.size()));
    vfs_.CloseFd.Raise(fd);
  }

  Dispatcher dispatcher_;
  Vfs vfs_{&dispatcher_};
};

TEST_F(MountTest, LogFsHandlesItsPrefix) {
  LogFs logfs(vfs_, "/log/");
  WriteFile("/log/journal", "entry one");
  int64_t fd = vfs_.Open.Raise("/log/journal", 0);
  ASSERT_GE(fd, Vfs::kMountFdRange) << "LogFs must use its own fd range";
  EXPECT_EQ(ReadAll(fd), "entry one");
  vfs_.CloseFd.Raise(fd);
  EXPECT_FALSE(vfs_.Exists("/log/journal"))
      << "the base UFS never saw the mounted path";
  EXPECT_GE(logfs.log_records(), 1u);
}

TEST_F(MountTest, TwoFilesystemsCoexist) {
  LogFs logfs(vfs_, "/log/");
  WriteFile("/etc/passwd", "root");
  WriteFile("/log/audit", "login");
  EXPECT_TRUE(vfs_.Exists("/etc/passwd"));
  EXPECT_FALSE(vfs_.Exists("/log/audit"));
  int64_t ufs_fd = vfs_.Open.Raise("/etc/passwd", 0);
  int64_t log_fd = vfs_.Open.Raise("/log/audit", 0);
  EXPECT_LT(ufs_fd, Vfs::kMountFdRange);
  EXPECT_GE(log_fd, Vfs::kMountFdRange);
  EXPECT_EQ(ReadAll(ufs_fd), "root");
  EXPECT_EQ(ReadAll(log_fd), "login");
  vfs_.CloseFd.Raise(ufs_fd);
  vfs_.CloseFd.Raise(log_fd);
}

TEST_F(MountTest, AppendsAccumulateInTheLog) {
  LogFs logfs(vfs_, "/log/");
  int64_t fd = vfs_.Open.Raise("/log/j", kOpenCreate);
  vfs_.Write.Raise(fd, "aaa", 3);
  vfs_.Write.Raise(fd, "bbb", 3);
  vfs_.CloseFd.Raise(fd);
  // Open record + two writes.
  EXPECT_EQ(logfs.log_records(), 3u);
  fd = vfs_.Open.Raise("/log/j", 0);
  EXPECT_EQ(ReadAll(fd), "aaabbb");
  vfs_.CloseFd.Raise(fd);
}

TEST_F(MountTest, CompactionPreservesContents) {
  LogFs logfs(vfs_, "/log/");
  WriteFile("/log/a", "alpha");
  WriteFile("/log/b", "beta");
  vfs_.Remove.Raise("/log/b");
  size_t before = logfs.log_records();
  logfs.Compact();
  EXPECT_LT(logfs.log_records(), before);
  EXPECT_EQ(logfs.log_records(), 1u) << "only /log/a survives";
  int64_t fd = vfs_.Open.Raise("/log/a", 0);
  EXPECT_EQ(ReadAll(fd), "alpha");
  vfs_.CloseFd.Raise(fd);
  EXPECT_EQ(vfs_.Open.Raise("/log/b", 0), kErrNoEnt);
}

TEST_F(MountTest, TruncateDropsOldRecords) {
  LogFs logfs(vfs_, "/log/");
  WriteFile("/log/t", "old contents");
  int64_t fd = vfs_.Open.Raise("/log/t", kOpenTrunc);
  vfs_.Write.Raise(fd, "new", 3);
  vfs_.CloseFd.Raise(fd);
  fd = vfs_.Open.Raise("/log/t", 0);
  EXPECT_EQ(ReadAll(fd), "new");
  vfs_.CloseFd.Raise(fd);
}

TEST_F(MountTest, RemoveThenRecreate) {
  LogFs logfs(vfs_, "/log/");
  WriteFile("/log/x", "first");
  EXPECT_EQ(vfs_.Remove.Raise("/log/x"), 0);
  EXPECT_EQ(vfs_.Open.Raise("/log/x", 0), kErrNoEnt);
  WriteFile("/log/x", "second");
  int64_t fd = vfs_.Open.Raise("/log/x", 0);
  EXPECT_EQ(ReadAll(fd), "second");
  vfs_.CloseFd.Raise(fd);
}

TEST_F(MountTest, UnmountRestoresErrors) {
  {
    LogFs logfs(vfs_, "/log/");
    WriteFile("/log/gone", "data");
  }
  // LogFs destroyed: nothing claims /log paths; the default handler
  // answers with kErrNoEnt (UFS guards still decline nothing — the mount
  // registration is gone, so UFS now claims the path and misses).
  EXPECT_EQ(vfs_.Open.Raise("/log/gone", 0), kErrNoEnt);
}

TEST_F(MountTest, ForeignFdRangeRejected) {
  LogFs logfs(vfs_, "/log/");
  char buf[8];
  // An fd in LogFs's range that was never opened: LogFs claims and rejects.
  EXPECT_EQ(vfs_.Read.Raise(Vfs::kMountFdRange + 999, buf, 8), kErrBadFd);
  // An fd beyond every range: the default handler answers.
  EXPECT_EQ(vfs_.Read.Raise(10 * Vfs::kMountFdRange, buf, 8), kErrBadFd);
}

TEST_F(MountTest, DosFilterComposesWithMounts) {
  // Three extensions on one event: the DOS name filter (ordered first),
  // LogFs (guard on the prefix), and base UFS.
  LogFs logfs(vfs_, "/log/");
  static char converted[128];
  dispatcher_.InstallFilter(
      vfs_.Open,
      +[](const char*& path, int32_t) -> int64_t {
        if (path[0] != '\0' && path[1] == ':') {
          size_t out = 0;
          for (const char* p = path + 2; *p && out + 1 < sizeof(converted);
               ++p) {
            converted[out++] =
                *p == '\\' ? '/' : static_cast<char>(std::tolower(*p));
          }
          converted[out] = '\0';
          path = converted;
        }
        return 0;
      },
      {.order = {OrderKind::kFirst}, .module = &vfs_.module()});
  int64_t fd = vfs_.Open.Raise("L:\\LOG\\DOS.TXT", kOpenCreate);
  ASSERT_GE(fd, Vfs::kMountFdRange)
      << "the translated name must land in LogFs";
  vfs_.Write.Raise(fd, "dos->log", 8);
  vfs_.CloseFd.Raise(fd);
  int64_t fd2 = vfs_.Open.Raise("/log/dos.txt", 0);
  EXPECT_EQ(ReadAll(fd2), "dos->log");
  vfs_.CloseFd.Raise(fd2);
}

}  // namespace
}  // namespace fs
}  // namespace spin
