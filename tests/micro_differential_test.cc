// Differential fuzzing: interpreter vs JIT over randomized verified
// programs.
//
// The verify-then-JIT admission path rests on one equivalence: for every
// program the verifier admits, the compiled stub and the interpreter are
// the same function. This suite generates ≥10k random pure programs
// (seeded, reproducible) covering every non-memory opcode including
// forward control flow, admits each through Verify, and runs both
// evaluators on randomized payloads:
//
//   - results must be identical bit-for-bit,
//   - the interpreter's step count must respect the verifier's budget
//     proof,
//   - the payload must be untouched (side-effect freedom; the suite runs
//     under ASan/UBSan and TSan in CI, where a stray write is a finding).
//
// Under SPIN_DISABLE_JIT (the _nojit ctest variant) the JIT half is
// skipped and the suite still checks the verify/interpret properties, so
// the corpus exercises the portable path too.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/codegen/stub_compiler.h"
#include "src/micro/interp.h"
#include "src/micro/program.h"
#include "src/micro/verify.h"

namespace spin {
namespace micro {
namespace {

struct Rng {
  uint64_t state;
  uint64_t Next() {
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  uint64_t Below(uint64_t n) { return n == 0 ? 0 : Next() % n; }
};

Insn I(Op op, uint8_t dst = 0, uint8_t a = 0, uint8_t b = 0,
       uint64_t imm = 0) {
  return Insn{op, dst, a, b, imm};
}

// Random valid pure program over every non-memory opcode. Forward jumps
// target strictly later indices; the trailing terminator keeps every
// fall-through path in range, so the result verifies by construction.
Program RandomProgram(Rng& rng, int num_args) {
  size_t body = 1 + rng.Below(48);
  std::vector<Insn> code;
  code.reserve(body + 1);
  for (size_t i = 0; i < body; ++i) {
    uint8_t dst = static_cast<uint8_t>(rng.Below(kNumRegs));
    uint8_t a = static_cast<uint8_t>(rng.Below(kNumRegs));
    uint8_t b = static_cast<uint8_t>(rng.Below(kNumRegs));
    switch (rng.Below(12)) {
      case 0:
        code.push_back(I(Op::kLoadArg, dst, 0, 0, rng.Below(num_args)));
        break;
      case 1:
        code.push_back(I(Op::kLoadImm, dst, 0, 0, rng.Next()));
        break;
      case 2:
        code.push_back(I(Op::kMov, dst, a));
        break;
      case 3: {
        static const Op kAlu[] = {Op::kAdd, Op::kSub, Op::kAnd, Op::kOr,
                                  Op::kXor};
        code.push_back(I(kAlu[rng.Below(5)], dst, a, b));
        break;
      }
      case 4: {
        static const Op kCmp[] = {Op::kCmpEq,  Op::kCmpNe,  Op::kCmpLtU,
                                  Op::kCmpLeU, Op::kCmpLtS, Op::kCmpLeS};
        code.push_back(I(kCmp[rng.Below(6)], dst, a, b));
        break;
      }
      case 5:
        code.push_back(I(rng.Below(2) ? Op::kShlImm : Op::kShrImm, dst, a,
                         0, rng.Below(64)));
        break;
      case 6:
        code.push_back(I(Op::kNot, dst, a));
        break;
      case 7:
      case 8: {
        uint64_t target = code.size() + 1 + rng.Below(body - i);
        code.push_back(
            I(rng.Below(2) ? Op::kJz : Op::kJmp, 0, a, 0, target));
        break;
      }
      default:
        code.push_back(I(Op::kAdd, dst, a, b));
        break;
    }
  }
  if (rng.Below(2)) {
    code.push_back(I(Op::kRet, 0, static_cast<uint8_t>(rng.Below(kNumRegs))));
  } else {
    code.push_back(I(Op::kRetImm, 0, 0, 0, rng.Next()));
  }
  return Program(std::move(code), num_args, /*functional=*/true);
}

uint64_t RunCompiled(const codegen::CompiledMicro& compiled,
                     const uint64_t* args, int num_args) {
  // The EvalGuards calling idiom: zero-pad to 6 register arguments —
  // CompileMicro spills only its declared arity, so the extra registers
  // are ignored.
  auto* fn = reinterpret_cast<uint64_t (*)(uint64_t, uint64_t, uint64_t,
                                           uint64_t, uint64_t, uint64_t)>(
      compiled.entry());
  uint64_t a[6] = {};
  for (int i = 0; i < num_args && i < 6; ++i) {
    a[i] = args[i];
  }
  return fn(a[0], a[1], a[2], a[3], a[4], a[5]);
}

void RunSeed(uint64_t seed, int programs, int payloads) {
  Rng rng{seed};
  const bool jit = codegen::CodegenAvailable();
  for (int p = 0; p < programs; ++p) {
    int num_args = 1 + static_cast<int>(rng.Below(6));
    Program prog = RandomProgram(rng, num_args);
    VerifyResult v = Verify(prog, WireGuardLimits());
    ASSERT_TRUE(v.ok()) << "seed " << seed << " program " << p << ": "
                        << VerifyStatusName(v.status) << "\n"
                        << prog.ToString();
    std::unique_ptr<codegen::CompiledMicro> compiled;
    if (jit) {
      compiled = codegen::CompileMicro(prog);
      ASSERT_NE(compiled, nullptr)
          << "seed " << seed << " program " << p
          << ": admitted program failed to compile\n"
          << prog.ToString();
    }
    for (int q = 0; q < payloads; ++q) {
      uint64_t args[kMaxArgs];
      for (int i = 0; i < num_args; ++i) {
        // Mix adversarial edge values in with random payloads.
        switch (rng.Below(5)) {
          case 0:
            args[i] = 0;
            break;
          case 1:
            args[i] = ~0ull;
            break;
          case 2:
            args[i] = 0x8000000000000000ull;
            break;
          default:
            args[i] = rng.Next();
            break;
        }
      }
      uint64_t saved[kMaxArgs];
      std::memcpy(saved, args, sizeof(saved));
      uint64_t steps = 0;
      uint64_t want = Run(prog, args, num_args, &steps);
      ASSERT_LE(steps, v.budget)
          << "seed " << seed << " program " << p
          << ": interpreter exceeded the verifier's budget proof\n"
          << prog.ToString();
      ASSERT_EQ(std::memcmp(saved, args, sizeof(saved)), 0)
          << "seed " << seed << " program " << p
          << ": interpreter mutated the payload";
      if (jit) {
        uint64_t got = RunCompiled(*compiled, args, num_args);
        ASSERT_EQ(want, got)
            << "seed " << seed << " program " << p << " payload " << q
            << ": interpreter/JIT divergence\n"
            << prog.ToString();
        ASSERT_EQ(std::memcmp(saved, args, sizeof(saved)), 0)
            << "seed " << seed << " program " << p
            << ": JIT mutated the payload";
      }
    }
  }
}

// 8 seeds x 1250 programs = 10k verified programs, each differentially
// executed on 4 payloads (40k runs per evaluator). Split into separate
// TESTs so a failure names its seed and ctest can parallelize.
TEST(MicroDifferential, Seed1) { RunSeed(0x1001, 1250, 4); }
TEST(MicroDifferential, Seed2) { RunSeed(0x2002, 1250, 4); }
TEST(MicroDifferential, Seed3) { RunSeed(0x3003, 1250, 4); }
TEST(MicroDifferential, Seed4) { RunSeed(0x4004, 1250, 4); }
TEST(MicroDifferential, Seed5) { RunSeed(0x5005, 1250, 4); }
TEST(MicroDifferential, Seed6) { RunSeed(0x6006, 1250, 4); }
TEST(MicroDifferential, Seed7) { RunSeed(0x7007, 1250, 4); }
TEST(MicroDifferential, Seed8) { RunSeed(0x8008, 1250, 4); }

// Canned regression programs with corner-case immediates that random
// payloads hit rarely.
TEST(MicroDifferential, ShiftBoundaries) {
  for (int amount : {0, 1, 31, 32, 33, 63}) {
    Program prog = std::move(ProgramBuilder(1, true)
                                 .LoadArg(0, 0)
                                 .ShlImm(1, 0, amount)
                                 .ShrImm(2, 1, amount)
                                 .Ret(2))
                       .Build();
    ASSERT_TRUE(Verify(prog, WireGuardLimits()).ok());
    if (!codegen::CodegenAvailable()) {
      GTEST_SKIP() << "codegen unavailable";
    }
    auto compiled = codegen::CompileMicro(prog);
    ASSERT_NE(compiled, nullptr);
    for (uint64_t arg : {0ull, 1ull, ~0ull, 0xdeadbeefcafef00dull}) {
      EXPECT_EQ(::spin::micro::Run(prog, &arg, 1),
                RunCompiled(*compiled, &arg, 1))
          << "shift " << amount << " arg " << arg;
    }
  }
}

}  // namespace
}  // namespace micro
}  // namespace spin
