// Tests for epoch-based reclamation: the mechanism behind the paper's
// atomic handler-list replacement (§3).
#include "src/rt/epoch.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace spin {
namespace {

struct Tracked {
  explicit Tracked(std::atomic<int>& counter) : counter(counter) {
    counter.fetch_add(1);
  }
  ~Tracked() { counter.fetch_sub(1); }
  std::atomic<int>& counter;
};

void DeleteTracked(void* p) { delete static_cast<Tracked*>(p); }

TEST(EpochTest, RetireEventuallyFrees) {
  EpochDomain domain;
  std::atomic<int> live{0};
  domain.Retire(new Tracked(live), DeleteTracked);
  EXPECT_EQ(live.load(), 1);
  domain.Synchronize();
  EXPECT_EQ(live.load(), 0);
}

TEST(EpochTest, GuardBlocksReclamation) {
  EpochDomain domain;
  std::atomic<int> live{0};
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};

  std::thread reader([&] {
    EpochDomain::Guard guard(domain);
    entered.store(true);
    while (!release.load()) {
      std::this_thread::yield();
    }
  });
  while (!entered.load()) {
    std::this_thread::yield();
  }

  domain.Retire(new Tracked(live), DeleteTracked);
  // The reader pins its entry epoch; Flush cannot advance past it twice.
  for (int i = 0; i < 10; ++i) {
    domain.Flush();
  }
  EXPECT_EQ(live.load(), 1) << "object freed while a guard was active";

  release.store(true);
  reader.join();
  domain.Synchronize();
  EXPECT_EQ(live.load(), 0);
}

TEST(EpochTest, NestedGuards) {
  EpochDomain domain;
  std::atomic<int> live{0};
  {
    EpochDomain::Guard outer(domain);
    {
      EpochDomain::Guard inner(domain);
    }
    // Still inside the outer guard: retire from another thread and verify
    // the object survives (inner guard exit must not unpin the epoch).
    std::thread writer(
        [&] { domain.Retire(new Tracked(live), DeleteTracked); });
    writer.join();
    std::thread flusher([&] {
      for (int i = 0; i < 10; ++i) {
        domain.Flush();
      }
    });
    flusher.join();
    EXPECT_EQ(live.load(), 1);
  }
  domain.Synchronize();
  EXPECT_EQ(live.load(), 0);
}

TEST(EpochTest, ManyRetiresTriggerAutomaticFlush) {
  EpochDomain domain;
  std::atomic<int> live{0};
  for (int i = 0; i < 1000; ++i) {
    domain.Retire(new Tracked(live), DeleteTracked);
  }
  // The automatic flush threshold must keep the backlog bounded when no
  // readers are active.
  EXPECT_LT(domain.retired_count(), 200u);
  domain.Synchronize();
  EXPECT_EQ(live.load(), 0);
}

// Stress: concurrent readers dereference a shared pointer that writers
// continuously replace and retire. Any use-after-free crashes or corrupts
// the sentinel.
TEST(EpochTest, ConcurrentReadersAndWriters) {
  EpochDomain domain;
  struct Node {
    uint64_t sentinel;
  };
  std::atomic<Node*> current{new Node{0xabcdef12345678ull}};
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};

  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        EpochDomain::Guard guard(domain);
        Node* node = current.load(std::memory_order_acquire);
        if (node->sentinel != 0xabcdef12345678ull) {
          bad.fetch_add(1);
        }
      }
    });
  }
  std::thread writer([&] {
    for (int i = 0; i < 20000; ++i) {
      Node* fresh = new Node{0xabcdef12345678ull};
      Node* old = current.exchange(fresh, std::memory_order_acq_rel);
      // Poison, then retire: a reader holding `old` across reclamation
      // would observe the poisoned sentinel or crash.
      domain.Retire(old, +[](void* p) {
        static_cast<Node*>(p)->sentinel = 0xdeadull;
        delete static_cast<Node*>(p);
      });
    }
  });
  writer.join();
  stop.store(true);
  for (std::thread& t : readers) {
    t.join();
  }
  EXPECT_EQ(bad.load(), 0);
  domain.Synchronize();
  delete current.load();
}

TEST(EpochTest, GuardsNestAcrossDistinctDomains) {
  // A sharded dispatcher gives each shard its own domain, and a handler on
  // one shard may raise into another: guards of *different* domains nest on
  // one thread. The outer domain must stay pinned while inner guards on
  // other domains come and go.
  EpochDomain outer_domain;
  EpochDomain inner_domain;
  std::atomic<bool> freed{false};
  {
    EpochDomain::Guard outer(outer_domain);
    // Churn the inner domain: enter/exit and advance its epoch repeatedly.
    for (int i = 0; i < 100; ++i) {
      EpochDomain::Guard inner(inner_domain);
    }
    inner_domain.Synchronize();
    // Retire into the outer domain while we still hold its guard: the
    // object must NOT be freed, however much the inner domain churned.
    outer_domain.Retire(&freed, +[](void* p) {
      static_cast<std::atomic<bool>*>(p)->store(true);
    });
    outer_domain.Flush();
    EXPECT_FALSE(freed.load());
  }
  outer_domain.Synchronize();
  EXPECT_TRUE(freed.load());
}

TEST(EpochTest, ManyDomainsPerThreadSurviveCacheEviction) {
  // More simultaneous domains than the thread-local cache holds: records
  // get evicted and re-acquired, and guard exits must still balance (a
  // stuck record would make Synchronize spin forever).
  constexpr int kDomains = 24;
  std::vector<std::unique_ptr<EpochDomain>> domains;
  for (int i = 0; i < kDomains; ++i) {
    domains.push_back(std::make_unique<EpochDomain>());
  }
  for (int round = 0; round < 3; ++round) {
    for (auto& d : domains) {
      EpochDomain::Guard guard(*d);
    }
  }
  // Deep cross-domain nesting, deeper than the cache.
  {
    std::vector<std::unique_ptr<EpochDomain::Guard>> guards;
    for (auto& d : domains) {
      guards.push_back(std::make_unique<EpochDomain::Guard>(*d));
    }
  }
  for (auto& d : domains) {
    d->Synchronize();  // all records idle again: must not spin
  }
}

TEST(EpochTest, DomainChurnWithThreadsDoesNotCrossContaminate) {
  // Domains are created and destroyed while a long-lived thread keeps
  // entering guards on fresh ones (the shape of tests constructing sharded
  // dispatchers back to back against the global pool). Destroyed domains'
  // records must never produce a false cache hit for a new domain. The
  // mutex sequences the reader's guard against domain destruction; what is
  // under test is the reader's thread-local record cache surviving 200
  // generations of dead domains.
  std::atomic<bool> stop{false};
  std::mutex mu;
  EpochDomain* shared = nullptr;  // guarded by mu
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(mu);
      if (shared != nullptr) {
        EpochDomain::Guard guard(*shared);
      }
    }
  });
  for (int i = 0; i < 200; ++i) {
    auto domain = std::make_unique<EpochDomain>();
    {
      std::lock_guard<std::mutex> lock(mu);
      shared = domain.get();
    }
    {
      EpochDomain::Guard guard(*domain);
    }
    domain->Synchronize();
    {
      std::lock_guard<std::mutex> lock(mu);
      shared = nullptr;
    }
    // Destroyed here: its records go to the recycle pool while the
    // reader's cache still holds entries keyed by the dead domain's id.
  }
  stop.store(true, std::memory_order_release);
  reader.join();
}

}  // namespace
}  // namespace spin
