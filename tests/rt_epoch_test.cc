// Tests for epoch-based reclamation: the mechanism behind the paper's
// atomic handler-list replacement (§3).
#include "src/rt/epoch.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace spin {
namespace {

struct Tracked {
  explicit Tracked(std::atomic<int>& counter) : counter(counter) {
    counter.fetch_add(1);
  }
  ~Tracked() { counter.fetch_sub(1); }
  std::atomic<int>& counter;
};

void DeleteTracked(void* p) { delete static_cast<Tracked*>(p); }

TEST(EpochTest, RetireEventuallyFrees) {
  EpochDomain domain;
  std::atomic<int> live{0};
  domain.Retire(new Tracked(live), DeleteTracked);
  EXPECT_EQ(live.load(), 1);
  domain.Synchronize();
  EXPECT_EQ(live.load(), 0);
}

TEST(EpochTest, GuardBlocksReclamation) {
  EpochDomain domain;
  std::atomic<int> live{0};
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};

  std::thread reader([&] {
    EpochDomain::Guard guard(domain);
    entered.store(true);
    while (!release.load()) {
      std::this_thread::yield();
    }
  });
  while (!entered.load()) {
    std::this_thread::yield();
  }

  domain.Retire(new Tracked(live), DeleteTracked);
  // The reader pins its entry epoch; Flush cannot advance past it twice.
  for (int i = 0; i < 10; ++i) {
    domain.Flush();
  }
  EXPECT_EQ(live.load(), 1) << "object freed while a guard was active";

  release.store(true);
  reader.join();
  domain.Synchronize();
  EXPECT_EQ(live.load(), 0);
}

TEST(EpochTest, NestedGuards) {
  EpochDomain domain;
  std::atomic<int> live{0};
  {
    EpochDomain::Guard outer(domain);
    {
      EpochDomain::Guard inner(domain);
    }
    // Still inside the outer guard: retire from another thread and verify
    // the object survives (inner guard exit must not unpin the epoch).
    std::thread writer(
        [&] { domain.Retire(new Tracked(live), DeleteTracked); });
    writer.join();
    std::thread flusher([&] {
      for (int i = 0; i < 10; ++i) {
        domain.Flush();
      }
    });
    flusher.join();
    EXPECT_EQ(live.load(), 1);
  }
  domain.Synchronize();
  EXPECT_EQ(live.load(), 0);
}

TEST(EpochTest, ManyRetiresTriggerAutomaticFlush) {
  EpochDomain domain;
  std::atomic<int> live{0};
  for (int i = 0; i < 1000; ++i) {
    domain.Retire(new Tracked(live), DeleteTracked);
  }
  // The automatic flush threshold must keep the backlog bounded when no
  // readers are active.
  EXPECT_LT(domain.retired_count(), 200u);
  domain.Synchronize();
  EXPECT_EQ(live.load(), 0);
}

// Stress: concurrent readers dereference a shared pointer that writers
// continuously replace and retire. Any use-after-free crashes or corrupts
// the sentinel.
TEST(EpochTest, ConcurrentReadersAndWriters) {
  EpochDomain domain;
  struct Node {
    uint64_t sentinel;
  };
  std::atomic<Node*> current{new Node{0xabcdef12345678ull}};
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};

  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        EpochDomain::Guard guard(domain);
        Node* node = current.load(std::memory_order_acquire);
        if (node->sentinel != 0xabcdef12345678ull) {
          bad.fetch_add(1);
        }
      }
    });
  }
  std::thread writer([&] {
    for (int i = 0; i < 20000; ++i) {
      Node* fresh = new Node{0xabcdef12345678ull};
      Node* old = current.exchange(fresh, std::memory_order_acq_rel);
      // Poison, then retire: a reader holding `old` across reclamation
      // would observe the poisoned sentinel or crash.
      domain.Retire(old, +[](void* p) {
        static_cast<Node*>(p)->sentinel = 0xdeadull;
        delete static_cast<Node*>(p);
      });
    }
  });
  writer.join();
  stop.store(true);
  for (std::thread& t : readers) {
    t.join();
  }
  EXPECT_EQ(bad.load(), 0);
  domain.Synchronize();
  delete current.load();
}

}  // namespace
}  // namespace spin
