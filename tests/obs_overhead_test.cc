// Smoke bound on observability overhead: with spin_obs linked and tracing
// compiled in but DISABLED, a direct-dispatch raise must stay within a
// generous multiple of a plain indirect call. Catches accidental hooks on
// the fast path (the intrinsic bypass carries none by design).
#include <cstdint>

#include <gtest/gtest.h>

#include "src/core/dispatcher.h"
#include "src/obs/obs.h"
#include "src/rt/clock.h"

namespace spin {
namespace {

uint64_t g_sink = 0;

void Bump(int64_t v) { g_sink += static_cast<uint64_t>(v); }

constexpr size_t kIters = 1000000;

template <typename F>
double NsPerOp(F&& fn) {
  // Best of repeats; one repeat is the full 1M-iteration loop.
  double best = 1e18;
  for (int r = 0; r < 3; ++r) {
    uint64_t start = NowNs();
    for (size_t i = 0; i < kIters; ++i) {
      fn();
    }
    uint64_t elapsed = NowNs() - start;
    double ns = static_cast<double>(elapsed) / kIters;
    best = ns < best ? ns : best;
  }
  return best;
}

TEST(ObsOverheadTest, DirectDispatchWithTracingOff) {
  ASSERT_FALSE(obs::Enabled());

  Dispatcher dispatcher;
  Module module("ObsOverhead");
  Event<void(int64_t)> event("Overhead.Event", &module, &Bump, &dispatcher);
  ASSERT_NE(event.direct_fn(), nullptr);  // intrinsic bypass engaged

  void (*volatile baseline)(int64_t) = &Bump;
  double baseline_ns = NsPerOp([&] { baseline(1); });
  double raise_ns = NsPerOp([&] { event.Raise(1); });

  // Generous bound: the bypass is one extra atomic load + indirect call.
  // 12x + 20ns absorbs timer noise and cold caches on shared CI hardware
  // while still catching an accidental always-on hook (histograms or
  // recorder on the fast path would blow well past this).
  EXPECT_LT(raise_ns, baseline_ns * 12.0 + 20.0)
      << "baseline=" << baseline_ns << "ns raise=" << raise_ns << "ns";
}

}  // namespace
}  // namespace spin
