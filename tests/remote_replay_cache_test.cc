// Regression test pinning the exporter's replay cache to a FIFO window of
// exactly Exporter::kDedupWindow (1024) entries.
//
// The at-most-once guarantee rests on this window: a retransmission whose
// original arrived must replay the cached reply byte-for-byte instead of
// re-raising the event, and the window must hold exactly 1024 entries —
// one fewer and a retry budget that fits today silently re-executes
// tomorrow; one more and the memory bound lies. The test speaks the wire
// protocol directly (raw UDP, hand-encoded frames) so request ids are
// under its control, walks the cache to its exact capacity, and probes
// both boundaries:
//
//   * an id that is the 1024th-newest entry still dedups (window >= 1024);
//   * the id just pushed out re-executes the handler (window <= 1024).
//
// Bind replies share the same cache (a retransmitted BindRequest must
// replay the same token), so the bind entry is part of the accounting.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>

#include "src/net/host.h"
#include "src/remote/exporter.h"
#include "src/remote/proxy.h"
#include "src/sim/simulator.h"

namespace spin {
namespace remote {
namespace {

struct ExecCtx {
  std::map<uint64_t, int> counts;  // raise arg -> handler executions
};

uint64_t CacheHandler(ExecCtx* ctx, uint64_t v) {
  ++ctx->counts[v];
  return v + 1;
}

class ReplayCacheTest : public ::testing::Test {
 protected:
  ReplayCacheTest() {
    wire_.Attach(client_host_, server_host_);
    raw_ = std::make_unique<net::UdpSocket>(
        client_host_, 9401,
        [this](const net::Packet& p) { last_reply_ = p.UdpPayload(); });
  }

  // Sends one hand-encoded frame to the exporter and drains the simulator;
  // last_reply_ holds whatever came back.
  void Send(const std::string& frame) {
    last_reply_.clear();
    raw_->SendTo(server_host_.ip(), kDefaultRemotePort, frame);
    sim_.Run();
  }

  std::string Request(uint64_t id, uint64_t token, uint64_t arg) {
    RequestMsg req;
    req.kind = RaiseKind::kSync;
    req.request_id = id;
    req.token = token;
    req.event_name = "Cache.Op";
    req.params = {WireParam{static_cast<uint8_t>(TypeClass::kUInt64), false}};
    req.args = {arg};
    return EncodeRequest(req);
  }

  Dispatcher dispatcher_;
  sim::Simulator sim_;
  net::Wire wire_{&sim_, sim::LinkModel{}};
  net::Host client_host_{"client", 0x0a000001, &dispatcher_};
  net::Host server_host_{"server", 0x0a000002, &dispatcher_};
  Exporter exporter_{server_host_};
  std::unique_ptr<net::UdpSocket> raw_;
  std::string last_reply_;
};

TEST_F(ReplayCacheTest, FifoEvictsAtExactlyTheDedupWindow) {
  static_assert(Exporter::kDedupWindow == 1024,
                "this test pins the documented window size");

  Event<uint64_t(uint64_t)> event("Cache.Op", nullptr, nullptr, &dispatcher_);
  ExecCtx exec;
  dispatcher_.InstallHandler(event, &CacheHandler, &exec);
  exporter_.Export(event);

  // Bind by hand to get a capability token. The cached BindReply is cache
  // entry #1.
  BindRequestMsg bind;
  bind.bind_id = 0xb1dull;
  bind.event_name = "Cache.Op";
  bind.module_name = "Raw.Cache.Client";
  bind.params = {WireParam{static_cast<uint8_t>(TypeClass::kUInt64), false}};
  const std::string bind_frame = EncodeBindRequest(bind);
  Send(bind_frame);
  BindReplyMsg granted;
  ASSERT_TRUE(DecodeBindReply(last_reply_, &granted));
  ASSERT_EQ(granted.status, WireStatus::kOk);
  const uint64_t token = granted.token;
  ASSERT_NE(token, 0u);
  EXPECT_EQ(exporter_.binds(), 1u);

  // Fill the cache to exactly its capacity: the bind entry plus request
  // ids 1..1023. Every request executes once.
  std::string first_reply_for_id1;
  for (uint64_t id = 1; id <= 1023; ++id) {
    Send(Request(id, token, id));
    ReplyMsg reply;
    ASSERT_TRUE(DecodeReply(last_reply_, &reply)) << "id " << id;
    ASSERT_EQ(reply.status, WireStatus::kOk) << "id " << id;
    ASSERT_EQ(reply.result, id + 1) << "id " << id;
    if (id == 1) {
      first_reply_for_id1 = last_reply_;
    }
  }
  EXPECT_EQ(exec.counts.size(), 1023u);

  // Window full, nothing evicted yet: a retransmission of id 1 replays the
  // cached reply byte-for-byte and does not re-execute.
  Send(Request(1, token, 1));
  EXPECT_EQ(last_reply_, first_reply_for_id1)
      << "a dedup hit must replay the identical reply bytes";
  EXPECT_EQ(exec.counts[1], 1);
  EXPECT_EQ(exporter_.dedup_hits(), 1u);

  // Entry #1025 (request id 1024) pushes out the oldest entry — the bind
  // reply, not id 1. Raise dedup must survive that.
  Send(Request(1024, token, 1024));
  Send(Request(1, token, 1));
  EXPECT_EQ(last_reply_, first_reply_for_id1)
      << "id 1 is the 1024th-newest entry: still inside the window";
  EXPECT_EQ(exec.counts[1], 1);
  EXPECT_EQ(exporter_.dedup_hits(), 2u);

  // Entry #1026 (request id 1025) evicts id 1. Probe the surviving
  // boundary first: id 2 is now the oldest cached entry and must still
  // dedup — if the window held 1023 entries, this re-executes.
  Send(Request(1025, token, 1025));
  Send(Request(2, token, 2));
  EXPECT_EQ(exec.counts[2], 1)
      << "the 1024th-newest entry fell out: window is narrower than 1024";
  EXPECT_EQ(exporter_.dedup_hits(), 3u);

  // And the evicted boundary: id 1 is gone, so its retransmission
  // re-executes — if the window held 1025 entries, this dedups.
  Send(Request(1, token, 1));
  EXPECT_EQ(exec.counts[1], 2)
      << "an entry past the window must have been evicted: window is wider "
         "than 1024";
  EXPECT_EQ(exporter_.dedup_hits(), 3u);
  ReplyMsg re_executed;
  ASSERT_TRUE(DecodeReply(last_reply_, &re_executed));
  EXPECT_EQ(re_executed.status, WireStatus::kOk);
  EXPECT_EQ(re_executed.result, 2u);

  // The bind entry was evicted back at entry #1025, so retransmitting the
  // original BindRequest re-runs the handshake and mints a fresh token
  // (the old capability stays valid — revocation, not eviction, kills it).
  Send(bind_frame);
  BindReplyMsg rebound;
  ASSERT_TRUE(DecodeBindReply(last_reply_, &rebound));
  EXPECT_EQ(rebound.status, WireStatus::kOk);
  EXPECT_NE(rebound.token, token)
      << "an evicted bind entry cannot replay the old token";
  EXPECT_EQ(exporter_.binds(), 2u);

  // Total executions account for every non-dedup'd delivery exactly once.
  uint64_t executed = 0;
  for (const auto& [arg, count] : exec.counts) {
    executed += static_cast<uint64_t>(count);
  }
  EXPECT_EQ(executed, 1025u + 1u);  // ids 1..1025, plus the re-run of id 1
}

// A duplicated BindRequest inside the window replays the same token — the
// proxy's retransmitted handshake must not mint a second capability.
TEST_F(ReplayCacheTest, BindRetransmissionInsideWindowReplaysTheSameToken) {
  Event<uint64_t(uint64_t)> event("Cache.Op", nullptr, nullptr, &dispatcher_);
  ExecCtx exec;
  dispatcher_.InstallHandler(event, &CacheHandler, &exec);
  exporter_.Export(event);

  BindRequestMsg bind;
  bind.bind_id = 0x5eedull;
  bind.event_name = "Cache.Op";
  bind.module_name = "Raw.Cache.Client";
  bind.params = {WireParam{static_cast<uint8_t>(TypeClass::kUInt64), false}};
  const std::string frame = EncodeBindRequest(bind);

  Send(frame);
  BindReplyMsg first;
  ASSERT_TRUE(DecodeBindReply(last_reply_, &first));
  ASSERT_EQ(first.status, WireStatus::kOk);

  Send(frame);
  BindReplyMsg second;
  ASSERT_TRUE(DecodeBindReply(last_reply_, &second));
  EXPECT_EQ(second.token, first.token)
      << "a retransmitted bind must replay, not re-mint";
  EXPECT_EQ(exporter_.binds(), 1u);
  EXPECT_EQ(exporter_.dedup_hits(), 1u);
  EXPECT_EQ(exporter_.bound_clients(), 1u);
}

}  // namespace
}  // namespace remote
}  // namespace spin
