// Fleet macro-workload driver: establishment at scale, per-stack loss
// recovery (the PR's throughput acceptance), shard spreading, failure
// surfacing, and hot-swap integrity across a whole fleet.
#include <gtest/gtest.h>

#include <string>

#include "src/core/dispatcher.h"
#include "src/fleet/fleet.h"

namespace spin {
namespace fleet {
namespace {

FleetOptions SmallFleet() {
  FleetOptions options;
  options.pairs = 4;
  options.conns_per_pair = 2;
  options.duration_ns = 500'000'000;
  options.request_interval_ns = 50'000'000;
  return options;
}

TEST(FleetTest, CleanFleetEstablishesAndDelivers) {
  Dispatcher dispatcher;
  Fleet fleet(&dispatcher, SmallFleet());
  FleetReport report = fleet.Run();
  EXPECT_EQ(report.hosts, 8u);
  EXPECT_EQ(report.connections, 8u);
  EXPECT_EQ(report.established, 8u);
  EXPECT_EQ(report.dead, 0u);
  EXPECT_GT(report.requests_sent, 0u);
  EXPECT_GT(report.responses_delivered, 0u);
  EXPECT_TRUE(report.streams_intact);
  EXPECT_EQ(report.retransmissions, 0u) << "no loss configured";
  EXPECT_GT(report.latency_p50_ns, 0u);
}

uint64_t DeliveredWith(const std::string& stack, double loss) {
  Dispatcher dispatcher;
  FleetOptions options;
  options.pairs = 10;
  options.conns_per_pair = 5;
  options.stack = stack;
  options.loss = loss;
  options.seed = 42;
  options.duration_ns = 1'000'000'000;
  Fleet fleet(&dispatcher, options);
  FleetReport report = fleet.Run();
  EXPECT_TRUE(report.streams_intact) << stack;
  return report.responses_delivered;
}

// The PR's throughput acceptance: at 5% loss, both feedback-driven stacks
// beat stop_and_wait's RTO-only recovery on delivered responses. The
// seeded loss streams make the comparison exactly reproducible.
TEST(FleetTest, RenoAndRackBeatStopAndWaitAtFivePercentLoss) {
  uint64_t baseline = DeliveredWith("stop_and_wait", 0.05);
  uint64_t reno = DeliveredWith("reno", 0.05);
  uint64_t rack = DeliveredWith("rack_lite", 0.05);
  EXPECT_GT(reno, baseline)
      << "fast retransmit must recover faster than a full RTO";
  EXPECT_GT(rack, baseline)
      << "time-ordered detection must recover faster than a full RTO";
}

TEST(FleetTest, ConnectionsSpreadAcrossDispatcherShards) {
  Dispatcher::Config config;
  config.shards = 4;
  Dispatcher dispatcher(config);
  Fleet fleet(&dispatcher, SmallFleet());
  fleet.Run();
  int shards_hit = 0;
  for (uint32_t s = 0; s < dispatcher.shard_count(); ++s) {
    if (dispatcher.shard_raises(s) > 0) {
      ++shards_hit;
    }
  }
  EXPECT_GE(shards_hit, 2)
      << "per-connection raise sources must hash to multiple shards";
}

TEST(FleetTest, TotalLossSurfacesDeadConnections) {
  Dispatcher dispatcher;
  FleetOptions options = SmallFleet();
  options.loss = 1.0;  // nothing survives the wire
  options.rto_ns = 1'000'000;
  options.max_retries = 3;
  Fleet fleet(&dispatcher, options);
  FleetReport report = fleet.Run();
  EXPECT_EQ(report.established, 0u);
  EXPECT_EQ(report.dead, report.connections)
      << "exhausted handshakes must be reported, not silently stuck";
  EXPECT_EQ(report.responses_delivered, 0u);
}

TEST(FleetTest, MidRunSwapKeepsEveryStreamIntact) {
  Dispatcher dispatcher;
  FleetOptions options = SmallFleet();
  options.stack = "reno";
  options.loss = 0.02;
  options.allowed_stacks = {"reno", "rack_lite"};
  Fleet fleet(&dispatcher, options);
  fleet.ScheduleSwap(options.duration_ns / 2, "rack_lite");
  fleet.ScheduleSwap(options.duration_ns / 2 + 1, "stop_and_wait");
  FleetReport report = fleet.Run();
  EXPECT_EQ(report.swaps_granted, 2 * report.connections)
      << "rack_lite swap granted on both endpoints of every connection";
  EXPECT_EQ(report.swaps_denied, 2 * report.connections)
      << "stop_and_wait swap denied everywhere";
  EXPECT_EQ(report.dead, 0u);
  EXPECT_TRUE(report.streams_intact)
      << "no byte dropped or reordered across the fleet-wide swap";
  EXPECT_GT(report.responses_delivered, 0u);
}

TEST(FleetTest, ReportJsonCarriesTheRow) {
  FleetOptions options;
  options.stack = "reno";
  options.loss = 0.05;
  FleetReport report;
  report.hosts = 200;
  report.connections = 2000;
  report.responses_delivered = 123;
  std::string json = ReportJson(options, report);
  EXPECT_NE(json.find("\"stack\": \"reno\""), std::string::npos);
  EXPECT_NE(json.find("\"loss\": 0.05"), std::string::npos);
  EXPECT_NE(json.find("\"connections\": 2000"), std::string::npos);
  EXPECT_NE(json.find("\"responses\": 123"), std::string::npos);
}

}  // namespace
}  // namespace fleet
}  // namespace spin
