// Encoder tests: assemble small LIR functions and execute them. Exact-byte
// checks cover the encodings with special cases (rsp/r12 need SIB, rbp/r13
// need explicit displacement, byte-register REX rules).
#include <gtest/gtest.h>

#include "src/codegen/exec_memory.h"
#include "src/codegen/lir.h"
#include "src/codegen/stub_compiler.h"

namespace spin {
namespace codegen {
namespace {

using Fn0 = uint64_t (*)();
using Fn1 = uint64_t (*)(uint64_t);
using Fn2 = uint64_t (*)(uint64_t, uint64_t);

class EncoderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!CodegenAvailable()) {
      GTEST_SKIP() << "codegen unavailable on this host";
    }
  }

  void* Assemble(const std::vector<LInsn>& code) {
    std::vector<uint8_t> bytes = Encode(code);
    buffers_.push_back(CodeBuffer::Create(bytes));
    EXPECT_NE(buffers_.back(), nullptr);
    return const_cast<void*>(buffers_.back()->entry());
  }

  std::vector<std::unique_ptr<CodeBuffer>> buffers_;
};

TEST_F(EncoderTest, MovImmAllForms) {
  // Small, 32-bit, negative-32, and full 64-bit immediates.
  for (uint64_t imm : {uint64_t{0}, uint64_t{1}, uint64_t{0x7fffffff},
                       uint64_t{0xffffffff}, ~uint64_t{0},
                       uint64_t{0x123456789abcdef0}}) {
    auto fn = reinterpret_cast<Fn0>(Assemble({
        {.op = LOp::kMovRegImm, .dst = Reg::kRax, .imm = imm},
        {.op = LOp::kRet},
    }));
    EXPECT_EQ(fn(), imm) << std::hex << imm;
  }
}

TEST_F(EncoderTest, MovRegRegAndAlu) {
  // f(a, b) = ((a + b) ^ b) - (a & b)
  auto fn = reinterpret_cast<Fn2>(Assemble({
      {.op = LOp::kMovRegReg, .dst = Reg::kRax, .src = Reg::kRdi},
      {.op = LOp::kAdd, .dst = Reg::kRax, .src = Reg::kRsi},
      {.op = LOp::kXor, .dst = Reg::kRax, .src = Reg::kRsi},
      {.op = LOp::kMovRegReg, .dst = Reg::kRcx, .src = Reg::kRdi},
      {.op = LOp::kAnd, .dst = Reg::kRcx, .src = Reg::kRsi},
      {.op = LOp::kSub, .dst = Reg::kRax, .src = Reg::kRcx},
      {.op = LOp::kRet},
  }));
  uint64_t a = 0x1234567812345678ull;
  uint64_t b = 0x9abcdef09abcdef0ull;
  EXPECT_EQ(fn(a, b), ((a + b) ^ b) - (a & b));
}

TEST_F(EncoderTest, ExtendedRegisters) {
  // Same dataflow through r8-r11 to exercise REX.R/REX.B paths.
  auto fn = reinterpret_cast<Fn2>(Assemble({
      {.op = LOp::kMovRegReg, .dst = Reg::kR8, .src = Reg::kRdi},
      {.op = LOp::kMovRegReg, .dst = Reg::kR9, .src = Reg::kRsi},
      {.op = LOp::kAdd, .dst = Reg::kR8, .src = Reg::kR9},
      {.op = LOp::kMovRegReg, .dst = Reg::kRax, .src = Reg::kR8},
      {.op = LOp::kRet},
  }));
  EXPECT_EQ(fn(40, 2), 42u);
}

TEST_F(EncoderTest, LoadsZeroExtendEachWidth) {
  uint64_t cell = 0xffeeddccbbaa9988ull;
  for (uint8_t width : {uint8_t{1}, uint8_t{2}, uint8_t{4}, uint8_t{8}}) {
    auto fn = reinterpret_cast<Fn1>(Assemble({
        {.op = LOp::kLoadRegMem, .dst = Reg::kRax, .base = Reg::kRdi,
         .width = width, .disp = 0},
        {.op = LOp::kRet},
    }));
    uint64_t mask = width == 8 ? ~0ull : ((1ull << (8 * width)) - 1);
    EXPECT_EQ(fn(reinterpret_cast<uintptr_t>(&cell)), cell & mask);
  }
}

TEST_F(EncoderTest, StoresEachWidth) {
  for (uint8_t width : {uint8_t{1}, uint8_t{2}, uint8_t{4}, uint8_t{8}}) {
    uint64_t cell = 0;
    auto fn = reinterpret_cast<Fn2>(Assemble({
        {.op = LOp::kStoreMemReg, .src = Reg::kRsi, .base = Reg::kRdi,
         .width = width, .disp = 0},
        {.op = LOp::kMovRegImm, .dst = Reg::kRax, .imm = 0},
        {.op = LOp::kRet},
    }));
    fn(reinterpret_cast<uintptr_t>(&cell), 0x1122334455667788ull);
    uint64_t mask = width == 8 ? ~0ull : ((1ull << (8 * width)) - 1);
    EXPECT_EQ(cell, 0x1122334455667788ull & mask) << "width " << +width;
  }
}

TEST_F(EncoderTest, ByteStoreFromSilNeedsEmptyRex) {
  // store1 [rdi], rsi hits the spl/bpl/sil/dil byte-register rule: without
  // a REX prefix 0x88 /6 would write %dh.
  uint64_t cell = 0;
  auto fn = reinterpret_cast<Fn2>(Assemble({
      {.op = LOp::kStoreMemReg, .src = Reg::kRsi, .base = Reg::kRdi,
       .width = 1, .disp = 0},
      {.op = LOp::kRet},
  }));
  fn(reinterpret_cast<uintptr_t>(&cell), 0xab);
  EXPECT_EQ(cell, 0xabu);
}

TEST_F(EncoderTest, DisplacementForms) {
  // disp == 0, disp8, disp32, and negative displacements.
  uint64_t block[600] = {};
  block[0] = 10;
  block[15] = 20;   // disp8: 120
  block[512] = 30;  // disp32: 4096
  for (auto [index, expect] : {std::pair<int, uint64_t>{0, 10},
                               {15, 20},
                               {512, 30}}) {
    auto fn = reinterpret_cast<Fn1>(Assemble({
        {.op = LOp::kLoadRegMem, .dst = Reg::kRax, .base = Reg::kRdi,
         .width = 8, .disp = 8 * index},
        {.op = LOp::kRet},
    }));
    EXPECT_EQ(fn(reinterpret_cast<uintptr_t>(block)), expect);
  }
  // Negative disp8.
  auto fn = reinterpret_cast<Fn1>(Assemble({
      {.op = LOp::kLoadRegMem, .dst = Reg::kRax, .base = Reg::kRdi,
       .width = 8, .disp = -8},
      {.op = LOp::kRet},
  }));
  EXPECT_EQ(fn(reinterpret_cast<uintptr_t>(&block[1])), 10u);
}

TEST_F(EncoderTest, RspAndRbpBasesEncodeCorrectly) {
  // [rsp+disp] requires a SIB byte; [rbp+0] requires an explicit disp8.
  // Exercise via: spill rdi below rsp, reload through rsp; and move rdi to
  // rbp (after saving) and load through it.
  auto fn = reinterpret_cast<Fn1>(Assemble({
      {.op = LOp::kStoreMemReg, .src = Reg::kRdi, .base = Reg::kRsp,
       .width = 8, .disp = -16},
      {.op = LOp::kLoadRegMem, .dst = Reg::kRax, .base = Reg::kRsp,
       .width = 8, .disp = -16},
      {.op = LOp::kRet},
  }));
  EXPECT_EQ(fn(77), 77u);

  uint64_t cell = 55;
  auto fn2 = reinterpret_cast<Fn1>(Assemble({
      {.op = LOp::kPush, .dst = Reg::kRbp},
      {.op = LOp::kMovRegReg, .dst = Reg::kRbp, .src = Reg::kRdi},
      {.op = LOp::kLoadRegMem, .dst = Reg::kRax, .base = Reg::kRbp,
       .width = 8, .disp = 0},
      {.op = LOp::kPop, .dst = Reg::kRbp},
      {.op = LOp::kRet},
  }));
  EXPECT_EQ(fn2(reinterpret_cast<uintptr_t>(&cell)), 55u);
}

TEST_F(EncoderTest, R12AndR13Bases) {
  // r12 hits the SIB special case, r13 the disp special case.
  uint64_t cell = 0x42;
  auto fn = reinterpret_cast<Fn1>(Assemble({
      {.op = LOp::kPush, .dst = Reg::kR12},
      {.op = LOp::kPush, .dst = Reg::kR13},
      {.op = LOp::kMovRegReg, .dst = Reg::kR12, .src = Reg::kRdi},
      {.op = LOp::kMovRegReg, .dst = Reg::kR13, .src = Reg::kRdi},
      {.op = LOp::kLoadRegMem, .dst = Reg::kRax, .base = Reg::kR12,
       .width = 8, .disp = 0},
      {.op = LOp::kLoadRegMem, .dst = Reg::kRcx, .base = Reg::kR13,
       .width = 8, .disp = 0},
      {.op = LOp::kAdd, .dst = Reg::kRax, .src = Reg::kRcx},
      {.op = LOp::kPop, .dst = Reg::kR13},
      {.op = LOp::kPop, .dst = Reg::kR12},
      {.op = LOp::kRet},
  }));
  EXPECT_EQ(fn(reinterpret_cast<uintptr_t>(&cell)), 0x84u);
}

TEST_F(EncoderTest, ShiftsAndCompare) {
  // f(a) = (a << 5) >> 3
  auto fn = reinterpret_cast<Fn1>(Assemble({
      {.op = LOp::kMovRegReg, .dst = Reg::kRax, .src = Reg::kRdi},
      {.op = LOp::kShlImm, .dst = Reg::kRax, .imm = 5},
      {.op = LOp::kShrImm, .dst = Reg::kRax, .imm = 3},
      {.op = LOp::kRet},
  }));
  EXPECT_EQ(fn(0x8000000000000001ull), (0x8000000000000001ull << 5) >> 3);
}

TEST_F(EncoderTest, SetccAndBranches) {
  // f(a, b) = a < b (unsigned) computed two ways: setcc and a branch.
  auto fn = reinterpret_cast<Fn2>(Assemble({
      {.op = LOp::kCmpRegReg, .dst = Reg::kRdi, .src = Reg::kRsi},
      {.op = LOp::kSetcc, .dst = Reg::kRax, .cc = Cond::kB},
      {.op = LOp::kMovzx8, .dst = Reg::kRax},
      {.op = LOp::kRet},
  }));
  EXPECT_EQ(fn(1, 2), 1u);
  EXPECT_EQ(fn(2, 1), 0u);
  EXPECT_EQ(fn(1, 1), 0u);

  auto fn2 = reinterpret_cast<Fn2>(Assemble({
      {.op = LOp::kCmpRegReg, .dst = Reg::kRdi, .src = Reg::kRsi},
      {.op = LOp::kJcc, .cc = Cond::kB, .label = 0},
      {.op = LOp::kMovRegImm, .dst = Reg::kRax, .imm = 0},
      {.op = LOp::kRet},
      {.op = LOp::kBind, .label = 0},
      {.op = LOp::kMovRegImm, .dst = Reg::kRax, .imm = 1},
      {.op = LOp::kRet},
  }));
  EXPECT_EQ(fn2(1, 2), 1u);
  EXPECT_EQ(fn2(2, 1), 0u);
}

TEST_F(EncoderTest, SetccOnHighByteRegs) {
  // setcc on sil/dil and r8b exercise the forced/extended REX paths.
  for (Reg reg : {Reg::kRsi, Reg::kRdi, Reg::kR8}) {
    auto fn = reinterpret_cast<Fn2>(Assemble({
        {.op = LOp::kCmpRegReg, .dst = Reg::kRdi, .src = Reg::kRsi},
        {.op = LOp::kSetcc, .dst = reg, .cc = Cond::kE},
        {.op = LOp::kMovzx8, .dst = reg},
        {.op = LOp::kMovRegReg, .dst = Reg::kRax, .src = reg},
        {.op = LOp::kRet},
    }));
    EXPECT_EQ(fn(5, 5), 1u) << RegName(reg);
    EXPECT_EQ(fn(5, 6), 0u) << RegName(reg);
  }
}

TEST_F(EncoderTest, CallThroughRegister) {
  // Stub calls a C function through rax, as generated dispatch code does.
  static uint64_t (*target)(uint64_t) = +[](uint64_t x) { return x * 3; };
  auto fn = reinterpret_cast<Fn1>(Assemble({
      {.op = LOp::kPush, .dst = Reg::kRbx},  // align stack for the call
      {.op = LOp::kMovRegImm, .dst = Reg::kRax,
       .imm = reinterpret_cast<uintptr_t>(target)},
      {.op = LOp::kCall, .dst = Reg::kRax},
      {.op = LOp::kPop, .dst = Reg::kRbx},
      {.op = LOp::kRet},
  }));
  EXPECT_EQ(fn(14), 42u);
}

TEST_F(EncoderTest, MemoryAluAndInc) {
  struct Cells {
    uint64_t or_cell;
    uint64_t add_cell;
    uint32_t counter;
  } cells{0x10, 5, 7};
  auto fn = reinterpret_cast<Fn2>(Assemble({
      {.op = LOp::kAluMemReg, .src = Reg::kRsi, .base = Reg::kRdi,
       .alu = AluSub::kOr, .disp = 0},
      {.op = LOp::kAluMemReg, .src = Reg::kRsi, .base = Reg::kRdi,
       .alu = AluSub::kAdd, .disp = 8},
      {.op = LOp::kIncMem32, .base = Reg::kRdi, .disp = 16},
      {.op = LOp::kMovRegImm, .dst = Reg::kRax, .imm = 0},
      {.op = LOp::kRet},
  }));
  fn(reinterpret_cast<uintptr_t>(&cells), 0x3);
  EXPECT_EQ(cells.or_cell, 0x13u);
  EXPECT_EQ(cells.add_cell, 8u);
  EXPECT_EQ(cells.counter, 8u);
}

TEST_F(EncoderTest, LeaComputesAddress) {
  auto fn = reinterpret_cast<Fn1>(Assemble({
      {.op = LOp::kLea, .dst = Reg::kRax, .base = Reg::kRdi, .disp = 24},
      {.op = LOp::kRet},
  }));
  EXPECT_EQ(fn(1000), 1024u);
}

TEST(EncoderBytesTest, KnownEncodings) {
  // A few exact encodings cross-checked against an external assembler.
  EXPECT_EQ(Encode({{.op = LOp::kRet}}), (std::vector<uint8_t>{0xC3}));
  // mov rax, rdi => 48 89 f8
  EXPECT_EQ(Encode({{.op = LOp::kMovRegReg, .dst = Reg::kRax,
                     .src = Reg::kRdi}}),
            (std::vector<uint8_t>{0x48, 0x89, 0xF8}));
  // push rbx => 53
  EXPECT_EQ(Encode({{.op = LOp::kPush, .dst = Reg::kRbx}}),
            (std::vector<uint8_t>{0x53}));
  // push r12 => 41 54
  EXPECT_EQ(Encode({{.op = LOp::kPush, .dst = Reg::kR12}}),
            (std::vector<uint8_t>{0x41, 0x54}));
  // mov rax, [rbx+8] => 48 8b 43 08
  EXPECT_EQ(Encode({{.op = LOp::kLoadRegMem, .dst = Reg::kRax,
                     .base = Reg::kRbx, .width = 8, .disp = 8}}),
            (std::vector<uint8_t>{0x48, 0x8B, 0x43, 0x08}));
  // mov eax, 1 => b8 01 00 00 00 (zero-extending 32-bit form)
  EXPECT_EQ(Encode({{.op = LOp::kMovRegImm, .dst = Reg::kRax, .imm = 1}}),
            (std::vector<uint8_t>{0xB8, 0x01, 0x00, 0x00, 0x00}));
}

}  // namespace
}  // namespace codegen
}  // namespace spin
