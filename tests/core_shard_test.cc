// Sharded dispatch state: installs publish a replica (and a cloned stub) to
// every shard, raises read only their source's shard, and async work drains
// through the source's own outbox queue. With shards=1 the dispatcher must
// behave exactly like the historical single-replica one.
#include <atomic>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/dispatcher.h"
#include "src/core/shard.h"
#include "src/obs/export.h"

namespace spin {
namespace {

// A source value that ShardFor maps to `shard` under `shards` shards.
uint64_t SourceOnShard(uint32_t shard, uint32_t shards) {
  for (uint64_t id = 1;; ++id) {
    uint64_t source = MakeRaiseSource(SourceKind::kStrand, id);
    if (ShardFor(source, shards) == shard) {
      return source;
    }
  }
}

std::atomic<uint64_t> g_fired{0};

int64_t AddOne(int64_t a) { return a + 1; }
int64_t AddTwo(int64_t a) { return a + 2; }
void CountFired(int64_t) {
  g_fired.fetch_add(1, std::memory_order_relaxed);
}

TEST(ShardTest, ShardCountResolution) {
  Dispatcher::Config config;
  config.shards = 4;
  Dispatcher four(config);
  EXPECT_EQ(four.shard_count(), 4u);

  config.shards = 0;  // auto: one per hardware thread, at least one
  Dispatcher automatic(config);
  EXPECT_GE(automatic.shard_count(), 1u);
  EXPECT_LE(automatic.shard_count(), Dispatcher::kMaxShards);

  config.shards = 100000;  // capped
  Dispatcher capped(config);
  EXPECT_EQ(capped.shard_count(), Dispatcher::kMaxShards);

  EXPECT_EQ(Dispatcher().shard_count(), 1u);  // default: historical layout
}

TEST(ShardTest, EverySourceSeesInstalledHandlers) {
  Module module("Shards");
  Dispatcher::Config config;
  config.shards = 4;
  // A single plain handler would take the intrinsic-bypass direct call and
  // never touch the tables; disable it so raises exercise the replicas.
  config.allow_direct = false;
  Dispatcher dispatcher(config);
  Event<int64_t(int64_t)> event("Shards.Add", &module, nullptr, &dispatcher);
  dispatcher.InstallHandler(event, &AddOne, {.module = &module});

  // Raise once as a source pinned to each shard: every replica must carry
  // the installed handler.
  for (uint32_t s = 0; s < dispatcher.shard_count(); ++s) {
    RaiseSourceScope source(SourceOnShard(s, dispatcher.shard_count()));
    EXPECT_EQ(event.Raise(41), 42) << "shard " << s;
  }
  // Per-shard raise counters saw exactly one raise each.
  for (uint32_t s = 0; s < dispatcher.shard_count(); ++s) {
    EXPECT_EQ(dispatcher.shard_raises(s), 1u) << "shard " << s;
  }
}

TEST(ShardTest, ReinstallRepublishesEveryReplica) {
  Module module("Shards");
  Dispatcher::Config config;
  config.shards = 4;
  config.allow_direct = false;  // raise through the table replicas
  Dispatcher dispatcher(config);
  Event<int64_t(int64_t)> event("Shards.Swap", &module, nullptr, &dispatcher);
  auto one = dispatcher.InstallHandler(event, &AddOne, {.module = &module});

  dispatcher.Uninstall(one, &module);
  dispatcher.InstallHandler(event, &AddTwo, {.module = &module});
  for (uint32_t s = 0; s < dispatcher.shard_count(); ++s) {
    RaiseSourceScope source(SourceOnShard(s, dispatcher.shard_count()));
    EXPECT_EQ(event.Raise(40), 42) << "shard " << s;
  }
}

TEST(ShardTest, StubReplicasClonedPerShard) {
  if (!codegen::CodegenAvailable()) {
    GTEST_SKIP() << "JIT unavailable";
  }
  Module module("Shards");
  Dispatcher::Config config;
  config.shards = 4;
  config.allow_direct = false;  // force a stub for the single handler
  Dispatcher dispatcher(config);
  Event<int64_t(int64_t)> event("Shards.Stub", &module, nullptr, &dispatcher);
  uint64_t replicas_before = dispatcher.stats().stub_replicas;
  dispatcher.InstallHandler(event, &AddOne, {.module = &module});
  // One compile for shard 0, one byte-copy per extra shard.
  EXPECT_EQ(dispatcher.stats().stub_replicas - replicas_before,
            dispatcher.shard_count() - 1);
  for (uint32_t s = 0; s < dispatcher.shard_count(); ++s) {
    RaiseSourceScope source(SourceOnShard(s, dispatcher.shard_count()));
    EXPECT_EQ(event.Raise(1), 2) << "shard " << s;
  }
}

TEST(ShardTest, AsyncOutboxRoutesToShardQueue) {
  Module module("Shards");
  ThreadPool pool(4);
  Dispatcher::Config config;
  config.shards = 4;
  config.pool = &pool;
  Dispatcher dispatcher(config);
  Event<void(int64_t)> event("Shards.Async", &module, nullptr, &dispatcher);
  g_fired = 0;
  dispatcher.InstallHandler(
      event, +[](int64_t) { g_fired.fetch_add(1, std::memory_order_relaxed); },
      {.async = true, .module = &module});

  const uint32_t shard = 2;
  uint64_t executed_before = pool.executed(shard);
  {
    RaiseSourceScope source(SourceOnShard(shard, dispatcher.shard_count()));
    for (int i = 0; i < 32; ++i) {
      event.Raise(i);
    }
  }
  pool.Drain();
  EXPECT_EQ(g_fired.load(), 32u);
  // Every async body was submitted to (and accounted against) the shard's
  // own outbox queue, wherever it ultimately ran.
  EXPECT_EQ(pool.executed(shard) - executed_before, 32u);
}

TEST(ShardTest, DetachedRaiseKeepsSourceShard) {
  Module module("Shards");
  ThreadPool pool(4);
  Dispatcher::Config config;
  config.shards = 4;
  config.pool = &pool;
  Dispatcher dispatcher(config);
  Event<void(int64_t)> event("Shards.Detached", &module, nullptr,
                             &dispatcher);
  g_fired = 0;
  dispatcher.InstallHandler(event, &CountFired, {.module = &module});
  const uint32_t shard = 1;
  uint64_t raises_before = dispatcher.shard_raises(shard);
  {
    RaiseSourceScope source(SourceOnShard(shard, dispatcher.shard_count()));
    for (int i = 0; i < 16; ++i) {
      event.RaiseAsync(i);
    }
  }
  pool.Drain();
  EXPECT_EQ(g_fired.load(), 16u);
  // The detached dispatch re-raised under the pinned source, so the raises
  // landed on the same shard the synchronous path would have used.
  EXPECT_EQ(dispatcher.shard_raises(shard) - raises_before, 16u);
}

TEST(ShardTest, UnregisterSynchronizesEveryShard) {
  Module module("Shards");
  Dispatcher::Config config;
  config.shards = 4;
  Dispatcher dispatcher(config);
  {
    Event<int64_t(int64_t)> event("Shards.Gone", &module, nullptr,
                                  &dispatcher);
    dispatcher.InstallHandler(event, &AddOne, {.module = &module});
    for (uint32_t s = 0; s < dispatcher.shard_count(); ++s) {
      RaiseSourceScope source(SourceOnShard(s, dispatcher.shard_count()));
      EXPECT_EQ(event.Raise(0), 1);
    }
  }  // destruction reclaims all four replicas through their shard domains
  dispatcher.SynchronizeAllShards();  // and this must not deadlock after
}

TEST(ShardTest, MetricsExportCarriesShardLabels) {
  Module module("Shards");
  Dispatcher::Config config;
  config.shards = 2;
  Dispatcher dispatcher(config);
  Event<int64_t(int64_t)> event("Shards.Metrics", &module, nullptr,
                                &dispatcher);
  dispatcher.InstallHandler(event, &AddOne, {.module = &module});
  for (uint32_t s = 0; s < dispatcher.shard_count(); ++s) {
    RaiseSourceScope source(SourceOnShard(s, dispatcher.shard_count()));
    event.Raise(0);
  }
  std::ostringstream os;
  obs::ExportMetrics(os);
  std::string text = os.str();
  EXPECT_NE(text.find("spin_dispatcher_shards"), std::string::npos);
  EXPECT_NE(text.find("spin_dispatcher_shard_raises_total"),
            std::string::npos);
  EXPECT_NE(text.find("shard=\"0\""), std::string::npos);
  EXPECT_NE(text.find("shard=\"1\""), std::string::npos);
  // Aggregate series survive for dashboard continuity.
  EXPECT_NE(text.find("spin_pool_queue_depth{instance="), std::string::npos);
  EXPECT_NE(text.find("spin_pool_executed_total{instance="),
            std::string::npos);
}

}  // namespace
}  // namespace spin
