// A deliberately small length-decoding x86-64 disassembler for the golden
// codegen tests.
//
// It covers exactly the encoder inventory of src/codegen/lir.cc — the only
// instructions the stub compiler can emit — and refuses everything else.
// That refusal is the point: if a future encoder change emits a byte
// sequence this decoder does not recognize, the golden test fails loudly
// instead of silently checking in bytes nobody can read. Keep the two files
// in lockstep: a new LOp case in lir.cc needs a decode case here and
// regenerated golden files (tools/update_golden.py).
//
// Not supported (never emitted): RIP-relative addressing, SIB scales or
// index registers, 8/16-bit immediates outside shifts, legacy prefixes
// other than 0x66, VEX/EVEX, anything floating-point.
#ifndef TESTS_X86_DISASM_H_
#define TESTS_X86_DISASM_H_

#include <cstdint>
#include <cstdio>
#include <string>

namespace spin {
namespace testdisasm {

inline const char* Reg64(int r) {
  static const char* kNames[16] = {"rax", "rcx", "rdx", "rbx", "rsp", "rbp",
                                   "rsi", "rdi", "r8",  "r9",  "r10", "r11",
                                   "r12", "r13", "r14", "r15"};
  return kNames[r & 15];
}

inline const char* Reg32(int r) {
  static const char* kNames[16] = {"eax", "ecx", "edx",  "ebx",  "esp",
                                   "ebp", "esi", "edi",  "r8d",  "r9d",
                                   "r10d", "r11d", "r12d", "r13d", "r14d",
                                   "r15d"};
  return kNames[r & 15];
}

inline const char* Reg16(int r) {
  static const char* kNames[16] = {"ax",  "cx",  "dx",   "bx",   "sp",
                                   "bp",  "si",  "di",   "r8w",  "r9w",
                                   "r10w", "r11w", "r12w", "r13w", "r14w",
                                   "r15w"};
  return kNames[r & 15];
}

// Byte registers. With any REX prefix present, encodings 4..7 mean
// spl/bpl/sil/dil; without, they mean ah/ch/dh/bh (the encoder forces an
// empty REX precisely to avoid those).
inline const char* Reg8(int r, bool have_rex) {
  static const char* kRex[16] = {"al",  "cl",  "dl",   "bl",   "spl",
                                 "bpl", "sil", "dil",  "r8b",  "r9b",
                                 "r10b", "r11b", "r12b", "r13b", "r14b",
                                 "r15b"};
  static const char* kLegacy[8] = {"al", "cl", "dl", "bl",
                                   "ah", "ch", "dh", "bh"};
  return have_rex ? kRex[r & 15] : kLegacy[r & 7];
}

inline const char* RegSized(int r, int bits) {
  switch (bits) {
    case 16:
      return Reg16(r);
    case 32:
      return Reg32(r);
    default:
      return Reg64(r);
  }
}

inline const char* CcName(int cc) {
  static const char* kNames[16] = {"o", "no", "b",  "ae", "e",  "ne",
                                   "be", "a",  "s",  "ns", "p",  "np",
                                   "l",  "ge", "le", "g"};
  return kNames[cc & 15];
}

struct ModRm {
  bool is_reg = false;
  int reg = 0;       // modrm.reg, REX.R applied
  int rm = 0;        // register operand or memory base, REX.B applied
  int32_t disp = 0;  // memory form only
  size_t len = 0;    // bytes consumed, including SIB and displacement
};

inline bool ReadModRm(const uint8_t* p, size_t avail, uint8_t rex,
                      ModRm* out) {
  if (avail < 1) {
    return false;
  }
  uint8_t m = p[0];
  int mod = m >> 6;
  out->reg = ((m >> 3) & 7) | ((rex & 0x04) ? 8 : 0);
  int rm = m & 7;
  size_t n = 1;
  if (mod == 3) {
    out->is_reg = true;
    out->rm = rm | ((rex & 0x01) ? 8 : 0);
    out->disp = 0;
    out->len = n;
    return true;
  }
  out->is_reg = false;
  int base = rm;
  if (rm == 4) {  // SIB byte; the encoder only ever emits 0x24 (base-only)
    if (avail < n + 1) {
      return false;
    }
    uint8_t sib = p[n++];
    if ((sib >> 6) != 0 || ((sib >> 3) & 7) != 4) {
      return false;  // scaled-index forms are never emitted
    }
    base = sib & 7;
  } else if (mod == 0 && rm == 5) {
    return false;  // RIP-relative: never emitted
  }
  out->rm = base | ((rex & 0x01) ? 8 : 0);
  if (mod == 1) {
    if (avail < n + 1) {
      return false;
    }
    out->disp = static_cast<int8_t>(p[n]);
    n += 1;
  } else if (mod == 2) {
    if (avail < n + 4) {
      return false;
    }
    uint32_t d = 0;
    for (int i = 0; i < 4; ++i) {
      d |= static_cast<uint32_t>(p[n + i]) << (8 * i);
    }
    out->disp = static_cast<int32_t>(d);
    n += 4;
  }
  out->len = n;
  return true;
}

inline std::string MemStr(const ModRm& m) {
  char buf[48];
  if (m.disp == 0) {
    std::snprintf(buf, sizeof(buf), "[%s]", Reg64(m.rm));
  } else if (m.disp < 0) {
    std::snprintf(buf, sizeof(buf), "[%s-0x%x]", Reg64(m.rm), -m.disp);
  } else {
    std::snprintf(buf, sizeof(buf), "[%s+0x%x]", Reg64(m.rm), m.disp);
  }
  return buf;
}

inline uint32_t ReadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

inline uint64_t ReadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

struct Decoded {
  size_t len = 0;
  std::string text;
};

// Decodes the instruction at p (which sits at `offset` within its routine,
// used to resolve branch targets). Returns false on anything outside the
// encoder's inventory.
inline bool DecodeOne(const uint8_t* p, size_t avail, size_t offset,
                      Decoded* out) {
  size_t n = 0;
  bool opsize = false;
  if (n < avail && p[n] == 0x66) {
    opsize = true;
    ++n;
  }
  uint8_t rex = 0;
  bool have_rex = false;
  if (n < avail && (p[n] & 0xF0) == 0x40) {
    rex = p[n];
    have_rex = true;
    ++n;
  }
  if (n >= avail) {
    return false;
  }
  bool w = (rex & 0x08) != 0;
  int bits = opsize ? 16 : (w ? 64 : 32);
  uint8_t op = p[n++];
  char buf[96];
  ModRm m;

  switch (op) {
    case 0x0F: {
      if (n >= avail) {
        return false;
      }
      uint8_t sub = p[n++];
      if (sub == 0xB6 || sub == 0xB7) {  // movzx r, r/m8|r/m16
        if (!ReadModRm(p + n, avail - n, rex, &m)) {
          return false;
        }
        n += m.len;
        std::string src =
            m.is_reg ? std::string(sub == 0xB6 ? Reg8(m.rm, have_rex)
                                               : Reg16(m.rm))
                     : std::string(sub == 0xB6 ? "byte " : "word ") +
                           MemStr(m);
        std::snprintf(buf, sizeof(buf), "movzx %s, %s",
                      RegSized(m.reg, w ? 64 : 32), src.c_str());
        out->text = buf;
        break;
      }
      if (sub >= 0x90 && sub <= 0x9F) {  // setcc r/m8
        if (!ReadModRm(p + n, avail - n, rex, &m) || !m.is_reg) {
          return false;
        }
        n += m.len;
        std::snprintf(buf, sizeof(buf), "set%s %s", CcName(sub - 0x90),
                      Reg8(m.rm, have_rex));
        out->text = buf;
        break;
      }
      if (sub >= 0x80 && sub <= 0x8F) {  // jcc rel32
        if (avail < n + 4) {
          return false;
        }
        int32_t rel = static_cast<int32_t>(ReadU32(p + n));
        n += 4;
        std::snprintf(buf, sizeof(buf), "j%s 0x%llx", CcName(sub - 0x80),
                      static_cast<unsigned long long>(offset + n + rel));
        out->text = buf;
        break;
      }
      return false;
    }
    case 0x50: case 0x51: case 0x52: case 0x53:
    case 0x54: case 0x55: case 0x56: case 0x57:
      std::snprintf(buf, sizeof(buf), "push %s",
                    Reg64((op - 0x50) | ((rex & 1) ? 8 : 0)));
      out->text = buf;
      break;
    case 0x58: case 0x59: case 0x5A: case 0x5B:
    case 0x5C: case 0x5D: case 0x5E: case 0x5F:
      std::snprintf(buf, sizeof(buf), "pop %s",
                    Reg64((op - 0x58) | ((rex & 1) ? 8 : 0)));
      out->text = buf;
      break;
    case 0x88:  // mov r/m8, r8
      if (!ReadModRm(p + n, avail - n, rex, &m) || m.is_reg) {
        return false;
      }
      n += m.len;
      std::snprintf(buf, sizeof(buf), "mov byte %s, %s", MemStr(m).c_str(),
                    Reg8(m.reg, have_rex));
      out->text = buf;
      break;
    case 0x01: case 0x09: case 0x21: case 0x29:
    case 0x31: case 0x39: case 0x85: case 0x89: {
      const char* name = op == 0x01   ? "add"
                         : op == 0x09 ? "or"
                         : op == 0x21 ? "and"
                         : op == 0x29 ? "sub"
                         : op == 0x31 ? "xor"
                         : op == 0x39 ? "cmp"
                         : op == 0x85 ? "test"
                                      : "mov";
      if (!ReadModRm(p + n, avail - n, rex, &m)) {
        return false;
      }
      n += m.len;
      std::string dst =
          m.is_reg ? std::string(RegSized(m.rm, bits)) : MemStr(m);
      std::snprintf(buf, sizeof(buf), "%s %s, %s", name, dst.c_str(),
                    RegSized(m.reg, bits));
      out->text = buf;
      break;
    }
    case 0x8B:  // mov r, r/m
      if (!ReadModRm(p + n, avail - n, rex, &m)) {
        return false;
      }
      n += m.len;
      std::snprintf(
          buf, sizeof(buf), "mov %s, %s", RegSized(m.reg, bits),
          (m.is_reg ? std::string(RegSized(m.rm, bits)) : MemStr(m))
              .c_str());
      out->text = buf;
      break;
    case 0x8D:  // lea r64, [mem]
      if (!ReadModRm(p + n, avail - n, rex, &m) || m.is_reg) {
        return false;
      }
      n += m.len;
      std::snprintf(buf, sizeof(buf), "lea %s, %s", Reg64(m.reg),
                    MemStr(m).c_str());
      out->text = buf;
      break;
    case 0xB8: case 0xB9: case 0xBA: case 0xBB:
    case 0xBC: case 0xBD: case 0xBE: case 0xBF: {
      int reg = (op - 0xB8) | ((rex & 1) ? 8 : 0);
      if (w) {
        if (avail < n + 8) {
          return false;
        }
        std::snprintf(buf, sizeof(buf), "movabs %s, 0x%llx", Reg64(reg),
                      static_cast<unsigned long long>(ReadU64(p + n)));
        n += 8;
      } else {
        if (avail < n + 4) {
          return false;
        }
        std::snprintf(buf, sizeof(buf), "mov %s, 0x%x", Reg32(reg),
                      ReadU32(p + n));
        n += 4;
      }
      out->text = buf;
      break;
    }
    case 0xC1: {  // shl/shr r, imm8
      if (!ReadModRm(p + n, avail - n, rex, &m) || !m.is_reg) {
        return false;
      }
      n += m.len;
      const char* name;
      if (m.reg == 4) {
        name = "shl";
      } else if (m.reg == 5) {
        name = "shr";
      } else {
        return false;
      }
      if (avail < n + 1) {
        return false;
      }
      std::snprintf(buf, sizeof(buf), "%s %s, %u", name,
                    RegSized(m.rm, bits), p[n]);
      n += 1;
      out->text = buf;
      break;
    }
    case 0xC3:
      out->text = "ret";
      break;
    case 0xC7: {  // mov r/m, imm32 (reg field /0)
      if (!ReadModRm(p + n, avail - n, rex, &m) || (m.reg & 7) != 0) {
        return false;
      }
      n += m.len;
      if (avail < n + 4) {
        return false;
      }
      int32_t imm = static_cast<int32_t>(ReadU32(p + n));
      n += 4;
      if (m.is_reg) {
        // The encoder uses the C7 form only for sign-extended negatives.
        if (imm < 0) {
          std::snprintf(buf, sizeof(buf), "mov %s, -0x%x",
                        RegSized(m.rm, bits), -imm);
        } else {
          std::snprintf(buf, sizeof(buf), "mov %s, 0x%x",
                        RegSized(m.rm, bits), imm);
        }
      } else {
        std::snprintf(buf, sizeof(buf), "mov dword %s, 0x%x",
                      MemStr(m).c_str(), static_cast<uint32_t>(imm));
      }
      out->text = buf;
      break;
    }
    case 0x81: {  // cmp r, imm32 (reg field /7)
      if (!ReadModRm(p + n, avail - n, rex, &m) || !m.is_reg ||
          (m.reg & 7) != 7) {
        return false;
      }
      n += m.len;
      if (avail < n + 4) {
        return false;
      }
      std::snprintf(buf, sizeof(buf), "cmp %s, 0x%x", RegSized(m.rm, bits),
                    ReadU32(p + n));
      n += 4;
      out->text = buf;
      break;
    }
    case 0xE9: {  // jmp rel32
      if (avail < n + 4) {
        return false;
      }
      int32_t rel = static_cast<int32_t>(ReadU32(p + n));
      n += 4;
      std::snprintf(buf, sizeof(buf), "jmp 0x%llx",
                    static_cast<unsigned long long>(offset + n + rel));
      out->text = buf;
      break;
    }
    case 0xFF: {  // /0 inc dword [mem], /2 call reg
      if (!ReadModRm(p + n, avail - n, rex, &m)) {
        return false;
      }
      n += m.len;
      if ((m.reg & 7) == 0 && !m.is_reg) {
        std::snprintf(buf, sizeof(buf), "inc dword %s", MemStr(m).c_str());
      } else if ((m.reg & 7) == 2 && m.is_reg) {
        std::snprintf(buf, sizeof(buf), "call %s", Reg64(m.rm));
      } else {
        return false;
      }
      out->text = buf;
      break;
    }
    default:
      return false;
  }
  out->len = n;
  return true;
}

// Disassembles a whole routine into one line per instruction:
//   offset: raw bytes  mnemonic
// Returns false (and stops with an <undecodable> line) on any byte
// sequence outside the encoder inventory, or when the last instruction
// runs past the end of the buffer.
inline bool Disassemble(const uint8_t* code, size_t size,
                        std::string* listing) {
  listing->clear();
  size_t off = 0;
  while (off < size) {
    Decoded d;
    char head[32];
    if (!DecodeOne(code + off, size - off, off, &d)) {
      std::snprintf(head, sizeof(head), "%4llx: ",
                    static_cast<unsigned long long>(off));
      listing->append(head);
      char byte[8];
      std::snprintf(byte, sizeof(byte), "%02x ", code[off]);
      listing->append(byte);
      listing->append("<undecodable>\n");
      return false;
    }
    std::snprintf(head, sizeof(head), "%4llx: ",
                  static_cast<unsigned long long>(off));
    listing->append(head);
    std::string hex;
    for (size_t i = 0; i < d.len; ++i) {
      char byte[8];
      std::snprintf(byte, sizeof(byte), "%02x ", code[off + i]);
      hex.append(byte);
    }
    // Pad so mnemonics line up; the longest instruction (REX + movabs
    // imm64) is 10 bytes = 30 hex chars.
    while (hex.size() < 32) {
      hex.push_back(' ');
    }
    listing->append(hex);
    listing->append(d.text);
    listing->push_back('\n');
    off += d.len;
  }
  return true;
}

}  // namespace testdisasm
}  // namespace spin

#endif  // TESTS_X86_DISASM_H_
