// Snapshot/delta stats pipeline: CaptureStats covers live events and every
// exported series, Delta subtracts counters and keeps gauges, and the JSON
// serialization is what tools/spin_top.py consumes.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/core/dispatcher.h"
#include "src/obs/export.h"
#include "src/obs/obs.h"

namespace spin {
namespace {

struct StatsCtx {};

void Handler(StatsCtx*, int64_t) {}

const obs::SeriesSample* FindSeries(const obs::StatsSnapshot& snap,
                                    const std::string& prefix) {
  for (const obs::SeriesSample& s : snap.series) {
    if (s.series.rfind(prefix, 0) == 0) {
      return &s;
    }
  }
  return nullptr;
}

TEST(StatsTest, CaptureCoversEventsAndSeries) {
  Dispatcher dispatcher;
  Module module("StatsTest");
  Event<void(int64_t)> event("Stats.Op", &module, nullptr, &dispatcher);
  StatsCtx ctx;
  dispatcher.InstallHandler(event, &Handler, &ctx, {.module = &module});

  dispatcher.EnableTracing(true);  // timed raises feed the histograms
  for (int i = 0; i < 10; ++i) {
    event.Raise(i);
  }
  dispatcher.EnableTracing(false);

  obs::StatsSnapshot snap = obs::CaptureStats();
  EXPECT_NE(snap.ts_ns, 0u);
  EXPECT_EQ(snap.window_ns, 0u) << "a raw capture has no window";

  const obs::EventStat* stat = nullptr;
  for (const obs::EventStat& e : snap.events) {
    if (e.event == "Stats.Op") {
      stat = &e;
    }
  }
  ASSERT_NE(stat, nullptr);
  EXPECT_GE(stat->hist.count, 10u);

  const obs::SeriesSample* installs =
      FindSeries(snap, "spin_dispatcher_installs_total");
  ASSERT_NE(installs, nullptr);
  EXPECT_TRUE(installs->counter);
  EXPECT_GE(installs->value, 1u);

  const obs::SeriesSample* depth = FindSeries(snap, "spin_pool_queue_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_FALSE(depth->counter) << "gauges must not be delta-subtracted";

  // Event summaries stay out of the flat series list: the structured
  // histograms above carry them with full resolution.
  EXPECT_EQ(FindSeries(snap, "spin_event_raise_ns"), nullptr);
}

TEST(StatsTest, DeltaSubtractsCountersAndKeepsGauges) {
  obs::StatsSnapshot a;
  a.ts_ns = 1'000;
  a.series = {{"spin_x_total{l=\"1\"}", 10, true},
              {"spin_gauge{l=\"1\"}", 5, false}};
  obs::EventStat ea;
  ea.event = "E";
  ea.kind = obs::DispatchKind::kStub;
  ea.hist.count = 10;
  ea.hist.sum = 1'000;
  ea.hist.max = 400;
  a.events.push_back(ea);

  obs::StatsSnapshot b = a;
  b.ts_ns = 4'000;
  b.series[0].value = 25;
  b.series[1].value = 3;
  b.events[0].hist.count = 16;
  b.events[0].hist.sum = 1'900;
  b.events[0].hist.max = 300;

  obs::StatsSnapshot d = obs::Delta(a, b);
  EXPECT_EQ(d.ts_ns, 4'000u);
  EXPECT_EQ(d.window_ns, 3'000u);
  ASSERT_EQ(d.series.size(), 2u);
  EXPECT_EQ(d.series[0].value, 15u) << "counters subtract";
  EXPECT_EQ(d.series[1].value, 3u) << "gauges keep the newer value";
  ASSERT_EQ(d.events.size(), 1u);
  EXPECT_EQ(d.events[0].hist.count, 6u);
  EXPECT_EQ(d.events[0].hist.sum, 900u);
  EXPECT_EQ(d.events[0].hist.max, 300u) << "max is a window observation";

  // A counter that reset (b < a) clamps to zero instead of wrapping.
  b.series[0].value = 4;
  d = obs::Delta(a, b);
  EXPECT_EQ(d.series[0].value, 0u);
}

// Restart semantics: after the process (or a Histogram::Reset) zeroes the
// source histograms, every shrunken counter clamps to zero instead of
// wrapping to a gigantic unsigned delta. The clamped (all-zero) row is
// suppressed for that one window; the window after it resyncs against the
// post-restart baseline and reports normally.
TEST(StatsTest, DeltaClampsARestartedEventHistogram) {
  obs::StatsSnapshot a;
  a.ts_ns = 1'000;
  obs::EventStat ea;
  ea.event = "Restarted";
  ea.kind = obs::DispatchKind::kStub;
  ea.hist.count = 100;
  ea.hist.sum = 50'000;
  ea.hist.max = 900;
  ea.hist.buckets[10] = 100;
  a.events.push_back(ea);

  obs::StatsSnapshot b = a;
  b.ts_ns = 2'000;
  b.events[0].hist.count = 3;  // restarted: fewer samples than before
  b.events[0].hist.sum = 90;
  b.events[0].hist.max = 60;
  b.events[0].hist.buckets[10] = 0;
  b.events[0].hist.buckets[6] = 3;

  obs::StatsSnapshot d = obs::Delta(a, b);
  EXPECT_TRUE(d.events.empty())
      << "a shrunken histogram clamps to zero (one suppressed window), "
         "never to a wrapped count";

  // The next window diffs post-restart against post-restart and is whole.
  obs::StatsSnapshot c = b;
  c.ts_ns = 3'000;
  c.events[0].hist.count = 8;
  c.events[0].hist.sum = 250;
  c.events[0].hist.buckets[6] = 8;
  d = obs::Delta(b, c);
  ASSERT_EQ(d.events.size(), 1u);
  EXPECT_EQ(d.events[0].hist.count, 5u);
  EXPECT_EQ(d.events[0].hist.sum, 160u);
  EXPECT_EQ(d.events[0].hist.buckets[6], 5u);
  EXPECT_EQ(d.events[0].hist.max, 60u) << "max is the window's observation";
}

// A gauge can vanish between snapshots: spin_phase_ns_max series exist only
// while their event has recorded samples, so a ResetPhaseStats (or a
// restart) removes them. The delta follows the newer snapshot — departed
// series drop out silently, newborn counters report their full value.
TEST(StatsTest, DeltaHandlesDisappearingAndNewbornSeries) {
  obs::StatsSnapshot a;
  a.ts_ns = 1'000;
  a.series = {
      {"spin_phase_ns_max{event=\"E\",phase=\"wire\"}", 800, false},
      {"spin_x_total{l=\"1\"}", 10, true},
  };
  obs::StatsSnapshot b;
  b.ts_ns = 2'000;
  b.series = {
      {"spin_x_total{l=\"1\"}", 12, true},
      {"spin_y_total{l=\"2\"}", 7, true},  // first appearance
  };

  obs::StatsSnapshot d = obs::Delta(a, b);
  ASSERT_EQ(d.series.size(), 2u);
  EXPECT_EQ(FindSeries(d, "spin_phase_ns_max"), nullptr)
      << "a series absent from the newer snapshot is gone, not zero";
  const obs::SeriesSample* x = FindSeries(d, "spin_x_total");
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(x->value, 2u);
  const obs::SeriesSample* y = FindSeries(d, "spin_y_total");
  ASSERT_NE(y, nullptr);
  EXPECT_EQ(y->value, 7u)
      << "a newborn counter's first window is its whole value";
}

TEST(StatsTest, DeltaDropsIdleEventsKeepsActiveOnes) {
  obs::StatsSnapshot a;
  a.ts_ns = 0;
  obs::EventStat idle;
  idle.event = "Idle";
  idle.hist.count = 7;
  a.events.push_back(idle);
  obs::StatsSnapshot b = a;
  b.ts_ns = 100;

  obs::StatsSnapshot d = obs::Delta(a, b);
  EXPECT_TRUE(d.events.empty())
      << "an event with no raises in the window is not a row";
}

TEST(StatsTest, JsonShapeAndEscaping) {
  obs::StatsSnapshot snap;
  snap.ts_ns = 42;
  snap.window_ns = 7;
  obs::EventStat stat;
  stat.event = "Quote\"d";
  stat.kind = obs::DispatchKind::kDirect;
  stat.hist.count = 3;
  stat.hist.sum = 33;
  snap.events.push_back(stat);
  snap.series = {{"spin_y_total{l=\"v\"}", 9, true}};

  std::ostringstream os;
  obs::WriteJsonStats(os, snap);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"ts_ns\":42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"window_ns\":7"), std::string::npos);
  EXPECT_NE(json.find("\"event\":\"Quote\\\"d\""), std::string::npos)
      << "label quotes must be JSON-escaped";
  EXPECT_NE(json.find("\"count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"p50_ns\":"), std::string::npos);
  EXPECT_NE(json.find("spin_y_total{l=\\\"v\\\"}"), std::string::npos);
  EXPECT_NE(json.find("\"value\":9"), std::string::npos);
}

}  // namespace
}  // namespace spin
