// Differential and semantic tests for the runtime code generator:
//  - CompileMicro(p) must agree with the interpreter on randomized programs,
//  - CompileStub must implement guard gating, closure passing, filter by-ref
//    argument slots, result folding, and fired counting.
#include <cstring>
#include <random>

#include <gtest/gtest.h>

#include "src/codegen/stub_compiler.h"
#include "src/micro/interp.h"
#include "src/micro/program.h"

namespace spin {
namespace codegen {
namespace {

using micro::Insn;
using micro::Op;
using micro::Program;
using micro::ProgramBuilder;

class JitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!CodegenAvailable()) {
      GTEST_SKIP() << "codegen unavailable on this host";
    }
  }
};

uint64_t CallMicro(const CompiledMicro& compiled, const uint64_t* args,
                   int n) {
  switch (n) {
    case 0:
      return reinterpret_cast<uint64_t (*)()>(compiled.entry())();
    case 1:
      return reinterpret_cast<uint64_t (*)(uint64_t)>(compiled.entry())(
          args[0]);
    case 2:
      return reinterpret_cast<uint64_t (*)(uint64_t, uint64_t)>(
          compiled.entry())(args[0], args[1]);
    case 3:
      return reinterpret_cast<uint64_t (*)(uint64_t, uint64_t, uint64_t)>(
          compiled.entry())(args[0], args[1], args[2]);
    default:
      return reinterpret_cast<uint64_t (*)(uint64_t, uint64_t, uint64_t,
                                           uint64_t)>(compiled.entry())(
          args[0], args[1], args[2], args[3]);
  }
}

TEST_F(JitTest, CompileMicroGuardGlobalEq) {
  uint64_t global = 5;
  Program guard = micro::GuardGlobalEq(&global, 5);
  auto compiled = CompileMicro(guard);
  ASSERT_NE(compiled, nullptr);
  EXPECT_EQ(CallMicro(*compiled, nullptr, 0), 1u);
  global = 6;
  EXPECT_EQ(CallMicro(*compiled, nullptr, 0), 0u);
}

TEST_F(JitTest, CompileMicroWithArgsAndJumps) {
  // if (a == 0) return 100; else return a + b;
  ProgramBuilder b(2, true);
  b.LoadArg(0, 0);
  b.LoadArg(1, 1);
  size_t jz = b.Jz(0);
  b.Add(2, 0, 1);
  b.Ret(2);
  b.PatchJumpTarget(jz);
  b.RetImm(100);
  Program p = std::move(b).Build();
  ASSERT_EQ(p.Validate(), micro::ValidateStatus::kOk);
  auto compiled = CompileMicro(p);
  ASSERT_NE(compiled, nullptr);
  uint64_t args1[2] = {0, 9};
  uint64_t args2[2] = {4, 9};
  EXPECT_EQ(CallMicro(*compiled, args1, 2), 100u);
  EXPECT_EQ(CallMicro(*compiled, args2, 2), 13u);
}

TEST_F(JitTest, CompileMicroStores) {
  uint64_t cell = 3;
  Program p = micro::IncrementGlobal(&cell, 0);
  auto compiled = CompileMicro(p);
  ASSERT_NE(compiled, nullptr);
  CallMicro(*compiled, nullptr, 0);
  CallMicro(*compiled, nullptr, 0);
  EXPECT_EQ(cell, 5u);
}

// Property test: random straight-line-with-forward-jump programs agree
// between the interpreter and the JIT, optimized and unoptimized.
class JitDifferentialTest : public JitTest,
                            public ::testing::WithParamInterface<int> {};

Program RandomProgram(std::mt19937_64& rng, int num_args,
                      uint64_t* scratch_cell) {
  std::vector<Insn> code;
  int len = 3 + static_cast<int>(rng() % 12);
  for (int i = 0; i < len; ++i) {
    Insn insn;
    switch (rng() % 12) {
      case 0:
        insn = {Op::kLoadArg, static_cast<uint8_t>(rng() % 8), 0, 0,
                rng() % num_args};
        break;
      case 1:
        insn = {Op::kLoadImm, static_cast<uint8_t>(rng() % 8), 0, 0, rng()};
        break;
      case 2:
        insn = {Op::kAdd, static_cast<uint8_t>(rng() % 8),
                static_cast<uint8_t>(rng() % 8),
                static_cast<uint8_t>(rng() % 8), 0};
        break;
      case 3:
        insn = {Op::kSub, static_cast<uint8_t>(rng() % 8),
                static_cast<uint8_t>(rng() % 8),
                static_cast<uint8_t>(rng() % 8), 0};
        break;
      case 4:
        insn = {Op::kXor, static_cast<uint8_t>(rng() % 8),
                static_cast<uint8_t>(rng() % 8),
                static_cast<uint8_t>(rng() % 8), 0};
        break;
      case 5:
        insn = {Op::kAnd, static_cast<uint8_t>(rng() % 8),
                static_cast<uint8_t>(rng() % 8),
                static_cast<uint8_t>(rng() % 8), 0};
        break;
      case 6:
        insn = {Op::kCmpEq, static_cast<uint8_t>(rng() % 8),
                static_cast<uint8_t>(rng() % 8),
                static_cast<uint8_t>(rng() % 8), 0};
        break;
      case 7:
        insn = {Op::kCmpLtS, static_cast<uint8_t>(rng() % 8),
                static_cast<uint8_t>(rng() % 8),
                static_cast<uint8_t>(rng() % 8), 0};
        break;
      case 8:
        insn = {Op::kShlImm, static_cast<uint8_t>(rng() % 8),
                static_cast<uint8_t>(rng() % 8), 0, rng() % 64};
        break;
      case 9:
        insn = {Op::kShrImm, static_cast<uint8_t>(rng() % 8),
                static_cast<uint8_t>(rng() % 8), 0, rng() % 64};
        break;
      case 10:
        insn = {Op::kLoadGlobal, static_cast<uint8_t>(rng() % 8), 0,
                static_cast<uint8_t>(rng() % 4),
                reinterpret_cast<uintptr_t>(scratch_cell)};
        break;
      default:
        insn = {Op::kMov, static_cast<uint8_t>(rng() % 8),
                static_cast<uint8_t>(rng() % 8), 0, 0};
        break;
    }
    code.push_back(insn);
  }
  // Insert a forward jump over one instruction occasionally.
  if (rng() % 2 == 0 && code.size() >= 2) {
    size_t at = rng() % (code.size() - 1);
    code.insert(code.begin() + at,
                Insn{Op::kJz, 0, static_cast<uint8_t>(rng() % 8), 0,
                     at + 2 + rng() % (code.size() - at)});
  }
  code.push_back(Insn{Op::kRet, 0, static_cast<uint8_t>(rng() % 8), 0, 0});
  return Program(std::move(code), num_args, /*functional=*/false);
}

TEST_P(JitDifferentialTest, InterpreterMatchesJit) {
  std::mt19937_64 rng(GetParam());
  uint64_t scratch = rng();
  for (int trial = 0; trial < 200; ++trial) {
    Program p = RandomProgram(rng, 3, &scratch);
    if (p.Validate() != micro::ValidateStatus::kOk) {
      continue;  // rare: random jump landed out of range
    }
    for (bool optimize : {false, true}) {
      auto compiled = CompileMicro(p, optimize);
      ASSERT_NE(compiled, nullptr);
      for (int run = 0; run < 4; ++run) {
        uint64_t args[3] = {rng(), rng() % 16, rng()};
        uint64_t want = micro::Run(p, args, 3);
        uint64_t got = CallMicro(*compiled, args, 3);
        ASSERT_EQ(got, want)
            << "optimize=" << optimize << " trial=" << trial << "\n"
            << p.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JitDifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- Dispatch stub semantics ------------------------------------------------

struct CallLog {
  int guard_calls = 0;
  int handler_calls = 0;
  uint64_t last_a = 0;
  uint64_t last_b = 0;
};

CallLog g_log;

bool GuardTrue(uint64_t, uint64_t) {
  ++g_log.guard_calls;
  return true;
}
bool GuardFalse(uint64_t, uint64_t) {
  ++g_log.guard_calls;
  return false;
}
uint64_t Handler2(uint64_t a, uint64_t b) {
  ++g_log.handler_calls;
  g_log.last_a = a;
  g_log.last_b = b;
  return a + b;
}
uint64_t HandlerWithClosure(void* closure, uint64_t a, uint64_t b) {
  ++g_log.handler_calls;
  return a + b + *static_cast<uint64_t*>(closure);
}
void FilterDouble(uint64_t* a, uint64_t b) {
  ++g_log.handler_calls;
  (void)b;
  *a *= 2;
}
bool BoolHandler(uint64_t a, uint64_t) { return a != 0; }

TEST_F(JitTest, StubCallsHandlerWithArgs) {
  g_log = {};
  StubSpec spec;
  spec.num_args = 2;
  spec.policy = ResultPolicy::kLast;
  BindingSpec binding;
  binding.handler.fn = reinterpret_cast<void*>(&Handler2);
  spec.bindings.push_back(binding);
  auto stub = CompileStub(spec);
  ASSERT_NE(stub, nullptr);

  RaiseFrame frame;
  frame.args[0] = 30;
  frame.args[1] = 12;
  stub->entry()(&frame);
  EXPECT_EQ(frame.fired, 1u);
  EXPECT_EQ(frame.result, 42u);
  EXPECT_EQ(g_log.handler_calls, 1);
  EXPECT_EQ(g_log.last_a, 30u);
  EXPECT_EQ(g_log.last_b, 12u);
}

TEST_F(JitTest, StubGuardGatesHandler) {
  g_log = {};
  StubSpec spec;
  spec.num_args = 2;
  spec.policy = ResultPolicy::kLast;
  BindingSpec pass;
  pass.guards.push_back({.fn = reinterpret_cast<void*>(&GuardTrue)});
  pass.handler.fn = reinterpret_cast<void*>(&Handler2);
  BindingSpec blocked;
  blocked.guards.push_back({.fn = reinterpret_cast<void*>(&GuardFalse)});
  blocked.handler.fn = reinterpret_cast<void*>(&Handler2);
  spec.bindings = {pass, blocked};
  auto stub = CompileStub(spec);
  ASSERT_NE(stub, nullptr);

  RaiseFrame frame;
  frame.args[0] = 1;
  frame.args[1] = 2;
  stub->entry()(&frame);
  EXPECT_EQ(frame.fired, 1u);
  EXPECT_EQ(g_log.guard_calls, 2);
  EXPECT_EQ(g_log.handler_calls, 1);
}

TEST_F(JitTest, StubClosurePassing) {
  g_log = {};
  uint64_t closure_value = 100;
  StubSpec spec;
  spec.num_args = 2;
  spec.policy = ResultPolicy::kLast;
  BindingSpec binding;
  binding.handler.fn = reinterpret_cast<void*>(&HandlerWithClosure);
  binding.handler.closure = &closure_value;
  binding.handler.closure_form = true;
  spec.bindings.push_back(binding);
  auto stub = CompileStub(spec);
  ASSERT_NE(stub, nullptr);

  RaiseFrame frame;
  frame.args[0] = 1;
  frame.args[1] = 2;
  stub->entry()(&frame);
  EXPECT_EQ(frame.result, 103u);
}

TEST_F(JitTest, StubFilterByRefMutatesSlot) {
  g_log = {};
  StubSpec spec;
  spec.num_args = 2;
  spec.policy = ResultPolicy::kNone;
  BindingSpec filter;
  filter.handler.fn = reinterpret_cast<void*>(&FilterDouble);
  filter.byref_params = {0};
  BindingSpec reader;
  reader.handler.fn = reinterpret_cast<void*>(&Handler2);
  spec.bindings = {filter, reader};
  auto stub = CompileStub(spec);
  ASSERT_NE(stub, nullptr);

  RaiseFrame frame;
  frame.args[0] = 21;
  frame.args[1] = 0;
  stub->entry()(&frame);
  EXPECT_EQ(frame.args[0], 42u) << "filter writes through the slot pointer";
  EXPECT_EQ(g_log.last_a, 42u) << "downstream handler sees the new value";
  EXPECT_EQ(frame.fired, 2u);
}

TEST_F(JitTest, ResultPolicies) {
  struct Case {
    ResultPolicy policy;
    uint64_t init;
    uint64_t want;
  };
  // Handlers return a+b = 5 and a+b+closure(100) = 105.
  uint64_t closure_value = 100;
  for (Case c : {Case{ResultPolicy::kLast, 0, 105},
                 Case{ResultPolicy::kOr, 0, 5 | 105},
                 Case{ResultPolicy::kAnd, ~0ull, 5 & 105},
                 Case{ResultPolicy::kSum, 0, 110}}) {
    StubSpec spec;
    spec.num_args = 2;
    spec.policy = c.policy;
    BindingSpec first;
    first.handler.fn = reinterpret_cast<void*>(&Handler2);
    BindingSpec second;
    second.handler.fn = reinterpret_cast<void*>(&HandlerWithClosure);
    second.handler.closure = &closure_value;
    second.handler.closure_form = true;
    spec.bindings = {first, second};
    auto stub = CompileStub(spec);
    ASSERT_NE(stub, nullptr);
    RaiseFrame frame;
    frame.args[0] = 2;
    frame.args[1] = 3;
    frame.result = c.init;
    stub->entry()(&frame);
    EXPECT_EQ(frame.result, c.want)
        << "policy " << static_cast<int>(c.policy);
    EXPECT_EQ(frame.fired, 2u);
  }
}

TEST_F(JitTest, BoolResultNormalized) {
  // Only %al is defined for a bool return; the stub must zero-extend before
  // folding or garbage upper bits leak into the result slot.
  StubSpec spec;
  spec.num_args = 2;
  spec.policy = ResultPolicy::kOr;
  spec.result_is_bool = true;
  BindingSpec binding;
  binding.handler.fn = reinterpret_cast<void*>(&BoolHandler);
  spec.bindings = {binding};
  auto stub = CompileStub(spec);
  ASSERT_NE(stub, nullptr);
  RaiseFrame frame;
  frame.args[0] = 0;  // handler returns false
  frame.args[1] = 0xdeadbeefcafebabe;
  stub->entry()(&frame);
  EXPECT_EQ(frame.result, 0u);
  frame = {};
  frame.args[0] = 7;
  stub->entry()(&frame);
  EXPECT_EQ(frame.result, 1u);
}

TEST_F(JitTest, InlinedMicroGuardAndHandler) {
  uint64_t gate = 1;
  uint64_t counter = 0;
  Program guard = micro::GuardGlobalEq(&gate, 1);
  Program handler = micro::IncrementGlobal(&counter, 2);
  StubSpec spec;
  spec.num_args = 2;
  spec.policy = ResultPolicy::kNone;
  BindingSpec binding;
  binding.guards.push_back({.prog = &guard});
  binding.handler.prog = &handler;
  spec.bindings = {binding};
  auto stub = CompileStub(spec);
  ASSERT_NE(stub, nullptr);
  // Inlined: no call instructions for the guard/handler pair.
  EXPECT_EQ(stub->lir_text().find("call"), std::string::npos);

  RaiseFrame frame;
  stub->entry()(&frame);
  EXPECT_EQ(counter, 1u);
  EXPECT_EQ(frame.fired, 1u);
  gate = 0;
  frame = {};
  stub->entry()(&frame);
  EXPECT_EQ(counter, 1u);
  EXPECT_EQ(frame.fired, 0u);
}

TEST_F(JitTest, InliningDisabledFallsBackToCalls) {
  uint64_t gate = 1;
  Program guard = micro::GuardGlobalEq(&gate, 1);
  auto compiled_guard = CompileMicro(guard);
  ASSERT_NE(compiled_guard, nullptr);

  StubSpec spec;
  spec.num_args = 0;
  spec.inline_micro = false;
  BindingSpec binding;
  binding.guards.push_back(
      {.fn = compiled_guard->entry(), .prog = &guard});
  binding.handler.fn = reinterpret_cast<void*>(
      +[]() -> uint64_t { return 0; });
  spec.bindings = {binding};
  auto stub = CompileStub(spec);
  ASSERT_NE(stub, nullptr);
  EXPECT_NE(stub->lir_text().find("call"), std::string::npos);
  RaiseFrame frame;
  stub->entry()(&frame);
  EXPECT_EQ(frame.fired, 1u);
}

TEST_F(JitTest, EligibilityLimits) {
  std::string why;
  StubSpec too_many;
  too_many.num_args = 7;
  EXPECT_FALSE(StubEligible(too_many, &why));

  StubSpec closure_limit;
  closure_limit.num_args = 6;
  BindingSpec binding;
  binding.handler.fn = reinterpret_cast<void*>(&Handler2);
  binding.handler.closure_form = true;
  closure_limit.bindings = {binding};
  EXPECT_FALSE(StubEligible(closure_limit, &why));
  EXPECT_NE(why.find("closure"), std::string::npos);

  StubSpec no_entry;
  no_entry.num_args = 1;
  no_entry.inline_micro = false;
  BindingSpec b2;  // neither fn nor usable prog
  no_entry.bindings = {b2};
  EXPECT_FALSE(StubEligible(no_entry, &why));
}

TEST_F(JitTest, FiftyBindingsUnrolled) {
  // Table 1 goes to 50 handlers; make sure a large unrolled stub works.
  g_log = {};
  StubSpec spec;
  spec.num_args = 2;
  spec.policy = ResultPolicy::kSum;
  BindingSpec binding;
  binding.handler.fn = reinterpret_cast<void*>(&Handler2);
  for (int i = 0; i < 50; ++i) {
    spec.bindings.push_back(binding);
  }
  auto stub = CompileStub(spec);
  ASSERT_NE(stub, nullptr);
  RaiseFrame frame;
  frame.args[0] = 1;
  frame.args[1] = 1;
  stub->entry()(&frame);
  EXPECT_EQ(frame.fired, 50u);
  EXPECT_EQ(frame.result, 100u);
  EXPECT_EQ(g_log.handler_calls, 50);
}

TEST_F(JitTest, PeepholeShrinksStub) {
  // Several inlined guards discriminating on the same packet-header field
  // (the §3.2 shape): redundant reloads of the argument and of the header
  // field must be eliminated, and semantics preserved.
  struct Header {
    uint64_t port;
  } header{2};
  Program g0 = micro::GuardArgFieldEq(2, 0, 0, 8, ~0ull, 0);
  Program g1 = micro::GuardArgFieldEq(2, 0, 0, 8, ~0ull, 1);
  Program g2 = micro::GuardArgFieldEq(2, 0, 0, 8, ~0ull, 2);
  g_log = {};
  StubSpec spec;
  spec.num_args = 2;
  BindingSpec binding;
  binding.guards = {{.prog = &g0}, {.prog = &g1}, {.prog = &g2}};
  binding.handler.fn = reinterpret_cast<void*>(&Handler2);
  spec.bindings = {binding};
  spec.optimize = false;
  auto unoptimized = CompileStub(spec);
  spec.optimize = true;
  auto optimized = CompileStub(spec);
  ASSERT_NE(unoptimized, nullptr);
  ASSERT_NE(optimized, nullptr);
  EXPECT_LT(optimized->code_size(), unoptimized->code_size());
  EXPECT_GT(optimized->peephole_rewrites(), 0u);

  // Both stubs behave identically: all three guards must pass, so only
  // port == 0,1,2 simultaneously would fire — i.e., never.
  for (const auto* stub : {unoptimized.get(), optimized.get()}) {
    RaiseFrame frame;
    frame.args[0] = reinterpret_cast<uintptr_t>(&header);
    stub->entry()(&frame);
    EXPECT_EQ(frame.fired, 0u);
  }
}

}  // namespace
}  // namespace codegen
}  // namespace spin
