// Emulator extension tests: the Mach emulator of Figures 2/3, the OSF/1
// emulator slice, the OsfNet port events, and the async syscall tracer.
#include <set>

#include <gtest/gtest.h>

#include "src/emul/mach.h"
#include "src/emul/osf.h"

namespace spin {
namespace emul {
namespace {

class EmulTest : public ::testing::Test {
 protected:
  Dispatcher dispatcher_;
  Kernel kernel_{&dispatcher_};
  fs::Vfs vfs_{&dispatcher_};
};

TEST_F(EmulTest, MachGuardAdmitsOnlyMachTasks) {
  MachEmulator mach(kernel_);
  AddressSpace& mach_space = kernel_.CreateAddressSpace();
  AddressSpace& other_space = kernel_.CreateAddressSpace();
  mach.AdoptTask(mach_space);

  Strand& mach_strand = kernel_.CreateStrand(
      "mach", [](Strand&) { return false; }, &mach_space);
  Strand& other_strand = kernel_.CreateStrand(
      "other", [](Strand&) { return false; }, &other_space);

  mach_strand.saved_state().v0 = kMachTaskSelf;
  kernel_.Syscall(mach_strand);
  EXPECT_EQ(mach_strand.saved_state().v0,
            static_cast<int64_t>(mach_space.id()));
  EXPECT_EQ(mach.handled(), 1u);

  other_strand.saved_state().v0 = kMachTaskSelf;
  kernel_.Syscall(other_strand);
  EXPECT_EQ(mach.handled(), 1u) << "guard must filter non-Mach tasks";
  EXPECT_EQ(other_strand.saved_state().error, 78)
      << "unhandled syscalls land in the default handler";
}

TEST_F(EmulTest, MachVmAllocateMapsMemory) {
  MachEmulator mach(kernel_);
  AddressSpace& space = kernel_.CreateAddressSpace();
  mach.AdoptTask(space);
  Strand& strand = kernel_.CreateStrand(
      "mach", [](Strand&) { return false; }, &space);

  strand.saved_state().v0 = kMachVmAllocate;
  strand.saved_state().a[0] = 3 * kPageSize;
  kernel_.Syscall(strand);
  int64_t base = strand.saved_state().v0;
  ASSERT_GT(base, 0);
  EXPECT_TRUE(space.IsMapped(base, kAccessWrite));
  EXPECT_TRUE(space.IsMapped(base + 2 * kPageSize, kAccessWrite));
  EXPECT_GE(kernel_.vm.fault_count(), 3u);

  strand.saved_state().v0 = kMachVmDeallocate;
  strand.saved_state().a[0] = base;
  strand.saved_state().a[1] = 3 * kPageSize;
  kernel_.Syscall(strand);
  EXPECT_FALSE(space.IsMapped(base, kAccessRead));
}

TEST_F(EmulTest, TwoEmulatorsCoexistOnOneEvent) {
  // The paper's configuration: multiple OS emulators installed on the same
  // MachineTrap.Syscall event, discriminated purely by guards.
  MachEmulator mach(kernel_);
  OsfEmulator osf(kernel_, vfs_);
  AddressSpace& mach_space = kernel_.CreateAddressSpace();
  AddressSpace& osf_space = kernel_.CreateAddressSpace();
  mach.AdoptTask(mach_space);
  osf.AdoptTask(osf_space);

  Strand& osf_strand = kernel_.CreateStrand(
      "osf", [](Strand&) { return false; }, &osf_space);
  osf_strand.saved_state().v0 = kOsfOpen;
  osf_strand.saved_state().a[0] =
      reinterpret_cast<int64_t>("/tmp/file");
  osf_strand.saved_state().a[1] = fs::kOpenCreate;
  kernel_.Syscall(osf_strand);
  EXPECT_GE(osf_strand.saved_state().v0, 0);
  EXPECT_EQ(osf.handled(), 1u);
  EXPECT_EQ(mach.handled(), 0u);
  EXPECT_TRUE(vfs_.Exists("/tmp/file"));
}

TEST_F(EmulTest, OsfReadWriteThroughVfs) {
  OsfEmulator osf(kernel_, vfs_);
  AddressSpace& space = kernel_.CreateAddressSpace();
  osf.AdoptTask(space);
  Strand& strand = kernel_.CreateStrand(
      "osf", [](Strand&) { return false; }, &space);

  auto syscall = [&](int64_t n, int64_t a0, int64_t a1, int64_t a2) {
    strand.saved_state() = SavedState{};
    strand.saved_state().v0 = n;
    strand.saved_state().a[0] = a0;
    strand.saved_state().a[1] = a1;
    strand.saved_state().a[2] = a2;
    kernel_.Syscall(strand);
    return strand.saved_state().v0;
  };

  int64_t fd = syscall(kOsfOpen, reinterpret_cast<int64_t>("/data"),
                       fs::kOpenCreate, 0);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(syscall(kOsfWrite, fd, reinterpret_cast<int64_t>("unix"), 4), 4);
  EXPECT_EQ(syscall(kOsfClose, fd, 0, 0), 0);

  fd = syscall(kOsfOpen, reinterpret_cast<int64_t>("/data"), 0, 0);
  char buf[8] = {};
  EXPECT_EQ(syscall(kOsfRead, fd, reinterpret_cast<int64_t>(buf), 8), 4);
  EXPECT_STREQ(buf, "unix");
}

TEST_F(EmulTest, SelectRaisesEventNotify) {
  OsfEmulator osf(kernel_, vfs_);
  AddressSpace& space = kernel_.CreateAddressSpace();
  osf.AdoptTask(space);
  int notifies = 0;
  dispatcher_.InstallLambda(osf.EventNotify, [&](Strand*) { ++notifies; },
                            {.module = &osf.module()});
  Strand& strand = kernel_.CreateStrand(
      "osf", [](Strand&) { return false; }, &space);
  strand.saved_state().v0 = kOsfSelect;
  kernel_.Syscall(strand);
  strand.saved_state().v0 = kOsfSelect;  // the handler overwrites v0
  kernel_.Syscall(strand);
  EXPECT_EQ(notifies, 2);
  EXPECT_EQ(osf.selects(), 2u);
}

TEST_F(EmulTest, OsfNetPortEvents) {
  OsfNet osfnet(&dispatcher_);
  osfnet.RegisterPort(80);
  osfnet.RegisterPort(6000);
  EXPECT_EQ(osfnet.ports().size(), 2u);
  osfnet.UnregisterPort(80);
  EXPECT_EQ(osfnet.ports().size(), 1u);
  EXPECT_EQ(osfnet.AddTcpPortHandler.handler_count(), 1u);
}

TEST_F(EmulTest, AsyncSyscallTracerRecordsOnlyItsApplication) {
  OsfEmulator osf(kernel_, vfs_);
  AddressSpace& traced = kernel_.CreateAddressSpace();
  AddressSpace& other = kernel_.CreateAddressSpace();
  osf.AdoptTask(traced);
  osf.AdoptTask(other);
  SyscallTracer tracer(kernel_, traced);

  Strand& traced_strand = kernel_.CreateStrand(
      "traced", [](Strand&) { return false; }, &traced);
  Strand& other_strand = kernel_.CreateStrand(
      "other", [](Strand&) { return false; }, &other);

  traced_strand.saved_state().v0 = kOsfSelect;
  kernel_.Syscall(traced_strand);
  other_strand.saved_state().v0 = kOsfSelect;
  kernel_.Syscall(other_strand);
  traced_strand.saved_state().v0 = kOsfClose;
  kernel_.Syscall(traced_strand);

  dispatcher_.pool().Drain();
  std::vector<SyscallTracer::Record> records = tracer.Take();
  ASSERT_EQ(records.size(), 2u);
  // Detached recording: arrival order is unspecified, content is not.
  std::multiset<int64_t> syscalls;
  for (const auto& record : records) {
    EXPECT_EQ(record.strand_id, traced_strand.id());
    syscalls.insert(record.syscall);
  }
  EXPECT_EQ(syscalls, (std::multiset<int64_t>{kOsfClose, kOsfSelect}));
}

}  // namespace
}  // namespace emul
}  // namespace spin
