// Seeded fuzz tests for the remote-dispatch wire decoders.
//
// Two properties, checked over tens of thousands of deterministic frames:
//
//  1. Canonical round-trip: every random VALID frame decodes, and
//     re-encoding the decoded message reproduces the input bytes exactly.
//     (The encoders emit one canonical form and the decoders accept only
//     it — no slack a hostile peer could hide payload in.)
//
//  2. Mutation safety: byte-flipped, truncated, and extended frames never
//     crash or over-read a decoder (run under ASan/UBSan in CI, where an
//     over-read is a finding, not luck). A mutated frame either fails to
//     decode — the typed error surface of this layer — or decodes to a
//     message whose re-encoding reproduces the mutated bytes exactly,
//     i.e. the mutation landed on a don't-break position and produced a
//     different valid frame.
//
// Everything is seeded (splitmix64): a failure reproduces from the
// iteration index printed in the assertion message.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/micro/program.h"
#include "src/remote/wire_format.h"
#include "src/types/signature.h"

namespace spin {
namespace remote {
namespace {

// --- Deterministic generator -------------------------------------------------

struct Rng {
  uint64_t state;

  uint64_t Next() {
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  uint64_t Below(uint64_t n) { return n == 0 ? 0 : Next() % n; }
};

std::string RandomName(Rng& rng) {
  // Arbitrary bytes on purpose: the wire format length-prefixes names, so
  // nothing about their content may confuse the decoders.
  size_t len = rng.Below(24);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng.Next() & 0xff));
  }
  return s;
}

std::vector<WireParam> RandomParams(Rng& rng) {
  std::vector<WireParam> params;
  size_t n = rng.Below(kMaxWireArgs + 1);
  for (size_t i = 0; i < n; ++i) {
    params.push_back(WireParam{static_cast<uint8_t>(rng.Below(0x80)),
                               rng.Below(2) == 0});
  }
  return params;
}

// A random wireable guard: FUNCTIONAL, address-free, arg-relative.
micro::Program RandomGuard(Rng& rng) {
  int num_args = static_cast<int>(rng.Below(micro::kMaxArgs)) + 1;
  switch (rng.Below(3)) {
    case 0:
      return micro::ReturnConst(num_args, rng.Next(), /*functional=*/true);
    case 1:
      return std::move(micro::ProgramBuilder(num_args, /*functional=*/true)
                           .LoadArg(0, static_cast<int>(rng.Below(num_args)))
                           .LoadImm(1, rng.Next())
                           .CmpLtU(2, 0, 1)
                           .Ret(2))
          .Build();
    default:
      return std::move(micro::ProgramBuilder(num_args, /*functional=*/true)
                           .LoadArg(0, static_cast<int>(rng.Below(num_args)))
                           .LoadImm(1, rng.Next())
                           .And(2, 0, 1)
                           .CmpEq(3, 2, 1)
                           .Ret(3))
          .Build();
  }
}

// Generates one random valid frame of the given message type.
std::string RandomFrame(Rng& rng, MsgType type) {
  switch (type) {
    case MsgType::kRequest: {
      RequestMsg msg;
      msg.kind = rng.Below(2) == 0 ? RaiseKind::kSync : RaiseKind::kAsync;
      msg.request_id = rng.Next();
      msg.token = rng.Next();
      msg.event_name = RandomName(rng);
      msg.params = RandomParams(rng);
      for (size_t i = 0; i < msg.params.size(); ++i) {
        msg.args.push_back(rng.Next());
      }
      // Half the frames carry the optional causal-trace trailer (span_id
      // must be nonzero when present).
      if (rng.Below(2) == 0) {
        msg.span_id = rng.Next() | 1;
        msg.origin_host = static_cast<uint32_t>(rng.Next());
      }
      return EncodeRequest(msg);
    }
    case MsgType::kReply: {
      ReplyMsg msg;
      msg.status = static_cast<WireStatus>(
          rng.Below(static_cast<uint64_t>(WireStatus::kGuardRejected) + 1));
      msg.request_id = rng.Next();
      msg.result = rng.Next();
      size_t nbyref = rng.Below(kMaxWireArgs + 1);
      for (size_t i = 0; i < nbyref; ++i) {
        msg.byref.push_back(rng.Next());
      }
      msg.error = RandomName(rng);
      return EncodeReply(msg);
    }
    case MsgType::kBindRequest: {
      BindRequestMsg msg;
      msg.bind_id = rng.Next();
      msg.event_name = RandomName(rng);
      msg.module_name = RandomName(rng);
      msg.credential = RandomName(rng);
      msg.params = RandomParams(rng);
      return EncodeBindRequest(msg);
    }
    case MsgType::kBindReply: {
      BindReplyMsg msg;
      msg.status = static_cast<WireStatus>(
          rng.Below(static_cast<uint64_t>(WireStatus::kGuardRejected) + 1));
      msg.bind_id = rng.Next();
      msg.token = rng.Next();
      size_t nguards = rng.Below(3);
      for (size_t i = 0; i < nguards; ++i) {
        msg.guards.push_back(RandomGuard(rng));
      }
      msg.error = RandomName(rng);
      return EncodeBindReply(msg);
    }
    case MsgType::kRevoke: {
      RevokeMsg msg;
      msg.token = rng.Next();
      msg.event_name = RandomName(rng);
      return EncodeRevoke(msg);
    }
  }
  return {};
}

constexpr MsgType kAllTypes[] = {MsgType::kRequest, MsgType::kReply,
                                 MsgType::kBindRequest, MsgType::kBindReply,
                                 MsgType::kRevoke};

// Decodes `wire` as whatever its header claims it is. Returns false when no
// decoder accepts it; on success, *reencoded is the canonical encoding of
// the decoded message.
bool DecodeAny(const std::string& wire, std::string* reencoded) {
  MsgType type;
  if (!PeekType(wire, &type)) {
    return false;
  }
  switch (type) {
    case MsgType::kRequest: {
      RequestMsg msg;
      if (!DecodeRequest(wire, &msg)) {
        return false;
      }
      *reencoded = EncodeRequest(msg);
      return true;
    }
    case MsgType::kReply: {
      ReplyMsg msg;
      if (!DecodeReply(wire, &msg)) {
        return false;
      }
      *reencoded = EncodeReply(msg);
      return true;
    }
    case MsgType::kBindRequest: {
      BindRequestMsg msg;
      if (!DecodeBindRequest(wire, &msg)) {
        return false;
      }
      *reencoded = EncodeBindRequest(msg);
      return true;
    }
    case MsgType::kBindReply: {
      BindReplyMsg msg;
      if (!DecodeBindReply(wire, &msg)) {
        return false;
      }
      // A well-framed reply whose guard fails the admission verifier is a
      // typed refusal: the decode succeeds so the proxy can surface the
      // precise status, but the refused programs are dropped rather than
      // kept, so the frame has no canonical re-encoding. Counts as a
      // rejection for the canonicality property.
      if (msg.guard_verify != micro::VerifyStatus::kOk) {
        EXPECT_TRUE(msg.guards.empty())
            << "refused guard programs must not survive the decode";
        return false;
      }
      *reencoded = EncodeBindReply(msg);
      return true;
    }
    case MsgType::kRevoke: {
      RevokeMsg msg;
      if (!DecodeRevoke(wire, &msg)) {
        return false;
      }
      *reencoded = EncodeRevoke(msg);
      return true;
    }
  }
  return false;
}

// --- Properties --------------------------------------------------------------

TEST(RemoteWireFuzz, ValidFramesRoundTripCanonically) {
  Rng rng{0x5349'4d46'555a'5a01ull};
  for (int iter = 0; iter < 2000; ++iter) {
    MsgType type = kAllTypes[iter % 5];
    std::string wire = RandomFrame(rng, type);
    std::string reencoded;
    ASSERT_TRUE(DecodeAny(wire, &reencoded))
        << "iter " << iter << ": a generated frame must decode";
    EXPECT_EQ(reencoded, wire)
        << "iter " << iter << ": decode o encode must be the identity";
  }
}

TEST(RemoteWireFuzz, MutatedFramesNeverCrashAndStayCanonical) {
  Rng rng{0x5349'4d46'555a'5a02ull};
  uint64_t mutated_frames = 0;
  uint64_t rejected = 0;
  uint64_t still_valid = 0;

  for (int iter = 0; iter < 2000; ++iter) {
    MsgType type = kAllTypes[iter % 5];
    const std::string wire = RandomFrame(rng, type);

    auto check = [&](const std::string& frame, const char* how) {
      ++mutated_frames;
      std::string reencoded;
      if (!DecodeAny(frame, &reencoded)) {
        ++rejected;  // the typed-error path: decoder said no, no crash
        return;
      }
      ++still_valid;
      // A mutation the decoders accept produced a different valid frame;
      // canonicality must still hold, or the decoders have slack.
      EXPECT_EQ(reencoded, frame)
          << "iter " << iter << " (" << how
          << "): accepted frame must re-encode canonically";
    };

    // Truncation at a random cut (including empty).
    check(wire.substr(0, rng.Below(wire.size() + 1)), "truncate");

    // Four independent single-byte flips.
    for (int flip = 0; flip < 4; ++flip) {
      std::string mutated = wire;
      if (!mutated.empty()) {
        size_t pos = rng.Below(mutated.size());
        mutated[pos] = static_cast<char>(mutated[pos] ^
                                         static_cast<char>(1 + rng.Below(255)));
      }
      check(mutated, "flip");
    }

    // Trailing garbage (decoders demand exact length).
    std::string extended = wire;
    size_t extra = 1 + rng.Below(8);
    for (size_t i = 0; i < extra; ++i) {
      extended.push_back(static_cast<char>(rng.Next() & 0xff));
    }
    check(extended, "extend");
  }

  EXPECT_GE(mutated_frames, 10'000u)
      << "the ISSUE requires at least 10k mutated frames";
  EXPECT_GT(rejected, 0u);
  // Byte flips inside length-prefixed payloads routinely stay valid; the
  // suite exercises both decoder outcomes or it is not really fuzzing.
  EXPECT_GT(still_valid, 0u);
}

TEST(RemoteWireFuzz, PureGarbageIsRejected) {
  Rng rng{0x5349'4d46'555a'5a03ull};
  for (int iter = 0; iter < 2000; ++iter) {
    size_t len = rng.Below(64);
    std::string garbage;
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.Next() & 0xff));
    }
    // Without the 0x5350 magic + version prefix the odds of acceptance are
    // negligible; assert rejection to pin the header check.
    if (garbage.size() < 4 ||
        !(garbage[0] == 0x53 && garbage[1] == 0x50 &&
          garbage[2] == kWireVersion)) {
      std::string reencoded;
      EXPECT_FALSE(DecodeAny(garbage, &reencoded)) << "iter " << iter;
    }
  }
}

}  // namespace
}  // namespace remote
}  // namespace spin
