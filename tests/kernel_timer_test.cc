// Kernel clock, timers, and the Clock.Tick event.
#include <gtest/gtest.h>

#include "src/emul/osf.h"
#include "src/kernel/kernel.h"

namespace spin {
namespace {

class TimerTest : public ::testing::Test {
 protected:
  Dispatcher dispatcher_;
  Kernel kernel_{&dispatcher_};
};

TEST_F(TimerTest, TickAdvancesClockAndRaisesEvent) {
  std::vector<int64_t> ticks;
  dispatcher_.InstallLambda(kernel_.ClockTick,
                            [&](int64_t now) { ticks.push_back(now); },
                            {.module = &kernel_.strand_module()});
  kernel_.Tick(1000);
  kernel_.Tick(500);
  EXPECT_EQ(kernel_.now_ns(), 1500u);
  EXPECT_EQ(ticks, (std::vector<int64_t>{1000, 1500}));
}

TEST_F(TimerTest, SleepersWakeInDeadlineOrder) {
  std::vector<std::string> wake_order;
  Strand& late = kernel_.CreateStrand("late", [&](Strand&) {
    wake_order.push_back("late");
    return false;
  });
  Strand& early = kernel_.CreateStrand("early", [&](Strand&) {
    wake_order.push_back("early");
    return false;
  });
  kernel_.SleepUntil(late, 2000);
  kernel_.SleepUntil(early, 1000);
  EXPECT_EQ(kernel_.sleeping(), 2u);
  // The idle scheduler jumps the clock from timer to timer.
  kernel_.RunUntilIdle();
  EXPECT_EQ(wake_order, (std::vector<std::string>{"early", "late"}));
  EXPECT_EQ(kernel_.now_ns(), 2000u);
  EXPECT_EQ(kernel_.sleeping(), 0u);
}

TEST_F(TimerTest, PartialTickWakesOnlyExpired) {
  int runs = 0;
  Strand& sleeper = kernel_.CreateStrand("s", [&](Strand&) {
    ++runs;
    return false;
  });
  kernel_.SleepUntil(sleeper, 5000);
  kernel_.Tick(4999);
  EXPECT_EQ(kernel_.sleeping(), 1u);
  kernel_.Tick(1);
  EXPECT_EQ(kernel_.sleeping(), 0u);
  kernel_.RunUntilIdle();
  EXPECT_EQ(runs, 1);
}

TEST_F(TimerTest, NanosleepSyscallBlocksAndResumes) {
  fs::Vfs vfs(&dispatcher_);
  emul::OsfEmulator osf(kernel_, vfs);
  AddressSpace& space = kernel_.CreateAddressSpace();
  osf.AdoptTask(space);
  std::vector<int> phases;
  Strand& strand = kernel_.CreateStrand(
      "napper",
      [&](Strand& s) {
        if (phases.empty()) {
          phases.push_back(1);
          s.saved_state().v0 = emul::kOsfNanosleep;
          s.saved_state().a[0] = 10'000;
          kernel_.Syscall(s);
          return true;
        }
        // Resumed after the sleep: read the kernel clock.
        phases.push_back(2);
        s.saved_state().v0 = emul::kOsfGetTime;
        kernel_.Syscall(s);
        return false;
      },
      &space);
  kernel_.RunUntilIdle();
  EXPECT_EQ(phases, (std::vector<int>{1, 2}));
  EXPECT_GE(strand.saved_state().v0, 10'000);
  EXPECT_GE(kernel_.now_ns(), 10'000u);
}

TEST_F(TimerTest, TickExtensionSeesIdleWakeups) {
  // A profiler-style extension observing the clock event during idle
  // timer jumps.
  int ticks = 0;
  dispatcher_.InstallLambda(kernel_.ClockTick, [&](int64_t) { ++ticks; },
                            {.module = &kernel_.strand_module()});
  Strand& sleeper = kernel_.CreateStrand("s", [](Strand&) { return false; });
  kernel_.SleepUntil(sleeper, 1234);
  kernel_.RunUntilIdle();
  EXPECT_GE(ticks, 1);
}

}  // namespace
}  // namespace spin
