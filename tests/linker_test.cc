// Dynamic linking substrate tests: resolution, typechecking, authorization
// (§2: extensions link first, then install handlers on resolved events).
#include <gtest/gtest.h>

#include "src/linker/domain.h"

namespace spin {
namespace {

int64_t KernelAdd(int64_t a, int64_t b) { return a + b; }
void Handler(int64_t v) { (void)v; }

class LinkerTest : public ::testing::Test {
 protected:
  Module kernel_module_{"KernelCore"};
  Module ext_module_{"Extension"};
  Dispatcher dispatcher_;
  Linker linker_;
};

TEST_F(LinkerTest, ResolveProcedureAndCall) {
  Domain& kernel = linker_.CreateDomain("kernel", &kernel_module_);
  kernel.ExportProcedure("Core.Add", &KernelAdd);

  Domain& ext = linker_.CreateDomain("ext", &ext_module_);
  ext.ImportProcedure<int64_t, int64_t, int64_t>("Core.Add");
  EXPECT_FALSE(ext.fully_resolved());
  ext.Resolve(kernel);
  EXPECT_TRUE(ext.fully_resolved());

  auto add = ext.GetProcedure<int64_t, int64_t, int64_t>("Core.Add");
  EXPECT_EQ(add(20, 22), 42);
}

TEST_F(LinkerTest, SignatureMismatchRejected) {
  Domain& kernel = linker_.CreateDomain("kernel", &kernel_module_);
  kernel.ExportProcedure("Core.Add", &KernelAdd);

  Domain& ext = linker_.CreateDomain("ext", &ext_module_);
  ext.ImportProcedure<int64_t, int64_t>("Core.Add");  // wrong arity
  try {
    ext.Resolve(kernel);
    FAIL() << "expected LinkError";
  } catch (const LinkError& e) {
    EXPECT_EQ(e.status(), LinkStatus::kSymbolTypeMismatch);
  }
}

TEST_F(LinkerTest, EventExportInstallHandlerFlow) {
  // The paper's two-phase integration: link against the interface, then
  // register a handler on the resolved event.
  Event<void(int64_t)> event("Core.Tick", &kernel_module_, nullptr,
                             &dispatcher_);
  Domain& kernel = linker_.CreateDomain("kernel", &kernel_module_);
  kernel.ExportEvent(event);

  Domain& ext = linker_.CreateDomain("ext", &ext_module_);
  ext.ImportEvent<void(int64_t)>("Core.Tick");
  ext.Resolve(kernel);

  auto* resolved = ext.GetEvent<void(int64_t)>("Core.Tick");
  ASSERT_EQ(resolved, &event);
  dispatcher_.InstallHandler(*resolved, &Handler, {.module = &ext_module_});
  EXPECT_EQ(event.handler_count(), 1u);
  resolved->Raise(7);
}

TEST_F(LinkerTest, EventSignatureMismatchRejected) {
  Event<void(int64_t)> event("Core.Tick", &kernel_module_, nullptr,
                             &dispatcher_);
  Domain& kernel = linker_.CreateDomain("kernel", &kernel_module_);
  kernel.ExportEvent(event);
  Domain& ext = linker_.CreateDomain("ext", &ext_module_);
  ext.ImportEvent<void(int64_t, int64_t)>("Core.Tick");
  EXPECT_THROW(ext.Resolve(kernel), LinkError);
}

bool DenyEvil(const LinkRequest& request, void*) {
  return request.requestor == nullptr || request.requestor->name() != "Evil";
}

TEST_F(LinkerTest, LinkAuthorizationDenies) {
  // §2.5: "Denial prevents the requester from accessing any of the
  // symbols, and hence events, exported by ... the authorizer."
  Module evil("Evil");
  Domain& kernel = linker_.CreateDomain("kernel", &kernel_module_);
  kernel.ExportProcedure("Core.Add", &KernelAdd);
  kernel.SetLinkAuthorizer(&DenyEvil, nullptr);

  Domain& evil_domain = linker_.CreateDomain("evil", &evil);
  evil_domain.ImportProcedure<int64_t, int64_t, int64_t>("Core.Add");
  try {
    evil_domain.Resolve(kernel);
    FAIL() << "expected LinkError";
  } catch (const LinkError& e) {
    EXPECT_EQ(e.status(), LinkStatus::kLinkDenied);
  }

  Domain& good = linker_.CreateDomain("good", &ext_module_);
  good.ImportProcedure<int64_t, int64_t, int64_t>("Core.Add");
  EXPECT_NO_THROW(good.Resolve(kernel));
}

TEST_F(LinkerTest, CombineAggregatesExports) {
  Domain& a = linker_.CreateDomain("a", &kernel_module_);
  a.ExportProcedure("A.Fn", &KernelAdd);
  Domain& b = linker_.CreateDomain("b", &kernel_module_);
  b.ExportProcedure("B.Fn", &KernelAdd);

  Domain& combined = linker_.CreateDomain("combined", &kernel_module_);
  combined.Combine(a);
  combined.Combine(b);
  EXPECT_EQ(combined.exports().size(), 2u);
  EXPECT_THROW(combined.Combine(a), LinkError);  // duplicate export
}

TEST_F(LinkerTest, LinkAgainstAllResolvesIncrementally) {
  Domain& a = linker_.CreateDomain("a", &kernel_module_);
  a.ExportProcedure("A.Fn", &KernelAdd);
  Domain& b = linker_.CreateDomain("b", &kernel_module_);
  b.ExportProcedure("B.Fn", &KernelAdd);

  Domain& ext = linker_.CreateDomain("ext", &ext_module_);
  ext.ImportProcedure<int64_t, int64_t, int64_t>("A.Fn");
  ext.ImportProcedure<int64_t, int64_t, int64_t>("B.Fn");
  linker_.LinkAgainstAll(ext);
  EXPECT_TRUE(ext.fully_resolved());
}

TEST_F(LinkerTest, UnresolvedImportsReported) {
  Domain& ext = linker_.CreateDomain("ext", &ext_module_);
  ext.ImportProcedure<int64_t, int64_t, int64_t>("Missing.Fn");
  try {
    linker_.LinkAgainstAll(ext);
    FAIL() << "expected LinkError";
  } catch (const LinkError& e) {
    EXPECT_EQ(e.status(), LinkStatus::kUnresolved);
    EXPECT_NE(std::string(e.what()).find("Missing.Fn"), std::string::npos);
  }
}

TEST_F(LinkerTest, DataExport) {
  static int64_t counter = 5;
  Domain& kernel = linker_.CreateDomain("kernel", &kernel_module_);
  kernel.ExportData("Core.Counter", &counter, sizeof(counter));
  Domain& ext = linker_.CreateDomain("ext", &ext_module_);
  ext.ImportData("Core.Counter");
  ext.Resolve(kernel);
  size_t size = 0;
  auto* p = static_cast<int64_t*>(ext.GetData("Core.Counter", &size));
  EXPECT_EQ(*p, 5);
  EXPECT_EQ(size, sizeof(int64_t));
}

TEST_F(LinkerTest, UnknownSymbolLookupThrows) {
  Domain& ext = linker_.CreateDomain("ext", &ext_module_);
  EXPECT_THROW((ext.GetProcedure<int64_t, int64_t, int64_t>("Nope")),
               LinkError);
}

}  // namespace
}  // namespace spin
