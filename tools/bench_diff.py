#!/usr/bin/env python3
"""Compare a fresh benchmark run against a checked-in baseline.

Inputs are either of the two shapes the bench binaries produce:
  - a JSON document with a "rows" list (bench_table1_dispatch
    --matrix-only, bench_fleet), or
  - JSON-lines: one row object per line, non-JSON lines ignored
    (bench_ablation's stdout mixes human tables with JSON rows).

Rows are matched by their identity fields (bench, case, mode, stack,
loss, ...) and each measured metric is compared by ratio. A metric
regresses when it moves in its bad direction by more than the threshold:

    higher is worse:  *_ns, *_us, ns_per_raise, *_ratio, retransmissions,
                      frames_lost, dead
    lower is worse:   raises_per_sec, delivered_per_sec, responses,
                      established

Fields in neither set (counts of offered work, booleans, seeds) are
identity or informational and never gate. A baseline row missing from
the new run fails — silently dropping a case is how regressions hide.
New rows absent from the baseline are reported but pass, so adding a
bench case does not require touching the gate in the same commit.

Exit status: 0 = no regressions, 1 = regressions or missing rows,
2 = usage/parse errors.

Usage:
  bench_diff.py baseline.json fresh.json
  bench_diff.py baseline.json fresh.json --threshold 1.5
  bench_diff.py base.json new.json --allow 'ablation/*/max_ns' \\
      --allow 'fleet/reno/0.05/latency_p99_us'
  bench_diff.py base.json new.json --per 'fleet/*/retransmissions=3.0'

Allow patterns and --per overrides are fnmatch globs over
"rowkey/metric" (rowkey is the identity fields joined with '/').
"""

import argparse
import fnmatch
import json
import sys

# Identity fields, in the order they form the row key. A field only
# contributes when the row has it.
KEY_FIELDS = (
    "bench", "case", "mode", "stack", "loss", "shards", "threads",
    "handlers", "hosts", "connections", "payload", "guard", "traced",
    "name",
)

HIGHER_IS_WORSE_SUFFIXES = ("_ns", "_us", "_ratio")
HIGHER_IS_WORSE = {"ns_per_raise", "retransmissions", "frames_lost", "dead"}
LOWER_IS_WORSE = {
    "raises_per_sec", "delivered_per_sec", "responses", "established",
}


def classify(metric):
    """Returns 'high', 'low', or None (not gated)."""
    if metric in HIGHER_IS_WORSE:
        return "high"
    if metric in LOWER_IS_WORSE:
        return "low"
    if metric.endswith(HIGHER_IS_WORSE_SUFFIXES):
        return "high"
    return None


def load_rows(path):
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            doc = json.loads(text)
        except json.JSONDecodeError:
            doc = None
        if isinstance(doc, dict) and isinstance(doc.get("rows"), list):
            return doc["rows"]
        if isinstance(doc, dict):
            return [doc]
    rows = []
    for line in text.splitlines():
        line = line.strip()
        if not line.startswith("{"):
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(row, dict):
            rows.append(row)
    return rows


def row_key(row):
    parts = []
    for field in KEY_FIELDS:
        if field in row:
            parts.append(str(row[field]))
    return "/".join(parts) if parts else json.dumps(row, sort_keys=True)


def index_rows(rows, path):
    by_key = {}
    for row in rows:
        key = row_key(row)
        if key in by_key:
            print(f"bench_diff: {path}: duplicate row key '{key}'",
                  file=sys.stderr)
        by_key[key] = row
    return by_key


def threshold_for(series, default, overrides):
    for pattern, value in overrides:
        if fnmatch.fnmatch(series, pattern):
            return value
    return default


def main():
    parser = argparse.ArgumentParser(
        description="Gate benchmark results against a baseline.")
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=1.5,
                        help="ratio past which a metric regresses "
                        "(default 1.5; deterministic virtual-time rows "
                        "can use values near 1.0)")
    parser.add_argument("--allow", action="append", default=[],
                        metavar="GLOB",
                        help="fnmatch over 'rowkey/metric'; matching "
                        "series never gate (repeatable)")
    parser.add_argument("--per", action="append", default=[],
                        metavar="GLOB=RATIO",
                        help="per-series threshold override (repeatable)")
    args = parser.parse_args()

    overrides = []
    for spec in args.per:
        pattern, sep, value = spec.rpartition("=")
        try:
            overrides.append((pattern, float(value)))
        except ValueError:
            sep = ""
        if not sep:
            print(f"bench_diff: bad --per '{spec}' (want GLOB=RATIO)",
                  file=sys.stderr)
            return 2

    try:
        base = index_rows(load_rows(args.baseline), args.baseline)
        fresh = index_rows(load_rows(args.fresh), args.fresh)
    except OSError as e:
        print(f"bench_diff: {e}", file=sys.stderr)
        return 2
    if not base:
        print(f"bench_diff: {args.baseline}: no benchmark rows found",
              file=sys.stderr)
        return 2

    failures = []
    compared = 0
    allowed = 0
    for key, base_row in sorted(base.items()):
        if key not in fresh:
            failures.append(f"missing row: {key}")
            continue
        fresh_row = fresh[key]
        for metric, base_val in base_row.items():
            direction = classify(metric)
            if direction is None:
                continue
            if not isinstance(base_val, (int, float)) or \
                    isinstance(base_val, bool):
                continue
            fresh_val = fresh_row.get(metric)
            if not isinstance(fresh_val, (int, float)) or \
                    isinstance(fresh_val, bool):
                failures.append(f"{key}/{metric}: missing in fresh run")
                continue
            series = f"{key}/{metric}"
            if any(fnmatch.fnmatch(series, p) for p in args.allow):
                allowed += 1
                continue
            limit = threshold_for(series, args.threshold, overrides)
            compared += 1
            if direction == "high":
                bound = base_val * limit
                if fresh_val > bound and fresh_val - base_val > 0:
                    failures.append(
                        f"{series}: {fresh_val:g} > {base_val:g} * "
                        f"{limit:g} (worse is higher)")
            else:
                bound = base_val / limit
                if fresh_val < bound:
                    failures.append(
                        f"{series}: {fresh_val:g} < {base_val:g} / "
                        f"{limit:g} (worse is lower)")

    extra = sorted(set(fresh) - set(base))
    for key in extra:
        print(f"bench_diff: new row (not gated): {key}", file=sys.stderr)

    if failures:
        for failure in failures:
            print(f"REGRESSION {failure}")
        print(f"bench_diff: {len(failures)} regression(s) over "
              f"{compared} gated series ({allowed} allowlisted)")
        return 1
    print(f"OK: {compared} series within threshold, {allowed} "
          f"allowlisted, {len(base)} row(s) matched")
    return 0


if __name__ == "__main__":
    sys.exit(main())
