#!/usr/bin/env python3
"""Promtool-style lint for the Prometheus exposition text that
obs::ExportMetrics writes.

Checks, per input:
  1. Every line is a well-formed comment, HELP, TYPE, or sample line.
  2. Metric and label names match the Prometheus grammar; label values
     escape `\\`, `"` and newlines.
  3. Every sample belongs to a declared family: an exact TYPE match, or a
     `_count` / `_sum` suffix of a summary family, or a `_bucket` suffix
     of a histogram family. An exact match wins over suffix stripping
     (spin_event_raise_ns_max is its own gauge family, not part of the
     spin_event_raise_ns summary).
  4. HELP and TYPE come in pairs, at most once per family, and before the
     family's first sample.
  5. Counter family names end in `_total`; summary quantile samples carry
     a `quantile` label; `_count` / `_sum` / `_bucket` samples do not.
  6. No duplicate series: a (name, labelset) pair appears at most once.
  7. Sample values parse as numbers (inf/nan allowed).

Exit status 0 when every input passes; 1 otherwise, with one line per
failure. Usage: validate_metrics.py [metrics.prom ...]  (stdin if no
files are given)
"""

import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# One label: name="value" with \\, \" and \n escapes inside the value.
LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\[\\"n])*)"')
SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)(?:\s+\d+)?$")
TYPES = {"counter", "gauge", "summary", "histogram", "untyped"}


def parse_labels(raw, where, errors):
    """Returns the labelset as a sorted tuple, or None on a syntax error."""
    labels = []
    pos = 0
    while pos < len(raw):
        m = LABEL.match(raw, pos)
        if not m:
            errors.append(f"{where}: bad label syntax at '{raw[pos:]}'")
            return None
        labels.append((m.group(1), m.group(2)))
        pos = m.end()
        if pos < len(raw):
            if raw[pos] != ",":
                errors.append(f"{where}: expected ',' at '{raw[pos:]}'")
                return None
            pos += 1
    names = [name for name, _ in labels]
    if len(names) != len(set(names)):
        errors.append(f"{where}: duplicate label name in {{{raw}}}")
        return None
    return tuple(sorted(labels))


def resolve_family(name, types):
    """Maps a sample name to its declaring family, or None."""
    if name in types:
        return name
    for suffix in ("_count", "_sum"):
        base = name[: -len(suffix)]
        if name.endswith(suffix) and types.get(base) in ("summary",
                                                         "histogram"):
            return base
    base = name[: -len("_bucket")]
    if name.endswith("_bucket") and types.get(base) == "histogram":
        return base
    return None


def validate(name, text):
    errors = []
    helps = {}
    types = {}
    sampled = set()  # families that already emitted a sample
    seen_series = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        where = f"{name}:{lineno}"
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 2 or parts[1] not in ("HELP", "TYPE"):
                continue  # plain comment
            if len(parts) < 3:
                errors.append(f"{where}: {parts[1]} with no metric name")
                continue
            family = parts[2]
            if not METRIC_NAME.match(family):
                errors.append(f"{where}: bad metric name '{family}'")
                continue
            table = helps if parts[1] == "HELP" else types
            if family in table:
                errors.append(f"{where}: duplicate {parts[1]} for {family}")
            if family in sampled:
                errors.append(
                    f"{where}: {parts[1]} for {family} after its samples")
            if parts[1] == "HELP":
                if len(parts) < 4 or not parts[3].strip():
                    errors.append(f"{where}: empty HELP text for {family}")
                helps[family] = lineno
            else:
                kind = parts[3].strip() if len(parts) > 3 else ""
                if kind not in TYPES:
                    errors.append(f"{where}: bad TYPE '{kind}' for {family}")
                types[family] = kind
                if kind == "counter" and not family.endswith("_total"):
                    errors.append(
                        f"{where}: counter {family} does not end in _total")
            continue

        m = SAMPLE.match(line)
        if not m:
            errors.append(f"{where}: unparseable sample line: {line!r}")
            continue
        sample_name, raw_labels, value = m.groups()
        labels = parse_labels(raw_labels or "", where, errors)
        if labels is None:
            continue
        try:
            float(value)
        except ValueError:
            errors.append(f"{where}: bad sample value '{value}'")
        family = resolve_family(sample_name, types)
        if family is None:
            errors.append(
                f"{where}: sample {sample_name} has no TYPE declaration")
        else:
            sampled.add(family)
            label_names = {k for k, _ in labels}
            is_suffix = sample_name != family
            if types[family] in ("summary", "histogram"):
                if is_suffix and "quantile" in label_names:
                    errors.append(
                        f"{where}: {sample_name} must not carry 'quantile'")
                if (types[family] == "summary" and not is_suffix
                        and "quantile" not in label_names):
                    errors.append(
                        f"{where}: summary sample {sample_name} without "
                        f"'quantile' label")
        series = (sample_name, labels)
        if series in seen_series:
            errors.append(f"{where}: duplicate series {line.split(' ')[0]}")
        seen_series.add(series)

    for family in helps:
        if family not in types:
            errors.append(f"{name}: HELP without TYPE for {family}")
    for family in types:
        if family not in helps:
            errors.append(f"{name}: TYPE without HELP for {family}")
    if not seen_series:
        errors.append(f"{name}: no samples found")
    return errors


def main(argv):
    failures = []
    inputs = 0
    if len(argv) > 1:
        for path in argv[1:]:
            inputs += 1
            try:
                with open(path, "r", encoding="utf-8") as f:
                    failures.extend(validate(path, f.read()))
            except OSError as e:
                failures.append(f"{path}: {e}")
    else:
        inputs = 1
        failures.extend(validate("<stdin>", sys.stdin.read()))
    for line in failures:
        print(line, file=sys.stderr)
    if not failures:
        print(f"OK: {inputs} exposition input(s) valid")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
