#!/usr/bin/env python3
"""Fold the phase slices of a spin Chrome trace into flamegraph stacks.

The input is the JSON obs::WriteChromeTrace writes: every record carries
its span id and parent span id in args, and phase segments (PhaseScope)
are "X" slices with cat == "phase" whose args hold the owning event name
and the segment's self-time (duration minus nested phase time). This
tool rebuilds the span tree from those ids — the same tree
obs::CriticalPath builds in-process — and emits one folded line per
(span path, phase):

    Client.Op;Remote.Op;wire 48210
    Client.Op;Remote.Op;(untracked) 1890

which flamegraph.pl / speedscope / inferno consume directly. The
`(untracked)` leaf is each span's wall time that neither its own phases
nor its children account for; it is emitted explicitly so a coverage gap
shows up as a visible block instead of silently widening every phase.
Virtual-clock phases (wire_virtual, backoff — simulator durations, not
host time) are excluded from stacks but reported in the attribution
summary.

Usage:
  spin_flame.py trace.json                     # folded stacks on stdout
  spin_flame.py trace.json -o out.folded
  spin_flame.py trace.json --check             # validate, no output:
                                               #   exit 1 on structural
                                               #   errors (orphan phases,
                                               #   self-time > wall, ...)
  spin_flame.py trace.json --attribution a.json  # per-root phase budget
"""

import argparse
import json
import sys

# Phases whose durations are simulator-clock, not host-clock: they render
# as instants ("i") with args.virtual == true and stay off the stacks.
VIRTUAL_PHASES = ("wire_virtual", "backoff")


class Span:
    __slots__ = ("span", "parent", "begin", "end", "name", "phases",
                 "virtual", "children")

    def __init__(self, span):
        self.span = span
        self.parent = 0
        self.begin = None  # ns
        self.end = 0  # ns
        self.name = None
        self.phases = {}  # phase name -> summed self ns
        self.virtual = {}  # phase name -> summed virtual ns
        self.children = []


def _ns(us):
    """Chrome trace timestamps are microsecond floats; recover ns."""
    return int(round(us * 1000.0))


def build_spans(events, errors):
    spans = {}

    def get(span_id):
        if span_id not in spans:
            spans[span_id] = Span(span_id)
        return spans[span_id]

    for ev in events:
        args = ev.get("args") or {}
        span_id = args.get("span", 0)
        if not span_id:
            if ev.get("cat") == "phase":
                # A phase slice outside any span would be invisible in the
                # folded output; the recorder counts these as orphans and
                # never writes them, so seeing one means the trace is
                # corrupt.
                errors.append(
                    f"phase slice '{ev.get('name')}' has no span id")
            continue
        info = get(span_id)
        parent = args.get("parent", 0)
        if parent and not info.parent:
            info.parent = parent
        ts = _ns(ev.get("ts", 0.0))
        info.begin = ts if info.begin is None else min(info.begin, ts)
        info.end = max(info.end, ts)
        if ev.get("cat") == "phase":
            phase = ev.get("name", "?")
            if ev.get("ph") == "X":
                dur = _ns(ev.get("dur", 0.0))
                info.end = max(info.end, ts + dur)
                self_ns = args.get("self_ns", 0)
                if self_ns > dur + 1000:  # 1 us of float-µs rounding slack
                    errors.append(
                        f"span {span_id} phase '{phase}': self_ns "
                        f"{self_ns} exceeds slice duration {dur}")
                info.phases[phase] = info.phases.get(phase, 0) + self_ns
            else:
                info.virtual[phase] = (
                    info.virtual.get(phase, 0) + args.get("self_ns", 0))
        elif ev.get("cat") == "raise_begin":
            info.name = ev.get("name", "?")
        elif info.name is None and ev.get("cat") != "span":
            # Fall back to the first named record: a wire span has no
            # raise_begin of its own.
            info.name = ev.get("name", "?")

    roots = []
    for span_id, info in sorted(spans.items()):
        if info.parent and info.parent in spans:
            spans[info.parent].children.append(span_id)
        else:
            roots.append(span_id)
    return spans, roots


def wall(info):
    if info.begin is None or info.end <= info.begin:
        return 0
    return info.end - info.begin


def fold(spans, roots, out):
    lines = []

    def walk(span_id, path):
        info = spans[span_id]
        path = path + [info.name or "?"]
        prefix = ";".join(path)
        accounted = 0
        for phase in sorted(info.phases):
            self_ns = info.phases[phase]
            if self_ns:
                lines.append(f"{prefix};{phase} {self_ns}")
                accounted += self_ns
        children_wall = 0
        for child in info.children:
            children_wall += wall(spans[child])
            walk(child, path)
        untracked = wall(info) - accounted - children_wall
        if untracked > 0:
            lines.append(f"{prefix};(untracked) {untracked}")

    for root in roots:
        walk(root, [])
    out.write("\n".join(lines) + ("\n" if lines else ""))
    return lines


def attribute(spans, roots):
    """Per-root phase budget, the JSON twin of CriticalPath::Attribute."""
    out = []
    for root in roots:
        total = {}
        virtual = {}
        stack = [root]
        tracked = 0
        while stack:
            info = spans[stack.pop()]
            for phase, ns in info.phases.items():
                total[phase] = total.get(phase, 0) + ns
                tracked += ns
            for phase, ns in info.virtual.items():
                virtual[phase] = virtual.get(phase, 0) + ns
            stack.extend(info.children)
        w = wall(spans[root])
        out.append({
            "root_span": root,
            "event": spans[root].name or "?",
            "wall_ns": w,
            "tracked_ns": tracked,
            "residual_ns": max(w - tracked, 0),
            "coverage": (tracked / w) if w else 0.0,
            "self_ns": dict(sorted(total.items())),
            "virtual_ns": dict(sorted(virtual.items())),
        })
    return out


def check(spans, roots, errors):
    for span_id, info in spans.items():
        w = wall(info)
        tracked = sum(info.phases.values())
        # Phases partition the span's extent; allow 1 us of slack for the
        # microsecond rounding WriteChromeTrace applies to timestamps.
        if tracked > w + 1000:
            errors.append(
                f"span {span_id} ({info.name or '?'}): phase self-time "
                f"{tracked} ns exceeds wall {w} ns")
        for phase in info.virtual:
            if phase not in VIRTUAL_PHASES:
                errors.append(
                    f"span {span_id}: instant phase '{phase}' is not a "
                    f"known virtual phase")
    reachable = set()
    stack = list(roots)
    while stack:
        span_id = stack.pop()
        if span_id in reachable:
            errors.append(f"span tree cycle through span {span_id}")
            break
        reachable.add(span_id)
        stack.extend(spans[span_id].children)
    if len(reachable) != len(spans):
        errors.append(
            f"{len(spans) - len(reachable)} span(s) unreachable from roots")


def main():
    parser = argparse.ArgumentParser(
        description="Fold spin phase traces into flamegraph stacks.")
    parser.add_argument("trace", help="Chrome trace JSON from "
                        "obs::WriteChromeTrace")
    parser.add_argument("-o", "--output", help="folded stacks file "
                        "(default: stdout)")
    parser.add_argument("--check", action="store_true",
                        help="validate phase structure (folded stacks still "
                        "written when -o is given, but not to stdout)")
    parser.add_argument("--attribution",
                        help="write per-root phase budgets as JSON")
    args = parser.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"spin_flame: {args.trace}: {e}", file=sys.stderr)
        return 1
    events = doc.get("traceEvents", doc if isinstance(doc, list) else [])

    errors = []
    spans, roots = build_spans(events, errors)
    if args.check:
        check(spans, roots, errors)
    if args.attribution:
        with open(args.attribution, "w", encoding="utf-8") as f:
            json.dump({"roots": attribute(spans, roots)}, f, indent=2)
            f.write("\n")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            fold(spans, roots, f)
    elif not args.check:
        fold(spans, roots, sys.stdout)

    if errors:
        for err in errors:
            print(f"spin_flame: {args.trace}: {err}", file=sys.stderr)
        return 1
    n_phases = sum(len(s.phases) for s in spans.values())
    print(f"OK: {len(spans)} span(s), {len(roots)} root(s), "
          f"{n_phases} phased", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
