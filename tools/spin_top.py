#!/usr/bin/env python3
"""Live terminal view over the stats JSON that obs::WriteJsonStats emits.

The input is JSON-lines: one StatsSnapshot object per line, either delta
snapshots (window_ns != 0, written by an embedder that calls
obs::Delta before serializing) or raw cumulative captures (window_ns ==
0), in which case spin_top computes the window itself from the last two
lines: counter series (name ends in `_total`) and event count/sum
subtract, gauges and the latency percentiles show the newest capture.

Per refresh it renders the busiest events — raise rate, mean, p50/p90/p99
and max latency over the window — plus the anomaly counters and a short
set of health series (pool depth, epoch backlog, trace drops).

Usage:
  spin_top.py stats.jsonl              # refresh every 2s (top-style)
  spin_top.py --interval 0.5 stats.jsonl
  spin_top.py --once stats.jsonl       # render once and exit (CI smoke)
"""

import argparse
import json
import sys
import time

HEALTH_PREFIXES = (
    "spin_anomalies_total",
    "spin_pool_queue_depth",
    "spin_pool_pending",
    "spin_epoch_retired",
    "spin_trace_overwrites_total",
    "spin_remote_client_retries_total",
    "spin_remote_client_timeouts_total",
)


def load_snapshots(path):
    snaps = []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                snaps.append(json.loads(line))
            except json.JSONDecodeError as e:
                raise ValueError(f"{path}:{lineno}: bad JSON: {e}")
    return snaps


def delta(a, b):
    """Python twin of obs::Delta for raw cumulative captures."""
    out = {
        "ts_ns": b["ts_ns"],
        "window_ns": max(0, b["ts_ns"] - a["ts_ns"]),
        "events": [],
        "series": [],
    }
    prev_events = {(e["event"], e["kind"]): e for e in a.get("events", [])}
    for ev in b.get("events", []):
        prev = prev_events.get((ev["event"], ev["kind"]))
        d = dict(ev)
        if prev:
            d["count"] = max(0, ev["count"] - prev["count"])
            d["sum_ns"] = max(0, ev["sum_ns"] - prev["sum_ns"])
        if d["count"] > 0:
            out["events"].append(d)
    prev_series = {s["name"]: s["value"] for s in a.get("series", [])}
    for s in b.get("series", []):
        value = s["value"]
        base = s["name"].split("{", 1)[0]
        if base.endswith("_total"):
            value = max(0, value - prev_series.get(s["name"], 0))
        out["series"].append({"name": s["name"], "value": value})
    return out


def window_view(snaps):
    last = snaps[-1]
    if last.get("window_ns", 0) != 0 or len(snaps) < 2:
        return last
    return delta(snaps[-2], last)


def fmt_ns(ns):
    if ns >= 1_000_000_000:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1_000_000:
        return f"{ns / 1e6:.1f}ms"
    if ns >= 1_000:
        return f"{ns / 1e3:.1f}us"
    return f"{ns}ns"


def render(view, out=sys.stdout):
    window_ns = view.get("window_ns", 0)
    window_s = window_ns / 1e9 if window_ns else 0.0
    out.write(f"spin_top — window {fmt_ns(window_ns)}   "
              f"ts {view.get('ts_ns', 0)}\n\n")

    events = sorted(view.get("events", []), key=lambda e: -e["count"])
    out.write(f"{'EVENT':<32} {'KIND':<12} {'RAISES/S':>10} {'MEAN':>8} "
              f"{'P50':>8} {'P90':>8} {'P99':>8} {'MAX':>9}\n")
    if not events:
        out.write("  (no raises in window)\n")
    for ev in events[:24]:
        rate = ev["count"] / window_s if window_s else float(ev["count"])
        mean = ev["sum_ns"] / ev["count"] if ev["count"] else 0
        out.write(f"{ev['event'][:32]:<32} {ev['kind'][:12]:<12} "
                  f"{rate:>10.0f} {fmt_ns(int(mean)):>8} "
                  f"{fmt_ns(ev['p50_ns']):>8} {fmt_ns(ev['p90_ns']):>8} "
                  f"{fmt_ns(ev['p99_ns']):>8} {fmt_ns(ev['max_ns']):>9}\n")

    health = [s for s in view.get("series", [])
              if s["name"].startswith(HEALTH_PREFIXES) and s["value"] != 0]
    out.write("\nhealth:\n")
    if not health:
        out.write("  all quiet (no anomalies, no backlog, no drops)\n")
    for s in health[:16]:
        out.write(f"  {s['name']:<60} {s['value']}\n")
    out.flush()


def main(argv):
    parser = argparse.ArgumentParser(
        description="top-style view over spin stats JSON")
    parser.add_argument("path", help="stats JSON-lines file")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="refresh period in seconds")
    parser.add_argument("--once", action="store_true",
                        help="render one frame and exit (CI smoke)")
    args = parser.parse_args(argv[1:])

    while True:
        try:
            snaps = load_snapshots(args.path)
        except (OSError, ValueError) as e:
            print(e, file=sys.stderr)
            return 1
        if not snaps:
            print(f"{args.path}: no snapshots", file=sys.stderr)
            return 1
        if not args.once:
            sys.stdout.write("\x1b[2J\x1b[H")  # clear screen, home cursor
        render(window_view(snaps))
        if args.once:
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
