#!/usr/bin/env python3
"""Regenerate (or check) the disassembler-verified codegen golden corpus.

The codegen_golden_test binary emits every stub shape the runtime code
generator produces, disassembles the bytes, and compares the listing
against tests/golden/stubs.golden. After an intentional codegen change,
run this script to rewrite the golden file from the binary's --dump
output; with --check it only verifies and exits nonzero on drift (the CI
form, so a codegen change cannot land without its regenerated golden).

Usage:
  python3 tools/update_golden.py [--check] [--build-dir BUILD] [--binary PATH]
"""

import argparse
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
GOLDEN = REPO / "tests" / "golden" / "stubs.golden"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="verify only; exit 1 on drift")
    parser.add_argument("--build-dir", default=str(REPO / "build"),
                        help="build tree containing the test binary")
    parser.add_argument("--binary", default=None,
                        help="explicit path to codegen_golden_test")
    args = parser.parse_args()

    binary = pathlib.Path(args.binary) if args.binary else \
        pathlib.Path(args.build_dir) / "tests" / "codegen_golden_test"
    if not binary.exists():
        print(f"error: {binary} not found; build the repo first "
              f"(cmake --build {args.build_dir})", file=sys.stderr)
        return 2

    proc = subprocess.run([str(binary), "--dump"], capture_output=True)
    if proc.returncode != 0:
        sys.stderr.buffer.write(proc.stderr)
        print("error: --dump failed; fix the corpus before regenerating",
              file=sys.stderr)
        return 2
    actual = proc.stdout

    if not actual.strip():
        # Codegen unavailable (non-x86-64 host or SPIN_DISABLE_JIT): nothing
        # to compare, nothing to rewrite.
        sys.stderr.buffer.write(proc.stderr)
        print("codegen unavailable; golden corpus not touched")
        return 0

    expected = GOLDEN.read_bytes() if GOLDEN.exists() else b""
    if actual == expected:
        print(f"{GOLDEN.relative_to(REPO)}: up to date")
        return 0

    if args.check:
        print(f"error: {GOLDEN.relative_to(REPO)} is stale; regenerate "
              f"with: python3 tools/update_golden.py", file=sys.stderr)
        return 1

    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN.write_bytes(actual)
    print(f"{GOLDEN.relative_to(REPO)}: rewritten "
          f"({len(actual.splitlines())} lines); review the diff")
    return 0


if __name__ == "__main__":
    sys.exit(main())
