#!/usr/bin/env python3
"""Validates Chrome trace-event JSON written by obs::WriteChromeTrace.

Checks, per file:
  1. The file parses as JSON with a `traceEvents` array.
  2. Duration events balance: every "B" has a matching "E" on the same
     (pid, tid), properly nested (a stack, not a multiset).
  3. Flow events resolve: every flow step ("t") and finish ("f") id was
     started by an "s" event somewhere in the trace.
  4. Complete ("X") slices — the phase segments — carry a numeric ts and a
     non-negative dur.

Exit status 0 when every file passes; 1 otherwise, with one line per
failure. Usage: validate_trace.py trace.json [more.json ...]
"""

import json
import sys


def validate(path):
    errors = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: not parseable JSON: {e}"]

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: no traceEvents array"]

    stacks = {}  # (pid, tid) -> stack of open B names
    flow_started = set()
    flow_used = []  # (id, phase) seen before knowing all starts
    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or "ph" not in ev:
            errors.append(f"{path}: event {i} has no phase")
            continue
        ph = ev["ph"]
        key = (ev.get("pid"), ev.get("tid"))
        if ph == "B":
            stacks.setdefault(key, []).append(ev.get("name"))
        elif ph == "E":
            stack = stacks.setdefault(key, [])
            if not stack:
                errors.append(
                    f"{path}: event {i}: E with no open B on pid/tid {key}")
            else:
                stack.pop()
        elif ph == "s":
            flow_started.add(ev.get("id"))
        elif ph in ("t", "f"):
            flow_used.append((ev.get("id"), ph, i))
        elif ph == "X":
            if not isinstance(ev.get("ts"), (int, float)):
                errors.append(f"{path}: event {i}: X slice without ts")
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(
                    f"{path}: event {i}: X slice with bad dur {dur!r}")

    for key, stack in stacks.items():
        if stack:
            errors.append(
                f"{path}: {len(stack)} unclosed B event(s) on pid/tid "
                f"{key}: {stack}")
    for flow_id, ph, i in flow_used:
        if flow_id not in flow_started:
            errors.append(
                f"{path}: event {i}: flow '{ph}' id {flow_id} has no "
                f"'s' start")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = []
    for path in argv[1:]:
        failures.extend(validate(path))
    for line in failures:
        print(line, file=sys.stderr)
    if not failures:
        print(f"OK: {len(argv) - 1} trace file(s) valid")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
