#include "src/types/typecheck.h"

#include "src/types/type_registry.h"

namespace spin {
namespace {

// Compares one event parameter against the corresponding procedure
// parameter, applying the filter by-ref widening rule.
TypecheckStatus CheckParam(const ParamSig& event, const ParamSig& proc,
                           bool as_filter) {
  if (event.cls == proc.cls && event.ref_type == proc.ref_type &&
      event.by_ref == proc.by_ref) {
    return TypecheckStatus::kOk;
  }
  // Filter widening: a by-value event parameter may be taken by-ref. The
  // parameter classes must otherwise agree; the dispatcher passes a pointer
  // to its argument copy.
  if (!event.by_ref && proc.by_ref && proc.cls == TypeClass::kPointer) {
    if (!as_filter) {
      return TypecheckStatus::kByRefNotAllowed;
    }
    return TypecheckStatus::kOk;
  }
  return TypecheckStatus::kParamMismatch;
}

TypecheckStatus CheckCommon(const ProcSig& event, const ProcSig& proc,
                            const TypecheckOptions& opts) {
  size_t offset = opts.has_closure ? 1 : 0;
  if (proc.params.size() != event.params.size() + offset) {
    return TypecheckStatus::kArityMismatch;
  }
  if (opts.has_closure) {
    const ParamSig& closure_param = proc.params[0];
    if (closure_param.cls != TypeClass::kPointer) {
      return TypecheckStatus::kMissingClosureParam;
    }
    if (!TypeRegistry::Global().IsSubtype(opts.closure_type,
                                          closure_param.ref_type)) {
      return TypecheckStatus::kClosureNotSubtype;
    }
  }
  for (size_t i = 0; i < event.params.size(); ++i) {
    TypecheckStatus status =
        CheckParam(event.params[i], proc.params[i + offset], opts.as_filter);
    if (status != TypecheckStatus::kOk) {
      return status;
    }
  }
  return TypecheckStatus::kOk;
}

}  // namespace

const char* TypecheckStatusName(TypecheckStatus status) {
  switch (status) {
    case TypecheckStatus::kOk:
      return "ok";
    case TypecheckStatus::kArityMismatch:
      return "arity mismatch";
    case TypecheckStatus::kParamMismatch:
      return "parameter type mismatch";
    case TypecheckStatus::kResultMismatch:
      return "result type mismatch";
    case TypecheckStatus::kGuardNotBoolean:
      return "guard must return boolean";
    case TypecheckStatus::kGuardNotFunctional:
      return "guard must be FUNCTIONAL";
    case TypecheckStatus::kMissingClosureParam:
      return "closure requires a leading reference parameter";
    case TypecheckStatus::kClosureNotSubtype:
      return "closure is not a subtype of the handler's closure parameter";
    case TypecheckStatus::kByRefNotAllowed:
      return "by-ref parameter widening requires filter installation";
  }
  return "<bad>";
}

TypecheckStatus CheckHandler(const ProcSig& event, const ProcSig& proc,
                             const TypecheckOptions& opts) {
  TypecheckStatus status = CheckCommon(event, proc, opts);
  if (status != TypecheckStatus::kOk) {
    return status;
  }
  if (!(proc.result == event.result)) {
    return TypecheckStatus::kResultMismatch;
  }
  return TypecheckStatus::kOk;
}

TypecheckStatus CheckGuard(const ProcSig& event, const ProcSig& proc,
                           const TypecheckOptions& opts) {
  if (!proc.functional) {
    return TypecheckStatus::kGuardNotFunctional;
  }
  // Guards never widen parameters to by-ref: they are side-effect free and
  // receive the same (possibly filtered) values as the handler.
  TypecheckOptions guard_opts = opts;
  guard_opts.as_filter = false;
  TypecheckStatus status = CheckCommon(event, proc, guard_opts);
  if (status != TypecheckStatus::kOk) {
    return status;
  }
  if (proc.result.cls != TypeClass::kBool) {
    return TypecheckStatus::kGuardNotBoolean;
  }
  return TypecheckStatus::kOk;
}

bool AsyncEligible(const ProcSig& event) {
  for (const ParamSig& p : event.params) {
    if (p.by_ref) {
      return false;
    }
  }
  return true;
}

}  // namespace spin
