// Runtime type registry.
//
// SPIN's dispatcher leans on Modula-3 runtime type information to typecheck
// handler installation and to decide closure-subtype compatibility (§2.4).
// C++ RTTI knows identity but not the subtype lattice without language-level
// casts on concrete objects, so we keep an explicit registry: every type used
// as an event parameter pointee or a closure gets a TypeId; subtype edges are
// declared once (normally right next to the class definition).
#ifndef SRC_TYPES_TYPE_REGISTRY_H_
#define SRC_TYPES_TYPE_REGISTRY_H_

#include <cstdint>
#include <string>
#include <typeindex>
#include <typeinfo>
#include <unordered_map>
#include <vector>

#include "src/rt/spinlock.h"

namespace spin {

using TypeId = uint32_t;

inline constexpr TypeId kUntypedId = 0;  // unknown / opaque REFANY

class TypeRegistry {
 public:
  static TypeRegistry& Global();

  // Returns the id for `info`, creating one on first use.
  TypeId Intern(const std::type_info& info);

  // Declares `sub` to be a direct subtype of `super`.
  void DeclareSubtype(TypeId sub, TypeId super);

  // True if `sub` == `super`, `super` is kUntypedId (REFANY accepts any
  // reference), or a declared chain links them.
  bool IsSubtype(TypeId sub, TypeId super) const;

  std::string NameOf(TypeId id) const;

 private:
  TypeRegistry() = default;

  mutable Spinlock mu_;
  std::unordered_map<std::type_index, TypeId> ids_;
  std::vector<std::string> names_{"<untyped>"};
  std::vector<std::vector<TypeId>> supers_{{}};  // index: TypeId
};

// The TypeId of T, interned on first use.
template <typename T>
TypeId TypeOf() {
  static const TypeId id = TypeRegistry::Global().Intern(typeid(T));
  return id;
}

// Declares Sub <: Super in the global registry. Typically invoked once at
// module initialization; safe to call repeatedly.
template <typename Sub, typename Super>
void DeclareSubtype() {
  static_assert(std::is_base_of_v<Super, Sub>,
                "runtime subtype edge must mirror the C++ hierarchy");
  TypeRegistry::Global().DeclareSubtype(TypeOf<Sub>(), TypeOf<Super>());
}

}  // namespace spin

#endif  // SRC_TYPES_TYPE_REGISTRY_H_
