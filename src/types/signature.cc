#include "src/types/signature.h"

namespace spin {

const char* TypeClassName(TypeClass cls) {
  switch (cls) {
    case TypeClass::kVoid:
      return "void";
    case TypeClass::kBool:
      return "bool";
    case TypeClass::kInt32:
      return "int32";
    case TypeClass::kUInt32:
      return "uint32";
    case TypeClass::kInt64:
      return "int64";
    case TypeClass::kUInt64:
      return "uint64";
    case TypeClass::kFloat64:
      return "float64";
    case TypeClass::kPointer:
      return "pointer";
  }
  return "<bad>";
}

std::string ProcSig::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < params.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    if (params[i].by_ref) {
      out += "VAR ";
    }
    out += TypeClassName(params[i].cls);
  }
  out += ") -> ";
  out += TypeClassName(result.cls);
  if (functional) {
    out += " FUNCTIONAL";
  }
  if (ephemeral) {
    out += " EPHEMERAL";
  }
  return out;
}

}  // namespace spin
