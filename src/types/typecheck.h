// Install-time typechecking rules (§2.4 "Typechecking").
//
//  - A handler's argument types and return value must equal the event's.
//  - A guard's argument types must equal the event's; its result must be
//    boolean. Guards must be FUNCTIONAL.
//  - A procedure installed with a closure takes an additional first argument
//    of some reference type; the closure's type must be a subtype of it.
//  - A handler installed as a filter may declare some by-value event
//    parameters as by-ref; the dispatcher copies arguments so the raiser's
//    values are preserved.
#ifndef SRC_TYPES_TYPECHECK_H_
#define SRC_TYPES_TYPECHECK_H_

#include <string>

#include "src/types/signature.h"

namespace spin {

enum class TypecheckStatus {
  kOk,
  kArityMismatch,
  kParamMismatch,
  kResultMismatch,
  kGuardNotBoolean,
  kGuardNotFunctional,
  kMissingClosureParam,
  kClosureNotSubtype,
  kByRefNotAllowed,  // by-ref widening requires filter installation
};

const char* TypecheckStatusName(TypecheckStatus status);

struct TypecheckOptions {
  bool has_closure = false;     // procedure takes a leading closure param
  TypeId closure_type = kUntypedId;  // declared type of the supplied closure
  bool as_filter = false;       // installed as a filter (may widen to by-ref)
  bool require_ephemeral = false;  // event authority demands EPHEMERAL
};

// Checks `proc` (a handler signature) against `event`.
TypecheckStatus CheckHandler(const ProcSig& event, const ProcSig& proc,
                             const TypecheckOptions& opts);

// Checks `proc` (a guard signature) against `event`.
TypecheckStatus CheckGuard(const ProcSig& event, const ProcSig& proc,
                           const TypecheckOptions& opts);

// True when the event may legally be raised or handled asynchronously:
// no by-ref parameters (arguments may be destroyed before a detached thread
// runs, §2.6) and, for events returning results, handled by the dispatcher's
// default-handler rule at raise time.
bool AsyncEligible(const ProcSig& event);

}  // namespace spin

#endif  // SRC_TYPES_TYPECHECK_H_
