#include "src/types/type_registry.h"

#include <mutex>

#include "src/rt/panic.h"

namespace spin {

TypeRegistry& TypeRegistry::Global() {
  static TypeRegistry* registry = new TypeRegistry();  // intentionally leaked
  return *registry;
}

TypeId TypeRegistry::Intern(const std::type_info& info) {
  std::lock_guard<Spinlock> lock(mu_);
  auto [it, inserted] = ids_.try_emplace(std::type_index(info),
                                         static_cast<TypeId>(names_.size()));
  if (inserted) {
    names_.push_back(info.name());
    supers_.emplace_back();
  }
  return it->second;
}

void TypeRegistry::DeclareSubtype(TypeId sub, TypeId super) {
  std::lock_guard<Spinlock> lock(mu_);
  SPIN_ASSERT(sub < supers_.size() && super < supers_.size());
  for (TypeId existing : supers_[sub]) {
    if (existing == super) {
      return;
    }
  }
  supers_[sub].push_back(super);
}

bool TypeRegistry::IsSubtype(TypeId sub, TypeId super) const {
  if (super == kUntypedId || sub == super) {
    return true;
  }
  std::lock_guard<Spinlock> lock(mu_);
  // DFS over the (small, acyclic) declared-supertype graph.
  std::vector<TypeId> stack{sub};
  std::vector<bool> seen(supers_.size(), false);
  while (!stack.empty()) {
    TypeId t = stack.back();
    stack.pop_back();
    if (t >= supers_.size() || seen[t]) {
      continue;
    }
    seen[t] = true;
    for (TypeId up : supers_[t]) {
      if (up == super) {
        return true;
      }
      stack.push_back(up);
    }
  }
  return false;
}

std::string TypeRegistry::NameOf(TypeId id) const {
  std::lock_guard<Spinlock> lock(mu_);
  if (id < names_.size()) {
    return names_[id];
  }
  return "<invalid>";
}

}  // namespace spin
