// Module descriptors.
//
// "We added a new type to the language runtime that describes compilation
// units ... The operations guarantee that the identity of a module can be
// obtained only inside of that module" (§2.5). In C++ we cannot let the
// compiler enforce the only-inside-the-module rule, so the convention is:
// each logical module defines exactly one Module object (usually through
// SPIN_MODULE) with internal linkage and never hands out mutable access.
// Authority checks compare Module identities (pointer + id), exactly as the
// dispatcher compares module descriptors in SPIN.
#ifndef SRC_TYPES_MODULE_H_
#define SRC_TYPES_MODULE_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace spin {

class Module {
 public:
  explicit Module(std::string name)
      : name_(std::move(name)), id_(next_id_.fetch_add(1)) {}
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }
  uint64_t id() const { return id_; }

  friend bool operator==(const Module& a, const Module& b) {
    return a.id_ == b.id_;
  }

 private:
  static inline std::atomic<uint64_t> next_id_{1};
  std::string name_;
  uint64_t id_;
};

}  // namespace spin

// Declares this translation unit's module descriptor and a THIS_MODULE()
// accessor with internal linkage, mirroring SPIN's THIS_MODULE() operation.
#define SPIN_MODULE(modname)                                \
  namespace {                                               \
  [[maybe_unused]] const ::spin::Module& THIS_MODULE() {    \
    static ::spin::Module m(modname);                       \
    return m;                                               \
  }                                                         \
  }

#endif  // SRC_TYPES_MODULE_H_
