// Procedure signatures and argument slot codecs.
//
// Events are "described as Modula-3 procedure signatures" (§2.1). ProcSig is
// our runtime representation of such a signature: parameter classes, by-ref
// (VAR) flags, result class, and the FUNCTIONAL / EPHEMERAL attributes that
// SPIN's compiler carried into runtime type information.
//
// Arguments travel through the dispatcher in 8-byte slots (RaiseFrame in the
// core library). SlotCodec<T> defines the bijection between a C++ parameter
// and its slot. Only kernel-interface-shaped types are admitted: integers,
// bools, enums, doubles, pointers, and references (VAR parameters).
#ifndef SRC_TYPES_SIGNATURE_H_
#define SRC_TYPES_SIGNATURE_H_

#include <bit>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "src/types/type_registry.h"

namespace spin {

enum class TypeClass : uint8_t {
  kVoid,
  kBool,
  kInt32,
  kUInt32,
  kInt64,
  kUInt64,
  kFloat64,
  kPointer,  // includes references; by_ref distinguishes VAR parameters
};

const char* TypeClassName(TypeClass cls);

struct ParamSig {
  TypeClass cls = TypeClass::kVoid;
  TypeId ref_type = kUntypedId;  // pointee type for kPointer
  bool by_ref = false;           // Modula-3 VAR parameter

  friend bool operator==(const ParamSig&, const ParamSig&) = default;
};

struct ProcSig {
  std::vector<ParamSig> params;
  ParamSig result;
  bool functional = false;  // side-effect free (guard-eligible)
  bool ephemeral = false;   // terminable (EPHEMERAL)

  // Structural equality; attributes are compared separately by the
  // typechecker because they carry permission, not shape.
  bool SameShape(const ProcSig& other) const {
    return params == other.params && result == other.result;
  }

  std::string ToString() const;
};

// --- Slot codecs -----------------------------------------------------------

template <typename T, typename = void>
struct SlotCodec {
  static_assert(!sizeof(T),
                "event parameters must be integral, bool, enum, double, "
                "pointer, or reference types");
};

template <typename T>
struct SlotCodec<T, std::enable_if_t<std::is_integral_v<T>>> {
  static ParamSig Sig() {
    ParamSig sig;
    if constexpr (std::is_same_v<T, bool>) {
      sig.cls = TypeClass::kBool;
    } else if constexpr (sizeof(T) <= 4) {
      sig.cls = std::is_signed_v<T> ? TypeClass::kInt32 : TypeClass::kUInt32;
    } else {
      sig.cls = std::is_signed_v<T> ? TypeClass::kInt64 : TypeClass::kUInt64;
    }
    return sig;
  }
  static uint64_t Pack(T v) {
    if constexpr (std::is_same_v<T, bool>) {
      return v ? 1 : 0;
    } else {
      // Sign-extend so that the JIT can pass the slot in a 64-bit register
      // with correct 32-bit semantics in the callee.
      return static_cast<uint64_t>(static_cast<int64_t>(v));
    }
  }
  static T Unpack(uint64_t slot) { return static_cast<T>(slot); }
};

template <typename T>
struct SlotCodec<T, std::enable_if_t<std::is_enum_v<T>>> {
  using U = std::underlying_type_t<T>;
  static ParamSig Sig() { return SlotCodec<U>::Sig(); }
  static uint64_t Pack(T v) { return SlotCodec<U>::Pack(static_cast<U>(v)); }
  static T Unpack(uint64_t slot) {
    return static_cast<T>(SlotCodec<U>::Unpack(slot));
  }
};

template <typename T>
struct SlotCodec<T*> {
  static ParamSig Sig() {
    ParamSig sig;
    sig.cls = TypeClass::kPointer;
    sig.ref_type = TypeOf<std::remove_cv_t<T>>();
    return sig;
  }
  static uint64_t Pack(T* v) { return reinterpret_cast<uintptr_t>(v); }
  static T* Unpack(uint64_t slot) {
    return reinterpret_cast<T*>(static_cast<uintptr_t>(slot));
  }
};

template <typename T>
struct SlotCodec<T&> {
  static ParamSig Sig() {
    ParamSig sig = SlotCodec<std::remove_cv_t<T>*>::Sig();
    sig.by_ref = true;
    return sig;
  }
  static uint64_t Pack(T& v) { return reinterpret_cast<uintptr_t>(&v); }
  static T& Unpack(uint64_t slot) {
    return *reinterpret_cast<T*>(static_cast<uintptr_t>(slot));
  }
};

template <>
struct SlotCodec<double> {
  static ParamSig Sig() { return ParamSig{TypeClass::kFloat64}; }
  static uint64_t Pack(double v) { return std::bit_cast<uint64_t>(v); }
  static double Unpack(uint64_t slot) { return std::bit_cast<double>(slot); }
};

template <>
struct SlotCodec<void> {
  static ParamSig Sig() { return ParamSig{TypeClass::kVoid}; }
};

// Builds the ProcSig of a C++ function type.
template <typename Sig>
struct SigOf;

template <typename R, typename... A>
struct SigOf<R(A...)> {
  static ProcSig Make() {
    ProcSig sig;
    sig.params = {SlotCodec<A>::Sig()...};
    sig.result = SlotCodec<R>::Sig();
    return sig;
  }
};

template <typename Sig>
ProcSig MakeProcSig() {
  return SigOf<Sig>::Make();
}

}  // namespace spin

#endif  // SRC_TYPES_SIGNATURE_H_
