// A test-and-test-and-set spinlock.
//
// The dispatcher's install path and the simulated kernel take short critical
// sections; a spinlock mirrors the in-kernel locking discipline of SPIN more
// closely than a futex-based mutex and keeps the fast paths allocation-free.
#ifndef SRC_RT_SPINLOCK_H_
#define SRC_RT_SPINLOCK_H_

#include <atomic>

namespace spin {

class Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() {
    while (true) {
      if (!locked_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      while (locked_.load(std::memory_order_relaxed)) {
#if defined(__x86_64__)
        __builtin_ia32_pause();
#endif
      }
    }
  }

  bool try_lock() { return !locked_.exchange(true, std::memory_order_acquire); }

  void unlock() { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

}  // namespace spin

#endif  // SRC_RT_SPINLOCK_H_
