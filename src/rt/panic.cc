#include "src/rt/panic.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace spin {

void PanicImpl(const char* file, int line, const char* fmt, ...) {
  std::fprintf(stderr, "panic: %s:%d: ", file, line);
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace spin
