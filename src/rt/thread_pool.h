// Worker threads backing asynchronous events (§2.6 "Runaway handlers").
//
// The paper spawns a new thread of control per asynchronous raise and
// measures 38-90 us of added latency, attributing it to thread creation. We
// provide both disciplines:
//   - kSpawn: a fresh std::thread per task (paper-faithful; bench_async
//     measures its cost),
//   - kPooled: a fixed worker pool (the obvious optimization the paper notes
//     it had not yet applied: "asynchronous events ... have not been
//     optimized").
//
// The pooled discipline is multi-queue: one deque per worker, each with its
// own lock, the way per-queue NIC rings keep producers off one shared ring.
// SubmitTo(queue, task) pins work to a queue — the sharded dispatcher routes
// each shard's async outbox to its own queue — and plain Submit round-robins.
// Worker i drains queue i first and steals from the other queues' tails when
// its own runs dry, so a skewed shard hash degrades to shared-queue behavior
// instead of idling workers. Per-queue depth/executed/stolen counters feed
// the shard-labeled metric export.
#ifndef SRC_RT_THREAD_POOL_H_
#define SRC_RT_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace spin {

enum class AsyncMode {
  kPooled,  // run on a fixed worker pool
  kSpawn,   // spawn a fresh thread per task, detached tracking via counters
};

class ThreadPool {
 public:
  explicit ThreadPool(size_t workers = std::thread::hardware_concurrency());
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Process-wide pool used by dispatchers unless configured otherwise.
  static ThreadPool& Global();

  // Enqueues (or spawns) a task. Never blocks on task execution. Pooled
  // tasks are spread round-robin across the queues.
  void Submit(std::function<void()> task, AsyncMode mode = AsyncMode::kPooled);

  // Enqueues a task on queue `queue % queues()`. The queue's pinned worker
  // drains it in FIFO order; idle workers may steal from the tail. kSpawn
  // ignores the queue index.
  void SubmitTo(size_t queue, std::function<void()> task,
                AsyncMode mode = AsyncMode::kPooled);

  // Blocks until all submitted tasks (pooled and spawned) have finished.
  void Drain();

  size_t pending() const;

  // Number of queues (== number of workers).
  size_t queues() const { return queues_.size(); }

  // Tasks sitting in the pooled queues, not yet picked up by a worker.
  size_t queue_depth() const;
  // Depth of one queue.
  size_t queue_depth(size_t queue) const;

  // Tasks that have finished executing (pooled and spawned) over the pool's
  // lifetime. Monotonic; for metric export.
  uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }
  // Finished tasks that were submitted to `queue` (whether run by the
  // pinned worker or a thief).
  uint64_t executed(size_t queue) const;

  // Tasks stolen across all queues / stolen from one queue's tail.
  uint64_t steals() const;
  uint64_t steals(size_t queue) const;

 private:
  struct alignas(64) Queue {
    mutable std::mutex mu;
    std::deque<std::function<void()>> tasks;
    std::atomic<size_t> depth{0};
    std::atomic<uint64_t> executed{0};  // submitted here and finished
    std::atomic<uint64_t> stolen{0};    // taken from this queue by a thief
  };

  void Enqueue(size_t queue, std::function<void()> task);
  void Spawn(std::function<void()> task);
  void WorkerLoop(size_t index);
  // Pops a task for worker `index`: own queue front first, then steals from
  // the other queues' tails. Returns the source queue in *from.
  bool TryPop(size_t index, std::function<void()>* task, size_t* from);
  void FinishTask();

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;

  // Sleep/idle/shutdown coordination. The submit fast path never takes
  // mu_ unless a worker is asleep (sleepers_ > 0).
  mutable std::mutex mu_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::atomic<size_t> queued_{0};     // tasks in queues (seq_cst vs sleepers_)
  std::atomic<size_t> sleepers_{0};   // workers blocked on wake_
  std::atomic<size_t> in_flight_{0};  // queued + executing + spawned
  // Detached spawn threads still inside the pool (they touch mu_/idle_ in
  // FinishTask after in_flight_ hits zero). The destructor must not tear
  // the pool down until each one has made its final store here.
  std::atomic<size_t> spawn_live_{0};
  std::atomic<uint64_t> next_queue_{0};  // round-robin cursor for Submit
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> steals_{0};
  bool shutdown_ = false;  // guarded by mu_
};

}  // namespace spin

#endif  // SRC_RT_THREAD_POOL_H_
