// Worker threads backing asynchronous events (§2.6 "Runaway handlers").
//
// The paper spawns a new thread of control per asynchronous raise and
// measures 38-90 us of added latency, attributing it to thread creation. We
// provide both disciplines:
//   - kSpawn: a fresh std::thread per task (paper-faithful; bench_async
//     measures its cost),
//   - kPooled: a fixed worker pool (the obvious optimization the paper notes
//     it had not yet applied: "asynchronous events ... have not been
//     optimized").
#ifndef SRC_RT_THREAD_POOL_H_
#define SRC_RT_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace spin {

enum class AsyncMode {
  kPooled,  // run on a fixed worker pool
  kSpawn,   // spawn a fresh thread per task, detached tracking via counters
};

class ThreadPool {
 public:
  explicit ThreadPool(size_t workers = std::thread::hardware_concurrency());
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Process-wide pool used by dispatchers unless configured otherwise.
  static ThreadPool& Global();

  // Enqueues (or spawns) a task. Never blocks on task execution.
  void Submit(std::function<void()> task, AsyncMode mode = AsyncMode::kPooled);

  // Blocks until all submitted tasks (pooled and spawned) have finished.
  void Drain();

  size_t pending() const;

  // Tasks sitting in the pooled queue, not yet picked up by a worker.
  size_t queue_depth() const;

  // Tasks that have finished executing (pooled and spawned) over the pool's
  // lifetime. Monotonic; for metric export.
  uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t in_flight_ = 0;  // queued + executing + spawned-not-finished
  std::atomic<uint64_t> executed_{0};
  bool shutdown_ = false;
};

}  // namespace spin

#endif  // SRC_RT_THREAD_POOL_H_
