#include "src/rt/epoch.h"

#include "src/obs/trace.h"
#include "src/rt/panic.h"

namespace spin {
namespace {

// Per-thread cache of (domain, record) pairs. A thread can hold guards on
// several domains at once — the global domain plus any number of per-shard
// dispatcher domains — so a single cached pair is not enough. Entries are
// keyed by the domain's never-reused id: an entry for a destroyed domain
// can never produce a false hit, and is recognized as stale (and replaced)
// without its record pointer ever being dereferenced.
struct TlsSlot {
  uint64_t domain_id = 0;  // 0 = empty
  EpochDomain* domain = nullptr;
  void* record = nullptr;
};

constexpr size_t kTlsSlots = 8;

struct TlsCache {
  TlsSlot slots[kTlsSlots];
  size_t next_victim = 0;
};

thread_local TlsCache g_tls;

std::atomic<uint64_t> g_next_domain_id{1};

uint64_t NextDomainId() {
  return g_next_domain_id.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

EpochDomain& EpochDomain::Global() {
  static EpochDomain* domain = new EpochDomain();  // intentionally leaked
  return *domain;
}

EpochDomain::EpochDomain() : id_(NextDomainId()) {}

namespace {

// Records of destroyed domains. They are never freed: a thread's cache may
// still hold a pointer into a dead domain's record list, and while such an
// entry is never *dereferenced* (its domain id can no longer match), keeping
// the memory alive makes that property cheap to maintain and lets new
// domains recycle the records instead of leaking per-domain.
Spinlock g_record_pool_lock;
void* g_record_pool_head = nullptr;  // chained via ThreadRecord::next

}  // namespace

EpochDomain::~EpochDomain() {
  // Free everything still retired; callers must have quiesced.
  for (auto& list : retired_) {
    for (const Retired& r : list) {
      r.deleter(r.ptr);
    }
    list.clear();
  }
  ThreadRecord* rec = records_.load(std::memory_order_acquire);
  if (rec != nullptr) {
    ThreadRecord* tail = rec;
    while (tail->next != nullptr) {
      tail = tail->next;
    }
    std::lock_guard<Spinlock> lock(g_record_pool_lock);
    tail->next = static_cast<ThreadRecord*>(g_record_pool_head);
    g_record_pool_head = rec;
  }
}

EpochDomain::ThreadRecord* EpochDomain::AcquireRecord() {
  for (TlsSlot& slot : g_tls.slots) {
    if (slot.domain == this && slot.domain_id == id_) {
      return static_cast<ThreadRecord*>(slot.record);
    }
  }
  // Slow path: adopt a record for this (thread, domain) pair. Prefer one
  // recycled from a destroyed domain, then allocate.
  ThreadRecord* rec = nullptr;
  {
    std::lock_guard<Spinlock> lock(g_record_pool_lock);
    if (g_record_pool_head != nullptr) {
      rec = static_cast<ThreadRecord*>(g_record_pool_head);
      g_record_pool_head = rec->next;
    }
  }
  if (rec != nullptr) {
    rec->epoch.store(kIdle, std::memory_order_relaxed);
    rec->in_use.store(true, std::memory_order_relaxed);
    rec->nesting = 0;
  } else {
    rec = new ThreadRecord();
    rec->in_use.store(true, std::memory_order_relaxed);
  }
  ThreadRecord* head = records_.load(std::memory_order_relaxed);
  do {
    rec->next = head;
  } while (!records_.compare_exchange_weak(head, rec,
                                           std::memory_order_release,
                                           std::memory_order_relaxed));
  // Cache it: take an empty slot, else evict round-robin. Eviction only
  // overwrites the slot — the displaced record stays registered with its
  // domain (a later cache miss on that domain simply registers a fresh
  // record), and any guard currently holding it keeps its direct pointer.
  TlsSlot* victim = nullptr;
  for (TlsSlot& slot : g_tls.slots) {
    if (slot.domain_id == 0) {
      victim = &slot;
      break;
    }
  }
  if (victim == nullptr) {
    victim = &g_tls.slots[g_tls.next_victim];
    g_tls.next_victim = (g_tls.next_victim + 1) % kTlsSlots;
  }
  victim->domain_id = id_;
  victim->domain = this;
  victim->record = rec;
  return rec;
}

EpochDomain::ThreadRecord* EpochDomain::Enter() {
  ThreadRecord* rec = AcquireRecord();
  if (rec->nesting++ > 0) {
    return rec;  // already pinned by an enclosing guard
  }
  rec->epoch.store(global_epoch_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  // The store above must be visible before any read of protected data, and
  // before a writer samples our epoch during TryAdvance.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  return rec;
}

void EpochDomain::Exit(ThreadRecord* rec) {
  SPIN_DCHECK(rec != nullptr && rec->nesting > 0);
  if (--rec->nesting == 0) {
    rec->epoch.store(kIdle, std::memory_order_release);
  }
}

EpochDomain::Guard::Guard(EpochDomain& domain)
    : domain_(domain), record_(domain.Enter()) {}

EpochDomain::Guard::~Guard() {
  domain_.Exit(static_cast<ThreadRecord*>(record_));
}

void EpochDomain::Retire(void* p, void (*deleter)(void*)) {
  bool flush = false;
  {
    std::lock_guard<Spinlock> lock(retire_lock_);
    uint64_t e = global_epoch_.load(std::memory_order_relaxed);
    retired_[e % 3].push_back(Retired{p, deleter});
    flush = retired_total_.fetch_add(1, std::memory_order_relaxed) + 1 >=
            kFlushThreshold;
  }
  if (flush) {
    Flush();
  }
}

bool EpochDomain::TryAdvanceLocked() {
  uint64_t e = global_epoch_.load(std::memory_order_relaxed);
  for (ThreadRecord* rec = records_.load(std::memory_order_acquire);
       rec != nullptr; rec = rec->next) {
    uint64_t seen = rec->epoch.load(std::memory_order_acquire);
    if (seen != kIdle && seen != e) {
      return false;  // a reader is still in an older epoch
    }
  }
  global_epoch_.store(e + 1, std::memory_order_release);
  return true;
}

size_t EpochDomain::ReclaimLocked() {
  // Everything retired in epoch e is safe once the global epoch reaches e+2:
  // no reader pinned at e or e+1 can still reference it.
  uint64_t e = global_epoch_.load(std::memory_order_relaxed);
  if (e < 2) {
    return 0;
  }
  std::vector<Retired>& list = retired_[(e - 2) % 3];
  size_t n = list.size();
  for (const Retired& r : list) {
    r.deleter(r.ptr);
  }
  list.clear();
  retired_total_.fetch_sub(n, std::memory_order_relaxed);
  if (n > 0) {
    reclaimed_total_.fetch_add(n, std::memory_order_relaxed);
    obs::FlightRecorder::Global().Emit(obs::TraceKind::kEpochReclaim,
                                       "epoch", n);
  }
  return n;
}

size_t EpochDomain::Flush() {
  std::lock_guard<Spinlock> lock(retire_lock_);
  size_t freed = ReclaimLocked();
  if (TryAdvanceLocked()) {
    freed += ReclaimLocked();
  }
  return freed;
}

void EpochDomain::Synchronize() {
  // Advance the epoch twice, reclaiming after each advance. Items retired at
  // epoch e live in bucket e%3 and are freed when the epoch reaches e+2, so
  // two advances flush everything retired before the call. Reclaiming before
  // each advance preserves the invariant that the bucket about to become
  // "current" is empty. The caller must not hold a Guard on this domain.
  int advances = 0;
  while (advances < 2) {
    bool advanced = false;
    {
      std::lock_guard<Spinlock> lock(retire_lock_);
      ReclaimLocked();
      advanced = TryAdvanceLocked();
      if (advanced) {
        ReclaimLocked();
      }
    }
    if (advanced) {
      ++advances;
    } else {
#if defined(__x86_64__)
      __builtin_ia32_pause();
#endif
    }
  }
}

size_t EpochDomain::retired_count() const {
  return retired_total_.load(std::memory_order_relaxed);
}

}  // namespace spin
