#include "src/rt/epoch.h"

#include "src/obs/trace.h"
#include "src/rt/panic.h"

namespace spin {
namespace {

struct TlsSlot {
  // One cached record per (thread, domain) pair would require a map; in
  // practice the process uses the global domain plus short-lived test
  // domains, so we cache the record keyed by domain pointer.
  EpochDomain* domain = nullptr;
  void* record = nullptr;
};

thread_local TlsSlot g_tls;

}  // namespace

EpochDomain& EpochDomain::Global() {
  static EpochDomain* domain = new EpochDomain();  // intentionally leaked
  return *domain;
}

EpochDomain::~EpochDomain() {
  // Free everything still retired; callers must have quiesced.
  for (auto& list : retired_) {
    for (const Retired& r : list) {
      r.deleter(r.ptr);
    }
    list.clear();
  }
  ThreadRecord* rec = records_.load(std::memory_order_acquire);
  while (rec != nullptr) {
    ThreadRecord* next = rec->next;
    delete rec;
    rec = next;
  }
  if (g_tls.domain == this) {
    g_tls = TlsSlot{};
  }
}

EpochDomain::ThreadRecord* EpochDomain::AcquireRecord() {
  if (g_tls.domain == this && g_tls.record != nullptr) {
    return static_cast<ThreadRecord*>(g_tls.record);
  }
  // Try to reuse a record abandoned by an exited thread.
  for (ThreadRecord* rec = records_.load(std::memory_order_acquire);
       rec != nullptr; rec = rec->next) {
    bool expected = false;
    if (rec->in_use.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
      g_tls.domain = this;
      g_tls.record = rec;
      return rec;
    }
  }
  auto* rec = new ThreadRecord();
  rec->in_use.store(true, std::memory_order_relaxed);
  ThreadRecord* head = records_.load(std::memory_order_relaxed);
  do {
    rec->next = head;
  } while (!records_.compare_exchange_weak(head, rec,
                                           std::memory_order_release,
                                           std::memory_order_relaxed));
  g_tls.domain = this;
  g_tls.record = rec;
  return rec;
}

void EpochDomain::Enter() {
  ThreadRecord* rec = AcquireRecord();
  if (rec->nesting++ > 0) {
    return;  // already pinned by an enclosing guard
  }
  rec->epoch.store(global_epoch_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  // The store above must be visible before any read of protected data, and
  // before a writer samples our epoch during TryAdvance.
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

void EpochDomain::Exit() {
  auto* rec = static_cast<ThreadRecord*>(g_tls.record);
  SPIN_DCHECK(rec != nullptr && rec->nesting > 0);
  if (--rec->nesting == 0) {
    rec->epoch.store(kIdle, std::memory_order_release);
  }
}

EpochDomain::Guard::Guard(EpochDomain& domain) : domain_(domain) {
  domain_.Enter();
}

EpochDomain::Guard::~Guard() { domain_.Exit(); }

void EpochDomain::Retire(void* p, void (*deleter)(void*)) {
  bool flush = false;
  {
    std::lock_guard<Spinlock> lock(retire_lock_);
    uint64_t e = global_epoch_.load(std::memory_order_relaxed);
    retired_[e % 3].push_back(Retired{p, deleter});
    flush = retired_total_.fetch_add(1, std::memory_order_relaxed) + 1 >=
            kFlushThreshold;
  }
  if (flush) {
    Flush();
  }
}

bool EpochDomain::TryAdvanceLocked() {
  uint64_t e = global_epoch_.load(std::memory_order_relaxed);
  for (ThreadRecord* rec = records_.load(std::memory_order_acquire);
       rec != nullptr; rec = rec->next) {
    uint64_t seen = rec->epoch.load(std::memory_order_acquire);
    if (seen != kIdle && seen != e) {
      return false;  // a reader is still in an older epoch
    }
  }
  global_epoch_.store(e + 1, std::memory_order_release);
  return true;
}

size_t EpochDomain::ReclaimLocked() {
  // Everything retired in epoch e is safe once the global epoch reaches e+2:
  // no reader pinned at e or e+1 can still reference it.
  uint64_t e = global_epoch_.load(std::memory_order_relaxed);
  if (e < 2) {
    return 0;
  }
  std::vector<Retired>& list = retired_[(e - 2) % 3];
  size_t n = list.size();
  for (const Retired& r : list) {
    r.deleter(r.ptr);
  }
  list.clear();
  retired_total_.fetch_sub(n, std::memory_order_relaxed);
  if (n > 0) {
    reclaimed_total_.fetch_add(n, std::memory_order_relaxed);
    obs::FlightRecorder::Global().Emit(obs::TraceKind::kEpochReclaim,
                                       "epoch", n);
  }
  return n;
}

size_t EpochDomain::Flush() {
  std::lock_guard<Spinlock> lock(retire_lock_);
  size_t freed = ReclaimLocked();
  if (TryAdvanceLocked()) {
    freed += ReclaimLocked();
  }
  return freed;
}

void EpochDomain::Synchronize() {
  // Advance the epoch twice, reclaiming after each advance. Items retired at
  // epoch e live in bucket e%3 and are freed when the epoch reaches e+2, so
  // two advances flush everything retired before the call. Reclaiming before
  // each advance preserves the invariant that the bucket about to become
  // "current" is empty. The caller must not hold a Guard on this domain.
  int advances = 0;
  while (advances < 2) {
    bool advanced = false;
    {
      std::lock_guard<Spinlock> lock(retire_lock_);
      ReclaimLocked();
      advanced = TryAdvanceLocked();
      if (advanced) {
        ReclaimLocked();
      }
    }
    if (advanced) {
      ++advances;
    } else {
#if defined(__x86_64__)
      __builtin_ia32_pause();
#endif
    }
  }
}

size_t EpochDomain::retired_count() const {
  return retired_total_.load(std::memory_order_relaxed);
}

}  // namespace spin
