// Epoch-based reclamation (EBR).
//
// The paper replaces an event's handler list "atomically with respect to event
// dispatch by using a single memory access to replace the old list with the
// new one" (§3). In SPIN the old list could be leaked or reclaimed lazily; in
// a long-running C++ library we must actually free retired dispatch tables and
// generated code, but only after every in-flight raise that might still be
// reading them has finished. Classic three-epoch EBR provides exactly that:
// raises are wrapped in an EpochDomain::Guard; installs retire the old table
// and it is freed two epoch advances later.
//
// Readers (raises) pay two uncontended thread-local atomic stores and one
// fence; writers (installs) pay a mutex, which matches the paper's model of
// rare reconfiguration and frequent dispatch.
//
// Multiple domains per thread: a sharded dispatcher gives every shard its
// own domain, and a handler on one shard may raise into another (or into a
// single-shard dispatcher on the global domain), nesting guards of
// *different* domains on one thread. Each thread therefore caches a small
// set of (domain, record) pairs keyed by a never-reused domain id, and a
// Guard pins the record it entered through, so exits always decrement the
// right domain's nesting count no matter how guards interleave. Records are
// never freed — a destroyed domain's records go to a global recycle pool —
// so a stale cache entry (dead domain, id mismatch) is detected without
// ever dereferencing it.
#ifndef SRC_RT_EPOCH_H_
#define SRC_RT_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/rt/spinlock.h"

namespace spin {

class EpochDomain {
 public:
  EpochDomain();
  ~EpochDomain();
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  // Process-wide domain shared by all dispatchers.
  static EpochDomain& Global();

  // RAII critical-section token. Nestable: inner guards piggyback on the
  // outermost one (a handler may itself raise events), including across
  // distinct domains — each guard pins the record it entered through.
  class Guard {
   public:
    explicit Guard(EpochDomain& domain);
    ~Guard();
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    EpochDomain& domain_;
    void* record_;  // ThreadRecord*, owned by (thread, domain)
  };

  // Schedules `p` to be destroyed with `deleter` once no critical section
  // that could observe it remains. Thread-safe.
  void Retire(void* p, void (*deleter)(void*));

  // Tries to advance the epoch and reclaim; returns objects freed. Called
  // automatically from Retire past a threshold; exposed for tests and for
  // the dispatcher's quiescent points.
  size_t Flush();

  // Blocks (spinning) until everything retired before the call is freed.
  // Requires that no raise currently on *this thread* holds a guard.
  void Synchronize();

  // Diagnostics.
  size_t retired_count() const;
  uint64_t epoch() const { return global_epoch_.load(std::memory_order_relaxed); }
  // Objects freed over the domain's lifetime. With retired_count(), exposes
  // reclamation lag to the metric exporter.
  uint64_t reclaimed_total() const {
    return reclaimed_total_.load(std::memory_order_relaxed);
  }

 private:
  struct ThreadRecord {
    std::atomic<uint64_t> epoch{kIdle};
    std::atomic<bool> in_use{false};
    uint32_t nesting = 0;  // accessed only by the owning thread
    ThreadRecord* next = nullptr;
  };

  struct Retired {
    void* ptr;
    void (*deleter)(void*);
  };

  static constexpr uint64_t kIdle = ~0ull;
  static constexpr size_t kFlushThreshold = 64;

  ThreadRecord* AcquireRecord();
  ThreadRecord* Enter();
  void Exit(ThreadRecord* rec);
  // Returns true if the epoch advanced. Caller holds retire_lock_.
  bool TryAdvanceLocked();
  size_t ReclaimLocked();

  // Never reused across domains; lets stale thread-local cache entries for
  // a destroyed domain be recognized without dereferencing their record.
  const uint64_t id_;

  std::atomic<ThreadRecord*> records_{nullptr};
  std::atomic<uint64_t> global_epoch_{0};
  mutable Spinlock retire_lock_;
  std::vector<Retired> retired_[3];
  std::atomic<size_t> retired_total_{0};
  std::atomic<uint64_t> reclaimed_total_{0};
};

}  // namespace spin

#endif  // SRC_RT_EPOCH_H_
