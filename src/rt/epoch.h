// Epoch-based reclamation (EBR).
//
// The paper replaces an event's handler list "atomically with respect to event
// dispatch by using a single memory access to replace the old list with the
// new one" (§3). In SPIN the old list could be leaked or reclaimed lazily; in
// a long-running C++ library we must actually free retired dispatch tables and
// generated code, but only after every in-flight raise that might still be
// reading them has finished. Classic three-epoch EBR provides exactly that:
// raises are wrapped in an EpochDomain::Guard; installs retire the old table
// and it is freed two epoch advances later.
//
// Readers (raises) pay two uncontended thread-local atomic stores and one
// fence; writers (installs) pay a mutex, which matches the paper's model of
// rare reconfiguration and frequent dispatch.
#ifndef SRC_RT_EPOCH_H_
#define SRC_RT_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/rt/spinlock.h"

namespace spin {

class EpochDomain {
 public:
  EpochDomain() = default;
  ~EpochDomain();
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  // Process-wide domain shared by all dispatchers.
  static EpochDomain& Global();

  // RAII critical-section token. Nestable: inner guards piggyback on the
  // outermost one (a handler may itself raise events).
  class Guard {
   public:
    explicit Guard(EpochDomain& domain);
    ~Guard();
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    EpochDomain& domain_;
  };

  // Schedules `p` to be destroyed with `deleter` once no critical section
  // that could observe it remains. Thread-safe.
  void Retire(void* p, void (*deleter)(void*));

  // Tries to advance the epoch and reclaim; returns objects freed. Called
  // automatically from Retire past a threshold; exposed for tests and for
  // the dispatcher's quiescent points.
  size_t Flush();

  // Blocks (spinning) until everything retired before the call is freed.
  // Requires that no raise currently on *this thread* holds a guard.
  void Synchronize();

  // Diagnostics.
  size_t retired_count() const;
  uint64_t epoch() const { return global_epoch_.load(std::memory_order_relaxed); }
  // Objects freed over the domain's lifetime. With retired_count(), exposes
  // reclamation lag to the metric exporter.
  uint64_t reclaimed_total() const {
    return reclaimed_total_.load(std::memory_order_relaxed);
  }

 private:
  struct ThreadRecord {
    std::atomic<uint64_t> epoch{kIdle};
    std::atomic<bool> in_use{false};
    uint32_t nesting = 0;  // accessed only by the owning thread
    ThreadRecord* next = nullptr;
  };

  struct Retired {
    void* ptr;
    void (*deleter)(void*);
  };

  static constexpr uint64_t kIdle = ~0ull;
  static constexpr size_t kFlushThreshold = 64;

  ThreadRecord* AcquireRecord();
  void Enter();
  void Exit();
  // Returns true if the epoch advanced. Caller holds retire_lock_.
  bool TryAdvanceLocked();
  size_t ReclaimLocked();

  std::atomic<ThreadRecord*> records_{nullptr};
  std::atomic<uint64_t> global_epoch_{0};
  mutable Spinlock retire_lock_;
  std::vector<Retired> retired_[3];
  std::atomic<size_t> retired_total_{0};
  std::atomic<uint64_t> reclaimed_total_{0};
};

}  // namespace spin

#endif  // SRC_RT_EPOCH_H_
