// Monotonic and cycle-granularity timing used by the benchmarks and the
// event profiler (Table 3 reproduction).
#ifndef SRC_RT_CLOCK_H_
#define SRC_RT_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace spin {

// Nanoseconds on the monotonic clock.
inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Raw timestamp counter. Only used for fine-grained deltas within one core;
// benchmarks prefer NowNs.
inline uint64_t Rdtsc() {
#if defined(__x86_64__)
  uint32_t lo = 0;
  uint32_t hi = 0;
  asm volatile("rdtsc" : "=a"(lo), "=d"(hi));
  return (static_cast<uint64_t>(hi) << 32) | lo;
#else
  return NowNs();
#endif
}

// A simple stopwatch accumulating elapsed nanoseconds across start/stop pairs.
class Stopwatch {
 public:
  void Start() { start_ = NowNs(); }
  void Stop() { total_ += NowNs() - start_; }
  uint64_t total_ns() const { return total_; }
  void Reset() { total_ = 0; }

 private:
  uint64_t start_ = 0;
  uint64_t total_ = 0;
};

}  // namespace spin

#endif  // SRC_RT_CLOCK_H_
