#include "src/rt/thread_pool.h"

#include <utility>

#include "src/rt/panic.h"

namespace spin {

ThreadPool::ThreadPool(size_t workers) {
  if (workers == 0) {
    workers = 2;
  }
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool();  // intentionally leaked
  return *pool;
}

void ThreadPool::Submit(std::function<void()> task, AsyncMode mode) {
  if (mode == AsyncMode::kSpawn) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      SPIN_ASSERT(!shutdown_);
      ++in_flight_;
    }
    std::thread([this, task = std::move(task)] {
      task();
      executed_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) {
        idle_.notify_all();
      }
    }).detach();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    SPIN_ASSERT(!shutdown_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  wake_.notify_one();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutdown with no work left
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    executed_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) {
        idle_.notify_all();
      }
    }
  }
}

void ThreadPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace spin
