#include "src/rt/thread_pool.h"

#include <utility>

#include "src/rt/panic.h"

namespace spin {

ThreadPool::ThreadPool(size_t workers) {
  if (workers == 0) {
    workers = 2;
  }
  queues_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  Drain();
  // Drain returns when in_flight_ hits zero, but a detached spawn thread
  // decrements in_flight_ *inside* FinishTask and then notifies idle_ —
  // both touch members of this object. Wait for each spawn thread's final
  // release store before destroying anything.
  while (spawn_live_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool();  // intentionally leaked
  return *pool;
}

void ThreadPool::Spawn(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    SPIN_ASSERT(!shutdown_);
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    spawn_live_.fetch_add(1, std::memory_order_relaxed);
  }
  std::thread([this, task = std::move(task)] {
    task();
    executed_.fetch_add(1, std::memory_order_relaxed);
    FinishTask();
    // Last touch of the pool: after this store the destructor may proceed.
    spawn_live_.fetch_sub(1, std::memory_order_release);
  }).detach();
}

void ThreadPool::Enqueue(size_t index, std::function<void()> task) {
  Queue& q = *queues_[index % queues_.size()];
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(q.mu);
    q.tasks.push_back(std::move(task));
    q.depth.fetch_add(1, std::memory_order_relaxed);
  }
  // seq_cst pairs with the sleeper's seq_cst recheck of queued_: either the
  // going-to-sleep worker observes our task, or we observe it sleeping.
  queued_.fetch_add(1, std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    // Lock so the notify cannot slip between a sleeper's recheck and its
    // wait; uncontended when no worker is going to sleep right now.
    { std::lock_guard<std::mutex> lock(mu_); }
    wake_.notify_one();
  }
}

void ThreadPool::Submit(std::function<void()> task, AsyncMode mode) {
  if (mode == AsyncMode::kSpawn) {
    Spawn(std::move(task));
    return;
  }
  Enqueue(next_queue_.fetch_add(1, std::memory_order_relaxed),
          std::move(task));
}

void ThreadPool::SubmitTo(size_t queue, std::function<void()> task,
                          AsyncMode mode) {
  if (mode == AsyncMode::kSpawn) {
    Spawn(std::move(task));
    return;
  }
  Enqueue(queue, std::move(task));
}

bool ThreadPool::TryPop(size_t index, std::function<void()>* task,
                        size_t* from) {
  const size_t n = queues_.size();
  Queue& own = *queues_[index];
  {
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      *task = std::move(own.tasks.front());
      own.tasks.pop_front();
      own.depth.fetch_sub(1, std::memory_order_relaxed);
      *from = index;
      return true;
    }
  }
  for (size_t j = 1; j < n; ++j) {
    size_t v = (index + j) % n;
    Queue& victim = *queues_[v];
    // Cheap unlocked peek; the locked re-check below is authoritative.
    if (victim.depth.load(std::memory_order_relaxed) == 0) {
      continue;
    }
    std::lock_guard<std::mutex> lock(victim.mu);
    if (victim.tasks.empty()) {
      continue;
    }
    *task = std::move(victim.tasks.back());
    victim.tasks.pop_back();
    victim.depth.fetch_sub(1, std::memory_order_relaxed);
    victim.stolen.fetch_add(1, std::memory_order_relaxed);
    steals_.fetch_add(1, std::memory_order_relaxed);
    *from = v;
    return true;
  }
  return false;
}

void ThreadPool::FinishTask() {
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Lock/unlock so a Drain caller between its predicate check and its
    // wait cannot miss the notification.
    { std::lock_guard<std::mutex> lock(mu_); }
    idle_.notify_all();
  }
}

void ThreadPool::WorkerLoop(size_t index) {
  while (true) {
    std::function<void()> task;
    size_t from = index;
    if (TryPop(index, &task, &from)) {
      queued_.fetch_sub(1, std::memory_order_relaxed);
      task();
      task = nullptr;  // release captures before accounting the finish
      executed_.fetch_add(1, std::memory_order_relaxed);
      queues_[from]->executed.fetch_add(1, std::memory_order_relaxed);
      FinishTask();
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    wake_.wait(lock, [this] {
      return shutdown_ || queued_.load(std::memory_order_seq_cst) > 0;
    });
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
    if (shutdown_ && queued_.load(std::memory_order_relaxed) == 0) {
      return;
    }
  }
}

void ThreadPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

size_t ThreadPool::pending() const {
  return in_flight_.load(std::memory_order_relaxed);
}

size_t ThreadPool::queue_depth() const {
  size_t total = 0;
  for (const auto& q : queues_) {
    total += q->depth.load(std::memory_order_relaxed);
  }
  return total;
}

size_t ThreadPool::queue_depth(size_t queue) const {
  return queues_[queue % queues_.size()]->depth.load(
      std::memory_order_relaxed);
}

uint64_t ThreadPool::executed(size_t queue) const {
  return queues_[queue % queues_.size()]->executed.load(
      std::memory_order_relaxed);
}

uint64_t ThreadPool::steals() const {
  return steals_.load(std::memory_order_relaxed);
}

uint64_t ThreadPool::steals(size_t queue) const {
  return queues_[queue % queues_.size()]->stolen.load(
      std::memory_order_relaxed);
}

}  // namespace spin
