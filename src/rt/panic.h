// Panic and assertion support for the SPIN event-system reproduction.
//
// The original SPIN kernel halted on internal inconsistencies; we abort the
// process. SPIN_ASSERT is always compiled in (these are systems-level
// invariants, not debugging aids); SPIN_DCHECK compiles out in NDEBUG builds.
#ifndef SRC_RT_PANIC_H_
#define SRC_RT_PANIC_H_

namespace spin {

// Prints "panic: <message>" with source location to stderr and aborts.
[[noreturn]] void PanicImpl(const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace spin

#define SPIN_PANIC(...) ::spin::PanicImpl(__FILE__, __LINE__, __VA_ARGS__)

#define SPIN_ASSERT(cond)                                  \
  do {                                                     \
    if (!(cond)) {                                         \
      SPIN_PANIC("assertion failed: %s", #cond);           \
    }                                                      \
  } while (0)

#define SPIN_ASSERT_MSG(cond, ...)                         \
  do {                                                     \
    if (!(cond)) {                                         \
      SPIN_PANIC(__VA_ARGS__);                             \
    }                                                      \
  } while (0)

#ifdef NDEBUG
#define SPIN_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define SPIN_DCHECK(cond) SPIN_ASSERT(cond)
#endif

#endif  // SRC_RT_PANIC_H_
