// EPHEMERAL handler termination (§2.6 "Runaway handlers").
//
// SPIN terminated over-budget EPHEMERAL handlers preemptively; the compiler
// guaranteed safety by confining EPHEMERAL code. In user-space C++ we use
// cooperative termination: the dispatcher opens an EphemeralScope with the
// event's time budget around the handler, and the handler (or any micro-op
// style helper it calls) polls CheckTermination(), which throws
// TerminatedError once the deadline passes. The dispatcher catches the
// error, counts the handler as aborted, and continues with the remaining
// handlers — the same observable behaviour as SPIN's localized termination.
#ifndef SRC_CORE_EPHEMERAL_H_
#define SRC_CORE_EPHEMERAL_H_

#include <cstdint>

namespace spin {

class EphemeralScope {
 public:
  // deadline_ns is an absolute NowNs() deadline; 0 means "no budget".
  explicit EphemeralScope(uint64_t deadline_ns);
  ~EphemeralScope();
  EphemeralScope(const EphemeralScope&) = delete;
  EphemeralScope& operator=(const EphemeralScope&) = delete;

 private:
  uint64_t saved_deadline_;
};

// True while executing under an EphemeralScope.
bool InEphemeralScope();

// Throws TerminatedError if the enclosing scope's deadline has passed.
// No-op outside a scope.
void CheckTermination();

}  // namespace spin

#endif  // SRC_CORE_EPHEMERAL_H_
