// Error types surfaced by the dispatcher.
//
// SPIN used Modula-3 exceptions; we use a small hierarchy rooted at
// DispatchError. Raise-path errors (NoHandlerError) correspond to the §2.3
// rule that "in case no handler runs, a runtime exception is thrown at the
// point the event is raised"; install-path errors carry the typecheck or
// authorization failure.
#ifndef SRC_CORE_ERRORS_H_
#define SRC_CORE_ERRORS_H_

#include <stdexcept>
#include <string>

#include "src/types/typecheck.h"

namespace spin {

class DispatchError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Raised (thrown) when an event with no default handler fires no handlers.
class NoHandlerError : public DispatchError {
 public:
  explicit NoHandlerError(const std::string& event_name)
      : DispatchError("no handler fired for event " + event_name) {}
};

enum class InstallStatus {
  kTypecheckFailed,
  kNotAuthorized,
  kQuotaExceeded,
  kBadOrderingReference,
  kAsyncByRef,           // async handler/event on a by-ref event (§2.6)
  kEphemeralRequired,    // event's authority demands EPHEMERAL handlers
  kInvalidMicroProgram,
  kNotAuthority,         // caller could not demonstrate authority (§2.5)
  kBindingInactive,
};

const char* InstallStatusName(InstallStatus status);

class InstallError : public DispatchError {
 public:
  InstallError(InstallStatus status, const std::string& detail)
      : DispatchError(std::string(InstallStatusName(status)) +
                      (detail.empty() ? "" : ": " + detail)),
        status_(status),
        typecheck_(TypecheckStatus::kOk) {}
  InstallError(TypecheckStatus typecheck, const std::string& detail)
      : DispatchError(std::string(TypecheckStatusName(typecheck)) +
                      (detail.empty() ? "" : ": " + detail)),
        status_(InstallStatus::kTypecheckFailed),
        typecheck_(typecheck) {}

  InstallStatus status() const { return status_; }
  TypecheckStatus typecheck() const { return typecheck_; }

 private:
  InstallStatus status_;
  TypecheckStatus typecheck_;
};

// Misuse of asynchronous raising (result-returning async event without a
// default handler, or Raise() on an event configured fully asynchronous
// with a non-void result).
class AsyncError : public DispatchError {
 public:
  using DispatchError::DispatchError;
};

// Thrown into an EPHEMERAL handler whose time budget expired (§2.6). Only
// EPHEMERAL handlers may observe it; the dispatcher absorbs it.
class TerminatedError : public DispatchError {
 public:
  TerminatedError() : DispatchError("ephemeral handler terminated") {}
};

// --- Remote dispatch (src/remote) ------------------------------------------
//
// When a binding is a proxy for handlers on another host, a raise can fail
// in ways a local dispatch cannot: the signature may not be marshalable,
// the remote side may never answer, the remote binding may be gone, or the
// remote handler may itself have thrown. The error type lives in core so
// that raisers can catch it without depending on the remote layer, exactly
// as they catch NoHandlerError without depending on any handler.
enum class RemoteStatus : uint8_t {
  kUnmarshalable,     // signature rejected at proxy-install time
  kTimeout,           // no reply within the retry budget
  kDead,              // remote binding uninstalled / event unknown
  kRemoteException,   // the remote handler threw; message carried back
  kProtocol,          // malformed or mismatched wire traffic
  kDenied,            // the exporter's authorizer refused the remote install
  kRevoked,           // the capability token backing the binding was revoked
  kBadGuard,          // a wire-received imposed guard failed admission
                      // verification (the BindReply carried a program the
                      // micro::Verify pass refused)
};

const char* RemoteStatusName(RemoteStatus status);

class RemoteError : public DispatchError {
 public:
  RemoteError(RemoteStatus status, const std::string& detail)
      : DispatchError(std::string(RemoteStatusName(status)) +
                      (detail.empty() ? "" : ": " + detail)),
        status_(status) {}

  RemoteStatus status() const { return status_; }

 private:
  RemoteStatus status_;
};

}  // namespace spin

#endif  // SRC_CORE_ERRORS_H_
