// Error types surfaced by the dispatcher.
//
// SPIN used Modula-3 exceptions; we use a small hierarchy rooted at
// DispatchError. Raise-path errors (NoHandlerError) correspond to the §2.3
// rule that "in case no handler runs, a runtime exception is thrown at the
// point the event is raised"; install-path errors carry the typecheck or
// authorization failure.
#ifndef SRC_CORE_ERRORS_H_
#define SRC_CORE_ERRORS_H_

#include <stdexcept>
#include <string>

#include "src/types/typecheck.h"

namespace spin {

class DispatchError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Raised (thrown) when an event with no default handler fires no handlers.
class NoHandlerError : public DispatchError {
 public:
  explicit NoHandlerError(const std::string& event_name)
      : DispatchError("no handler fired for event " + event_name) {}
};

enum class InstallStatus {
  kTypecheckFailed,
  kNotAuthorized,
  kQuotaExceeded,
  kBadOrderingReference,
  kAsyncByRef,           // async handler/event on a by-ref event (§2.6)
  kEphemeralRequired,    // event's authority demands EPHEMERAL handlers
  kInvalidMicroProgram,
  kNotAuthority,         // caller could not demonstrate authority (§2.5)
  kBindingInactive,
};

const char* InstallStatusName(InstallStatus status);

class InstallError : public DispatchError {
 public:
  InstallError(InstallStatus status, const std::string& detail)
      : DispatchError(std::string(InstallStatusName(status)) +
                      (detail.empty() ? "" : ": " + detail)),
        status_(status),
        typecheck_(TypecheckStatus::kOk) {}
  InstallError(TypecheckStatus typecheck, const std::string& detail)
      : DispatchError(std::string(TypecheckStatusName(typecheck)) +
                      (detail.empty() ? "" : ": " + detail)),
        status_(InstallStatus::kTypecheckFailed),
        typecheck_(typecheck) {}

  InstallStatus status() const { return status_; }
  TypecheckStatus typecheck() const { return typecheck_; }

 private:
  InstallStatus status_;
  TypecheckStatus typecheck_;
};

// Misuse of asynchronous raising (result-returning async event without a
// default handler, or Raise() on an event configured fully asynchronous
// with a non-void result).
class AsyncError : public DispatchError {
 public:
  using DispatchError::DispatchError;
};

// Thrown into an EPHEMERAL handler whose time budget expired (§2.6). Only
// EPHEMERAL handlers may observe it; the dispatcher absorbs it.
class TerminatedError : public DispatchError {
 public:
  TerminatedError() : DispatchError("ephemeral handler terminated") {}
};

}  // namespace spin

#endif  // SRC_CORE_ERRORS_H_
