// Raise-source identity and the shard hash ("RSS for events").
//
// A sharded dispatcher partitions its per-event dispatch state into N
// replicas the way a multi-queue NIC partitions one logical ring: traffic
// is spread by hashing a flow identity, and each queue owns its state so
// the hot path never crosses a shard boundary. Our flow identity is the
// *raise source* — who is raising, not what is raised:
//
//   - a kernel strand (the scheduler scopes Strand.Run and everything the
//     quantum raises to the strand id),
//   - a remote connection (the exporter scopes inbound dispatch to the
//     capability token of the binding it arrived on),
//   - a simulated host, or any other identity a subsystem wants to pin,
//   - falling back to a per-thread id, so plain multi-threaded raisers
//     spread across shards with no annotation at all.
//
// The current source is a thread-local; RaiseSourceScope sets and restores
// it RAII-style and nests (an inner scope shadows the outer one). Source 0
// means "unset" and selects the thread fallback.
//
// ShardFor() finalizes the source with the splitmix64 mixer and maps the
// high 32 bits onto [0, shards) with a multiply-shift (no divide on the
// raise path). The seeded chi-squared distribution test in
// tests/core_shard_hash_test.cc fails loudly if this ever skews.
#ifndef SRC_CORE_SHARD_H_
#define SRC_CORE_SHARD_H_

#include <atomic>
#include <cstdint>

namespace spin {

// Tag space for raise sources, so distinct id spaces (strand ids, tokens,
// host ids, thread ids) cannot collide into the same source value.
enum class SourceKind : uint8_t {
  kThread = 1,      // fallback: the raising thread
  kStrand = 2,      // kernel strand id
  kConnection = 3,  // remote binding (capability token)
  kHost = 4,        // simulated host
};

// Builds a nonzero source value from a kind tag and an id.
inline uint64_t MakeRaiseSource(SourceKind kind, uint64_t id) {
  return (static_cast<uint64_t>(kind) << 56) | (id & 0x00ffffffffffffffull);
}

namespace shard_internal {

inline thread_local uint64_t g_raise_source = 0;

inline uint64_t ThreadSourceSlow() {
  static std::atomic<uint64_t> next{1};
  return MakeRaiseSource(SourceKind::kThread,
                         next.fetch_add(1, std::memory_order_relaxed));
}

inline uint64_t ThreadSource() {
  thread_local uint64_t id = ThreadSourceSlow();
  return id;
}

}  // namespace shard_internal

// The identity the dispatcher hashes to pick a shard: the innermost
// RaiseSourceScope, or a stable per-thread id when none is active.
inline uint64_t CurrentRaiseSource() {
  uint64_t src = shard_internal::g_raise_source;
  return src != 0 ? src : shard_internal::ThreadSource();
}

// Pins the raise source for the current thread's dynamic extent. Passing 0
// clears any outer scope (restoring the per-thread fallback).
class RaiseSourceScope {
 public:
  explicit RaiseSourceScope(uint64_t source)
      : saved_(shard_internal::g_raise_source) {
    shard_internal::g_raise_source = source;
  }
  ~RaiseSourceScope() { shard_internal::g_raise_source = saved_; }
  RaiseSourceScope(const RaiseSourceScope&) = delete;
  RaiseSourceScope& operator=(const RaiseSourceScope&) = delete;

 private:
  uint64_t saved_;
};

// splitmix64 finalizer: full-avalanche mix so dense id spaces (strand 1, 2,
// 3, ...) spread uniformly.
inline uint64_t ShardMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Maps a source onto [0, shards) via multiply-shift on the mixed high bits.
inline uint32_t ShardFor(uint64_t source, uint32_t shards) {
  uint64_t h = ShardMix(source) >> 32;
  return static_cast<uint32_t>((h * shards) >> 32);
}

}  // namespace spin

#endif  // SRC_CORE_SHARD_H_
