// Dispatch tables and the event runtime object.
//
// Each event owns an immutable DispatchTable describing how a raise is
// executed. Handler installation builds a fresh table and publishes it with
// a single atomic store (§3: "handler lists are updated atomically with
// respect to event dispatch by using a single memory access"); the old
// table — including any generated code it owns — is reclaimed through
// epoch-based reclamation once concurrent raises have drained.
//
// When the owning dispatcher is sharded (Config::shards > 1), the event
// holds one table replica per shard. A raise hashes its source (see
// src/core/shard.h) to a shard and reads only that shard's replica under
// that shard's epoch domain; installs publish a fresh replica to every
// shard, each with its own copy of the generated stub so the unrolled
// dispatch loop stays warm in each shard's I-cache. With one shard the
// layout and the raise path are exactly the historical single-replica ones.
#ifndef SRC_CORE_DISPATCH_STATE_H_
#define SRC_CORE_DISPATCH_STATE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/codegen/frame.h"
#include "src/codegen/stub_compiler.h"
#include "src/core/binding.h"
#include "src/obs/obs.h"
#include "src/rt/thread_pool.h"
#include "src/types/module.h"
#include "src/types/signature.h"

namespace spin {

class Dispatcher;
class EventBase;

using ResultPolicy = codegen::ResultPolicy;

// Custom result handler (§2.3 "Handling results"): called once per fired
// handler result; returns the new running result. `index` is the count of
// previously fired handlers (0 for the first).
using ResultFold = uint64_t (*)(void* ctx, uint64_t result, uint64_t current,
                                uint32_t index);

struct DispatchTable {
  // Handlers in dispatch order. Sync handlers execute inline (via the stub
  // when one was generated); async handlers have their guards evaluated
  // inline and their bodies scheduled on the pool (§2.6).
  std::vector<BindingHandle> sync_bindings;
  std::vector<BindingHandle> async_bindings;
  BindingHandle default_handler;  // runs only when nothing else fired

  ResultPolicy policy = ResultPolicy::kNone;
  ResultFold custom_fold = nullptr;
  void* custom_fold_ctx = nullptr;
  bool returns_value = false;
  bool result_is_bool = false;

  uint64_t ephemeral_budget_ns = 0;  // relative budget for EPHEMERAL handlers

  // Generated dispatch routine covering sync_bindings (null => interpret).
  std::unique_ptr<codegen::CompiledStub> stub;

  AsyncMode async_mode = AsyncMode::kPooled;
  ThreadPool* pool = nullptr;

  // Which shard this replica serves: async work it schedules goes to the
  // pool queue of the same index, keeping a source's async handlers behind
  // its own outbox. Always 0 for single-shard dispatchers.
  uint32_t shard = 0;

  // Lazy-compile mode: this table is interpreted, but the event should be
  // promoted to a compiled table once it proves hot.
  bool lazy_pending = false;

  // The dispatch kind raises through this table are accounted under. When
  // profiling or tracing suppresses the intrinsic-bypass, this still says
  // kDirect: metrics classify by the event's production dispatch mode.
  obs::DispatchKind obs_kind = obs::DispatchKind::kInterp;

  uint32_t version = 0;

  uint64_t InitialResult() const {
    return policy == ResultPolicy::kAnd ? ~0ull : 0ull;
  }
};

// Authorization (§2.5). The event's authority installs an AuthorizerFn;
// the dispatcher calls back on every operation that manipulates the event's
// bindings. The authorizer may impose additional guards on the candidate
// binding before approving.
enum class AuthOp : uint8_t {
  kInstall,
  kUninstall,
  kImposeGuard,
  kSetDefault,
  kSetResultHandler,
  kLink,  // used by the dynamic linker substrate
};

struct AuthRequest {
  AuthOp op;
  EventBase* event = nullptr;
  Binding* binding = nullptr;     // candidate (kInstall) or target
  const Module* requestor = nullptr;
  void* credentials = nullptr;    // opaque reference for richer protocols

  // Valid during kInstall: adds an imposed guard to the candidate binding.
  void ImposeGuard(GuardClause guard);

  // Valid during kInstall: applies an execution property to the candidate —
  // "it can allow the request, and possibly apply some execution property,
  // such as ordering constraints, onto the handler to ensure that
  // previously installed handlers continue to operate as expected" (§2.5).
  void SetOrder(Order order);
};

using AuthorizerFn = bool (*)(AuthRequest& request, void* ctx);

// The runtime object behind every event name. Typed Event<Sig> wraps it.
class EventBase {
 public:
  EventBase(std::string name, ProcSig sig, const Module* authority,
            Dispatcher* owner);
  virtual ~EventBase();
  EventBase(const EventBase&) = delete;
  EventBase& operator=(const EventBase&) = delete;

  const std::string& name() const { return name_; }
  const ProcSig& sig() const { return sig_; }
  const Module* authority() const { return authority_; }
  Dispatcher& owner() const { return *owner_; }

  // Dispatches `frame` against the current table. The typed Raise wrappers
  // pack arguments before and unpack results after.
  void RaiseErased(RaiseFrame& frame);

  // Asynchronous raise (§2.6): copies the packed arguments and schedules the
  // whole dispatch on the pool; the raiser proceeds without blocking.
  // NoHandlerError inside the detached dispatch is absorbed.
  void RaiseAsyncErased(const RaiseFrame& frame);

  // The single-intrinsic-handler fast path: non-null when the event is a
  // plain procedure call (Figure 1's degenerate case).
  void* direct_fn() const {
    return direct_fn_.load(std::memory_order_acquire);
  }

  bool async_event() const {
    return async_event_.load(std::memory_order_acquire);
  }

  // True when a default handler is installed (used by the async-raise rule
  // for result-returning events, §2.6).
  bool has_default_handler() const;

  // Installed-handler statistics for diagnostics and the Table 3 profile.
  // Counts and elapsed time are sourced from the observability histograms
  // (src/obs), which accumulate whenever the owner is profiling or the
  // flight recorder is enabled. All accumulation is per-stripe relaxed
  // atomics, so concurrent raises never tear and reset is race-safe.
  size_t handler_count() const;
  size_t guard_count() const;
  uint64_t raise_count() const { return metrics_->TotalCount(); }
  uint64_t raise_ns() const { return metrics_->TotalSumNs(); }
  void ResetStats() { metrics_->Reset(); }

  // Latency distributions per dispatch kind (raise-side instrumentation).
  obs::EventMetrics& metrics() const { return *metrics_; }
  // The event's name as an interned C-string, stable for the process
  // lifetime (used by trace records).
  const char* obs_name() const { return obs_name_; }

 private:
  friend class Dispatcher;

  std::string name_;
  ProcSig sig_;
  const Module* authority_;
  Dispatcher* owner_;

  // Shard 0's table replica lives inline (the whole state of a single-shard
  // event); replicas for shards 1..N-1 live in extra_tables_, one cache
  // line each so raises on different shards never false-share.
  std::atomic<DispatchTable*> table_{nullptr};
  struct alignas(64) TableSlot {
    std::atomic<DispatchTable*> table{nullptr};
  };
  std::unique_ptr<TableSlot[]> extra_tables_;  // null when owner has 1 shard

  std::atomic<DispatchTable*>& table_slot(uint32_t shard) {
    return shard == 0 ? table_ : extra_tables_[shard - 1].table;
  }

  std::atomic<void*> direct_fn_{nullptr};
  std::atomic<bool> async_event_{false};

  // Install-side state, all guarded by the dispatcher's mutex.
  std::vector<BindingHandle> order_list;  // dispatch order
  BindingHandle intrinsic_binding;
  BindingHandle default_binding;
  ResultPolicy policy_ = ResultPolicy::kLast;
  ResultFold custom_fold_ = nullptr;
  void* custom_fold_ctx_ = nullptr;
  AuthorizerFn authorizer_ = nullptr;
  void* authorizer_ctx_ = nullptr;
  bool require_ephemeral_ = false;
  uint64_t ephemeral_budget_ns_ = 0;
  bool force_interp_ = false;  // per-event JIT opt-out (ablations)
  uint32_t version_ = 0;

  // Raise-side statistics (updated when the owner profiles or traces).
  std::shared_ptr<obs::EventMetrics> metrics_;
  const char* obs_name_ = nullptr;

  // Lazy-compile promotion state.
  std::atomic<uint32_t> lazy_raises_{0};
  bool hot_ = false;  // guarded by the dispatcher's mutex
};

// Executes one dispatch against `table`. Declared here (implemented in
// dispatch_state.cc) so both the raise path and the async redispatch share
// it.
void ExecuteTable(EventBase& event, const DispatchTable& table,
                  RaiseFrame& frame);

// Evaluates one binding's guards against the argument slots (used inline by
// the interpreter and for async bindings before scheduling).
bool EvalGuards(const Binding& binding, const uint64_t* slots);

// Runs one binding's handler (interpreted path), honoring EPHEMERAL
// termination. Returns false if the handler was terminated.
bool RunHandler(const Binding& binding, uint64_t* slots, uint64_t* result,
                uint64_t deadline_ns);

}  // namespace spin

#endif  // SRC_CORE_DISPATCH_STATE_H_
