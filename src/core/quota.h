// Handler memory accounting (§2.6 "Too many handlers").
//
// "An extension could exhaust the system's memory by installing a large
// number of handlers on an event. Presently, SPIN denies additional
// installations when memory is low, relying on individual authorizers to
// locally enforce restrictions." We do the same, with bookkeeping precise
// enough to test: every binding (and its guards and generated code share)
// is charged to its owning module; installs that would exceed the
// per-module budget are denied with kQuotaExceeded.
#ifndef SRC_CORE_QUOTA_H_
#define SRC_CORE_QUOTA_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/rt/spinlock.h"
#include "src/types/module.h"

namespace spin {

class QuotaManager {
 public:
  explicit QuotaManager(size_t per_module_limit)
      : limit_(per_module_limit) {}

  // Attempts to charge `bytes` to `module` (nullptr charges the anonymous
  // account). Returns false — without charging — if the module would exceed
  // its budget.
  bool Charge(const Module* module, size_t bytes) {
    std::lock_guard<Spinlock> lock(mu_);
    uint64_t key = Key(module);
    size_t& used = usage_[key];
    if (used + bytes > limit_) {
      return false;
    }
    used += bytes;
    if (names_.find(key) == names_.end()) {
      names_[key] = module == nullptr ? "anonymous" : module->name();
    }
    return true;
  }

  void Release(const Module* module, size_t bytes) {
    std::lock_guard<Spinlock> lock(mu_);
    size_t& used = usage_[Key(module)];
    used = bytes > used ? 0 : used - bytes;
  }

  size_t Usage(const Module* module) const {
    std::lock_guard<Spinlock> lock(mu_);
    auto it = usage_.find(Key(module));
    return it == usage_.end() ? 0 : it->second;
  }

  // Per-module usage, labeled with the module name recorded at first
  // charge ("anonymous" for the nullptr account). For metric export.
  std::vector<std::pair<std::string, size_t>> Snapshot() const {
    std::lock_guard<Spinlock> lock(mu_);
    std::vector<std::pair<std::string, size_t>> out;
    out.reserve(usage_.size());
    for (const auto& [key, used] : usage_) {
      auto it = names_.find(key);
      out.emplace_back(it == names_.end() ? "anonymous" : it->second, used);
    }
    return out;
  }

  size_t limit() const { return limit_; }
  void SetLimit(size_t limit) {
    std::lock_guard<Spinlock> lock(mu_);
    limit_ = limit;
  }

 private:
  static uint64_t Key(const Module* module) {
    return module == nullptr ? 0 : module->id();
  }

  mutable Spinlock mu_;
  std::unordered_map<uint64_t, size_t> usage_;
  std::unordered_map<uint64_t, std::string> names_;
  size_t limit_;
};

}  // namespace spin

#endif  // SRC_CORE_QUOTA_H_
