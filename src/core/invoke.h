// Typed invoker generation.
//
// The interpreter's counterpart to the generated stub's direct calls: given
// the event's signature and the installed procedure's signature, these
// templates produce a C-ABI invoker that unpacks argument slots from the
// RaiseFrame and calls the procedure with its true C++ types. The zip of
// event parameters against procedure parameters implements the §2.4 rules
// in the type system:
//   - identical parameter: unpack by value (or deref the stored pointer for
//     event-level VAR parameters),
//   - filter widening (event by-value T, procedure T&): bind the reference
//     to the argument slot itself — the copy the dispatcher made — so the
//     filter's mutation is seen by later handlers but not by the raiser.
#ifndef SRC_CORE_INVOKE_H_
#define SRC_CORE_INVOKE_H_

#include <cstdint>
#include <type_traits>
#include <utility>

#include "src/types/signature.h"

namespace spin {

template <typename EArg, typename FArg>
struct ArgAccess {
  static_assert(std::is_same_v<EArg, FArg>,
                "handler parameter must match the event's (or widen a "
                "by-value parameter to a reference when installed as a "
                "filter)");
  static FArg Get(uint64_t* slot) { return SlotCodec<FArg>::Unpack(*slot); }
};

// Filter widening: the reference binds to the argument copy in the frame.
// The build uses -fno-strict-aliasing (kernel discipline), making the slot
// reinterpretation well-defined in practice for the 8-byte parameter
// classes the dispatcher admits.
template <typename T>
struct ArgAccess<T, T&> {
  static T& Get(uint64_t* slot) { return *reinterpret_cast<T*>(slot); }
};

template <typename R>
uint64_t PackResult(R value) {
  return SlotCodec<R>::Pack(value);
}

// Handler invoker: procedure signature FSig matched against event EventSig.
template <typename EventSig, typename FSig>
struct NativeInvoke;

template <typename R, typename... EA, typename R2, typename... FA>
struct NativeInvoke<R(EA...), R2(FA...)> {
  static_assert(sizeof...(EA) == sizeof...(FA),
                "handler arity must match the event");

  static uint64_t Call(void* fn, void* /*closure*/, uint64_t* slots) {
    return CallImpl(fn, slots, std::index_sequence_for<FA...>{});
  }

 private:
  template <size_t... I>
  static uint64_t CallImpl(void* fn, uint64_t* slots,
                           std::index_sequence<I...>) {
    auto* f = reinterpret_cast<R2 (*)(FA...)>(fn);
    if constexpr (std::is_void_v<R2>) {
      f(ArgAccess<EA, FA>::Get(&slots[I])...);
      return 0;
    } else {
      return PackResult<R2>(f(ArgAccess<EA, FA>::Get(&slots[I])...));
    }
  }
};

// Handler invoker with a leading closure parameter (§2.1: "if the handler
// is installed with a closure, the closure is passed as an additional
// argument").
template <typename EventSig, typename FSig>
struct NativeInvokeClosure;

template <typename R, typename... EA, typename R2, typename C, typename... FA>
struct NativeInvokeClosure<R(EA...), R2(C*, FA...)> {
  static_assert(sizeof...(EA) == sizeof...(FA),
                "handler arity must match the event plus one closure");

  static uint64_t Call(void* fn, void* closure, uint64_t* slots) {
    return CallImpl(fn, closure, slots, std::index_sequence_for<FA...>{});
  }

 private:
  template <size_t... I>
  static uint64_t CallImpl(void* fn, void* closure, uint64_t* slots,
                           std::index_sequence<I...>) {
    auto* f = reinterpret_cast<R2 (*)(C*, FA...)>(fn);
    if constexpr (std::is_void_v<R2>) {
      f(static_cast<C*>(closure), ArgAccess<EA, FA>::Get(&slots[I])...);
      return 0;
    } else {
      return PackResult<R2>(f(static_cast<C*>(closure),
                              ArgAccess<EA, FA>::Get(&slots[I])...));
    }
  }
};

// Guard invokers: guards receive exactly the event's parameters (§2.4) and
// never widen, so plain unpacking suffices.
template <typename GSig>
struct GuardInvoke;

template <typename... GA>
struct GuardInvoke<bool(GA...)> {
  static bool Call(void* fn, void* /*closure*/, const uint64_t* slots) {
    return CallImpl(fn, slots, std::index_sequence_for<GA...>{});
  }

 private:
  template <size_t... I>
  static bool CallImpl(void* fn, const uint64_t* slots,
                       std::index_sequence<I...>) {
    auto* f = reinterpret_cast<bool (*)(GA...)>(fn);
    return f(SlotCodec<GA>::Unpack(slots[I])...);
  }
};

template <typename GSig>
struct GuardInvokeClosure;

template <typename C, typename... GA>
struct GuardInvokeClosure<bool(C*, GA...)> {
  static bool Call(void* fn, void* closure, const uint64_t* slots) {
    return CallImpl(fn, closure, slots, std::index_sequence_for<GA...>{});
  }

 private:
  template <size_t... I>
  static bool CallImpl(void* fn, void* closure, const uint64_t* slots,
                       std::index_sequence<I...>) {
    auto* f = reinterpret_cast<bool (*)(C*, GA...)>(fn);
    return f(static_cast<C*>(closure), SlotCodec<GA>::Unpack(slots[I])...);
  }
};

}  // namespace spin

#endif  // SRC_CORE_INVOKE_H_
