#include "src/core/errors.h"

namespace spin {

const char* InstallStatusName(InstallStatus status) {
  switch (status) {
    case InstallStatus::kTypecheckFailed:
      return "typecheck failed";
    case InstallStatus::kNotAuthorized:
      return "operation denied by the event's authorizer";
    case InstallStatus::kQuotaExceeded:
      return "handler memory quota exceeded";
    case InstallStatus::kBadOrderingReference:
      return "ordering constraint references a binding on another event";
    case InstallStatus::kAsyncByRef:
      return "asynchronous execution is illegal for by-ref events";
    case InstallStatus::kEphemeralRequired:
      return "event requires EPHEMERAL handlers";
    case InstallStatus::kInvalidMicroProgram:
      return "micro-program failed validation";
    case InstallStatus::kNotAuthority:
      return "caller is not the event's authority";
    case InstallStatus::kBindingInactive:
      return "binding is no longer installed";
  }
  return "<bad>";
}

const char* RemoteStatusName(RemoteStatus status) {
  switch (status) {
    case RemoteStatus::kUnmarshalable:
      return "signature is not marshalable for remote dispatch";
    case RemoteStatus::kTimeout:
      return "remote raise timed out";
    case RemoteStatus::kDead:
      return "remote binding is gone";
    case RemoteStatus::kRemoteException:
      return "remote handler threw";
    case RemoteStatus::kProtocol:
      return "remote dispatch protocol error";
    case RemoteStatus::kDenied:
      return "remote install denied by authorizer";
    case RemoteStatus::kRevoked:
      return "remote binding capability revoked";
    case RemoteStatus::kBadGuard:
      return "imposed guard failed admission verification";
  }
  return "<bad>";
}

}  // namespace spin
