#include "src/core/dispatch_state.h"

#include <array>
#include <optional>

#include "src/core/dispatcher.h"
#include "src/core/ephemeral.h"
#include "src/core/errors.h"
#include "src/core/shard.h"
#include "src/micro/interp.h"
#include "src/obs/trace.h"
#include "src/obs/watchdog.h"
#include "src/rt/clock.h"
#include "src/rt/epoch.h"
#include "src/rt/panic.h"

namespace spin {
namespace {

// Builds the argument view a micro-program sees: closure (if any) followed
// by the event arguments.
struct MicroArgs {
  std::array<uint64_t, kMaxEventArgs + 1> storage;
  const uint64_t* data;
  int count;

  MicroArgs(const uint64_t* slots, int num_args, bool closure_form,
            void* closure) {
    if (closure_form) {
      storage[0] = reinterpret_cast<uintptr_t>(closure);
      for (int i = 0; i < num_args; ++i) {
        storage[i + 1] = slots[i];
      }
      data = storage.data();
      count = num_args + 1;
    } else {
      data = slots;
      count = num_args;
    }
  }
};

uint64_t Fold(const DispatchTable& table, uint64_t result, uint64_t current,
              uint32_t index) {
  if (table.custom_fold != nullptr) {
    return table.custom_fold(table.custom_fold_ctx, result, current, index);
  }
  switch (table.policy) {
    case ResultPolicy::kNone:
    case ResultPolicy::kLast:
      return result;
    case ResultPolicy::kOr:
      return current | result;
    case ResultPolicy::kAnd:
      return current & result;
    case ResultPolicy::kSum:
      return current + result;
  }
  return result;
}

void ScheduleAsyncBinding(const DispatchTable& table,
                          const BindingHandle& binding,
                          const RaiseFrame& frame, int num_args,
                          const obs::TraceContext& span_ctx,
                          uint64_t enqueue_ns) {
  std::array<uint64_t, kMaxEventArgs> slots{};
  for (int i = 0; i < num_args; ++i) {
    slots[i] = frame.args[i];
  }
  uint64_t budget = table.ephemeral_budget_ns;
  uint32_t shard = table.shard;
  // The handler runs behind the raising source's own outbox (the pool queue
  // indexed by this replica's shard) and keeps that source identity, so any
  // events it raises in turn stay on the same shard.
  uint64_t source = CurrentRaiseSource();
  table.pool->SubmitTo(
      shard,
      [binding, slots, budget, span_ctx, source, shard,
       enqueue_ns]() mutable {
        RaiseSourceScope raise_source(source);
        // Re-install the enqueue site's sampling decision before anything
        // here can emit, so the handoff stays inside (or outside) the same
        // sampled tree. An undecided context — tracing was off at enqueue
        // time — is left undecided; a nested raise decides fresh.
        std::optional<obs::SampleScope> sample;
        if (span_ctx.decision != obs::SampleDecision::kUndecided) {
          sample.emplace(span_ctx.decision);
        }
        const bool tracing = obs::Capturing();
        // Adopt the span the enqueue site allocated for this handoff so
        // kAsyncEnqueue (raising thread) and kAsyncExecute (this thread)
        // stitch; this scope is the span's final executor.
        std::optional<obs::SpanScope> span;
        if (tracing && span_ctx.span != 0) {
          span.emplace(span_ctx, /*complete_on_exit=*/true);
        }
        const bool timed = tracing || obs::WatchdogWantsTiming();
        uint64_t start = timed ? NowNs() : 0;
        if (tracing) {
          obs::FlightRecorder::Global().EmitAt(
              obs::TraceKind::kAsyncExecute, binding->event->obs_name(),
              start);
          if (enqueue_ns != 0) {
            // Queue wait: the enqueue site's clock read to this thread's
            // execution start — the handoff cost the pool added.
            obs::EmitPhaseSegment(obs::Phase::kQueueWait,
                                  binding->event->obs_name(), enqueue_ns,
                                  start);
          }
        }
        uint64_t deadline =
            binding->ephemeral && budget != 0 ? NowNs() + budget : 0;
        uint64_t result = 0;
        try {
          obs::PhaseScope body_phase(obs::Phase::kHandlerBody,
                                     binding->event->obs_name(), tracing);
          RunHandler(*binding, slots.data(), &result, deadline);
        } catch (const DispatchError&) {
          // Detached execution: nobody to report to (§2.6).
        }
        if (timed) {
          uint64_t elapsed = NowNs() - start;
          obs::EventMetrics& metrics = binding->event->metrics();
          metrics.Record(obs::DispatchKind::kAsync, elapsed);
          obs::CheckDispatch(binding->event->obs_name(), shard, elapsed,
                             metrics.slow_ns());
        }
      },
      table.async_mode);
}

}  // namespace

bool EvalGuards(const Binding& binding, const uint64_t* slots) {
  int num_args = static_cast<int>(binding.event->sig().params.size());
  for (const GuardClause& guard : binding.guards()) {
    bool pass;
    if (guard.prog) {
      MicroArgs args(slots, num_args, guard.closure_form, guard.closure);
      if (guard.compiled != nullptr && args.count <= 6) {
        // Install-time-compiled guard (the verify-then-JIT path for wire
        // imposed guards): call the native body directly at its declared
        // arity. The entry follows the SysV register convention.
        void* entry = guard.compiled->entry();
        const uint64_t* a = args.data;
        uint64_t r;
        switch (args.count) {
          case 0:
            r = reinterpret_cast<uint64_t (*)()>(entry)();
            break;
          case 1:
            r = reinterpret_cast<uint64_t (*)(uint64_t)>(entry)(a[0]);
            break;
          case 2:
            r = reinterpret_cast<uint64_t (*)(uint64_t, uint64_t)>(entry)(
                a[0], a[1]);
            break;
          case 3:
            r = reinterpret_cast<uint64_t (*)(uint64_t, uint64_t, uint64_t)>(
                entry)(a[0], a[1], a[2]);
            break;
          case 4:
            r = reinterpret_cast<uint64_t (*)(uint64_t, uint64_t, uint64_t,
                                              uint64_t)>(entry)(a[0], a[1],
                                                                a[2], a[3]);
            break;
          case 5:
            r = reinterpret_cast<uint64_t (*)(uint64_t, uint64_t, uint64_t,
                                              uint64_t, uint64_t)>(entry)(
                a[0], a[1], a[2], a[3], a[4]);
            break;
          default:
            r = reinterpret_cast<uint64_t (*)(uint64_t, uint64_t, uint64_t,
                                              uint64_t, uint64_t, uint64_t)>(
                entry)(a[0], a[1], a[2], a[3], a[4], a[5]);
            break;
        }
        pass = r != 0;
      } else {
        pass = micro::Run(*guard.prog, args.data, args.count) != 0;
      }
    } else {
      SPIN_DCHECK(guard.invoker != nullptr);
      pass = guard.invoker(guard.fn, guard.closure, slots);
    }
    if (!pass) {
      return false;
    }
  }
  return true;
}

bool RunHandler(const Binding& binding, uint64_t* slots, uint64_t* result,
                uint64_t deadline_ns) {
  int num_args = static_cast<int>(binding.event->sig().params.size());
  if (deadline_ns != 0) {
    EphemeralScope scope(deadline_ns);
    try {
      if (binding.invoker != nullptr) {
        *result = binding.invoker(binding.fn, binding.closure, slots);
      } else {
        SPIN_DCHECK(binding.prog.has_value());
        MicroArgs args(slots, num_args, binding.closure_form,
                       binding.closure);
        *result = micro::Run(*binding.prog, args.data, args.count);
      }
    } catch (const TerminatedError&) {
      return false;
    }
    return true;
  }
  if (binding.invoker != nullptr) {
    *result = binding.invoker(binding.fn, binding.closure, slots);
  } else {
    SPIN_DCHECK(binding.prog.has_value());
    MicroArgs args(slots, num_args, binding.closure_form, binding.closure);
    *result = micro::Run(*binding.prog, args.data, args.count);
  }
  return true;
}

void ExecuteTable(EventBase& event, const DispatchTable& table,
                  RaiseFrame& frame) {
  frame.result = table.InitialResult();
  int num_args = static_cast<int>(event.sig().params.size());

  const bool tracing = obs::Capturing();

  if (table.stub != nullptr) {
    // Compiled dispatch fuses guard evaluation and handler bodies into one
    // routine, so the finest attributable phase is the stub call itself.
    obs::PhaseScope stub_phase(obs::Phase::kStub, event.obs_name(), tracing);
    table.stub->entry()(&frame);
  } else {
    // The interp phase's self-time is the dispatch loop overhead proper:
    // guard evaluation and handler bodies subtract themselves out through
    // the PhaseScope nesting chain.
    obs::PhaseScope interp_phase(obs::Phase::kInterp, event.obs_name(),
                                 tracing);
    for (size_t i = 0; i < table.sync_bindings.size(); ++i) {
      const BindingHandle& binding = table.sync_bindings[i];
      bool admitted;
      {
        obs::PhaseScope guard_phase(obs::Phase::kGuardEval, event.obs_name(),
                                    tracing);
        admitted = EvalGuards(*binding, frame.args);
      }
      if (!admitted) {
        if (tracing) {
          obs::FlightRecorder::Global().Emit(obs::TraceKind::kGuardReject,
                                             event.obs_name(), i);
        }
        continue;
      }
      uint64_t deadline = binding->ephemeral && table.ephemeral_budget_ns != 0
                              ? NowNs() + table.ephemeral_budget_ns
                              : 0;
      uint64_t result = 0;
      bool completed;
      {
        obs::PhaseScope body_phase(obs::Phase::kHandlerBody, event.obs_name(),
                                   tracing);
        completed = RunHandler(*binding, frame.args, &result, deadline);
      }
      if (!completed) {
        ++frame.aborted;
        continue;
      }
      if (tracing) {
        obs::FlightRecorder::Global().Emit(obs::TraceKind::kHandlerFire,
                                           event.obs_name(), i);
        if (!binding->byref_params.empty()) {
          obs::FlightRecorder::Global().Emit(obs::TraceKind::kFilterMutate,
                                             event.obs_name(), i);
        }
      }
      if (table.returns_value) {
        frame.result = table.policy == ResultPolicy::kLast &&
                               table.custom_fold == nullptr
                           ? result
                           : Fold(table, result, frame.result, frame.fired);
      }
      ++frame.fired;
    }
  }

  for (size_t i = 0; i < table.async_bindings.size(); ++i) {
    const BindingHandle& binding = table.async_bindings[i];
    bool admitted;
    {
      obs::PhaseScope guard_phase(obs::Phase::kGuardEval, event.obs_name(),
                                  tracing);
      admitted = EvalGuards(*binding, frame.args);
    }
    if (!admitted) {
      if (tracing) {
        obs::FlightRecorder::Global().Emit(obs::TraceKind::kGuardReject,
                                           event.obs_name(),
                                           table.sync_bindings.size() + i);
      }
      continue;
    }
    obs::TraceContext span_ctx{};
    uint64_t enqueue_ns = 0;
    if (tracing) {
      // Pre-allocate the handoff's span here so the enqueue record can
      // announce it (the flow start) before the pool thread exists.
      const obs::TraceContext& cur = obs::CurrentContext();
      span_ctx = obs::TraceContext{obs::NewSpanId(), cur.span, cur.host,
                                   obs::SampleDecision::kTrace};
      enqueue_ns = NowNs();
      obs::FlightRecorder::Global().EmitWith(
          obs::TraceKind::kAsyncEnqueue, event.obs_name(), enqueue_ns, i,
          span_ctx.span, span_ctx.parent);
    } else if (obs::Enabled()) {
      // This raise was sampled out: hand the skip to the pool thread so it
      // doesn't make a fresh top-level decision mid-tree.
      span_ctx.decision = obs::SampleDecision::kSkip;
    }
    ScheduleAsyncBinding(table, binding, frame, num_args, span_ctx,
                         enqueue_ns);
    ++frame.fired;
  }

  if (frame.fired == 0) {
    if (table.default_handler != nullptr) {
      uint64_t result = 0;
      RunHandler(*table.default_handler, frame.args, &result, 0);
      if (table.returns_value) {
        frame.result = result;
      }
      frame.fired = 1;
    } else {
      throw NoHandlerError(event.name());
    }
  }
}

void EventBase::RaiseErased(RaiseFrame& frame) {
  Dispatcher& dispatcher = *owner_;
  // The sampling decision is made exactly once, at the top-level raise, and
  // inherited by the whole causal tree: a nested raise sees a decided
  // context and keeps it, so a captured trace is always a complete tree.
  std::optional<obs::SampleScope> sample;
  if (obs::Enabled() &&
      obs::CurrentContext().decision == obs::SampleDecision::kUndecided) {
    sample.emplace(obs::DecideTopLevel());
  }
  const bool tracing = obs::Capturing();
  const bool timed =
      tracing || dispatcher.profiling() || obs::WatchdogWantsTiming();
  uint64_t start = timed ? NowNs() : 0;
  // Every traced dispatch is a span: a top-level raise opens a root, a
  // raise from inside a handler opens a child of the enclosing span. The
  // scope closes by RAII, so an escaping exception still completes it.
  std::optional<obs::SpanScope> span;
  if (tracing) {
    span.emplace();
    obs::FlightRecorder::Global().EmitAt(obs::TraceKind::kRaiseBegin,
                                         obs_name_, start);
  }
  bool promote = false;
  obs::DispatchKind kind = obs::DispatchKind::kInterp;
  uint32_t shard = 0;
  {
    // Route by raise source: hash it to a shard and read that shard's
    // replica under that shard's epoch domain. Single-shard dispatchers
    // skip the hash and the counter — shard 0 is the historical path.
    const uint32_t nshards = dispatcher.shard_count();
    if (nshards > 1) {
      shard = ShardFor(CurrentRaiseSource(), nshards);
      dispatcher.CountShardRaise(shard);
    }
    EpochDomain::Guard guard(dispatcher.shard_epoch(shard));
    DispatchTable* table = table_slot(shard).load(std::memory_order_acquire);
    SPIN_DCHECK(table != nullptr);
    kind = table->obs_kind;
    if (table->lazy_pending) {
      promote = lazy_raises_.fetch_add(1, std::memory_order_relaxed) + 1 >=
                dispatcher.config().lazy_promote_raises;
    }
    ExecuteTable(*this, *table, frame);
  }
  if (promote) {
    // The event proved hot: compile its dispatch routine now (§3.1's
    // "more incremental (and economical) approach to installation").
    dispatcher.PromoteLazyEvent(*this);
  }
  if (timed) {
    uint64_t end = NowNs();
    metrics_->Record(kind, end - start);
    obs::CheckDispatch(obs_name_, shard, end - start, metrics_->slow_ns());
    if (tracing) {
      obs::FlightRecorder::Global().EmitAt(obs::TraceKind::kRaiseEnd,
                                           obs_name_, end);
    }
  }
}

void EventBase::RaiseAsyncErased(const RaiseFrame& frame) {
  ThreadPool* pool = nullptr;
  AsyncMode mode = AsyncMode::kPooled;
  const uint32_t nshards = owner_->shard_count();
  const uint32_t shard =
      nshards > 1 ? ShardFor(CurrentRaiseSource(), nshards) : 0;
  {
    EpochDomain::Guard guard(owner_->shard_epoch(shard));
    DispatchTable* table = table_slot(shard).load(std::memory_order_acquire);
    pool = table->pool;
    mode = table->async_mode;
  }
  // A detached raise is its own top level: decide here, at the enqueue
  // site, so the kAsyncEnqueue record and the pool-side execution agree on
  // whether the tree is sampled.
  std::optional<obs::SampleScope> sample;
  if (obs::Enabled() &&
      obs::CurrentContext().decision == obs::SampleDecision::kUndecided) {
    sample.emplace(obs::DecideTopLevel());
  }
  obs::TraceContext span_ctx{};
  uint64_t enqueue_ns = 0;
  if (obs::Capturing()) {
    const obs::TraceContext& cur = obs::CurrentContext();
    span_ctx = obs::TraceContext{obs::NewSpanId(), cur.span, cur.host,
                                 obs::SampleDecision::kTrace};
    enqueue_ns = NowNs();
    obs::FlightRecorder::Global().EmitWith(obs::TraceKind::kAsyncEnqueue,
                                           obs_name_, enqueue_ns, 0,
                                           span_ctx.span, span_ctx.parent);
  } else if (obs::Enabled()) {
    span_ctx.decision = obs::SampleDecision::kSkip;
  }
  RaiseFrame copy = frame;
  // The detached dispatch runs behind the source's outbox and re-raises
  // with the same source identity, so it lands on the same shard replica
  // the synchronous path would have used.
  uint64_t source = CurrentRaiseSource();
  pool->SubmitTo(
      shard,
      [this, copy, span_ctx, source, enqueue_ns]() mutable {
        RaiseSourceScope raise_source(source);
        std::optional<obs::SampleScope> sample;
        if (span_ctx.decision != obs::SampleDecision::kUndecided) {
          sample.emplace(span_ctx.decision);
        }
        std::optional<obs::SpanScope> span;
        if (obs::Capturing() && span_ctx.span != 0) {
          span.emplace(span_ctx, /*complete_on_exit=*/true);
          uint64_t exec_ns = NowNs();
          obs::FlightRecorder::Global().EmitAt(obs::TraceKind::kAsyncExecute,
                                               obs_name_, exec_ns);
          if (enqueue_ns != 0) {
            obs::EmitPhaseSegment(obs::Phase::kQueueWait, obs_name_,
                                  enqueue_ns, exec_ns);
          }
        }
        try {
          RaiseErased(copy);
        } catch (const DispatchError&) {
          // Detached raise: errors have no raiser to land on.
        }
      },
      mode);
}

bool EventBase::has_default_handler() const {
  EpochDomain::Guard guard(owner_->epoch());
  DispatchTable* table = table_.load(std::memory_order_acquire);
  return table->default_handler != nullptr;
}

size_t EventBase::handler_count() const {
  EpochDomain::Guard guard(owner_->epoch());
  DispatchTable* table = table_.load(std::memory_order_acquire);
  return table->sync_bindings.size() + table->async_bindings.size();
}

size_t EventBase::guard_count() const {
  EpochDomain::Guard guard(owner_->epoch());
  DispatchTable* table = table_.load(std::memory_order_acquire);
  size_t count = 0;
  for (const auto& b : table->sync_bindings) {
    count += b->guards().size();
  }
  for (const auto& b : table->async_bindings) {
    count += b->guards().size();
  }
  return count;
}

}  // namespace spin
