#include "src/core/ephemeral.h"

#include "src/core/errors.h"
#include "src/rt/clock.h"

namespace spin {
namespace {

thread_local uint64_t g_deadline_ns = 0;

}  // namespace

EphemeralScope::EphemeralScope(uint64_t deadline_ns)
    : saved_deadline_(g_deadline_ns) {
  g_deadline_ns = deadline_ns;
}

EphemeralScope::~EphemeralScope() { g_deadline_ns = saved_deadline_; }

bool InEphemeralScope() { return g_deadline_ns != 0; }

void CheckTermination() {
  if (g_deadline_ns != 0 && NowNs() > g_deadline_ns) {
    throw TerminatedError();
  }
}

}  // namespace spin
