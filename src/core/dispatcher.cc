#include "src/core/dispatcher.h"

#include <algorithm>
#include <optional>
#include <ostream>
#include <thread>

#include "src/micro/pattern.h"
#include "src/obs/export.h"
#include "src/obs/trace.h"
#include "src/rt/panic.h"

namespace spin {
namespace {

void DeleteTable(void* p) { delete static_cast<DispatchTable*>(p); }

size_t GuardListBytes(const std::vector<GuardClause>& guards) {
  size_t bytes = 0;
  for (const GuardClause& guard : guards) {
    bytes += sizeof(GuardClause);
    if (guard.prog) {
      bytes += guard.prog->code().size() * sizeof(micro::Insn);
    }
  }
  return bytes;
}

bool SigJitable(const ProcSig& sig) {
  if (sig.params.size() > 6) {
    return false;
  }
  for (const ParamSig& p : sig.params) {
    if (p.cls == TypeClass::kFloat64) {
      return false;  // doubles travel in SSE registers; interpreter only
    }
  }
  return sig.result.cls != TypeClass::kFloat64;
}

// Whether one callable (handler or guard) can participate in a generated
// stub, possibly by compiling its micro-program out of line. May set
// `compiled` (caller holds the dispatcher mutex).
template <typename Clause>
bool CallableJitable(Clause& clause, bool inline_micro, size_t num_args) {
  bool has_native = clause.fn != nullptr;
  bool has_prog = clause.prog.has_value() &&
                  clause.prog->Validate() == micro::ValidateStatus::kOk;
  if (clause.closure_form && num_args > 5) {
    return false;
  }
  if (inline_micro && has_prog) {
    return true;
  }
  if (has_native) {
    return true;
  }
  if (has_prog) {
    if (clause.compiled == nullptr) {
      clause.compiled = codegen::CompileMicro(*clause.prog);
    }
    return clause.compiled != nullptr;
  }
  return false;
}

// Guard decision tree planning (§3.2 future work): if every sync binding
// carries a micro guard discriminating the same field against pairwise
// distinct, pre-masked constants (and nothing widens arguments by-ref, so
// a handler cannot change what later guards would have seen), the linear
// guard chain can be compiled as a binary search. Returns the tree plus the
// matched guard index per binding (stripped from the emitted guard list).
struct TreePlan {
  codegen::StubTree tree;
  std::vector<size_t> matched_guard;  // per sync binding
};

std::optional<TreePlan> PlanGuardTree(
    const std::vector<BindingHandle>& sync_bindings) {
  TreePlan plan;
  plan.matched_guard.reserve(sync_bindings.size());
  bool have_key = false;
  micro::FieldEqPattern key;
  std::vector<uint64_t> values;
  for (size_t b = 0; b < sync_bindings.size(); ++b) {
    const Binding& binding = *sync_bindings[b];
    if (!binding.byref_params.empty()) {
      return std::nullopt;
    }
    const std::vector<GuardClause>& guards = binding.guards();
    bool matched = false;
    for (size_t g = 0; g < guards.size(); ++g) {
      if (!guards[g].prog.has_value() || guards[g].closure_form) {
        continue;
      }
      micro::FieldEqPattern pattern;
      if (!micro::MatchFieldEq(*guards[g].prog, &pattern)) {
        continue;
      }
      if (have_key && !pattern.SameField(key)) {
        continue;  // maybe another guard on this binding matches the key
      }
      uint64_t width_mask = pattern.width == 8
                                ? ~0ull
                                : ((1ull << (8 * pattern.width)) - 1);
      if ((pattern.value & pattern.mask & width_mask) != pattern.value) {
        return std::nullopt;  // the guard can never pass; keep linear
      }
      if (!have_key) {
        key = pattern;
        have_key = true;
      }
      plan.matched_guard.push_back(g);
      values.push_back(pattern.value);
      matched = true;
      break;
    }
    if (!matched) {
      return std::nullopt;
    }
  }
  plan.tree.arg = key.arg;
  plan.tree.offset = key.offset;
  plan.tree.width = key.width;
  plan.tree.mask = key.mask;
  for (size_t b = 0; b < sync_bindings.size(); ++b) {
    plan.tree.cases.push_back(
        codegen::TreeCase{values[b], static_cast<uint32_t>(b)});
  }
  std::sort(plan.tree.cases.begin(), plan.tree.cases.end(),
            [](const codegen::TreeCase& a, const codegen::TreeCase& b) {
              return a.value < b.value;
            });
  for (size_t i = 1; i < plan.tree.cases.size(); ++i) {
    if (plan.tree.cases[i - 1].value == plan.tree.cases[i].value) {
      return std::nullopt;  // duplicate constants: order matters, stay linear
    }
  }
  return plan;
}

template <typename Clause>
codegen::CallableSpec MakeCallableSpec(const Clause& clause,
                                       bool inline_micro) {
  codegen::CallableSpec spec;
  spec.closure = clause.closure;
  spec.closure_form = clause.closure_form;
  if (inline_micro && clause.prog.has_value()) {
    spec.prog = &*clause.prog;
    return spec;
  }
  if (clause.fn != nullptr) {
    spec.fn = clause.fn;
  } else {
    SPIN_ASSERT(clause.compiled != nullptr);
    spec.fn = clause.compiled->entry();
  }
  return spec;
}

}  // namespace

void AuthRequest::ImposeGuard(GuardClause guard) {
  SPIN_ASSERT_MSG(op == AuthOp::kInstall && binding != nullptr,
                  "ImposeGuard is only valid while authorizing an install");
  guard.imposed = true;
  // Micro-program impositions compile here so every evaluation site — the
  // local raise path and the exporter's per-request re-enforcement — runs
  // native code. nullptr falls back to the interpreter.
  if (guard.prog.has_value() && guard.compiled == nullptr &&
      guard.prog->Validate() == micro::ValidateStatus::kOk) {
    guard.compiled = codegen::CompileMicro(*guard.prog);
  }
  // The candidate binding is not yet visible to raises.
  binding->AddGuardPreActive(std::move(guard), /*front=*/true);
}

void AuthRequest::SetOrder(Order order) {
  SPIN_ASSERT_MSG(op == AuthOp::kInstall && binding != nullptr,
                  "SetOrder is only valid while authorizing an install");
  binding->order = std::move(order);
}

// --- EventBase lifecycle -----------------------------------------------------

EventBase::EventBase(std::string name, ProcSig sig, const Module* authority,
                     Dispatcher* owner)
    : name_(std::move(name)),
      sig_(std::move(sig)),
      authority_(authority),
      owner_(owner),
      metrics_(obs::Registry::Global().Register(name_)),
      obs_name_(obs::Intern(name_)) {
  SPIN_ASSERT(owner_ != nullptr);
  SPIN_ASSERT_MSG(sig_.params.size() <= static_cast<size_t>(kMaxEventArgs),
                  "event %s has too many parameters", name_.c_str());
  // Replica slots for shards 1..N-1 must exist before the event becomes
  // visible to raises (RegisterEvent publishes the first tables).
  if (owner_->shard_count() > 1) {
    extra_tables_ =
        std::make_unique<TableSlot[]>(owner_->shard_count() - 1);
  }
  owner_->RegisterEvent(this);
}

EventBase::~EventBase() {
  owner_->UnregisterEvent(this);
  obs::Registry::Global().Unregister(metrics_.get());
}

// --- Dispatcher ---------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_next_dispatcher_id{1};
}  // namespace

namespace {

uint32_t ResolveShardCount(uint32_t requested) {
  if (requested == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    requested = hw == 0 ? 1 : static_cast<uint32_t>(hw);
  }
  return std::min(requested, Dispatcher::kMaxShards);
}

}  // namespace

Dispatcher::Dispatcher(const Config& config)
    : config_(config),
      epoch_(config.epoch != nullptr ? config.epoch : &EpochDomain::Global()),
      pool_(config.pool != nullptr ? config.pool : &ThreadPool::Global()),
      shard_count_(ResolveShardCount(config.shards)),
      shards_(std::make_unique<ShardState[]>(shard_count_)),
      quota_(config.quota_bytes_per_module),
      instance_id_(g_next_dispatcher_id.fetch_add(1)) {
  // Shard 0 always shares the configured (or global) domain: single-shard
  // dispatchers keep the historical reclamation protocol, and install-side
  // introspection reads shard 0 under epoch(). Extra shards own private
  // domains so their raises never contend on another shard's epoch state.
  shards_[0].epoch = epoch_;
  for (uint32_t s = 1; s < shard_count_; ++s) {
    shards_[s].owned_epoch = std::make_unique<EpochDomain>();
    shards_[s].epoch = shards_[s].owned_epoch.get();
  }
  obs::RegisterSource(this, &Dispatcher::ExportMetricsSource);
  watch_pool_name_ =
      obs::Intern("dispatcher" + std::to_string(instance_id_) + "/pool");
  watch_epoch_name_ =
      obs::Intern("dispatcher" + std::to_string(instance_id_) + "/epoch");
  obs::Watchdog::Global().RegisterProbe(this,
                                        &Dispatcher::WatchdogProbeSource);
}

Dispatcher::~Dispatcher() {
  obs::Watchdog::Global().UnregisterProbe(this);
  obs::UnregisterSource(this);
  // Events must be destroyed before their dispatcher; whatever tables remain
  // belong to events that leaked. Reclaim retired state.
  for (uint32_t s = 0; s < shard_count_; ++s) {
    shards_[s].epoch->Flush();
  }
}

Dispatcher& Dispatcher::Global() {
  static Dispatcher* dispatcher = new Dispatcher();  // intentionally leaked
  return *dispatcher;
}

void Dispatcher::RegisterEvent(EventBase* event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(event);
  RebuildLocked(*event);
}

void Dispatcher::PromoteLazyEvent(EventBase& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (event.hot_) {
    return;  // racing raises: first promotion wins
  }
  event.hot_ = true;
  ++stats_.lazy_promotions;
  obs::FlightRecorder::Global().Emit(obs::TraceKind::kLazyPromote,
                                     event.obs_name_);
  RebuildLocked(event);
}

void Dispatcher::UnregisterEvent(EventBase* event) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    events_.erase(std::remove(events_.begin(), events_.end(), event),
                  events_.end());
  }
  // Drain concurrent raises on every shard, then free the final replicas
  // directly.
  for (uint32_t s = 0; s < shard_count_; ++s) {
    shards_[s].epoch->Synchronize();
    delete event->table_slot(s).exchange(nullptr,
                                         std::memory_order_acq_rel);
  }
}

void Dispatcher::SynchronizeAllShards() {
  for (uint32_t s = 0; s < shard_count_; ++s) {
    shards_[s].epoch->Synchronize();
  }
}

bool Dispatcher::AuthorizeLocked(AuthRequest& request) {
  EventBase& event = *request.event;
  if (event.authorizer_ == nullptr) {
    return true;  // unguarded events are open, as in SPIN pre-authorizer
  }
  return event.authorizer_(request, event.authorizer_ctx_);
}

bool Dispatcher::Authorize(AuthRequest& request) {
  SPIN_ASSERT_MSG(request.event != nullptr,
                  "Authorize requires a target event");
  std::lock_guard<std::mutex> lock(mu_);
  return AuthorizeLocked(request);
}

void Dispatcher::CheckIsAuthorityOrAuthorized(EventBase& event, AuthOp op,
                                              const Module* requestor,
                                              void* credentials) {
  AuthRequest request;
  request.op = op;
  request.event = &event;
  request.requestor = requestor;
  request.credentials = credentials;
  if (!AuthorizeLocked(request)) {
    throw InstallError(InstallStatus::kNotAuthorized, event.name());
  }
}

void Dispatcher::PlaceLocked(EventBase& event, const BindingHandle& binding,
                             const Order& order) {
  std::vector<BindingHandle>& list = event.order_list;
  switch (order.kind) {
    case OrderKind::kUnordered:
    case OrderKind::kLast:
      list.push_back(binding);
      break;
    case OrderKind::kFirst:
      list.insert(list.begin(), binding);
      break;
    case OrderKind::kBefore:
    case OrderKind::kAfter: {
      auto it = std::find(list.begin(), list.end(), order.ref);
      if (order.ref == nullptr || order.ref->event != &event ||
          it == list.end()) {
        throw InstallError(InstallStatus::kBadOrderingReference,
                           event.name());
      }
      list.insert(order.kind == OrderKind::kAfter ? it + 1 : it, binding);
      break;
    }
  }
}

BindingHandle Dispatcher::Install(EventBase& event,
                                  std::shared_ptr<Binding> binding,
                                  const InstallOptions& opts) {
  binding->event = &event;
  if (binding->owner == nullptr) {
    binding->owner = opts.module;
  }
  if (binding->async && !AsyncEligible(event.sig())) {
    throw InstallError(InstallStatus::kAsyncByRef, event.name());
  }
  binding->sig.ephemeral = binding->ephemeral;

  std::lock_guard<std::mutex> lock(mu_);
  if (event.require_ephemeral_ && !binding->ephemeral &&
      !binding->intrinsic) {
    throw InstallError(InstallStatus::kEphemeralRequired, event.name());
  }
  if (!binding->intrinsic) {
    AuthRequest request;
    request.op = AuthOp::kInstall;
    request.event = &event;
    request.binding = binding.get();
    request.requestor = opts.module;
    request.credentials = opts.credentials;
    if (!AuthorizeLocked(request)) {
      throw InstallError(InstallStatus::kNotAuthorized, event.name());
    }
  }
  size_t bytes = binding->MemoryBytes();
  if (!quota_.Charge(binding->owner, bytes)) {
    throw InstallError(InstallStatus::kQuotaExceeded, event.name());
  }
  PlaceLocked(event, binding, binding->order);
  if (binding->intrinsic) {
    event.intrinsic_binding = binding;
  }
  ++stats_.installs;
  obs::FlightRecorder::Global().Emit(obs::TraceKind::kInstall,
                                     event.obs_name_);
  RebuildLocked(event);
  return binding;
}

BindingHandle Dispatcher::InstallDefault(EventBase& event,
                                         std::shared_ptr<Binding> binding,
                                         const InstallOptions& opts) {
  binding->event = &event;
  if (binding->owner == nullptr) {
    binding->owner = opts.module;
  }
  std::lock_guard<std::mutex> lock(mu_);
  AuthRequest request;
  request.op = AuthOp::kSetDefault;
  request.event = &event;
  request.binding = binding.get();
  request.requestor = opts.module;
  request.credentials = opts.credentials;
  if (!AuthorizeLocked(request)) {
    throw InstallError(InstallStatus::kNotAuthorized, event.name());
  }
  size_t bytes = binding->MemoryBytes();
  if (!quota_.Charge(binding->owner, bytes)) {
    throw InstallError(InstallStatus::kQuotaExceeded, event.name());
  }
  if (event.default_binding != nullptr) {
    quota_.Release(event.default_binding->owner,
                   event.default_binding->MemoryBytes());
    event.default_binding->active.store(false, std::memory_order_release);
  }
  event.default_binding = binding;
  ++stats_.installs;
  obs::FlightRecorder::Global().Emit(obs::TraceKind::kInstall,
                                     event.obs_name_);
  RebuildLocked(event);
  return binding;
}

BindingHandle Dispatcher::InstallMicroHandler(EventBase& event,
                                              micro::Program prog,
                                              const InstallOptions& opts) {
  if (prog.Validate() != micro::ValidateStatus::kOk) {
    throw InstallError(InstallStatus::kInvalidMicroProgram, event.name());
  }
  if (prog.num_args() > static_cast<int>(event.sig().params.size())) {
    throw InstallError(TypecheckStatus::kArityMismatch, event.name());
  }
  auto binding = std::make_shared<Binding>();
  binding->sig = event.sig();
  binding->prog = std::move(prog);
  binding->owner = opts.module;
  binding->async = opts.async;
  binding->ephemeral = opts.ephemeral;
  binding->order = opts.order;
  return Install(event, std::move(binding), opts);
}

BindingHandle Dispatcher::InstallErasedHandler(EventBase& event, void* ctx,
                                               HandlerInvoker invoker,
                                               const InstallOptions& opts) {
  auto binding = std::make_shared<Binding>();
  binding->sig = event.sig();
  binding->fn = ctx;
  binding->invoker = invoker;
  binding->owner = opts.module;
  binding->async = opts.async;
  binding->ephemeral = opts.ephemeral;
  // Erased handlers have no native-ABI entry the stub compiler could call
  // (`fn` is an opaque context, not a procedure), so the binding must take
  // the interpreted path unconditionally — `erased` bars it from the
  // direct-call bypass and the generated stub, and may_throw lets the
  // invoker surface exceptions through the raise.
  binding->erased = true;
  binding->may_throw = true;
  binding->order = opts.order;
  return Install(event, std::move(binding), opts);
}

void Dispatcher::AddMicroGuard(const BindingHandle& binding,
                               micro::Program prog, GuardCompileMode mode) {
  if (!prog.functional()) {
    throw InstallError(TypecheckStatus::kGuardNotFunctional,
                       binding->event->name());
  }
  if (prog.Validate() != micro::ValidateStatus::kOk) {
    throw InstallError(InstallStatus::kInvalidMicroProgram,
                       binding->event->name());
  }
  GuardClause clause;
  clause.prog = std::move(prog);
  if (mode == GuardCompileMode::kJit) {
    // Compile once at install; EvalGuards then calls native code instead
    // of the interpreter. nullptr (codegen unavailable, >6 args) falls
    // back to interpretation.
    clause.compiled = codegen::CompileMicro(*clause.prog);
  }
  std::vector<GuardClause> guards = binding->CopyGuards();
  guards.push_back(std::move(clause));
  ReplaceBindingGuardsLocked(binding, std::move(guards));
}

void Dispatcher::ImposeMicroGuard(const BindingHandle& binding,
                                  micro::Program prog,
                                  GuardCompileMode mode) {
  if (!prog.functional()) {
    throw InstallError(TypecheckStatus::kGuardNotFunctional,
                       binding->event->name());
  }
  if (prog.Validate() != micro::ValidateStatus::kOk) {
    throw InstallError(InstallStatus::kInvalidMicroProgram,
                       binding->event->name());
  }
  GuardClause clause;
  clause.prog = std::move(prog);
  clause.imposed = true;
  if (mode == GuardCompileMode::kJit) {
    clause.compiled = codegen::CompileMicro(*clause.prog);
  }
  std::vector<GuardClause> guards = binding->CopyGuards();
  guards.insert(guards.begin(), std::move(clause));
  ReplaceBindingGuardsLocked(binding, std::move(guards));
}

void Dispatcher::RemoveGuard(const BindingHandle& binding, size_t index,
                             const Module* requestor) {
  std::lock_guard<std::mutex> lock(mu_);
  EventBase& event = *binding->event;
  if (!binding->active.load(std::memory_order_acquire)) {
    throw InstallError(InstallStatus::kBindingInactive, event.name());
  }
  std::vector<GuardClause> guards = binding->CopyGuards();
  SPIN_ASSERT_MSG(index < guards.size(), "guard index %zu out of range",
                  index);
  if (guards[index].imposed) {
    // Manipulating an authority-imposed guard is itself authorized.
    AuthRequest request;
    request.op = AuthOp::kImposeGuard;
    request.event = &event;
    request.binding = binding.get();
    request.requestor = requestor;
    if (!AuthorizeLocked(request)) {
      throw InstallError(InstallStatus::kNotAuthorized, event.name());
    }
  }
  size_t old_bytes = GuardListBytes(binding->guards());
  guards.erase(guards.begin() + static_cast<ptrdiff_t>(index));
  quota_.Release(binding->owner, old_bytes - GuardListBytes(guards));
  binding->ReplaceGuards(std::move(guards), *epoch_);
  RebuildLocked(event);
}

size_t Dispatcher::GuardCount(const BindingHandle& binding) const {
  std::lock_guard<std::mutex> lock(mu_);
  return binding->guards().size();
}

EventBase* Dispatcher::FindEvent(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (EventBase* event : events_) {
    if (event->name() == name) {
      return event;
    }
  }
  return nullptr;
}

std::string Dispatcher::Describe(EventBase& event) const {
  std::string out = event.name() + " " + event.sig().ToString() + "\n";
  EpochDomain::Guard guard(*epoch_);
  DispatchTable* table = event.table_.load(std::memory_order_acquire);
  const char* kind = "interpreted";
  if (event.direct_fn() != nullptr) {
    kind = "direct call (intrinsic bypass)";
  } else if (table->stub != nullptr) {
    kind = "generated stub";
  } else if (table->lazy_pending) {
    kind = "interpreted (lazy, compile pending)";
  }
  out += "  dispatch: ";
  out += kind;
  out += "\n";
  char line[160];
  size_t guards = 0;
  for (const auto& binding : table->sync_bindings) {
    guards += binding->guards().size();
  }
  for (const auto& binding : table->async_bindings) {
    guards += binding->guards().size();
  }
  std::snprintf(line, sizeof(line),
                "  handlers: %zu sync, %zu async, %s default; guards: %zu\n",
                table->sync_bindings.size(), table->async_bindings.size(),
                table->default_handler != nullptr ? "1" : "no", guards);
  out += line;
  if (table->stub != nullptr) {
    std::snprintf(line, sizeof(line),
                  "  generated code: %zu bytes, %zu LIR insns, "
                  "%zu peephole rewrites\n",
                  table->stub->code_size(), table->stub->lir_insns(),
                  table->stub->peephole_rewrites());
    out += line;
  }
  std::snprintf(line, sizeof(line), "  table version: %u\n", table->version);
  out += line;
  for (size_t k = 0; k < obs::kNumDispatchKinds; ++k) {
    auto dk = static_cast<obs::DispatchKind>(k);
    obs::HistogramSnapshot snap = event.metrics().hist(dk).Snapshot();
    if (snap.count == 0) {
      continue;
    }
    std::snprintf(line, sizeof(line),
                  "  latency[%s]: n=%llu p50=%lluns p90=%lluns p99=%lluns "
                  "max=%lluns\n",
                  obs::DispatchKindName(dk),
                  static_cast<unsigned long long>(snap.count),
                  static_cast<unsigned long long>(snap.Percentile(0.50)),
                  static_cast<unsigned long long>(snap.Percentile(0.90)),
                  static_cast<unsigned long long>(snap.Percentile(0.99)),
                  static_cast<unsigned long long>(snap.max));
    out += line;
  }
  return out;
}

void Dispatcher::DescribeAll(std::ostream& os) const {
  for (EventBase* event : Events()) {
    os << Describe(*event);
  }
  // Flight-recorder health: silent ring wraparound means every trace
  // read from the recorder is missing its oldest records. Surface the
  // drop rate where a human is already looking.
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  uint64_t emits = recorder.TotalEmits();
  uint64_t overwrites = recorder.TotalOverwrites();
  char line[160];
  double rate = emits == 0 ? 0.0
                           : 100.0 * static_cast<double>(overwrites) /
                                 static_cast<double>(emits);
  std::snprintf(line, sizeof(line),
                "flight recorder: %llu records emitted, %llu dropped to "
                "wraparound (%.2f%% drop rate)\n",
                static_cast<unsigned long long>(emits),
                static_cast<unsigned long long>(overwrites), rate);
  os << line;
}

void Dispatcher::ReplaceBindingGuardsLocked(const BindingHandle& binding,
                                            std::vector<GuardClause> guards) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!binding->active.load(std::memory_order_acquire)) {
    throw InstallError(InstallStatus::kBindingInactive,
                       binding->event->name());
  }
  // Guard storage counts against the owner's quota (§2.6): without this an
  // extension could hoard memory by piling guards onto one binding.
  size_t old_bytes = GuardListBytes(binding->guards());
  size_t new_bytes = GuardListBytes(guards);
  if (new_bytes > old_bytes) {
    if (!quota_.Charge(binding->owner, new_bytes - old_bytes)) {
      throw InstallError(InstallStatus::kQuotaExceeded,
                         binding->event->name());
    }
  } else {
    quota_.Release(binding->owner, old_bytes - new_bytes);
  }
  binding->ReplaceGuards(std::move(guards), *epoch_);
  RebuildLocked(*binding->event);
}

void Dispatcher::Uninstall(const BindingHandle& binding,
                           const Module* requestor, void* credentials) {
  std::lock_guard<std::mutex> lock(mu_);
  EventBase& event = *binding->event;
  if (!binding->active.load(std::memory_order_acquire)) {
    throw InstallError(InstallStatus::kBindingInactive, event.name());
  }
  AuthRequest request;
  request.op = AuthOp::kUninstall;
  request.event = &event;
  request.binding = binding.get();
  request.requestor = requestor;
  request.credentials = credentials;
  if (!AuthorizeLocked(request)) {
    throw InstallError(InstallStatus::kNotAuthorized, event.name());
  }
  binding->active.store(false, std::memory_order_release);
  if (event.default_binding == binding) {
    event.default_binding = nullptr;
  } else {
    auto& list = event.order_list;
    list.erase(std::remove(list.begin(), list.end(), binding), list.end());
  }
  if (event.intrinsic_binding == binding) {
    event.intrinsic_binding = nullptr;
  }
  quota_.Release(binding->owner, binding->MemoryBytes());
  ++stats_.uninstalls;
  obs::FlightRecorder::Global().Emit(obs::TraceKind::kUninstall,
                                     event.obs_name_);
  RebuildLocked(event);
}

void Dispatcher::DeregisterIntrinsic(EventBase& event,
                                     const Module* requestor) {
  BindingHandle intrinsic;
  {
    std::lock_guard<std::mutex> lock(mu_);
    intrinsic = event.intrinsic_binding;
  }
  if (intrinsic == nullptr) {
    throw InstallError(InstallStatus::kBindingInactive,
                       event.name() + " has no intrinsic handler");
  }
  Uninstall(intrinsic, requestor);
}

void Dispatcher::SetOrder(const BindingHandle& binding, Order order) {
  std::lock_guard<std::mutex> lock(mu_);
  EventBase& event = *binding->event;
  if (!binding->active.load(std::memory_order_acquire)) {
    throw InstallError(InstallStatus::kBindingInactive, event.name());
  }
  auto& list = event.order_list;
  list.erase(std::remove(list.begin(), list.end(), binding), list.end());
  PlaceLocked(event, binding, order);
  binding->order = order;
  RebuildLocked(event);
}

Order Dispatcher::GetOrder(const BindingHandle& binding) const {
  std::lock_guard<std::mutex> lock(mu_);
  return binding->order;
}

void Dispatcher::SetResultPolicy(EventBase& event, ResultPolicy policy,
                                 const Module* requestor) {
  std::lock_guard<std::mutex> lock(mu_);
  CheckIsAuthorityOrAuthorized(event, AuthOp::kSetResultHandler, requestor,
                               nullptr);
  event.policy_ = policy;
  event.custom_fold_ = nullptr;
  event.custom_fold_ctx_ = nullptr;
  RebuildLocked(event);
}

void Dispatcher::SetResultFold(EventBase& event, ResultFold fold, void* ctx,
                               const Module* requestor) {
  std::lock_guard<std::mutex> lock(mu_);
  CheckIsAuthorityOrAuthorized(event, AuthOp::kSetResultHandler, requestor,
                               nullptr);
  event.custom_fold_ = fold;
  event.custom_fold_ctx_ = ctx;
  RebuildLocked(event);
}

void Dispatcher::InstallAuthorizer(EventBase& event, AuthorizerFn authorizer,
                                   void* ctx, const Module& proof) {
  std::lock_guard<std::mutex> lock(mu_);
  if (event.authority() == nullptr || !(*event.authority() == proof)) {
    throw InstallError(InstallStatus::kNotAuthority, event.name());
  }
  event.authorizer_ = authorizer;
  event.authorizer_ctx_ = ctx;
}

void Dispatcher::SetEventAsync(EventBase& event, bool async,
                               const Module* requestor) {
  if (async && !AsyncEligible(event.sig())) {
    throw InstallError(InstallStatus::kAsyncByRef, event.name());
  }
  std::lock_guard<std::mutex> lock(mu_);
  CheckIsAuthorityOrAuthorized(event, AuthOp::kInstall, requestor, nullptr);
  event.async_event_.store(async, std::memory_order_release);
  RebuildLocked(event);  // direct mode must be disabled while async
}

void Dispatcher::RequireEphemeralHandlers(EventBase& event,
                                          uint64_t budget_ns,
                                          const Module* requestor) {
  std::lock_guard<std::mutex> lock(mu_);
  CheckIsAuthorityOrAuthorized(event, AuthOp::kInstall, requestor, nullptr);
  event.require_ephemeral_ = true;
  event.ephemeral_budget_ns_ = budget_ns;
  RebuildLocked(event);
}

void Dispatcher::SetForceInterp(EventBase& event, bool force) {
  std::lock_guard<std::mutex> lock(mu_);
  event.force_interp_ = force;
  RebuildLocked(event);
}

void Dispatcher::EnableProfiling(bool enabled) {
  profiling_.store(enabled, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  for (EventBase* event : events_) {
    RebuildLocked(*event);  // profiling disables the direct-call bypass
  }
}

void Dispatcher::SetTracing(const obs::TraceConfig& config) {
  // The obs switch is process-global (the flight recorder is shared);
  // tracing_ scopes the table rebuilds to this dispatcher's events. Only
  // kFull suppresses the bypass and stubs — sampled capture keeps
  // production dispatch and trades per-handler records for a hot path
  // that stays hot.
  obs::SetTraceConfig(config);
  tracing_.store(config.mode == obs::TraceMode::kFull,
                 std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  for (EventBase* event : events_) {
    RebuildLocked(*event);
  }
}

void Dispatcher::EnableTracing(bool enabled) {
  obs::TraceConfig config = obs::GetTraceConfig();
  config.mode = enabled ? obs::TraceMode::kFull : obs::TraceMode::kOff;
  SetTracing(config);
}

std::vector<EventBase*> Dispatcher::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

Dispatcher::Stats Dispatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Dispatcher::RebuildLocked(EventBase& event) {
  auto table = std::make_unique<DispatchTable>();
  table->pool = pool_;
  table->async_mode = config_.async_mode;
  table->returns_value = event.sig().result.cls != TypeClass::kVoid;
  table->result_is_bool = event.sig().result.cls == TypeClass::kBool;
  table->policy = table->returns_value ? event.policy_ : ResultPolicy::kNone;
  table->custom_fold = event.custom_fold_;
  table->custom_fold_ctx = event.custom_fold_ctx_;
  table->default_handler = event.default_binding;
  table->ephemeral_budget_ns = event.ephemeral_budget_ns_;
  table->version = ++event.version_;

  for (const BindingHandle& binding : event.order_list) {
    if (!binding->active.load(std::memory_order_acquire)) {
      continue;
    }
    (binding->async ? table->async_bindings : table->sync_bindings)
        .push_back(binding);
  }

  // --- D1: intrinsic-bypass direct call --------------------------------
  // The candidate is computed regardless of profiling/tracing so the table
  // can classify itself by production dispatch mode (obs_kind) even when
  // the bypass itself is suppressed for measurement fidelity.
  void* direct_candidate = nullptr;
  if (config_.allow_direct && !event.async_event() &&
      table->async_bindings.empty() && table->sync_bindings.size() == 1 &&
      table->custom_fold == nullptr) {
    const Binding& only = *table->sync_bindings[0];
    if (only.fn != nullptr && !only.closure_form && !only.erased &&
        only.guards().empty() && only.byref_params.empty() &&
        !only.ephemeral) {
      direct_candidate = only.fn;
    }
  }
  void* direct = profiling() || tracing() ? nullptr : direct_candidate;

  // --- D3: runtime code generation --------------------------------------
  // Tracing also disables stubs: generated code dispatches handlers without
  // per-handler hooks, so a full-fidelity capture interprets instead.
  size_t num_args = event.sig().params.size();
  bool jitable = direct == nullptr && !tracing() && config_.enable_jit &&
                 !event.force_interp_ && codegen::CodegenAvailable() &&
                 SigJitable(event.sig()) && table->custom_fold == nullptr &&
                 !table->sync_bindings.empty();
  // Incremental installation: defer compilation until the event is hot.
  if (jitable && config_.lazy_compile && !event.hot_) {
    table->lazy_pending = true;
    jitable = false;
  }
  if (jitable) {
    for (const BindingHandle& binding : table->sync_bindings) {
      // Guarded by mu_; compiled micro bodies are cached on the clauses.
      auto& mutable_binding = const_cast<Binding&>(*binding);
      if (binding->ephemeral || binding->may_throw || binding->erased ||
          !CallableJitable(mutable_binding, config_.inline_micro,
                           num_args)) {
        jitable = false;
        break;
      }
      // Published guard clauses are read lock-free by EvalGuards' compiled
      // fast path, so missing JIT bodies are compiled into a copy of the
      // list and republished through the epoch; raises in flight keep
      // interpreting the retired list.
      std::vector<GuardClause> guards = binding->CopyGuards();
      bool compiled_any = false;
      for (GuardClause& guard : guards) {
        bool had_body = guard.compiled != nullptr;
        if (!CallableJitable(guard, config_.inline_micro, num_args)) {
          jitable = false;
          break;
        }
        compiled_any |= !had_body && guard.compiled != nullptr;
      }
      if (!jitable) {
        break;
      }
      if (compiled_any) {
        const_cast<Binding&>(*binding).ReplaceGuards(std::move(guards),
                                                     *epoch_);
      }
    }
  }
  if (jitable) {
    codegen::StubSpec spec;
    spec.num_args = static_cast<int>(num_args);
    spec.policy = table->policy;
    spec.result_is_bool = table->result_is_bool;
    spec.inline_micro = config_.inline_micro;
    spec.optimize = config_.optimize;
    std::optional<TreePlan> tree_plan;
    if (config_.guard_tree &&
        table->sync_bindings.size() >= config_.guard_tree_threshold) {
      tree_plan = PlanGuardTree(table->sync_bindings);
    }
    for (size_t b = 0; b < table->sync_bindings.size(); ++b) {
      const BindingHandle& binding = table->sync_bindings[b];
      codegen::BindingSpec bspec;
      bspec.handler = MakeCallableSpec(*binding, config_.inline_micro);
      bspec.byref_params = binding->byref_params;
      const std::vector<GuardClause>& guards = binding->guards();
      std::vector<const GuardClause*> ordered;
      ordered.reserve(guards.size());
      for (size_t g = 0; g < guards.size(); ++g) {
        if (tree_plan.has_value() && tree_plan->matched_guard[b] == g) {
          continue;  // the decision tree subsumes this guard
        }
        ordered.push_back(&guards[g]);
      }
      if (config_.reorder_guards) {
        // D4: guards are FUNCTIONAL, so evaluation order is free; put
        // cheap inlinable guards first to short-circuit out-of-line calls.
        std::stable_sort(ordered.begin(), ordered.end(),
                         [](const GuardClause* a, const GuardClause* b) {
                           size_t ca = a->prog ? a->prog->Cost() : 1000;
                           size_t cb = b->prog ? b->prog->Cost() : 1000;
                           return ca < cb;
                         });
      }
      for (const GuardClause* guard : ordered) {
        bspec.guards.push_back(
            MakeCallableSpec(*guard, config_.inline_micro));
      }
      spec.bindings.push_back(std::move(bspec));
    }
    if (tree_plan.has_value()) {
      spec.tree = std::move(tree_plan->tree);
    }
    table->stub = codegen::CompileStub(spec);
    if (table->stub != nullptr) {
      ++stats_.stub_compiles;
      if (spec.tree.has_value()) {
        ++stats_.tree_tables;
      }
      table->obs_kind = spec.tree.has_value() ? obs::DispatchKind::kTree
                                              : obs::DispatchKind::kStub;
      obs::FlightRecorder::Global().Emit(obs::TraceKind::kStubCompile,
                                         event.obs_name_,
                                         table->stub->code_size());
    }
  }
  if (direct_candidate != nullptr) {
    // Even when profiling/tracing routes raises through a stub or the
    // interpreter, account them under the production dispatch kind.
    table->obs_kind = obs::DispatchKind::kDirect;
  } else if (table->stub == nullptr) {
    table->obs_kind = obs::DispatchKind::kInterp;
  }
  if (direct != nullptr) {
    ++stats_.direct_tables;
  } else if (table->stub == nullptr) {
    ++stats_.interp_tables;
  }
  ++stats_.rebuilds;
  obs::FlightRecorder::Global().Emit(obs::TraceKind::kRebuild,
                                     event.obs_name_, table->version);

  // Publish one replica per shard, each with a single store; old replicas
  // retire through the owning shard's epoch domain. The stub is compiled
  // once (above, for shard 0) and byte-copied for the other shards so every
  // shard's dispatch loop lives in its own executable pages.
  for (uint32_t s = 1; s < shard_count_; ++s) {
    auto replica = std::make_unique<DispatchTable>();
    replica->sync_bindings = table->sync_bindings;
    replica->async_bindings = table->async_bindings;
    replica->default_handler = table->default_handler;
    replica->policy = table->policy;
    replica->custom_fold = table->custom_fold;
    replica->custom_fold_ctx = table->custom_fold_ctx;
    replica->returns_value = table->returns_value;
    replica->result_is_bool = table->result_is_bool;
    replica->ephemeral_budget_ns = table->ephemeral_budget_ns;
    replica->async_mode = table->async_mode;
    replica->pool = table->pool;
    replica->shard = s;
    replica->lazy_pending = table->lazy_pending;
    replica->obs_kind = table->obs_kind;
    replica->version = table->version;
    if (table->stub != nullptr) {
      replica->stub = table->stub->Clone();
      if (replica->stub != nullptr) {
        ++stats_.stub_replicas;
      } else {
        // The platform refused another executable mapping; this shard
        // interprets the same bindings instead (semantically identical).
        replica->obs_kind = obs::DispatchKind::kInterp;
      }
    }
    DispatchTable* old = event.table_slot(s).exchange(
        replica.release(), std::memory_order_acq_rel);
    if (old != nullptr) {
      shards_[s].epoch->Retire(old, &DeleteTable);
    }
  }
  DispatchTable* old = event.table_.exchange(table.release(),
                                             std::memory_order_acq_rel);
  event.direct_fn_.store(direct, std::memory_order_release);
  if (old != nullptr) {
    epoch_->Retire(old, &DeleteTable);
  }
}

void Dispatcher::ExportMetricsSource(void* ctx, std::ostream& os) {
  auto* self = static_cast<Dispatcher*>(ctx);
  Stats stats = self->stats();
  auto line = [&os, self](const char* name, uint64_t value) {
    os << name << "{instance=\"" << self->instance_id_ << "\"} " << value
       << "\n";
  };
  line("spin_dispatcher_installs_total", stats.installs);
  line("spin_dispatcher_uninstalls_total", stats.uninstalls);
  line("spin_dispatcher_rebuilds_total", stats.rebuilds);
  line("spin_dispatcher_stub_compiles_total", stats.stub_compiles);
  line("spin_dispatcher_interp_tables_total", stats.interp_tables);
  line("spin_dispatcher_direct_tables_total", stats.direct_tables);
  line("spin_dispatcher_tree_tables_total", stats.tree_tables);
  line("spin_dispatcher_lazy_promotions_total", stats.lazy_promotions);
  line("spin_dispatcher_stub_replicas_total", stats.stub_replicas);
  line("spin_dispatcher_shards", self->shard_count_);
  // The pool and epoch domain may be process-global and shared between
  // dispatchers; the instance label keeps the series distinct regardless.
  // Aggregates stay unlabeled for dashboard continuity; per-shard series
  // add a `shard` label (the pool queue of the same index drains a shard's
  // async outbox, so pool queues are reported per shard).
  line("spin_pool_queue_depth", self->pool_->queue_depth());
  line("spin_pool_pending", self->pool_->pending());
  line("spin_pool_executed_total", self->pool_->executed());
  line("spin_pool_steals_total", self->pool_->steals());
  auto shard_line = [&os, self](const char* name, uint32_t shard,
                                uint64_t value) {
    os << name << "{instance=\"" << self->instance_id_ << "\",shard=\""
       << shard << "\"} " << value << "\n";
  };
  if (self->shard_count_ > 1) {
    size_t pool_queues = self->pool_->queues();
    for (uint32_t s = 0; s < self->shard_count_; ++s) {
      shard_line("spin_dispatcher_shard_raises_total", s,
                 self->shard_raises(s));
      if (s < pool_queues) {
        shard_line("spin_pool_queue_depth", s, self->pool_->queue_depth(s));
        shard_line("spin_pool_executed_total", s, self->pool_->executed(s));
        shard_line("spin_pool_steals_total", s, self->pool_->steals(s));
      }
    }
  }
  line("spin_epoch_current", self->epoch_->epoch());
  line("spin_epoch_retired", self->epoch_->retired_count());
  line("spin_epoch_reclaimed_total", self->epoch_->reclaimed_total());
  line("spin_quota_limit_bytes", self->quota_.limit());
  for (const auto& [module, used] : self->quota_.Snapshot()) {
    os << "spin_quota_used_bytes{instance=\"" << self->instance_id_
       << "\",module=\"";
    obs::WriteLabelValue(os, module);
    os << "\"} " << used << "\n";
  }
}

void Dispatcher::WatchdogProbeSource(void* ctx,
                                     std::vector<obs::WatchSample>& out) {
  auto* self = static_cast<Dispatcher*>(ctx);
  // One queue sample per shard outbox: depth is the backlog, executed the
  // progress counter the stall rule watches. Shards beyond the pool's
  // queue count alias earlier queues (SubmitTo wraps), so cap at both.
  size_t pool_queues = self->pool_->queues();
  for (uint32_t s = 0; s < self->shard_count_ && s < pool_queues; ++s) {
    obs::WatchSample queue;
    queue.kind = obs::AnomalyKind::kQueueStall;
    queue.name = self->watch_pool_name_;
    queue.shard = s;
    queue.depth = self->pool_->queue_depth(s);
    queue.progress = self->pool_->executed(s);
    out.push_back(queue);
  }
  for (uint32_t s = 0; s < self->shard_count_; ++s) {
    obs::WatchSample epoch;
    epoch.kind = obs::AnomalyKind::kEpochStall;
    epoch.name = self->watch_epoch_name_;
    epoch.shard = s;
    epoch.depth = self->shards_[s].epoch->retired_count();
    epoch.progress = self->shards_[s].epoch->reclaimed_total();
    out.push_back(epoch);
  }
}

}  // namespace spin
