// The SPIN event dispatcher (the paper's primary contribution).
//
// Public surface:
//   Event<R(Args...)>            a typed event; Raise() is the invocation
//   Dispatcher                   install/uninstall/authorize/configure
//   BindingHandle                the result of an installation
//
// Typical use (Figure 2's shape):
//   spin::Module mach("MachEmulator");
//   spin::Event<void(Strand*, SavedState&)> Syscall("MachineTrap.Syscall",
//                                                   &machine_trap_module);
//   auto binding = spin::Dispatcher::Global().InstallHandler(
//       Syscall, &SyscallGuard, &MachSyscall, {.module = &mach});
//   ...
//   Syscall.Raise(strand, state);
//
// Events with only their intrinsic handler dispatch as a plain indirect
// call; richer events go through a runtime-generated stub (x86-64) or the
// interpreter, all semantically equivalent.
#ifndef SRC_CORE_DISPATCHER_H_
#define SRC_CORE_DISPATCHER_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

#include "src/codegen/frame.h"
#include "src/core/binding.h"
#include "src/core/dispatch_state.h"
#include "src/core/ephemeral.h"
#include "src/core/errors.h"
#include "src/core/invoke.h"
#include "src/core/quota.h"
#include "src/micro/program.h"
#include "src/obs/obs.h"
#include "src/obs/watchdog.h"
#include "src/rt/epoch.h"
#include "src/rt/thread_pool.h"
#include "src/types/type_registry.h"
#include "src/types/typecheck.h"

namespace spin {

template <typename Sig>
class Event;

struct InstallOptions {
  Order order{};
  bool async = false;      // run this handler detached (§2.6)
  bool ephemeral = false;  // handler invites termination (EPHEMERAL)
  // Handlers invoked from generated code must not throw: C++ exceptions
  // cannot unwind through the runtime-generated frames. A handler that may
  // throw declares it here; its event dispatches through the interpreter,
  // where exceptions propagate to the raiser. (SPIN's analogue: Modula-3
  // exceptions were part of the checked signature.)
  bool may_throw = false;
  const Module* module = nullptr;  // requestor identity for authorization
  void* credentials = nullptr;     // opaque reference for the authorizer
};

class Dispatcher {
 public:
  struct Config {
    bool enable_jit = true;      // D3: runtime code generation
    bool inline_micro = true;    // D3: inline small guards/handlers
    bool optimize = true;        // D3: peephole pass
    bool reorder_guards = true;  // D4: cheap (inlinable) guards first
    bool allow_direct = true;    // D1: intrinsic-bypass fast path
    // Guard decision tree (§3.2 future work, off by default to match the
    // evaluated system): when >= guard_tree_threshold bindings each carry a
    // micro guard comparing the same header field against distinct
    // constants, compile a binary-search dispatch instead of a linear
    // guard chain.
    bool guard_tree = false;
    size_t guard_tree_threshold = 4;
    // Incremental installation (§3.1 future work, off by default): defer
    // stub compilation until an event has been raised
    // lazy_promote_raises times, making installs O(1) until the event
    // proves hot.
    bool lazy_compile = false;
    uint32_t lazy_promote_raises = 64;
    // Dispatch-state shards ("RSS for events", see src/core/shard.h): each
    // raise hashes its source to one of `shards` replicas, each with its
    // own epoch domain, table replica, stub copy, and async outbox queue.
    // 1 (the default) is the historical single-replica dispatcher; 0 means
    // one shard per hardware thread (capped at kMaxShards).
    uint32_t shards = 1;
    AsyncMode async_mode = AsyncMode::kPooled;
    ThreadPool* pool = nullptr;        // default: ThreadPool::Global()
    EpochDomain* epoch = nullptr;      // default: EpochDomain::Global()
    size_t quota_bytes_per_module = 4u << 20;
  };

  static constexpr uint32_t kMaxShards = 64;

  Dispatcher() : Dispatcher(Config{}) {}
  explicit Dispatcher(const Config& config);
  ~Dispatcher();
  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  // The process-wide dispatcher most events attach to.
  static Dispatcher& Global();

  // --- Handler installation (typed) -----------------------------------

  template <typename R, typename... A>
  BindingHandle InstallHandler(Event<R(A...)>& event, R (*handler)(A...),
                               const InstallOptions& opts = {});

  // Figure 2's three-argument form: guard, then handler.
  template <typename R, typename... A>
  BindingHandle InstallHandler(Event<R(A...)>& event, bool (*guard)(A...),
                               R (*handler)(A...),
                               const InstallOptions& opts = {});

  // Closure form: the closure is passed as the handler's first argument;
  // its type must be a subtype of the declared parameter (§2.4).
  template <typename R, typename... A, typename C>
  BindingHandle InstallHandler(Event<R(A...)>& event,
                               R (*handler)(C*, A...), C* closure,
                               const InstallOptions& opts = {});

  // Convenience: installs a capturing callable by boxing it as a closure.
  template <typename R, typename... A, typename F>
  BindingHandle InstallLambda(Event<R(A...)>& event, F f,
                              const InstallOptions& opts = {});

  // Filter installation (§2.3 "Passing arguments"): the handler may take
  // by-value event parameters by reference and mutate them for handlers
  // ordered after it.
  template <typename R, typename... A, typename... FA>
  BindingHandle InstallFilter(Event<R(A...)>& event, R (*filter)(FA...),
                              const InstallOptions& opts = {});

  // Installs a micro-program as the handler body (inlinable into the
  // generated dispatch routine).
  BindingHandle InstallMicroHandler(EventBase& event, micro::Program prog,
                                    const InstallOptions& opts = {});

  // Installs a type-erased handler: `invoker` is called with `ctx` and the
  // raw argument slots of each raise. This is the hook proxy layers build
  // on (src/remote installs event proxies this way): the proxy reads the
  // slots against the event's runtime signature instead of a C++ one, so
  // one proxy implementation serves every marshalable event shape. The
  // binding adopts the event's own signature and always dispatches through
  // the interpreter (`ctx` is not a procedure the stub compiler could
  // call), which also lets the proxy surface failures as exceptions
  // (RemoteError) through the raise.
  BindingHandle InstallErasedHandler(EventBase& event, void* ctx,
                                     HandlerInvoker invoker,
                                     const InstallOptions& opts = {});

  // --- Guards ----------------------------------------------------------

  template <typename R, typename... A>
  void AddGuard(Event<R(A...)>& event, const BindingHandle& binding,
                bool (*guard)(A...));

  template <typename R, typename... A, typename C>
  void AddGuard(Event<R(A...)>& event, const BindingHandle& binding,
                bool (*guard)(C*, A...), C* closure);

  // How a micro-program guard clause executes on the raise path. kJit
  // compiles the program to a native procedure at install time (falling
  // back to the interpreter when codegen is unavailable); kInterpret pins
  // the interpreted path — the nojit oracle and the ablation baseline.
  enum class GuardCompileMode : uint8_t { kJit, kInterpret };

  void AddMicroGuard(const BindingHandle& binding, micro::Program prog,
                     GuardCompileMode mode = GuardCompileMode::kJit);

  // Authority-imposed micro-program guard — the wire-transportable form of
  // ImposeGuard. Remote proxies install the guards an exporter-side
  // authorizer imposed on their bind through this entry; like every §2.5
  // imposition, the clause is marked imposed and evaluates before the
  // installer's own guards. Guards that arrive over the wire must pass the
  // micro::Verify admission check before they get here; installation then
  // compiles them (kJit) so a verified remote guard costs the same per
  // raise as a local one.
  void ImposeMicroGuard(const BindingHandle& binding, micro::Program prog,
                        GuardCompileMode mode = GuardCompileMode::kJit);

  // Removes one guard by position (§2.5: imposed guards "can be added and
  // removed dynamically"). Removing an imposed guard consults the event's
  // authorizer (op kImposeGuard).
  void RemoveGuard(const BindingHandle& binding, size_t index,
                   const Module* requestor = nullptr);
  size_t GuardCount(const BindingHandle& binding) const;

  // Authority-imposed guard on an existing binding (Figure 3's
  // Dispatcher.ImposeGuard). Imposed guards evaluate before the
  // installer's own guards.
  template <typename R, typename... A, typename C>
  void ImposeGuard(Event<R(A...)>& event, const BindingHandle& binding,
                   bool (*guard)(C*, A...), C* closure);

  // --- Removal / ordering ----------------------------------------------

  void Uninstall(const BindingHandle& binding,
                 const Module* requestor = nullptr,
                 void* credentials = nullptr);

  void SetOrder(const BindingHandle& binding, Order order);
  Order GetOrder(const BindingHandle& binding) const;

  // --- Results and defaults (§2.3) --------------------------------------

  template <typename R, typename... A>
  BindingHandle InstallDefaultHandler(Event<R(A...)>& event,
                                      R (*handler)(A...),
                                      const InstallOptions& opts = {});

  template <typename R, typename... A, typename C>
  BindingHandle InstallDefaultHandler(Event<R(A...)>& event,
                                      R (*handler)(C*, A...), C* closure,
                                      const InstallOptions& opts = {});

  // Custom result handler: called per fired handler; returns the running
  // result. `index` counts previously fired handlers.
  template <typename R, typename... A>
  void SetResultHandler(Event<R(A...)>& event,
                        R (*fold)(R result, R current, uint32_t index),
                        const Module* requestor = nullptr);

  void SetResultPolicy(EventBase& event, ResultPolicy policy,
                       const Module* requestor = nullptr);

  // --- Access control (§2.5) --------------------------------------------

  // Installing an authorizer requires demonstrating authority: `proof`
  // must be the module that defines the event's intrinsic handler.
  void InstallAuthorizer(EventBase& event, AuthorizerFn authorizer,
                         void* ctx, const Module& proof);

  // Runs `request` through the event's authorizer exactly as the local
  // install path does (same lock, same callback, same ImposeGuard rules).
  // Infrastructure that mediates bindings it does not hand to Install —
  // the remote exporter authorizing a bind from another host — consults
  // the §2.5 machinery through this entry instead of forking it. Returns
  // false on denial; events without an authorizer are open.
  bool Authorize(AuthRequest& request);

  // --- Event-level properties -------------------------------------------

  void SetEventAsync(EventBase& event, bool async,
                     const Module* requestor = nullptr);
  void RequireEphemeralHandlers(EventBase& event, uint64_t budget_ns,
                                const Module* requestor = nullptr);
  void SetForceInterp(EventBase& event, bool force);  // ablation toggle
  void DeregisterIntrinsic(EventBase& event,
                           const Module* requestor = nullptr);

  // --- Introspection -----------------------------------------------------

  void EnableProfiling(bool enabled);
  bool profiling() const {
    return profiling_.load(std::memory_order_acquire);
  }

  // Flight-recorder capture for this dispatcher's events.
  //
  // kFull rebuilds every dispatch table at full fidelity — no intrinsic
  // bypass and no generated stubs — so per-handler records (guard
  // rejections, handler fires, filter mutations) are emitted for every
  // raise. kSampled keeps production tables (stubs and bypass intact) and
  // captures 1-in-sample_rate top-level raises with their complete causal
  // trees at raise/span granularity; the unsampled path pays only the
  // thread-local sampling decision, so sampled tracing can stay on under
  // production traffic. kOff restores production dispatch and clears the
  // process-wide obs switch. See src/obs/trace.h for exporting a capture.
  void SetTracing(const obs::TraceConfig& config);
  // Boolean compatibility wrapper: true = kFull, false = kOff.
  void EnableTracing(bool enabled);
  // True when tables are rebuilt at full fidelity (mode == kFull).
  bool tracing() const { return tracing_.load(std::memory_order_acquire); }

  std::vector<EventBase*> Events() const;

  // Finds a registered event by name (first match); nullptr if absent.
  EventBase* FindEvent(const std::string& name) const;

  // Human-readable description of an event's current dispatch state:
  // signature, dispatch kind (direct / generated stub / decision tree /
  // interpreted / lazy-pending), handler and guard counts, generated-code
  // size, and — when the observability layer has samples — the per-kind
  // raise-latency summary (count, p50/p90/p99/max). Diagnostic counterpart
  // of SPIN's dispatcher introspection.
  std::string Describe(EventBase& event) const;

  // Dumps Describe() for every registered event.
  void DescribeAll(std::ostream& os) const;

  struct Stats {
    uint64_t installs = 0;
    uint64_t uninstalls = 0;
    uint64_t rebuilds = 0;
    uint64_t stub_compiles = 0;
    uint64_t interp_tables = 0;
    uint64_t direct_tables = 0;
    uint64_t tree_tables = 0;      // stubs using the guard decision tree
    uint64_t lazy_promotions = 0;  // lazy events promoted to compiled
    uint64_t stub_replicas = 0;    // per-shard byte-copies of compiled stubs
  };
  Stats stats() const;

  EpochDomain& epoch() { return *epoch_; }
  ThreadPool& pool() { return *pool_; }
  QuotaManager& quota() { return quota_; }
  const Config& config() const { return config_; }

  // --- Sharding ---------------------------------------------------------

  // Number of dispatch-state shards (fixed at construction).
  uint32_t shard_count() const { return shard_count_; }

  // The epoch domain protecting shard `shard`'s table replicas. Shard 0 is
  // always the configured/global domain, so single-shard dispatchers and
  // install-side introspection keep their historical reclamation protocol.
  EpochDomain& shard_epoch(uint32_t shard) { return *shards_[shard].epoch; }

  // Raises dispatched through shard `shard` (counted only when sharded, so
  // the single-shard raise path stays free of atomic read-modify-writes).
  uint64_t shard_raises(uint32_t shard) const {
    return shards_[shard].raises.load(std::memory_order_relaxed);
  }

  // Waits until every shard's retired tables have been reclaimed. The
  // single-shard equivalent of epoch().Synchronize().
  void SynchronizeAllShards();

  // Untyped installation core (used by the typed wrappers and by
  // infrastructure that builds bindings directly).
  BindingHandle Install(EventBase& event, std::shared_ptr<Binding> binding,
                        const InstallOptions& opts);
  BindingHandle InstallDefault(EventBase& event,
                               std::shared_ptr<Binding> binding,
                               const InstallOptions& opts);
  void SetResultFold(EventBase& event, ResultFold fold, void* ctx,
                     const Module* requestor);

 private:
  friend class EventBase;
  friend struct AuthRequest;

  void RegisterEvent(EventBase* event);
  void UnregisterEvent(EventBase* event);
  void PromoteLazyEvent(EventBase& event);
  void RebuildLocked(EventBase& event);
  void CountShardRaise(uint32_t shard) {
    shards_[shard].raises.fetch_add(1, std::memory_order_relaxed);
  }
  bool AuthorizeLocked(AuthRequest& request);
  void PlaceLocked(EventBase& event, const BindingHandle& binding,
                   const Order& order);
  void ReplaceBindingGuardsLocked(const BindingHandle& binding,
                                  std::vector<GuardClause> guards);
  void CheckIsAuthorityOrAuthorized(EventBase& event, AuthOp op,
                                    const Module* requestor,
                                    void* credentials);

  static void ExportMetricsSource(void* ctx, std::ostream& os);

  // Anomaly-watchdog probe: reports per-shard pool queue (depth, executed)
  // and epoch domain (retired, reclaimed) samples each monitor period.
  static void WatchdogProbeSource(void* ctx,
                                  std::vector<obs::WatchSample>& out);

  // One dispatch-state shard: its epoch domain (owned for shards 1..N-1,
  // aliasing epoch_ for shard 0) and its raise counter, padded so counters
  // of different shards never share a cache line.
  struct alignas(64) ShardState {
    EpochDomain* epoch = nullptr;
    std::unique_ptr<EpochDomain> owned_epoch;
    std::atomic<uint64_t> raises{0};
  };

  Config config_;
  EpochDomain* epoch_;
  ThreadPool* pool_;
  uint32_t shard_count_;
  std::unique_ptr<ShardState[]> shards_;
  QuotaManager quota_;
  std::atomic<bool> profiling_{false};
  std::atomic<bool> tracing_{false};
  const uint64_t instance_id_;  // label for exported metrics
  // Interned identities stamped into watchdog anomaly records.
  const char* watch_pool_name_ = nullptr;
  const char* watch_epoch_name_ = nullptr;

  mutable std::mutex mu_;  // guards install-side state of all owned events
  std::vector<EventBase*> events_;
  Stats stats_;
};

// --- Typed events -----------------------------------------------------------

template <typename R, typename... A>
class Event<R(A...)> : public EventBase {
  static_assert(sizeof...(A) <= static_cast<size_t>(kMaxEventArgs),
                "events support at most kMaxEventArgs parameters");

 public:
  using IntrinsicFn = R (*)(A...);

  // Declares an event. `authority` is the module defining the intrinsic
  // handler (§2.5); `intrinsic` is the procedure sharing the event's name,
  // installed immediately if provided.
  explicit Event(std::string name, const Module* authority = nullptr,
                 IntrinsicFn intrinsic = nullptr,
                 Dispatcher* owner = nullptr)
      : EventBase(std::move(name), MakeProcSig<R(A...)>(), authority,
                  owner != nullptr ? owner : &Dispatcher::Global()) {
    if (intrinsic != nullptr) {
      auto binding = std::make_shared<Binding>();
      binding->fn = reinterpret_cast<void*>(intrinsic);
      binding->invoker = &NativeInvoke<R(A...), R(A...)>::Call;
      binding->sig = MakeProcSig<R(A...)>();
      binding->owner = authority;
      binding->intrinsic = true;
      InstallOptions opts;
      opts.module = authority;
      this->owner().Install(*this, std::move(binding), opts);
    }
  }

  // Raising the event (§2.1): the syntax and, for intrinsic-only events,
  // the cost of a procedure call.
  R Raise(A... args) {
    if (void* direct = direct_fn()) {
      return reinterpret_cast<R (*)(A...)>(direct)(
          static_cast<A&&>(args)...);
    }
    if (async_event()) {
      // SetEventAsync rejects by-ref events, so this branch is unreachable
      // for them; the constexpr guard keeps the by-ref instantiation legal.
      if constexpr ((!std::is_reference_v<A> && ...)) {
        RaiseAsyncImpl(static_cast<A&&>(args)...);
        if constexpr (!std::is_void_v<R>) {
          throw AsyncError("synchronous result from asynchronous event " +
                           name());
        } else {
          return;
        }
      }
    }
    RaiseFrame frame;
    Pack(frame, args...);
    RaiseErased(frame);
    if constexpr (!std::is_void_v<R>) {
      return SlotCodec<R>::Unpack(frame.result);
    }
  }

  // Detached raise (§2.6): by-ref parameters are rejected at compile time
  // ("arguments can not be passed by reference; they may be incidentally
  // destroyed before they go out of scope").
  void RaiseAsync(A... args) {
    RaiseAsyncImpl(static_cast<A&&>(args)...);
  }

 private:
  void RaiseAsyncImpl(A... args) {
    static_assert((!std::is_reference_v<A> && ...),
                  "asynchronous events may not take by-ref arguments");
    if constexpr (!std::is_void_v<R>) {
      if (!has_default_handler()) {
        throw AsyncError("asynchronous raise of result-returning event " +
                         name() + " requires a default handler");
      }
    }
    RaiseFrame frame;
    Pack(frame, args...);
    RaiseAsyncErased(frame);
  }

  static void Pack(RaiseFrame& frame, A... args) {
    size_t i = 0;
    ((frame.args[i++] = SlotCodec<A>::Pack(static_cast<A&&>(args))), ...);
    (void)i;
  }
};

// --- Typed method implementations -------------------------------------------

namespace core_internal {

template <typename R, typename... A>
std::shared_ptr<Binding> MakeNativeBinding(Event<R(A...)>& event,
                                           void* fn, HandlerInvoker invoker,
                                           ProcSig sig,
                                           const InstallOptions& opts) {
  auto binding = std::make_shared<Binding>();
  binding->fn = fn;
  binding->invoker = invoker;
  binding->sig = std::move(sig);
  binding->owner = opts.module;
  binding->async = opts.async;
  binding->ephemeral = opts.ephemeral;
  binding->may_throw = opts.may_throw;
  binding->order = opts.order;
  (void)event;
  return binding;
}

inline void ThrowIfTypecheckFails(TypecheckStatus status,
                                  const std::string& what) {
  if (status != TypecheckStatus::kOk) {
    throw InstallError(status, what);
  }
}

}  // namespace core_internal

template <typename R, typename... A>
BindingHandle Dispatcher::InstallHandler(Event<R(A...)>& event,
                                         R (*handler)(A...),
                                         const InstallOptions& opts) {
  ProcSig sig = MakeProcSig<R(A...)>();
  core_internal::ThrowIfTypecheckFails(CheckHandler(event.sig(), sig, {}),
                                       event.name());
  auto binding = core_internal::MakeNativeBinding(
      event, reinterpret_cast<void*>(handler),
      &NativeInvoke<R(A...), R(A...)>::Call, std::move(sig), opts);
  return Install(event, std::move(binding), opts);
}

template <typename R, typename... A>
BindingHandle Dispatcher::InstallHandler(Event<R(A...)>& event,
                                         bool (*guard)(A...),
                                         R (*handler)(A...),
                                         const InstallOptions& opts) {
  ProcSig guard_sig = MakeProcSig<bool(A...)>();
  guard_sig.functional = true;  // declared FUNCTIONAL at registration
  core_internal::ThrowIfTypecheckFails(
      CheckGuard(event.sig(), guard_sig, {}), event.name());

  ProcSig sig = MakeProcSig<R(A...)>();
  core_internal::ThrowIfTypecheckFails(CheckHandler(event.sig(), sig, {}),
                                       event.name());
  auto binding = core_internal::MakeNativeBinding(
      event, reinterpret_cast<void*>(handler),
      &NativeInvoke<R(A...), R(A...)>::Call, std::move(sig), opts);
  GuardClause clause;
  clause.fn = reinterpret_cast<void*>(guard);
  clause.invoker = &GuardInvoke<bool(A...)>::Call;
  binding->AddGuardPreActive(std::move(clause), /*front=*/false);
  return Install(event, std::move(binding), opts);
}

template <typename R, typename... A, typename C>
BindingHandle Dispatcher::InstallHandler(Event<R(A...)>& event,
                                         R (*handler)(C*, A...), C* closure,
                                         const InstallOptions& opts) {
  ProcSig sig = MakeProcSig<R(C*, A...)>();
  TypecheckOptions topts;
  topts.has_closure = true;
  topts.closure_type = TypeOf<C>();
  core_internal::ThrowIfTypecheckFails(
      CheckHandler(event.sig(), sig, topts), event.name());
  auto binding = core_internal::MakeNativeBinding(
      event, reinterpret_cast<void*>(handler),
      &NativeInvokeClosure<R(A...), R(C*, A...)>::Call, std::move(sig),
      opts);
  binding->closure = closure;
  binding->closure_form = true;
  return Install(event, std::move(binding), opts);
}

template <typename R, typename... A, typename F>
BindingHandle Dispatcher::InstallLambda(Event<R(A...)>& event, F f,
                                        const InstallOptions& opts) {
  auto boxed = std::make_shared<F>(std::move(f));
  R (*trampoline)(F*, A...) = [](F* closure, A... args) -> R {
    return (*closure)(static_cast<A&&>(args)...);
  };
  BindingHandle binding = InstallHandler(event, trampoline, boxed.get(),
                                         opts);
  binding->keep_alive = boxed;
  return binding;
}

template <typename R, typename... A, typename... FA>
BindingHandle Dispatcher::InstallFilter(Event<R(A...)>& event,
                                        R (*filter)(FA...),
                                        const InstallOptions& opts) {
  static_assert(sizeof...(A) == sizeof...(FA),
                "filter arity must match the event");
  ProcSig sig = MakeProcSig<R(FA...)>();
  TypecheckOptions topts;
  topts.as_filter = true;
  core_internal::ThrowIfTypecheckFails(
      CheckHandler(event.sig(), sig, topts), event.name());
  auto binding = core_internal::MakeNativeBinding(
      event, reinterpret_cast<void*>(filter),
      &NativeInvoke<R(A...), R(FA...)>::Call, std::move(sig), opts);
  // Record which by-value parameters the filter widened to by-ref.
  uint8_t index = 0;
  ((std::is_reference_v<FA> && !std::is_reference_v<A>
        ? binding->byref_params.push_back(index++)
        : void(index++)),
   ...);
  return Install(event, std::move(binding), opts);
}

template <typename R, typename... A>
void Dispatcher::AddGuard(Event<R(A...)>& event, const BindingHandle& binding,
                          bool (*guard)(A...)) {
  ProcSig guard_sig = MakeProcSig<bool(A...)>();
  guard_sig.functional = true;
  core_internal::ThrowIfTypecheckFails(
      CheckGuard(event.sig(), guard_sig, {}), event.name());
  GuardClause clause;
  clause.fn = reinterpret_cast<void*>(guard);
  clause.invoker = &GuardInvoke<bool(A...)>::Call;
  std::vector<GuardClause> guards = binding->CopyGuards();
  guards.push_back(std::move(clause));
  ReplaceBindingGuardsLocked(binding, std::move(guards));
}

template <typename R, typename... A, typename C>
void Dispatcher::AddGuard(Event<R(A...)>& event, const BindingHandle& binding,
                          bool (*guard)(C*, A...), C* closure) {
  ProcSig guard_sig = MakeProcSig<bool(C*, A...)>();
  guard_sig.functional = true;
  TypecheckOptions topts;
  topts.has_closure = true;
  topts.closure_type = TypeOf<C>();
  core_internal::ThrowIfTypecheckFails(
      CheckGuard(event.sig(), guard_sig, topts), event.name());
  GuardClause clause;
  clause.fn = reinterpret_cast<void*>(guard);
  clause.closure = closure;
  clause.closure_form = true;
  clause.invoker = &GuardInvokeClosure<bool(C*, A...)>::Call;
  std::vector<GuardClause> guards = binding->CopyGuards();
  guards.push_back(std::move(clause));
  ReplaceBindingGuardsLocked(binding, std::move(guards));
}

template <typename R, typename... A, typename C>
void Dispatcher::ImposeGuard(Event<R(A...)>& event,
                             const BindingHandle& binding,
                             bool (*guard)(C*, A...), C* closure) {
  ProcSig guard_sig = MakeProcSig<bool(C*, A...)>();
  guard_sig.functional = true;
  TypecheckOptions topts;
  topts.has_closure = true;
  topts.closure_type = TypeOf<C>();
  core_internal::ThrowIfTypecheckFails(
      CheckGuard(event.sig(), guard_sig, topts), event.name());
  GuardClause clause;
  clause.fn = reinterpret_cast<void*>(guard);
  clause.closure = closure;
  clause.closure_form = true;
  clause.imposed = true;
  clause.invoker = &GuardInvokeClosure<bool(C*, A...)>::Call;
  std::vector<GuardClause> guards = binding->CopyGuards();
  guards.insert(guards.begin(), std::move(clause));
  ReplaceBindingGuardsLocked(binding, std::move(guards));
}

template <typename R, typename... A>
BindingHandle Dispatcher::InstallDefaultHandler(Event<R(A...)>& event,
                                                R (*handler)(A...),
                                                const InstallOptions& opts) {
  ProcSig sig = MakeProcSig<R(A...)>();
  core_internal::ThrowIfTypecheckFails(CheckHandler(event.sig(), sig, {}),
                                       event.name());
  auto binding = core_internal::MakeNativeBinding(
      event, reinterpret_cast<void*>(handler),
      &NativeInvoke<R(A...), R(A...)>::Call, std::move(sig), opts);
  return InstallDefault(event, std::move(binding), opts);
}

template <typename R, typename... A, typename C>
BindingHandle Dispatcher::InstallDefaultHandler(Event<R(A...)>& event,
                                                R (*handler)(C*, A...),
                                                C* closure,
                                                const InstallOptions& opts) {
  ProcSig sig = MakeProcSig<R(C*, A...)>();
  TypecheckOptions topts;
  topts.has_closure = true;
  topts.closure_type = TypeOf<C>();
  core_internal::ThrowIfTypecheckFails(
      CheckHandler(event.sig(), sig, topts), event.name());
  auto binding = core_internal::MakeNativeBinding(
      event, reinterpret_cast<void*>(handler),
      &NativeInvokeClosure<R(A...), R(C*, A...)>::Call, std::move(sig),
      opts);
  binding->closure = closure;
  binding->closure_form = true;
  return InstallDefault(event, std::move(binding), opts);
}

template <typename R, typename... A>
void Dispatcher::SetResultHandler(Event<R(A...)>& event,
                                  R (*fold)(R, R, uint32_t),
                                  const Module* requestor) {
  // Type-erase through a per-instantiation trampoline; ctx carries the
  // typed fold function.
  ResultFold erased = [](void* ctx, uint64_t result, uint64_t current,
                         uint32_t index) -> uint64_t {
    auto* f = reinterpret_cast<R (*)(R, R, uint32_t)>(ctx);
    return SlotCodec<R>::Pack(f(SlotCodec<R>::Unpack(result),
                                SlotCodec<R>::Unpack(current), index));
  };
  SetResultFold(event, erased, reinterpret_cast<void*>(fold), requestor);
}

// Builds a typed imposed-guard clause for use from an authorizer callback
// (AuthRequest::ImposeGuard), mirroring Figure 3's Dispatcher.ImposeGuard.
template <typename C, typename... A>
GuardClause MakeImposedGuard(bool (*guard)(C*, A...), C* closure) {
  GuardClause clause;
  clause.fn = reinterpret_cast<void*>(guard);
  clause.closure = closure;
  clause.closure_form = true;
  clause.imposed = true;
  clause.invoker = &GuardInvokeClosure<bool(C*, A...)>::Call;
  return clause;
}

// Builds a micro-program imposed-guard clause for use from an authorizer
// callback. This is the only imposed-guard shape that can cross the wire
// to a remote binder (see src/remote): the program must be FUNCTIONAL and
// address-free, with num_args equal to the event's parameter count.
inline GuardClause MakeImposedMicroGuard(micro::Program prog) {
  GuardClause clause;
  clause.prog = std::move(prog);
  clause.imposed = true;
  return clause;
}

// Builds a typed guard clause without a closure.
template <typename... A>
GuardClause MakeGuard(bool (*guard)(A...)) {
  GuardClause clause;
  clause.fn = reinterpret_cast<void*>(guard);
  clause.invoker = &GuardInvoke<bool(A...)>::Call;
  return clause;
}

}  // namespace spin

// Declares an event object named Interface_Name for the given procedure
// signature, e.g. SPIN_DEFINE_EVENT(MachineTrap, Syscall,
// void(Strand*, SavedState&)).
#define SPIN_DEFINE_EVENT(interface_name, event_name, ...)    \
  ::spin::Event<__VA_ARGS__> interface_name##_##event_name(   \
      #interface_name "." #event_name)

#endif  // SRC_CORE_DISPATCHER_H_
