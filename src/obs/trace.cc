#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "src/rt/clock.h"

namespace spin {
namespace obs {
namespace {

thread_local void* t_ring = nullptr;  // FlightRecorder::Ring*, Global() only

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

void JsonEscape(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << static_cast<char>(c);
        }
    }
  }
}

}  // namespace

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kRaiseBegin:
      return "raise_begin";
    case TraceKind::kRaiseEnd:
      return "raise_end";
    case TraceKind::kGuardReject:
      return "guard_reject";
    case TraceKind::kHandlerFire:
      return "handler_fire";
    case TraceKind::kFilterMutate:
      return "filter_mutate";
    case TraceKind::kAsyncEnqueue:
      return "async_enqueue";
    case TraceKind::kAsyncExecute:
      return "async_execute";
    case TraceKind::kInstall:
      return "install";
    case TraceKind::kUninstall:
      return "uninstall";
    case TraceKind::kRebuild:
      return "rebuild";
    case TraceKind::kStubCompile:
      return "stub_compile";
    case TraceKind::kLazyPromote:
      return "lazy_promote";
    case TraceKind::kEpochReclaim:
      return "epoch_reclaim";
    case TraceKind::kRemoteMarshal:
      return "remote_marshal";
    case TraceKind::kRemoteSend:
      return "remote_send";
    case TraceKind::kRemoteRetry:
      return "remote_retry";
    case TraceKind::kRemoteReply:
      return "remote_reply";
    case TraceKind::kRemoteTimeout:
      return "remote_timeout";
    case TraceKind::kRemoteDedup:
      return "remote_dedup";
    case TraceKind::kRemoteBind:
      return "remote_bind";
    case TraceKind::kRemoteRevoke:
      return "remote_revoke";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();  // leaked
  return *recorder;
}

FlightRecorder::Ring* FlightRecorder::ThreadRing() {
  if (t_ring != nullptr) {
    return static_cast<Ring*>(t_ring);
  }
  auto* ring = new Ring();
  ring->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
  size_t cap = capacity_.load(std::memory_order_relaxed);
  ring->slots.resize(cap);
  ring->mask = cap - 1;
  Ring* head = rings_.load(std::memory_order_relaxed);
  do {
    ring->next = head;
  } while (!rings_.compare_exchange_weak(head, ring,
                                         std::memory_order_release,
                                         std::memory_order_relaxed));
  t_ring = ring;
  return ring;
}

void FlightRecorder::Emit(TraceKind kind, const char* name, uint64_t arg) {
  if (!Enabled()) {
    return;
  }
  EmitAt(kind, name, NowNs(), arg);
}

void FlightRecorder::EmitAt(TraceKind kind, const char* name, uint64_t ts_ns,
                            uint64_t arg) {
  if (!Enabled()) {
    return;
  }
  Ring* ring = ThreadRing();
  uint64_t h = ring->head.load(std::memory_order_relaxed);
  TraceRecord& slot = ring->slots[h & ring->mask];
  slot.ts_ns = ts_ns;
  slot.name = name;
  slot.arg = arg;
  slot.kind = kind;
  ring->head.store(h + 1, std::memory_order_release);
}

std::vector<MergedRecord> FlightRecorder::Snapshot() const {
  std::vector<MergedRecord> merged;
  for (Ring* ring = rings_.load(std::memory_order_acquire); ring != nullptr;
       ring = ring->next) {
    uint64_t head = ring->head.load(std::memory_order_acquire);
    uint64_t cap = ring->mask + 1;
    uint64_t n = head < cap ? head : cap;
    for (uint64_t i = head - n; i < head; ++i) {
      merged.push_back(MergedRecord{ring->slots[i & ring->mask], ring->tid});
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const MergedRecord& a, const MergedRecord& b) {
                     if (a.rec.ts_ns != b.rec.ts_ns) {
                       return a.rec.ts_ns < b.rec.ts_ns;
                     }
                     return a.tid < b.tid;
                   });
  return merged;
}

void FlightRecorder::Reset(size_t capacity) {
  if (capacity != 0) {
    capacity_.store(RoundUpPow2(capacity), std::memory_order_relaxed);
  }
  size_t cap = capacity_.load(std::memory_order_relaxed);
  for (Ring* ring = rings_.load(std::memory_order_acquire); ring != nullptr;
       ring = ring->next) {
    ring->head.store(0, std::memory_order_relaxed);
    if (ring->slots.size() != cap) {
      ring->slots.assign(cap, TraceRecord{});
      ring->mask = cap - 1;
    }
  }
}

void WriteChromeTrace(std::ostream& os,
                      const std::vector<MergedRecord>& records) {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  char buf[64];
  for (const MergedRecord& m : records) {
    if (!first) {
      os << ",";
    }
    first = false;
    const char* name = m.rec.name != nullptr ? m.rec.name : "?";
    os << "{\"name\":\"";
    JsonEscape(os, name);
    os << "\",\"cat\":\"" << TraceKindName(m.rec.kind) << "\"";
    switch (m.rec.kind) {
      case TraceKind::kRaiseBegin:
        os << ",\"ph\":\"B\"";
        break;
      case TraceKind::kRaiseEnd:
        os << ",\"ph\":\"E\"";
        break;
      default:
        os << ",\"ph\":\"i\",\"s\":\"t\"";
    }
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(m.rec.ts_ns) / 1e3);
    os << ",\"ts\":" << buf << ",\"pid\":1,\"tid\":" << m.tid
       << ",\"args\":{\"arg\":" << m.rec.arg << "}}";
  }
  os << "]}";
}

}  // namespace obs
}  // namespace spin
