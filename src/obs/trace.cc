#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "src/rt/clock.h"

namespace spin {
namespace obs {
namespace {

thread_local void* t_ring = nullptr;  // FlightRecorder::Ring*, Global() only

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

void JsonEscape(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << static_cast<char>(c);
        }
    }
  }
}

}  // namespace

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kRaiseBegin:
      return "raise_begin";
    case TraceKind::kRaiseEnd:
      return "raise_end";
    case TraceKind::kGuardReject:
      return "guard_reject";
    case TraceKind::kHandlerFire:
      return "handler_fire";
    case TraceKind::kFilterMutate:
      return "filter_mutate";
    case TraceKind::kAsyncEnqueue:
      return "async_enqueue";
    case TraceKind::kAsyncExecute:
      return "async_execute";
    case TraceKind::kInstall:
      return "install";
    case TraceKind::kUninstall:
      return "uninstall";
    case TraceKind::kRebuild:
      return "rebuild";
    case TraceKind::kStubCompile:
      return "stub_compile";
    case TraceKind::kLazyPromote:
      return "lazy_promote";
    case TraceKind::kEpochReclaim:
      return "epoch_reclaim";
    case TraceKind::kRemoteMarshal:
      return "remote_marshal";
    case TraceKind::kRemoteSend:
      return "remote_send";
    case TraceKind::kRemoteRetry:
      return "remote_retry";
    case TraceKind::kRemoteReply:
      return "remote_reply";
    case TraceKind::kRemoteTimeout:
      return "remote_timeout";
    case TraceKind::kRemoteDedup:
      return "remote_dedup";
    case TraceKind::kRemoteBind:
      return "remote_bind";
    case TraceKind::kRemoteRevoke:
      return "remote_revoke";
    case TraceKind::kRemoteDispatch:
      return "remote_dispatch";
    case TraceKind::kAnomaly:
      return "anomaly";
    case TraceKind::kPhase:
      return "phase";
  }
  return "unknown";
}

// A new TraceKind must bump kNumTraceKinds (and the unit test then insists
// TraceKindName knows it).
static_assert(static_cast<size_t>(TraceKind::kPhase) + 1 == kNumTraceKinds,
              "kNumTraceKinds must track the TraceKind enum");

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();  // leaked
  return *recorder;
}

FlightRecorder::Ring* FlightRecorder::ThreadRing() {
  if (t_ring != nullptr) {
    return static_cast<Ring*>(t_ring);
  }
  auto* ring = new Ring();
  ring->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
  size_t cap = capacity_.load(std::memory_order_relaxed);
  ring->slots.resize(cap);
  ring->mask = cap - 1;
  Ring* head = rings_.load(std::memory_order_relaxed);
  do {
    ring->next = head;
  } while (!rings_.compare_exchange_weak(head, ring,
                                         std::memory_order_release,
                                         std::memory_order_relaxed));
  t_ring = ring;
  return ring;
}

void FlightRecorder::Emit(TraceKind kind, const char* name, uint64_t arg) {
  if (!Enabled()) {
    return;
  }
  EmitAt(kind, name, NowNs(), arg);
}

void FlightRecorder::EmitAt(TraceKind kind, const char* name, uint64_t ts_ns,
                            uint64_t arg) {
  const TraceContext& ctx = CurrentContext();
  EmitWith(kind, name, ts_ns, arg, ctx.span, ctx.parent);
}

void FlightRecorder::EmitWith(TraceKind kind, const char* name,
                              uint64_t ts_ns, uint64_t arg, uint64_t span,
                              uint64_t parent) {
  if (!Enabled()) {
    return;
  }
  // An unsampled causal tree emits nothing — not even orphans. The hot
  // paths check the decision before reading the clock; this is the
  // backstop for emission sites inside an unsampled raise (epoch reclaim,
  // lazy promotion, remote internals).
  if (CurrentContext().decision == SampleDecision::kSkip) {
    return;
  }
  if (span == 0) {
    internal::CountOrphanRecord();
  }
  Ring* ring = ThreadRing();
  uint64_t h = ring->head.load(std::memory_order_relaxed);
  if (h >= ring->slots.size()) {
    // Single writer: a plain load/store pair beats a locked add.
    ring->overwrites.store(
        ring->overwrites.load(std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
  }
  TraceRecord& slot = ring->slots[h & ring->mask];
  slot.ts_ns = ts_ns;
  slot.name = name;
  slot.arg = arg;
  slot.span = span;
  slot.parent = parent;
  slot.end_ns = 0;  // slots are reused; only kPhase (EmitPhase) sets this
  slot.host = CurrentContext().host;
  slot.kind = kind;
  ring->head.store(h + 1, std::memory_order_release);
}

void FlightRecorder::EmitPhase(const char* name, Phase phase, uint64_t t_start,
                               uint64_t t_end, uint64_t self_ns) {
  if (!Enabled()) {
    return;
  }
  const TraceContext& ctx = CurrentContext();
  if (ctx.decision == SampleDecision::kSkip) {
    return;
  }
  if (ctx.span == 0) {
    internal::CountOrphanRecord();
  }
  Ring* ring = ThreadRing();
  uint64_t h = ring->head.load(std::memory_order_relaxed);
  if (h >= ring->slots.size()) {
    ring->overwrites.store(
        ring->overwrites.load(std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
  }
  TraceRecord& slot = ring->slots[h & ring->mask];
  slot.ts_ns = t_start;
  slot.name = name;
  slot.arg = PackPhaseArg(phase, self_ns);
  slot.span = ctx.span;
  slot.parent = ctx.parent;
  slot.end_ns = t_end;
  slot.host = ctx.host;
  slot.kind = TraceKind::kPhase;
  ring->head.store(h + 1, std::memory_order_release);
  RecordPhase(name, phase, self_ns);
}

std::vector<MergedRecord> FlightRecorder::Snapshot() const {
  std::vector<MergedRecord> merged;
  for (Ring* ring = rings_.load(std::memory_order_acquire); ring != nullptr;
       ring = ring->next) {
    uint64_t head = ring->head.load(std::memory_order_acquire);
    uint64_t cap = ring->mask + 1;
    uint64_t n = head < cap ? head : cap;
    for (uint64_t i = head - n; i < head; ++i) {
      merged.push_back(MergedRecord{ring->slots[i & ring->mask], ring->tid});
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const MergedRecord& a, const MergedRecord& b) {
                     if (a.rec.ts_ns != b.rec.ts_ns) {
                       return a.rec.ts_ns < b.rec.ts_ns;
                     }
                     return a.tid < b.tid;
                   });
  return merged;
}

void FlightRecorder::Reset(size_t capacity) {
  if (capacity != 0) {
    capacity_.store(RoundUpPow2(capacity), std::memory_order_relaxed);
  }
  size_t cap = capacity_.load(std::memory_order_relaxed);
  for (Ring* ring = rings_.load(std::memory_order_acquire); ring != nullptr;
       ring = ring->next) {
    ring->head.store(0, std::memory_order_relaxed);
    ring->overwrites.store(0, std::memory_order_relaxed);
    if (ring->slots.size() != cap) {
      ring->slots.assign(cap, TraceRecord{});
      ring->mask = cap - 1;
    }
  }
}

uint64_t FlightRecorder::TotalOverwrites() const {
  uint64_t total = 0;
  for (Ring* ring = rings_.load(std::memory_order_acquire); ring != nullptr;
       ring = ring->next) {
    total += ring->overwrites.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t FlightRecorder::TotalEmits() const {
  uint64_t total = 0;
  for (Ring* ring = rings_.load(std::memory_order_acquire); ring != nullptr;
       ring = ring->next) {
    total += ring->head.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<FlightRecorder::RingStats> FlightRecorder::PerRingStats() const {
  std::vector<RingStats> stats;
  for (Ring* ring = rings_.load(std::memory_order_acquire); ring != nullptr;
       ring = ring->next) {
    RingStats s;
    s.tid = ring->tid;
    s.emits = ring->head.load(std::memory_order_relaxed);
    s.overwrites = ring->overwrites.load(std::memory_order_relaxed);
    stats.push_back(s);
  }
  std::sort(stats.begin(), stats.end(),
            [](const RingStats& a, const RingStats& b) { return a.tid < b.tid; });
  return stats;
}

namespace {

// Which flow point (if any) a record contributes to the span-keyed flow:
// "s" starts it at the handoff source, "t" steps it where the work landed
// on another host, "f" finishes it at the final executor / reply join.
const char* FlowPhase(TraceKind kind) {
  switch (kind) {
    case TraceKind::kAsyncEnqueue:
    case TraceKind::kRemoteSend:
      return "s";
    case TraceKind::kRemoteDispatch:
    case TraceKind::kRemoteDedup:
      return "t";
    case TraceKind::kAsyncExecute:
    case TraceKind::kRemoteReply:
      return "f";
    default:
      return nullptr;
  }
}

}  // namespace

void WriteChromeTrace(std::ostream& os,
                      const std::vector<MergedRecord>& records) {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  char buf[64];
  auto sep = [&os, &first] {
    if (!first) {
      os << ",";
    }
    first = false;
  };

  // One process row per simulated host present in the timeline.
  std::vector<uint32_t> hosts;
  for (const MergedRecord& m : records) {
    if (std::find(hosts.begin(), hosts.end(), m.rec.host) == hosts.end()) {
      hosts.push_back(m.rec.host);
    }
  }
  std::sort(hosts.begin(), hosts.end());
  for (uint32_t host : hosts) {
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << host
       << ",\"tid\":0,\"args\":{\"name\":\"";
    JsonEscape(os, TraceHostName(host));
    os << "\"}}";
  }

  for (const MergedRecord& m : records) {
    sep();
    const char* name = m.rec.name != nullptr ? m.rec.name : "?";
    if (m.rec.kind == TraceKind::kPhase) {
      // Phase segments render as slices nested under their span's B/E pair
      // (same pid/tid, contained timestamps). Virtual-clock phases have no
      // host-clock extent; they stay instants carrying the simulator-clock
      // duration in args.
      Phase phase = PhaseOfArg(m.rec.arg);
      os << "{\"name\":\"" << PhaseName(phase) << "\",\"cat\":\"phase\"";
      std::snprintf(buf, sizeof(buf), "%.3f",
                    static_cast<double>(m.rec.ts_ns) / 1e3);
      if (m.rec.end_ns != 0) {
        char durbuf[64];
        uint64_t dur =
            m.rec.end_ns > m.rec.ts_ns ? m.rec.end_ns - m.rec.ts_ns : 0;
        std::snprintf(durbuf, sizeof(durbuf), "%.3f",
                      static_cast<double>(dur) / 1e3);
        os << ",\"ph\":\"X\",\"ts\":" << buf << ",\"dur\":" << durbuf;
      } else {
        os << ",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << buf;
      }
      os << ",\"pid\":" << m.rec.host << ",\"tid\":" << m.tid
         << ",\"args\":{\"event\":\"";
      JsonEscape(os, name);
      os << "\",\"self_ns\":" << PhaseSelfNs(m.rec.arg)
         << ",\"virtual\":" << (m.rec.end_ns == 0 ? "true" : "false");
      if (m.rec.span != 0) {
        os << ",\"span\":" << m.rec.span << ",\"parent\":" << m.rec.parent;
      }
      os << "}}";
      continue;
    }
    os << "{\"name\":\"";
    JsonEscape(os, name);
    os << "\",\"cat\":\"" << TraceKindName(m.rec.kind) << "\"";
    switch (m.rec.kind) {
      case TraceKind::kRaiseBegin:
        os << ",\"ph\":\"B\"";
        break;
      case TraceKind::kRaiseEnd:
        os << ",\"ph\":\"E\"";
        break;
      default:
        os << ",\"ph\":\"i\",\"s\":\"t\"";
    }
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(m.rec.ts_ns) / 1e3);
    os << ",\"ts\":" << buf << ",\"pid\":" << m.rec.host
       << ",\"tid\":" << m.tid << ",\"args\":{\"arg\":" << m.rec.arg;
    if (m.rec.span != 0) {
      os << ",\"span\":" << m.rec.span << ",\"parent\":" << m.rec.parent;
    }
    os << "}}";

    // Span-keyed flow event linking handoffs across threads and hosts.
    const char* flow = FlowPhase(m.rec.kind);
    if (flow != nullptr && m.rec.span != 0) {
      sep();
      os << "{\"name\":\"span\",\"cat\":\"span\",\"ph\":\"" << flow << "\"";
      if (*flow == 'f') {
        os << ",\"bp\":\"e\"";
      }
      os << ",\"id\":" << m.rec.span << ",\"ts\":" << buf
         << ",\"pid\":" << m.rec.host << ",\"tid\":" << m.tid << "}";
    }
  }
  os << "]}";
}

}  // namespace obs
}  // namespace spin
