// Observability substrate (spin_obs): latency histograms and the global
// enable switch shared with the flight recorder (trace.h) and the metric
// exporter (export.h).
//
// The paper instrumented the kernel "to generate call graph information
// with counts and elapsed times" (§3.2). A production-scale descendant
// needs distributions, not means: dispatch latency is bimodal (generated
// stub vs. interpreter vs. pool hop), and regressions hide in the tail.
// This module keeps one log-bucketed histogram per (event, dispatch kind),
// striped across cache lines so concurrent raises on different threads do
// not contend.
//
// Cost discipline: every hook in the dispatcher is gated on Enabled(), a
// single relaxed atomic load and a predictable branch. The intrinsic-bypass
// fast path (Event::Raise direct call) carries no hook at all; enabling
// tracing rebuilds dispatch tables without the bypass, the same discipline
// Dispatcher::EnableProfiling already uses.
#ifndef SRC_OBS_OBS_H_
#define SRC_OBS_OBS_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace spin {
namespace obs {

namespace internal {
extern std::atomic<bool> g_enabled;
extern std::atomic<uint8_t> g_trace_mode;
extern std::atomic<uint32_t> g_sample_rate;
// Small dense per-thread index used to pick a histogram stripe.
uint32_t ThreadIndexSlow();
inline uint32_t ThreadIndex() {
  thread_local uint32_t idx = ThreadIndexSlow();
  return idx;
}
}  // namespace internal

// Master switch for trace-record emission and (together with dispatcher
// profiling) histogram recording. Relaxed: observers tolerate a stale view
// for a few raises around the toggle.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
void SetEnabled(bool enabled);

// --- Sampled tracing ------------------------------------------------------
//
// Full tracing records every raise; sampled tracing records 1-in-N
// *top-level* raises and everything they cause. The decision is made once
// where a causal tree starts (a raise with no enclosing sampling decision)
// with a thread-local counter — no atomics, no clock read — and is
// inherited by nested raises, async pool handoffs, and wire-carried
// dispatches, so every captured trace is a complete span tree and the
// unsampled path costs only the decision branch.
enum class TraceMode : uint8_t {
  kOff = 0,      // no records, no spans (g_enabled false)
  kSampled = 1,  // capture 1-in-sample_rate top-level raises
  kFull = 2,     // capture everything (the historical EnableTracing(true))
};

struct TraceConfig {
  TraceMode mode = TraceMode::kOff;
  // kSampled: a thread captures every sample_rate-th top-level raise it
  // makes. Clamped to >= 1; 1 behaves like kFull at the record level.
  uint32_t sample_rate = 128;
};

// Installs the process-wide trace configuration. kOff clears the master
// switch; kSampled/kFull set it. Note the obs layer only controls record
// emission — Dispatcher::SetTracing additionally rebuilds dispatch tables
// (full fidelity interprets; sampled keeps production stubs).
void SetTraceConfig(const TraceConfig& config);
TraceConfig GetTraceConfig();

inline TraceMode CurrentTraceMode() {
  return static_cast<TraceMode>(
      internal::g_trace_mode.load(std::memory_order_relaxed));
}

// RAII enable/restore, for tests and short capture windows. Captures at
// full fidelity; the previous TraceConfig (mode and rate) is restored on
// exit.
class EnableScope {
 public:
  EnableScope() : prev_(GetTraceConfig()) { SetEnabled(true); }
  ~EnableScope() { SetTraceConfig(prev_); }
  EnableScope(const EnableScope&) = delete;
  EnableScope& operator=(const EnableScope&) = delete;

 private:
  TraceConfig prev_;
};

// Interns a string into a never-freed global table and returns a stable
// C-string pointer. Trace records store these pointers so emission never
// copies and records outlive the objects that emitted them.
const char* Intern(std::string_view s);

// --- Phase attribution ----------------------------------------------------
//
// A dispatch phase: one stage of a raise's life that a PhaseScope
// (context.h) times and stamps into the trace ring as a kPhase record.
// Real-time phases are measured on the host clock and partition a span's
// wall time (their self-times plus an explicit residual sum to the span
// duration); virtual phases (kWireVirtual, kBackoff) are measured on the
// simulator clock — wire transit has no meaningful host-clock extent
// because the simulated network advances time discontinuously — and are
// reported alongside, never subtracted from, the real-time budget
// (DESIGN.md §15).
enum class Phase : uint8_t {
  kGuardEval = 0,  // guard evaluation (interpreted sync/async admission)
  kHandlerBody,    // handler body (interpreted sync loop, async pool body)
  kStub,           // compiled dispatch routine (guards + handlers fused)
  kInterp,         // interpreted dispatch loop (self-time around guards/bodies)
  kQueueWait,      // async enqueue -> pool execution start
  kMarshal,        // request build + wire encode (proxy side)
  kWire,           // proxy pumping the simulated wire for a reply (real time)
  kDispatch,       // exporter-side dispatch + reply encode
  kUnmarshal,      // reply decode + by-ref copy-out (proxy side)
  kWireVirtual,    // send -> reply on the simulator clock (virtual ns)
  kBackoff,        // retry backoff share of the virtual wait (virtual ns)
};
constexpr size_t kNumPhases = 11;
const char* PhaseName(Phase phase);

// Process-wide per-(event, phase) latency histograms, fed by PhaseScope on
// the sampled path and exported as spin_phase_ns{event,phase}. The registry
// is an append-only lock-free list keyed by interned event name; the hit
// path is one thread-local memo compare plus a Histogram::Record.
void RecordPhase(const char* event, Phase phase, uint64_t ns);

// How a raise was (or would be, see DispatchTable::obs_kind) dispatched.
enum class DispatchKind : uint8_t {
  kDirect = 0,  // intrinsic-bypass direct call
  kStub,        // generated dispatch routine
  kTree,        // generated routine with a guard decision tree
  kInterp,      // interpreted dispatch
  kAsync,       // handler body executed on the thread pool
};
constexpr size_t kNumDispatchKinds = 5;
const char* DispatchKindName(DispatchKind kind);

// --- Log-bucketed latency histogram ------------------------------------
//
// Bucket b > 0 holds values v with bit_width(v) == b, i.e. the interval
// [2^(b-1), 2^b - 1]; bucket 0 holds exactly {0}. Percentile(q) returns
// the inclusive upper bound of the bucket containing the ceil(q * count)-th
// smallest sample — a deterministic, testable definition whose error is
// bounded by one octave.

constexpr size_t kNumBuckets = 65;  // bit_width of a uint64_t is 0..64

inline size_t BucketFor(uint64_t v) {
  return static_cast<size_t>(std::bit_width(v));
}
inline uint64_t BucketLowerBound(size_t bucket) {
  return bucket == 0 ? 0 : 1ull << (bucket - 1);
}
inline uint64_t BucketUpperBound(size_t bucket) {
  if (bucket == 0) {
    return 0;
  }
  return bucket >= 64 ? ~0ull : (1ull << bucket) - 1;
}

struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  uint64_t buckets[kNumBuckets] = {};

  // Upper bound of the bucket holding the ceil(q*count)-th smallest sample;
  // 0 when empty. q in (0, 1].
  uint64_t Percentile(double q) const;
  void Merge(const HistogramSnapshot& other);
};

class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value) {
    Stripe& s = stripes_[internal::ThreadIndex() & (kStripes - 1)];
    s.counts[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = s.max.load(std::memory_order_relaxed);
    while (value > seen &&
           !s.max.compare_exchange_weak(seen, value,
                                        std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot Snapshot() const;
  uint64_t Count() const;
  uint64_t SumNs() const;

  // Zeroes all stripes. Safe against concurrent Record: every counter is an
  // independent atomic, so a racing raise is either counted or cleanly
  // cleared — never torn.
  void Reset();

 private:
  static constexpr size_t kStripes = 4;  // power of two

  struct alignas(64) Stripe {
    std::atomic<uint64_t> counts[kNumBuckets] = {};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
  };

  Stripe stripes_[kStripes];
};

// Snapshot view of the phase registry (declared after Histogram because it
// carries HistogramSnapshots; the registry itself is described above).
struct PhaseStats {
  const char* event = nullptr;  // interned
  HistogramSnapshot phases[kNumPhases];
};
// One entry per event that recorded at least one phase, sorted by name.
std::vector<PhaseStats> SnapshotPhaseStats();
// Zeroes every histogram (entries stay registered). For benches and tests.
void ResetPhaseStats();

// --- Per-event metrics ---------------------------------------------------

// One histogram per dispatch kind for a single event instance. Created by
// EventBase at construction and published through the global Registry so
// ExportMetrics can walk every live event.
class EventMetrics {
 public:
  explicit EventMetrics(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  void Record(DispatchKind kind, uint64_t ns) {
    hist_[static_cast<size_t>(kind)].Record(ns);
  }

  const Histogram& hist(DispatchKind kind) const {
    return hist_[static_cast<size_t>(kind)];
  }

  uint64_t TotalCount() const;
  uint64_t TotalSumNs() const;
  // All dispatch kinds merged into one distribution.
  HistogramSnapshot Merged() const;
  void Reset();

  // Per-event slow-dispatch deadline in ns, maintained by the anomaly
  // watchdog's monitor thread (derived from this event's observed p99,
  // capped by the absolute deadline). 0 = no per-event deadline; the
  // inline check falls back to the watchdog's absolute limit.
  uint64_t slow_ns() const { return slow_ns_.load(std::memory_order_relaxed); }
  void set_slow_ns(uint64_t ns) {
    slow_ns_.store(ns, std::memory_order_relaxed);
  }

 private:
  std::string name_;
  Histogram hist_[kNumDispatchKinds];
  std::atomic<uint64_t> slow_ns_{0};
};

class Registry {
 public:
  static Registry& Global();

  std::shared_ptr<EventMetrics> Register(const std::string& name);
  void Unregister(const EventMetrics* metrics);

  // Snapshot of every live event's metrics object.
  std::vector<std::shared_ptr<EventMetrics>> List() const;

 private:
  Registry() = default;

  mutable std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
  std::vector<std::shared_ptr<EventMetrics>> entries_;

  void Lock() const;
  void Unlock() const;
};

}  // namespace obs
}  // namespace spin

#endif  // SRC_OBS_OBS_H_
