// Anomaly watchdog: always-on detection of the failure modes that matter
// for a dispatcher carrying production traffic.
//
// Two detection planes share one reporting path:
//   - Inline deadline checks. The dispatch hot path calls CheckDispatch
//     with each measured raise duration (it measures whenever tracing,
//     profiling, or the watchdog is on). The limit is per-event — derived
//     from that event's observed p99 by the monitor thread, capped by the
//     absolute deadline — so a uniformly slow event and a single stalled
//     handler both trip it. Cost when disarmed: one relaxed load.
//   - A low-frequency monitor thread. Each period it polls registered
//     probes (pool queues, epoch domains, remote retry counters — the
//     observed layers register themselves, keeping spin_obs dependency-
//     free) and applies per-domain rules: a queue with backlog and no
//     progress across a full period is stalled; backlog above the limit is
//     flagged outright; retired objects with no reclamation progress mean
//     epoch reclamation is stuck; a retry-counter jump above the limit in
//     one period is a storm.
//
// Every anomaly bumps spin_anomalies_total{kind,shard,event}, emits a
// TraceKind::kAnomaly flight-recorder record (even from inside an
// unsampled raise — anomalies override the sampling decision), and can
// latch a one-shot full-fidelity trace burst: the trace config is switched
// to kFull for burst_periods monitor periods, so the flight recorder holds
// a complete capture of the incident's aftermath ("dump on incident").
#ifndef SRC_OBS_WATCHDOG_H_
#define SRC_OBS_WATCHDOG_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "src/obs/obs.h"

namespace spin {
namespace obs {

namespace internal {
// One relaxed load on the dispatch path decides whether to time a raise
// for the watchdog; g_slow_ns is the absolute deadline fallback when an
// event has no derived per-event deadline yet.
extern std::atomic<bool> g_watchdog_armed;
extern std::atomic<uint64_t> g_slow_ns;
}  // namespace internal

enum class AnomalyKind : uint8_t {
  kSlowHandler = 0,  // a dispatch exceeded its deadline; value = ns
  kQueueStall = 1,   // pool queue has backlog but made no progress
  kOutboxBacklog = 2,  // pool queue depth above the configured limit
  kEpochStall = 3,   // retired objects with no reclamation progress
  kRetryStorm = 4,   // remote retry counter jumped above the limit
  kTraceDrops = 5,   // a flight-recorder ring overwrote >= trace_drop_ratio
                     // of the records it emitted in one monitor period
};
inline constexpr size_t kNumAnomalyKinds = 6;
const char* AnomalyKindName(AnomalyKind kind);

// One monitored quantity, reported by a probe once per monitor period.
// `kind` selects the rule set: kQueueStall samples get the stall and the
// backlog rules, kEpochStall the stall rule, kRetryStorm the rate rule.
// `name` must be interned (obs::Intern) — it is stamped into kAnomaly
// records. `depth` is the current backlog (queue depth, retired count);
// `progress` a monotone counter (executed, reclaimed, retries).
struct WatchSample {
  AnomalyKind kind = AnomalyKind::kQueueStall;
  const char* name = nullptr;
  uint32_t shard = 0;
  uint64_t depth = 0;
  uint64_t progress = 0;
};

using WatchProbeFn = void (*)(void* ctx, std::vector<WatchSample>& out);

struct WatchdogConfig {
  // Monitor thread wakeup period. 0 = no thread; the embedder (or a
  // deterministic test) drives detection by calling Poll() itself.
  uint64_t period_ms = 100;
  // Absolute slow-dispatch deadline; also the cap for derived per-event
  // deadlines. 0 disables the inline check.
  uint64_t slow_handler_ns = 10'000'000;  // 10 ms
  // Per-event deadline = clamp(p99 * p99_factor, slow_handler_floor_ns,
  // slow_handler_ns), refreshed each period once the event has
  // min_samples. An event with a tight p99 is caught far below the
  // absolute deadline; the floor keeps ns-scale events from tripping on
  // scheduler noise.
  double p99_factor = 8.0;
  uint64_t slow_handler_floor_ns = 1'000'000;  // 1 ms
  uint64_t min_samples = 64;
  // kOutboxBacklog fires when a queue sample's depth reaches this.
  uint64_t outbox_backlog = 1024;
  // The epoch stall rule only applies at or above this retired backlog: a
  // couple of retired tables parked between rebuilds is the steady state
  // of epoch reclamation, not an incident.
  uint64_t epoch_stall_min = 8;
  // kRetryStorm fires when a retry counter advances by this much within
  // one monitor period.
  uint64_t retry_storm = 64;
  // kTraceDrops fires when, over one monitor period, a flight-recorder
  // ring's overwrite delta reaches this fraction of its emit delta (the
  // ring is discarding at least that share of what tracing produces —
  // grow the ring or lower the sample rate). 0 disables the rule. The
  // monitor samples FlightRecorder::PerRingStats() directly; no probe
  // registration is involved.
  double trace_drop_ratio = 0.25;
  // The ratio is meaningless on a near-idle ring (one anomaly record
  // landing in a full ring is 1 overwrite / 1 emit), so the rule needs at
  // least this many emits on the ring within the period.
  uint64_t trace_drop_min_emits = 64;
  // Latch a one-shot full-fidelity capture on the first anomaly.
  bool trace_burst = false;
  uint64_t burst_periods = 1;
};

class Watchdog {
 public:
  // Process-wide watchdog; probes and the dispatch hot path talk to this
  // instance.
  static Watchdog& Global();

  // Installs `config`, arms the inline checks, and (period_ms != 0)
  // starts the monitor thread. Re-arming replaces the configuration and
  // resets the one-shot burst latch.
  void Arm(const WatchdogConfig& config);
  // Stops the monitor thread, disarms the inline checks, and restores the
  // trace config if a burst was active. Counters are kept.
  void Disarm();
  bool armed() const {
    return internal::g_watchdog_armed.load(std::memory_order_relaxed);
  }

  // One monitor pass: polls every probe, applies the rules, refreshes
  // per-event slow deadlines, and retires an expired trace burst. The
  // monitor thread calls this each period; deterministic tests call it
  // directly.
  void Poll();

  // Registers/unregisters a probe keyed by `ctx`. Thread-safe; polled
  // only while armed. UnregisterProbe blocks until any in-flight Poll()
  // has finished invoking probes, so on return the caller may destroy
  // `ctx`. Must not be called from inside a probe callback.
  void RegisterProbe(void* ctx, WatchProbeFn fn);
  void UnregisterProbe(void* ctx);

  // Records an anomaly: bumps spin_anomalies_total{kind,shard,event},
  // emits a kAnomaly record named `name` with arg = (kind << 32) | shard,
  // and latches the trace burst if configured. `value` is the measurement
  // that tripped the rule (ns, depth, or counter delta), kept in the
  // last-anomaly register exposed by last_value(). The event label is
  // taken from `name` only for kSlowHandler — the deadline check knows
  // which event blew its budget; the monitor rules watch queues, domains,
  // and rings, not events, so their label stays empty.
  void Report(AnomalyKind kind, const char* name, uint32_t shard,
              uint64_t value);

  // The `value` of the most recent Report, for diagnostics and tests.
  uint64_t last_value() const;

  // Total anomalies of `kind` on `shard` since process start, summed
  // across event labels.
  uint64_t Count(AnomalyKind kind, uint32_t shard) const;
  // Sum over all shards.
  uint64_t Count(AnomalyKind kind) const;

  // Re-enables the one-shot trace burst after it has fired.
  void RearmBurst();
  bool burst_active() const;

  WatchdogConfig config() const;

 private:
  Watchdog();

  void MonitorLoop();
  void RefreshSlowDeadlines();
  void RetireBurstLocked();
  static void ExportMetricsSource(void* ctx, std::ostream& os);

  struct Probe {
    void* ctx;
    WatchProbeFn fn;
  };
  // Previous observation for the delta rules, keyed by (name, kind,
  // shard). Names are interned so the pointer is a stable identity.
  using SampleKey = std::tuple<const void*, uint8_t, uint32_t>;
  struct PrevSample {
    uint64_t depth = 0;
    uint64_t progress = 0;
  };

  // Ring-pressure rule, run inside Poll() against PerRingStats().
  void CheckTraceRings(const WatchdogConfig& config);

  mutable std::mutex mu_;
  WatchdogConfig config_;
  std::vector<Probe> probes_;
  std::map<SampleKey, PrevSample> prev_;
  // (kind, shard, event); event is interned ("" for rules that don't
  // know one), so the pointer is a stable identity.
  std::map<std::tuple<uint8_t, uint32_t, const char*>, uint64_t> counts_;
  uint64_t last_value_ = 0;
  bool burst_used_ = false;
  bool burst_active_ = false;
  uint64_t burst_polls_left_ = 0;
  // Sequence number of the Poll() pass a burst was latched under (or the
  // upcoming pass, for inline latches between polls). Only passes that
  // started after the latch count toward burst_polls_left_, so a burst
  // never retires in the same pass — or instant — that latched it.
  uint64_t poll_seq_ = 0;        // guarded by mu_
  uint64_t burst_latch_seq_ = 0;  // guarded by mu_
  TraceConfig burst_saved_;

  // Number of Poll() passes currently invoking probe callbacks (outside
  // mu_). UnregisterProbe waits on poll_cv_ for this to reach zero.
  int polls_in_flight_ = 0;  // guarded by mu_
  std::condition_variable poll_cv_;

  std::thread monitor_;
  std::condition_variable stop_cv_;
  bool stop_ = false;  // guarded by mu_
};

// Inline hot-path hook: called with each measured dispatch duration.
// `event_slow_ns` is EventMetrics::slow_ns() (0 = use the absolute
// deadline). Disarmed cost: the armed() load already happened at the
// caller to decide whether to time at all, so this is a compare.
inline void CheckDispatch(const char* event_name, uint32_t shard, uint64_t ns,
                          uint64_t event_slow_ns) {
  if (!internal::g_watchdog_armed.load(std::memory_order_relaxed)) {
    return;
  }
  uint64_t limit = event_slow_ns != 0
                       ? event_slow_ns
                       : internal::g_slow_ns.load(std::memory_order_relaxed);
  if (limit != 0 && ns >= limit) {
    Watchdog::Global().Report(AnomalyKind::kSlowHandler, event_name, shard,
                              ns);
  }
}

// True when the dispatch path should measure durations for the watchdog
// even though tracing and profiling are off.
inline bool WatchdogWantsTiming() {
  return internal::g_watchdog_armed.load(std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace spin

#endif  // SRC_OBS_WATCHDOG_H_
