#include "src/obs/obs.h"

#include <algorithm>
#include <unordered_set>

namespace spin {
namespace obs {

namespace internal {

std::atomic<bool> g_enabled{false};
std::atomic<uint8_t> g_trace_mode{0};
std::atomic<uint32_t> g_sample_rate{128};

uint32_t ThreadIndexSlow() {
  static std::atomic<uint32_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace internal

void SetEnabled(bool enabled) {
  TraceConfig config = GetTraceConfig();
  config.mode = enabled ? TraceMode::kFull : TraceMode::kOff;
  SetTraceConfig(config);
}

void SetTraceConfig(const TraceConfig& config) {
  uint32_t rate = config.sample_rate == 0 ? 1 : config.sample_rate;
  internal::g_sample_rate.store(rate, std::memory_order_relaxed);
  internal::g_trace_mode.store(static_cast<uint8_t>(config.mode),
                               std::memory_order_relaxed);
  internal::g_enabled.store(config.mode != TraceMode::kOff,
                            std::memory_order_relaxed);
}

TraceConfig GetTraceConfig() {
  TraceConfig config;
  config.mode = CurrentTraceMode();
  config.sample_rate = internal::g_sample_rate.load(std::memory_order_relaxed);
  return config;
}

const char* Intern(std::string_view s) {
  static std::atomic_flag lock = ATOMIC_FLAG_INIT;
  // Node-based: iterators/pointers into the set stay valid across inserts.
  static auto* table = new std::unordered_set<std::string>();
  while (lock.test_and_set(std::memory_order_acquire)) {
  }
  const std::string& interned = *table->emplace(s).first;
  lock.clear(std::memory_order_release);
  return interned.c_str();
}

const char* DispatchKindName(DispatchKind kind) {
  switch (kind) {
    case DispatchKind::kDirect:
      return "direct";
    case DispatchKind::kStub:
      return "stub";
    case DispatchKind::kTree:
      return "tree";
    case DispatchKind::kInterp:
      return "interpreted";
    case DispatchKind::kAsync:
      return "async";
  }
  return "unknown";
}

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kGuardEval:
      return "guard_eval";
    case Phase::kHandlerBody:
      return "handler_body";
    case Phase::kStub:
      return "stub";
    case Phase::kInterp:
      return "interp";
    case Phase::kQueueWait:
      return "queue_wait";
    case Phase::kMarshal:
      return "marshal";
    case Phase::kWire:
      return "wire";
    case Phase::kDispatch:
      return "dispatch";
    case Phase::kUnmarshal:
      return "unmarshal";
    case Phase::kWireVirtual:
      return "wire_virtual";
    case Phase::kBackoff:
      return "backoff";
  }
  return "unknown";
}

// --- Phase stats registry -------------------------------------------------
//
// Append-only singly linked list of per-event entries. Lookups walk the
// list lock-free (entries are published with release stores and never
// removed); insertion takes a spinlock so an event name appears exactly
// once. A thread-local memo makes the steady-state cost of RecordPhase one
// pointer compare plus the histogram increment.

namespace {

struct PhaseEntry {
  const char* name;  // interned
  Histogram hist[kNumPhases];
  PhaseEntry* next;
};

std::atomic<PhaseEntry*> g_phase_head{nullptr};
std::atomic_flag g_phase_insert_lock = ATOMIC_FLAG_INIT;

PhaseEntry* FindOrInsertPhaseEntry(const char* event) {
  for (PhaseEntry* e = g_phase_head.load(std::memory_order_acquire);
       e != nullptr; e = e->next) {
    if (e->name == event) {
      return e;
    }
  }
  while (g_phase_insert_lock.test_and_set(std::memory_order_acquire)) {
  }
  // Re-check under the lock: another thread may have inserted it.
  PhaseEntry* head = g_phase_head.load(std::memory_order_relaxed);
  for (PhaseEntry* e = head; e != nullptr; e = e->next) {
    if (e->name == event) {
      g_phase_insert_lock.clear(std::memory_order_release);
      return e;
    }
  }
  auto* fresh = new PhaseEntry();  // intentionally leaked, like Intern()
  fresh->name = event;
  fresh->next = head;
  g_phase_head.store(fresh, std::memory_order_release);
  g_phase_insert_lock.clear(std::memory_order_release);
  return fresh;
}

}  // namespace

void RecordPhase(const char* event, Phase phase, uint64_t ns) {
  thread_local PhaseEntry* t_last = nullptr;
  PhaseEntry* e = t_last;
  if (e == nullptr || e->name != event) {
    e = FindOrInsertPhaseEntry(event);
    t_last = e;
  }
  e->hist[static_cast<size_t>(phase)].Record(ns);
}

std::vector<PhaseStats> SnapshotPhaseStats() {
  std::vector<PhaseStats> out;
  for (PhaseEntry* e = g_phase_head.load(std::memory_order_acquire);
       e != nullptr; e = e->next) {
    PhaseStats stats;
    stats.event = e->name;
    bool any = false;
    for (size_t p = 0; p < kNumPhases; ++p) {
      stats.phases[p] = e->hist[p].Snapshot();
      any = any || stats.phases[p].count > 0;
    }
    if (any) {
      out.push_back(std::move(stats));
    }
  }
  std::sort(out.begin(), out.end(), [](const PhaseStats& a, const PhaseStats& b) {
    return std::string_view(a.event) < std::string_view(b.event);
  });
  return out;
}

void ResetPhaseStats() {
  for (PhaseEntry* e = g_phase_head.load(std::memory_order_acquire);
       e != nullptr; e = e->next) {
    for (size_t p = 0; p < kNumPhases; ++p) {
      e->hist[p].Reset();
    }
  }
}

// --- HistogramSnapshot ---------------------------------------------------

uint64_t HistogramSnapshot::Percentile(double q) const {
  if (count == 0) {
    return 0;
  }
  if (q < 0) {
    q = 0;
  }
  if (q > 1) {
    q = 1;
  }
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (static_cast<double>(rank) < q * static_cast<double>(count)) {
    ++rank;  // ceil
  }
  if (rank == 0) {
    rank = 1;
  }
  uint64_t cumulative = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    cumulative += buckets[b];
    if (cumulative >= rank) {
      return BucketUpperBound(b);
    }
  }
  return BucketUpperBound(kNumBuckets - 1);
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  for (size_t b = 0; b < kNumBuckets; ++b) {
    buckets[b] += other.buckets[b];
  }
}

// --- Histogram -----------------------------------------------------------

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (const Stripe& s : stripes_) {
    for (size_t b = 0; b < kNumBuckets; ++b) {
      uint64_t n = s.counts[b].load(std::memory_order_relaxed);
      snap.buckets[b] += n;
      snap.count += n;
    }
    snap.sum += s.sum.load(std::memory_order_relaxed);
    snap.max = std::max(snap.max, s.max.load(std::memory_order_relaxed));
  }
  return snap;
}

uint64_t Histogram::Count() const {
  uint64_t n = 0;
  for (const Stripe& s : stripes_) {
    for (size_t b = 0; b < kNumBuckets; ++b) {
      n += s.counts[b].load(std::memory_order_relaxed);
    }
  }
  return n;
}

uint64_t Histogram::SumNs() const {
  uint64_t sum = 0;
  for (const Stripe& s : stripes_) {
    sum += s.sum.load(std::memory_order_relaxed);
  }
  return sum;
}

void Histogram::Reset() {
  for (Stripe& s : stripes_) {
    for (size_t b = 0; b < kNumBuckets; ++b) {
      s.counts[b].store(0, std::memory_order_relaxed);
    }
    s.sum.store(0, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
  }
}

// --- EventMetrics --------------------------------------------------------

uint64_t EventMetrics::TotalCount() const {
  uint64_t n = 0;
  for (const Histogram& h : hist_) {
    n += h.Count();
  }
  return n;
}

uint64_t EventMetrics::TotalSumNs() const {
  uint64_t sum = 0;
  for (const Histogram& h : hist_) {
    sum += h.SumNs();
  }
  return sum;
}

HistogramSnapshot EventMetrics::Merged() const {
  HistogramSnapshot merged;
  for (const Histogram& h : hist_) {
    merged.Merge(h.Snapshot());
  }
  return merged;
}

void EventMetrics::Reset() {
  for (Histogram& h : hist_) {
    h.Reset();
  }
}

// --- Registry ------------------------------------------------------------

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // intentionally leaked
  return *registry;
}

void Registry::Lock() const {
  while (lock_.test_and_set(std::memory_order_acquire)) {
  }
}

void Registry::Unlock() const { lock_.clear(std::memory_order_release); }

std::shared_ptr<EventMetrics> Registry::Register(const std::string& name) {
  auto metrics = std::make_shared<EventMetrics>(name);
  Lock();
  entries_.push_back(metrics);
  Unlock();
  return metrics;
}

void Registry::Unregister(const EventMetrics* metrics) {
  Lock();
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [metrics](const auto& e) {
                                  return e.get() == metrics;
                                }),
                 entries_.end());
  Unlock();
}

std::vector<std::shared_ptr<EventMetrics>> Registry::List() const {
  Lock();
  std::vector<std::shared_ptr<EventMetrics>> copy = entries_;
  Unlock();
  return copy;
}

}  // namespace obs
}  // namespace spin
