// The dispatcher flight recorder.
//
// A per-thread, lock-free ring buffer of fixed-size typed records. Each
// thread writes only its own ring (one relaxed index bump plus a few plain
// stores per record); when the ring wraps, the oldest records are
// overwritten, so the recorder always holds the newest window — the
// black-box-recorder discipline. Snapshot() merges all rings into a single
// monotonic-clock-ordered timeline, and WriteChromeTrace() serializes that
// timeline as Chrome trace-event JSON, loadable in Perfetto (ui.perfetto.dev)
// or chrome://tracing.
//
// Record names are interned C-strings (obs::Intern), so emission never
// allocates and records remain printable after the emitting event dies.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <ostream>
#include <vector>

#include "src/obs/context.h"
#include "src/obs/obs.h"

namespace spin {
namespace obs {

enum class TraceKind : uint8_t {
  kRaiseBegin,    // dispatch entered (duration open)
  kRaiseEnd,      // dispatch finished (duration close)
  kGuardReject,   // a binding's guards evaluated false; arg = binding index
  kHandlerFire,   // a handler ran; arg = binding index
  kFilterMutate,  // a filter handler mutated by-ref args; arg = binding index
  kAsyncEnqueue,  // async handler/raise scheduled on the pool
  kAsyncExecute,  // async handler body started on a pool thread
  kInstall,       // handler installed
  kUninstall,     // handler uninstalled
  kRebuild,       // dispatch table regenerated; arg = table version
  kStubCompile,   // dispatch routine compiled; arg = code bytes
  kLazyPromote,   // lazy event promoted to compiled dispatch
  kEpochReclaim,  // epoch reclamation freed objects; arg = count
  // Remote event dispatch (src/remote). `name` is the remote event name.
  kRemoteMarshal,  // arguments marshaled; arg = wire payload bytes
  kRemoteSend,     // request handed to the network; arg = request id
  kRemoteRetry,    // attempt timed out, resending; arg = attempt number
  kRemoteReply,    // reply matched to a pending request; arg = request id
  kRemoteTimeout,  // retry budget exhausted; arg = request id
  kRemoteDedup,    // duplicate delivery suppressed; arg = request id
  kRemoteBind,     // bind handshake authorized; arg = granted token
                   // (0 = denied by the exporter's authorizer)
  kRemoteRevoke,   // capability token revoked / revocation received;
                   // arg = the token
  kRemoteDispatch,  // exporter accepted a wire-carried raise and is about
                    // to dispatch it; arg = request id
  kAnomaly,         // watchdog-detected anomaly; name = the offending
                    // source (event/pool/domain), arg = packed
                    // (AnomalyKind << 32) | shard (see src/obs/watchdog.h)
  kPhase,           // a PhaseScope segment; name = event, ts_ns = t_start,
                    // end_ns = t_end (0 for virtual-clock phases),
                    // arg = PackPhaseArg(phase, self_ns)
};

// Count sentinel for exhaustiveness checks: must equal the number of
// TraceKind enumerators. trace.cc static_asserts that it tracks the enum;
// the unit test asserts every kind below it has a real name.
inline constexpr size_t kNumTraceKinds = 24;

const char* TraceKindName(TraceKind kind);

// kPhase records pack the phase id and the segment's self-time (duration
// minus time spent in nested PhaseScopes) into `arg`: the phase id in the
// top byte, self-time ns in the low 56 bits (saturating — 2^56 ns is over
// two years).
inline uint64_t PackPhaseArg(Phase phase, uint64_t self_ns) {
  constexpr uint64_t kSelfMask = (1ull << 56) - 1;
  if (self_ns > kSelfMask) {
    self_ns = kSelfMask;
  }
  return (static_cast<uint64_t>(phase) << 56) | self_ns;
}
inline Phase PhaseOfArg(uint64_t arg) {
  return static_cast<Phase>(arg >> 56);
}
inline uint64_t PhaseSelfNs(uint64_t arg) {
  return arg & ((1ull << 56) - 1);
}

struct TraceRecord {
  uint64_t ts_ns = 0;
  const char* name = nullptr;  // interned; never dangles
  uint64_t arg = 0;
  uint64_t span = 0;    // causal span the record belongs to (0 = orphan)
  uint64_t parent = 0;  // the span's parent span (0 = root)
  uint64_t end_ns = 0;  // kPhase: segment end timestamp (0 = virtual phase)
  uint32_t host = 0;    // RegisterTraceHost id (0 = no host context)
  TraceKind kind = TraceKind::kRaiseBegin;
};

struct MergedRecord {
  TraceRecord rec;
  uint32_t tid = 0;  // recorder-assigned dense thread id
};

class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 8192;  // records per thread

  // Process-wide recorder all instrumentation writes to.
  static FlightRecorder& Global();

  // Appends a record stamped with the monotonic clock. No-op when
  // obs::Enabled() is false.
  void Emit(TraceKind kind, const char* name, uint64_t arg = 0);

  // Appends a record with an explicit timestamp (used when the caller
  // already read the clock, and by tests for deterministic ordering).
  // Records are stamped with the thread's current TraceContext.
  void EmitAt(TraceKind kind, const char* name, uint64_t ts_ns,
              uint64_t arg = 0);

  // Appends a record with an explicit (span, parent) pair instead of the
  // thread's active span — the handoff records (kAsyncEnqueue, the flushed
  // kRemoteSend) describe a span other than the one they run under. The
  // host stamp still comes from the current context.
  void EmitWith(TraceKind kind, const char* name, uint64_t ts_ns,
                uint64_t arg, uint64_t span, uint64_t parent);

  // Appends a kPhase record for the current span and feeds the
  // spin_phase_ns{event,phase} histogram. Real-time segments pass their
  // host-clock [t_start, t_end]; virtual-clock phases (kWireVirtual,
  // kBackoff) pass t_end == 0 and carry their simulator-clock duration only
  // in self_ns. No-op when the recorder is disabled or the thread's
  // sampling decision is kSkip.
  void EmitPhase(const char* name, Phase phase, uint64_t t_start,
                 uint64_t t_end, uint64_t self_ns);

  // Merges every thread's ring into one timeline ordered by timestamp
  // (ties broken by thread id). Callers should quiesce emitters first for
  // an exact snapshot; concurrent emission can smear the newest records.
  std::vector<MergedRecord> Snapshot() const;

  // Drops all records; a nonzero capacity also resizes every ring (rounded
  // up to a power of two). Requires that no thread is concurrently
  // emitting. Intended for tests and between capture windows.
  void Reset(size_t capacity = 0);

  size_t capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }

  // Records lost to ring wraparound since the last Reset, summed over all
  // threads. A nonzero value means the capture window was too small for
  // the traffic — the trace is truncated, not complete.
  uint64_t TotalOverwrites() const;

  // Records ever emitted since the last Reset, summed over all threads.
  // With TotalOverwrites() this gives the drop rate of the capture window.
  uint64_t TotalEmits() const;

  // Per-thread ring health, for the {thread=...} metric series: which
  // rings are dropping records, not just that some ring is.
  struct RingStats {
    uint32_t tid = 0;        // recorder-assigned dense thread id
    uint64_t emits = 0;      // records written to this ring since Reset
    uint64_t overwrites = 0; // records lost to wraparound since Reset
  };
  std::vector<RingStats> PerRingStats() const;

 private:
  struct Ring {
    uint32_t tid = 0;
    size_t mask = 0;
    std::atomic<uint64_t> head{0};
    // Single-writer count of slots overwritten before ever being
    // snapshotted (every emit past the first `capacity` ones).
    std::atomic<uint64_t> overwrites{0};
    std::vector<TraceRecord> slots;
    Ring* next = nullptr;
  };

  FlightRecorder() = default;

  Ring* ThreadRing();

  std::atomic<Ring*> rings_{nullptr};
  std::atomic<uint32_t> next_tid_{1};
  std::atomic<size_t> capacity_{kDefaultCapacity};
};

// Serializes a merged timeline as Chrome trace-event JSON ("traceEvents"
// array form), loadable in Perfetto. RaiseBegin/RaiseEnd become B/E
// duration events; kPhase segments become complete ("X") slices nested
// under their span (virtual phases stay instants, annotated with their
// simulator-clock duration); everything else becomes a thread-scoped
// instant event.
// Each simulated host gets its own process row (pid = host id, named via
// process_name metadata), and span handoffs are linked with flow events
// keyed by the span id: kAsyncEnqueue/kRemoteSend start a flow,
// kRemoteDispatch/kRemoteDedup step it, kAsyncExecute/kRemoteReply finish
// it.
void WriteChromeTrace(std::ostream& os,
                      const std::vector<MergedRecord>& records);

}  // namespace obs
}  // namespace spin

#endif  // SRC_OBS_TRACE_H_
