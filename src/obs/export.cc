#include "src/obs/export.h"

#include <vector>

#include "src/obs/context.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"

namespace spin {
namespace obs {
namespace {

struct Source {
  void* ctx;
  MetricSourceFn fn;
};

struct SourceList {
  std::atomic_flag lock = ATOMIC_FLAG_INIT;
  std::vector<Source> sources;

  void Lock() {
    while (lock.test_and_set(std::memory_order_acquire)) {
    }
  }
  void Unlock() { lock.clear(std::memory_order_release); }
};

SourceList& Sources() {
  static SourceList* list = new SourceList();  // intentionally leaked
  return *list;
}

void WriteSummarySeries(std::ostream& os, const std::string& event,
                        const char* kind, const HistogramSnapshot& snap) {
  auto labels = [&](std::ostream& o) {
    o << "{event=\"";
    WriteLabelValue(o, event);
    o << "\",kind=\"" << kind << "\"";
  };
  const struct {
    const char* q;
    double v;
  } quantiles[] = {{"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}};
  for (const auto& q : quantiles) {
    os << "spin_event_raise_ns";
    labels(os);
    os << ",quantile=\"" << q.q << "\"} " << snap.Percentile(q.v) << "\n";
  }
  os << "spin_event_raise_ns_count";
  labels(os);
  os << "} " << snap.count << "\n";
  os << "spin_event_raise_ns_sum";
  labels(os);
  os << "} " << snap.sum << "\n";
  os << "spin_event_raise_ns_max";
  labels(os);
  os << "} " << snap.max << "\n";
}

}  // namespace

void WriteLabelValue(std::ostream& os, const std::string& value) {
  for (char c : value) {
    switch (c) {
      case '\\':
        os << "\\\\";
        break;
      case '"':
        os << "\\\"";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        os << c;
    }
  }
}

void RegisterSource(void* ctx, MetricSourceFn fn) {
  SourceList& list = Sources();
  list.Lock();
  list.sources.push_back(Source{ctx, fn});
  list.Unlock();
}

void UnregisterSource(void* ctx) {
  SourceList& list = Sources();
  list.Lock();
  for (auto it = list.sources.begin(); it != list.sources.end();) {
    it = it->ctx == ctx ? list.sources.erase(it) : it + 1;
  }
  list.Unlock();
}

void ExportMetrics(std::ostream& os) {
  os << "# HELP spin_event_raise_ns Event dispatch latency in nanoseconds, "
        "split by dispatch kind.\n";
  os << "# TYPE spin_event_raise_ns summary\n";
  // Aggregate live per-instance metrics by event name so re-registered
  // events (and same-named events on different dispatchers) form one
  // series per label set, as Prometheus requires.
  struct Agg {
    std::string name;
    HistogramSnapshot kinds[kNumDispatchKinds];
  };
  std::vector<Agg> aggs;
  for (const auto& metrics : Registry::Global().List()) {
    Agg* agg = nullptr;
    for (Agg& a : aggs) {
      if (a.name == metrics->name()) {
        agg = &a;
        break;
      }
    }
    if (agg == nullptr) {
      aggs.push_back(Agg{metrics->name(), {}});
      agg = &aggs.back();
    }
    for (size_t k = 0; k < kNumDispatchKinds; ++k) {
      agg->kinds[k].Merge(
          metrics->hist(static_cast<DispatchKind>(k)).Snapshot());
    }
  }
  for (const Agg& agg : aggs) {
    HistogramSnapshot all;
    for (size_t k = 0; k < kNumDispatchKinds; ++k) {
      const HistogramSnapshot& snap = agg.kinds[k];
      if (snap.count == 0) {
        continue;
      }
      all.Merge(snap);
      WriteSummarySeries(os, agg.name,
                         DispatchKindName(static_cast<DispatchKind>(k)),
                         snap);
    }
    if (all.count != 0) {
      WriteSummarySeries(os, agg.name, "all", all);
    }
  }

  // Flight-recorder health and span accounting. Overwrites flag a
  // truncated capture window; orphans are records emitted outside any
  // span.
  os << "# HELP spin_trace_overwrites_total Flight-recorder records lost "
        "to ring wraparound since the last reset.\n";
  os << "# TYPE spin_trace_overwrites_total counter\n";
  os << "spin_trace_overwrites_total{recorder=\"global\"} "
     << FlightRecorder::Global().TotalOverwrites() << "\n";
  SpanStats spans = GetSpanStats();
  os << "spin_trace_spans_started_total{recorder=\"global\"} "
     << spans.started << "\n";
  os << "spin_trace_spans_completed_total{recorder=\"global\"} "
     << spans.completed << "\n";
  os << "spin_trace_cross_host_spans_total{recorder=\"global\"} "
     << spans.cross_host << "\n";
  os << "spin_trace_orphan_records_total{recorder=\"global\"} "
     << spans.orphans << "\n";

  // External sources (dispatchers, and whatever embedders add).
  SourceList& list = Sources();
  list.Lock();
  std::vector<Source> sources = list.sources;
  list.Unlock();
  for (const Source& source : sources) {
    source.fn(source.ctx, os);
  }
}

}  // namespace obs
}  // namespace spin
