#include "src/obs/export.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "src/obs/context.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"
#include "src/rt/clock.h"

namespace spin {
namespace obs {
namespace {

struct Source {
  void* ctx;
  MetricSourceFn fn;
};

struct SourceList {
  std::atomic_flag lock = ATOMIC_FLAG_INIT;
  std::vector<Source> sources;

  void Lock() {
    while (lock.test_and_set(std::memory_order_acquire)) {
    }
  }
  void Unlock() { lock.clear(std::memory_order_release); }
};

SourceList& Sources() {
  static SourceList* list = new SourceList();  // intentionally leaked
  return *list;
}

// Every metric family any layer can emit, declared centrally so the
// exposition carries one # HELP / # TYPE pair per family regardless of
// which sources happen to be registered. tools/validate_metrics.py fails
// the build when a sample appears without a matching declaration, so a new
// series name starts here.
struct Family {
  const char* name;
  const char* type;
  const char* help;
};

constexpr Family kFamilies[] = {
    {"spin_event_raise_ns", "summary",
     "Event dispatch latency in nanoseconds, split by dispatch kind."},
    {"spin_event_raise_ns_max", "gauge",
     "Largest dispatch latency observed per (event, kind)."},
    {"spin_trace_overwrites_total", "counter",
     "Flight-recorder records lost to ring wraparound since the last "
     "reset, globally and per thread ring."},
    {"spin_trace_emits_total", "counter",
     "Flight-recorder records written since the last reset, globally and "
     "per thread ring."},
    {"spin_trace_spans_started_total", "counter",
     "Causal spans allocated."},
    {"spin_trace_spans_completed_total", "counter",
     "Causal spans whose final executor exited."},
    {"spin_trace_cross_host_spans_total", "counter",
     "Wire-carried spans dispatched on another simulated host."},
    {"spin_trace_orphan_records_total", "counter",
     "Records emitted with no active span."},
    {"spin_anomalies_total", "counter",
     "Watchdog-detected anomalies by kind and shard; the event label "
     "names the offending event where the rule knows it (empty for "
     "queue/epoch/ring rules)."},
    {"spin_phase_ns", "summary",
     "Dispatch phase self-time in nanoseconds per (event, phase); "
     "virtual-clock phases (wire_virtual, backoff) are simulator-clock "
     "durations."},
    {"spin_phase_ns_max", "gauge",
     "Largest phase self-time observed per (event, phase)."},
    {"spin_dispatcher_installs_total", "counter", "Handler installs."},
    {"spin_dispatcher_uninstalls_total", "counter", "Handler uninstalls."},
    {"spin_dispatcher_rebuilds_total", "counter",
     "Dispatch table rebuilds."},
    {"spin_dispatcher_stub_compiles_total", "counter",
     "Dispatch routines compiled."},
    {"spin_dispatcher_lazy_promotions_total", "counter",
     "Lazy events promoted to compiled dispatch."},
    {"spin_dispatcher_stub_replicas_total", "counter",
     "Per-shard byte-copies of compiled stubs."},
    {"spin_dispatcher_direct_tables_total", "counter",
     "Tables built with the intrinsic-bypass direct call."},
    {"spin_dispatcher_interp_tables_total", "counter",
     "Tables built for interpreted dispatch."},
    {"spin_dispatcher_tree_tables_total", "counter",
     "Tables built with a guard decision tree."},
    {"spin_dispatcher_shards", "gauge",
     "Dispatch shards configured for this instance."},
    {"spin_dispatcher_shard_raises_total", "counter",
     "Raises routed to each shard."},
    {"spin_pool_queue_depth", "gauge",
     "Tasks waiting in the pool queues."},
    {"spin_pool_pending", "gauge",
     "Tasks queued or executing on the pool."},
    {"spin_pool_executed_total", "counter", "Tasks finished by the pool."},
    {"spin_pool_steals_total", "counter",
     "Tasks stolen across pool queues."},
    {"spin_epoch_current", "gauge", "Current epoch of the domain."},
    {"spin_epoch_retired", "gauge",
     "Objects retired and awaiting reclamation."},
    {"spin_epoch_reclaimed_total", "counter",
     "Objects freed over the domain's lifetime."},
    {"spin_quota_used_bytes", "gauge", "Bytes charged per module."},
    {"spin_quota_limit_bytes", "gauge", "Quota limit per module."},
    {"spin_net_rx_packets_total", "counter", "Packets received."},
    {"spin_net_tx_packets_total", "counter", "Packets transmitted."},
    {"spin_net_rx_dropped_total", "counter",
     "Received packets dropped."},
    {"spin_net_tx_dropped_total", "counter",
     "Transmitted packets dropped."},
    {"spin_net_ip_checksum_drops_total", "counter",
     "Packets dropped for a bad IP checksum."},
    {"spin_net_udp_checksum_drops_total", "counter",
     "Packets dropped for a bad UDP checksum."},
    {"spin_fleet_hosts", "gauge", "Simulated hosts in the fleet."},
    {"spin_fleet_connections", "gauge", "Fleet TCP connections."},
    {"spin_fleet_established", "gauge",
     "Fleet connections fully established."},
    {"spin_fleet_dead_connections", "gauge",
     "Fleet connections aborted after retry exhaustion."},
    {"spin_fleet_requests_total", "counter", "Fleet requests issued."},
    {"spin_fleet_responses_total", "counter",
     "Fleet responses fully delivered."},
    {"spin_fleet_response_bytes_total", "counter",
     "Fleet response bytes delivered."},
    {"spin_fleet_retransmissions_total", "counter",
     "TCP retransmissions across the fleet."},
    {"spin_fleet_wire_frames_lost_total", "counter",
     "Frames dropped by fleet wires."},
    {"spin_fleet_swaps_granted_total", "counter",
     "Stack hot-swaps admitted by the authorizer."},
    {"spin_fleet_swaps_denied_total", "counter",
     "Stack hot-swaps rejected by the authorizer."},
    {"spin_remote_client_raises_total", "counter",
     "Remote raises issued by a proxy."},
    {"spin_remote_client_retries_total", "counter",
     "Remote request retransmissions."},
    {"spin_remote_client_timeouts_total", "counter",
     "Remote requests that exhausted their retry budget."},
    {"spin_remote_client_dead_raises_total", "counter",
     "Raises against a proxy whose binding was revoked."},
    {"spin_remote_client_revoke_notices_total", "counter",
     "Revocation notices received by a proxy."},
    {"spin_remote_roundtrip_ns", "summary",
     "Remote raise roundtrip latency in nanoseconds."},
    {"spin_remote_server_requests_total", "counter",
     "Wire requests accepted by an exporter."},
    {"spin_remote_server_binds_total", "counter",
     "Bind handshakes granted."},
    {"spin_remote_server_unbound_total", "counter",
     "Raises rejected for a missing binding."},
    {"spin_remote_server_bad_requests_total", "counter",
     "Undecodable or malformed wire frames."},
    {"spin_remote_server_dedup_hits_total", "counter",
     "Duplicate deliveries suppressed by the replay cache."},
    {"spin_remote_server_exceptions_total", "counter",
     "Dispatches that threw back across the wire."},
    {"spin_remote_server_guard_rejected_total", "counter",
     "Wire raises rejected by an imposed guard."},
    {"spin_remote_server_auth_denied_total", "counter",
     "Bind handshakes denied by the authorizer."},
    {"spin_remote_server_revoked_tokens_total", "counter",
     "Capability tokens revoked."},
    {"spin_remote_server_revoked_raises_total", "counter",
     "Raises rejected for a revoked token."},
};

void WriteSummarySeries(std::ostream& os, const std::string& event,
                        const char* kind, const HistogramSnapshot& snap) {
  auto labels = [&](std::ostream& o) {
    o << "{event=\"";
    WriteLabelValue(o, event);
    o << "\",kind=\"" << kind << "\"";
  };
  const struct {
    const char* q;
    double v;
  } quantiles[] = {{"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}};
  for (const auto& q : quantiles) {
    os << "spin_event_raise_ns";
    labels(os);
    os << ",quantile=\"" << q.q << "\"} " << snap.Percentile(q.v) << "\n";
  }
  os << "spin_event_raise_ns_count";
  labels(os);
  os << "} " << snap.count << "\n";
  os << "spin_event_raise_ns_sum";
  labels(os);
  os << "} " << snap.sum << "\n";
  os << "spin_event_raise_ns_max";
  labels(os);
  os << "} " << snap.max << "\n";
}

// Aggregates live per-instance metrics by event name so re-registered
// events (and same-named events on different dispatchers) form one series
// per label set, as Prometheus requires.
struct EventAgg {
  std::string name;
  HistogramSnapshot kinds[kNumDispatchKinds];
};

std::vector<EventAgg> AggregateEvents() {
  std::vector<EventAgg> aggs;
  for (const auto& metrics : Registry::Global().List()) {
    EventAgg* agg = nullptr;
    for (EventAgg& a : aggs) {
      if (a.name == metrics->name()) {
        agg = &a;
        break;
      }
    }
    if (agg == nullptr) {
      aggs.push_back(EventAgg{metrics->name(), {}});
      agg = &aggs.back();
    }
    for (size_t k = 0; k < kNumDispatchKinds; ++k) {
      agg->kinds[k].Merge(
          metrics->hist(static_cast<DispatchKind>(k)).Snapshot());
    }
  }
  return aggs;
}

void JsonEscape(std::ostream& os, const std::string& s) {
  for (char ch : s) {
    unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << static_cast<char>(c);
        }
    }
  }
}

}  // namespace

void WriteLabelValue(std::ostream& os, const std::string& value) {
  for (char c : value) {
    switch (c) {
      case '\\':
        os << "\\\\";
        break;
      case '"':
        os << "\\\"";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        os << c;
    }
  }
}

void RegisterSource(void* ctx, MetricSourceFn fn) {
  SourceList& list = Sources();
  list.Lock();
  list.sources.push_back(Source{ctx, fn});
  list.Unlock();
}

void UnregisterSource(void* ctx) {
  SourceList& list = Sources();
  list.Lock();
  for (auto it = list.sources.begin(); it != list.sources.end();) {
    it = it->ctx == ctx ? list.sources.erase(it) : it + 1;
  }
  list.Unlock();
}

void ExportMetrics(std::ostream& os) {
  for (const Family& family : kFamilies) {
    os << "# HELP " << family.name << " " << family.help << "\n";
    os << "# TYPE " << family.name << " " << family.type << "\n";
  }

  for (const EventAgg& agg : AggregateEvents()) {
    HistogramSnapshot all;
    for (size_t k = 0; k < kNumDispatchKinds; ++k) {
      const HistogramSnapshot& snap = agg.kinds[k];
      if (snap.count == 0) {
        continue;
      }
      all.Merge(snap);
      WriteSummarySeries(os, agg.name,
                         DispatchKindName(static_cast<DispatchKind>(k)),
                         snap);
    }
    if (all.count != 0) {
      WriteSummarySeries(os, agg.name, "all", all);
    }
  }

  // Per-(event, phase) self-time summaries from the PhaseScope registry.
  for (const PhaseStats& stats : SnapshotPhaseStats()) {
    for (size_t p = 0; p < kNumPhases; ++p) {
      const HistogramSnapshot& snap = stats.phases[p];
      if (snap.count == 0) {
        continue;
      }
      const char* phase = PhaseName(static_cast<Phase>(p));
      auto labels = [&](std::ostream& o) {
        o << "{event=\"";
        WriteLabelValue(o, stats.event);
        o << "\",phase=\"" << phase << "\"";
      };
      const struct {
        const char* q;
        double v;
      } quantiles[] = {{"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}};
      for (const auto& q : quantiles) {
        os << "spin_phase_ns";
        labels(os);
        os << ",quantile=\"" << q.q << "\"} " << snap.Percentile(q.v) << "\n";
      }
      os << "spin_phase_ns_count";
      labels(os);
      os << "} " << snap.count << "\n";
      os << "spin_phase_ns_sum";
      labels(os);
      os << "} " << snap.sum << "\n";
      os << "spin_phase_ns_max";
      labels(os);
      os << "} " << snap.max << "\n";
    }
  }

  // Flight-recorder health and span accounting. Overwrites flag a
  // truncated capture window; the per-thread breakdown shows *which* ring
  // is dropping (one hot thread can silently lose its half of every trace
  // while the global sum looks tolerable); orphans are records emitted
  // outside any span.
  FlightRecorder& recorder = FlightRecorder::Global();
  os << "spin_trace_overwrites_total{recorder=\"global\"} "
     << recorder.TotalOverwrites() << "\n";
  os << "spin_trace_emits_total{recorder=\"global\"} "
     << recorder.TotalEmits() << "\n";
  for (const FlightRecorder::RingStats& ring : recorder.PerRingStats()) {
    os << "spin_trace_overwrites_total{thread=\"" << ring.tid << "\"} "
       << ring.overwrites << "\n";
    os << "spin_trace_emits_total{thread=\"" << ring.tid << "\"} "
       << ring.emits << "\n";
  }
  SpanStats spans = GetSpanStats();
  os << "spin_trace_spans_started_total{recorder=\"global\"} "
     << spans.started << "\n";
  os << "spin_trace_spans_completed_total{recorder=\"global\"} "
     << spans.completed << "\n";
  os << "spin_trace_cross_host_spans_total{recorder=\"global\"} "
     << spans.cross_host << "\n";
  os << "spin_trace_orphan_records_total{recorder=\"global\"} "
     << spans.orphans << "\n";

  // External sources (dispatchers, and whatever embedders add).
  SourceList& list = Sources();
  list.Lock();
  std::vector<Source> sources = list.sources;
  list.Unlock();
  for (const Source& source : sources) {
    source.fn(source.ctx, os);
  }
}

// --- Snapshot / delta ----------------------------------------------------

StatsSnapshot CaptureStats() {
  StatsSnapshot snap;
  snap.ts_ns = NowNs();

  for (const EventAgg& agg : AggregateEvents()) {
    for (size_t k = 0; k < kNumDispatchKinds; ++k) {
      if (agg.kinds[k].count == 0) {
        continue;
      }
      EventStat stat;
      stat.event = agg.name;
      stat.kind = static_cast<DispatchKind>(k);
      stat.hist = agg.kinds[k];
      snap.events.push_back(std::move(stat));
    }
  }

  // The series list is parsed out of the text exposition so a snapshot
  // covers exactly what a scrape covers — new sources are picked up with
  // no snapshot-side changes. Event summaries are skipped: the structured
  // histograms above carry them with full bucket resolution.
  std::ostringstream text;
  ExportMetrics(text);
  std::istringstream lines(text.str());
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    size_t space = line.rfind(' ');
    if (space == std::string::npos || space + 1 >= line.size()) {
      continue;
    }
    std::string series = line.substr(0, space);
    if (series.rfind("spin_event_raise_ns", 0) == 0 ||
        series.rfind("spin_phase_ns", 0) == 0) {
      // Summaries with structured counterparts: event histograms live in
      // snap.events; phase histograms come from SnapshotPhaseStats().
      continue;
    }
    SeriesSample sample;
    sample.series = std::move(series);
    sample.value = std::strtoull(line.c_str() + space + 1, nullptr, 10);
    size_t brace = sample.series.find('{');
    std::string name = brace == std::string::npos
                           ? sample.series
                           : sample.series.substr(0, brace);
    sample.counter = name.size() >= 6 &&
                     name.compare(name.size() - 6, 6, "_total") == 0;
    snap.series.push_back(std::move(sample));
  }
  return snap;
}

StatsSnapshot Delta(const StatsSnapshot& a, const StatsSnapshot& b) {
  StatsSnapshot out;
  out.ts_ns = b.ts_ns;
  out.window_ns = b.ts_ns >= a.ts_ns ? b.ts_ns - a.ts_ns : 0;

  for (const EventStat& eb : b.events) {
    const EventStat* ea = nullptr;
    for (const EventStat& cand : a.events) {
      if (cand.event == eb.event && cand.kind == eb.kind) {
        ea = &cand;
        break;
      }
    }
    EventStat d = eb;
    if (ea != nullptr) {
      d.hist.count = eb.hist.count >= ea->hist.count
                         ? eb.hist.count - ea->hist.count
                         : 0;
      d.hist.sum =
          eb.hist.sum >= ea->hist.sum ? eb.hist.sum - ea->hist.sum : 0;
      for (size_t i = 0; i < kNumBuckets; ++i) {
        d.hist.buckets[i] = eb.hist.buckets[i] >= ea->hist.buckets[i]
                                ? eb.hist.buckets[i] - ea->hist.buckets[i]
                                : 0;
      }
      // max is not a counter; the window keeps the newer observation.
      d.hist.max = eb.hist.max;
    }
    if (d.hist.count != 0 || ea == nullptr) {
      out.events.push_back(std::move(d));
    }
  }

  for (const SeriesSample& sb : b.series) {
    const SeriesSample* sa = nullptr;
    for (const SeriesSample& cand : a.series) {
      if (cand.series == sb.series) {
        sa = &cand;
        break;
      }
    }
    SeriesSample d = sb;
    if (sb.counter && sa != nullptr) {
      d.value = sb.value >= sa->value ? sb.value - sa->value : 0;
    }
    out.series.push_back(std::move(d));
  }
  return out;
}

void WriteJsonStats(std::ostream& os, const StatsSnapshot& snap) {
  os << "{\"ts_ns\":" << snap.ts_ns << ",\"window_ns\":" << snap.window_ns
     << ",\"events\":[";
  bool first = true;
  for (const EventStat& stat : snap.events) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "{\"event\":\"";
    JsonEscape(os, stat.event);
    os << "\",\"kind\":\"" << DispatchKindName(stat.kind) << "\""
       << ",\"count\":" << stat.hist.count << ",\"sum_ns\":" << stat.hist.sum
       << ",\"p50_ns\":" << stat.hist.Percentile(0.5)
       << ",\"p90_ns\":" << stat.hist.Percentile(0.9)
       << ",\"p99_ns\":" << stat.hist.Percentile(0.99)
       << ",\"max_ns\":" << stat.hist.max << "}";
  }
  os << "],\"series\":[";
  first = true;
  for (const SeriesSample& sample : snap.series) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "{\"name\":\"";
    JsonEscape(os, sample.series);
    os << "\",\"value\":" << sample.value << "}";
  }
  os << "]}";
}

}  // namespace obs
}  // namespace spin
