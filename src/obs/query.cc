#include "src/obs/query.h"

#include <algorithm>

namespace spin {
namespace obs {

TraceQuery::TraceQuery(std::vector<MergedRecord> records)
    : records_(std::move(records)) {
  std::stable_sort(records_.begin(), records_.end(),
                   [](const MergedRecord& a, const MergedRecord& b) {
                     if (a.rec.ts_ns != b.rec.ts_ns) {
                       return a.rec.ts_ns < b.rec.ts_ns;
                     }
                     return a.tid < b.tid;
                   });
  for (size_t i = 0; i < records_.size(); ++i) {
    const TraceRecord& rec = records_[i].rec;
    if (rec.span == 0) {
      ++orphans_;
      continue;
    }
    by_span_[rec.span].push_back(i);
    // The first record of a span carries its parent link; exporter-side
    // records of a wire-carried span may not know the parent (they stamp
    // 0), so keep the first *nonzero* link seen.
    auto it = parent_.find(rec.span);
    if (it == parent_.end()) {
      parent_[rec.span] = rec.parent;
    } else if (it->second == 0 && rec.parent != 0) {
      it->second = rec.parent;
    }
  }
  for (const auto& [span, parent] : parent_) {
    if (parent != 0) {
      children_[parent].push_back(span);
    }
  }
  for (auto& [span, kids] : children_) {
    std::sort(kids.begin(), kids.end());
  }
}

void TraceQuery::Collect(uint64_t span,
                         std::vector<MergedRecord>* out) const {
  auto it = by_span_.find(span);
  if (it != by_span_.end()) {
    for (size_t index : it->second) {
      out->push_back(records_[index]);
    }
  }
  auto kids = children_.find(span);
  if (kids != children_.end()) {
    for (uint64_t child : kids->second) {
      Collect(child, out);
    }
  }
}

std::vector<MergedRecord> TraceQuery::SpanTree(uint64_t span) const {
  std::vector<MergedRecord> out;
  Collect(span, &out);
  std::stable_sort(out.begin(), out.end(),
                   [](const MergedRecord& a, const MergedRecord& b) {
                     if (a.rec.ts_ns != b.rec.ts_ns) {
                       return a.rec.ts_ns < b.rec.ts_ns;
                     }
                     return a.tid < b.tid;
                   });
  return out;
}

std::vector<uint64_t> TraceQuery::Roots() const {
  std::vector<uint64_t> roots;
  for (const auto& [span, parent] : parent_) {
    if (parent == 0 || parent_.find(parent) == parent_.end()) {
      roots.push_back(span);
    }
  }
  return roots;
}

std::vector<uint64_t> TraceQuery::Children(uint64_t span) const {
  auto it = children_.find(span);
  return it != children_.end() ? it->second : std::vector<uint64_t>{};
}

uint64_t TraceQuery::ParentOf(uint64_t span) const {
  auto it = parent_.find(span);
  return it != parent_.end() ? it->second : 0;
}

std::vector<uint64_t> TraceQuery::Spans() const {
  std::vector<uint64_t> spans;
  spans.reserve(by_span_.size());
  for (const auto& [span, indices] : by_span_) {
    (void)indices;
    spans.push_back(span);
  }
  return spans;
}

}  // namespace obs
}  // namespace spin
