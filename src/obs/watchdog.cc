#include "src/obs/watchdog.h"

#include <algorithm>
#include <chrono>

#include "src/obs/context.h"
#include "src/obs/export.h"
#include "src/obs/trace.h"

namespace spin {
namespace obs {

namespace internal {
std::atomic<bool> g_watchdog_armed{false};
std::atomic<uint64_t> g_slow_ns{0};
}  // namespace internal

const char* AnomalyKindName(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kSlowHandler:
      return "slow_handler";
    case AnomalyKind::kQueueStall:
      return "queue_stall";
    case AnomalyKind::kOutboxBacklog:
      return "outbox_backlog";
    case AnomalyKind::kEpochStall:
      return "epoch_stall";
    case AnomalyKind::kRetryStorm:
      return "retry_storm";
    case AnomalyKind::kTraceDrops:
      return "trace_drops";
  }
  return "unknown";
}

Watchdog& Watchdog::Global() {
  static Watchdog* watchdog = new Watchdog();  // leaked
  return *watchdog;
}

Watchdog::Watchdog() {
  RegisterSource(this, &Watchdog::ExportMetricsSource);
}

void Watchdog::Arm(const WatchdogConfig& config) {
  Disarm();
  {
    std::lock_guard<std::mutex> lock(mu_);
    config_ = config;
    prev_.clear();
    burst_used_ = false;
    burst_active_ = false;
    burst_polls_left_ = 0;
    burst_latch_seq_ = 0;
    stop_ = false;
  }
  internal::g_slow_ns.store(config.slow_handler_ns,
                            std::memory_order_relaxed);
  internal::g_watchdog_armed.store(true, std::memory_order_relaxed);
  if (config.period_ms != 0) {
    monitor_ = std::thread([this] { MonitorLoop(); });
  }
}

void Watchdog::Disarm() {
  internal::g_watchdog_armed.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    if (burst_active_) {
      SetTraceConfig(burst_saved_);
      burst_active_ = false;
      burst_polls_left_ = 0;
    }
  }
  stop_cv_.notify_all();
  if (monitor_.joinable()) {
    monitor_.join();
  }
  // Clear derived per-event deadlines so a later re-arm starts fresh.
  for (const auto& metrics : Registry::Global().List()) {
    metrics->set_slow_ns(0);
  }
}

void Watchdog::MonitorLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    uint64_t period = config_.period_ms;
    stop_cv_.wait_for(lock, std::chrono::milliseconds(period),
                      [this] { return stop_; });
    if (stop_) {
      return;
    }
    lock.unlock();
    Poll();
    lock.lock();
  }
}

void Watchdog::Poll() {
  std::vector<Probe> probes;
  WatchdogConfig config;
  uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = ++poll_seq_;
    ++polls_in_flight_;
    probes = probes_;
    config = config_;
  }

  std::vector<WatchSample> samples;
  for (const Probe& probe : probes) {
    probe.fn(probe.ctx, samples);
  }

  for (const WatchSample& s : samples) {
    if (s.name == nullptr) {
      continue;
    }
    SampleKey key{s.name, static_cast<uint8_t>(s.kind), s.shard};
    PrevSample prev;
    bool seen = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = prev_.find(key);
      if (it != prev_.end()) {
        prev = it->second;
        seen = true;
      }
      prev_[key] = PrevSample{s.depth, s.progress};
    }
    switch (s.kind) {
      case AnomalyKind::kQueueStall:
        if (s.depth >= config.outbox_backlog && config.outbox_backlog != 0) {
          Report(AnomalyKind::kOutboxBacklog, s.name, s.shard, s.depth);
        }
        // A queue with work and no progress across one full period is
        // stalled; requires a previous observation so a freshly enqueued
        // burst is not flagged before the worker had a period to drain it.
        if (seen && s.depth > 0 && prev.depth > 0 &&
            s.progress == prev.progress) {
          Report(AnomalyKind::kQueueStall, s.name, s.shard, s.depth);
        }
        break;
      case AnomalyKind::kEpochStall:
        if (seen && s.depth >= config.epoch_stall_min &&
            prev.depth >= config.epoch_stall_min &&
            s.progress == prev.progress) {
          Report(AnomalyKind::kEpochStall, s.name, s.shard, s.depth);
        }
        break;
      case AnomalyKind::kRetryStorm:
        if (seen && config.retry_storm != 0 &&
            s.progress - prev.progress >= config.retry_storm) {
          Report(AnomalyKind::kRetryStorm, s.name, s.shard,
                 s.progress - prev.progress);
        }
        break;
      default:
        break;
    }
  }

  CheckTraceRings(config);
  RefreshSlowDeadlines();

  {
    std::lock_guard<std::mutex> lock(mu_);
    // Retire the burst only on passes that started after the latch
    // (burst_latch_seq_ < seq), and only once the pass has fully run at
    // full fidelity — so a burst latched moments before or during a poll
    // still captures at least one complete probe pass.
    if (burst_active_ && burst_polls_left_ > 0 && burst_latch_seq_ < seq &&
        --burst_polls_left_ == 0) {
      RetireBurstLocked();
    }
    // Probe callbacks are long done; release any UnregisterProbe waiting
    // to destroy its ctx.
    --polls_in_flight_;
  }
  poll_cv_.notify_all();
}

void Watchdog::CheckTraceRings(const WatchdogConfig& config) {
  if (config.trace_drop_ratio <= 0) {
    return;
  }
  // The ring name is one interned string; per-ring identity rides in the
  // shard slot (the recorder's dense thread id), matching the {thread=...}
  // labelling of spin_trace_overwrites_total.
  static const char* ring_name = Intern("trace-ring");
  for (const FlightRecorder::RingStats& ring :
       FlightRecorder::Global().PerRingStats()) {
    SampleKey key{ring_name, static_cast<uint8_t>(AnomalyKind::kTraceDrops),
                  ring.tid};
    PrevSample prev;
    bool seen = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = prev_.find(key);
      if (it != prev_.end()) {
        prev = it->second;
        seen = true;
      }
      prev_[key] = PrevSample{ring.overwrites, ring.emits};
    }
    // Counters shrink only when the recorder was Reset between polls; the
    // stored baseline is stale then, so this pass just re-baselines.
    if (!seen || ring.emits < prev.progress ||
        ring.overwrites < prev.depth) {
      continue;
    }
    uint64_t emitted = ring.emits - prev.progress;
    uint64_t dropped = ring.overwrites - prev.depth;
    if (emitted >= std::max<uint64_t>(config.trace_drop_min_emits, 1) &&
        dropped > 0 &&
        static_cast<double>(dropped) >=
            config.trace_drop_ratio * static_cast<double>(emitted)) {
      Report(AnomalyKind::kTraceDrops, ring_name, ring.tid, dropped);
    }
  }
}

void Watchdog::RefreshSlowDeadlines() {
  WatchdogConfig config;
  {
    std::lock_guard<std::mutex> lock(mu_);
    config = config_;
  }
  if (config.slow_handler_ns == 0 || config.p99_factor <= 0) {
    return;
  }
  for (const auto& metrics : Registry::Global().List()) {
    HistogramSnapshot snap = metrics->Merged();
    if (snap.count < config.min_samples) {
      continue;
    }
    double derived = static_cast<double>(snap.Percentile(0.99)) *
                     config.p99_factor;
    uint64_t slow = derived >= static_cast<double>(config.slow_handler_ns)
                        ? config.slow_handler_ns
                        : static_cast<uint64_t>(derived);
    slow = std::max(slow, config.slow_handler_floor_ns);
    metrics->set_slow_ns(slow);
  }
}

void Watchdog::Report(AnomalyKind kind, const char* name, uint32_t shard,
                      uint64_t value) {
  // Only the deadline check reports per event (its `name` is the event
  // that blew the budget); every monitor rule names the watched resource
  // instead, so its event label stays empty. One static interned "" keeps
  // the map key a stable pointer identity.
  static const char* no_event = Intern("");
  const char* event = kind == AnomalyKind::kSlowHandler ? name : no_event;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counts_[{static_cast<uint8_t>(kind), shard, event}];
    last_value_ = value;
    if (config_.trace_burst && !burst_used_) {
      burst_used_ = true;
      burst_active_ = true;
      burst_polls_left_ = config_.burst_periods == 0 ? 1
                                                     : config_.burst_periods;
      // Latched mid-poll: the current pass doesn't count toward the
      // countdown. Latched between polls (inline CheckDispatch): neither
      // does the next pass to start, so the burst spans at least
      // burst_periods full monitor periods.
      burst_latch_seq_ = polls_in_flight_ > 0 ? poll_seq_ : poll_seq_ + 1;
      // Save and switch the trace config under mu_ so a concurrent
      // Disarm() (which restores burst_saved_ under the same lock) cannot
      // interleave and leave the process stuck in kFull.
      burst_saved_ = GetTraceConfig();
      TraceConfig full = burst_saved_;
      full.mode = TraceMode::kFull;
      SetTraceConfig(full);
    }
  }
  // The anomaly record overrides the sampling decision: an incident inside
  // an unsampled raise must still land in the flight recorder.
  SampleScope sample(SampleDecision::kTrace);
  FlightRecorder::Global().Emit(
      TraceKind::kAnomaly, name,
      (static_cast<uint64_t>(kind) << 32) | shard);
}

void Watchdog::RetireBurstLocked() {
  SetTraceConfig(burst_saved_);
  burst_active_ = false;
}

void Watchdog::RearmBurst() {
  std::lock_guard<std::mutex> lock(mu_);
  burst_used_ = false;
}

bool Watchdog::burst_active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return burst_active_;
}

WatchdogConfig Watchdog::config() const {
  std::lock_guard<std::mutex> lock(mu_);
  return config_;
}

uint64_t Watchdog::last_value() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_value_;
}

uint64_t Watchdog::Count(AnomalyKind kind, uint32_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [key, count] : counts_) {
    if (std::get<0>(key) == static_cast<uint8_t>(kind) &&
        std::get<1>(key) == shard) {
      total += count;
    }
  }
  return total;
}

uint64_t Watchdog::Count(AnomalyKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [key, count] : counts_) {
    if (std::get<0>(key) == static_cast<uint8_t>(kind)) {
      total += count;
    }
  }
  return total;
}

void Watchdog::RegisterProbe(void* ctx, WatchProbeFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  probes_.push_back(Probe{ctx, fn});
}

void Watchdog::UnregisterProbe(void* ctx) {
  std::unique_lock<std::mutex> lock(mu_);
  probes_.erase(std::remove_if(probes_.begin(), probes_.end(),
                               [ctx](const Probe& p) { return p.ctx == ctx; }),
                probes_.end());
  // An in-flight Poll() copied probes_ before this erase and may still be
  // about to invoke this probe; wait it out so the caller (typically a
  // destructor) can safely free ctx the moment we return.
  poll_cv_.wait(lock, [this] { return polls_in_flight_ == 0; });
}

void Watchdog::ExportMetricsSource(void* ctx, std::ostream& os) {
  auto* self = static_cast<Watchdog*>(ctx);
  std::map<std::tuple<uint8_t, uint32_t, const char*>, uint64_t> counts;
  {
    std::lock_guard<std::mutex> lock(self->mu_);
    counts = self->counts_;
  }
  for (const auto& [key, count] : counts) {
    os << "spin_anomalies_total{kind=\""
       << AnomalyKindName(static_cast<AnomalyKind>(std::get<0>(key)))
       << "\",shard=\"" << std::get<1>(key) << "\",event=\"";
    WriteLabelValue(os, std::get<2>(key));
    os << "\"} " << count << "\n";
  }
}

}  // namespace obs
}  // namespace spin
