// Causal trace context: the span active on the current thread.
//
// A span is one logical unit of causally-connected work. Every traced
// dispatch (EventBase::RaiseErased) opens a span; a raise made from inside
// a handler opens a *child* span, an async handoff pre-allocates the child
// span at enqueue time and the pool thread adopts it, and a remote raise
// carries its span id across the wire so the exporter-side dispatch joins
// the same tree. Flight-recorder records are stamped with the active
// (span, parent) pair plus the simulated-host identity, which is what lets
// Snapshot()/TraceQuery reassemble "what did raise #N actually cause"
// across threads and hosts.
//
// Everything here is tracing-path-only: the dispatcher consults this file
// solely under obs::Enabled(), so the tracing-off raise cost is unchanged.
#ifndef SRC_OBS_CONTEXT_H_
#define SRC_OBS_CONTEXT_H_

#include <cstdint>
#include <string>

#include "src/obs/obs.h"

namespace spin {
namespace obs {

// The sampling decision active for the current causal tree. A top-level
// raise (no decision in scope) makes one — kTrace captures the whole tree,
// kSkip suppresses it — and nested raises, async pool bodies, and wire
// dispatches inherit it through TraceContext. kUndecided marks control-
// plane work outside any raise (installs, rebuilds, watchdog reports),
// which is always captured when the recorder is enabled.
enum class SampleDecision : uint8_t {
  kUndecided = 0,
  kTrace = 1,
  kSkip = 2,
};

// The causal context records are stamped with. span == 0 means "no span
// active" (the record is an orphan); host == 0 means "no simulated host"
// (plain local work).
struct TraceContext {
  uint64_t span = 0;    // active span id
  uint64_t parent = 0;  // the active span's parent (0 = root span)
  uint32_t host = 0;    // RegisterTraceHost id of the active sim host
  SampleDecision decision = SampleDecision::kUndecided;
};

// The context active on this thread. Mutate only through the scopes below.
const TraceContext& CurrentContext();

// Makes the per-tree sampling decision for a top-level raise: kTrace in
// full mode, and every sample_rate-th call per thread in sampled mode (a
// thread-local counter — no atomics, no clock read, deterministic on one
// thread). Call only when Enabled() and CurrentContext().decision is
// kUndecided; the caller installs the result with a SampleScope.
SampleDecision DecideTopLevel();

// True when records emitted from the current context should be captured:
// the recorder is enabled and the active sampling decision (if any) is not
// kSkip. Control-plane emission outside any raise is always captured.
inline bool Capturing() {
  return Enabled() && CurrentContext().decision != SampleDecision::kSkip;
}

// RAII install/restore of the sampling decision alone, leaving the active
// span untouched. A top-level raise holds one of these for its entire
// dispatch so the causal tree it creates — including async handoffs that
// copy the context — inherits the decision.
class SampleScope {
 public:
  explicit SampleScope(SampleDecision decision);
  ~SampleScope();
  SampleScope(const SampleScope&) = delete;
  SampleScope& operator=(const SampleScope&) = delete;

 private:
  SampleDecision saved_;
};

// Allocates a fresh process-unique span id (never 0) and counts it as
// started. The caller is responsible for eventually counting it completed
// (SpanScope does both ends automatically).
uint64_t NewSpanId();

// RAII span entry/exit. The default constructor opens a child of whatever
// span is active (a root span when none is); the adopting constructor
// installs a context produced elsewhere — an async enqueue site or a
// decoded wire frame — and counts the span completed on exit only when the
// adopter owns that end of its lifetime.
class SpanScope {
 public:
  // Opens a new span as a child of the current one.
  SpanScope();
  // Adopts `ctx` verbatim. complete_on_exit: this scope is the span's final
  // executor (an async pool body), not a visitor (an exporter dispatch).
  SpanScope(const TraceContext& ctx, bool complete_on_exit);
  ~SpanScope();
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  uint64_t span() const { return span_; }

 private:
  TraceContext saved_;
  uint64_t span_ = 0;
  bool complete_ = false;
};

// RAII phase segment (DESIGN.md §15). Times one stage of a raise on the
// host clock and, on exit, stamps a kPhase record carrying {phase,
// t_start, t_end, self_ns} into the flight recorder plus the
// spin_phase_ns{event,phase} histogram. Scopes nest through a thread-local
// parent chain: a child's wall time is subtracted from its enclosing
// scope's self-time, so summing self_ns over any set of nested scopes
// never double-counts — even when the nesting crosses span boundaries
// (an exporter dispatch pumped inside a proxy's wire wait, a child raise
// inside a handler body).
//
// Cost: when the thread is capturing, the constructor is one clock read
// plus two thread-local stores; when sampled out (or the caller passes
// active=false), it is a single branch and no clock read — the sampled-out
// raise stays unchanged.
class PhaseScope {
 public:
  // `name` must be interned (it is stored in trace records). Checks
  // Capturing() itself.
  PhaseScope(Phase phase, const char* name);
  // Caller-supplied gate, for sites that already computed their tracing
  // decision once per dispatch: active=false skips the Capturing() check
  // and the clock read entirely.
  PhaseScope(Phase phase, const char* name, bool active);
  ~PhaseScope();
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  void Enter();

  PhaseScope* parent_ = nullptr;
  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
  uint64_t child_ns_ = 0;  // wall time of directly nested scopes
  Phase phase_ = Phase::kGuardEval;
  bool active_ = false;
};

// Stamps a virtual-clock phase (kWireVirtual, kBackoff): a kPhase record
// whose self-time is `virtual_ns` on the simulator clock and whose
// host-clock extent is empty (end_ns == 0). Does not participate in the
// PhaseScope nesting chain — virtual durations are reported alongside the
// real-time budget, never subtracted from it. No-op unless Capturing().
void EmitVirtualPhase(Phase phase, const char* name, uint64_t virtual_ns);

// Stamps an already-measured real-time segment whose endpoints were
// captured on different threads (async queue wait: enqueue timestamp on
// the raising thread, execute timestamp on the pool thread). Participates
// in the nesting chain as a leaf via self_ns only. No-op unless Capturing().
void EmitPhaseSegment(Phase phase, const char* name, uint64_t t_start,
                      uint64_t t_end);

// RAII simulated-host identity for records emitted on this thread. Leaves
// the active span untouched.
class HostScope {
 public:
  explicit HostScope(uint32_t host);
  ~HostScope();
  HostScope(const HostScope&) = delete;
  HostScope& operator=(const HostScope&) = delete;

 private:
  uint32_t saved_ = 0;
};

// Registers a simulated host for trace attribution; returns a dense
// nonzero id, stable for the process lifetime. Thread-safe.
uint32_t RegisterTraceHost(const std::string& name);

// The registered name for a host id ("local" for 0 or unknown ids). The
// returned pointer never dangles.
const char* TraceHostName(uint32_t host);

// Span accounting, exported as spin_trace_* by ExportMetrics.
struct SpanStats {
  uint64_t started = 0;     // NewSpanId allocations
  uint64_t completed = 0;   // spans whose final executor exited
  uint64_t cross_host = 0;  // wire-carried spans dispatched on another host
  uint64_t orphans = 0;     // records emitted with no active span
};
SpanStats GetSpanStats();
void ResetSpanStats();

// Counts a span that arrived over the wire from a different host
// (exporter-side, once per fresh dispatch).
void CountCrossHostSpan();

namespace internal {
// Called by FlightRecorder::EmitAt for records stamped with span 0.
void CountOrphanRecord();
// Mutable access for the scopes; not part of the public surface.
TraceContext& MutableContext();
}  // namespace internal

}  // namespace obs
}  // namespace spin

#endif  // SRC_OBS_CONTEXT_H_
