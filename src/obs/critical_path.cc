#include "src/obs/critical_path.h"

#include <algorithm>
#include <string>
#include <string_view>

namespace spin {
namespace obs {

CriticalPath::CriticalPath(const TraceQuery& query) {
  for (const MergedRecord& m : query.records()) {
    const TraceRecord& rec = m.rec;
    if (rec.span == 0) {
      continue;
    }
    SpanInfo& info = spans_[rec.span];
    info.span = rec.span;
    if (info.parent == 0 && rec.parent != 0) {
      info.parent = rec.parent;
    }
    info.begin = std::min(info.begin, rec.ts_ns);
    info.end = std::max(info.end, rec.ts_ns);
    if (rec.kind == TraceKind::kPhase) {
      size_t p = static_cast<size_t>(PhaseOfArg(rec.arg));
      if (p < kNumPhases) {
        if (rec.end_ns != 0) {
          info.self[p] += PhaseSelfNs(rec.arg);
          info.end = std::max(info.end, rec.end_ns);
        } else {
          info.virt[p] += PhaseSelfNs(rec.arg);
        }
      }
    } else if (rec.kind == TraceKind::kRaiseBegin || info.name == nullptr) {
      // Prefer the raise's own name; fall back to the first named record
      // (a wire span has no kRaiseBegin of its own).
      info.name = rec.name;
    }
  }
  for (auto& [span, info] : spans_) {
    if (info.parent != 0 && spans_.count(info.parent) != 0) {
      spans_[info.parent].children.push_back(span);
    } else {
      roots_.push_back(span);
    }
  }
}

const CriticalPath::SpanInfo* CriticalPath::Find(uint64_t span) const {
  auto it = spans_.find(span);
  return it == spans_.end() ? nullptr : &it->second;
}

std::vector<uint64_t> CriticalPath::Roots() const { return roots_; }

CriticalPath::PhaseBreakdown CriticalPath::Attribute(uint64_t root) const {
  PhaseBreakdown out;
  const SpanInfo* top = Find(root);
  if (top == nullptr) {
    return out;
  }
  out.wall_ns = Wall(*top);
  std::vector<uint64_t> stack{root};
  while (!stack.empty()) {
    const SpanInfo* info = Find(stack.back());
    stack.pop_back();
    if (info == nullptr) {
      continue;
    }
    for (size_t p = 0; p < kNumPhases; ++p) {
      out.self_ns[p] += info->self[p];
      out.virtual_ns[p] += info->virt[p];
      out.tracked_ns += info->self[p];
    }
    stack.insert(stack.end(), info->children.begin(), info->children.end());
  }
  out.residual_ns =
      out.wall_ns > out.tracked_ns ? out.wall_ns - out.tracked_ns : 0;
  if (out.wall_ns != 0) {
    out.coverage = static_cast<double>(out.tracked_ns) /
                   static_cast<double>(out.wall_ns);
  }
  return out;
}

std::vector<CriticalPath::CriticalStep> CriticalPath::LongestPath(
    uint64_t root) const {
  std::vector<CriticalStep> path;
  const SpanInfo* info = Find(root);
  while (info != nullptr) {
    CriticalStep step;
    step.span = info->span;
    step.name = info->name != nullptr ? info->name : "?";
    step.wall_ns = Wall(*info);
    uint64_t children_wall = 0;
    const SpanInfo* widest = nullptr;
    for (uint64_t child : info->children) {
      const SpanInfo* c = Find(child);
      if (c == nullptr) {
        continue;
      }
      children_wall += Wall(*c);
      if (widest == nullptr || Wall(*c) > Wall(*widest)) {
        widest = c;
      }
    }
    // Concurrent children (async fan-out) can overlap the parent; clamp
    // rather than let self underflow.
    step.self_ns =
        step.wall_ns > children_wall ? step.wall_ns - children_wall : 0;
    for (size_t p = 0; p < kNumPhases; ++p) {
      if (info->self[p] > step.dominant_ns) {
        step.dominant_ns = info->self[p];
        step.dominant = static_cast<Phase>(p);
      }
    }
    path.push_back(step);
    info = widest;
  }
  return path;
}

std::vector<CriticalPath::EventPhases> CriticalPath::AggregateByEvent()
    const {
  std::vector<EventPhases> out;
  for (const auto& [span, info] : spans_) {
    const char* event = info.name != nullptr ? info.name : "?";
    EventPhases* agg = nullptr;
    for (EventPhases& e : out) {
      if (e.event == event) {
        agg = &e;
        break;
      }
    }
    if (agg == nullptr) {
      out.emplace_back();
      agg = &out.back();
      agg->event = event;
    }
    for (size_t p = 0; p < kNumPhases; ++p) {
      agg->self_ns[p] += info.self[p];
      agg->virtual_ns[p] += info.virt[p];
    }
  }
  std::sort(out.begin(), out.end(),
            [](const EventPhases& a, const EventPhases& b) {
              return std::string_view(a.event) < std::string_view(b.event);
            });
  return out;
}

void CriticalPath::FoldSpan(std::ostream& os, const SpanInfo& info,
                            std::string& path) const {
  size_t saved = path.size();
  if (!path.empty()) {
    path += ";";
  }
  path += info.name != nullptr ? info.name : "?";

  uint64_t accounted = 0;
  for (size_t p = 0; p < kNumPhases; ++p) {
    if (info.self[p] != 0) {
      os << path << ";" << PhaseName(static_cast<Phase>(p)) << " "
         << info.self[p] << "\n";
      accounted += info.self[p];
    }
  }
  uint64_t children_wall = 0;
  for (uint64_t child : info.children) {
    const SpanInfo* c = Find(child);
    if (c != nullptr) {
      children_wall += Wall(*c);
      FoldSpan(os, *c, path);
    }
  }
  uint64_t wall = Wall(info);
  uint64_t tracked = accounted + children_wall;
  if (wall > tracked) {
    os << path << ";(untracked) " << wall - tracked << "\n";
  }
  path.resize(saved);
}

void CriticalPath::WriteFolded(std::ostream& os) const {
  std::string path;
  for (uint64_t root : roots_) {
    const SpanInfo* info = Find(root);
    if (info != nullptr) {
      FoldSpan(os, *info, path);
    }
  }
}

}  // namespace obs
}  // namespace spin
