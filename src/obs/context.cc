#include "src/obs/context.h"

#include <atomic>
#include <vector>

#include "src/obs/obs.h"
#include "src/obs/trace.h"
#include "src/rt/clock.h"

namespace spin {
namespace obs {
namespace {

thread_local TraceContext t_context;

std::atomic<uint64_t> g_next_span{1};
std::atomic<uint64_t> g_spans_started{0};
std::atomic<uint64_t> g_spans_completed{0};
std::atomic<uint64_t> g_cross_host_spans{0};
std::atomic<uint64_t> g_orphan_records{0};

// Host registry: ids are dense and 1-based; names are interned so
// TraceHostName never dangles. Guarded by the obs spinlock-style flag.
struct HostRegistry {
  std::atomic_flag lock = ATOMIC_FLAG_INIT;
  std::vector<const char*> names;  // index = host id - 1

  void Lock() {
    while (lock.test_and_set(std::memory_order_acquire)) {
    }
  }
  void Unlock() { lock.clear(std::memory_order_release); }
};

HostRegistry& Hosts() {
  static HostRegistry* registry = new HostRegistry();  // leaked
  return *registry;
}

}  // namespace

const TraceContext& CurrentContext() { return t_context; }

TraceContext& internal::MutableContext() { return t_context; }

SampleDecision DecideTopLevel() {
  if (CurrentTraceMode() == TraceMode::kFull) {
    return SampleDecision::kTrace;
  }
  // Sampled: capture every rate-th top-level raise this thread makes. The
  // counter is thread-local, so the unsampled path touches no shared state
  // and the pattern is deterministic for single-threaded tests.
  thread_local uint32_t t_countdown = 0;
  uint32_t rate = internal::g_sample_rate.load(std::memory_order_relaxed);
  if (++t_countdown >= rate) {
    t_countdown = 0;
    return SampleDecision::kTrace;
  }
  return SampleDecision::kSkip;
}

SampleScope::SampleScope(SampleDecision decision)
    : saved_(t_context.decision) {
  t_context.decision = decision;
}

SampleScope::~SampleScope() { t_context.decision = saved_; }

uint64_t NewSpanId() {
  g_spans_started.fetch_add(1, std::memory_order_relaxed);
  return g_next_span.fetch_add(1, std::memory_order_relaxed);
}

SpanScope::SpanScope() : saved_(t_context), complete_(true) {
  span_ = NewSpanId();
  t_context.parent = saved_.span;
  t_context.span = span_;
}

SpanScope::SpanScope(const TraceContext& ctx, bool complete_on_exit)
    : saved_(t_context), span_(ctx.span), complete_(complete_on_exit) {
  t_context = ctx;
}

SpanScope::~SpanScope() {
  if (complete_ && span_ != 0) {
    g_spans_completed.fetch_add(1, std::memory_order_relaxed);
  }
  t_context = saved_;
}

namespace {
// Innermost live PhaseScope on this thread: the nesting chain that makes
// self-times partition (a child's wall time is charged to exactly one
// parent, whichever scope encloses it on this thread).
thread_local PhaseScope* t_phase_top = nullptr;
}  // namespace

PhaseScope::PhaseScope(Phase phase, const char* name)
    : name_(name), phase_(phase) {
  if (!Capturing()) {
    return;
  }
  Enter();
}

PhaseScope::PhaseScope(Phase phase, const char* name, bool active)
    : name_(name), phase_(phase) {
  if (!active) {
    return;
  }
  Enter();
}

void PhaseScope::Enter() {
  active_ = true;
  start_ns_ = NowNs();
  parent_ = t_phase_top;
  t_phase_top = this;
}

PhaseScope::~PhaseScope() {
  if (!active_) {
    return;
  }
  uint64_t end = NowNs();
  uint64_t dur = end > start_ns_ ? end - start_ns_ : 0;
  uint64_t self = dur > child_ns_ ? dur - child_ns_ : 0;
  if (parent_ != nullptr) {
    parent_->child_ns_ += dur;
  }
  t_phase_top = parent_;
  FlightRecorder::Global().EmitPhase(name_, phase_, start_ns_, end, self);
}

void EmitVirtualPhase(Phase phase, const char* name, uint64_t virtual_ns) {
  if (!Capturing()) {
    return;
  }
  // t_start on the host clock keeps the record sorted near its siblings in
  // the merged timeline; end_ns == 0 marks the extent as virtual.
  FlightRecorder::Global().EmitPhase(name, phase, NowNs(), 0, virtual_ns);
}

void EmitPhaseSegment(Phase phase, const char* name, uint64_t t_start,
                      uint64_t t_end) {
  if (!Capturing()) {
    return;
  }
  uint64_t dur = t_end > t_start ? t_end - t_start : 0;
  FlightRecorder::Global().EmitPhase(name, phase, t_start, t_end, dur);
}

HostScope::HostScope(uint32_t host) : saved_(t_context.host) {
  t_context.host = host;
}

HostScope::~HostScope() { t_context.host = saved_; }

uint32_t RegisterTraceHost(const std::string& name) {
  const char* interned = Intern(name);
  HostRegistry& hosts = Hosts();
  hosts.Lock();
  hosts.names.push_back(interned);
  uint32_t id = static_cast<uint32_t>(hosts.names.size());
  hosts.Unlock();
  return id;
}

const char* TraceHostName(uint32_t host) {
  if (host == 0) {
    return "local";
  }
  HostRegistry& hosts = Hosts();
  hosts.Lock();
  const char* name =
      host <= hosts.names.size() ? hosts.names[host - 1] : "local";
  hosts.Unlock();
  return name;
}

SpanStats GetSpanStats() {
  SpanStats stats;
  stats.started = g_spans_started.load(std::memory_order_relaxed);
  stats.completed = g_spans_completed.load(std::memory_order_relaxed);
  stats.cross_host = g_cross_host_spans.load(std::memory_order_relaxed);
  stats.orphans = g_orphan_records.load(std::memory_order_relaxed);
  return stats;
}

void ResetSpanStats() {
  g_spans_started.store(0, std::memory_order_relaxed);
  g_spans_completed.store(0, std::memory_order_relaxed);
  g_cross_host_spans.store(0, std::memory_order_relaxed);
  g_orphan_records.store(0, std::memory_order_relaxed);
}

void CountCrossHostSpan() {
  g_cross_host_spans.fetch_add(1, std::memory_order_relaxed);
}

void internal::CountOrphanRecord() {
  g_orphan_records.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace spin
