// Prometheus-style text exposition of the system's metrics.
//
// ExportMetrics(os) writes, in the Prometheus text format:
//   - per-event raise-latency summaries (p50/p90/p99/max + count/sum),
//     one series per (event, dispatch kind) plus a merged kind="all"
//     series, sourced from the obs::Registry histograms;
//   - every registered external source. A source is a plain callback;
//     the Dispatcher registers one per instance covering its Stats,
//     ThreadPool queue depth / executed counts, EpochDomain reclamation
//     lag, and QuotaManager per-module usage. The indirection keeps
//     spin_obs free of dependencies on the layers it observes.
//
// An HTTP scrape endpoint is one `ExportMetrics(response_body)` away; the
// library deliberately stops at the stream so embedders choose the server.
#ifndef SRC_OBS_EXPORT_H_
#define SRC_OBS_EXPORT_H_

#include <ostream>
#include <string>

namespace spin {
namespace obs {

using MetricSourceFn = void (*)(void* ctx, std::ostream& os);

// Registers/unregisters a metric source keyed by `ctx`. Sources are invoked
// by ExportMetrics in registration order. Thread-safe.
void RegisterSource(void* ctx, MetricSourceFn fn);
void UnregisterSource(void* ctx);

// Writes the full exposition to `os`.
void ExportMetrics(std::ostream& os);

// Escapes a Prometheus label value (backslash, quote, newline) into `os`.
// Exposed for sources that build label pairs.
void WriteLabelValue(std::ostream& os, const std::string& value);

}  // namespace obs
}  // namespace spin

#endif  // SRC_OBS_EXPORT_H_
