// Prometheus-style text exposition and the snapshot/delta stats pipeline.
//
// ExportMetrics(os) writes, in the Prometheus text format:
//   - a metadata preamble: one # HELP / # TYPE pair per metric family the
//     system can emit, so the exposition passes a promtool-style lint
//     (tools/validate_metrics.py) without each source carrying metadata;
//   - per-event raise-latency summaries (p50/p90/p99/max + count/sum),
//     one series per (event, dispatch kind) plus a merged kind="all"
//     series, sourced from the obs::Registry histograms;
//   - flight-recorder health, global and per-thread ring;
//   - every registered external source. A source is a plain callback;
//     the Dispatcher registers one per instance covering its Stats,
//     ThreadPool queue depth / executed counts, EpochDomain reclamation
//     lag, and QuotaManager per-module usage. The indirection keeps
//     spin_obs free of dependencies on the layers it observes.
//
// The snapshot pipeline is the machine-readable sibling: CaptureStats()
// collects every histogram and counter in one pass, Delta(a, b) turns two
// snapshots into a rate window (counters subtract, gauges keep the newer
// value, histograms subtract bucket-wise), and WriteJsonStats() emits the
// JSON that tools/spin_top.py renders live.
//
// An HTTP scrape endpoint is one `ExportMetrics(response_body)` away; the
// library deliberately stops at the stream so embedders choose the server.
#ifndef SRC_OBS_EXPORT_H_
#define SRC_OBS_EXPORT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/obs/obs.h"

namespace spin {
namespace obs {

using MetricSourceFn = void (*)(void* ctx, std::ostream& os);

// Registers/unregisters a metric source keyed by `ctx`. Sources are invoked
// by ExportMetrics in registration order. Thread-safe.
void RegisterSource(void* ctx, MetricSourceFn fn);
void UnregisterSource(void* ctx);

// Writes the full exposition to `os`.
void ExportMetrics(std::ostream& os);

// Escapes a Prometheus label value (backslash, quote, newline) into `os`.
// Exposed for sources that build label pairs.
void WriteLabelValue(std::ostream& os, const std::string& value);

// --- Snapshot / delta ----------------------------------------------------

// One (event, dispatch kind) latency distribution, aggregated across every
// live instance with that event name (the exposition's aggregation rule).
struct EventStat {
  std::string event;
  DispatchKind kind = DispatchKind::kDirect;
  HistogramSnapshot hist;
};

// One counter or gauge sample, identified by its full series string
// (name{labels}). `counter` follows the Prometheus naming convention:
// *_total series accumulate and Delta subtracts them; everything else is
// a gauge and Delta keeps the newer value.
struct SeriesSample {
  std::string series;
  uint64_t value = 0;
  bool counter = false;
};

struct StatsSnapshot {
  uint64_t ts_ns = 0;      // monotonic capture time
  uint64_t window_ns = 0;  // 0 on a capture; b.ts - a.ts on a Delta result
  std::vector<EventStat> events;
  std::vector<SeriesSample> series;
};

// Captures every per-event histogram and every exported counter/gauge in
// one pass (the series list is built from the same sources the text
// exposition uses, so the two never drift).
StatsSnapshot CaptureStats();

// The change from snapshot `a` to the later snapshot `b`: counters and
// histogram buckets subtract (clamped at zero against concurrent resets),
// gauges and histogram maxima take b's value, and window_ns is the elapsed
// time — everything a rate display needs.
StatsSnapshot Delta(const StatsSnapshot& a, const StatsSnapshot& b);

// Serializes a snapshot as one JSON object:
//   {"ts_ns":..,"window_ns":..,
//    "events":[{"event":..,"kind":..,"count":..,"sum_ns":..,
//               "p50_ns":..,"p90_ns":..,"p99_ns":..,"max_ns":..}],
//    "series":[{"name":..,"value":..}]}
void WriteJsonStats(std::ostream& os, const StatsSnapshot& snap);

}  // namespace obs
}  // namespace spin

#endif  // SRC_OBS_EXPORT_H_
