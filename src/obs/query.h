// Span-tree queries over a flight-recorder snapshot.
//
// A TraceQuery indexes a merged timeline by span id and parent links so a
// test (or a debugging session) can ask "what did this raise actually
// cause" — the span's own records plus everything transitively hung off it
// through child raises, async handoffs, and wire crossings — as one
// timestamp-ordered list.
//
// The index is built once from an immutable snapshot; queries never touch
// the live recorder.
#ifndef SRC_OBS_QUERY_H_
#define SRC_OBS_QUERY_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/obs/trace.h"

namespace spin {
namespace obs {

class TraceQuery {
 public:
  explicit TraceQuery(std::vector<MergedRecord> records);

  // Every record of `span` and of all its descendants, ordered by
  // (timestamp, tid). Empty when the span is unknown.
  std::vector<MergedRecord> SpanTree(uint64_t span) const;

  // Span ids whose parent is 0 or absent from the snapshot (the parent's
  // records were overwritten or never captured), ascending.
  std::vector<uint64_t> Roots() const;

  // Direct children of `span`, ascending.
  std::vector<uint64_t> Children(uint64_t span) const;

  // The parent span id (0 when the span is a root or unknown).
  uint64_t ParentOf(uint64_t span) const;

  // All distinct span ids in the snapshot, ascending.
  std::vector<uint64_t> Spans() const;

  // Records stamped with span 0 — emitted outside any span.
  size_t orphan_records() const { return orphans_; }

  // The full indexed timeline, ordered by (ts, tid). CriticalPath builds
  // its per-span phase accounting from this.
  const std::vector<MergedRecord>& records() const { return records_; }

 private:
  void Collect(uint64_t span, std::vector<MergedRecord>* out) const;

  std::vector<MergedRecord> records_;              // sorted by (ts, tid)
  std::map<uint64_t, std::vector<size_t>> by_span_;  // span -> record index
  std::map<uint64_t, uint64_t> parent_;            // span -> parent span
  std::map<uint64_t, std::vector<uint64_t>> children_;
  size_t orphans_ = 0;
};

}  // namespace obs
}  // namespace spin

#endif  // SRC_OBS_QUERY_H_
