// Critical-path analysis over a span tree (DESIGN.md §15).
//
// Built on TraceQuery: where TraceQuery answers "what records did this
// raise cause", CriticalPath answers "where did its time go". It folds the
// kPhase segments PhaseScope stamped into per-span self-time by phase,
// walks span trees — including cross-host edges, since a wire-carried span
// keeps one id on both sides of the trailer — and offers three views:
//
//   Attribute(root)    — phase totals for the whole tree, with the wall
//                        duration, the tracked fraction, and an explicit
//                        untracked residual (never silently absorbed).
//   LongestPath(root)  — the chain of spans that bounds the raise's
//                        latency: at each level, the child whose wall
//                        extent is largest, annotated with its dominant
//                        phase.
//   AggregateByEvent() — fleet-wide phase self-time per event name, the
//                        input for "which phase must batching shrink".
//
// Two clocks, kept apart: real-time phases partition a span's host-clock
// wall duration (self-times plus residual sum to it); virtual phases
// (wire_virtual, backoff) are simulator-clock durations reported in their
// own column and never subtracted from the real-time budget.
#ifndef SRC_OBS_CRITICAL_PATH_H_
#define SRC_OBS_CRITICAL_PATH_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <vector>

#include "src/obs/obs.h"
#include "src/obs/query.h"

namespace spin {
namespace obs {

class CriticalPath {
 public:
  explicit CriticalPath(const TraceQuery& query);

  struct PhaseBreakdown {
    uint64_t wall_ns = 0;      // root span extent on the host clock
    uint64_t tracked_ns = 0;   // sum of real-time phase self-times, tree-wide
    uint64_t residual_ns = 0;  // wall - tracked, clamped at 0
    double coverage = 0.0;     // tracked / wall (0 when wall is 0)
    uint64_t self_ns[kNumPhases] = {};     // real self-time per phase
    uint64_t virtual_ns[kNumPhases] = {};  // simulator-clock durations
  };
  // Phase totals over `root` and every descendant span. Unknown root
  // returns an all-zero breakdown.
  PhaseBreakdown Attribute(uint64_t root) const;

  struct CriticalStep {
    uint64_t span = 0;
    const char* name = nullptr;  // interned event name ("?" if unnamed)
    uint64_t wall_ns = 0;        // this span's extent
    uint64_t self_ns = 0;        // wall minus children's wall, clamped
    Phase dominant = Phase::kGuardEval;  // largest real self-time phase
    uint64_t dominant_ns = 0;            // its self-time (0 = no phases)
  };
  // The longest dependency chain: from `root`, repeatedly descend into the
  // child span with the largest wall extent. Front is the root.
  std::vector<CriticalStep> LongestPath(uint64_t root) const;

  struct EventPhases {
    const char* event = nullptr;
    uint64_t self_ns[kNumPhases] = {};
    uint64_t virtual_ns[kNumPhases] = {};
  };
  // Real and virtual phase self-time summed per event name over every span
  // in the snapshot, sorted by name.
  std::vector<EventPhases> AggregateByEvent() const;

  // Root spans (parent 0 or unknown), ascending.
  std::vector<uint64_t> Roots() const;

  // Flamegraph-compatible folded stacks, one line per (span path, phase):
  //   Client.Op;Remote.Op;wire 1234
  // plus an `(untracked)` leaf per span for the wall time neither its own
  // phases nor its children account for. Real-time phases only — virtual
  // durations don't belong on a host-clock flamegraph.
  void WriteFolded(std::ostream& os) const;

 private:
  struct SpanInfo {
    uint64_t span = 0;
    uint64_t parent = 0;
    uint64_t begin = ~0ull;  // min record timestamp
    uint64_t end = 0;        // max of record timestamps and phase ends
    const char* name = nullptr;
    uint64_t self[kNumPhases] = {};
    uint64_t virt[kNumPhases] = {};
    std::vector<uint64_t> children;
  };

  const SpanInfo* Find(uint64_t span) const;
  uint64_t Wall(const SpanInfo& info) const {
    return info.end > info.begin ? info.end - info.begin : 0;
  }
  void FoldSpan(std::ostream& os, const SpanInfo& info,
                std::string& path) const;

  std::map<uint64_t, SpanInfo> spans_;
  std::vector<uint64_t> roots_;
};

}  // namespace obs
}  // namespace spin

#endif  // SRC_OBS_CRITICAL_PATH_H_
