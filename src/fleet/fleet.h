// Macro-workload driver: a simulated fleet of hosts serving open-loop
// request/response traffic over pluggable TCP stacks.
//
// This is the "millions of users"-shaped scenario the ROADMAP calls for:
// hundreds of Hosts paired off over lossy Wires, thousands of concurrent
// TcpEndpoint connections, all advanced in virtual time by one
// sim::Simulator. Every connection binds a stack from src/net/stacks/
// (selection and hot-swap run through the hosts' §2.5 authorizer when an
// allow-list is configured), pins its raise source
// (SourceKind::kConnection) so a sharded dispatcher spreads the fleet,
// and reports request latency through the obs histogram registry — the
// numbers surface in ExportMetrics, CaptureStats/WriteJsonStats, and
// tools/spin_top.py like any other event.
//
// Traffic is open-loop: each connection issues a fixed-size request every
// request_interval_ns of virtual time regardless of completions, and the
// server answers each full request with a fixed-size response. Both byte
// streams carry position-derived patterns, so the fleet can assert
// end-to-end that no connection's delivered stream was dropped or
// reordered — including across a mid-run stack hot-swap.
#ifndef SRC_FLEET_FLEET_H_
#define SRC_FLEET_FLEET_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/core/dispatcher.h"
#include "src/net/compress.h"
#include "src/net/host.h"
#include "src/net/stacks/tcp_stack.h"
#include "src/net/tcp.h"
#include "src/obs/obs.h"
#include "src/sim/simulator.h"

namespace spin {
namespace fleet {

struct FleetOptions {
  size_t pairs = 8;           // client/server host pairs, one wire each
  size_t conns_per_pair = 4;  // concurrent connections per pair
  std::string stack = "reno";
  double loss = 0.0;    // per-frame drop probability on every wire
  uint64_t seed = 1;    // loss streams derive from seed + pair index
  uint64_t rto_ns = 50'000'000;
  uint32_t max_retries = 8;
  size_t request_bytes = 256;
  size_t response_bytes = 8 * 1460;
  uint64_t request_interval_ns = 100'000'000;  // per connection, open loop
  uint64_t duration_ns = 1'000'000'000;        // virtual run length
  uint64_t bandwidth_bps = 100'000'000;
  uint64_t propagation_ns = 25'000;
  bool compress = false;  // interpose CompressionExtension on every wire
  // Non-empty: attach a StackAuthorizer with this allow-list to every
  // host's stack events (must include `stack` or nothing binds).
  std::vector<std::string> allowed_stacks;
  // Nonzero: run with sampled tracing at 1-in-this rate and report the
  // fleet's phase-level self-time totals (FleetReport::phase_self_ns).
  // Resets the global flight recorder and phase stats, so only one traced
  // fleet should run at a time. 0 keeps tracing off and the report free
  // of machine-dependent fields — CI smoke rows stay deterministic.
  uint32_t trace_sample_rate = 0;
};

struct FleetReport {
  size_t hosts = 0;
  size_t connections = 0;
  size_t established = 0;
  size_t dead = 0;
  uint64_t requests_sent = 0;
  uint64_t responses_delivered = 0;
  uint64_t response_bytes_delivered = 0;
  uint64_t retransmissions = 0;
  uint64_t frames_offered = 0;
  uint64_t frames_lost = 0;
  double delivered_per_sec = 0;  // responses per virtual second
  uint64_t latency_p50_ns = 0;   // request -> full response, virtual time
  uint64_t latency_p99_ns = 0;
  size_t swaps_granted = 0;
  size_t swaps_denied = 0;
  // Every delivered byte matched its position-derived pattern on every
  // connection (no drops, no reordering, including across hot-swaps).
  bool streams_intact = true;
  // trace_sample_rate != 0 only: host-clock self-time per phase summed
  // over every sampled raise the fleet dispatched (guard_eval,
  // handler_body, interp, queue_wait, ...), from SnapshotPhaseStats.
  bool traced = false;
  uint64_t phase_self_ns[obs::kNumPhases] = {};
};

class Fleet {
 public:
  Fleet(Dispatcher* dispatcher, const FleetOptions& options);
  ~Fleet();
  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  // Schedules a hot-swap of every connection (both endpoints) to `stack`
  // at virtual time `at_ns`. Each endpoint's swap runs through the §2.5
  // authorizer; grants and denials are tallied in the report.
  void ScheduleSwap(uint64_t at_ns, const std::string& stack,
                    void* credentials = nullptr);

  // Runs the workload to options.duration_ns of virtual time.
  FleetReport Run();

  sim::Simulator& sim() { return sim_; }
  const FleetOptions& options() const { return options_; }

 private:
  struct Conn {
    std::unique_ptr<net::TcpEndpoint> client;
    std::unique_ptr<net::TcpEndpoint> server;
    uint64_t server_rx = 0;       // request-stream bytes verified
    uint64_t client_rx = 0;       // response-stream bytes verified
    uint64_t request_backlog = 0; // server bytes not yet answered
    uint64_t server_tx = 0;       // response-stream bytes sent
    uint64_t requests = 0;
    uint64_t responses = 0;
    std::deque<uint64_t> sent_at_ns;  // open requests, FIFO
    bool intact = true;
  };

  struct Pair {
    std::unique_ptr<net::Host> client_host;
    std::unique_ptr<net::Host> server_host;
    std::unique_ptr<net::Wire> wire;
    std::unique_ptr<net::CompressionExtension> compression;
    std::vector<std::unique_ptr<Conn>> conns;
  };

  static void ExportMetricsSource(void* ctx, std::ostream& os);

  void BuildPair(size_t index);
  void Tick(Conn* conn);
  void OnServerData(Conn* conn, const std::string& chunk);
  void OnClientData(Conn* conn, const std::string& chunk);

  Dispatcher* dispatcher_;
  FleetOptions options_;
  sim::Simulator sim_;
  std::unique_ptr<net::StackAuthorizer> authorizer_;
  std::vector<std::unique_ptr<Pair>> pairs_;
  std::shared_ptr<obs::EventMetrics> latency_;
  uint64_t requests_sent_ = 0;
  uint64_t responses_delivered_ = 0;
  uint64_t response_bytes_delivered_ = 0;
  size_t swaps_granted_ = 0;
  size_t swaps_denied_ = 0;
};

// One bench/CI row: run a fresh fleet (own dispatcher implied by caller)
// and serialize the report as a JSON object.
std::string ReportJson(const FleetOptions& options,
                       const FleetReport& report);

}  // namespace fleet
}  // namespace spin

#endif  // SRC_FLEET_FLEET_H_
