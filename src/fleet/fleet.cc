#include "src/fleet/fleet.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "src/obs/export.h"
#include "src/obs/trace.h"
#include "src/rt/panic.h"

namespace spin {
namespace fleet {
namespace {

// Position-derived stream patterns: byte i of every request stream and
// every response stream is a pure function of i, so a receiver can verify
// in O(chunk) that the delivered stream has neither holes nor reordering.
inline char RequestByte(uint64_t offset) {
  return static_cast<char>('A' + offset % 23);
}
inline char ResponseByte(uint64_t offset) {
  return static_cast<char>('a' + offset % 29);
}

std::string PatternChunk(uint64_t offset, size_t n, char (*fn)(uint64_t)) {
  std::string chunk(n, '\0');
  for (size_t i = 0; i < n; ++i) {
    chunk[i] = fn(offset + i);
  }
  return chunk;
}

bool VerifyChunk(uint64_t offset, const std::string& chunk,
                 char (*fn)(uint64_t)) {
  for (size_t i = 0; i < chunk.size(); ++i) {
    if (chunk[i] != fn(offset + i)) {
      return false;
    }
  }
  return true;
}

std::string PatternChunk(uint64_t offset, size_t n,
                         bool response) {
  return PatternChunk(offset, n, response ? &ResponseByte : &RequestByte);
}

}  // namespace

Fleet::Fleet(Dispatcher* dispatcher, const FleetOptions& options)
    : dispatcher_(dispatcher), options_(options) {
  net::RegisterBuiltinTcpStacks();
  if (!options_.allowed_stacks.empty()) {
    authorizer_ =
        std::make_unique<net::StackAuthorizer>(options_.allowed_stacks);
  }
  latency_ =
      obs::Registry::Global().Register("Fleet.Request." + options_.stack);
  for (size_t i = 0; i < options_.pairs; ++i) {
    BuildPair(i);
  }
  obs::RegisterSource(this, &Fleet::ExportMetricsSource);
}

Fleet::~Fleet() {
  obs::UnregisterSource(this);
  obs::Registry::Global().Unregister(latency_.get());
  // Endpoints go first (their destructors uninstall dispatcher bindings
  // against live hosts); pending simulator closures are disarmed by the
  // endpoints' alive tokens and simply never run.
  for (auto& pair : pairs_) {
    pair->conns.clear();
    pair->compression.reset();
  }
}

void Fleet::BuildPair(size_t index) {
  auto pair = std::make_unique<Pair>();
  uint32_t client_ip = 0x0b000000u + static_cast<uint32_t>(index) * 2;
  uint32_t server_ip = client_ip + 1;
  pair->client_host = std::make_unique<net::Host>(
      "fleet-c" + std::to_string(index), client_ip, dispatcher_);
  pair->server_host = std::make_unique<net::Host>(
      "fleet-s" + std::to_string(index), server_ip, dispatcher_);
  pair->wire = std::make_unique<net::Wire>(
      &sim_, sim::LinkModel{options_.bandwidth_bps, options_.propagation_ns});
  pair->wire->Attach(*pair->client_host, *pair->server_host);
  if (options_.loss > 0) {
    pair->wire->SetRandomLoss(options_.loss, options_.seed + index);
  }
  if (options_.compress) {
    // One extension covers the bulk direction: responses server->client.
    pair->compression = std::make_unique<net::CompressionExtension>(
        *pair->server_host, *pair->client_host);
  }
  if (authorizer_ != nullptr) {
    authorizer_->Attach(*pair->client_host);
    authorizer_->Attach(*pair->server_host);
  }

  size_t total_conns = options_.pairs * options_.conns_per_pair;
  for (size_t c = 0; c < options_.conns_per_pair; ++c) {
    auto conn = std::make_unique<Conn>();
    Conn* raw = conn.get();
    uint16_t server_port = static_cast<uint16_t>(8000 + c);
    uint16_t client_port = static_cast<uint16_t>(20000 + c);
    conn->server =
        std::make_unique<net::TcpEndpoint>(*pair->server_host, server_port);
    conn->client =
        std::make_unique<net::TcpEndpoint>(*pair->client_host, client_port);
    conn->server->SetMaxRetries(options_.max_retries);
    conn->client->SetMaxRetries(options_.max_retries);
    bool server_bound =
        conn->server->UseStack(&sim_, options_.stack, options_.rto_ns);
    bool client_bound =
        conn->client->UseStack(&sim_, options_.stack, options_.rto_ns);
    SPIN_ASSERT_MSG(server_bound && client_bound,
                    "initial stack %s not bindable (denied or unknown)",
                    options_.stack.c_str());
    conn->server->Listen(
        [this, raw](const std::string& chunk) { OnServerData(raw, chunk); });

    size_t conn_index = index * options_.conns_per_pair + c;
    // Stagger opens and request ticks across the interval so the fleet
    // does not raise in lockstep.
    uint64_t stagger =
        options_.request_interval_ns * conn_index / std::max<size_t>(
            total_conns, 1);
    uint32_t dst_ip = server_ip;
    sim_.At(stagger,
            [this, raw, dst_ip, server_port] {
              raw->client->Connect(dst_ip, server_port,
                                   [this, raw](const std::string& chunk) {
                                     OnClientData(raw, chunk);
                                   });
            });
    sim_.At(stagger + options_.request_interval_ns,
            [this, raw] { Tick(raw); });
    pair->conns.push_back(std::move(conn));
  }
  pairs_.push_back(std::move(pair));
}

void Fleet::Tick(Conn* conn) {
  if (conn->client->dead() || conn->server->dead()) {
    return;  // failed connections stop generating load
  }
  if (conn->client->established()) {
    conn->sent_at_ns.push_back(sim_.now_ns());
    uint64_t offset = conn->requests * options_.request_bytes;
    ++conn->requests;
    ++requests_sent_;
    conn->client->Send(
        PatternChunk(offset, options_.request_bytes, /*response=*/false));
  }
  uint64_t next = sim_.now_ns() + options_.request_interval_ns;
  if (next <= options_.duration_ns) {
    sim_.At(next, [this, conn] { Tick(conn); });
  }
}

void Fleet::OnServerData(Conn* conn, const std::string& chunk) {
  if (!VerifyChunk(conn->server_rx, chunk, &RequestByte)) {
    conn->intact = false;
  }
  conn->server_rx += chunk.size();
  conn->request_backlog += chunk.size();
  while (conn->request_backlog >= options_.request_bytes &&
         conn->server->established()) {
    conn->request_backlog -= options_.request_bytes;
    conn->server->Send(PatternChunk(conn->server_tx, options_.response_bytes,
                                    /*response=*/true));
    conn->server_tx += options_.response_bytes;
  }
}

void Fleet::OnClientData(Conn* conn, const std::string& chunk) {
  if (!VerifyChunk(conn->client_rx, chunk, &ResponseByte)) {
    conn->intact = false;
  }
  conn->client_rx += chunk.size();
  response_bytes_delivered_ += chunk.size();
  while (conn->client_rx >= (conn->responses + 1) * options_.response_bytes) {
    ++conn->responses;
    ++responses_delivered_;
    if (!conn->sent_at_ns.empty()) {
      uint64_t latency = sim_.now_ns() - conn->sent_at_ns.front();
      conn->sent_at_ns.pop_front();
      latency_->Record(obs::DispatchKind::kDirect, latency);
    }
  }
}

void Fleet::ScheduleSwap(uint64_t at_ns, const std::string& stack,
                         void* credentials) {
  sim_.At(at_ns, [this, stack, credentials] {
    for (auto& pair : pairs_) {
      for (auto& conn : pair->conns) {
        for (net::TcpEndpoint* endpoint :
             {conn->client.get(), conn->server.get()}) {
          if (endpoint->dead()) {
            continue;
          }
          if (endpoint->UseStack(&sim_, stack, options_.rto_ns,
                                 credentials)) {
            ++swaps_granted_;
          } else {
            ++swaps_denied_;
          }
        }
      }
    }
  });
}

FleetReport Fleet::Run() {
  if (options_.trace_sample_rate != 0) {
    // Fresh capture window: the phase totals below must cover exactly
    // this run, not whatever the process traced before.
    obs::FlightRecorder::Global().Reset();
    obs::ResetPhaseStats();
    dispatcher_->SetTracing(
        {obs::TraceMode::kSampled, options_.trace_sample_rate});
  }
  sim_.Run(options_.duration_ns);
  if (options_.trace_sample_rate != 0) {
    dispatcher_->SetTracing({obs::TraceMode::kOff, 1});
  }
  FleetReport report;
  report.hosts = pairs_.size() * 2;
  report.requests_sent = requests_sent_;
  report.responses_delivered = responses_delivered_;
  report.response_bytes_delivered = response_bytes_delivered_;
  report.swaps_granted = swaps_granted_;
  report.swaps_denied = swaps_denied_;
  for (const auto& pair : pairs_) {
    report.frames_offered += pair->wire->frames_offered();
    report.frames_lost += pair->wire->frames_lost();
    for (const auto& conn : pair->conns) {
      ++report.connections;
      if (conn->client->established() && conn->server->established()) {
        ++report.established;
      }
      if (conn->client->dead() || conn->server->dead()) {
        ++report.dead;
      }
      report.retransmissions += conn->client->retransmissions() +
                                conn->server->retransmissions();
      report.streams_intact = report.streams_intact && conn->intact;
    }
  }
  report.delivered_per_sec =
      static_cast<double>(responses_delivered_) * 1e9 /
      static_cast<double>(std::max<uint64_t>(options_.duration_ns, 1));
  obs::HistogramSnapshot merged = latency_->Merged();
  report.latency_p50_ns = merged.Percentile(0.5);
  report.latency_p99_ns = merged.Percentile(0.99);
  if (options_.trace_sample_rate != 0) {
    report.traced = true;
    for (const obs::PhaseStats& stats : obs::SnapshotPhaseStats()) {
      for (size_t p = 0; p < obs::kNumPhases; ++p) {
        report.phase_self_ns[p] += stats.phases[p].sum;
      }
    }
  }
  return report;
}

void Fleet::ExportMetricsSource(void* ctx, std::ostream& os) {
  auto* self = static_cast<Fleet*>(ctx);
  size_t connections = 0;
  size_t established = 0;
  size_t dead = 0;
  uint64_t retransmissions = 0;
  uint64_t frames_lost = 0;
  for (const auto& pair : self->pairs_) {
    frames_lost += pair->wire->frames_lost();
    for (const auto& conn : pair->conns) {
      ++connections;
      if (conn->client->established() && conn->server->established()) {
        ++established;
      }
      if (conn->client->dead() || conn->server->dead()) {
        ++dead;
      }
      retransmissions += conn->client->retransmissions() +
                         conn->server->retransmissions();
    }
  }
  auto line = [&os, self](const char* name, uint64_t value) {
    os << name << "{stack=\"";
    obs::WriteLabelValue(os, self->options_.stack);
    os << "\"} " << value << "\n";
  };
  line("spin_fleet_hosts", self->pairs_.size() * 2);
  line("spin_fleet_connections", connections);
  line("spin_fleet_established", established);
  line("spin_fleet_dead_connections", dead);
  line("spin_fleet_requests_total", self->requests_sent_);
  line("spin_fleet_responses_total", self->responses_delivered_);
  line("spin_fleet_response_bytes_total", self->response_bytes_delivered_);
  line("spin_fleet_retransmissions_total", retransmissions);
  line("spin_fleet_wire_frames_lost_total", frames_lost);
  line("spin_fleet_swaps_granted_total", self->swaps_granted_);
  line("spin_fleet_swaps_denied_total", self->swaps_denied_);
}

std::string ReportJson(const FleetOptions& options,
                       const FleetReport& report) {
  std::ostringstream os;
  os << "{\"bench\": \"fleet\""
     << ", \"stack\": \"" << options.stack << "\""
     << ", \"loss\": " << options.loss
     << ", \"hosts\": " << report.hosts
     << ", \"connections\": " << report.connections
     << ", \"established\": " << report.established
     << ", \"dead\": " << report.dead
     << ", \"duration_ms\": " << options.duration_ns / 1000000
     << ", \"requests\": " << report.requests_sent
     << ", \"responses\": " << report.responses_delivered
     << ", \"delivered_per_sec\": " << report.delivered_per_sec
     << ", \"latency_p50_us\": " << report.latency_p50_ns / 1000
     << ", \"latency_p99_us\": " << report.latency_p99_ns / 1000
     << ", \"retransmissions\": " << report.retransmissions
     << ", \"frames_lost\": " << report.frames_lost
     << ", \"frames_offered\": " << report.frames_offered
     << ", \"swaps_granted\": " << report.swaps_granted
     << ", \"swaps_denied\": " << report.swaps_denied
     << ", \"streams_intact\": " << (report.streams_intact ? "true" : "false");
  if (report.traced) {
    // Machine-dependent, so emitted only for traced runs — the smoke
    // rows the CI gate compares byte-for-byte never carry this object.
    // "traced" also keys the row apart from its untraced twin in
    // tools/bench_diff.py.
    os << ", \"traced\": true, \"phase_self_ns\": {";
    bool first = true;
    for (size_t p = 0; p < obs::kNumPhases; ++p) {
      if (report.phase_self_ns[p] == 0) {
        continue;
      }
      os << (first ? "" : ", ") << "\""
         << obs::PhaseName(static_cast<obs::Phase>(p))
         << "\": " << report.phase_self_ns[p];
      first = false;
    }
    os << "}";
  }
  os << "}";
  return os.str();
}

}  // namespace fleet
}  // namespace spin
