#include "src/profile/profile.h"

#include <algorithm>
#include <iomanip>

namespace spin {
namespace profile {

Profiler::Profiler(Dispatcher& dispatcher) : dispatcher_(dispatcher) {
  dispatcher_.EnableProfiling(true);
}

Profiler::~Profiler() { dispatcher_.EnableProfiling(false); }

void Profiler::Reset() {
  for (EventBase* event : dispatcher_.Events()) {
    event->ResetStats();
  }
}

EventProfile Profiler::Sample(const EventBase& event) {
  EventProfile profile;
  profile.name = event.name();
  obs::HistogramSnapshot merged = event.metrics().Merged();
  profile.raised = merged.count;
  profile.time_s = static_cast<double>(merged.sum) / 1e9;
  profile.handlers = event.handler_count();
  profile.guards = event.guard_count();
  if (merged.count > 0) {
    profile.p50_ns = merged.Percentile(0.50);
    profile.p90_ns = merged.Percentile(0.90);
    profile.p99_ns = merged.Percentile(0.99);
    profile.max_ns = merged.max;
  }
  return profile;
}

std::vector<EventProfile> Profiler::Snapshot(bool include_idle) const {
  std::vector<EventProfile> profiles;
  for (EventBase* event : dispatcher_.Events()) {
    EventProfile profile = Sample(*event);
    if (profile.raised > 0 || include_idle) {
      profiles.push_back(std::move(profile));
    }
  }
  std::sort(profiles.begin(), profiles.end(),
            [](const EventProfile& a, const EventProfile& b) {
              return a.raised > b.raised;
            });
  return profiles;
}

std::vector<EventProfile> Profiler::SnapshotOf(
    const std::vector<const EventBase*>& events) const {
  std::vector<EventProfile> profiles;
  profiles.reserve(events.size());
  for (const EventBase* event : events) {
    profiles.push_back(Sample(*event));
  }
  return profiles;
}

void Profiler::PrintTable(std::ostream& os,
                          const std::vector<EventProfile>& profiles) {
  os << std::left << std::setw(28) << "Event name" << std::right
     << std::setw(10) << "raised" << std::setw(10) << "time" << std::setw(10)
     << "handlers" << std::setw(8) << "guards" << std::setw(10) << "p50(ns)"
     << std::setw(10) << "p99(ns)" << "\n";
  for (const EventProfile& p : profiles) {
    os << std::left << std::setw(28) << p.name << std::right << std::setw(10)
       << p.raised << std::setw(10) << std::fixed << std::setprecision(2)
       << p.time_s << std::setw(10) << p.handlers << std::setw(8) << p.guards
       << std::setw(10) << p.p50_ns << std::setw(10) << p.p99_ns << "\n";
  }
}

}  // namespace profile
}  // namespace spin
