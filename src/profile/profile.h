// Event profiling (the instrumentation behind Table 3).
//
// "We instrumented the kernel and extension code to generate call graph
// information with counts and elapsed times" (§3.2). The dispatcher keeps
// per-event raise counts and cumulative dispatch time when profiling is
// enabled; this module snapshots them into the same columns Table 3 prints:
// event name, raised, time, handlers, guards.
#ifndef SRC_PROFILE_PROFILE_H_
#define SRC_PROFILE_PROFILE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/core/dispatcher.h"

namespace spin {
namespace profile {

struct EventProfile {
  std::string name;
  uint64_t raised = 0;
  double time_s = 0;
  size_t handlers = 0;
  size_t guards = 0;
  // Raise-latency distribution (all dispatch kinds merged), from the
  // observability histograms. Percentiles are log-bucket upper bounds.
  uint64_t p50_ns = 0;
  uint64_t p90_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t max_ns = 0;
};

// RAII: enables dispatcher profiling for its lifetime.
class Profiler {
 public:
  explicit Profiler(Dispatcher& dispatcher);
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  // Clears accumulated counters on every event.
  void Reset();

  // Snapshots all events, ordered by raise count (descending). Events with
  // zero raises are included only when `include_idle`.
  std::vector<EventProfile> Snapshot(bool include_idle = false) const;

  // Snapshot restricted to the given events (e.g. one host's stack).
  std::vector<EventProfile> SnapshotOf(
      const std::vector<const EventBase*>& events) const;

  // Prints the Table 3 layout.
  static void PrintTable(std::ostream& os,
                         const std::vector<EventProfile>& profiles);

 private:
  static EventProfile Sample(const EventBase& event);

  Dispatcher& dispatcher_;
};

}  // namespace profile
}  // namespace spin

#endif  // SRC_PROFILE_PROFILE_H_
