// The Mach system-call emulator of Figures 2 and 3.
//
// Installs a guarded handler on MachineTrap.Syscall: the guard admits only
// strands whose address space is a registered Mach task (IsMachTask), and
// the handler dispatches on ms.v0 exactly as Figure 2 does (-65 ->
// vm_allocate, ...). The module also demonstrates the authorization flow
// of Figure 3: as the authority over its own service event it can impose
// per-address-space guards on third-party handlers.
#ifndef SRC_EMUL_MACH_H_
#define SRC_EMUL_MACH_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "src/kernel/kernel.h"

namespace spin {
namespace emul {

// Mach syscall numbers (negative, per the Alpha Mach convention the paper's
// Figure 2 shows).
inline constexpr int64_t kMachVmAllocate = -65;
inline constexpr int64_t kMachVmDeallocate = -66;
inline constexpr int64_t kMachTaskSelf = -28;

class MachEmulator {
 public:
  explicit MachEmulator(Kernel& kernel);
  ~MachEmulator();

  // Marks an address space as a Mach task (the SyscallGuard predicate).
  void AdoptTask(AddressSpace& space);
  void DropTask(AddressSpace& space);
  bool IsMachTask(const AddressSpace* space) const;

  uint64_t handled() const { return handled_; }
  const Module& module() const { return module_; }
  const BindingHandle& binding() const { return binding_; }

 private:
  // Figure 2's SyscallGuard / Syscall pair.
  static bool SyscallGuard(MachEmulator* emulator, Strand* strand,
                           SavedState& state);
  static void Syscall(MachEmulator* emulator, Strand* strand,
                      SavedState& state);

  void VmAllocate(Strand& strand, SavedState& state);
  void VmDeallocate(Strand& strand, SavedState& state);

  Module module_{"MachEmulator"};
  Kernel& kernel_;
  std::unordered_set<uint64_t> tasks_;
  std::unordered_map<uint64_t, uint64_t> brk_;  // per-space bump pointer
  BindingHandle binding_;
  uint64_t handled_ = 0;
};

}  // namespace emul
}  // namespace spin

#endif  // SRC_EMUL_MACH_H_
