#include "src/emul/mach.h"

namespace spin {
namespace emul {

MachEmulator::MachEmulator(Kernel& kernel) : kernel_(kernel) {
  // Figure 2's initialization block:
  //   Dispatcher.InstallHandler(MachineTrap.Syscall, SyscallGuard, Syscall)
  binding_ = kernel_.dispatcher().InstallHandler(
      kernel_.MachineTrapSyscall, &MachEmulator::Syscall, this,
      {.module = &module_});
  kernel_.dispatcher().AddGuard(kernel_.MachineTrapSyscall, binding_,
                                &MachEmulator::SyscallGuard, this);
}

MachEmulator::~MachEmulator() {
  if (binding_ != nullptr && binding_->active.load()) {
    kernel_.dispatcher().Uninstall(binding_, &module_);
  }
}

void MachEmulator::AdoptTask(AddressSpace& space) {
  tasks_.insert(space.id());
}

void MachEmulator::DropTask(AddressSpace& space) {
  tasks_.erase(space.id());
}

bool MachEmulator::IsMachTask(const AddressSpace* space) const {
  return space != nullptr && tasks_.count(space->id()) > 0;
}

bool MachEmulator::SyscallGuard(MachEmulator* emulator, Strand* strand,
                                SavedState& state) {
  (void)state;
  return emulator->IsMachTask(strand->space());
}

void MachEmulator::Syscall(MachEmulator* emulator, Strand* strand,
                           SavedState& state) {
  ++emulator->handled_;
  switch (state.v0) {
    case kMachVmAllocate:
      emulator->VmAllocate(*strand, state);
      break;
    case kMachVmDeallocate:
      emulator->VmDeallocate(*strand, state);
      break;
    case kMachTaskSelf:
      state.v0 = static_cast<int64_t>(strand->space()->id());
      state.error = 0;
      break;
    default:
      state.error = 78;  // unknown Mach trap
      state.v0 = -1;
      break;
  }
}

void MachEmulator::VmAllocate(Strand& strand, SavedState& state) {
  AddressSpace& space = *strand.space();
  uint64_t size = static_cast<uint64_t>(state.a[0]);
  uint64_t pages = (size + kPageSize - 1) / kPageSize;
  uint64_t& brk = brk_[space.id()];
  if (brk == 0) {
    brk = 0x10000000;  // Mach task heap base
  }
  uint64_t base = brk;
  for (uint64_t i = 0; i < pages; ++i) {
    // Fault each page in through the VM event path (a Mach vm_allocate in
    // SPIN ultimately exercised the same trusted pager).
    kernel_.vm.Access(space, brk + i * kPageSize, kAccessWrite);
  }
  brk += pages * kPageSize;
  state.v0 = static_cast<int64_t>(base);
  state.error = 0;
}

void MachEmulator::VmDeallocate(Strand& strand, SavedState& state) {
  AddressSpace& space = *strand.space();
  uint64_t base = static_cast<uint64_t>(state.a[0]);
  uint64_t size = static_cast<uint64_t>(state.a[1]);
  for (uint64_t addr = base; addr < base + size; addr += kPageSize) {
    space.Unmap(addr);
  }
  state.v0 = 0;
  state.error = 0;
}

}  // namespace emul
}  // namespace spin
